#!/usr/bin/env bash
# daemon_smoke.sh — end-to-end smoke of the mediator daemon: boots csqpd
# plus two real HTTP sources (`csqp -serve`), registers both into one
# tenant over the wire, sanity-checks a query through each, then drives
# an open-loop load and asserts (1) zero hard errors at a sane rate,
# (2) nonzero load shedding once the offered load exceeds the in-flight
# cap, (3) the shed counters are scrapeable from /metrics, and (4) a
# SIGTERM drain exits cleanly. CI runs this on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

BOOKS_PORT=9301
AUTOS_PORT=9302
DAEMON_PORT=9300
DAEMON="http://127.0.0.1:${DAEMON_PORT}"
BIN=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$BIN"
}
trap cleanup EXIT

wait_http() { # url [tries]
  local url=$1 tries=${2:-50}
  for _ in $(seq "$tries"); do
    if curl -fsS -o /dev/null "$url" 2>/dev/null; then return 0; fi
    sleep 0.2
  done
  echo "timeout waiting for $url" >&2
  return 1
}

echo "== build =="
go build -o "$BIN/csqp" ./cmd/csqp
go build -o "$BIN/csqpd" ./cmd/csqpd
go build -o "$BIN/loadgen" ./cmd/loadgen

echo "== boot two HTTP sources =="
"$BIN/csqp" -demo bookstore -serve "127.0.0.1:${BOOKS_PORT}" &
PIDS+=($!)
# The autos source is paginated: it hands out at most 500 tuples per
# round-trip behind a cursor, so the daemon's registered client must walk
# the cursor loop to answer (asserted against /metrics below).
"$BIN/csqp" -demo cars -size 60000 -paged 500 -serve "127.0.0.1:${AUTOS_PORT}" &
PIDS+=($!)
wait_http "http://127.0.0.1:${BOOKS_PORT}/describe"
wait_http "http://127.0.0.1:${AUTOS_PORT}/describe"

echo "== boot csqpd (tight admission: 2 in flight, queue 2, 200ms) =="
"$BIN/csqpd" -addr "127.0.0.1:${DAEMON_PORT}" \
  -max-inflight 2 -max-queue 2 -queue-timeout 200ms -v &
DAEMON_PID=$!
PIDS+=($DAEMON_PID)
wait_http "$DAEMON/healthz"
wait_http "$DAEMON/readyz"

echo "== register both sources into tenant 'smoke' =="
curl -fsS -X POST -d "{\"base_url\":\"http://127.0.0.1:${BOOKS_PORT}\"}" \
  "$DAEMON/v1/tenants/smoke/sources" | jq -e '.source == "books"' >/dev/null
curl -fsS -X POST -d "{\"base_url\":\"http://127.0.0.1:${AUTOS_PORT}\"}" \
  "$DAEMON/v1/tenants/smoke/sources" | jq -e '.source == "autos"' >/dev/null

echo "== query each source through the daemon =="
curl -fsS -X POST -d '{"source":"books","cond":"author = \"Sigmund Freud\" ^ title contains \"dreams\"","attrs":["title","isbn"],"profile":true}' \
  "$DAEMON/v1/tenants/smoke/query" \
  | jq -e '.row_count >= 1 and .fingerprint != "" and .profile != null' >/dev/null
curl -fsS -X POST -d '{"source":"autos","cond":"make = \"Toyota\" ^ price <= 30000","attrs":["model","price"]}' \
  "$DAEMON/v1/tenants/smoke/query" \
  | jq -e '.row_count >= 1' >/dev/null

echo "== loadgen: sane rate must see zero errors and zero sheds =="
"$BIN/loadgen" -daemon "$DAEMON" -tenant smoke \
  -source books -cond 'author = "Carl Jung"' -attrs title \
  -rate 20 -duration 3s -json | tee "$BIN/sane.json"
jq -e '.errors == 0' "$BIN/sane.json" >/dev/null

echo "== loadgen: overload must shed (429), never error =="
"$BIN/loadgen" -daemon "$DAEMON" -tenant smoke \
  -source autos -cond 'make = "Toyota" ^ price <= 30000' -attrs model,price,year \
  -rate 400 -duration 3s -json | tee "$BIN/overload.json"
jq -e '.errors == 0 and .shed > 0' "$BIN/overload.json" >/dev/null

echo "== metrics expose the shed and in-flight counters =="
# Fetch to a file first: grep -q closes its pipe on the first match,
# which under pipefail turns a healthy scrape into a SIGPIPE failure.
curl -fsS "$DAEMON/metrics" > "$BIN/metrics.txt"
grep -q '^csqp_daemon_shed_total' "$BIN/metrics.txt"
grep -q '^csqp_daemon_inflight' "$BIN/metrics.txt"
grep -q '^csqp_daemon_admitted_total' "$BIN/metrics.txt"
grep -q '^csqp_source_pool_clients' "$BIN/metrics.txt"

echo "== the paged autos source was answered through the cursor loop =="
pages=$(awk '/^csqp_source_pages_total\{source="autos"\}/ { print int($2) }' "$BIN/metrics.txt")
if [ -z "$pages" ] || [ "$pages" -le 1 ]; then
  echo "csqp_source_pages_total{source=\"autos\"} = ${pages:-absent}, want > 1" >&2
  exit 1
fi

echo "== SIGTERM drains cleanly =="
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
code=$?
if [ "$code" -ne 0 ]; then
  echo "csqpd exited $code after SIGTERM, want 0" >&2
  exit 1
fi
curl -fsS -o /dev/null "$DAEMON/healthz" 2>/dev/null && {
  echo "daemon still serving after drain" >&2; exit 1; }

echo "daemon smoke: OK"
