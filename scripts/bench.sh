#!/usr/bin/env sh
# Run the planning-hot-path micro-benchmarks and emit a JSON snapshot
# (BENCH_plan.json in the repo root by default, $1 to override).
#
#   scripts/bench.sh                 # refresh BENCH_plan.json
#   scripts/bench.sh /tmp/new.json   # write elsewhere (CI does this,
#                                    # then compares against the
#                                    # committed baseline with benchgate)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_plan.json}"

pattern='^(BenchmarkCheckSupported|BenchmarkCheckMemoized|BenchmarkCheckMemoizedParallel|BenchmarkCheckLongChain|BenchmarkIPGSection4|BenchmarkIPGSection4Traced|BenchmarkEPGSection4|BenchmarkSpanDisabled|BenchmarkSpanEnabled|BenchmarkCanonicalize|BenchmarkNormKey|BenchmarkDistributiveClosure|BenchmarkCommutativeClosure|BenchmarkFixReorder|BenchmarkSourceCacheHit|BenchmarkPagedFetch|BenchmarkTemplateHit|BenchmarkParameterize|BenchmarkQAHarness)$'

# The streaming-vs-materialized execution benchmarks run whole 20k-row
# plans per iteration (~100-250ms each), so they get a smaller iteration
# count; the gated numbers (allocs/op, B/op) are deterministic and do not
# need 200 samples.
streampattern='^(BenchmarkStreamingUnion|BenchmarkMaterializedUnion|BenchmarkSymmetricHashJoin|BenchmarkMaterializedJoin)$'

# The profiling-overhead pair runs a small 2k-row plan (~10ms/iter).
# BenchmarkExecProfilingOverhead interleaves the profiled and unprofiled
# paths within each iteration and reports their ns ratio as the
# "ns-ratio" metric, which CI gates at <=1.05 via benchgate -pair.
profpattern='^(BenchmarkExecUnprofiled|BenchmarkExecProfiled|BenchmarkExecProfilingOverhead)$'

{
	go test -run='^$' -bench="$pattern" -benchmem -benchtime=200x .
	go test -run='^$' -bench="$streampattern" -benchmem -benchtime=10x .
	go test -run='^$' -bench="$profpattern" -benchmem -benchtime=100x .
} |
	tee /dev/stderr |
	go run ./cmd/benchgate -emit >"$out"

echo "wrote $out" >&2
