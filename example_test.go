package csqp_test

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/condition"
)

// Example reproduces the paper's Example 4.1 source and §4 target query:
// the form supports (make, max price) and (make, color) only, yet the
// mediator answers a query with a color disjunction by widening the
// supported source query and filtering locally.
func Example() {
	schema, err := csqp.NewSchema(
		csqp.Column{Name: "make", Kind: condition.KindString},
		csqp.Column{Name: "model", Kind: condition.KindString},
		csqp.Column{Name: "color", Kind: condition.KindString},
		csqp.Column{Name: "price", Kind: condition.KindInt},
	)
	if err != nil {
		log.Fatal(err)
	}
	rel := csqp.NewRelation(schema)
	rows := []struct {
		make, model, color string
		price              int64
	}{
		{"BMW", "328i", "red", 35000},
		{"BMW", "528i", "black", 45000},
		{"BMW", "318i", "blue", 29000},
	}
	for _, r := range rows {
		if err := rel.AppendValues(
			csqp.String(r.make), csqp.String(r.model),
			csqp.String(r.color), csqp.Int(r.price)); err != nil {
			log.Fatal(err)
		}
	}

	sys := csqp.NewSystem()
	err = sys.AddSource(rel, `
source R
attrs make, model, color, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string ^ color = $c:string
attributes :: s1 : {make, model, color}
attributes :: s2 : {make, model}
`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sys.Query("R",
		`make = "BMW" ^ price < 40000 ^ (color = "red" _ color = "black")`,
		"model")
	if err != nil {
		log.Fatal(err)
	}
	res.Answer.Sort()
	for _, t := range res.Answer.Tuples() {
		v, _ := t.Lookup("model")
		fmt.Println(v.S)
	}
	fmt.Println("source queries:", len(res.SourceQueries))
	// Output:
	// 328i
	// source queries: 1
}

// ExampleSystem_QueryWith contrasts strategies on the bookstore query of
// Example 1.1: DISCO cannot answer it at all, while GenCompact splits it
// into two supported queries.
func ExampleSystem_QueryWith() {
	schema, _ := csqp.NewSchema(
		csqp.Column{Name: "author", Kind: condition.KindString},
		csqp.Column{Name: "title", Kind: condition.KindString},
	)
	rel := csqp.NewRelation(schema)
	for _, r := range [][2]string{
		{"Sigmund Freud", "The Interpretation of Dreams"},
		{"Carl Jung", "Memories, Dreams, Reflections"},
		{"Someone Else", "A Book of Dreams"},
	} {
		if err := rel.AppendValues(csqp.String(r[0]), csqp.String(r[1])); err != nil {
			log.Fatal(err)
		}
	}
	sys := csqp.NewSystem()
	if err := sys.AddSource(rel, `
source books
attrs author, title
s1 -> author = $a:string ^ title contains $t:string
attributes :: s1 : {author, title}
`); err != nil {
		log.Fatal(err)
	}

	query := `(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams"`
	res, err := sys.QueryWith(csqp.GenCompact, "books", query, "title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GenCompact queries:", len(res.SourceQueries), "rows:", res.Answer.Len())

	if _, err := sys.QueryWith(csqp.Disco, "books", query, "title"); err != nil {
		fmt.Println("DISCO:", err)
	}
	// Output:
	// GenCompact queries: 2 rows: 2
	// DISCO: planner: no feasible plan
}
