package csqp

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/condition"
	"repro/internal/cost"
	"repro/internal/plan"
)

// Explanation is the introspectable form of one query: the chosen plan
// with the cost model's annotations, where the plan came from (fresh
// planning, the exact cache, or a bound template), and — after
// ExplainAnalyze — the executed per-operator profile with actual row
// counts and wall times against the model's estimates. It marshals to
// JSON directly; String renders the human form `cmd/csqp -explain`
// prints.
type Explanation struct {
	// Strategy, Source, Cond and Attrs restate the target query.
	Strategy string   `json:"strategy"`
	Source   string   `json:"source"`
	Cond     string   `json:"cond"`
	Attrs    []string `json:"attrs,omitempty"`
	// Fingerprint is the query's shape identity — the same value the
	// flight recorder and the slow-query log report, and the key the
	// template tier caches plans under.
	Fingerprint string `json:"fingerprint"`
	// Plan is the fixed plan the mediator chose.
	Plan Plan `json:"-"`
	// PlanText is the plan tree annotated with per-node costs and
	// cardinality estimates.
	PlanText string `json:"plan"`
	// Cost is the plan's total model cost; EstimatedTransfer the
	// estimated tuples its source queries extract.
	Cost              float64 `json:"cost"`
	EstimatedTransfer float64 `json:"estimated_transfer"`
	// Cached/Template/Coalesced report plan provenance: served from the
	// exact cache, bound from a parameterized template, or waited on
	// another caller's in-flight planning.
	Cached    bool `json:"cached,omitempty"`
	Template  bool `json:"template,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// PlanningTime is the planner's wall time (zero on cache hits).
	PlanningTime time.Duration `json:"planning_ns"`

	// Analyzed marks an EXPLAIN ANALYZE: the plan was executed and the
	// fields below are populated.
	Analyzed bool `json:"analyzed,omitempty"`
	// Rows is the executed answer's cardinality.
	Rows int `json:"rows,omitempty"`
	// Duration covers planning plus execution.
	Duration time.Duration `json:"duration_ns,omitempty"`
	// Partial marks a degraded Union answer (see Options.PartialAnswers).
	Partial bool `json:"partial,omitempty"`
	// Profile is the executed per-operator statistics tree, annotated
	// with the cost model's estimates.
	Profile *ExecProfile `json:"profile,omitempty"`
}

// String renders the explanation as text: a header, the annotated plan
// and — when analyzed — the executed profile tree.
func (e *Explanation) String() string {
	var sb strings.Builder
	mode := "EXPLAIN"
	if e.Analyzed {
		mode = "EXPLAIN ANALYZE"
	}
	fmt.Fprintf(&sb, "%s %s over %s (%s)\n", mode, e.Cond, e.Source, e.Strategy)
	fmt.Fprintf(&sb, "fingerprint: %s", e.Fingerprint)
	switch {
	case e.Cached && e.Template:
		sb.WriteString("  [template hit]")
	case e.Cached:
		sb.WriteString("  [plan cache hit]")
	case e.Template:
		sb.WriteString("  [template planned]")
	}
	if e.Coalesced {
		sb.WriteString("  [coalesced]")
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "cost: %.2f  est transfer: %.1f tuples  planning: %s\n",
		e.Cost, e.EstimatedTransfer, e.PlanningTime)
	sb.WriteString(e.PlanText)
	if e.Analyzed {
		fmt.Fprintf(&sb, "executed: %d rows in %s", e.Rows, e.Duration)
		if e.Partial {
			sb.WriteString("  (PARTIAL: some union branches were dropped)")
		}
		sb.WriteByte('\n')
		sb.WriteString(FormatProfile(e.Profile))
	}
	return sb.String()
}

// ExplainPlan plans the query without executing it and reports the
// chosen plan, its costs and its provenance. Equivalent to SQL EXPLAIN.
func (s *System) ExplainPlan(ctx context.Context, strategy Strategy, src, cond string, attrs ...string) (*Explanation, error) {
	c, err := condition.Parse(cond)
	if err != nil {
		return nil, err
	}
	pl, err := strategy.planner()
	if err != nil {
		return nil, err
	}
	p, met, err := s.med.Plan(ctx, pl, src, c, attrs)
	if err != nil {
		return nil, err
	}
	return s.explanation(strategy, src, c, attrs, p, met), nil
}

// ExplainAnalyze plans AND executes the query, reporting the chosen plan
// alongside the executed per-operator profile: actual row counts, chunk
// counts, buffered-row peaks, wall times and source round trips, each
// against the cost model's estimate. Equivalent to SQL EXPLAIN ANALYZE.
// With Options.PartialAnswers set, a degraded answer still explains
// (Partial is set) and the degradation error is returned alongside it.
func (s *System) ExplainAnalyze(ctx context.Context, strategy Strategy, src, cond string, attrs ...string) (*Explanation, error) {
	c, err := condition.Parse(cond)
	if err != nil {
		return nil, err
	}
	pl, err := strategy.planner()
	if err != nil {
		return nil, err
	}
	res, aerr := s.med.Answer(ctx, pl, src, c, attrs)
	if res == nil {
		return nil, aerr
	}
	e := s.explanation(strategy, src, c, attrs, res.Plan, res.Metrics)
	e.Analyzed = true
	e.Duration = res.Duration
	e.Profile = res.Profile
	if res.Relation != nil {
		e.Rows = res.Relation.Len()
		e.Partial = aerr != nil
	}
	return e, aerr
}

// explanation assembles the static portion shared by both EXPLAIN forms.
func (s *System) explanation(strategy Strategy, src string, c Condition, attrs []string, p Plan, met *Metrics) *Explanation {
	e := &Explanation{
		Strategy:    strategy.String(),
		Source:      src,
		Cond:        c.Key(),
		Attrs:       attrs,
		Fingerprint: s.med.Fingerprint(strategy.String(), src, c, attrs),
		Plan:        p,
		PlanText:    cost.Explain(p, s.med.Model()),
		Cost:        s.med.Model().PlanCost(p),
	}
	for _, q := range plan.SourceQueries(p) {
		e.EstimatedTransfer += s.est.ResultSize(q.Source, q.Cond)
	}
	if met != nil {
		e.Cached, e.Template, e.Coalesced = met.Cached, met.Template, met.Coalesced
		e.PlanningTime = met.Duration
	}
	return e
}

// Fingerprint returns the query's shape identity — the FNV-64a hash of
// (strategy, source, parameterized skeleton, attrs) that the flight
// recorder, slow-query log and EXPLAIN output all report — so wire
// responses can be matched against recorded and logged queries.
func (s *System) Fingerprint(strategy Strategy, src string, cond Condition, attrs []string) string {
	return s.med.Fingerprint(strategy.String(), src, cond, attrs)
}

// Recent returns the flight recorder's buffered query records, newest
// first: the last Options.RecorderSize executed queries with their
// fingerprints, durations, dispositions and execution profiles. The
// recorder is always on and bounded, so this answers "what just
// happened?" without having asked for tracing up front.
func (s *System) Recent() []QueryRecord { return s.med.Recent() }
