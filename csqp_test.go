package csqp

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/source"
	"repro/internal/workload"
)

func demoSystem(t *testing.T) *System {
	t.Helper()
	rel, g := workload.Bookstore(5000, 1)
	sys := NewSystem()
	if err := sys.AddSourceGrammar(rel, g); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemQueryEndToEnd(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.Query("books",
		`(author = "Sigmund Freud" or author = "Carl Jung") and title contains "dreams"`,
		"title", "isbn")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Len() != 11 {
		t.Errorf("answer = %d rows, want 11", res.Answer.Len())
	}
	if len(res.SourceQueries) != 2 {
		t.Errorf("source queries = %d, want 2", len(res.SourceQueries))
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %v", res.Cost)
	}
	if res.Metrics == nil || res.Metrics.CheckCalls == 0 {
		t.Error("metrics missing")
	}
}

func TestSystemStrategies(t *testing.T) {
	sys := demoSystem(t)
	cond := `(author = "Sigmund Freud" or author = "Carl Jung") and title contains "dreams"`
	// CNF is feasible but coarse; DISCO and Naive are infeasible.
	if _, err := sys.QueryWith(CNF, "books", cond, "isbn"); err != nil {
		t.Errorf("CNF: %v", err)
	}
	if _, err := sys.QueryWith(Disco, "books", cond, "isbn"); !errors.Is(err, ErrInfeasible) {
		t.Errorf("DISCO err = %v, want ErrInfeasible", err)
	}
	if _, err := sys.QueryWith(Naive, "books", cond, "isbn"); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Naive err = %v, want ErrInfeasible", err)
	}
	if _, err := sys.QueryWith(GenModular, "books", cond, "isbn"); err != nil {
		t.Errorf("GenModular: %v", err)
	}
	if _, err := sys.QueryWith(DNF, "books", cond, "isbn"); err != nil {
		t.Errorf("DNF: %v", err)
	}
}

func TestSystemExplain(t *testing.T) {
	sys := demoSystem(t)
	p, m, err := sys.Explain(GenCompact, "books", `author = "Carl Jung"`, "title")
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Error("metrics missing")
	}
	out := FormatPlan(p)
	if !strings.Contains(out, "SourceQuery[books]") {
		t.Errorf("plan:\n%s", out)
	}
	if sys.Cost(p) <= 0 {
		t.Error("cost should be positive")
	}
}

func TestSystemErrors(t *testing.T) {
	sys := demoSystem(t)
	if _, err := sys.Query("ghost", `a = 1`, "x"); err == nil {
		t.Error("unknown source should fail")
	}
	if _, err := sys.Query("books", `a = `, "x"); err == nil {
		t.Error("bad condition should fail")
	}
	if err := sys.AddSource(NewRelation(mustSchema(t)), "junk"); err == nil {
		t.Error("bad SSDL should fail")
	}
	if _, _, err := sys.Explain(Strategy(99), "books", `a = 1`, "x"); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func mustSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(Column{Name: "a", Kind: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSystemHTTPSource(t *testing.T) {
	rel, g := workload.Cars(2000, 1)
	local, err := source.NewLocal("", rel, g)
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(source.NewHandler(local))
	defer server.Close()

	sys := NewSystem()
	name, err := sys.AddHTTPSource(server.URL)
	if err != nil {
		t.Fatal(err)
	}
	if name != "autos" {
		t.Errorf("name = %q", name)
	}
	res, err := sys.Query("autos", workload.Example12Condition, "make", "model", "price")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Len() == 0 {
		t.Error("empty answer over HTTP")
	}
	if len(res.SourceQueries) != 2 {
		t.Errorf("source queries = %d, want 2", len(res.SourceQueries))
	}
}

func TestStrategyNames(t *testing.T) {
	for s, want := range map[Strategy]string{
		GenCompact: "GenCompact", GenModular: "GenModular",
		CNF: "CNF", DNF: "DNF", Disco: "DISCO", Naive: "Naive",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestOptionsApplied(t *testing.T) {
	sys := NewSystem(Options{K1: 1000, K2: 1, Strategy: DNF})
	rel, g := workload.Bookstore(2000, 2)
	if err := sys.AddSourceGrammar(rel, g); err != nil {
		t.Fatal(err)
	}
	if sys.strategy != DNF {
		t.Error("strategy option ignored")
	}
	res, err := sys.Query("books", `author = "Carl Jung"`, "isbn")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < 1000 {
		t.Errorf("cost %v should include k1=1000", res.Cost)
	}
}

func TestSetSourceCostInfluencesPlans(t *testing.T) {
	sys := demoSystem(t)
	cond := `(author = "Sigmund Freud" or author = "Carl Jung") and title contains "dreams"`
	cheapQueries, err := sys.Query("books", cond, "isbn")
	if err != nil {
		t.Fatal(err)
	}
	if len(cheapQueries.SourceQueries) != 2 {
		t.Fatalf("baseline should split into 2 queries, got %d", len(cheapQueries.SourceQueries))
	}
	// Astronomical per-query overhead pushes the planner to the single
	// coarse title query.
	sys.SetSourceCost("books", 1e7, 1)
	oneQuery, err := sys.Query("books", cond, "isbn")
	if err != nil {
		t.Fatal(err)
	}
	if len(oneQuery.SourceQueries) != 1 {
		t.Errorf("huge k1 should collapse to 1 query, got %d:\n%s",
			len(oneQuery.SourceQueries), FormatPlan(oneQuery.Plan))
	}
}

func TestQueryUnionAndCheapestFacade(t *testing.T) {
	sys := NewSystem()
	for _, name := range []string{"p1", "p2"} {
		rel, g := workload.Bookstore(1000, int64(len(name)))
		g.Source = name
		if err := sys.AddSourceGrammar(rel, g); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sys.QueryUnion([]string{"p1", "p2"}, `author = "Carl Jung"`, "isbn", "title")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Len() == 0 {
		t.Error("union answer empty")
	}
	res2, chosen, err := sys.QueryCheapest([]string{"p1", "p2"}, `author = "Carl Jung"`, "isbn")
	if err != nil {
		t.Fatal(err)
	}
	if chosen != "p1" && chosen != "p2" {
		t.Errorf("chosen = %q", chosen)
	}
	if res2.Answer.Len() == 0 {
		t.Error("cheapest answer empty")
	}
	if _, err := sys.QueryUnion([]string{"p1"}, `bad =`, "isbn"); err == nil {
		t.Error("bad condition should fail")
	}
	if _, _, err := sys.QueryCheapest([]string{"p1"}, `bad =`, "isbn"); err == nil {
		t.Error("bad condition should fail")
	}
}

func TestFacadeCache(t *testing.T) {
	sys := demoSystem(t)
	sys.EnableCache()
	q := `author = "Carl Jung" and title contains "dreams"`
	if _, err := sys.Query("books", q, "isbn"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query("books", q, "isbn"); err != nil {
		t.Fatal(err)
	}
	// Constants-bearing queries are served by the template tier: the first
	// plans the shape's skeleton, the second binds into the cached
	// template. A query with different constants but the same shape hits
	// the same template.
	st := sys.TemplateStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("template stats = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if _, err := sys.Query("books", `author = "Freud" and title contains "ego"`, "isbn"); err != nil {
		t.Fatal(err)
	}
	st = sys.TemplateStats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("template stats = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if st.HitRate() < 0.66 || st.HitRate() > 0.67 {
		t.Errorf("template hit rate = %g, want 2/3", st.HitRate())
	}
	// The exact-key tier was never consulted.
	if cs := sys.CacheStats(); cs.Hits != 0 || cs.Misses != 0 {
		t.Errorf("plan cache stats = %+v, want untouched", cs)
	}
}
