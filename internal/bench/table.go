// Package bench is the experiment harness: it regenerates every
// table/figure of the reproduction's evaluation (DESIGN.md §4, E1-E9).
// cmd/experiments prints the tables; bench_test.go at the repository root
// wraps each experiment in a testing.B benchmark.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's result in printable form.
type Table struct {
	// ID is the experiment identifier (E1..E8).
	ID string
	// Title is a short name.
	Title string
	// Claim is the paper statement the experiment reproduces.
	Claim string
	// Columns are the header names.
	Columns []string
	// Rows are the data rows, already formatted.
	Rows [][]string
	// Notes carry caveats and calibration details.
	Notes []string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown formats the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "*Paper claim:* %s\n\n", t.Claim)
	}
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*Note:* %s\n", n)
	}
	return sb.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func itoa(v int) string { return fmt.Sprintf("%d", v) }
