package bench

import (
	"context"
	"fmt"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mediator"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

// E9Joins exercises the two-source join extension (DESIGN.md §6): the same
// logical join against three right-source capability profiles shows the
// semijoin pushdown adapting — one batched value-list submission, a split
// into per-binding queries, or a whole-side fetch — with the mediator
// picking the cheapest feasible strategy.
func E9Joins(seed int64) (*Table, error) {
	dealers, dealerG, err := dealerSource(seed)
	if err != nil {
		return nil, err
	}

	profiles := []struct {
		name    string
		grammar string
	}{
		{"value-list form", `
source cars
attrs make, model, price
key model
mlist -> make = $m:string _ mlist | make = $m:string _ make = $m:string
s1 -> make = $m:string
s2 -> mlist
attributes :: s1 : {make, model, price}
attributes :: s2 : {make, model, price}
`},
		{"single-value form", `
source cars
attrs make, model, price
key model
s1 -> make = $m:string
attributes :: s1 : {make, model, price}
`},
		{"download-only", `
source cars
attrs make, model, price
key model
dl -> true
attributes :: dl : {make, model, price}
`},
	}

	t := &Table{
		ID:      "E9",
		Title:   "Join strategies adapt to right-source capabilities (extension)",
		Claim:   "selection queries are \"the building blocks of more complex queries\" (§1); the semijoin pushdown batches, splits or downloads per the source description",
		Columns: []string{"right-source profile", "strategy", "right queries", "tuples from right", "join rows"},
		Notes: []string{
			"left side: 60 dealers in the target city, 6 distinct brands; right side: 5000 listings",
		},
	}
	for _, prof := range profiles {
		carsRel := carListings(5000, seed)
		carsG, err := ssdl.Parse(prof.grammar)
		if err != nil {
			return nil, err
		}
		cars, err := source.NewLocal("", carsRel, carsG)
		if err != nil {
			return nil, err
		}
		est := cost.NewOracleEstimator(map[string]*relation.Relation{
			"dealers": dealers.Relation(), "cars": carsRel,
		})
		med := mediator.New(cost.Model{K1: 10, K2: 1, Est: est})
		if err := med.Register("", dealers, dealerG); err != nil {
			return nil, err
		}
		if err := med.Register("", cars, carsG); err != nil {
			return nil, err
		}
		dealers.ResetAccounting()

		res, err := med.AnswerJoin(context.Background(), core.New(), mediator.JoinSpec{
			Left:      "dealers",
			Right:     "cars",
			LeftCond:  condition.MustParse(`city = "Palo Alto"`),
			RightCond: condition.True(),
			LeftAttr:  "brand",
			RightAttr: "make",
			Attrs:     []string{"dealer", "model", "price"},
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", prof.name, err)
		}
		acc := cars.Accounting()
		t.Rows = append(t.Rows, []string{
			prof.name, res.Strategy, itoa(acc.Queries), itoa(acc.Tuples), itoa(res.Relation.Len()),
		})
	}
	return t, nil
}

// dealerSource builds the join experiment's left side: a dealer directory
// searchable by city.
func dealerSource(seed int64) (*source.Local, *ssdl.Grammar, error) {
	g, err := ssdl.Parse(`
source dealers
attrs dealer, city, brand
key dealer
s1 -> city = $c:string
attributes :: s1 : {dealer, city, brand}
`)
	if err != nil {
		return nil, nil, err
	}
	rel := relation.New(relation.MustSchema(
		relation.Column{Name: "dealer", Kind: condition.KindString},
		relation.Column{Name: "city", Kind: condition.KindString},
		relation.Column{Name: "brand", Kind: condition.KindString},
	))
	brands := []string{"Toyota", "BMW", "Honda", "Ford", "Volvo", "Mazda"}
	cities := []string{"Palo Alto", "San Jose", "Oakland"}
	n := 0
	for _, city := range cities {
		for i := 0; i < 60; i++ {
			n++
			if err := rel.AppendValues(
				condition.String(fmt.Sprintf("Dealer %03d", n)),
				condition.String(city),
				condition.String(brands[i%len(brands)]),
			); err != nil {
				return nil, nil, err
			}
		}
	}
	src, err := source.NewLocal("", rel, g)
	if err != nil {
		return nil, nil, err
	}
	return src, g, nil
}

// carListings builds the join experiment's right side data.
func carListings(n int, seed int64) *relation.Relation {
	rel := relation.New(relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	))
	brands := []string{"Toyota", "BMW", "Honda", "Ford", "Volvo", "Mazda", "Audi", "Saab"}
	for i := 0; i < n; i++ {
		mk := brands[(i*7+int(seed))%len(brands)]
		if err := rel.AppendValues(
			condition.String(mk),
			condition.String(fmt.Sprintf("%s-%05d", mk, i)),
			condition.Int(int64(9000+(i*137)%45000)),
		); err != nil {
			panic(err) // impossible: fixed schema
		}
	}
	return rel
}
