package bench

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/genmodular"
	"repro/internal/mediator"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/source"
	"repro/internal/ssdl"
	"repro/internal/workload"
)

// Strategies returns the standard strategy line-up compared throughout the
// evaluation. GenModular runs with bounded rewrite caps so it terminates;
// the caps are generous enough to find the optimum for the paper's
// examples.
func Strategies() []planner.Planner {
	return []planner.Planner{
		core.New(),
		&genmodular.Planner{Rewrite: rewrite.Config{Rules: rewrite.AllRules, MaxCTs: 2000, MaxAtoms: 10}},
		baseline.CNF{},
		baseline.DNF{},
		baseline.Disco{},
		baseline.Naive{},
	}
}

// FastStrategies omits GenModular, whose rewrite closure dominates runtime
// on larger query suites.
func FastStrategies() []planner.Planner {
	return []planner.Planner{core.New(), baseline.CNF{}, baseline.DNF{}, baseline.Disco{}, baseline.Naive{}}
}

// scenarioRow runs one strategy against a prepared source and reports
// feasibility, query count, tuples transferred and answer correctness.
func scenarioRow(med *mediator.Mediator, src *source.Local, p planner.Planner,
	cond condition.Node, attrs []string) ([]string, error) {
	src.ResetAccounting()
	res, err := med.Answer(context.Background(), p, src.Name(), cond, attrs)
	if err != nil {
		if errors.Is(err, planner.ErrInfeasible) {
			return []string{p.Name(), "no", "-", "-", "-", "-"}, nil
		}
		return nil, fmt.Errorf("%s: %w", p.Name(), err)
	}
	acc := src.Accounting()
	direct, err := src.Relation().Select(cond)
	if err != nil {
		return nil, err
	}
	want, err := direct.Project(attrs)
	if err != nil {
		return nil, err
	}
	// Plans project attributes in sorted order; align columns before
	// comparing.
	got, err := res.Relation.Project(attrs)
	if err != nil {
		return nil, err
	}
	correct := "yes"
	if !got.Equal(want) {
		correct = "NO"
	}
	return []string{
		p.Name(), "yes",
		itoa(len(plan.SourceQueries(res.Plan))),
		itoa(acc.Tuples),
		itoa(res.Relation.Len()),
		correct,
	}, nil
}

var scenarioColumns = []string{"strategy", "feasible", "source queries", "tuples transferred", "answer size", "correct"}

// E1Bookstore reproduces Example 1.1 end to end on the calibrated catalog.
func E1Bookstore(size int, seed int64) (*Table, error) {
	if size <= 0 {
		size = workload.DefaultBookstoreSize
	}
	rel, g := workload.Bookstore(size, seed)
	return exampleScenario(
		"E1", "Bookstore (Example 1.1)",
		"Garlic's CNF plan extracts over 2,000 entries; the two-query plan fewer than 20; DISCO and naive full-pushdown are infeasible",
		rel, g,
		condition.MustParse(workload.Example11Condition), workload.Example11Attrs,
		fmt.Sprintf("catalog of %d books, seed %d", size, seed),
	)
}

// E2CarSearch reproduces Example 1.2 end to end.
func E2CarSearch(size int, seed int64) (*Table, error) {
	if size <= 0 {
		size = workload.DefaultCarsSize
	}
	rel, g := workload.Cars(size, seed)
	return exampleScenario(
		"E2", "Car shopping guide (Example 1.2)",
		"GenCompact sends 2 source queries; DNF sends 4 for the same data; CNF transfers many more entries; DISCO is infeasible",
		rel, g,
		condition.MustParse(workload.Example12Condition), workload.Example12Attrs,
		fmt.Sprintf("%d listings, seed %d", size, seed),
	)
}

func exampleScenario(id, title, claim string, rel *relation.Relation, g *ssdl.Grammar,
	cond condition.Node, attrs []string, note string) (*Table, error) {
	src, err := source.NewLocal("", rel, g)
	if err != nil {
		return nil, err
	}
	est := cost.NewOracleEstimator(map[string]*relation.Relation{src.Name(): rel})
	med := mediator.New(cost.Model{K1: 10, K2: 1, Est: est})
	if err := med.Register("", src, g); err != nil {
		return nil, err
	}
	t := &Table{
		ID: id, Title: title, Claim: claim,
		Columns: scenarioColumns,
		Notes:   []string{note, "cost model k1=10, k2=1 with exact (oracle) cardinalities"},
	}
	for _, p := range Strategies() {
		row, err := scenarioRow(med, src, p, cond, attrs)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
