package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/condition"
	"repro/internal/ssdl"
)

// CheckConfig parameterizes experiment E7.
type CheckConfig struct {
	// Sizes are the condition sizes (atom counts) to sweep (default
	// 4..512 doubling).
	Sizes []int
	// Repeats per size (default 50).
	Repeats int
}

func (c *CheckConfig) defaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{4, 8, 16, 32, 64, 128, 256, 512}
	}
	if c.Repeats == 0 {
		c.Repeats = 50
	}
}

// chainGrammarSrc supports arbitrarily long conjunctions over one
// attribute via a recursive rule — the worst case for a naive matcher, a
// linear case for the parser.
const chainGrammarSrc = `
source chain
attrs a, b
chain -> a = $v:int | a = $v:int ^ chain
attributes :: chain : {a, b}
`

// E7CheckLinear measures Check latency versus condition size and versus
// grammar size (commutative-closure inflation), reproducing §6.1's claim.
func E7CheckLinear(cfg CheckConfig) (*Table, error) {
	cfg.defaults()
	g, err := ssdl.Parse(chainGrammarSrc)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E7",
		Title:   "Check runs in time linear in the condition size",
		Claim:   "\"the parser still runs in time linear in the size of the condition expression, irrespective of the number of CFG rules\"",
		Columns: []string{"atoms", "Check µs", "µs per atom"},
		Notes:   []string{"fresh checker per measurement (no memo hits); recursive chain grammar"},
	}
	for _, size := range cfg.Sizes {
		cond := chainCondition(size)
		var total time.Duration
		for i := 0; i < cfg.Repeats; i++ {
			checker := ssdl.NewChecker(g)
			start := time.Now()
			if checker.Check(cond).Empty() {
				return nil, fmt.Errorf("chain condition of %d atoms should be supported", size)
			}
			total += time.Since(start)
		}
		per := total / time.Duration(cfg.Repeats)
		t.Rows = append(t.Rows, []string{
			itoa(size),
			f2(float64(per.Nanoseconds()) / 1000),
			f2(float64(per.Nanoseconds()) / 1000 / float64(size)),
		})
	}

	// Second half: grammar-size sweep at fixed condition size.
	inflated, err := ruleCountSweep(cfg)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, inflated...)
	return t, nil
}

// ruleCountSweep measures Check latency at a fixed condition size while
// the rule count grows through commutative closure of wider templates.
func ruleCountSweep(cfg CheckConfig) ([]string, error) {
	var notes []string
	for _, segs := range []int{2, 4, 6} {
		var body []string
		var condParts []string
		for i := 0; i < segs; i++ {
			body = append(body, fmt.Sprintf("f%d = $v:int", i))
			condParts = append(condParts, fmt.Sprintf("f%d = 1", i))
		}
		var attrs []string
		for i := 0; i < segs; i++ {
			attrs = append(attrs, fmt.Sprintf("f%d", i))
		}
		src := fmt.Sprintf("source w\nattrs %s\ns1 -> %s\nattributes :: s1 : {%s}\n",
			strings.Join(attrs, ", "), strings.Join(body, " ^ "), strings.Join(attrs, ", "))
		g, err := ssdl.Parse(src)
		if err != nil {
			return nil, err
		}
		closed := ssdl.CommutativeClosure(g, 0)
		cond := condition.MustParse(strings.Join(condParts, " ^ "))
		var total time.Duration
		for i := 0; i < cfg.Repeats; i++ {
			checker := ssdl.NewChecker(closed)
			start := time.Now()
			checker.Check(cond)
			total += time.Since(start)
		}
		per := total / time.Duration(cfg.Repeats)
		notes = append(notes, fmt.Sprintf("rule-count sweep: %d rules (closure of %d-conjunct template) -> Check %.2fµs",
			len(closed.Rules), segs, float64(per.Nanoseconds())/1000))
	}
	return notes, nil
}

// chainCondition builds a = 0 ^ a = 1 ^ ... with n atoms (values differ so
// memo keys do not collapse).
func chainCondition(n int) condition.Node {
	kids := make([]condition.Node, n)
	for i := range kids {
		kids[i] = condition.NewAtomic("a", condition.OpEq, condition.Int(int64(i)))
	}
	if n == 1 {
		return kids[0]
	}
	return &condition.And{Kids: kids}
}
