package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/genmodular"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/ssdl"
	"repro/internal/workload"
)

// CostConfig parameterizes experiments E4 and E5.
type CostConfig struct {
	Seed    int64
	Attrs   int   // domain width (default 6)
	Rows    int   // relation size (default 1000)
	Queries int   // queries per size (default 10)
	Sizes   []int // atom counts (default 2..7)
	// ModularMaxCTs caps GenModular's rewrite closure (default 2000).
	ModularMaxCTs int
}

func (c *CostConfig) defaults() {
	if c.Attrs == 0 {
		c.Attrs = 6
	}
	if c.Rows == 0 {
		c.Rows = 1000
	}
	if c.Queries == 0 {
		c.Queries = 10
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{2, 3, 4, 5, 6, 7}
	}
	if c.ModularMaxCTs == 0 {
		c.ModularMaxCTs = 2000
	}
}

// E4PlanningCost measures planning effort versus query size for GenModular
// and GenCompact: wall-clock time, CTs processed and Check calls.
// GenModular's closure hits its cap as queries grow — the blowup the paper
// built GenCompact to avoid.
func E4PlanningCost(cfg CostConfig) (*Table, error) {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	dom := workload.RandomDomain(r, cfg.Attrs)
	rel := dom.GenRelation(r, cfg.Rows)
	est := cost.NewOracleEstimator(map[string]*relation.Relation{dom.Name: rel})
	model := cost.Model{K1: 10, K2: 1, Est: est}
	g := workload.RandomGrammar(dom, r, workload.ProfileConjTemplates)
	checker := ssdl.NewChecker(ssdl.CommutativeClosure(g, 0))
	ctx := &planner.Context{Source: dom.Name, Checker: checker, Model: model}

	gm := &genmodular.Planner{Rewrite: rewrite.Config{Rules: rewrite.AllRules, MaxCTs: cfg.ModularMaxCTs, MaxAtoms: 14}}
	gc := core.New()

	t := &Table{
		ID:    "E4",
		Title: "Planning cost vs query size",
		Claim: "GenCompact generates the same plans as GenModular \"in a much more efficient manner\"",
		Columns: []string{"atoms",
			"GenModular ms", "GenModular CTs", "GenModular checks",
			"GenCompact ms", "GenCompact CTs", "GenCompact checks",
			"speedup"},
		Notes: []string{fmt.Sprintf("GenModular's rewrite closure capped at %d CTs per query; uncapped it diverges", cfg.ModularMaxCTs)},
	}
	for _, natoms := range cfg.Sizes {
		var mTime, cTime time.Duration
		var mCTs, cCTs, mChecks, cChecks int
		for q := 0; q < cfg.Queries; q++ {
			cond := dom.RandomQuery(r, natoms)
			attrs := []string{dom.KeyAttr()}
			_, mm, err := gm.Plan(context.Background(), ctx, cond, attrs)
			if err != nil && !errors.Is(err, planner.ErrInfeasible) {
				return nil, err
			}
			_, mc, err := gc.Plan(context.Background(), ctx, cond, attrs)
			if err != nil && !errors.Is(err, planner.ErrInfeasible) {
				return nil, err
			}
			mTime += mm.Duration
			cTime += mc.Duration
			mCTs += mm.CTs
			cCTs += mc.CTs
			mChecks += mm.CheckCalls
			cChecks += mc.CheckCalls
		}
		n := float64(cfg.Queries)
		speedup := "-"
		if cTime > 0 {
			speedup = f2(float64(mTime) / float64(cTime))
		}
		t.Rows = append(t.Rows, []string{
			itoa(natoms),
			f2(float64(mTime.Microseconds()) / n / 1000), itoa(mCTs / cfg.Queries), itoa(mChecks / cfg.Queries),
			f2(float64(cTime.Microseconds()) / n / 1000), itoa(cCTs / cfg.Queries), itoa(cChecks / cfg.Queries),
			speedup,
		})
	}
	return t, nil
}

// E5PruningAblation toggles PR1/PR2/PR3 and measures the work IPG does:
// plans considered, the largest MCSC input Q, set-cover combinations and
// time.
func E5PruningAblation(cfg CostConfig) (*Table, error) {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	dom := workload.RandomDomain(r, cfg.Attrs)
	rel := dom.GenRelation(r, cfg.Rows)
	est := cost.NewOracleEstimator(map[string]*relation.Relation{dom.Name: rel})
	model := cost.Model{K1: 10, K2: 1, Est: est}
	g := workload.RandomGrammar(dom, r, workload.ProfileWithDownload)
	checker := ssdl.NewChecker(ssdl.CommutativeClosure(g, 0))
	ctx := &planner.Context{Source: dom.Name, Checker: checker, Model: model}

	// All variants share one small rewrite closure so the comparison
	// isolates IPG's work; without PR1-PR3 the search is exponential in
	// the query size, so the ablation suite stays at ≤5 atoms — the
	// blowup is the finding, not something to endure at full scale.
	shared := rewrite.Config{Rules: rewrite.DistributiveOnly, MaxCTs: 4}
	variants := []struct {
		name string
		p    *core.Planner
	}{
		{"all pruning (paper)", &core.Planner{Rewrite: shared}},
		{"no PR1", &core.Planner{Rewrite: shared, DisablePR1: true}},
		{"no PR2", &core.Planner{Rewrite: shared, DisablePR2: true}},
		{"no PR3", &core.Planner{Rewrite: shared, DisablePR3: true}},
		{"no pruning", &core.Planner{Rewrite: shared, DisablePR1: true, DisablePR2: true, DisablePR3: true}},
	}

	// A fixed query suite shared by all variants; structured shapes make
	// impure plans reachable.
	var suite []condQuery
	for _, natoms := range cfg.Sizes {
		if natoms > 5 {
			continue
		}
		for q := 0; q < cfg.Queries; q++ {
			suite = append(suite, condQuery{node: dom.RandomStructuredQuery(r, natoms), attrs: []string{dom.KeyAttr()}})
		}
	}

	t := &Table{
		ID:    "E5",
		Title: "Pruning-rule ablation (IPG work per query suite)",
		Claim: "the pruning rules \"yield rich dividends\" and keep the MCSC input Q \"very small for most queries\"",
		Columns: []string{"variant", "plans considered", "max Q", "MCSC combos", "total ms",
			"best-plan cost Σ"},
		Notes: []string{fmt.Sprintf("suite of %d structured queries (%v atoms) on a with-download source", len(suite), cfg.Sizes),
			"best-plan cost must be identical across variants: pruning never discards the optimum"},
	}
	// Warm the shared checker memo so per-variant timings compare IPG
	// work rather than first-run parsing.
	for _, q := range suite {
		_, _, _ = variants[0].p.Plan(context.Background(), ctx, q.node, q.attrs)
	}
	for _, v := range variants {
		var totalDur time.Duration
		var plans, maxQ, combos int
		costSum := 0.0
		for _, q := range suite {
			pl, m, err := v.p.Plan(context.Background(), ctx, q.node, q.attrs)
			if err != nil {
				if errors.Is(err, planner.ErrInfeasible) {
					continue
				}
				return nil, err
			}
			totalDur += m.Duration
			plans += m.PlansConsidered
			combos += m.MCSCCombos
			if m.MaxSubPlans > maxQ {
				maxQ = m.MaxSubPlans
			}
			costSum += ctx.Model.PlanCost(pl)
		}
		t.Rows = append(t.Rows, []string{
			v.name, itoa(plans), itoa(maxQ), itoa(combos),
			f2(float64(totalDur.Microseconds()) / 1000), f2(costSum),
		})
	}
	return t, nil
}
