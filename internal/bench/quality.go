package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mediator"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
	"repro/internal/workload"
)

// QualityConfig parameterizes the random-workload experiments E3 and E6.
type QualityConfig struct {
	Seed       int64
	Attrs      int // domain width (default 6)
	Rows       int // relation size (default 2000)
	Queries    int // queries per (class, size) cell (default 30)
	AtomCounts []int
	Classes    []workload.ProfileClass
	K1, K2     float64
}

func (c *QualityConfig) defaults() {
	if c.Attrs == 0 {
		c.Attrs = 6
	}
	if c.Rows == 0 {
		c.Rows = 2000
	}
	if c.Queries == 0 {
		c.Queries = 30
	}
	if len(c.AtomCounts) == 0 {
		c.AtomCounts = []int{3, 5, 8}
	}
	if len(c.Classes) == 0 {
		c.Classes = workload.AllProfileClasses
	}
	if c.K1 == 0 {
		c.K1 = 10
	}
	if c.K2 == 0 {
		c.K2 = 1
	}
}

// E3PlanQuality compares plan cost across strategies on random workloads,
// normalized to GenCompact (the paper's optimum under the cost model).
// Ratios above 1.0 mean the baseline transfers more data or issues more
// queries than necessary.
func E3PlanQuality(cfg QualityConfig) (*Table, error) {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	strategies := FastStrategies()

	type agg struct {
		feasible    int
		ratioSum    float64
		ratioN      int
		queriesSum  int
		transferSum float64
	}
	stats := make([]agg, len(strategies))
	total := 0

	err := forEachRandomQuery(cfg, r, func(ctx *planner.Context, cond condQuery) error {
		gc, _, errGC := strategies[0].Plan(context.Background(), ctx, cond.node, cond.attrs)
		if errGC != nil {
			if errors.Is(errGC, planner.ErrInfeasible) {
				return nil // skip queries with no feasible plan at all
			}
			return errGC
		}
		total++
		base := ctx.Model.PlanCost(gc)
		record := func(i int, pl plan.Plan) {
			stats[i].feasible++
			qs := plan.SourceQueries(pl)
			stats[i].queriesSum += len(qs)
			for _, q := range qs {
				stats[i].transferSum += ctx.Model.Est.ResultSize(q.Source, q.Cond)
			}
			if base > 0 {
				stats[i].ratioSum += ctx.Model.PlanCost(pl) / base
				stats[i].ratioN++
			}
		}
		record(0, gc)
		for i, p := range strategies[1:] {
			pl, _, err := p.Plan(context.Background(), ctx, cond.node, cond.attrs)
			if err != nil {
				if errors.Is(err, planner.ErrInfeasible) {
					continue
				}
				return err
			}
			record(i+1, pl)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "E3",
		Title: "Plan quality on random workloads",
		Claim: "GenCompact finds efficient feasible plans; CNF/DNF strategies are worse when feasible, DISCO/naive often infeasible",
		Columns: []string{
			"strategy", "feasible (of " + itoa(total) + ")", "mean cost ratio vs GenCompact",
			"mean source queries", "mean est. transfer",
		},
		Notes: []string{
			fmt.Sprintf("random domains (%d attrs), %d-row relations, %d queries per class/size cell, profile classes %v, atom counts %v",
				cfg.Attrs, cfg.Rows, cfg.Queries, cfg.Classes, cfg.AtomCounts),
			"only queries where GenCompact found a feasible plan are counted; ratios averaged over each strategy's feasible subset",
		},
	}
	for i, p := range strategies {
		ratio, meanQ, meanT := "-", "-", "-"
		if stats[i].ratioN > 0 {
			ratio = f2(stats[i].ratioSum / float64(stats[i].ratioN))
		}
		if stats[i].feasible > 0 {
			meanQ = f2(float64(stats[i].queriesSum) / float64(stats[i].feasible))
			meanT = f2(stats[i].transferSum / float64(stats[i].feasible))
		}
		t.Rows = append(t.Rows, []string{p.Name(), itoa(stats[i].feasible), ratio, meanQ, meanT})
	}
	return t, nil
}

// E6Feasibility measures the fraction of random queries each strategy can
// answer at all, per capability-profile class.
func E6Feasibility(cfg QualityConfig) (*Table, error) {
	cfg.defaults()
	strategies := FastStrategies()
	t := &Table{
		ID:    "E6",
		Title: "Feasibility coverage by capability class",
		Claim: "GenCompact guarantees plans whenever any feasible plan exists; DISCO fails whenever splitting is required (it fails both §1 examples)",
		Columns: append([]string{"class", "queries"}, func() []string {
			names := make([]string, len(strategies))
			for i, p := range strategies {
				names[i] = p.Name() + " %"
			}
			return names
		}()...),
		Notes: []string{"percentages are of all generated queries (including ones no strategy can answer)"},
	}

	for _, class := range cfg.Classes {
		r := rand.New(rand.NewSource(cfg.Seed))
		counts := make([]int, len(strategies))
		total := 0
		one := cfg
		one.Classes = []workload.ProfileClass{class}
		err := forEachRandomQuery(one, r, func(ctx *planner.Context, cond condQuery) error {
			total++
			for i, p := range strategies {
				if _, _, err := p.Plan(context.Background(), ctx, cond.node, cond.attrs); err == nil {
					counts[i]++
				} else if !errors.Is(err, planner.ErrInfeasible) {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		row := []string{class.String(), itoa(total)}
		for _, c := range counts {
			row = append(row, f2(100*float64(c)/float64(total)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// condQuery is one generated target query.
type condQuery struct {
	node  condition.Node
	attrs []string
}

// forEachRandomQuery generates the cross product of profile classes and
// atom counts, building a fresh source per class and invoking fn per
// query. The planning context uses the commutative-closure checker and an
// oracle estimator, as the mediator would.
func forEachRandomQuery(cfg QualityConfig, r *rand.Rand, fn func(*planner.Context, condQuery) error) error {
	dom := workload.RandomDomain(r, cfg.Attrs)
	rel := dom.GenRelation(r, cfg.Rows)
	est := cost.NewOracleEstimator(map[string]*relation.Relation{dom.Name: rel})
	model := cost.Model{K1: cfg.K1, K2: cfg.K2, Est: est}
	for _, class := range cfg.Classes {
		g := workload.RandomGrammar(dom, r, class)
		checker := ssdl.NewChecker(ssdl.CommutativeClosure(g, 0))
		ctx := &planner.Context{Source: dom.Name, Checker: checker, Model: model}
		for _, natoms := range cfg.AtomCounts {
			for q := 0; q < cfg.Queries; q++ {
				// Mostly structured (form-shaped) queries, with some
				// uniformly random trees for coverage.
				var cond condition.Node
				if q%4 == 3 {
					cond = dom.RandomQuery(r, natoms)
				} else {
					cond = dom.RandomStructuredQuery(r, natoms)
				}
				attrs := []string{dom.KeyAttr()}
				if err := fn(ctx, condQuery{node: cond, attrs: attrs}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// VerifyStrategyCorrectness executes every feasible plan each strategy
// produces on random workloads and compares the answer with direct
// evaluation; it returns the number of (strategy, query) pairs checked and
// the first mismatch found, if any. Experiments call it as a soundness
// gate; it also backs the cross-planner property test.
func VerifyStrategyCorrectness(cfg QualityConfig) (int, error) {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	dom := workload.RandomDomain(r, cfg.Attrs)
	rel := dom.GenRelation(r, cfg.Rows)
	est := cost.NewOracleEstimator(map[string]*relation.Relation{dom.Name: rel})
	model := cost.Model{K1: cfg.K1, K2: cfg.K2, Est: est}
	checked := 0
	for _, class := range cfg.Classes {
		g := workload.RandomGrammar(dom, r, class)
		src, err := source.NewLocal("", rel, g)
		if err != nil {
			return checked, err
		}
		med := mediator.New(model)
		if err := med.Register("", src, g); err != nil {
			return checked, err
		}
		for _, natoms := range cfg.AtomCounts {
			for q := 0; q < cfg.Queries; q++ {
				var cond condition.Node
				if q%4 == 3 {
					cond = dom.RandomQuery(r, natoms)
				} else {
					cond = dom.RandomStructuredQuery(r, natoms)
				}
				attrs := []string{dom.KeyAttr()}
				direct, err := rel.Select(cond)
				if err != nil {
					return checked, err
				}
				want, err := direct.Project(attrs)
				if err != nil {
					return checked, err
				}
				for _, p := range FastStrategies() {
					res, err := med.Answer(context.Background(), p, dom.Name, cond, attrs)
					if errors.Is(err, planner.ErrInfeasible) {
						continue
					}
					if err != nil {
						return checked, fmt.Errorf("%s on %s: %w", p.Name(), cond.Key(), err)
					}
					got, err := res.Relation.Project(attrs)
					if err != nil {
						return checked, err
					}
					if !got.Equal(want) {
						return checked, fmt.Errorf("%s answered %d tuples, want %d, for %s (class %v)",
							p.Name(), got.Len(), want.Len(), cond.Key(), class)
					}
					checked++
				}
			}
		}
	}
	return checked, nil
}

// ReferenceOptimalityCheck compares GenCompact with bounded exhaustive
// GenModular on small queries, returning the number of agreements and any
// mismatch. It backs the E3 claim that normalizing to GenCompact measures
// distance from the optimum.
func ReferenceOptimalityCheck(cfg QualityConfig, maxAtoms int) (int, error) {
	cfg.defaults()
	if maxAtoms == 0 {
		maxAtoms = 4
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	gm := Strategies()[1] // bounded GenModular
	gc := core.New()
	agreements := 0
	small := cfg
	small.AtomCounts = nil
	for _, n := range cfg.AtomCounts {
		if n <= maxAtoms {
			small.AtomCounts = append(small.AtomCounts, n)
		}
	}
	if len(small.AtomCounts) == 0 {
		small.AtomCounts = []int{3}
	}
	err := forEachRandomQuery(small, r, func(ctx *planner.Context, cond condQuery) error {
		pc, _, errC := gc.Plan(context.Background(), ctx, cond.node, cond.attrs)
		pm, _, errM := gm.Plan(context.Background(), ctx, cond.node, cond.attrs)
		if (errC == nil) != (errM == nil) {
			// GenModular's bounded rewrite may miss plans GenCompact
			// finds; the reverse would be a bug.
			if errC != nil && errM == nil {
				return fmt.Errorf("GenModular found a plan GenCompact missed for %s", cond.node.Key())
			}
			return nil
		}
		if errC != nil {
			return nil
		}
		cc, cm := ctx.Model.PlanCost(pc), ctx.Model.PlanCost(pm)
		if cc > cm+1e-9 {
			return fmt.Errorf("GenCompact cost %v exceeds GenModular optimum %v for %s", cc, cm, cond.node.Key())
		}
		agreements++
		return nil
	})
	return agreements, err
}
