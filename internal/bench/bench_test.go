package bench

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// Small configurations keep the unit tests fast; the full-size runs live
// in cmd/experiments and the root bench_test.go.

func TestE1ShapeMatchesPaper(t *testing.T) {
	tab, err := E1Bookstore(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowMap(tab)
	if rows["GenCompact"][1] != "yes" || rows["GenCompact"][2] != "2" {
		t.Errorf("GenCompact row = %v", rows["GenCompact"])
	}
	if rows["DISCO"][1] != "no" || rows["Naive"][1] != "no" {
		t.Error("DISCO and Naive must be infeasible")
	}
	gcTuples := atoiOr(rows["GenCompact"][3], -1)
	cnfTuples := atoiOr(rows["CNF"][3], -1)
	if gcTuples <= 0 || cnfTuples <= 0 || cnfTuples < 10*gcTuples {
		t.Errorf("CNF should transfer ≫ GenCompact: %d vs %d", cnfTuples, gcTuples)
	}
	for name, row := range rows {
		if row[1] == "yes" && row[5] != "yes" {
			t.Errorf("%s produced an incorrect answer", name)
		}
	}
}

func TestE2ShapeMatchesPaper(t *testing.T) {
	tab, err := E2CarSearch(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowMap(tab)
	if rows["GenCompact"][2] != "2" {
		t.Errorf("GenCompact should send 2 queries, row = %v", rows["GenCompact"])
	}
	if rows["DNF"][2] != "4" {
		t.Errorf("DNF should send 4 queries, row = %v", rows["DNF"])
	}
	if rows["GenCompact"][3] != rows["DNF"][3] {
		t.Errorf("GenCompact and DNF should transfer the same data: %s vs %s",
			rows["GenCompact"][3], rows["DNF"][3])
	}
	if atoiOr(rows["CNF"][3], 0) <= atoiOr(rows["GenCompact"][3], 0) {
		t.Error("CNF should transfer more entries than GenCompact")
	}
}

func TestE3RunsAndOrdersStrategies(t *testing.T) {
	tab, err := E3PlanQuality(QualityConfig{Seed: 1, Queries: 4, AtomCounts: []int{3, 4}, Rows: 400})
	if err != nil {
		t.Fatal(err)
	}
	rows := rowMap(tab)
	if rows["GenCompact"][2] != "1.00" {
		t.Errorf("GenCompact must be the 1.00 reference, got %v", rows["GenCompact"][2])
	}
	// Feasibility: GenCompact ≥ every baseline.
	gcFeasible := atoiOr(rows["GenCompact"][1], 0)
	for name, row := range rows {
		if atoiOr(row[1], 0) > gcFeasible {
			t.Errorf("%s reports more feasible plans (%s) than GenCompact (%d)", name, row[1], gcFeasible)
		}
	}
}

func TestE4GenCompactFaster(t *testing.T) {
	tab, err := E4PlanningCost(CostConfig{Seed: 2, Queries: 3, Sizes: []int{3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		mCTs, cCTs := atoiOr(row[2], 0), atoiOr(row[5], 0)
		if cCTs >= mCTs {
			t.Errorf("atoms=%s: GenCompact CTs (%d) should be fewer than GenModular's (%d)", row[0], cCTs, mCTs)
		}
	}
}

func TestE5PruningPreservesOptimum(t *testing.T) {
	tab, err := E5PruningAblation(CostConfig{Seed: 3, Queries: 3, Sizes: []int{3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	// All variants report identical summed best-plan cost.
	ref := tab.Rows[0][5]
	for _, row := range tab.Rows[1:] {
		if row[5] != ref {
			t.Errorf("%s changed the optimum: %s vs %s", row[0], row[5], ref)
		}
	}
	// And "no pruning" does at least as much work.
	if atoiOr(tab.Rows[len(tab.Rows)-1][1], 0) < atoiOr(tab.Rows[0][1], 0) {
		t.Error("unpruned variant should consider at least as many plans")
	}
}

func TestE6FeasibilityDominance(t *testing.T) {
	tab, err := E6Feasibility(QualityConfig{Seed: 4, Queries: 5, AtomCounts: []int{3, 5}, Rows: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Column 2 is GenCompact; it must dominate every other strategy in
	// every class row.
	for _, row := range tab.Rows {
		gc := row[2]
		for i := 3; i < len(row); i++ {
			if strings.Compare(pad(row[i]), pad(gc)) > 0 {
				t.Errorf("class %s: %s=%s exceeds GenCompact=%s", row[0], tab.Columns[i], row[i], gc)
			}
		}
	}
}

func TestE7Linearity(t *testing.T) {
	tab, err := E7CheckLinear(CheckConfig{Sizes: []int{8, 64, 256}, Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}
	// µs/atom must not explode: allow a generous 10x drift between the
	// smallest and largest size (a quadratic matcher would drift ~32x).
	first := atofOr(tab.Rows[0][2])
	last := atofOr(tab.Rows[len(tab.Rows)-1][2])
	if first <= 0 || last <= 0 {
		t.Fatalf("bad per-atom timings: %v %v", first, last)
	}
	if last > 10*first {
		t.Errorf("per-atom Check time drifts superlinearly: %.3f -> %.3f µs/atom", first, last)
	}
}

func TestE8CrossoverMonotone(t *testing.T) {
	tab, err := E8Crossover(CrossoverConfig{Size: 5000, K1Values: []float64{0, 10, 100000}})
	if err != nil {
		t.Fatal(err)
	}
	// Query count must not increase as k1 grows.
	prev := 1 << 30
	for _, row := range tab.Rows {
		q := atoiOr(row[1], 0)
		if q > prev {
			t.Errorf("query count increased with k1: %v", tab.Rows)
		}
		prev = q
	}
	// At the extreme a single coarse query wins (it still beats a full
	// download, which moves the whole catalog).
	lastRow := tab.Rows[len(tab.Rows)-1]
	if lastRow[1] != "1" {
		t.Errorf("huge k1 should collapse to a single source query: %v", lastRow)
	}
	// At k1=0, many narrow queries win.
	if atoiOr(tab.Rows[0][1], 0) < 3 {
		t.Errorf("k1=0 should pick several narrow queries: %v", tab.Rows[0])
	}
}

func TestVerifyStrategyCorrectness(t *testing.T) {
	checked, err := VerifyStrategyCorrectness(QualityConfig{
		Seed: 5, Queries: 4, AtomCounts: []int{3, 5}, Rows: 300,
		Classes: []workload.ProfileClass{workload.ProfileAtomic, workload.ProfileConjTemplates, workload.ProfileWithDownload},
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked < 10 {
		t.Errorf("only %d plans verified; workload too infeasible to be meaningful", checked)
	}
}

func TestReferenceOptimalityCheck(t *testing.T) {
	n, err := ReferenceOptimalityCheck(QualityConfig{
		Seed: 6, Queries: 3, AtomCounts: []int{3}, Rows: 200,
		Classes: []workload.ProfileClass{workload.ProfileAtomic, workload.ProfileConjTemplates},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no optimality agreements checked")
	}
}

func TestTableRenderers(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "demo", Claim: "c",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	txt := tab.Render()
	if !strings.Contains(txt, "EX — demo") || !strings.Contains(txt, "bb") {
		t.Errorf("Render:\n%s", txt)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "*Note:* n") {
		t.Errorf("Markdown:\n%s", md)
	}
}

// --- helpers ---

func rowMap(t *Table) map[string][]string {
	m := make(map[string][]string, len(t.Rows))
	for _, r := range t.Rows {
		m[r[0]] = r
	}
	return m
}

func atoiOr(s string, def int) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return def
		}
		n = n*10 + int(c-'0')
	}
	if s == "" {
		return def
	}
	return n
}

func atofOr(s string) float64 {
	var v float64
	var frac float64 = -1
	for _, c := range s {
		if c == '.' {
			frac = 0.1
			continue
		}
		if c < '0' || c > '9' {
			return -1
		}
		if frac < 0 {
			v = v*10 + float64(c-'0')
		} else {
			v += float64(c-'0') * frac
			frac /= 10
		}
	}
	return v
}

// pad makes "9.00" < "10.00" compare correctly as strings.
func pad(s string) string {
	if i := strings.IndexByte(s, '.'); i >= 0 && i < 3 {
		return strings.Repeat("0", 3-i) + s
	}
	return s
}

func TestE9JoinStrategiesAdapt(t *testing.T) {
	tab, err := E9Joins(1)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowMap(tab)
	vl := rows["value-list form"]
	if vl[1] != "semijoin" || vl[2] != "1" {
		t.Errorf("value-list profile should batch into 1 query: %v", vl)
	}
	sv := rows["single-value form"]
	if sv[1] != "semijoin" || atoiOr(sv[2], 0) < 2 {
		t.Errorf("single-value profile should split per binding: %v", sv)
	}
	dl := rows["download-only"]
	if dl[2] != "1" {
		t.Errorf("download-only profile should issue one download: %v", dl)
	}
	// All three compute the same join.
	if vl[4] != sv[4] || sv[4] != dl[4] {
		t.Errorf("join answers differ across profiles: %v %v %v", vl[4], sv[4], dl[4])
	}
}
