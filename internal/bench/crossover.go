package bench

import (
	"context"
	"fmt"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/ssdl"
	"repro/internal/workload"
)

// CrossoverConfig parameterizes experiment E8.
type CrossoverConfig struct {
	// K1Values are the per-query overhead values to sweep with K2 fixed
	// at 1 (default 0, 1, 10, 100, 1000, 10000).
	K1Values []float64
	// Size is the bookstore catalog size (default 20000).
	Size int
	Seed int64
}

func (c *CrossoverConfig) defaults() {
	if len(c.K1Values) == 0 {
		c.K1Values = []float64{0, 1, 10, 100, 1000, 10000}
	}
	if c.Size == 0 {
		c.Size = 20000
	}
}

// downloadableBookstoreGrammar extends the bookstore description with a
// download rule so that the k1 sweep has a one-query endpoint to cross to.
const downloadableBookstoreGrammar = `
source books
attrs author, title, isbn, price
key isbn
s1 -> author = $a:string
s2 -> title contains $t:string
s3 -> author = $a:string ^ title contains $t:string
dl -> true
attributes :: s1 : {author, title, isbn, price}
attributes :: s2 : {author, title, isbn, price}
attributes :: s3 : {author, title, isbn, price}
attributes :: dl : {author, title, isbn, price}
`

// E8Crossover sweeps the cost model's k1 (per-query overhead) with k2=1
// and reports the plan GenCompact picks for a many-author query: with
// cheap queries it issues one narrow query per author; as k1 grows it
// collapses to fewer, coarser queries and finally to a single download.
func E8Crossover(cfg CrossoverConfig) (*Table, error) {
	cfg.defaults()
	rel, _ := workload.Bookstore(cfg.Size, cfg.Seed)
	g, err := ssdl.Parse(downloadableBookstoreGrammar)
	if err != nil {
		return nil, err
	}
	est := cost.NewOracleEstimator(map[string]*relation.Relation{"books": rel})
	checker := ssdl.NewChecker(ssdl.CommutativeClosure(g, 0))

	// Five-author disjunction conjoined with a title keyword: many
	// narrow queries vs one broad keyword query vs full download.
	cond := condition.MustParse(`(author = "Sigmund Freud" _ author = "Carl Jung" _ author = "Author 1" _ author = "Author 2" _ author = "Author 3") ^ title contains "dreams"`)
	attrs := []string{"isbn", "title"}

	t := &Table{
		ID:      "E8",
		Title:   "Cost-model crossover (k1 sweep, k2 = 1)",
		Claim:   "GenCompact \"can be easily adapted to\" different cost models: the chosen plan shifts from many narrow queries to few coarse ones as per-query overhead grows",
		Columns: []string{"k1", "source queries", "downloads", "est. tuples moved", "plan cost"},
		Notes: []string{
			fmt.Sprintf("%d-book catalog; query: 5-author disjunction ∧ title keyword; download permitted", cfg.Size),
		},
	}
	for _, k1 := range cfg.K1Values {
		ctx := &planner.Context{
			Source:  "books",
			Checker: checker,
			Model:   cost.Model{K1: k1, K2: 1, Est: est},
		}
		pl, _, err := core.New().Plan(context.Background(), ctx, cond, attrs)
		if err != nil {
			return nil, err
		}
		qs := plan.SourceQueries(pl)
		downloads := 0
		moved := 0.0
		for _, q := range qs {
			if condition.IsTrue(q.Cond) {
				downloads++
			}
			moved += est.ResultSize("books", q.Cond)
		}
		t.Rows = append(t.Rows, []string{
			f2(k1), itoa(len(qs)), itoa(downloads), f2(moved), f2(ctx.Model.PlanCost(pl)),
		})
	}
	return t, nil
}
