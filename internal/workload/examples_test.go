package workload

import (
	"math/rand"
	"testing"

	"repro/internal/condition"
	"repro/internal/ssdl"
	"repro/internal/strset"
)

// These tables document which example queries each scenario grammar
// supports, directly via ssdl.Checker.Check — no planner involved. "raw"
// is the grammar as written; "closed" is its commutative closure, the
// form the mediator registers (§6.1). A query a raw grammar rejects only
// because of conjunct order must become supportable under closure;
// everything else (missing rules, value restrictions, operator
// restrictions, disjunction structure) must stay rejected.
func TestBookstoreGrammarExamples(t *testing.T) {
	runGrammarExamples(t, ssdl.MustParse(BookstoreGrammar), []grammarExample{
		{
			name:      "single author lookup (s1)",
			cond:      `author = "Sigmund Freud"`,
			raw:       true,
			closed:    true,
			wantAttrs: []string{"isbn", "title"},
		},
		{
			name:      "title keyword lookup (s2)",
			cond:      `title contains "dreams"`,
			raw:       true,
			closed:    true,
			wantAttrs: []string{"isbn", "author"},
		},
		{
			name:      "author and title form (s3)",
			cond:      `author = "Carl Jung" ^ title contains "dreams"`,
			raw:       true,
			closed:    true,
			wantAttrs: []string{"isbn", "price"},
		},
		{
			name:   "commuted author and title: order-only rejection, fixed by closure",
			cond:   `title contains "dreams" ^ author = "Carl Jung"`,
			raw:    false,
			closed: true,
		},
		{
			name:   "author disjunction: no form accepts it, closure cannot help",
			cond:   `author = "Sigmund Freud" _ author = "Carl Jung"`,
			raw:    false,
			closed: false,
		},
		{
			name:   "Example 1.1 target condition: needs the planner, not one form",
			cond:   Example11Condition,
			raw:    false,
			closed: false,
		},
		{
			name:   "price-only query: attribute never appears in a form",
			cond:   `price <= 100`,
			raw:    false,
			closed: false,
		},
	})
}

func TestCarsGrammarExamples(t *testing.T) {
	runGrammarExamples(t, ssdl.MustParse(CarsGrammar), []grammarExample{
		{
			name:      "style dropdown value (s_st)",
			cond:      `style = "sedan"`,
			raw:       true,
			closed:    true,
			wantAttrs: []string{"make", "model", "price"},
		},
		{
			name:   "style value outside the dropdown list",
			cond:   `style = "limo"`,
			raw:    false,
			closed: false,
		},
		{
			name:   "single size value (s_sz)",
			cond:   `size = "compact"`,
			raw:    true,
			closed: true,
		},
		{
			name:   "size list under the style form (s_ss)",
			cond:   `style = "sedan" ^ (size = "compact" _ size = "midsize")`,
			raw:    true,
			closed: true,
		},
		{
			name:   "make and price bound (s_mp)",
			cond:   `make = "Toyota" ^ price <= 20000`,
			raw:    true,
			closed: true,
		},
		{
			name:   "commuted make and price: order-only rejection, fixed by closure",
			cond:   `price <= 20000 ^ make = "Toyota"`,
			raw:    false,
			closed: true,
		},
		{
			name:   "strict < where the form only accepts <=",
			cond:   `make = "Toyota" ^ price < 20000`,
			raw:    false,
			closed: false,
		},
		{
			name:   "Example 1.2 target condition: needs distribution, not one form",
			cond:   Example12Condition,
			raw:    false,
			closed: false,
		},
	})
}

type grammarExample struct {
	name string
	cond string
	// raw / closed: supportable by the grammar as written / by its
	// commutative closure.
	raw, closed bool
	// wantAttrs, when set, must all be exported by the matched form(s)
	// (checked on the raw grammar, only meaningful when raw is true).
	wantAttrs []string
}

func runGrammarExamples(t *testing.T, g *ssdl.Grammar, examples []grammarExample) {
	t.Helper()
	rawChk := ssdl.NewChecker(g)
	closedChk := ssdl.NewChecker(ssdl.CommutativeClosure(g, ssdl.DefaultClosureLimit))
	for _, ex := range examples {
		t.Run(ex.name, func(t *testing.T) {
			cond := condition.MustParse(ex.cond)
			if got := !rawChk.Check(cond).Empty(); got != ex.raw {
				t.Errorf("raw grammar: supported=%v, want %v\ncondition: %s", got, ex.raw, cond.Key())
			}
			if got := !closedChk.Check(cond).Empty(); got != ex.closed {
				t.Errorf("closed grammar: supported=%v, want %v\ncondition: %s", got, ex.closed, cond.Key())
			}
			if len(ex.wantAttrs) > 0 && ex.raw {
				if !rawChk.Supports(cond, strset.New(ex.wantAttrs...)) {
					t.Errorf("raw grammar does not export %v for supported condition %s (got %v)",
						ex.wantAttrs, cond.Key(), rawChk.Check(cond))
				}
			}
		})
	}
}

// TestProfileClassShapes pins the structural contract of each random
// profile class on a fixed seed: what a freshly drawn grammar of the
// class must and must not support. The qa harness leans on these shapes;
// if RandomGrammar drifts, this points at the class rather than at a
// failing differential seed.
func TestProfileClassShapes(t *testing.T) {
	for _, class := range AllProfileClasses {
		t.Run(class.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			d := RandomDomain(r, 4)
			g := RandomGrammar(d, r, class)
			if err := g.Validate(); err != nil {
				t.Fatalf("invalid grammar: %v", err)
			}
			chk := ssdl.NewChecker(ssdl.CommutativeClosure(g, ssdl.DefaultClosureLimit))

			// Every class must leave at least one exported set containing
			// the domain key, or intersections would be inexact.
			foundKey := false
			for _, nt := range g.CondNTs() {
				if g.CondAttrs[nt].Has(d.KeyAttr()) {
					foundKey = true
					break
				}
			}
			if !foundKey {
				t.Errorf("class %s: no condition nonterminal exports the key %q", class, d.KeyAttr())
			}

			if class == ProfileWithDownload && chk.Downloadable().Empty() {
				t.Errorf("class %s: grammar is not downloadable", class)
			}
			if class == ProfileAtomic {
				// Atomic profiles must support at least one single atom
				// drawn from the domain.
				supported := false
				for i := 0; i < 16 && !supported; i++ {
					supported = !chk.Check(d.RandomQuery(r, 1)).Empty()
				}
				if !supported {
					t.Errorf("class %s: no single-atom query supported in 16 draws", class)
				}
			}
		})
	}
}
