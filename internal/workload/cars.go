package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/condition"
	"repro/internal/relation"
	"repro/internal/ssdl"
)

// The car-shopping scenario reproduces Example 1.2: a web form with
// single-value style, make and price fields and a multi-value size field,
// where every field may be left blank. The grammar encodes blank-field
// combinations as explicit alternatives (CFGs are epsilon-free here), and
// a recursive rule expresses the size value list.

// CarsGrammar is the SSDL description of the car-shopping form.
const CarsGrammar = `
source autos
attrs style, size, make, model, price, year
key model

# The style field is a dropdown: only the listed values are accepted.
stylec -> style = {"sedan", "coupe", "suv", "wagon", "convertible"}

slist -> size = $v:string _ slist | size = $v:string _ size = $v:string
sizec -> size = $v:string | ( slist )

s_full -> stylec ^ make = $m:string ^ price <= $p:int ^ sizec
s_smp  -> stylec ^ make = $m:string ^ price <= $p:int
s_ss   -> stylec ^ sizec
s_st   -> stylec
s_sz   -> sizec
s_mp   -> make = $m:string ^ price <= $p:int

attributes :: s_full : {style, size, make, model, price, year}
attributes :: s_smp  : {style, size, make, model, price, year}
attributes :: s_ss   : {style, size, make, model, price, year}
attributes :: s_st   : {style, size, make, model, price, year}
attributes :: s_sz   : {style, size, make, model, price, year}
attributes :: s_mp   : {style, size, make, model, price, year}
`

// Example12Condition is the target-query condition of Example 1.2.
const Example12Condition = `style = "sedan" ^ (size = "compact" _ size = "midsize") ^ ((make = "Toyota" ^ price <= 20000) _ (make = "BMW" ^ price <= 40000))`

// Example12Attrs are the attributes the car shopper wants back.
var Example12Attrs = []string{"make", "model", "price"}

// DefaultCarsSize is the listing count used by experiment E2.
const DefaultCarsSize = 20000

// Cars generates n car-for-sale listings. Deterministic for a given seed.
func Cars(n int, seed int64) (*relation.Relation, *ssdl.Grammar) {
	r := rand.New(rand.NewSource(seed))
	g := ssdl.MustParse(CarsGrammar)
	rel := relation.New(relation.MustSchema(
		relation.Column{Name: "style", Kind: condition.KindString},
		relation.Column{Name: "size", Kind: condition.KindString},
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
		relation.Column{Name: "year", Kind: condition.KindInt},
	))
	styles := []string{"sedan", "coupe", "suv", "wagon", "convertible"}
	sizes := []string{"compact", "midsize", "fullsize"}
	makes := []string{"Toyota", "BMW", "Honda", "Ford", "Volvo", "Mazda", "Audi", "Saab"}
	for i := 0; i < n; i++ {
		mk := makes[r.Intn(len(makes))]
		var price int64
		switch mk {
		case "BMW", "Audi":
			price = int64(25000 + r.Intn(50000))
		case "Toyota", "Honda", "Mazda":
			price = int64(9000 + r.Intn(26000))
		default:
			price = int64(12000 + r.Intn(38000))
		}
		if err := rel.AppendValues(
			condition.String(styles[r.Intn(len(styles))]),
			condition.String(sizes[r.Intn(len(sizes))]),
			condition.String(mk),
			condition.String(fmt.Sprintf("%s-%06d", mk, i)),
			condition.Int(price),
			condition.Int(int64(1990+r.Intn(9))),
		); err != nil {
			panic(err) // impossible: fixed schema
		}
	}
	return rel, g
}
