package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/condition"
	"repro/internal/ssdl"
)

// ProfileClass identifies a family of capability profiles, modeling the
// restriction categories of §4 (condition-attribute, condition-expression-
// size and condition-expression-structure restrictions).
type ProfileClass int

const (
	// ProfileAtomic supports only single atomic conditions (the most
	// restrictive structure restriction: "allowing only atomic condition
	// expressions").
	ProfileAtomic ProfileClass = iota
	// ProfileConjTemplates supports a handful of fixed conjunctive
	// templates, like typical web forms ("allowing only conjunctive
	// queries" + form-structure restrictions).
	ProfileConjTemplates
	// ProfileFormLike supports one form with optional trailing fields
	// and a value list on one categorical field, like Example 1.2.
	ProfileFormLike
	// ProfileWithDownload is ProfileConjTemplates plus a download rule.
	ProfileWithDownload
	// ProfileHostile supports a single 3-attribute template; most
	// queries are infeasible.
	ProfileHostile
)

// String names the class in experiment tables.
func (c ProfileClass) String() string {
	switch c {
	case ProfileAtomic:
		return "atomic"
	case ProfileConjTemplates:
		return "conj-templates"
	case ProfileFormLike:
		return "form-like"
	case ProfileWithDownload:
		return "with-download"
	case ProfileHostile:
		return "hostile"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// AllProfileClasses lists every class, for experiment sweeps.
var AllProfileClasses = []ProfileClass{
	ProfileAtomic, ProfileConjTemplates, ProfileFormLike, ProfileWithDownload, ProfileHostile,
}

// RandomGrammar builds a random SSDL description of the given class over
// the domain. Exported attribute sets always include the domain key, so
// intersection plans stay exact.
func RandomGrammar(d *Domain, r *rand.Rand, class ProfileClass) *ssdl.Grammar {
	g := ssdl.NewGrammar(d.Name)
	g.Schema = d.AttrNames()
	g.Key = d.KeyAttr()
	allAttrs := d.AttrNames()

	exportFor := func(involved []string) []string {
		set := map[string]bool{g.Key: true}
		for _, a := range involved {
			set[a] = true
		}
		// Export extra attributes at random: real forms return whole
		// result rows, so exports are usually much wider than the
		// condition fields. Wide exports are what make mediator-side
		// evaluation of sibling conditions possible.
		for _, a := range allAttrs {
			if r.Intn(2) == 0 {
				set[a] = true
			}
		}
		out := make([]string, 0, len(set))
		for a := range set {
			out = append(out, a)
		}
		return out
	}

	addCondRule := func(name string, syms []ssdl.Symbol, involved []string) {
		if err := g.AddRule(name, syms); err != nil {
			panic(err) // impossible: generated bodies are non-empty
		}
		g.SetCondAttrs(name, exportFor(involved)...)
	}

	switch class {
	case ProfileAtomic:
		i := 0
		for _, a := range d.Attrs {
			for _, op := range a.Ops {
				addCondRule(fmt.Sprintf("s%d", i), []ssdl.Symbol{atomSym(a, op)}, []string{a.Name})
				i++
			}
		}
	case ProfileConjTemplates, ProfileWithDownload:
		ntempl := 3 + r.Intn(4)
		for i := 0; i < ntempl; i++ {
			k := 2 + r.Intn(3)
			idxs := r.Perm(len(d.Attrs))[:min(k, len(d.Attrs))]
			var syms []ssdl.Symbol
			var involved []string
			for j, ai := range idxs {
				if j > 0 {
					syms = append(syms, ssdl.Symbol{Kind: ssdl.SymAnd})
				}
				a := d.Attrs[ai]
				syms = append(syms, atomSym(a, a.Ops[r.Intn(len(a.Ops))]))
				involved = append(involved, a.Name)
			}
			addCondRule(fmt.Sprintf("s%d", i), syms, involved)
		}
		// Singleton rules for several attributes keep the class from
		// being all-or-nothing.
		for i := 0; i < 4 && i < len(d.Attrs); i++ {
			a := d.Attrs[i]
			addCondRule(fmt.Sprintf("t%d", i), []ssdl.Symbol{atomSym(a, a.Ops[0])}, []string{a.Name})
		}
		if class == ProfileWithDownload {
			if err := g.AddRule("dl", []ssdl.Symbol{{Kind: ssdl.SymTrue}}); err != nil {
				panic(err)
			}
			g.SetCondAttrs("dl", allAttrs...)
		}
	case ProfileFormLike:
		// Pick 3-4 form fields; support every non-empty prefix.
		k := min(3+r.Intn(2), len(d.Attrs))
		idxs := r.Perm(len(d.Attrs))[:k]
		// A value list on the first categorical field, if any.
		listAttr := -1
		for _, ai := range idxs {
			if d.Attrs[ai].Kind == condition.KindString {
				listAttr = ai
				break
			}
		}
		if listAttr >= 0 {
			a := d.Attrs[listAttr]
			atom := atomSym(a, condition.OpEq)
			if err := g.AddRule("vlist", []ssdl.Symbol{atom, {Kind: ssdl.SymOr}, ssdl.NonTerm("vlist")}); err != nil {
				panic(err)
			}
			if err := g.AddRule("vlist", []ssdl.Symbol{atom, {Kind: ssdl.SymOr}, atom}); err != nil {
				panic(err)
			}
		}
		for p := 1; p <= len(idxs); p++ {
			var syms []ssdl.Symbol
			var involved []string
			for j := 0; j < p; j++ {
				if j > 0 {
					syms = append(syms, ssdl.Symbol{Kind: ssdl.SymAnd})
				}
				a := d.Attrs[idxs[j]]
				if idxs[j] == listAttr {
					if p == 1 {
						// A bare list is a top-level disjunction: no
						// parentheses (linearization leaves the top
						// level unwrapped).
						syms = append(syms, ssdl.NonTerm("vlist"))
					} else {
						syms = append(syms, ssdl.Symbol{Kind: ssdl.SymLParen}, ssdl.NonTerm("vlist"), ssdl.Symbol{Kind: ssdl.SymRParen})
					}
				} else {
					syms = append(syms, atomSym(a, a.Ops[r.Intn(len(a.Ops))]))
				}
				involved = append(involved, a.Name)
			}
			addCondRule(fmt.Sprintf("f%d", p), syms, involved)
			// Also the single-value variant of the list field.
			if p >= 1 && listAttr >= 0 && contains(idxs[:p], listAttr) {
				var alt []ssdl.Symbol
				for j := 0; j < p; j++ {
					if j > 0 {
						alt = append(alt, ssdl.Symbol{Kind: ssdl.SymAnd})
					}
					a := d.Attrs[idxs[j]]
					alt = append(alt, atomSym(a, condition.OpEq))
				}
				addCondRule(fmt.Sprintf("f%ds", p), alt, involved)
			}
		}
	case ProfileHostile:
		k := min(3, len(d.Attrs))
		idxs := r.Perm(len(d.Attrs))[:k]
		var syms []ssdl.Symbol
		var involved []string
		for j, ai := range idxs {
			if j > 0 {
				syms = append(syms, ssdl.Symbol{Kind: ssdl.SymAnd})
			}
			a := d.Attrs[ai]
			syms = append(syms, atomSym(a, a.Ops[0]))
			involved = append(involved, a.Name)
		}
		addCondRule("s0", syms, involved)
	}
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("workload: generated invalid grammar: %v", err))
	}
	return g
}

// atomSym builds the atomic pattern symbol `attr op $v:kind`.
func atomSym(a AttrSpec, op condition.Op) ssdl.Symbol {
	kind := ssdl.StringValue
	switch a.Kind {
	case condition.KindInt:
		kind = ssdl.IntValue
	case condition.KindFloat:
		kind = ssdl.FloatValue
	}
	return ssdl.Symbol{Kind: ssdl.SymAtom, Atom: &ssdl.AtomPattern{
		Attr: a.Name,
		Op:   op,
		Val:  ssdl.Placeholder("v", kind),
	}}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
