// Package workload provides the evaluation substrate: the calibrated
// bookstore and car-shopping scenarios of Examples 1.1 and 1.2, plus
// generators for random relations, random target queries and random
// capability profiles. The paper's own experiments (in its unavailable
// extended version) ran against live 1999 web sources; these generators
// are the documented substitution (DESIGN.md §2).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/condition"
	"repro/internal/relation"
)

// AttrSpec describes one attribute of a synthetic domain: its type, the
// comparison operators queries use on it, and its value pool.
type AttrSpec struct {
	Name   string
	Kind   condition.Kind
	Ops    []condition.Op
	Values []condition.Value
}

// Domain is a synthetic schema shared by the relation generator, the query
// generator and the capability-profile generator, so that generated
// queries and grammars speak about the same atoms.
type Domain struct {
	Name  string
	Key   string // key attribute name ("" = first attribute)
	Attrs []AttrSpec
}

// Schema returns the relational schema of the domain, with a synthetic
// integer key column prepended when the domain has none.
func (d *Domain) Schema() *relation.Schema {
	cols := make([]relation.Column, 0, len(d.Attrs)+1)
	if d.Key == "" {
		cols = append(cols, relation.Column{Name: "id", Kind: condition.KindInt})
	}
	for _, a := range d.Attrs {
		cols = append(cols, relation.Column{Name: a.Name, Kind: a.Kind})
	}
	return relation.MustSchema(cols...)
}

// KeyAttr returns the name of the key attribute.
func (d *Domain) KeyAttr() string {
	if d.Key == "" {
		return "id"
	}
	return d.Key
}

// AttrNames returns the attribute names including the synthetic key.
func (d *Domain) AttrNames() []string {
	var out []string
	if d.Key == "" {
		out = append(out, "id")
	}
	for _, a := range d.Attrs {
		out = append(out, a.Name)
	}
	return out
}

// GenRelation builds a random relation over the domain with the given row
// count. Values are drawn uniformly from each attribute's pool; the
// synthetic key is sequential.
func (d *Domain) GenRelation(r *rand.Rand, rows int) *relation.Relation {
	rel := relation.New(d.Schema())
	for i := 0; i < rows; i++ {
		vals := make([]condition.Value, 0, len(d.Attrs)+1)
		if d.Key == "" {
			vals = append(vals, condition.Int(int64(i)))
		}
		for _, a := range d.Attrs {
			vals = append(vals, a.Values[r.Intn(len(a.Values))])
		}
		if err := rel.AppendValues(vals...); err != nil {
			panic(fmt.Sprintf("workload: %v", err)) // impossible: generated values match schema
		}
	}
	return rel
}

// RandomDomain builds a domain with nattrs attributes: a mix of
// categorical string attributes and numeric ones.
func RandomDomain(r *rand.Rand, nattrs int) *Domain {
	d := &Domain{Name: "rand"}
	for i := 0; i < nattrs; i++ {
		name := fmt.Sprintf("a%d", i)
		if i%3 == 2 {
			// Numeric attribute with range operators.
			vals := make([]condition.Value, 20)
			for j := range vals {
				vals[j] = condition.Int(int64(j * 10))
			}
			// Two operators keep query atoms and grammar patterns
			// plausibly aligned, the way real forms standardize on
			// "equals" and "at most".
			d.Attrs = append(d.Attrs, AttrSpec{
				Name:   name,
				Kind:   condition.KindInt,
				Ops:    []condition.Op{condition.OpEq, condition.OpLe},
				Values: vals,
			})
			continue
		}
		// Categorical attribute.
		card := 4 + r.Intn(12)
		vals := make([]condition.Value, card)
		for j := range vals {
			vals[j] = condition.String(fmt.Sprintf("v%d_%d", i, j))
		}
		d.Attrs = append(d.Attrs, AttrSpec{
			Name:   name,
			Kind:   condition.KindString,
			Ops:    []condition.Op{condition.OpEq},
			Values: vals,
		})
	}
	return d
}

// RandomAtom draws a random atomic condition over the domain.
func (d *Domain) RandomAtom(r *rand.Rand) *condition.Atomic {
	a := d.Attrs[r.Intn(len(d.Attrs))]
	op := a.Ops[r.Intn(len(a.Ops))]
	v := a.Values[r.Intn(len(a.Values))]
	return condition.NewAtomic(a.Name, op, v)
}

// RandomQuery builds a random condition tree with natoms atomic conditions
// and alternating connectors, rooted at an AND or OR at random. Trees are
// built by recursive splitting, so their shapes vary from flat to deep.
func (d *Domain) RandomQuery(r *rand.Rand, natoms int) condition.Node {
	return d.randomTree(r, natoms, r.Intn(2) == 0)
}

// RandomStructuredQuery builds a query with the shapes users actually
// type into mediators over form sources (and that the paper's examples
// have): a conjunction carrying one value-list disjunction, a disjunction
// of two or three conjunctions, or a plain conjunction. These exercise
// query splitting far more than uniformly random trees do.
func (d *Domain) RandomStructuredQuery(r *rand.Rand, natoms int) condition.Node {
	if natoms <= 1 {
		return d.RandomAtom(r)
	}
	switch r.Intn(3) {
	case 0:
		// Conjunction with a value list on one categorical attribute
		// (Example 1.2's size field).
		var cat *AttrSpec
		for i := range d.Attrs {
			if d.Attrs[i].Kind == condition.KindString && len(d.Attrs[i].Values) >= 2 {
				cat = &d.Attrs[i]
				break
			}
		}
		if cat == nil {
			return d.plainConjunction(r, natoms)
		}
		listLen := 2
		if natoms < 3 {
			return d.plainConjunction(r, natoms)
		}
		vs := r.Perm(len(cat.Values))[:listLen]
		list := &condition.Or{Kids: []condition.Node{
			condition.NewAtomic(cat.Name, condition.OpEq, cat.Values[vs[0]]),
			condition.NewAtomic(cat.Name, condition.OpEq, cat.Values[vs[1]]),
		}}
		kids := []condition.Node{list}
		for i := 0; i < natoms-listLen; i++ {
			kids = append(kids, d.RandomAtom(r))
		}
		return &condition.And{Kids: kids}
	case 1:
		// Disjunction of conjunctions (Example 1.1's author split).
		nterms := 2
		if natoms >= 6 && r.Intn(2) == 0 {
			nterms = 3
		}
		per := natoms / nterms
		terms := make([]condition.Node, nterms)
		for i := range terms {
			n := per
			if i == nterms-1 {
				n = natoms - per*(nterms-1)
			}
			terms[i] = d.plainConjunction(r, n)
		}
		return &condition.Or{Kids: terms}
	default:
		return d.plainConjunction(r, natoms)
	}
}

func (d *Domain) plainConjunction(r *rand.Rand, natoms int) condition.Node {
	if natoms <= 1 {
		return d.RandomAtom(r)
	}
	kids := make([]condition.Node, natoms)
	seen := map[string]bool{}
	for i := range kids {
		a := d.RandomAtom(r)
		// Avoid repeating an attribute inside one conjunction: repeated
		// equality conjuncts are trivially empty.
		for tries := 0; seen[a.Attr] && tries < 4; tries++ {
			a = d.RandomAtom(r)
		}
		seen[a.Attr] = true
		kids[i] = a
	}
	return &condition.And{Kids: kids}
}

func (d *Domain) randomTree(r *rand.Rand, natoms int, and bool) condition.Node {
	if natoms <= 1 {
		return d.RandomAtom(r)
	}
	// Split the atom budget across 2..min(4, natoms) children.
	nkids := 2 + r.Intn(min(3, natoms-1))
	counts := make([]int, nkids)
	for i := range counts {
		counts[i] = 1
	}
	for extra := natoms - nkids; extra > 0; extra-- {
		counts[r.Intn(nkids)]++
	}
	kids := make([]condition.Node, nkids)
	for i, c := range counts {
		if c == 1 {
			kids[i] = d.RandomAtom(r)
		} else {
			kids[i] = d.randomTree(r, c, !and)
		}
	}
	if and {
		return &condition.And{Kids: kids}
	}
	return &condition.Or{Kids: kids}
}
