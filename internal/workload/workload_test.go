package workload

import (
	"math/rand"
	"testing"

	"repro/internal/condition"
	"repro/internal/ssdl"
	"repro/internal/strset"
)

func TestBookstoreCalibration(t *testing.T) {
	rel, g := Bookstore(DefaultBookstoreSize, 1)
	if rel.Len() != DefaultBookstoreSize {
		t.Fatalf("catalog size = %d", rel.Len())
	}
	// Paper: the CNF plan extracts over 2000 entries...
	dreams, err := rel.Count(condition.MustParse(`title contains "dreams"`))
	if err != nil {
		t.Fatal(err)
	}
	if dreams <= 2000 {
		t.Errorf("dreams books = %d, want > 2000", dreams)
	}
	// ...while the two-query plan extracts fewer than 20.
	twoQuery := 0
	for _, author := range []string{"Sigmund Freud", "Carl Jung"} {
		n, err := rel.Count(condition.NewAnd(
			condition.NewAtomic("author", condition.OpEq, condition.String(author)),
			condition.NewAtomic("title", condition.OpContains, condition.String("dreams")),
		))
		if err != nil {
			t.Fatal(err)
		}
		twoQuery += n
	}
	if twoQuery >= 20 || twoQuery == 0 {
		t.Errorf("two-query plan extracts %d entries, want 0 < n < 20", twoQuery)
	}
	// The grammar supports the two-query shape but not the disjunction.
	c := ssdl.NewChecker(g)
	if c.Check(condition.MustParse(`author = "Carl Jung" ^ title contains "dreams"`)).Empty() {
		t.Error("author ^ title query should be supported")
	}
	if !c.Check(condition.MustParse(Example11Condition)).Empty() {
		t.Error("the full Example 1.1 condition must be unsupported")
	}
}

func TestBookstoreDeterministic(t *testing.T) {
	a, _ := Bookstore(1000, 7)
	b, _ := Bookstore(1000, 7)
	if !a.Equal(b) {
		t.Error("same seed should generate the same catalog")
	}
}

func TestCarsCalibration(t *testing.T) {
	rel, g := Cars(DefaultCarsSize, 1)
	if rel.Len() != DefaultCarsSize {
		t.Fatalf("listing count = %d", rel.Len())
	}
	cond := condition.MustParse(Example12Condition)
	n, err := rel.Count(cond)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("the Example 1.2 query should match some cars")
	}
	c := ssdl.NewChecker(ssdl.CommutativeClosure(g, 0))
	// The full condition is not supported directly...
	if !c.Check(cond).Empty() {
		t.Error("full Example 1.2 condition must be unsupported")
	}
	// ...but each split query is, in canonical order.
	split := condition.MustParse(`style = "sedan" ^ make = "Toyota" ^ price <= 20000 ^ (size = "compact" _ size = "midsize")`)
	if c.Check(split).Empty() {
		t.Error("the split query should be supported by the form")
	}
	// A single-value size query works too (DNF terms need it).
	single := condition.MustParse(`style = "sedan" ^ make = "Toyota" ^ price <= 20000 ^ size = "compact"`)
	if c.Check(single).Empty() {
		t.Error("single-size query should be supported")
	}
	// The CNF pushdown (style ^ sizes) is supported and coarse.
	push := condition.MustParse(`style = "sedan" ^ (size = "compact" _ size = "midsize")`)
	if c.Check(push).Empty() {
		t.Error("style ^ sizes should be supported (the CNF pushdown)")
	}
	coarse, err := rel.Count(push)
	if err != nil {
		t.Fatal(err)
	}
	if coarse <= 4*n {
		t.Errorf("CNF pushdown should be much coarser: %d vs %d", coarse, n)
	}
}

func TestDomainGenerators(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := RandomDomain(r, 6)
	if len(d.Attrs) != 6 {
		t.Fatalf("attrs = %d", len(d.Attrs))
	}
	rel := d.GenRelation(r, 500)
	if rel.Len() != 500 {
		t.Errorf("rows = %d", rel.Len())
	}
	if !rel.Schema().Has("id") {
		t.Error("synthetic key missing")
	}
	// Random queries have the requested atom count and evaluate cleanly.
	for natoms := 1; natoms <= 10; natoms++ {
		q := d.RandomQuery(r, natoms)
		if got := condition.Size(q); got != natoms {
			t.Errorf("RandomQuery(%d) has %d atoms", natoms, got)
		}
		if _, err := rel.Count(q); err != nil {
			t.Errorf("query does not evaluate: %v", err)
		}
	}
}

func TestRandomGrammarsValidAndUsable(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := RandomDomain(r, 6)
	for _, class := range AllProfileClasses {
		for trial := 0; trial < 10; trial++ {
			g := RandomGrammar(d, r, class)
			if err := g.Validate(); err != nil {
				t.Fatalf("%v: %v", class, err)
			}
			c := ssdl.NewChecker(g)
			// Every grammar supports at least one atomic query shape or
			// download.
			supportsSomething := !c.Downloadable().Empty()
			for _, a := range d.Attrs {
				for _, op := range a.Ops {
					atom := condition.NewAtomic(a.Name, op, a.Values[0])
					if !c.Check(atom).Empty() {
						supportsSomething = true
					}
				}
			}
			if !supportsSomething && class != ProfileHostile && class != ProfileConjTemplates && class != ProfileFormLike {
				t.Errorf("%v grammar supports nothing:\n%s", class, g.String())
			}
			// Exported sets always include the key.
			for nt, attrs := range g.CondAttrs {
				if !attrs.Has(g.Key) {
					t.Errorf("%v: rule %s does not export key: %v", class, nt, attrs)
				}
			}
		}
	}
}

func TestFormLikeGrammarAcceptsPrefixQueries(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	d := RandomDomain(r, 5)
	found := false
	for trial := 0; trial < 20 && !found; trial++ {
		g := RandomGrammar(d, r, ProfileFormLike)
		c := ssdl.NewChecker(g)
		// Find the first form rule's pattern and query it.
		for _, rule := range g.Rules {
			if !g.IsCondNT(rule.LHS) {
				continue
			}
			// Build a query from the rule's own atom patterns.
			var kids []condition.Node
			ok := true
			for _, sym := range rule.RHS {
				switch sym.Kind {
				case ssdl.SymAtom:
					v := valueFor(d, sym.Atom.Attr)
					kids = append(kids, condition.NewAtomic(sym.Atom.Attr, sym.Atom.Op, v))
				case ssdl.SymAnd:
				default:
					ok = false
				}
			}
			if !ok || len(kids) == 0 {
				continue
			}
			var q condition.Node = kids[0]
			if len(kids) > 1 {
				q = &condition.And{Kids: kids}
			}
			if !c.Check(q).Empty() {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no form-like grammar accepted its own template query")
	}
}

func valueFor(d *Domain, attr string) condition.Value {
	for _, a := range d.Attrs {
		if a.Name == attr {
			return a.Values[0]
		}
	}
	return condition.Int(0)
}

func TestProfileWithDownloadExportsAll(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	d := RandomDomain(r, 4)
	g := RandomGrammar(d, r, ProfileWithDownload)
	c := ssdl.NewChecker(g)
	if !c.Downloadable().Equal(strset.New(d.AttrNames()...)) {
		t.Errorf("download exports %v, want all attrs", c.Downloadable())
	}
}

func TestProfileClassString(t *testing.T) {
	for _, c := range AllProfileClasses {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

// Generated grammars and the fixture grammars must be lint-clean: a
// warning in a generator means silently dead capabilities in experiments.
func TestGeneratedGrammarsLintClean(t *testing.T) {
	for _, g := range []*ssdl.Grammar{
		ssdl.MustParse(BookstoreGrammar),
		ssdl.MustParse(CarsGrammar),
	} {
		if w := ssdl.Lint(g); len(w) != 0 {
			t.Errorf("%s grammar lint: %v", g.Source, w)
		}
	}
	r := rand.New(rand.NewSource(61))
	d := RandomDomain(r, 6)
	for _, class := range AllProfileClasses {
		for trial := 0; trial < 5; trial++ {
			g := RandomGrammar(d, r, class)
			if w := ssdl.Lint(g); len(w) != 0 {
				t.Errorf("%v grammar lint: %v\n%s", class, w, g.String())
			}
		}
	}
}
