package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/condition"
	"repro/internal/relation"
	"repro/internal/ssdl"
)

// The bookstore scenario reproduces Example 1.1: an online bookstore whose
// query form accepts an author, a title keyword, or both — but never a
// disjunction of authors. The catalog is calibrated so that the paper's
// numbers hold: the CNF (Garlic) plan extracts every book whose title
// matches "dreams" (>2000 entries at the default size), while the
// capability-sensitive two-query plan extracts fewer than 20.

// BookstoreGrammar is the SSDL description of the bookstore's form.
const BookstoreGrammar = `
source books
attrs author, title, isbn, price
key isbn
s1 -> author = $a:string
s2 -> title contains $t:string
s3 -> author = $a:string ^ title contains $t:string
attributes :: s1 : {author, title, isbn, price}
attributes :: s2 : {author, title, isbn, price}
attributes :: s3 : {author, title, isbn, price}
`

// Example11Condition is the target-query condition of Example 1.1.
const Example11Condition = `(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams"`

// Example11Attrs are the attributes requested by the Example 1.1 target
// query (the key is included so intersections stay exact).
var Example11Attrs = []string{"title", "isbn"}

// DefaultBookstoreSize is the catalog size that reproduces the paper's
// ">2000 vs <20" contrast.
const DefaultBookstoreSize = 100000

// Bookstore generates a catalog of n books. Deterministic for a given
// seed. Roughly 2.6% of titles mention dreams; Sigmund Freud has 6
// dreams-books of 12, Carl Jung 5 of 9.
func Bookstore(n int, seed int64) (*relation.Relation, *ssdl.Grammar) {
	r := rand.New(rand.NewSource(seed))
	g := ssdl.MustParse(BookstoreGrammar)
	rel := relation.New(relation.MustSchema(
		relation.Column{Name: "author", Kind: condition.KindString},
		relation.Column{Name: "title", Kind: condition.KindString},
		relation.Column{Name: "isbn", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	))
	isbn := 0
	add := func(author, title string) {
		isbn++
		if err := rel.AppendValues(
			condition.String(author), condition.String(title),
			condition.String(fmt.Sprintf("isbn-%07d", isbn)),
			condition.Int(int64(5+r.Intn(60)))); err != nil {
			panic(err) // impossible: fixed schema
		}
	}

	// The two famous authors, with known dreams-title counts.
	for i := 0; i < 12; i++ {
		if i < 6 {
			add("Sigmund Freud", fmt.Sprintf("On Dreams, Volume %d", i+1))
		} else {
			add("Sigmund Freud", fmt.Sprintf("Papers on Metapsychology %d", i+1))
		}
	}
	for i := 0; i < 9; i++ {
		if i < 5 {
			add("Carl Jung", fmt.Sprintf("Dreams and Symbols, Part %d", i+1))
		} else {
			add("Carl Jung", fmt.Sprintf("Collected Works %d", i+1))
		}
	}

	// The rest of the catalog.
	subjects := []string{"History", "Gardens", "Rivers", "Machines", "Cities", "Stars", "Music", "Bread", "Letters", "Maps"}
	for isbn < n {
		author := fmt.Sprintf("Author %d", r.Intn(n/20+1))
		var title string
		if r.Intn(1000) < 26 {
			title = fmt.Sprintf("The Book of Dreams No. %d", r.Intn(100000))
		} else {
			title = fmt.Sprintf("A Treatise on %s No. %d", subjects[r.Intn(len(subjects))], r.Intn(100000))
		}
		add(author, title)
	}
	return rel, g
}
