package obs

import (
	"sync"
	"testing"
)

func TestNilRegistryInstrumentsAreNoops(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_seconds", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	// All updates must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(3.2)
	h.Observe(0.1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments should read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestCounterIdentityAndValue(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("csqp_x_total", "source", "books")
	b := r.Counter("csqp_x_total", "source", "books")
	other := r.Counter("csqp_x_total", "source", "cars")
	if a != b {
		t.Fatal("same name+labels must resolve to the same counter")
	}
	if a == other {
		t.Fatal("different labels must resolve to different counters")
	}
	a.Inc()
	a.Add(4)
	a.Add(-10) // ignored: counters are monotone
	if got := a.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if other.Value() != 0 {
		t.Fatal("label sibling leaked counts")
	}
}

func TestGaugeSet(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("csqp_breaker_state", "source", "books")
	g.Set(2)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
	g.Set(0)
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %g, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.001, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("got %d histograms, want 1", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	// 0.001 and 0.01 land in le=0.01 (upper bound inclusive), 0.05 in
	// le=0.1, 0.5 in le=1, 5 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, n := range want {
		if hv.Buckets[i] != n {
			t.Fatalf("bucket %d = %d, want %d (buckets %v)", i, hv.Buckets[i], n, hv.Buckets)
		}
	}
	if hv.Count != 5 {
		t.Fatalf("count = %d, want 5", hv.Count)
	}
	if hv.Sum < 5.56 || hv.Sum > 5.57 {
		t.Fatalf("sum = %g, want ~5.561", hv.Sum)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Inc()
	r.Counter("a_total", "source", "z").Inc()
	r.Counter("a_total", "source", "a").Inc()
	snap := r.Snapshot()
	if len(snap.Counters) != 3 {
		t.Fatalf("got %d counters, want 3", len(snap.Counters))
	}
	if snap.Counters[0].Name != "a_total" || snap.Counters[0].Labels[0].Val != "a" {
		t.Fatalf("snapshot not sorted: %+v", snap.Counters)
	}
	if snap.Counters[2].Name != "b_total" {
		t.Fatalf("snapshot not sorted by name: %+v", snap.Counters)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total")
			h := r.Histogram("lat_seconds", nil)
			gauge := r.Gauge("state")
			for i := 0; i < 200; i++ {
				c.Inc()
				h.Observe(0.001 * float64(i%7))
				gauge.Set(float64(i % 3))
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != 8*200 {
		t.Fatalf("counter = %d, want %d", got, 8*200)
	}
	if got := r.Histogram("lat_seconds", nil).Count(); got != 8*200 {
		t.Fatalf("histogram count = %d, want %d", got, 8*200)
	}
}
