package obs

import (
	"context"
	"log/slog"
)

// discardHandler drops every record. (slog.DiscardHandler only exists
// from Go 1.24; this keeps the module buildable on its declared Go
// version.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var nopLogger = slog.New(discardHandler{})

// NopLogger returns a logger that discards every record. Components take
// a *slog.Logger for their event stream (swallowed errors, degradations,
// breaker transitions) and default to this when given nil, so logging is
// wired unconditionally and silenced by default.
func NopLogger() *slog.Logger { return nopLogger }

// LoggerOr returns l, or NopLogger when l is nil.
func LoggerOr(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}
