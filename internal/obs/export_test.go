package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func exportFixture() *Registry {
	r := NewRegistry()
	r.Counter("csqp_plan_cache_hits_total").Add(3)
	r.Counter("csqp_source_attempts_total", "source", "books").Add(7)
	r.Gauge("csqp_breaker_state", "source", "books").Set(2)
	h := r.Histogram("csqp_source_query_seconds", []float64{0.01, 0.1}, "source", "books")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, exportFixture().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE csqp_plan_cache_hits_total counter",
		"csqp_plan_cache_hits_total 3",
		`csqp_source_attempts_total{source="books"} 7`,
		"# TYPE csqp_breaker_state gauge",
		`csqp_breaker_state{source="books"} 2`,
		"# TYPE csqp_source_query_seconds histogram",
		`csqp_source_query_seconds_bucket{source="books",le="0.01"} 1`,
		`csqp_source_query_seconds_bucket{source="books",le="0.1"} 2`,
		`csqp_source_query_seconds_bucket{source="books",le="+Inf"} 3`,
		`csqp_source_query_seconds_count{source="books"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per metric name, even with multiple label sets.
	if got := strings.Count(out, "# TYPE csqp_source_query_seconds "); got != 1 {
		t.Errorf("got %d TYPE lines for the histogram, want 1", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "cond", "title contains \"dreams\"\n").Inc()
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `c_total{cond="title contains \"dreams\"\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping wrong:\n%s\nwant substring %s", b.String(), want)
	}
}

func TestHTTPHandler(t *testing.T) {
	h := NewHTTPHandler(exportFixture())

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "csqp_plan_cache_hits_total 3") {
		t.Fatalf("/metrics body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics.json status %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if len(snap.Counters) != 2 || len(snap.Gauges) != 1 || len(snap.Histograms) != 1 {
		t.Fatalf("unexpected snapshot shape: %+v", snap)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("/nope status %d, want 404", rec.Code)
	}
}
