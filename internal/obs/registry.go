package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent metrics registry: counters, gauges and
// fixed-bucket histograms, identified by name plus optional label pairs.
// Components resolve their instruments once at construction and then
// update them lock-free (atomic operations only); Snapshot serializes a
// consistent-enough view for export.
//
// All methods are nil-safe: instruments resolved from a nil *Registry
// are shared no-op dummies, so telemetry can be wired unconditionally
// and disabled by simply not providing a registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	name   string
	labels []Attr
	v      atomic.Int64
}

// Add increments the counter by n (negative n is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (breaker state, cache size).
type Gauge struct {
	name   string
	labels []Attr
	v      atomic.Int64 // float64 bits
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(int64(math.Float64bits(v)))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(uint64(g.v.Load()))
}

// DefaultLatencyBuckets are the fixed histogram bounds used for query
// latencies, in seconds: a 1-2.5-5 log scale from 1µs to 10s. The range
// starts at microseconds because the fast path really is that fast — a
// template hit plans in ~12µs while a cold plan takes ~6ms, and a linear
// scale starting at 100µs collapsed them into one bucket.
var DefaultLatencyBuckets = []float64{
	0.000001, 0.0000025, 0.000005,
	0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution. Observations are counted into
// the first bucket whose upper bound is >= the value; values beyond the
// last bound land in the implicit +Inf bucket.
type Histogram struct {
	name    string
	labels  []Attr
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last = +Inf
	count   atomic.Int64
	sum     atomic.Int64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := int64(math.Float64bits(math.Float64frombits(uint64(old)) + v))
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// key builds the registry map key for name plus label pairs.
func key(name string, labels []Attr) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\xff')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Val)
	}
	return b.String()
}

// pairs converts a variadic k1, v1, k2, v2 list into attrs (odd trailing
// keys get an empty value).
func pairs(kv []string) []Attr {
	var out []Attr
	for i := 0; i < len(kv); i += 2 {
		a := Attr{Key: kv[i]}
		if i+1 < len(kv) {
			a.Val = kv[i+1]
		}
		out = append(out, a)
	}
	return out
}

// Counter returns (creating if needed) the counter for name and label
// pairs, e.g. r.Counter("csqp_source_attempts_total", "source", "books").
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	labels := pairs(labelPairs)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[k]; ok {
		return c
	}
	c := &Counter{name: name, labels: labels}
	r.counters[k] = c
	return c
}

// Gauge returns (creating if needed) the gauge for name and label pairs.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	labels := pairs(labelPairs)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[k]; ok {
		return g
	}
	g := &Gauge{name: name, labels: labels}
	r.gauges[k] = g
	return g
}

// Histogram returns (creating if needed) the histogram for name and label
// pairs. A nil bounds slice uses DefaultLatencyBuckets. Bounds must be
// sorted ascending; they are fixed at first creation.
func (r *Registry) Histogram(name string, bounds []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	labels := pairs(labelPairs)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[k]; ok {
		return h
	}
	h := &Histogram{name: name, labels: labels, bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	r.hists[k] = h
	return h
}

// MetricValue is one exported counter or gauge sample.
type MetricValue struct {
	Name   string  `json:"name"`
	Labels []Attr  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramValue is one exported histogram.
type HistogramValue struct {
	Name    string    `json:"name"`
	Labels  []Attr    `json:"labels,omitempty"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // len(Bounds)+1; last is +Inf
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time view of every instrument in a registry.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures the registry's current values, sorted by name and
// labels for stable output. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	for _, c := range counters {
		s.Counters = append(s.Counters, MetricValue{Name: c.name, Labels: c.labels, Value: float64(c.v.Load())})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	for _, h := range hists {
		hv := HistogramValue{
			Name:   h.name,
			Labels: h.labels,
			Bounds: h.bounds,
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(uint64(h.sum.Load())),
		}
		hv.Buckets = make([]int64, len(h.buckets))
		for i := range h.buckets {
			hv.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return metricLess(s.Counters[i], s.Counters[j]) })
	sort.Slice(s.Gauges, func(i, j int) bool { return metricLess(s.Gauges[i], s.Gauges[j]) })
	sort.Slice(s.Histograms, func(i, j int) bool {
		a, b := s.Histograms[i], s.Histograms[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return labelString(a.Labels) < labelString(b.Labels)
	})
	return s
}

func metricLess(a, b MetricValue) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return labelString(a.Labels) < labelString(b.Labels)
}
