package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count series.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder
	lastType := make(map[string]bool)
	typeLine := func(name, kind string) {
		if !lastType[name] {
			lastType[name] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
		}
	}
	for _, c := range s.Counters {
		typeLine(c.Name, "counter")
		fmt.Fprintf(&b, "%s%s %s\n", c.Name, labelString(c.Labels), formatFloat(c.Value))
	}
	for _, g := range s.Gauges {
		typeLine(g.Name, "gauge")
		fmt.Fprintf(&b, "%s%s %s\n", g.Name, labelString(g.Labels), formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		typeLine(h.Name, "histogram")
		cum := int64(0)
		for i, n := range h.Buckets {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", h.Name, labelStringWith(h.Labels, "le", le), cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.Name, labelString(h.Labels), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, labelString(h.Labels), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...}, or "" for no labels.
func labelString(labels []Attr) string {
	if len(labels) == 0 {
		return ""
	}
	return labelStringWith(labels, "", "")
}

// labelStringWith renders labels plus one extra pair (skipped when the
// extra key is empty).
func labelStringWith(labels []Attr, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	put := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for _, l := range labels {
		put(l.Key, l.Val)
	}
	if extraKey != "" {
		put(extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// NewHTTPHandler serves the registry over HTTP:
//
//	GET /metrics       Prometheus text format
//	GET /metrics.json  JSON snapshot
//
// Mount it on a side port (csqp -metrics-addr) or alongside an existing
// mux.
func NewHTTPHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("GET /", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "csqp telemetry\n  /metrics       Prometheus text format\n  /metrics.json  JSON snapshot")
	})
	return mux
}
