// Package obs is the repository's unified telemetry layer: lightweight
// span tracing for one query's path through the mediator (rewrite →
// check/mark → generate → cost → fix → execute, down to per-attempt
// source spans), a concurrent metrics registry (counters, gauges,
// fixed-bucket latency histograms) absorbing the scattered per-component
// stats behind one snapshot API, export surfaces (Prometheus text format
// and a JSON snapshot over HTTP), and a structured log/slog event stream
// for swallowed errors, degradations and circuit-breaker transitions.
//
// Everything is stdlib-only and designed around a no-op fast path: with
// no Tracer in the context, Start returns immediately with a nil *Span
// whose methods are all nil-safe no-ops, costing zero allocations on the
// planning hot path (see BenchmarkSpanDisabled).
package obs
