package obs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestStartWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "anything")
	if sp != nil {
		t.Fatalf("expected nil span without a tracer, got %+v", sp)
	}
	if ctx2 != ctx {
		t.Fatal("expected the context to pass through unchanged")
	}
	// Every method must be nil-safe.
	sp.SetAttr("k", "v")
	sp.SetInt("n", 7)
	sp.SetErr(errors.New("boom"))
	sp.EndErr(nil)
	sp.End()
}

func TestDisabledTracingAllocatesNothing(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := Start(ctx, "plan.generate")
		sp.SetAttr("k", "v")
		sp.End()
		_ = c
	})
	// The whole point of the nil-span fast path: untraced queries must not
	// pay for the telemetry layer.
	if allocs > 0 {
		t.Fatalf("disabled Start allocated %.1f times per op, want 0", allocs)
	}
}

func TestSpanNestingAndTree(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := Start(ctx, "mediator.answer")
	ctx2, child := Start(ctx1, "mediator.plan")
	child.SetAttr("strategy", "GenCompact")
	_, grand := Start(ctx2, "plan.rewrite")
	grand.SetInt("cts", 3)
	grand.End()
	child.End()
	_, sib := Start(ctx1, "plan.execute")
	sib.EndErr(errors.New("source books: down"))
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Parent != 0 || spans[1].Parent != spans[0].ID || spans[2].Parent != spans[1].ID || spans[3].Parent != spans[0].ID {
		t.Fatalf("wrong parentage: %+v", spans)
	}

	tree := tr.Tree()
	for _, want := range []string{
		"mediator.answer",
		"\n  mediator.plan",
		"strategy=GenCompact",
		"\n    plan.rewrite",
		"cts=3",
		"\n  plan.execute",
		`error="source books: down"`,
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestTracerFrom(t *testing.T) {
	if TracerFrom(context.Background()) != nil {
		t.Fatal("empty context should carry no tracer")
	}
	tr := NewTracer(0)
	if got := TracerFrom(WithTracer(context.Background(), tr)); got != tr {
		t.Fatalf("TracerFrom = %v, want %v", got, tr)
	}
}

func TestTracerBufferBound(t *testing.T) {
	tr := NewTracer(2)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, "s")
		sp.End()
	}
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("buffer kept %d spans, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if tree := tr.Tree(); !strings.Contains(tree, "3 spans dropped") {
		t.Errorf("tree does not report drops:\n%s", tree)
	}
	// Start over a full tracer returns a nil (safe) span.
	_, sp := Start(ctx, "overflow")
	if sp != nil {
		t.Fatal("expected nil span from a full tracer")
	}

	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear the tracer")
	}
	if _, sp := Start(ctx, "after-reset"); sp == nil {
		t.Fatal("tracer unusable after Reset")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, sp := Start(ctx, "branch")
				_, inner := Start(c, "leaf")
				inner.SetInt("i", int64(i))
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 8*50*2 {
		t.Fatalf("got %d spans, want %d", got, 8*50*2)
	}
	_ = tr.Tree() // must not race or panic
}

func TestEndKeepsFirstDuration(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "once")
	sp.End()
	d := sp.Duration
	sp.End()
	if sp.Duration != d {
		t.Fatal("second End changed the duration")
	}
}
