package obs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanLimit bounds a Tracer's span buffer when NewTracer is given
// a non-positive limit. Spans beyond the bound are dropped (and counted)
// rather than growing memory without bound on pathological plans.
const DefaultSpanLimit = 4096

// Tracer records the spans of one traced operation (typically one target
// query) into a bounded buffer. A Tracer travels in a context.Context via
// WithTracer; code under that context opens spans with Start. All methods
// are safe for concurrent use — parallel plan branches record spans from
// their own goroutines.
type Tracer struct {
	id      int64
	mu      sync.Mutex
	spans   []*Span
	limit   int
	nextID  int
	dropped int
}

// traceSeq hands each Tracer a process-unique trace id, so log events
// (e.g. the slow-query flight recorder) can point back at a span tree.
var traceSeq atomic.Int64

// NewTracer returns a tracer buffering at most limit spans
// (DefaultSpanLimit when limit <= 0).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Tracer{id: traceSeq.Add(1), limit: limit}
}

// ID returns the tracer's process-unique trace id (0 for a nil tracer).
func (t *Tracer) ID() int64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Span is one timed region of a traced operation. The zero of *Span is
// nil, and every method is nil-safe, so untraced code paths cost nothing.
type Span struct {
	tr *Tracer

	// ID and Parent link the span into the trace tree (Parent 0 = root).
	ID, Parent int
	// Name identifies the region, e.g. "plan.rewrite" or "exec.source".
	Name string
	// Begin is the span's start time; Duration is set by End.
	Begin    time.Time
	Duration time.Duration
	// Attrs are key=value annotations recorded via SetAttr/SetInt.
	Attrs []Attr
	// Err is the error the region ended with, if any ("" = none).
	Err string

	ended bool
}

// Attr is one key=value span annotation.
type Attr struct {
	Key, Val string
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context carrying t; Start calls under it record
// spans into t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// Start opens a span named name under ctx's current span. With no tracer
// in ctx it returns (ctx, nil) without allocating — the disabled fast
// path. The caller must End the returned span (nil-safe).
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	if t == nil {
		return ctx, nil
	}
	parent := 0
	if ps, _ := ctx.Value(spanKey{}).(*Span); ps != nil {
		parent = ps.ID
	}
	s := t.newSpan(name, parent)
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

func (t *Tracer) newSpan(name string, parent int) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.limit {
		t.dropped++
		return nil
	}
	t.nextID++
	s := &Span{tr: t, ID: t.nextID, Parent: parent, Name: name, Begin: time.Now()}
	t.spans = append(t.spans, s)
	return s
}

// SetAttr annotates the span. No-op on a nil span.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
	s.tr.mu.Unlock()
}

// SetInt annotates the span with an integer value. No-op on a nil span.
func (s *Span) SetInt(key string, val int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(val, 10))
}

// SetErr records the error the region is ending with (nil err and nil
// span are both no-ops).
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.tr.mu.Lock()
	s.Err = err.Error()
	s.tr.mu.Unlock()
}

// End closes the span, fixing its duration. Repeated End calls keep the
// first duration; End on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.Duration = time.Since(s.Begin)
	}
	s.tr.mu.Unlock()
}

// EndErr records err (if non-nil) and closes the span.
func (s *Span) EndErr(err error) {
	s.SetErr(err)
	s.End()
}

// Spans returns a snapshot of the recorded spans in creation order.
func (t *Tracer) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports how many spans the buffer bound discarded.
func (t *Tracer) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all recorded spans, keeping the tracer usable for the
// next operation.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = t.spans[:0]
	t.dropped = 0
}

// Tree renders the span tree, one span per line, children indented under
// their parents:
//
//	mediator.answer                              1.832ms
//	  mediator.plan                              1.573ms  source=books strategy=GenCompact
//	    plan.rewrite                              41µs    cts=3
//	    plan.generate                            1.391ms  check_calls=57 plans_considered=21
//	    plan.fix                                   12µs
//	  plan.execute                                231µs
//	    exec.source                               229µs   source=books rows=12
//	      source.attempt                          201µs   attempt=1
func (t *Tracer) Tree() string {
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()

	kids := make(map[int][]*Span, len(spans))
	for _, s := range spans {
		kids[s.Parent] = append(kids[s.Parent], s)
	}
	for _, k := range kids {
		sort.Slice(k, func(i, j int) bool { return k[i].ID < k[j].ID })
	}

	var b strings.Builder
	var walk func(parent, depth int)
	walk = func(parent, depth int) {
		for _, s := range kids[parent] {
			name := strings.Repeat("  ", depth) + s.Name
			fmt.Fprintf(&b, "%-42s %10s", name, formatDur(s.Duration))
			for _, a := range s.Attrs {
				fmt.Fprintf(&b, "  %s=%s", a.Key, a.Val)
			}
			if s.Err != "" {
				fmt.Fprintf(&b, "  error=%q", s.Err)
			}
			b.WriteByte('\n')
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	if dropped > 0 {
		fmt.Fprintf(&b, "... %d spans dropped (buffer limit %d)\n", dropped, t.limit)
	}
	return b.String()
}

// formatDur rounds durations to a display-friendly precision.
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}
