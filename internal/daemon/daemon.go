package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/source"
)

// Defaults for Options' zero values.
const (
	DefaultMaxInFlight     = 64
	DefaultMaxQueue        = 128
	DefaultQueueTimeout    = time.Second
	DefaultDrainTimeout    = 10 * time.Second
	DefaultQueryDeadline   = 30 * time.Second
	DefaultDescribeTimeout = 10 * time.Second
)

// Options configure a Daemon.
type Options struct {
	// MaxInFlight bounds concurrently executing queries across all tenants
	// (0 = DefaultMaxInFlight).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot; beyond it
	// requests shed instantly (negative = no queue; 0 = DefaultMaxQueue).
	MaxQueue int
	// QueueTimeout bounds how long a query may wait queued
	// (0 = DefaultQueueTimeout).
	QueueTimeout time.Duration
	// QueryDeadline is the per-query execution deadline applied when the
	// request does not carry its own (0 = DefaultQueryDeadline).
	QueryDeadline time.Duration
	// CacheSize bounds the shared plan/template cache pool (entries each;
	// 0 = the mediator default, 512). All tenants draw on this budget.
	CacheSize int
	// SourceCacheSize enables per-source answer caching inside every
	// tenant system, with this many entries per source (0 = disabled).
	// Partitioning is inherent: each tenant's sources cache separately.
	SourceCacheSize int
	// SourceCacheTTL bounds answer staleness (see csqp.Options).
	SourceCacheTTL time.Duration
	// QueryTimeout/QueryRetries/BreakerThreshold configure each tenant
	// system's source resilience layer (see csqp.Options).
	QueryTimeout     time.Duration
	QueryRetries     int
	BreakerThreshold int
	// PartialAnswers lets Union plans degrade per tenant system.
	PartialAnswers bool
	// Logger receives the daemon's structured events (nil = silent).
	Logger *slog.Logger
	// Metrics is the registry everything exports through (nil = fresh).
	Metrics *obs.Registry
}

// Daemon hosts many named tenant federations behind one HTTP API.
type Daemon struct {
	opts   Options
	log    *slog.Logger
	reg    *obs.Registry
	shared *csqp.SharedPlanCaches
	pool   *source.Pool
	adm    *admission

	mu      sync.RWMutex
	tenants map[string]*tenant

	draining atomic.Bool

	cRequests *obs.Counter
	hRequest  *obs.Histogram
}

// tenant is one named federation: a csqp.System plus registration state.
type tenant struct {
	name string
	sys  *csqp.System
	mu   sync.Mutex // serializes registrations; queries are lock-free
}

// New builds a daemon. Tenants are created on first registration.
func New(o Options) *Daemon {
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.QueryDeadline <= 0 {
		o.QueryDeadline = DefaultQueryDeadline
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = DefaultMaxQueue
	}
	shared := csqp.NewSharedPlanCaches(o.CacheSize)
	shared.SetObs(o.Metrics)
	d := &Daemon{
		opts:      o,
		log:       obs.LoggerOr(o.Logger),
		reg:       o.Metrics,
		shared:    shared,
		pool:      source.NewPool(source.PoolOptions{Obs: o.Metrics}),
		adm:       newAdmission(o.MaxInFlight, max(o.MaxQueue, 0), o.QueueTimeout, o.Metrics),
		tenants:   make(map[string]*tenant),
		cRequests: o.Metrics.Counter("csqp_daemon_requests_total"),
		hRequest:  o.Metrics.Histogram("csqp_daemon_request_seconds", nil),
	}
	d.reg.Gauge("csqp_daemon_tenants").Set(0)
	return d
}

// Metrics returns the daemon's registry (shared with every tenant
// system).
func (d *Daemon) Metrics() *obs.Registry { return d.reg }

// ShedTotal reports how many queries admission control has shed.
func (d *Daemon) ShedTotal() int64 { return d.adm.shed.Load() }

// BeginDrain flips the daemon into draining: readiness reports 503 and
// new queries are rejected, while in-flight ones run to completion. The
// HTTP server's Shutdown does the connection-level draining; this makes
// the state observable (load balancers watch /readyz).
func (d *Daemon) BeginDrain() {
	if d.draining.CompareAndSwap(false, true) {
		d.log.Info("daemon: draining — readiness down, finishing in-flight queries")
		d.reg.Gauge("csqp_daemon_draining").Set(1)
	}
}

// Draining reports whether BeginDrain was called.
func (d *Daemon) Draining() bool { return d.draining.Load() }

// Close releases pooled connections (call after the server has drained).
func (d *Daemon) Close() { d.pool.CloseIdle() }

// tenantNameRE validates tenant names: they become cache partitions,
// metric labels and URL path segments, so keep them boring.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// tenant returns the named federation, creating it when create is set.
func (d *Daemon) tenant(name string, create bool) (*tenant, error) {
	if !tenantNameRE.MatchString(name) {
		return nil, &apiError{http.StatusBadRequest, fmt.Sprintf("invalid tenant name %q", name)}
	}
	d.mu.RLock()
	t, ok := d.tenants[name]
	d.mu.RUnlock()
	if ok {
		return t, nil
	}
	if !create {
		return nil, &apiError{http.StatusNotFound, fmt.Sprintf("unknown tenant %q", name)}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if t, ok := d.tenants[name]; ok {
		return t, nil
	}
	sys := csqp.NewSystem(csqp.Options{
		QueryTimeout:     d.opts.QueryTimeout,
		QueryRetries:     d.opts.QueryRetries,
		BreakerThreshold: d.opts.BreakerThreshold,
		PartialAnswers:   d.opts.PartialAnswers,
		SourceCacheSize:  d.opts.SourceCacheSize,
		SourceCacheTTL:   d.opts.SourceCacheTTL,
		Logger:           d.opts.Logger,
		Metrics:          d.reg,
	})
	sys.EnableSharedCache(d.shared, name)
	t = &tenant{name: name, sys: sys}
	d.tenants[name] = t
	d.reg.Gauge("csqp_daemon_tenants").Set(float64(len(d.tenants)))
	d.log.Info("daemon: tenant created", "tenant", name)
	return t, nil
}

// Handler returns the daemon's HTTP API:
//
//	GET  /healthz                      liveness (always 200 while up)
//	GET  /readyz                       readiness (503 while draining)
//	GET  /metrics, /metrics.json       telemetry registry
//	GET  /v1/tenants                   tenant listing
//	POST /v1/tenants/{t}/sources       register a source into t
//	GET  /v1/tenants/{t}/sources       list t's sources
//	POST /v1/tenants/{t}/query         answer a query against t
//	GET  /v1/tenants/{t}/recent        t's flight-recorder records
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if d.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("GET /metrics", obs.NewHTTPHandler(d.reg))
	mux.Handle("GET /metrics.json", obs.NewHTTPHandler(d.reg))
	mux.HandleFunc("GET /v1/tenants", d.handleTenants)
	mux.HandleFunc("POST /v1/tenants/{tenant}/sources", d.instrument(d.handleRegister))
	mux.HandleFunc("GET /v1/tenants/{tenant}/sources", d.handleSources)
	mux.HandleFunc("POST /v1/tenants/{tenant}/query", d.instrument(d.handleQuery))
	mux.HandleFunc("GET /v1/tenants/{tenant}/recent", d.handleRecent)
	return mux
}

// instrument wraps a handler with the request counter and latency
// histogram.
func (d *Daemon) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		d.cRequests.Inc()
		h(w, r)
		d.hRequest.Observe(time.Since(start).Seconds())
	}
}

// apiError carries an HTTP status with its message.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string { return e.Msg }

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps err onto the wire: apiError as-is, everything else by
// classification.
func (d *Daemon) writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	if errors.As(err, &ae) {
		writeJSON(w, ae.Status, map[string]string{"error": ae.Msg})
		return
	}
	if shed, ok := asShed(err); ok {
		w.Header().Set("Retry-After", strconv.Itoa(d.adm.retryAfter()))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error":  "overloaded, retry later",
			"reason": shed.Reason,
		})
		return
	}
	switch {
	case errors.Is(err, errClientGone):
		// 499-style: the client is gone; the code is moot but log-visible.
		writeJSON(w, http.StatusRequestTimeout, map[string]string{"error": err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": "query deadline exceeded"})
	case errors.Is(err, csqp.ErrInfeasible):
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
	default:
		var ref *source.RefusalError
		if errors.As(err, &ref) {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		var tr *source.TransportError
		if errors.As(err, &tr) {
			writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

// registerRequest registers one source into a tenant's federation:
// either a remote source by base URL (the production path — description
// and statistics are fetched from the source itself over the pooled
// transport) or an inline relation + SSDL description (tests,
// bootstrapping fixtures).
type registerRequest struct {
	BaseURL string `json:"base_url,omitempty"`
	SSDL    string `json:"ssdl,omitempty"`
	DataTSV string `json:"data_tsv,omitempty"`
}

type registerResponse struct {
	Tenant  string   `json:"tenant"`
	Source  string   `json:"source"`
	Sources []string `json:"sources"`
}

func (d *Daemon) handleRegister(w http.ResponseWriter, r *http.Request) {
	if d.draining.Load() {
		d.writeError(w, &apiError{http.StatusServiceUnavailable, "draining"})
		return
	}
	var req registerRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		d.writeError(w, &apiError{http.StatusBadRequest, "bad request body: " + err.Error()})
		return
	}
	t, err := d.tenant(r.PathValue("tenant"), true)
	if err != nil {
		d.writeError(w, err)
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var name string
	switch {
	case req.BaseURL != "" && req.SSDL == "":
		ctx, cancel := context.WithTimeout(r.Context(), DefaultDescribeTimeout)
		defer cancel()
		// The pooled client is shared per base URL across tenants and
		// queries: registration must not build a fresh connection pool.
		name, err = t.sys.AddHTTPSourceWith(ctx, req.BaseURL, d.pool.HTTPClient())
	case req.SSDL != "" && req.BaseURL == "":
		rel, rerr := relation.ReadTSV(strings.NewReader(req.DataTSV))
		if rerr != nil {
			d.writeError(w, &apiError{http.StatusBadRequest, "bad data_tsv: " + rerr.Error()})
			return
		}
		err = t.sys.AddSource(rel, req.SSDL)
		if err == nil {
			if g, gerr := csqp.ParseSSDL(req.SSDL); gerr == nil {
				name = g.Source
			}
		}
	default:
		d.writeError(w, &apiError{http.StatusBadRequest, "provide exactly one of base_url or ssdl (+data_tsv)"})
		return
	}
	if err != nil {
		if strings.Contains(err.Error(), "already registered") {
			d.writeError(w, &apiError{http.StatusConflict, err.Error()})
			return
		}
		d.writeError(w, err)
		return
	}
	d.log.Info("daemon: source registered", "tenant", t.name, "source", name, "base_url", req.BaseURL)
	writeJSON(w, http.StatusCreated, registerResponse{Tenant: t.name, Source: name, Sources: t.sys.Sources()})
}

func (d *Daemon) handleSources(w http.ResponseWriter, r *http.Request) {
	t, err := d.tenant(r.PathValue("tenant"), false)
	if err != nil {
		d.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, registerResponse{Tenant: t.name, Sources: t.sys.Sources()})
}

func (d *Daemon) handleTenants(w http.ResponseWriter, _ *http.Request) {
	d.mu.RLock()
	names := make([]string, 0, len(d.tenants))
	for n := range d.tenants {
		names = append(names, n)
	}
	d.mu.RUnlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"tenants": names})
}

func (d *Daemon) handleRecent(w http.ResponseWriter, r *http.Request) {
	t, err := d.tenant(r.PathValue("tenant"), false)
	if err != nil {
		d.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": t.name, "recent": t.sys.Recent()})
}

// queryRequest is one target query on the wire.
type queryRequest struct {
	// Source, Cond and Attrs state the target query SP(cond, attrs, src).
	Source string   `json:"source"`
	Cond   string   `json:"cond"`
	Attrs  []string `json:"attrs"`
	// Strategy selects the planner ("" = GenCompact).
	Strategy string `json:"strategy,omitempty"`
	// DeadlineMS bounds the query (0 = the daemon's default deadline).
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Profile includes the per-operator execution profile and the plan
	// fingerprint in the response.
	Profile bool `json:"profile,omitempty"`
	// Trace records the query's span tree and returns it rendered.
	Trace bool `json:"trace,omitempty"`
}

// queryResponse is a completed query on the wire. Rows carry every value
// in its text form; Columns names them in order.
type queryResponse struct {
	Tenant         string            `json:"tenant"`
	Source         string            `json:"source"`
	Strategy       string            `json:"strategy"`
	Columns        []string          `json:"columns"`
	Rows           [][]string        `json:"rows"`
	RowCount       int               `json:"row_count"`
	Cost           float64           `json:"cost"`
	SourceQueries  int               `json:"source_queries"`
	Cached         bool              `json:"cached,omitempty"`
	Template       bool              `json:"template,omitempty"`
	Partial        bool              `json:"partial,omitempty"`
	DroppedSources []string          `json:"dropped_sources,omitempty"`
	PartialReasons []string          `json:"partial_reasons,omitempty"`
	DurationMS     float64           `json:"duration_ms"`
	Fingerprint    string            `json:"fingerprint,omitempty"`
	Profile        *csqp.ExecProfile `json:"profile,omitempty"`
	Trace          string            `json:"trace,omitempty"`
}

func (d *Daemon) handleQuery(w http.ResponseWriter, r *http.Request) {
	if d.draining.Load() {
		d.writeError(w, &apiError{http.StatusServiceUnavailable, "draining"})
		return
	}
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		d.writeError(w, &apiError{http.StatusBadRequest, "bad request body: " + err.Error()})
		return
	}
	t, err := d.tenant(r.PathValue("tenant"), false)
	if err != nil {
		d.writeError(w, err)
		return
	}
	if req.Source == "" || req.Cond == "" || len(req.Attrs) == 0 {
		d.writeError(w, &apiError{http.StatusBadRequest, "source, cond and attrs are required"})
		return
	}
	strategy, err := csqp.ParseStrategy(req.Strategy)
	if err != nil {
		d.writeError(w, &apiError{http.StatusBadRequest, err.Error()})
		return
	}
	cond, err := csqp.ParseCondition(req.Cond)
	if err != nil {
		d.writeError(w, &apiError{http.StatusBadRequest, "bad condition: " + err.Error()})
		return
	}

	// The query's deadline exists before admission so queue waiting is
	// deadline-aware: a request that would expire in the queue is shed
	// now, not executed pointlessly later.
	deadline := d.opts.QueryDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	if err := d.adm.acquire(ctx.Done(), time.Now().Add(deadline)); err != nil {
		d.writeError(w, err)
		return
	}
	defer d.adm.release()

	var tr *csqp.Tracer
	if req.Trace {
		ctx, tr = csqp.Trace(ctx)
	}
	res, qerr := t.sys.QueryCond(ctx, strategy, req.Source, cond, req.Attrs)
	if res == nil {
		d.writeError(w, qerr)
		return
	}
	resp := queryResponse{
		Tenant:        t.name,
		Source:        req.Source,
		Strategy:      strategy.String(),
		RowCount:      res.Answer.Len(),
		Cost:          res.Cost,
		SourceQueries: len(res.SourceQueries),
		DurationMS:    float64(res.Duration.Microseconds()) / 1000,
	}
	if res.Metrics != nil {
		resp.Cached, resp.Template = res.Metrics.Cached, res.Metrics.Template
	}
	if qerr != nil {
		var pe *csqp.PartialError
		if !errors.As(qerr, &pe) {
			d.writeError(w, qerr)
			return
		}
		resp.Partial = true
		resp.DroppedSources = pe.DroppedSources()
		// WHY the answer is partial matters to the client: "truncated"
		// means the rows present are a sound prefix of a bounded source's
		// answer, "source-failed" means a branch is missing entirely.
		resp.PartialReasons = pe.Reasons()
	}
	res.Answer.Sort()
	for _, c := range res.Answer.Schema().Columns() {
		resp.Columns = append(resp.Columns, c.Name)
	}
	resp.Rows = make([][]string, 0, res.Answer.Len())
	for _, tup := range res.Answer.Tuples() {
		row := make([]string, len(tup.Values()))
		for i, v := range tup.Values() {
			row[i] = v.Text()
		}
		resp.Rows = append(resp.Rows, row)
	}
	if req.Profile {
		resp.Fingerprint = t.sys.Fingerprint(strategy, req.Source, cond, req.Attrs)
		resp.Profile = res.Profile
	}
	if tr != nil {
		resp.Trace = tr.Tree()
	}
	writeJSON(w, http.StatusOK, resp)
}
