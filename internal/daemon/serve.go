package daemon

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/obs"
)

// ServeOptions configure the hardened HTTP server lifecycle shared by
// cmd/csqpd and cmd/csqp -serve.
type ServeOptions struct {
	// Addr is the listen address (host:port).
	Addr string
	// Handler serves the application routes.
	Handler http.Handler
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish after ctx is cancelled (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// ReadHeaderTimeout guards against slowloris clients
	// (0 = 10 seconds).
	ReadHeaderTimeout time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// OnDrain runs once when shutdown begins, before connection draining
	// (the daemon flips readiness here). May be nil.
	OnDrain func()
	// OnListen receives the bound address once the listener is up (tests
	// and ":0" callers learn the real port here). May be nil.
	OnListen func(addr net.Addr)
	// Logger receives lifecycle events (nil = silent).
	Logger *slog.Logger
}

// Serve runs a hardened http.Server until ctx is cancelled, then drains:
// readiness is flipped via OnDrain, in-flight requests run to completion
// (bounded by DrainTimeout), idle connections are closed. It returns nil
// after a clean drain, the listen error otherwise. This is the one
// server lifecycle in the repo — the daemon and the single-source
// `-serve` mode both run through it, so neither can regress to a bare
// http.ListenAndServe with no timeouts and no drain.
func Serve(ctx context.Context, o ServeOptions) error {
	log := obs.LoggerOr(o.Logger)
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
	if o.ReadHeaderTimeout <= 0 {
		o.ReadHeaderTimeout = 10 * time.Second
	}
	handler := o.Handler
	if o.Pprof {
		mux := http.NewServeMux()
		mux.Handle("/", o.Handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: o.ReadHeaderTimeout,
		// No blanket write timeout: long queries own their deadline via
		// admission control; cutting the response mid-body helps nobody.
	}
	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return err
	}
	if o.OnListen != nil {
		o.OnListen(ln.Addr())
	}
	log.Info("serve: listening", "addr", ln.Addr().String())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if o.OnDrain != nil {
		o.OnDrain()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), o.DrainTimeout)
	defer cancel()
	log.Info("serve: draining", "timeout", o.DrainTimeout)
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Warn("serve: drain incomplete, closing", "err", err)
		_ = srv.Close()
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Info("serve: drained cleanly")
	return nil
}
