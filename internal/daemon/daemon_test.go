package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

// carsGrammar pushes only the make conjunct; price must be post-filtered
// by the mediator.
const carsGrammar = `
source cars
attrs make, model, price
key model
s1 -> make = $m:string
attributes :: s1 : {make, model, price}
`

// carsGrammarPushdown additionally pushes price < $p down to the source.
const carsGrammarPushdown = `
source cars
attrs make, model, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string
attributes :: s1 : {make, model, price}
attributes :: s2 : {make, model, price}
`

const carsTSV = "make:string\tmodel:string\tprice:int\n" +
	"BMW\t328i\t33000\n" +
	"BMW\tM5\t99000\n" +
	"Toyota\tCamry\t28000\n"

// newCarsLocal builds the cars relation + local source for HTTP serving.
func newCarsLocal(t *testing.T, grammar string) *source.Local {
	t.Helper()
	rel, err := relation.ReadTSV(strings.NewReader(carsTSV))
	if err != nil {
		t.Fatal(err)
	}
	src, err := source.NewLocal("", rel, ssdl.MustParse(grammar))
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// gatedSource serves the cars source over HTTP but holds every /query
// until release is closed (describe/stats answer immediately so
// registration works). arrived receives one signal per query that
// reached the source.
type gatedSource struct {
	inner   http.Handler
	release chan struct{}
	arrived chan struct{}
}

func newGatedSource(t *testing.T) *gatedSource {
	return &gatedSource{
		inner:   source.NewHandler(newCarsLocal(t, carsGrammar)),
		release: make(chan struct{}),
		arrived: make(chan struct{}, 64),
	}
}

func (g *gatedSource) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/query" {
		g.arrived <- struct{}{}
		select {
		case <-g.release:
		case <-r.Context().Done():
			return
		}
	}
	g.inner.ServeHTTP(w, r)
}

// postJSONErr posts v to url and returns the response and decoded body;
// safe off the test goroutine.
func postJSONErr(url string, v any) (*http.Response, map[string]any, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	var m map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, nil, fmt.Errorf("response %d not JSON: %s", resp.StatusCode, raw)
		}
	}
	return resp, m, nil
}

// postJSON is postJSONErr that fails the test on transport errors.
func postJSON(t *testing.T, url string, v any) (*http.Response, map[string]any) {
	t.Helper()
	resp, m, err := postJSONErr(url, v)
	if err != nil {
		t.Fatal(err)
	}
	return resp, m
}

// registerInline registers an inline cars source into the tenant.
func registerInline(t *testing.T, base, tenant, grammar string) {
	t.Helper()
	resp, m := postJSON(t, base+"/v1/tenants/"+tenant+"/sources",
		map[string]string{"ssdl": grammar, "data_tsv": carsTSV})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register into %s: status %d: %v", tenant, resp.StatusCode, m)
	}
}

var bmwQuery = map[string]any{
	"source": "cars",
	"cond":   `make = "BMW" ^ price < 40000`,
	"attrs":  []string{"model"},
}

func TestDaemonRegisterAndQuery(t *testing.T) {
	d := New(Options{})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	registerInline(t, ts.URL, "acme", carsGrammar)

	q := map[string]any{}
	for k, v := range bmwQuery {
		q[k] = v
	}
	q["profile"] = true
	resp, m := postJSON(t, ts.URL+"/v1/tenants/acme/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %v", resp.StatusCode, m)
	}
	rows := m["rows"].([]any)
	if len(rows) != 1 || rows[0].([]any)[0].(string) != "328i" {
		t.Fatalf("rows = %v, want [[328i]]", rows)
	}
	if m["fingerprint"] == nil || m["fingerprint"].(string) == "" {
		t.Error("profile=true should include the plan fingerprint")
	}
	if m["profile"] == nil {
		t.Error("profile=true should include the execution profile")
	}

	// The repeat is a cache hit within the tenant's partition.
	resp2, m2 := postJSON(t, ts.URL+"/v1/tenants/acme/query", bmwQuery)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat: status %d: %v", resp2.StatusCode, m2)
	}
	if m2["cached"] != true {
		t.Error("repeated query should report cached=true")
	}

	// Unknown tenant is 404; bad strategy and bad condition are 400.
	if resp, _ := postJSON(t, ts.URL+"/v1/tenants/nobody/query", bmwQuery); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tenant: status %d, want 404", resp.StatusCode)
	}
	bad := map[string]any{"source": "cars", "cond": "make =", "attrs": []string{"model"}}
	if resp, _ := postJSON(t, ts.URL+"/v1/tenants/acme/query", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad condition: status %d, want 400", resp.StatusCode)
	}
}

// TestDaemonTenantIsolation drives partition isolation end to end through
// the HTTP API: both tenants register a source named "cars" with the same
// query shape but different capabilities. If a cached plan crossed
// tenants, tenant B's source would refuse the pushed-down query.
func TestDaemonTenantIsolation(t *testing.T) {
	d := New(Options{})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	registerInline(t, ts.URL, "tenant-a", carsGrammarPushdown)
	registerInline(t, ts.URL, "tenant-b", carsGrammar)

	respA, mA := postJSON(t, ts.URL+"/v1/tenants/tenant-a/query", bmwQuery)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("tenant A: status %d: %v", respA.StatusCode, mA)
	}
	respB, mB := postJSON(t, ts.URL+"/v1/tenants/tenant-b/query", bmwQuery)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("tenant B (cross-tenant plan leak?): status %d: %v", respB.StatusCode, mB)
	}
	if mB["cached"] == true {
		t.Error("tenant B's first query must not hit tenant A's cache partition")
	}
	if len(mA["rows"].([]any)) != 1 || len(mB["rows"].([]any)) != 1 {
		t.Errorf("both tenants should answer 1 row; got %v and %v", mA["rows"], mB["rows"])
	}
}

// startGated boots a daemon whose only tenant has one gated remote
// source, so queries block inside execution until released.
func startGated(t *testing.T, opts Options) (*Daemon, *httptest.Server, *gatedSource) {
	t.Helper()
	gate := newGatedSource(t)
	srcServer := httptest.NewServer(gate)
	t.Cleanup(srcServer.Close)

	d := New(opts)
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)

	resp, m := postJSON(t, ts.URL+"/v1/tenants/acme/sources",
		map[string]string{"base_url": srcServer.URL})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register remote source: status %d: %v", resp.StatusCode, m)
	}
	return d, ts, gate
}

func TestDaemonShedsWhenQueueFull(t *testing.T) {
	d, ts, gate := startGated(t, Options{MaxInFlight: 1, MaxQueue: -1, QueueTimeout: 2 * time.Second})

	// Occupy the single slot.
	done := make(chan int, 1)
	go func() {
		resp, _, err := postJSONErr(ts.URL+"/v1/tenants/acme/query", bmwQuery)
		if err != nil {
			done <- 0
			return
		}
		done <- resp.StatusCode
	}()
	<-gate.arrived

	// No queue: the next query sheds instantly with 429 + Retry-After.
	resp, m := postJSON(t, ts.URL+"/v1/tenants/acme/query", bmwQuery)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated daemon: status %d, want 429 (%v)", resp.StatusCode, m)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	if m["reason"] != shedQueueFull {
		t.Errorf("shed reason = %v, want %s", m["reason"], shedQueueFull)
	}
	if d.ShedTotal() != 1 {
		t.Errorf("ShedTotal = %d, want 1", d.ShedTotal())
	}

	close(gate.release)
	if code := <-done; code != http.StatusOK {
		t.Errorf("occupying query: status %d, want 200", code)
	}
}

func TestDaemonShedsOnQueueTimeout(t *testing.T) {
	_, ts, gate := startGated(t, Options{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 60 * time.Millisecond})
	defer close(gate.release)

	go postJSONErr(ts.URL+"/v1/tenants/acme/query", bmwQuery)
	<-gate.arrived

	// The queued waiter never gets a slot within the queue timeout.
	start := time.Now()
	resp, m := postJSON(t, ts.URL+"/v1/tenants/acme/query", bmwQuery)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued past timeout: status %d, want 429 (%v)", resp.StatusCode, m)
	}
	if m["reason"] != shedQueueTimeout {
		t.Errorf("shed reason = %v, want %s", m["reason"], shedQueueTimeout)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("shed took %v; the bounded queue must not wait indefinitely", waited)
	}
}

func TestDaemonShedsExpiredDeadlines(t *testing.T) {
	_, ts, gate := startGated(t, Options{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second})
	defer close(gate.release)

	go postJSONErr(ts.URL+"/v1/tenants/acme/query", bmwQuery)
	<-gate.arrived

	// The caller's own deadline expires long before the queue timeout:
	// admission must shed at the deadline, not hold the slot for 5s.
	q := map[string]any{}
	for k, v := range bmwQuery {
		q[k] = v
	}
	q["deadline_ms"] = 50
	start := time.Now()
	resp, m := postJSON(t, ts.URL+"/v1/tenants/acme/query", q)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expired deadline: status %d, want 429 (%v)", resp.StatusCode, m)
	}
	if m["reason"] != shedDeadline {
		t.Errorf("shed reason = %v, want %s", m["reason"], shedDeadline)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("deadline shed took %v, want ~50ms", waited)
	}
}

func TestDaemonReadinessFlipsOnDrain(t *testing.T) {
	d := New(Options{})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	registerInline(t, ts.URL, "acme", carsGrammar)

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", resp.StatusCode, err)
	}
	d.BeginDrain()
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: status %d, want 503", resp.StatusCode)
	}
	// Liveness stays up, but new queries and registrations are refused.
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: status %d, want 200", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/tenants/acme/query", bmwQuery); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("query during drain: status %d, want 503", resp.StatusCode)
	}
}

// TestServeDrainCompletesInFlight runs the real server lifecycle: a query
// is mid-execution when shutdown begins, and it must still complete with
// its full answer — an accepted query is never lost to a drain.
func TestServeDrainCompletesInFlight(t *testing.T) {
	gate := newGatedSource(t)
	srcServer := httptest.NewServer(gate)
	defer srcServer.Close()

	d := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	served := make(chan error, 1)
	go func() {
		served <- Serve(ctx, ServeOptions{
			Addr:         "127.0.0.1:0",
			Handler:      d.Handler(),
			DrainTimeout: 5 * time.Second,
			OnDrain:      d.BeginDrain,
			OnListen:     func(a net.Addr) { addrc <- a },
		})
	}()
	base := "http://" + (<-addrc).String()

	resp, m := postJSON(t, base+"/v1/tenants/acme/sources", map[string]string{"base_url": srcServer.URL})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %v", resp.StatusCode, m)
	}

	var wg sync.WaitGroup
	var gotCode int
	var gotRows []any
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, m, err := postJSONErr(base+"/v1/tenants/acme/query", bmwQuery)
		if err != nil {
			return
		}
		gotCode = resp.StatusCode
		if rows, ok := m["rows"].([]any); ok {
			gotRows = rows
		}
	}()
	<-gate.arrived

	// SIGTERM arrives (ctx cancel) while the query is executing.
	cancel()
	time.Sleep(50 * time.Millisecond) // let shutdown begin
	if !d.Draining() {
		t.Error("OnDrain should have flipped the daemon into draining")
	}
	close(gate.release)
	wg.Wait()

	if gotCode != http.StatusOK {
		t.Fatalf("in-flight query during drain: status %d, want 200", gotCode)
	}
	if len(gotRows) != 1 {
		t.Errorf("in-flight query rows = %v, want the full 1-row answer", gotRows)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after a clean drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

func TestDaemonMetricsExposed(t *testing.T) {
	d, ts, gate := startGated(t, Options{MaxInFlight: 1, MaxQueue: -1})
	_ = d
	close(gate.release)

	if resp, m := postJSON(t, ts.URL+"/v1/tenants/acme/query", bmwQuery); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %v", resp.StatusCode, m)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"csqp_daemon_inflight",
		"csqp_daemon_admitted_total",
		"csqp_daemon_shed_total",
		"csqp_daemon_requests_total",
		"csqp_source_pool_clients",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestDaemonRejectsBadRegistrations(t *testing.T) {
	d := New(Options{})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		url  string
		body map[string]string
		want int
	}{
		{"both base_url and ssdl", "/v1/tenants/acme/sources",
			map[string]string{"base_url": "http://x", "ssdl": carsGrammar}, http.StatusBadRequest},
		{"neither", "/v1/tenants/acme/sources", map[string]string{}, http.StatusBadRequest},
		{"bad tenant name", "/v1/tenants/.hidden/sources",
			map[string]string{"ssdl": carsGrammar, "data_tsv": carsTSV}, http.StatusBadRequest},
		{"bad tsv", "/v1/tenants/acme/sources",
			map[string]string{"ssdl": carsGrammar, "data_tsv": "no-kind-header\nx"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, m := postJSON(t, ts.URL+tc.url, tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d (%v)", resp.StatusCode, tc.want, m)
			}
		})
	}

	// Duplicate registration conflicts.
	registerInline(t, ts.URL, "acme", carsGrammar)
	resp, _ := postJSON(t, ts.URL+"/v1/tenants/acme/sources",
		map[string]string{"ssdl": carsGrammar, "data_tsv": carsTSV})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate source: status %d, want 409", resp.StatusCode)
	}
}

func TestDaemonListingsAndErrorMapping(t *testing.T) {
	d := New(Options{})
	defer d.Close()
	if d.Metrics() == nil {
		t.Fatal("Metrics() must expose the shared registry")
	}
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	registerInline(t, ts.URL, "acme", carsGrammar)
	if resp, m := postJSON(t, ts.URL+"/v1/tenants/acme/query", bmwQuery); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %v", resp.StatusCode, m)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/v1/tenants"); code != http.StatusOK || !strings.Contains(body, "acme") {
		t.Errorf("GET /v1/tenants = %d %q, want 200 with acme", code, body)
	}
	if code, body := get("/v1/tenants/acme/sources"); code != http.StatusOK || !strings.Contains(body, "cars") {
		t.Errorf("GET sources = %d %q, want 200 with cars", code, body)
	}
	// The flight recorder saw the query above.
	if code, body := get("/v1/tenants/acme/recent"); code != http.StatusOK || !strings.Contains(body, "fingerprint") {
		t.Errorf("GET recent = %d %q, want 200 with a recorded query", code, body)
	}
	if code, _ := get("/v1/tenants/nobody/sources"); code != http.StatusNotFound {
		t.Errorf("GET sources for unknown tenant = %d, want 404", code)
	}

	// An unsupportable condition is the mediator's infeasible verdict: 422.
	infeasible := map[string]any{"source": "cars", "cond": "price < 10", "attrs": []string{"model"}}
	if resp, m := postJSON(t, ts.URL+"/v1/tenants/acme/query", infeasible); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("infeasible query: status %d, want 422 (%v)", resp.StatusCode, m)
	}
}

// TestDaemonQueryDeadlineDuringExecution covers the post-admission
// deadline: the query is admitted immediately (free slot) but its source
// never answers within deadline_ms, so the daemon must give up at the
// deadline rather than hold the slot forever.
func TestDaemonQueryDeadlineDuringExecution(t *testing.T) {
	_, ts, gate := startGated(t, Options{MaxInFlight: 4})
	defer close(gate.release)

	q := map[string]any{}
	for k, v := range bmwQuery {
		q[k] = v
	}
	q["deadline_ms"] = 80
	start := time.Now()
	resp, m := postJSON(t, ts.URL+"/v1/tenants/acme/query", q)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("query against a hung source returned 200: %v", m)
	}
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusBadGateway {
		t.Errorf("hung-source query: status %d, want 504 (or 502 if wrapped)", resp.StatusCode)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("deadline took %v to fire, want ~80ms", waited)
	}
}

// TestDaemonConcurrentMixedTenants hammers two tenants concurrently —
// under -race this doubles as the daemon's thread-safety check.
func TestDaemonConcurrentMixedTenants(t *testing.T) {
	d := New(Options{MaxInFlight: 4, MaxQueue: 64, QueueTimeout: 5 * time.Second})
	_ = d
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	registerInline(t, ts.URL, "tenant-a", carsGrammarPushdown)
	registerInline(t, ts.URL, "tenant-b", carsGrammar)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		tenant := "tenant-a"
		if i%2 == 1 {
			tenant = "tenant-b"
		}
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			resp, m, err := postJSONErr(ts.URL+"/v1/tenants/"+tenant+"/query", bmwQuery)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d: %v", tenant, resp.StatusCode, m)
				return
			}
			if rows := m["rows"].([]any); len(rows) != 1 {
				errs <- fmt.Errorf("%s: %d rows, want 1", tenant, len(rows))
			}
		}(tenant)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
