// Package daemon is the long-lived multi-tenant mediator service: an
// HTTP/JSON front end hosting many named federations (one csqp.System
// per tenant) over shared infrastructure — a pooled source transport,
// shared-capacity plan/template caches partitioned per tenant, one
// telemetry registry — with admission control, load shedding and
// graceful drain. The paper's mediator is implicitly this process; the
// CLI was only ever its one-shot shadow.
package daemon

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Admission control bounds the damage of overload: at most MaxInFlight
// queries execute, at most MaxQueue more wait, and nobody waits past the
// queue timeout or their own deadline. Everything beyond that is shed
// immediately with 429 + Retry-After — a fast no beats a slow maybe,
// because a queue without a bound converts overload into unbounded
// latency for everyone, then into memory exhaustion.

// Shed reasons, also the `reason` label on csqp_daemon_shed_total.
const (
	shedQueueFull    = "queue_full"    // queue at capacity, rejected instantly
	shedQueueTimeout = "queue_timeout" // waited the full queue timeout, no slot
	shedDeadline     = "deadline"      // caller's deadline expires before a slot could help
)

// errShed is an admission rejection; Reason is one of the shed reasons.
type errShed struct{ Reason string }

func (e *errShed) Error() string { return "daemon: overloaded (" + e.Reason + ")" }

// asShed extracts an admission rejection from err.
func asShed(err error) (*errShed, bool) {
	var s *errShed
	return s, errors.As(err, &s)
}

// admission is the max-in-flight semaphore plus the deadline-aware
// bounded queue in front of it.
type admission struct {
	sem          chan struct{} // cap = max in flight
	queue        chan struct{} // cap = max queued waiters
	queueTimeout time.Duration

	shed     atomic.Int64
	admitted atomic.Int64

	gInflight, gQueued      *obs.Gauge
	cAdmitted               *obs.Counter
	cShedFull, cShedTimeout *obs.Counter
	cShedDeadline           *obs.Counter
}

func newAdmission(maxInFlight, maxQueue int, queueTimeout time.Duration, reg *obs.Registry) *admission {
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if queueTimeout <= 0 {
		queueTimeout = DefaultQueueTimeout
	}
	return &admission{
		sem:           make(chan struct{}, maxInFlight),
		queue:         make(chan struct{}, maxQueue),
		queueTimeout:  queueTimeout,
		gInflight:     reg.Gauge("csqp_daemon_inflight"),
		gQueued:       reg.Gauge("csqp_daemon_queued"),
		cAdmitted:     reg.Counter("csqp_daemon_admitted_total"),
		cShedFull:     reg.Counter("csqp_daemon_shed_total", "reason", shedQueueFull),
		cShedTimeout:  reg.Counter("csqp_daemon_shed_total", "reason", shedQueueTimeout),
		cShedDeadline: reg.Counter("csqp_daemon_shed_total", "reason", shedDeadline),
	}
}

// acquire admits the request or rejects it. A *errShed result means the
// caller should answer 429 with Retry-After; a context error means the
// client is gone. The done channel is the request context's Done; dl is
// its deadline (zero time = none).
func (a *admission) acquire(done <-chan struct{}, dl time.Time) error {
	// Fast path: a free execution slot.
	select {
	case a.sem <- struct{}{}:
		a.admit()
		return nil
	default:
	}
	// Saturated: take a bounded queue slot or shed instantly.
	select {
	case a.queue <- struct{}{}:
	default:
		return a.reject(shedQueueFull)
	}
	a.gQueued.Set(float64(len(a.queue)))
	defer func() {
		<-a.queue
		a.gQueued.Set(float64(len(a.queue)))
	}()
	// Deadline-aware wait: never hold a waiter past the queue timeout,
	// and never past the point its own deadline makes success worthless.
	wait := a.queueTimeout
	reason := shedQueueTimeout
	if !dl.IsZero() {
		if until := time.Until(dl); until < wait {
			wait = until
			reason = shedDeadline
		}
	}
	if wait <= 0 {
		return a.reject(shedDeadline)
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case a.sem <- struct{}{}:
		a.admit()
		return nil
	case <-t.C:
		return a.reject(reason)
	case <-done:
		// done fires both when the client hangs up and when the request
		// context hits the query deadline; the latter races our own shed
		// timer, so classify by the clock rather than by which channel won.
		if !dl.IsZero() && !time.Now().Before(dl) {
			return a.reject(shedDeadline)
		}
		// Client hung up while queued; not a shed, nothing to serve.
		return fmt.Errorf("daemon: caller gone while queued: %w", errClientGone)
	}
}

var errClientGone = errors.New("client closed request")

func (a *admission) admit() {
	a.admitted.Add(1)
	a.cAdmitted.Inc()
	a.gInflight.Set(float64(len(a.sem)))
}

func (a *admission) release() {
	<-a.sem
	a.gInflight.Set(float64(len(a.sem)))
}

func (a *admission) reject(reason string) error {
	a.shed.Add(1)
	switch reason {
	case shedQueueFull:
		a.cShedFull.Inc()
	case shedQueueTimeout:
		a.cShedTimeout.Inc()
	default:
		a.cShedDeadline.Inc()
	}
	return &errShed{Reason: reason}
}

// retryAfter suggests when a shed caller should try again: the queue
// timeout rounded up to whole seconds (at least 1), the interval after
// which today's congestion has either drained or is persistent.
func (a *admission) retryAfter() int {
	s := int((a.queueTimeout + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
