package cost

import (
	"math"
	"sync"

	"repro/internal/condition"
)

// HeuristicEstimator estimates result sizes with textbook constants when
// no statistics are available for a source: equality selects 5%, ranges a
// third, substring matches 10%, with independence for AND/OR. It is the
// registry fallback for freshly discovered remote sources.
type HeuristicEstimator struct {
	// Rows is the assumed source cardinality (default 10000).
	Rows float64
}

// ResultSize implements Estimator.
func (h HeuristicEstimator) ResultSize(_ string, cond condition.Node) float64 {
	rows := h.Rows
	if rows <= 0 {
		rows = 10000
	}
	return rows * heuristicFraction(cond)
}

func heuristicFraction(n condition.Node) float64 {
	switch t := n.(type) {
	case *condition.Truth:
		return 1
	case *condition.Atomic:
		switch t.Op {
		case condition.OpEq:
			return 0.05
		case condition.OpNe:
			return 0.95
		case condition.OpContains:
			return 0.1
		case condition.OpNotContains:
			return 0.9
		default:
			return 1.0 / 3
		}
	case *condition.And:
		f := 1.0
		for _, k := range t.Kids {
			f *= heuristicFraction(k)
		}
		return f
	case *condition.Or:
		f := 0.0
		for _, k := range t.Kids {
			kf := heuristicFraction(k)
			f = f + kf - f*kf
		}
		return f
	default:
		return 0.5
	}
}

// Registry routes estimation to a per-source estimator, falling back to a
// heuristic for unknown sources. It is safe for concurrent use.
type Registry struct {
	// Fallback serves sources without a registered estimator; nil means
	// HeuristicEstimator{}.
	Fallback Estimator

	mu sync.RWMutex
	m  map[string]Estimator
}

// NewRegistry builds an empty registry with the default fallback.
func NewRegistry() *Registry { return &Registry{} }

// Set registers the estimator for a source.
func (r *Registry) Set(source string, e Estimator) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]Estimator)
	}
	r.m[source] = e
}

// ResultSize implements Estimator.
func (r *Registry) ResultSize(source string, cond condition.Node) float64 {
	r.mu.RLock()
	e := r.m[source]
	r.mu.RUnlock()
	if e == nil {
		e = r.Fallback
	}
	if e == nil {
		e = HeuristicEstimator{}
	}
	v := e.ResultSize(source, cond)
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	return v
}
