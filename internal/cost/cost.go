// Package cost implements the paper's cost model (§6.2): the cost of a
// plan is Σ over its source queries of k1 + k2·|result(sq)|, a linear
// model of per-query overhead (connection and form submission) plus
// per-tuple transfer and post-processing. It also provides the cardinality
// estimators the model needs and the Choice resolution that GenModular's
// cost module performs.
package cost

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/condition"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Estimator predicts the result cardinality of a source query.
type Estimator interface {
	// ResultSize estimates |σ_cond(R)| for the named source.
	ResultSize(source string, cond condition.Node) float64
}

// Coef holds one source's cost constants.
type Coef struct {
	// K1 is the fixed per-source-query cost.
	K1 float64
	// K2 is the per-result-tuple cost.
	K2 float64
	// Limit is the source's result bound (0 = unbounded). A bounded
	// interface never returns more than Limit tuples, so estimates are
	// capped at it before the per-tuple term is charged.
	Limit int
	// PageSize is the source's page size (0 = single-shot). A paginated
	// scan pays the fixed overhead K1 once PER PAGE — each page is its
	// own round-trip — so an estimated n-row answer costs
	// ceil(n/PageSize)·K1 + K2·n.
	PageSize int
}

// queryCost charges one source query for an estimated est-row answer.
func (c Coef) queryCost(est float64) float64 {
	if c.Limit > 0 && est > float64(c.Limit) {
		est = float64(c.Limit)
	}
	k1 := c.K1
	if c.PageSize > 0 {
		pages := math.Ceil(est / float64(c.PageSize))
		if pages < 1 {
			pages = 1
		}
		k1 = c.K1 * pages
	}
	return k1 + c.K2*est
}

// Model is the linear cost model with an estimator bound in. K1/K2 are
// the default constants; PerSource overrides them for individual sources,
// per the paper's "k1 and k2 are constants that depend on the source".
type Model struct {
	// K1 is the default fixed per-source-query cost.
	K1 float64
	// K2 is the default per-result-tuple cost.
	K2 float64
	// PerSource overrides the constants for specific sources. The map
	// may be shared and extended after the model is copied.
	PerSource map[string]Coef
	// Est supplies result-size estimates.
	Est Estimator
}

// Coef returns the constants effective for the source.
func (m Model) Coef(source string) Coef {
	if c, ok := m.PerSource[source]; ok {
		return c
	}
	return Coef{K1: m.K1, K2: m.K2}
}

// Infeasible is the cost of an infeasible plan; any feasible plan costs
// less.
var Infeasible = math.Inf(1)

// PlanCost returns the model cost of the plan. Choice nodes cost the
// minimum over their alternatives, so costing an unresolved GenModular
// Choice tree yields the cost of its best resolution.
func (m Model) PlanCost(p plan.Plan) float64 {
	switch t := p.(type) {
	case *plan.SourceQuery:
		return m.SourceQueryCost(t.Source, t.Cond)
	case *plan.Select:
		return m.PlanCost(t.Input)
	case *plan.Project:
		return m.PlanCost(t.Input)
	case *plan.Union:
		sum := 0.0
		for _, k := range t.Inputs {
			sum += m.PlanCost(k)
		}
		return sum
	case *plan.Intersect:
		sum := 0.0
		for _, k := range t.Inputs {
			sum += m.PlanCost(k)
		}
		return sum
	case *plan.Choice:
		best := Infeasible
		for _, k := range t.Alternatives {
			if c := m.PlanCost(k); c < best {
				best = c
			}
		}
		return best
	default:
		return Infeasible
	}
}

// SourceQueryCost returns the model cost of one source query: the
// source's fixed overhead (per page when paginated) plus the per-tuple
// term over the (result-bound-capped) estimated answer size.
func (m Model) SourceQueryCost(source string, cond condition.Node) float64 {
	return m.Coef(source).queryCost(m.Est.ResultSize(source, cond))
}

// Resolve replaces every Choice node with its cheapest alternative,
// returning the single concrete plan GenModular's cost module would pick.
// Resolving an empty Choice is an error.
func (m Model) Resolve(p plan.Plan) (plan.Plan, error) {
	switch t := p.(type) {
	case *plan.SourceQuery:
		return t, nil
	case *plan.Select:
		in, err := m.Resolve(t.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Select{Cond: t.Cond, Input: in}, nil
	case *plan.Project:
		in, err := m.Resolve(t.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Project{Attrs: t.Attrs, Input: in}, nil
	case *plan.Union:
		ins, err := m.resolveAll(t.Inputs)
		if err != nil {
			return nil, err
		}
		return &plan.Union{Inputs: ins}, nil
	case *plan.Intersect:
		ins, err := m.resolveAll(t.Inputs)
		if err != nil {
			return nil, err
		}
		return &plan.Intersect{Inputs: ins}, nil
	case *plan.Choice:
		if len(t.Alternatives) == 0 {
			return nil, fmt.Errorf("cost: cannot resolve empty Choice")
		}
		var best plan.Plan
		bestCost := Infeasible
		for _, alt := range t.Alternatives {
			r, err := m.Resolve(alt)
			if err != nil {
				return nil, err
			}
			if c := m.PlanCost(r); c < bestCost {
				bestCost = c
				best = r
			}
		}
		return best, nil
	default:
		return nil, fmt.Errorf("cost: unknown plan node %T", p)
	}
}

func (m Model) resolveAll(ps []plan.Plan) ([]plan.Plan, error) {
	out := make([]plan.Plan, len(ps))
	for i, p := range ps {
		r, err := m.Resolve(p)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// StatsEstimator estimates result sizes from per-source relation
// statistics under attribute independence.
type StatsEstimator struct {
	stats map[string]*relation.Stats
}

// NewStatsEstimator builds an estimator over per-source statistics.
func NewStatsEstimator(stats map[string]*relation.Stats) *StatsEstimator {
	return &StatsEstimator{stats: stats}
}

// ResultSize implements Estimator.
func (e *StatsEstimator) ResultSize(source string, cond condition.Node) float64 {
	st, ok := e.stats[source]
	if !ok {
		return 0
	}
	return st.EstimateCount(cond)
}

// OracleEstimator returns exact cardinalities by counting against the live
// relations; experiments use it so plan-quality comparisons measure the
// algorithms rather than estimation error. Counts are memoized; the
// estimator is safe for concurrent use.
type OracleEstimator struct {
	rels map[string]*relation.Relation

	mu    sync.Mutex
	cache map[string]float64
}

// NewOracleEstimator builds an exact estimator over the relations.
func NewOracleEstimator(rels map[string]*relation.Relation) *OracleEstimator {
	return &OracleEstimator{rels: rels, cache: make(map[string]float64)}
}

// ResultSize implements Estimator.
func (e *OracleEstimator) ResultSize(source string, cond condition.Node) float64 {
	key := source + "\x00" + cond.Key()
	e.mu.Lock()
	if v, ok := e.cache[key]; ok {
		e.mu.Unlock()
		return v
	}
	e.mu.Unlock()
	r, ok := e.rels[source]
	if !ok {
		return 0
	}
	n, err := r.Count(cond)
	if err != nil {
		// Conditions referencing unknown attributes match nothing.
		n = 0
	}
	v := float64(n)
	e.mu.Lock()
	e.cache[key] = v
	e.mu.Unlock()
	return v
}

// FixedEstimator returns a constant size for every query; useful in unit
// tests that need deterministic, shape-independent costs.
type FixedEstimator float64

// ResultSize implements Estimator.
func (f FixedEstimator) ResultSize(string, condition.Node) float64 { return float64(f) }
