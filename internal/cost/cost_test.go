package cost

import (
	"math"
	"strings"
	"testing"

	"repro/internal/condition"
	"repro/internal/plan"
	"repro/internal/relation"
)

func smallRelation(t *testing.T) *relation.Relation {
	t.Helper()
	s := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	for i, m := range []string{"BMW", "BMW", "Toyota", "Honda"} {
		if err := r.AppendValues(condition.String(m), condition.Int(int64(10000*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestSourceQueryCostLinear(t *testing.T) {
	m := Model{K1: 10, K2: 2, Est: FixedEstimator(5)}
	q := plan.NewSourceQuery("R", condition.MustParse(`a = 1`), []string{"x"})
	if got := m.PlanCost(q); got != 20 {
		t.Errorf("cost = %v, want 10 + 2*5 = 20", got)
	}
}

func TestPlanCostSumsSourceQueries(t *testing.T) {
	m := Model{K1: 10, K2: 1, Est: FixedEstimator(3)}
	q1 := plan.NewSourceQuery("R", condition.MustParse(`a = 1`), []string{"x"})
	q2 := plan.NewSourceQuery("R", condition.MustParse(`b = 2`), []string{"x"})
	u := &plan.Union{Inputs: []plan.Plan{q1, q2}}
	if got := m.PlanCost(u); got != 26 {
		t.Errorf("union cost = %v, want 26", got)
	}
	x := &plan.Intersect{Inputs: []plan.Plan{q1, q2}}
	if got := m.PlanCost(x); got != 26 {
		t.Errorf("intersect cost = %v, want 26", got)
	}
	// Mediator-side select/project are free in the paper's model.
	sel := plan.NewSP(condition.MustParse(`c = 3`), []string{"x"}, q1)
	if got := m.PlanCost(sel); got != 13 {
		t.Errorf("wrapped cost = %v, want 13", got)
	}
}

func TestChoiceCostIsMin(t *testing.T) {
	est := NewOracleEstimator(map[string]*relation.Relation{"R": smallRelation(t)})
	m := Model{K1: 1, K2: 1, Est: est}
	cheap := plan.NewSourceQuery("R", condition.MustParse(`make = "Honda"`), []string{"make"})
	costly := plan.NewSourceQuery("R", condition.True(), []string{"make"})
	ch := &plan.Choice{Alternatives: []plan.Plan{costly, cheap}}
	if got := m.PlanCost(ch); got != 2 { // 1 + 1*1
		t.Errorf("choice cost = %v, want 2", got)
	}
	resolved, err := m.Resolve(ch)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Key() != cheap.Key() {
		t.Errorf("resolved = %s, want the cheap alternative", resolved.Key())
	}
}

func TestResolveRecursesAndFailsOnEmptyChoice(t *testing.T) {
	m := Model{K1: 1, K2: 1, Est: FixedEstimator(1)}
	q := plan.NewSourceQuery("R", condition.MustParse(`a = 1`), []string{"x"})
	nested := &plan.Union{Inputs: []plan.Plan{
		&plan.Choice{Alternatives: []plan.Plan{q}},
		plan.NewSP(condition.MustParse(`b = 1`), []string{"x"}, &plan.Choice{Alternatives: []plan.Plan{q}}),
	}}
	r, err := m.Resolve(nested)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CountChoices(r) != 0 {
		t.Error("Resolve left Choice nodes behind")
	}
	if _, err := m.Resolve(&plan.Choice{}); err == nil {
		t.Error("empty choice should fail to resolve")
	}
}

func TestOracleEstimatorExactAndMemoized(t *testing.T) {
	est := NewOracleEstimator(map[string]*relation.Relation{"R": smallRelation(t)})
	c := condition.MustParse(`make = "BMW"`)
	if got := est.ResultSize("R", c); got != 2 {
		t.Errorf("oracle = %v, want 2", got)
	}
	if got := est.ResultSize("R", c); got != 2 {
		t.Errorf("memoized oracle = %v, want 2", got)
	}
	if got := est.ResultSize("ghost", c); got != 0 {
		t.Errorf("unknown source = %v, want 0", got)
	}
	if got := est.ResultSize("R", condition.MustParse(`nosuch = 1`)); got != 0 {
		t.Errorf("bad attr = %v, want 0", got)
	}
	if got := est.ResultSize("R", condition.True()); got != 4 {
		t.Errorf("true = %v, want 4", got)
	}
}

func TestStatsEstimatorTracksOracleDirection(t *testing.T) {
	rel := smallRelation(t)
	st := relation.CollectStats(rel)
	est := NewStatsEstimator(map[string]*relation.Stats{"R": st})
	bmw := est.ResultSize("R", condition.MustParse(`make = "BMW"`))
	honda := est.ResultSize("R", condition.MustParse(`make = "Honda"`))
	if bmw <= honda {
		t.Errorf("stats estimator ordering wrong: bmw=%v honda=%v", bmw, honda)
	}
	if est.ResultSize("ghost", condition.True()) != 0 {
		t.Error("unknown source should estimate 0")
	}
}

func TestInfeasibleSentinel(t *testing.T) {
	if !math.IsInf(Infeasible, 1) {
		t.Error("Infeasible must be +Inf")
	}
	m := Model{K1: 1, K2: 1, Est: FixedEstimator(0)}
	if got := m.PlanCost(&plan.Choice{}); !math.IsInf(got, 1) {
		t.Errorf("empty choice cost = %v, want +Inf", got)
	}
}

func TestPerSourceCoefficients(t *testing.T) {
	m := Model{
		K1: 10, K2: 1,
		PerSource: map[string]Coef{"slow": {K1: 1000, K2: 5}},
		Est:       FixedEstimator(10),
	}
	fast := plan.NewSourceQuery("fast", condition.MustParse(`a = 1`), []string{"x"})
	slow := plan.NewSourceQuery("slow", condition.MustParse(`a = 1`), []string{"x"})
	if got := m.PlanCost(fast); got != 20 {
		t.Errorf("default coef cost = %v, want 20", got)
	}
	if got := m.PlanCost(slow); got != 1050 {
		t.Errorf("override coef cost = %v, want 1050", got)
	}
	if got := m.SourceQueryCost("slow", condition.True()); got != 1050 {
		t.Errorf("SourceQueryCost override = %v, want 1050", got)
	}
	if c := m.Coef("fast"); c.K1 != 10 || c.K2 != 1 {
		t.Errorf("Coef fallback = %+v", c)
	}
}

func TestExplainAnnotations(t *testing.T) {
	est := NewOracleEstimator(map[string]*relation.Relation{"R": smallRelation(t)})
	m := Model{K1: 10, K2: 2, Est: est}
	q1 := plan.NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"make"})
	q2 := plan.NewSourceQuery("R", condition.MustParse(`make = "Honda"`), []string{"make"})
	p := &plan.Union{Inputs: []plan.Plan{
		q1,
		plan.NewSP(condition.MustParse(`price < 99999`), []string{"make"},
			plan.NewSourceQuery("R", condition.MustParse(`make = "Honda"`), []string{"make", "price"})),
	}}
	out := Explain(p, m)
	for _, want := range []string{
		"Union  [cost",
		"~2 tuples, cost 14.00 = 10.00 + 2.00×2",
		"Select cond=price < 99999  [mediator]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	ch := Explain(&plan.Choice{Alternatives: []plan.Plan{q1, q2}}, m)
	if !strings.Contains(ch, "Choice (2 alternatives)") {
		t.Errorf("choice explain:\n%s", ch)
	}
}
