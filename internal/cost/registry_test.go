package cost

import (
	"testing"

	"repro/internal/condition"
	"repro/internal/relation"
)

func TestHeuristicEstimator(t *testing.T) {
	h := HeuristicEstimator{Rows: 1000}
	if got := h.ResultSize("x", condition.True()); got != 1000 {
		t.Errorf("true = %v", got)
	}
	eq := h.ResultSize("x", condition.MustParse(`a = 1`))
	if eq != 50 {
		t.Errorf("eq = %v, want 50", eq)
	}
	and := h.ResultSize("x", condition.MustParse(`a = 1 ^ b = 2`))
	if and >= eq {
		t.Errorf("AND (%v) should be more selective than one atom (%v)", and, eq)
	}
	or := h.ResultSize("x", condition.MustParse(`a = 1 _ b = 2`))
	if or <= eq {
		t.Errorf("OR (%v) should be less selective than one atom (%v)", or, eq)
	}
	// Zero Rows defaults to 10000.
	if got := (HeuristicEstimator{}).ResultSize("x", condition.True()); got != 10000 {
		t.Errorf("default rows = %v", got)
	}
	ne := h.ResultSize("x", condition.MustParse(`a != 1`))
	ct := h.ResultSize("x", condition.MustParse(`a contains "z"`))
	rg := h.ResultSize("x", condition.MustParse(`a < 5`))
	if ne <= rg || ct <= 0 {
		t.Errorf("op selectivities out of order: ne=%v contains=%v range=%v", ne, ct, rg)
	}
}

func TestRegistryRouting(t *testing.T) {
	r := NewRegistry()
	rel := smallRelation(t)
	r.Set("known", NewOracleEstimator(map[string]*relation.Relation{"known": rel}))
	if got := r.ResultSize("known", condition.True()); got != 4 {
		t.Errorf("known = %v, want exact 4", got)
	}
	// Unknown sources use the heuristic fallback.
	if got := r.ResultSize("unknown", condition.True()); got != 10000 {
		t.Errorf("unknown = %v, want heuristic 10000", got)
	}
	// Custom fallback.
	r2 := &Registry{Fallback: FixedEstimator(7)}
	if got := r2.ResultSize("x", condition.True()); got != 7 {
		t.Errorf("fallback = %v, want 7", got)
	}
}

func TestRegistryClampsBadValues(t *testing.T) {
	r := NewRegistry()
	r.Set("neg", FixedEstimator(-5))
	if got := r.ResultSize("neg", condition.True()); got != 0 {
		t.Errorf("negative estimate should clamp to 0, got %v", got)
	}
}
