package cost

import (
	"fmt"
	"strings"

	"repro/internal/condition"
	"repro/internal/plan"
)

// Explain renders the plan as an indented tree annotated with the model's
// per-node costs and per-source-query cardinality estimates — the output
// `cmd/csqp -explain` shows.
func Explain(p plan.Plan, m Model) string {
	var sb strings.Builder
	explain(&sb, p, m, 0)
	return sb.String()
}

func explain(sb *strings.Builder, p plan.Plan, m Model, depth int) {
	indent := strings.Repeat("  ", depth)
	switch t := p.(type) {
	case *plan.SourceQuery:
		est := m.Est.ResultSize(t.Source, t.Cond)
		c := m.Coef(t.Source)
		fmt.Fprintf(sb, "%sSourceQuery[%s] cond=%s attrs=(%s)  [~%.0f tuples, cost %.2f = %.2f + %.2f×%.0f]\n",
			indent, t.Source, condKey(t.Cond), strings.Join(t.Attrs, ","),
			est, m.PlanCost(t), c.K1, c.K2, est)
	case *plan.Select:
		fmt.Fprintf(sb, "%sSelect cond=%s  [mediator]\n", indent, condKey(t.Cond))
		explain(sb, t.Input, m, depth+1)
	case *plan.Project:
		fmt.Fprintf(sb, "%sProject attrs=(%s)  [mediator]\n", indent, strings.Join(t.Attrs, ","))
		explain(sb, t.Input, m, depth+1)
	case *plan.Union:
		fmt.Fprintf(sb, "%sUnion  [cost %.2f]\n", indent, m.PlanCost(t))
		for _, k := range t.Inputs {
			explain(sb, k, m, depth+1)
		}
	case *plan.Intersect:
		fmt.Fprintf(sb, "%sIntersect  [cost %.2f]\n", indent, m.PlanCost(t))
		for _, k := range t.Inputs {
			explain(sb, k, m, depth+1)
		}
	case *plan.Choice:
		fmt.Fprintf(sb, "%sChoice (%d alternatives)  [best %.2f]\n", indent, len(t.Alternatives), m.PlanCost(t))
		for _, k := range t.Alternatives {
			explain(sb, k, m, depth+1)
		}
	default:
		fmt.Fprintf(sb, "%s%T\n", indent, p)
	}
}

func condKey(c condition.Node) string { return c.Key() }
