package cost

import (
	"math"

	"repro/internal/plan"
)

// This file closes the estimate→actual loop for EXPLAIN ANALYZE: after a
// profiled execution, AnnotateProfile walks the plan and the ExecProfile
// tree in lockstep, stamping each profile node with the cost model's
// cardinality estimate, its model cost, and the actual-vs-estimate row
// ratio that the feedback-driven cost work (ROADMAP item 3) will consume.

// EstimateRows predicts the node's output cardinality under the model.
// Select/Project pass their input's estimate through (the paper's model
// only sizes source queries, so this is a deliberate upper bound), Union
// sums, Intersect takes the smallest input, and Choice estimates its
// minimum-cost resolution — the alternative the executors run.
func (m Model) EstimateRows(p plan.Plan) float64 {
	switch t := p.(type) {
	case *plan.SourceQuery:
		return m.Est.ResultSize(t.Source, t.Cond)
	case *plan.Select:
		return m.EstimateRows(t.Input)
	case *plan.Project:
		return m.EstimateRows(t.Input)
	case *plan.Union:
		sum := 0.0
		for _, k := range t.Inputs {
			sum += m.EstimateRows(k)
		}
		return sum
	case *plan.Intersect:
		min := math.Inf(1)
		for _, k := range t.Inputs {
			if e := m.EstimateRows(k); e < min {
				min = e
			}
		}
		if math.IsInf(min, 1) {
			return 0
		}
		return min
	case *plan.Choice:
		if alt, err := m.Resolve(t); err == nil {
			return m.EstimateRows(alt)
		}
		return 0
	default:
		return 0
	}
}

// AnnotateProfile stamps the profile tree with estimates from the plan
// it executed. Choice nodes are resolved to their minimum-cost
// alternative — the same resolution the mediator wires into both
// executors — so the walk stays aligned with what actually ran; if a
// profile node's recorded operator disagrees with the plan node anyway
// (a foreign resolver picked differently), annotation stops descending
// that subtree rather than mislabeling it. ActualVsEst is only set for
// a positive estimate, keeping the ratio finite for JSON rendering.
func (m Model) AnnotateProfile(p plan.Plan, prof *plan.ExecProfile) {
	if p == nil || prof == nil {
		return
	}
	if c, ok := p.(*plan.Choice); ok {
		alt, err := m.Resolve(c)
		if err != nil {
			return
		}
		m.AnnotateProfile(alt, prof)
		return
	}
	if prof.Op != "" && prof.Op != opName(p) {
		return
	}
	est := m.EstimateRows(p)
	if !math.IsInf(est, 0) && !math.IsNaN(est) {
		prof.EstRows = est
		if est > 0 {
			prof.ActualVsEst = float64(prof.RowsOut) / est
		}
	}
	if c := m.PlanCost(p); !math.IsInf(c, 0) && !math.IsNaN(c) {
		prof.EstCost = c
	}
	switch t := p.(type) {
	case *plan.Select:
		if len(prof.Children) == 1 {
			m.AnnotateProfile(t.Input, prof.Children[0])
		}
	case *plan.Project:
		if len(prof.Children) == 1 {
			m.AnnotateProfile(t.Input, prof.Children[0])
		}
	case *plan.Union:
		m.annotateInputs(t.Inputs, prof)
	case *plan.Intersect:
		m.annotateInputs(t.Inputs, prof)
	}
}

func (m Model) annotateInputs(inputs []plan.Plan, prof *plan.ExecProfile) {
	if len(inputs) != len(prof.Children) {
		return
	}
	for i, k := range inputs {
		m.AnnotateProfile(k, prof.Children[i])
	}
}

// opName maps a plan node to the operator name the executors claim in
// OpStats; the two must stay in sync for annotation to land.
func opName(p plan.Plan) string {
	switch p.(type) {
	case *plan.SourceQuery:
		return "SourceQuery"
	case *plan.Select:
		return "Select"
	case *plan.Project:
		return "Project"
	case *plan.Union:
		return "Union"
	case *plan.Intersect:
		return "Intersect"
	default:
		return ""
	}
}
