package source

import (
	"container/list"
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Under the paper's cost model cost(plan) = Σ_sq (k1 + k2·|result(sq)|)
// every source query pays the fixed per-query overhead k1, so under heavy
// mediator traffic the biggest saving after plan caching is not issuing
// the same source query twice at all. Cached is that layer: a memo of
// source-query answers in front of a querier.

// DefaultSourceCacheSize bounds the per-source answer cache when
// CacheOptions.MaxEntries is zero.
const DefaultSourceCacheSize = 256

// DefaultSourceCacheTTL bounds answer staleness when CacheOptions.TTL is
// zero. Sources are autonomous — the mediator cannot know when their data
// changes — so cached answers expire rather than live forever.
const DefaultSourceCacheTTL = time.Minute

// DefaultSourceCacheRows bounds the total tuples held across all cache
// entries when CacheOptions.MaxRows is zero, keeping the cache's memory
// proportional to data volume rather than entry count (one entry may hold
// a huge result).
const DefaultSourceCacheRows = 100_000

// CacheOptions tune a Cached querier.
type CacheOptions struct {
	// MaxEntries bounds the number of memoized answers; least-recently-
	// used entries are evicted beyond it (0 = DefaultSourceCacheSize).
	MaxEntries int
	// TTL is each entry's lifetime; an entry older than TTL is dropped on
	// lookup and the query re-issued (0 = DefaultSourceCacheTTL).
	TTL time.Duration
	// MaxRows bounds the total tuples held across all entries; LRU
	// entries are evicted until a new answer fits, and an answer larger
	// than the whole budget is served but never stored
	// (0 = DefaultSourceCacheRows).
	MaxRows int

	// Obs receives hit/miss/eviction/expiration/coalesced counters and
	// entry/row gauges under csqp_source_cache_* names, labeled by
	// source. Nil disables them.
	Obs *obs.Registry
	// Now is the TTL clock; tests inject a fake. Nil uses time.Now.
	Now func() time.Time
}

// CacheStats counts what a Cached querier has done.
type CacheStats struct {
	// Hits counts queries answered from the cache without touching the
	// upstream querier.
	Hits int
	// Misses counts queries that had to go upstream (coalesced waiters
	// included).
	Misses int
	// Evictions counts entries dropped by the entry or rows bound.
	Evictions int
	// Expirations counts entries dropped because their TTL had passed.
	Expirations int
	// CoalescedWaits counts queries that waited on another caller's
	// identical in-flight query instead of going upstream themselves.
	CoalescedWaits int
	// Entries and Rows describe the cache's current contents.
	Entries, Rows int
}

// Cached memoizes a querier's answers keyed by the semantic source query:
// the condition's order-insensitive NormKey plus the sorted attribute
// list, so commutative/associative variants of a condition share an
// entry. Entries live in a bounded LRU with a per-entry TTL and a total-
// rows budget, and concurrent identical queries coalesce onto a single
// upstream call (singleflight) — N requests for the same sub-query across
// different plans issue exactly one source round-trip.
//
// Errors are never cached, and capability refusals (*RefusalError) pass
// through untouched: a refusal is the source's deterministic "no" under
// its capability description, not an answer, so caching must not change
// capability semantics. Layer Cached OUTSIDE Resilient (cache → breaker →
// source) and a source whose circuit breaker is fast-failing still serves
// the answers it gave before going down, until their TTL — graceful
// degradation the resilience layer alone cannot offer.
//
// Hits return a shallow Clone of the stored relation (tuples are
// immutable and shared; the tuple slice is copied), so callers that
// Sort or index their answer cannot perturb the cache or race each other.
type Cached struct {
	name  string
	inner plan.Querier
	opts  CacheOptions

	mu       sync.Mutex
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // element value: *cachedAnswer
	inflight map[string]*answerFlight
	rows     int // total tuples across entries
	stats    CacheStats

	met cacheMetrics
}

// cacheMetrics are the registry instruments (no-ops when Obs is nil).
type cacheMetrics struct {
	hits, misses, evictions, expirations, coalesced *obs.Counter
	entries, rows                                   *obs.Gauge
}

// cachedAnswer is one memoized source answer.
type cachedAnswer struct {
	key     string
	res     *relation.Relation
	rows    int
	expires time.Time
}

// answerFlight is one in-progress upstream query. done is closed after
// the leader has published its outcome into res/err (and, on success, the
// LRU).
type answerFlight struct {
	done chan struct{}
	res  *relation.Relation
	err  error
}

// NewCached wraps q with an answer cache. The name labels metrics; use
// the source's registered name.
func NewCached(name string, q plan.Querier, opts CacheOptions) *Cached {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = DefaultSourceCacheSize
	}
	if opts.TTL <= 0 {
		opts.TTL = DefaultSourceCacheTTL
	}
	if opts.MaxRows <= 0 {
		opts.MaxRows = DefaultSourceCacheRows
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	c := &Cached{
		name:     name,
		inner:    q,
		opts:     opts,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*answerFlight),
	}
	reg := opts.Obs // nil-safe: nil registry yields no-op instruments
	c.met = cacheMetrics{
		hits:        reg.Counter("csqp_source_cache_hits_total", "source", name),
		misses:      reg.Counter("csqp_source_cache_misses_total", "source", name),
		evictions:   reg.Counter("csqp_source_cache_evictions_total", "source", name),
		expirations: reg.Counter("csqp_source_cache_expirations_total", "source", name),
		coalesced:   reg.Counter("csqp_source_cache_coalesced_total", "source", name),
		entries:     reg.Gauge("csqp_source_cache_entries", "source", name),
		rows:        reg.Gauge("csqp_source_cache_rows", "source", name),
	}
	return c
}

// Name returns the wrapped source's name.
func (c *Cached) Name() string { return c.name }

// Stats returns a snapshot of the cache's counters and current size.
func (c *Cached) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.Rows = c.rows
	return st
}

// answerKey builds the semantic cache key for a source query. The source
// itself is implicit — each Cached fronts exactly one source.
func answerKey(cond condition.Node, attrs []string) string {
	sorted := attrs
	if !sort.StringsAreSorted(sorted) {
		sorted = append([]string(nil), attrs...)
		sort.Strings(sorted)
	}
	return condition.NormKey(cond) + "\x00" + strings.Join(sorted, ",")
}

// Query implements plan.Querier: a fresh cached answer is returned
// without touching the upstream querier; otherwise one caller per key
// goes upstream and the rest wait for its result.
func (c *Cached) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	key := answerKey(cond, attrs)
	oprof := plan.OpStatsFrom(ctx) // nil-safe: notes the executing operator's profile
	c.mu.Lock()
	if res, ok := c.lookup(key); ok {
		c.mu.Unlock()
		oprof.Note("answer-cache-hit")
		return res, nil
	}
	c.stats.Misses++
	c.met.misses.Inc()
	if f, ok := c.inflight[key]; ok {
		c.stats.CoalescedWaits++
		c.met.coalesced.Inc()
		oprof.Note("coalesced")
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				// A truncated answer travels as rows + *plan.TruncatedError;
				// waiters get the same sound rows the leader got.
				if f.res != nil && plan.IsTruncated(f.err) {
					return f.res.Clone(), f.err
				}
				return nil, f.err
			}
			// The leader's answer; clone for the same isolation a cache
			// hit gets.
			return f.res.Clone(), nil
		case <-ctx.Done():
			// This waiter's own deadline ended; the leader keeps going
			// for the others.
			return nil, ctx.Err()
		}
	}
	f := &answerFlight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	res, err := c.inner.Query(ctx, cond, attrs)

	c.mu.Lock()
	f.res, f.err = res, err
	if err == nil {
		c.insert(key, res)
	}
	// Errors and refusals are never cached: a refusal is a deterministic
	// capability "no" that must keep flowing from the source's
	// description, and transient errors should be retried by the next
	// request, not replayed. Truncated answers (rows + *plan.TruncatedError)
	// are ALSO never cached — the key does not encode the source's result
	// bound, so a stored top-k answer would be replayed as if complete for
	// any later equivalent request — but their sound rows still flow
	// through to the caller (and to coalesced waiters).
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	if err != nil {
		if res != nil && plan.IsTruncated(err) {
			return res.Clone(), err
		}
		return nil, err
	}
	return res.Clone(), nil
}

// lookup returns a clone of the fresh entry for key, dropping it instead
// when its TTL has passed. Callers hold mu.
func (c *Cached) lookup(key string) (*relation.Relation, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	a := el.Value.(*cachedAnswer)
	if c.opts.Now().After(a.expires) {
		c.remove(el)
		c.stats.Expirations++
		c.met.expirations.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	c.met.hits.Inc()
	return a.res.Clone(), true
}

// insert stores an answer under key, evicting LRU entries until both the
// entry bound and the rows budget hold. An answer bigger than the whole
// rows budget is not stored at all. Callers hold mu.
func (c *Cached) insert(key string, res *relation.Relation) {
	n := res.Len()
	if n > c.opts.MaxRows {
		return
	}
	if el, ok := c.entries[key]; ok {
		// A concurrent leader for an expired-then-refetched key may have
		// beaten us; replace its answer.
		a := el.Value.(*cachedAnswer)
		c.rows += n - a.rows
		a.res, a.rows = res, n
		a.expires = c.opts.Now().Add(c.opts.TTL)
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&cachedAnswer{
			key:     key,
			res:     res,
			rows:    n,
			expires: c.opts.Now().Add(c.opts.TTL),
		})
		c.rows += n
	}
	for len(c.entries) > c.opts.MaxEntries || c.rows > c.opts.MaxRows {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.remove(back)
		c.stats.Evictions++
		c.met.evictions.Inc()
	}
	c.met.entries.Set(float64(len(c.entries)))
	c.met.rows.Set(float64(c.rows))
}

// remove drops an entry and its rows from the accounting. Callers hold mu.
func (c *Cached) remove(el *list.Element) {
	a := el.Value.(*cachedAnswer)
	c.ll.Remove(el)
	delete(c.entries, a.key)
	c.rows -= a.rows
	c.met.entries.Set(float64(len(c.entries)))
	c.met.rows.Set(float64(c.rows))
}
