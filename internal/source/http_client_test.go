package source

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/condition"
)

// TestClientDescribeQueryRace exercises the lazy name write in Describe
// against concurrent Query error paths (regression: Describe used to
// write c.name unsynchronized while Query read it). Run under -race.
func TestClientDescribeQueryRace(t *testing.T) {
	src := carsSource(t)
	ts := httptest.NewServer(NewHandler(src))
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	cond := condition.MustParse(`color = "red"`) // unsupported: forces the error path that reads the name
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Describe(context.Background()); err != nil {
				t.Error(err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Query(context.Background(), cond, []string{"model"})
			var ref *RefusalError
			if !errors.As(err, &ref) {
				t.Errorf("unsupported query: got %v, want *RefusalError", err)
			}
		}()
	}
	wg.Wait()
	if got := c.Name(); got != "cars" {
		t.Errorf("Name after Describe = %q, want cars", got)
	}
}

// TestClientQueryResponseCap bounds the /query body read: a source
// streaming more than the cap must yield a classified, non-retryable
// error instead of an unbounded read.
func TestClientQueryResponseCap(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/tab-separated-values")
		fmt.Fprintln(w, "model:string")
		for i := 0; i < 4096; i++ {
			fmt.Fprintf(w, "row-%04d-%s\n", i, strings.Repeat("x", 64))
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	c.SetName("flood")
	c.SetMaxResponseBytes(1 << 10)
	_, err := c.Query(context.Background(), condition.MustParse(`make = "BMW"`), []string{"model"})
	var ref *RefusalError
	if !errors.As(err, &ref) {
		t.Fatalf("oversized response: got %v, want *RefusalError", err)
	}
	if !strings.Contains(ref.Msg, "1024-byte cap") {
		t.Errorf("error should name the cap: %v", ref)
	}
	if Retryable(err) {
		t.Error("oversized response must not be retryable")
	}

	// At (or under) the cap the same response parses fine.
	c.SetMaxResponseBytes(1 << 20)
	res, err := c.Query(context.Background(), condition.MustParse(`make = "BMW"`), []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4096 {
		t.Errorf("rows = %d, want 4096", res.Len())
	}
}

// TestClientStatusClassification checks every endpoint classifies non-200
// responses: 4xx is a deterministic refusal (never retried), 5xx a
// transient transport failure (retryable) — so source.Resilient retries a
// 503 during registration but not a 404.
func TestClientStatusClassification(t *testing.T) {
	ops := []struct {
		name string
		call func(c *Client) error
	}{
		{"describe", func(c *Client) error { _, err := c.Describe(context.Background()); return err }},
		{"stats", func(c *Client) error { _, err := c.Stats(context.Background()); return err }},
		{"query", func(c *Client) error {
			_, err := c.Query(context.Background(), condition.MustParse(`make = "BMW"`), []string{"model"})
			return err
		}},
	}
	cases := []struct {
		status    int
		refusal   bool
		retryable bool
	}{
		{http.StatusBadRequest, true, false},
		{http.StatusNotFound, true, false},
		{http.StatusUnprocessableEntity, true, false},
		{http.StatusInternalServerError, false, true},
		{http.StatusBadGateway, false, true},
		{http.StatusServiceUnavailable, false, true},
	}
	for _, op := range ops {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/%d", op.name, tc.status), func(t *testing.T) {
				ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
					http.Error(w, "synthetic failure", tc.status)
				}))
				defer ts.Close()
				c := NewClient(ts.URL, nil)
				c.SetName("down")
				err := op.call(c)
				if err == nil {
					t.Fatal("expected an error")
				}
				var ref *RefusalError
				var tr *TransportError
				if gotRefusal := errors.As(err, &ref); gotRefusal != tc.refusal {
					t.Errorf("refusal = %v, want %v (err %v)", gotRefusal, tc.refusal, err)
				}
				if tc.refusal == errors.As(err, &tr) {
					t.Errorf("classification must be exactly one of refusal/transport: %v", err)
				}
				if got := Retryable(err); got != tc.retryable {
					t.Errorf("Retryable = %v, want %v (err %v)", got, tc.retryable, err)
				}
				if !strings.Contains(err.Error(), "down") {
					t.Errorf("error should carry the source name: %v", err)
				}
			})
		}
	}
}
