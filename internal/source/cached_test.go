package source

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/relation"
)

// countQuerier counts upstream calls and answers with a fixed relation or
// error; an optional gate blocks every answer until released, so tests
// can hold a query in flight.
type countQuerier struct {
	calls atomic.Int64
	rel   *relation.Relation
	err   error
	gate  chan struct{}
}

func (q *countQuerier) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	q.calls.Add(1)
	if q.gate != nil {
		select {
		case <-q.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if q.err != nil {
		return nil, q.err
	}
	return q.rel, nil
}

// relOfLen builds a single-column relation with n distinct rows.
func relOfLen(t *testing.T, n int) *relation.Relation {
	t.Helper()
	r := relation.New(relation.MustSchema(relation.Column{Name: "a", Kind: condition.KindInt}))
	for i := 0; i < n; i++ {
		if err := r.AppendValues(condition.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func mustCond(t *testing.T, src string) condition.Node {
	t.Helper()
	c, err := condition.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// cacheClock is a settable fake clock for TTL tests.
type cacheClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *cacheClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *cacheClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestCachedHitSkipsUpstream(t *testing.T) {
	inner := &countQuerier{rel: relOfLen(t, 3)}
	c := NewCached("s", inner, CacheOptions{})
	cond := mustCond(t, `a = 1 and b = 2`)

	for i := 0; i < 5; i++ {
		res, err := c.Query(context.Background(), cond, []string{"a"})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.Len() != 3 {
			t.Fatalf("query %d: rows = %d, want 3", i, res.Len())
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("upstream calls = %d, want 1 (4 hits)", got)
	}
	st := c.Stats()
	if st.Hits != 4 || st.Misses != 1 || st.Entries != 1 || st.Rows != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCachedKeyIsSemanticNotSyntactic(t *testing.T) {
	inner := &countQuerier{rel: relOfLen(t, 1)}
	c := NewCached("s", inner, CacheOptions{})

	// Commuted condition and re-ordered attrs name the same source query,
	// so they must share the entry the first form created.
	if _, err := c.Query(context.Background(), mustCond(t, `a = 1 and b = 2`), []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), mustCond(t, `b = 2 and a = 1`), []string{"b", "a"}); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("upstream calls = %d, want 1 (NormKey/sorted-attrs equivalence)", got)
	}
	// A genuinely different query misses.
	if _, err := c.Query(context.Background(), mustCond(t, `a = 1 or b = 2`), []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("upstream calls = %d, want 2 after distinct query", got)
	}
}

func TestCachedTTLExpiry(t *testing.T) {
	clk := &cacheClock{now: time.Unix(1000, 0)}
	inner := &countQuerier{rel: relOfLen(t, 2)}
	c := NewCached("s", inner, CacheOptions{TTL: time.Minute, Now: clk.Now})
	cond := mustCond(t, `a = 1`)

	if _, err := c.Query(context.Background(), cond, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	// Within the TTL: served from cache.
	clk.advance(59 * time.Second)
	if _, err := c.Query(context.Background(), cond, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("upstream calls = %d, want 1 before expiry", got)
	}
	// Past the TTL: the entry is dropped and the query re-issued.
	clk.advance(2 * time.Second)
	if _, err := c.Query(context.Background(), cond, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("upstream calls = %d, want 2 after expiry", got)
	}
	st := c.Stats()
	if st.Expirations != 1 {
		t.Errorf("Expirations = %d, want 1", st.Expirations)
	}
	if st.Entries != 1 || st.Rows != 2 {
		t.Errorf("post-refresh contents = %d entries / %d rows, want 1 / 2", st.Entries, st.Rows)
	}
}

func TestCachedLRUEviction(t *testing.T) {
	inner := &countQuerier{rel: relOfLen(t, 1)}
	c := NewCached("s", inner, CacheOptions{MaxEntries: 2})

	q := func(src string) {
		t.Helper()
		if _, err := c.Query(context.Background(), mustCond(t, src), []string{"a"}); err != nil {
			t.Fatal(err)
		}
	}
	q(`a = 1`)
	q(`a = 2`)
	q(`a = 1`) // refresh a=1, making a=2 the LRU entry
	q(`a = 3`) // evicts a=2
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
	before := inner.calls.Load()
	q(`a = 1`) // still cached
	if inner.calls.Load() != before {
		t.Error("a=1 was evicted; want a=2 (LRU) evicted instead")
	}
	q(`a = 2`) // evicted: must go upstream
	if inner.calls.Load() != before+1 {
		t.Error("a=2 still cached; want it evicted as LRU")
	}
}

func TestCachedRowsBudgetEviction(t *testing.T) {
	inner := &countQuerier{rel: relOfLen(t, 40)}
	c := NewCached("s", inner, CacheOptions{MaxRows: 100})

	q := func(src string) {
		t.Helper()
		if _, err := c.Query(context.Background(), mustCond(t, src), []string{"a"}); err != nil {
			t.Fatal(err)
		}
	}
	q(`a = 1`)
	q(`a = 2`) // 80 rows held
	q(`a = 3`) // 120 > 100: evict a=1
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Rows != 80 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries / 80 rows", st)
	}

	// An answer larger than the whole budget is served but never stored.
	inner.rel = relOfLen(t, 200)
	q(`a = 4`)
	st = c.Stats()
	if st.Entries != 2 || st.Rows != 80 {
		t.Errorf("oversized answer was stored: %+v", st)
	}
	before := inner.calls.Load()
	q(`a = 4`) // must go upstream again
	if inner.calls.Load() != before+1 {
		t.Error("oversized answer served from cache")
	}
}

func TestCachedSingleflightDedup(t *testing.T) {
	inner := &countQuerier{rel: relOfLen(t, 1), gate: make(chan struct{})}
	reg := obs.NewRegistry()
	c := NewCached("s", inner, CacheOptions{Obs: reg})
	cond := mustCond(t, `a = 1 and b = 2`)

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	rows := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Query(context.Background(), cond, []string{"a"})
			errs[i] = err
			if res != nil {
				rows[i] = res.Len()
			}
		}(i)
	}
	// Wait until the leader is in flight and the others have coalesced
	// behind it, then release the one upstream call.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if st.CoalescedWaits == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never coalesced: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(inner.gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if rows[i] != 1 {
			t.Fatalf("goroutine %d: rows = %d, want 1", i, rows[i])
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("upstream calls = %d, want exactly 1 for %d concurrent identical queries", got, n)
	}
	st := c.Stats()
	if st.CoalescedWaits != n-1 || st.Misses != n {
		t.Errorf("stats = %+v, want %d coalesced waits and %d misses", st, n-1, n)
	}
	// The registry mirrors the counters, labeled by source.
	for _, cnt := range reg.Snapshot().Counters {
		if cnt.Name == "csqp_source_cache_coalesced_total" && int(cnt.Value) != n-1 {
			t.Errorf("csqp_source_cache_coalesced_total = %g, want %d", cnt.Value, n-1)
		}
	}
}

func TestCachedNeverCachesErrors(t *testing.T) {
	inner := &countQuerier{err: &TransportError{Source: "s", Err: errors.New("boom")}}
	c := NewCached("s", inner, CacheOptions{})
	cond := mustCond(t, `a = 1`)

	for i := 0; i < 3; i++ {
		if _, err := c.Query(context.Background(), cond, []string{"a"}); err == nil {
			t.Fatalf("query %d: want error", i)
		}
	}
	if got := inner.calls.Load(); got != 3 {
		t.Errorf("upstream calls = %d, want 3 (errors must not be cached)", got)
	}
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Errorf("stats = %+v, want empty cache", st)
	}

	// Once the source recovers, the next query succeeds and is cached.
	inner.err = nil
	inner.rel = relOfLen(t, 1)
	if _, err := c.Query(context.Background(), cond, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), cond, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 4 {
		t.Errorf("upstream calls = %d, want 4 (recovered answer cached)", got)
	}
}

func TestCachedRefusalPassesThroughUncached(t *testing.T) {
	inner := &countQuerier{err: &RefusalError{Source: "s", Msg: "unsupported query"}}
	c := NewCached("s", inner, CacheOptions{})
	cond := mustCond(t, `a = 1`)

	for i := 0; i < 2; i++ {
		_, err := c.Query(context.Background(), cond, []string{"a"})
		var ref *RefusalError
		if !errors.As(err, &ref) {
			t.Fatalf("query %d: err = %v, want *RefusalError", i, err)
		}
		if ref.Source != "s" || ref.Msg != "unsupported query" {
			t.Fatalf("refusal mutated: %+v", ref)
		}
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("upstream calls = %d, want 2 (refusals must not be cached)", got)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("refusal entered the cache: %+v", st)
	}
}

func TestCachedHitsAreIsolatedClones(t *testing.T) {
	inner := &countQuerier{rel: relOfLen(t, 2)}
	c := NewCached("s", inner, CacheOptions{})
	cond := mustCond(t, `a = 1`)

	res1, err := c.Query(context.Background(), cond, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	// A caller appending to (or sorting) its answer must not perturb the
	// cached copy other callers will receive.
	if err := res1.AppendValues(condition.Int(99)); err != nil {
		t.Fatal(err)
	}
	res2, err := c.Query(context.Background(), cond, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 2 {
		t.Errorf("cached answer mutated through a hit: rows = %d, want 2", res2.Len())
	}
}

// TestCachedServesWhileBreakerOpen proves the composition the cache
// exists for: layered outside Resilient, a source whose breaker is
// fast-failing keeps serving the answers it gave before going down.
func TestCachedServesWhileBreakerOpen(t *testing.T) {
	ft := &fakeTime{now: time.Unix(1000, 0)}
	opts := ResilienceOptions{BreakerThreshold: 1, BreakerCooldown: time.Hour}
	ft.apply(&opts)
	flaky := NewFlaky(&okQuerier{rel: tinyRelation(t)})
	res := NewResilient("s", flaky, opts)
	clk := &cacheClock{now: time.Unix(1000, 0)}
	c := NewCached("s", res, CacheOptions{TTL: time.Minute, Now: clk.Now})

	warm := mustCond(t, `a = "x"`)
	if _, err := c.Query(context.Background(), warm, []string{"a"}); err != nil {
		t.Fatal(err)
	}

	// The source dies; an uncached query trips the breaker open.
	flaky.FailFirst(1 << 30)
	if _, err := c.Query(context.Background(), mustCond(t, `a = "y"`), []string{"a"}); err == nil {
		t.Fatal("want failure for uncached query against dead source")
	}
	if _, err := c.Query(context.Background(), mustCond(t, `a = "z"`), []string{"a"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}

	// The warmed query still answers from cache, never touching the
	// open breaker.
	fastFails := res.Stats().FastFails
	out, err := c.Query(context.Background(), warm, []string{"a"})
	if err != nil {
		t.Fatalf("cached answer behind open breaker: %v", err)
	}
	if out.Len() != 1 {
		t.Errorf("rows = %d, want 1", out.Len())
	}
	if res.Stats().FastFails != fastFails {
		t.Error("cache hit reached the breaker")
	}

	// Past the TTL the stale answer is gone and the breaker's verdict
	// shows through again.
	clk.advance(2 * time.Minute)
	if _, err := c.Query(context.Background(), warm, []string{"a"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen once the cached answer expired", err)
	}
}
