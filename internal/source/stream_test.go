package source

import (
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/condition"
	"repro/internal/plan"
	"repro/internal/relation"
)

// drainStream collects a plan.Iterator into a relation the way the
// streaming executor would (without the partial machinery).
func drainStream(t *testing.T, it plan.Iterator) (*relation.Relation, error) {
	t.Helper()
	defer it.Close()
	var out *relation.Relation
	for {
		chunk, err := it.Next(context.Background())
		if out == nil && it.Schema() != nil {
			out = relation.New(it.Schema())
		}
		for _, tu := range chunk {
			if aerr := out.Append(tu); aerr != nil {
				t.Fatal(aerr)
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
	}
}

func TestLocalQueryStreamMatchesQuery(t *testing.T) {
	for _, q := range []struct {
		cond  string
		attrs []string
	}{
		{`make = "BMW" ^ price < 40000`, []string{"model"}},
		{`make = "BMW" ^ color = "red"`, []string{"make", "model"}},
		{`make = "Nobody" ^ price < 1`, []string{"model"}}, // empty answer
	} {
		want, err := carsSource(t).Query(context.Background(), condition.MustParse(q.cond), q.attrs)
		if err != nil {
			t.Fatal(err)
		}
		src := carsSource(t)
		it, err := src.QueryStream(context.Background(), condition.MustParse(q.cond), q.attrs)
		if err != nil {
			t.Fatal(err)
		}
		got, serr := drainStream(t, it)
		if serr != nil {
			t.Fatal(serr)
		}
		if !got.Equal(want) {
			t.Fatalf("SP(%s; %v) stream %v != query %v", q.cond, q.attrs, got.Tuples(), want.Tuples())
		}
		if acc := src.Accounting(); acc.Queries != 1 || acc.Tuples != want.Len() {
			t.Fatalf("accounting = %+v, want 1 query / %d tuples", acc, want.Len())
		}
	}
}

func TestLocalQueryStreamRefusesUnsupported(t *testing.T) {
	src := carsSource(t)
	_, err := src.QueryStream(context.Background(), condition.MustParse(`color = "red"`), []string{"model"})
	var re *RefusalError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RefusalError", err)
	}
	if acc := src.Accounting(); acc.Rejected != 1 || acc.Queries != 0 {
		t.Fatalf("accounting = %+v", acc)
	}
}

func TestLocalQueryStreamCloseEarlySettlesAccounting(t *testing.T) {
	src := carsSource(t)
	it, err := src.QueryStream(context.Background(), condition.MustParse(`make = "BMW" ^ price < 99999`), []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if acc := src.Accounting(); acc.Queries != 1 || acc.Tuples != 0 {
		t.Fatalf("accounting = %+v, want the abandoned stream settled with 0 tuples", acc)
	}
	if _, err := it.Next(context.Background()); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
}

func TestFlakyFailAfterRowsInjectsMidStream(t *testing.T) {
	f := NewFlaky(carsSource(t)).FailAfterRows(1)
	it, err := f.QueryStream(context.Background(), condition.MustParse(`make = "BMW" ^ price < 99999`), []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got, serr := drainStream(t, it)
	if got == nil || got.Len() != 1 {
		t.Fatalf("rows before fault = %v, want exactly 1", got)
	}
	var te *TransportError
	if !errors.As(serr, &te) || !errors.Is(serr, ErrInjected) {
		t.Fatalf("err = %v, want *TransportError wrapping ErrInjected", serr)
	}
	if f.Failures() != 1 {
		t.Fatalf("failures = %d, want 1", f.Failures())
	}
}

func TestFlakyQueryStreamWholeCallFault(t *testing.T) {
	f := NewFlaky(carsSource(t)).FailFirst(1)
	if _, err := f.QueryStream(context.Background(), condition.MustParse(`make = "BMW" ^ price < 99999`), []string{"model"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected at open", err)
	}
	// Recovered: second call streams through.
	it, err := f.QueryStream(context.Background(), condition.MustParse(`make = "BMW" ^ price < 99999`), []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	res, serr := drainStream(t, it)
	if serr != nil || res.Len() != 2 {
		t.Fatalf("res = %v err = %v, want 2 rows", res, serr)
	}
}

func TestFlakyQueryStreamBridgesNonStreamingInner(t *testing.T) {
	// An inner querier without QueryStream is materialized and re-chunked.
	inner := carsSource(t)
	wrapped := NewFlaky(queryOnly{inner}).FailAfterRows(2)
	it, err := wrapped.QueryStream(context.Background(), condition.MustParse(`make = "BMW" ^ price < 99999`), []string{"model", "color"})
	if err != nil {
		t.Fatal(err)
	}
	res, serr := drainStream(t, it)
	if res.Len() != 2 {
		t.Fatalf("rows before fault = %d, want 2", res.Len())
	}
	if !errors.Is(serr, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", serr)
	}
}

// queryOnly hides any StreamQuerier face of the wrapped querier.
type queryOnly struct{ inner plan.Querier }

func (q queryOnly) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	return q.inner.Query(ctx, cond, attrs)
}
