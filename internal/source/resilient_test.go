package source

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/relation"
)

// okQuerier answers every query with a fixed relation.
type okQuerier struct{ rel *relation.Relation }

func (q *okQuerier) Query(context.Context, condition.Node, []string) (*relation.Relation, error) {
	return q.rel, nil
}

// refuser always declines, like a source whose capabilities do not cover
// the query.
type refuser struct{ calls int }

func (q *refuser) Query(context.Context, condition.Node, []string) (*relation.Relation, error) {
	q.calls++
	return nil, &RefusalError{Source: "r", Msg: "unsupported query"}
}

func tinyRelation(t *testing.T) *relation.Relation {
	t.Helper()
	r := relation.New(relation.MustSchema(relation.Column{Name: "a", Kind: condition.KindString}))
	if err := r.AppendValues(condition.String("x")); err != nil {
		t.Fatal(err)
	}
	return r
}

// instantOpts removes real time from a ResilienceOptions: sleeps return
// immediately (recording their durations), the clock is a settable fake,
// and jitter is identity.
type fakeTime struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

func (f *fakeTime) apply(opts *ResilienceOptions) {
	opts.Sleep = func(ctx context.Context, d time.Duration) error {
		f.mu.Lock()
		f.slept = append(f.slept, d)
		f.mu.Unlock()
		return ctx.Err()
	}
	opts.Now = func() time.Time {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.now
	}
	opts.Jitter = func(d time.Duration) time.Duration { return d }
}

func (f *fakeTime) advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

var anyCond = condition.True()

func TestResilientRetriesTransportThenSucceeds(t *testing.T) {
	ft := &fakeTime{now: time.Unix(0, 0)}
	opts := ResilienceOptions{MaxRetries: 3}
	ft.apply(&opts)
	f := NewFlaky(&okQuerier{rel: tinyRelation(t)}).FailFirst(2)
	r := NewResilient("s", f, opts)
	res, err := r.Query(context.Background(), anyCond, []string{"a"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Len() != 1 {
		t.Errorf("rows = %d", res.Len())
	}
	if f.Calls() != 3 {
		t.Errorf("inner calls = %d, want 3 (2 failures + 1 success)", f.Calls())
	}
	st := r.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Failures != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestResilientExhaustsRetries(t *testing.T) {
	ft := &fakeTime{now: time.Unix(0, 0)}
	opts := ResilienceOptions{MaxRetries: 1}
	ft.apply(&opts)
	f := NewFlaky(&okQuerier{rel: tinyRelation(t)}).FailFirst(10)
	r := NewResilient("s", f, opts)
	_, err := r.Query(context.Background(), anyCond, []string{"a"})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if f.Calls() != 2 {
		t.Errorf("inner calls = %d, want 2 (initial + 1 retry)", f.Calls())
	}
}

func TestResilientNeverRetriesRefusal(t *testing.T) {
	ft := &fakeTime{now: time.Unix(0, 0)}
	opts := ResilienceOptions{MaxRetries: 5}
	ft.apply(&opts)
	inner := &refuser{}
	r := NewResilient("s", inner, opts)
	_, err := r.Query(context.Background(), anyCond, []string{"a"})
	var ref *RefusalError
	if !errors.As(err, &ref) {
		t.Fatalf("err = %v, want *RefusalError", err)
	}
	if inner.calls != 1 {
		t.Errorf("refusal was retried: %d calls", inner.calls)
	}
	st := r.Stats()
	if st.Refusals != 1 || st.Retries != 0 || st.Failures != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestResilientBackoffDoublesAndCaps(t *testing.T) {
	ft := &fakeTime{now: time.Unix(0, 0)}
	opts := ResilienceOptions{MaxRetries: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	ft.apply(&opts)
	f := NewFlaky(nil).FailFirst(100)
	r := NewResilient("s", f, opts)
	if _, err := r.Query(context.Background(), anyCond, nil); err == nil {
		t.Fatal("want error")
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond}
	if len(ft.slept) != len(want) {
		t.Fatalf("slept %v, want %v", ft.slept, want)
	}
	for i := range want {
		if ft.slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, ft.slept[i], want[i])
		}
	}
}

func TestResilientBreakerOpensAndRecovers(t *testing.T) {
	ft := &fakeTime{now: time.Unix(1000, 0)}
	opts := ResilienceOptions{BreakerThreshold: 2, BreakerCooldown: time.Second}
	ft.apply(&opts)
	f := NewFlaky(&okQuerier{rel: tinyRelation(t)}).FailFirst(2)
	r := NewResilient("s", f, opts)

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := r.Query(context.Background(), anyCond, []string{"a"}); err == nil {
			t.Fatalf("call %d: want failure", i)
		}
	}
	// While open, calls fast-fail without reaching the source.
	before := f.Calls()
	_, err := r.Query(context.Background(), anyCond, []string{"a"})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if f.Calls() != before {
		t.Error("open breaker still reached the source")
	}
	if r.Stats().FastFails != 1 {
		t.Errorf("FastFails = %d", r.Stats().FastFails)
	}
	// After the cooldown the half-open trial reaches the (now recovered)
	// source and closes the circuit.
	ft.advance(1100 * time.Millisecond)
	if _, err := r.Query(context.Background(), anyCond, []string{"a"}); err != nil {
		t.Fatalf("half-open trial: %v", err)
	}
	if _, err := r.Query(context.Background(), anyCond, []string{"a"}); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
}

// gatedQuerier fails while down, and once up blocks each call on gate
// before succeeding — so a test can hold the half-open trial in flight
// while other callers hit the breaker.
type gatedQuerier struct {
	down  atomic.Bool
	calls atomic.Int64
	gate  chan struct{}
	rel   *relation.Relation
}

func (q *gatedQuerier) Query(ctx context.Context, _ condition.Node, _ []string) (*relation.Relation, error) {
	q.calls.Add(1)
	if q.down.Load() {
		return nil, &TransportError{Source: "s", Err: errors.New("down")}
	}
	select {
	case <-q.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return q.rel, nil
}

// TestBreakerHalfOpenAdmitsSingleTrial drives N concurrent callers into a
// cooled-down open breaker and requires that exactly one is admitted as
// the half-open trial while the rest fast-fail — the trial slot must not
// stampede the source that just signalled it is struggling. Run under
// -race in CI.
func TestBreakerHalfOpenAdmitsSingleTrial(t *testing.T) {
	ft := &fakeTime{now: time.Unix(1000, 0)}
	opts := ResilienceOptions{BreakerThreshold: 1, BreakerCooldown: time.Second}
	ft.apply(&opts)
	inner := &gatedQuerier{gate: make(chan struct{}), rel: tinyRelation(t)}
	inner.down.Store(true)
	r := NewResilient("s", inner, opts)

	// One failure opens the breaker; then the source recovers and the
	// cooldown passes.
	if _, err := r.Query(context.Background(), anyCond, []string{"a"}); err == nil {
		t.Fatal("want failure to open the breaker")
	}
	inner.down.Store(false)
	ft.advance(1100 * time.Millisecond)

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Query(context.Background(), anyCond, []string{"a"})
		}(i)
	}
	// All callers but the single admitted trial must fast-fail; wait for
	// them, then let the trial finish.
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().FastFails < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("fast-fails = %d, want %d", r.Stats().FastFails, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(inner.gate)
	wg.Wait()

	var ok, fastFailed int
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrCircuitOpen):
			fastFailed++
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if ok != 1 || fastFailed != n-1 {
		t.Errorf("successes = %d, fast-fails = %d; want exactly 1 trial and %d fast-fails", ok, fastFailed, n-1)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("upstream calls = %d, want 2 (opening failure + single trial)", got)
	}
	// The successful trial closed the circuit: the next call goes
	// straight through.
	if _, err := r.Query(context.Background(), anyCond, []string{"a"}); err != nil {
		t.Fatalf("post-trial query: %v", err)
	}
}

// TestBreakerTrialRefusalReleasesSlot ensures a half-open trial that ends
// in a capability refusal frees the trial slot for the next caller
// instead of wedging the breaker half-open forever.
func TestBreakerTrialRefusalReleasesSlot(t *testing.T) {
	ft := &fakeTime{now: time.Unix(1000, 0)}
	opts := ResilienceOptions{BreakerThreshold: 1, BreakerCooldown: time.Second}
	ft.apply(&opts)
	f := NewFlaky(&refuser{}).FailFirst(1)
	r := NewResilient("s", f, opts)

	if _, err := r.Query(context.Background(), anyCond, []string{"a"}); err == nil {
		t.Fatal("want failure to open the breaker")
	}
	ft.advance(1100 * time.Millisecond)
	var ref *RefusalError
	if _, err := r.Query(context.Background(), anyCond, []string{"a"}); !errors.As(err, &ref) {
		t.Fatalf("trial err = %v, want *RefusalError", err)
	}
	// The refusal concluded the trial; the next caller becomes a new
	// trial rather than fast-failing on a stuck slot.
	if _, err := r.Query(context.Background(), anyCond, []string{"a"}); !errors.As(err, &ref) {
		t.Fatalf("post-refusal err = %v, want *RefusalError (new trial admitted)", err)
	}
}

func TestResilientPerAttemptTimeout(t *testing.T) {
	opts := ResilienceOptions{Timeout: 5 * time.Millisecond, MaxRetries: 1, BaseBackoff: time.Microsecond}
	opts.Jitter = func(d time.Duration) time.Duration { return d }
	f := NewFlaky(&okQuerier{rel: tinyRelation(t)}).Latency(500 * time.Millisecond)
	r := NewResilient("s", f, opts)
	start := time.Now()
	_, err := r.Query(context.Background(), anyCond, []string{"a"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if f.Calls() != 2 {
		t.Errorf("inner calls = %d, want 2 (per-attempt timeout is retryable)", f.Calls())
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("took %v — per-attempt timeout not applied", elapsed)
	}
}

func TestResilientStopsOnParentCancellation(t *testing.T) {
	ft := &fakeTime{now: time.Unix(0, 0)}
	opts := ResilienceOptions{MaxRetries: 10}
	ft.apply(&opts)
	f := NewFlaky(nil).FailFirst(100)
	r := NewResilient("s", f, opts)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Query(ctx, anyCond, nil); err == nil {
		t.Fatal("want error")
	}
	if f.Calls() > 1 {
		t.Errorf("cancelled context still retried: %d calls", f.Calls())
	}
}
