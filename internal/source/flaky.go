package source

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/condition"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Flaky wraps a plan.Querier with injectable faults, modelling the
// unreliable 1999-era Internet sources the paper's mediator queries: it
// can fail its first N calls then recover, fail a random fraction of
// calls, add latency, or block until cancelled. Tests across plan,
// source and mediator use it to exercise the resilience machinery; it is
// not a test-only type so examples and benchmarks can use it too.
//
// Injected failures are *TransportError (retryable), matching what the
// HTTP client reports for a dead or misbehaving endpoint. A nil inner
// querier serves an empty unnamed refusal for every call that survives
// fault injection, which is rarely what you want — pass a Local.
type Flaky struct {
	inner plan.Querier

	mu        sync.Mutex
	failFirst int
	failAfter int // rows served per stream before a mid-stream fault; -1 off
	errorRate float64
	rng       *rand.Rand
	latency   time.Duration
	block     chan struct{}
	calls     int
	failures  int
}

// ErrInjected is the cause inside every fault Flaky injects.
var ErrInjected = errors.New("injected fault")

// NewFlaky wraps inner; with no options it is transparent.
func NewFlaky(inner plan.Querier) *Flaky { return &Flaky{inner: inner, failAfter: -1} }

// FailAfterRows makes every streamed query (QueryStream) die with a
// transport error after serving n rows — the mid-stream fault mode the
// whole-answer Query path cannot produce, and the one that distinguishes
// sound-partial Union degradation from fail-closed operators. n < 0
// disables it; materialized Query calls are unaffected. Returns the
// receiver for chaining.
func (f *Flaky) FailAfterRows(n int) *Flaky {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfter = n
	return f
}

// FailFirst makes the next n calls fail with a transport error, after
// which the source recovers. Returns the receiver for chaining.
func (f *Flaky) FailFirst(n int) *Flaky {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failFirst = n
	return f
}

// FailRate makes each call fail independently with probability p,
// deterministically seeded. Returns the receiver for chaining.
func (f *Flaky) FailRate(p float64, seed int64) *Flaky {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errorRate = p
	f.rng = rand.New(rand.NewSource(seed))
	return f
}

// Latency delays each call by d (interruptible by the context). Returns
// the receiver for chaining.
func (f *Flaky) Latency(d time.Duration) *Flaky {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
	return f
}

// Block makes every call hang until Unblock is called or the caller's
// context ends — a source that accepts connections and never answers.
// Returns the receiver for chaining.
func (f *Flaky) Block() *Flaky {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.block = make(chan struct{})
	return f
}

// Unblock releases all calls hung in Block mode and disables it.
func (f *Flaky) Unblock() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.block != nil {
		close(f.block)
		f.block = nil
	}
}

// Calls returns how many queries reached the flaky layer.
func (f *Flaky) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Failures returns how many injected failures it served.
func (f *Flaky) Failures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failures
}

// gate applies the per-call fault pipeline — call counting, blocking,
// latency, whole-call failure injection — shared by Query and
// QueryStream. It returns the stream row budget (failAfter) sampled under
// the same lock so one call sees one consistent fault configuration.
func (f *Flaky) gate(ctx context.Context) (failAfter int, err error) {
	f.mu.Lock()
	f.calls++
	block := f.block
	latency := f.latency
	failAfter = f.failAfter
	fail := false
	if f.failFirst > 0 {
		f.failFirst--
		fail = true
	} else if f.errorRate > 0 && f.rng != nil && f.rng.Float64() < f.errorRate {
		fail = true
	}
	if fail {
		f.failures++
	}
	f.mu.Unlock()

	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return failAfter, &TransportError{Err: ctx.Err()}
		}
	}
	if latency > 0 {
		t := time.NewTimer(latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return failAfter, &TransportError{Err: ctx.Err()}
		}
	}
	if fail {
		return failAfter, &TransportError{Err: ErrInjected}
	}
	return failAfter, nil
}

// Query implements plan.Querier, applying blocking, latency and failure
// injection before delegating to the inner querier.
func (f *Flaky) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	if _, err := f.gate(ctx); err != nil {
		return nil, err
	}
	if f.inner == nil {
		return nil, &RefusalError{Msg: "flaky: no inner querier"}
	}
	return f.inner.Query(ctx, cond, attrs)
}

// QueryStream implements plan.StreamQuerier. The per-call fault pipeline
// runs at open (a whole-call failure surfaces before any row); when the
// inner querier streams natively the stream is delegated, otherwise the
// inner answer is materialized once and re-chunked. With FailAfterRows
// set, the stream dies with a retryable *TransportError after serving
// that many rows.
func (f *Flaky) QueryStream(ctx context.Context, cond condition.Node, attrs []string) (plan.Iterator, error) {
	failAfter, err := f.gate(ctx)
	if err != nil {
		return nil, err
	}
	if f.inner == nil {
		return nil, &RefusalError{Msg: "flaky: no inner querier"}
	}
	var inner plan.Iterator
	if sq, ok := f.inner.(plan.StreamQuerier); ok {
		inner, err = sq.QueryStream(ctx, cond, attrs)
	} else {
		var rel *relation.Relation
		rel, err = f.inner.Query(ctx, cond, attrs)
		if err == nil {
			inner = plan.NewRelationIterator(rel, 0)
		}
	}
	if err != nil {
		return nil, err
	}
	if failAfter < 0 {
		return inner, nil
	}
	return &faultingIter{inner: inner, flaky: f, remaining: failAfter}, nil
}

// faultingIter serves rows from the inner stream until its budget runs
// out, then injects a mid-stream transport fault.
type faultingIter struct {
	inner     plan.Iterator
	flaky     *Flaky
	remaining int
	tripped   bool
}

func (it *faultingIter) Schema() *relation.Schema { return it.inner.Schema() }

func (it *faultingIter) Next(ctx context.Context) ([]relation.Tuple, error) {
	if it.tripped {
		return nil, &TransportError{Err: ErrInjected}
	}
	if it.remaining <= 0 {
		return nil, it.trip()
	}
	chunk, err := it.inner.Next(ctx)
	if err != nil {
		return nil, err
	}
	if len(chunk) > it.remaining {
		chunk = chunk[:it.remaining]
	}
	it.remaining -= len(chunk)
	return chunk, nil
}

func (it *faultingIter) trip() error {
	it.tripped = true
	it.flaky.mu.Lock()
	it.flaky.failures++
	it.flaky.mu.Unlock()
	return &TransportError{Err: ErrInjected}
}

func (it *faultingIter) Close() error { return it.inner.Close() }
