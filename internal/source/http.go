package source

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/ssdl"
)

// The HTTP transport exposes a source the way the paper's Internet sources
// are reached: over the network, with the capability description published
// next to the query endpoint.
//
//	GET  /describe            -> SSDL description text
//	GET  /stats               -> per-attribute statistics (JSON)
//	POST /query {cond, attrs} -> TSV result, or 422 for unsupported queries
//
// Result-bounded and paginated interfaces extend the protocol with two
// response headers and one optional request field:
//
//   - a response whose answer was cut at the source's result bound
//     carries "X-CSQP-Truncated: <limit>" next to the (sound, top-k) TSV
//     body — truncation is an annotated 200, never a silent short answer;
//   - a request carrying a "cursor" field asks for ONE page
//     ("" = first page); the response's "X-CSQP-Next-Cursor" header holds
//     the cursor for the next page, absent on the last one.
//
// Publishing statistics next to the capability description is this
// repository's stand-in for the per-source cost knowledge the paper's
// mediator is assumed to have (its k1/k2 "depend on the source").

// Wire headers for result-bounded/paginated answers.
const (
	// truncatedHeader carries the source's result bound when the answer
	// was cut at it.
	truncatedHeader = "X-Csqp-Truncated"
	// nextCursorHeader carries the cursor of the next page.
	nextCursorHeader = "X-Csqp-Next-Cursor"
)

// queryRequest is the wire format of a source query. A non-nil Cursor
// requests a single page of the answer ("" = first page).
type queryRequest struct {
	Cond   string   `json:"cond"`
	Attrs  []string `json:"attrs"`
	Cursor *string  `json:"cursor,omitempty"`
}

// Handler serves the source over HTTP.
type Handler struct {
	src *Local
	mux *http.ServeMux
	log *slog.Logger

	statsOnce sync.Once
	stats     *relation.Stats
}

// NewHandler builds an http.Handler for the source.
func NewHandler(src *Local) *Handler {
	h := &Handler{src: src, mux: http.NewServeMux(), log: obs.NopLogger()}
	h.mux.HandleFunc("GET /describe", h.describe)
	h.mux.HandleFunc("GET /stats", h.serveStats)
	h.mux.HandleFunc("POST /query", h.query)
	return h
}

// SetLogger installs a structured logger for swallowed errors — response-
// write failures that cannot be reported to the client because the
// headers are already sent. A nil logger silences them (the default).
func (h *Handler) SetLogger(l *slog.Logger) { h.log = obs.LoggerOr(l) }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) describe(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := io.WriteString(w, h.src.Grammar().String()); err != nil {
		h.log.Warn("swallowed response-write error",
			"source", h.src.Name(), "endpoint", "/describe", "err", err)
	}
}

func (h *Handler) serveStats(w http.ResponseWriter, _ *http.Request) {
	h.statsOnce.Do(func() { h.stats = relation.CollectStats(h.src.Relation()) })
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(h.stats); err != nil {
		h.log.Warn("swallowed response-write error",
			"source", h.src.Name(), "endpoint", "/stats", "err", err)
	}
}

func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	cond, err := condition.Parse(req.Cond)
	if err != nil {
		http.Error(w, "bad condition: "+err.Error(), http.StatusBadRequest)
		return
	}
	// The request context cancels the query when the client hangs up.
	var (
		res  *relation.Relation
		next string
	)
	if req.Cursor != nil {
		res, next, err = h.src.QueryPage(r.Context(), cond, req.Attrs, *req.Cursor)
	} else {
		res, err = h.src.Query(r.Context(), cond, req.Attrs)
	}
	if err != nil {
		var te *plan.TruncatedError
		if !(errors.As(err, &te) && res != nil) {
			// Unsupported queries are the source refusing, not a transport
			// error.
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		// A result-bound cut is an annotated success, not a failure: the
		// top-k rows in the body are sound, and the header says the answer
		// stops there.
		w.Header().Set(truncatedHeader, strconv.Itoa(te.Limit))
	}
	if next != "" {
		w.Header().Set(nextCursorHeader, next)
	}
	w.Header().Set("Content-Type", "text/tab-separated-values")
	if err := relation.WriteTSV(w, res); err != nil {
		// Headers are gone; the client sees a truncated body — record the
		// failure on our side.
		h.log.Warn("swallowed response-write error",
			"source", h.src.Name(), "endpoint", "/query", "err", err)
	}
}

// DefaultMaxResponseBytes caps how much of a /query response body the
// client will read when SetMaxResponseBytes was never called. A
// misbehaving (or malicious) source streaming an endless body must not be
// able to exhaust the mediator's memory.
const DefaultMaxResponseBytes = 64 << 20

// Client queries a remote source over HTTP; it implements plan.Querier.
// Its errors distinguish capability refusals (*RefusalError, from 4xx)
// from transient transport failures (*TransportError, from network errors
// and 5xx), so resilience layers know what is worth retrying.
//
// A Client is safe for concurrent use: Describe, Stats and Query may be
// called from any number of goroutines (the mediator does exactly that
// once the source is registered).
type Client struct {
	base string
	hc   *http.Client
	// name is written by SetName and lazily by the first Describe while
	// concurrent Queries read it for error construction, so it is atomic.
	name atomic.Pointer[string]
	// maxResp caps the /query response body (0 = DefaultMaxResponseBytes).
	maxResp atomic.Int64
}

// NewClient builds a client for a source served at base (e.g.
// "http://host:port"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// SetName sets the source name used in the client's errors (normally the
// grammar's source header, learned from Describe).
func (c *Client) SetName(name string) { c.name.Store(&name) }

// Name returns the client's source name ("" until SetName or the first
// successful Describe).
func (c *Client) Name() string {
	if p := c.name.Load(); p != nil {
		return *p
	}
	return ""
}

// SetMaxResponseBytes caps how many bytes of a /query response body the
// client reads before classifying the source as misbehaving; n <= 0
// restores DefaultMaxResponseBytes.
func (c *Client) SetMaxResponseBytes(n int64) { c.maxResp.Store(n) }

func (c *Client) maxResponseBytes() int64 {
	if n := c.maxResp.Load(); n > 0 {
		return n
	}
	return DefaultMaxResponseBytes
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.hc.Do(req)
}

// statusError classifies a non-200 response the way resilience layers
// need: 4xx is the source deterministically declining (*RefusalError,
// never retried), everything else is the source or the path misbehaving
// (*TransportError, retryable). It drains a bounded snippet of the body
// for the message.
func (c *Client) statusError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	snippet := strings.TrimSpace(string(msg))
	if resp.StatusCode >= 400 && resp.StatusCode < 500 {
		return &RefusalError{Source: c.Name(), Msg: fmt.Sprintf("%s refused (%s): %s", op, resp.Status, snippet)}
	}
	return &TransportError{Source: c.Name(), Err: fmt.Errorf("%s: status %s: %s", op, resp.Status, snippet)}
}

// Describe fetches and parses the source's SSDL description.
func (c *Client) Describe(ctx context.Context) (*ssdl.Grammar, error) {
	resp, err := c.get(ctx, "/describe")
	if err != nil {
		return nil, &TransportError{Source: c.Name(), Err: fmt.Errorf("describe: %w", err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.statusError("describe", resp)
	}
	text, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, &TransportError{Source: c.Name(), Err: fmt.Errorf("describe: %w", err)}
	}
	g, err := ssdl.Parse(string(text))
	if err != nil {
		return nil, err
	}
	if c.Name() == "" {
		c.SetName(g.Source)
	}
	return g, nil
}

// Stats fetches the source's published statistics.
func (c *Client) Stats(ctx context.Context) (*relation.Stats, error) {
	resp, err := c.get(ctx, "/stats")
	if err != nil {
		return nil, &TransportError{Source: c.Name(), Err: fmt.Errorf("stats: %w", err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.statusError("stats", resp)
	}
	var st relation.Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&st); err != nil {
		return nil, &TransportError{Source: c.Name(), Err: fmt.Errorf("stats: %w", err)}
	}
	return &st, nil
}

// Query implements plan.Querier over the wire. The context bounds the
// whole round-trip: cancelling it aborts the in-flight request. A
// result-bounded source's cut answer comes back as its sound top-k rows
// alongside a *plan.TruncatedError reconstructed from the response
// header.
func (c *Client) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	res, _, err := c.doQuery(ctx, queryRequest{Cond: cond.Key(), Attrs: attrs})
	return res, err
}

// QueryPage implements CursorQuerier over the wire: it fetches one page
// of SP(cond, attrs, R). Cursor "" asks for the first page; the returned
// cursor resumes the scan and is "" on the last page.
func (c *Client) QueryPage(ctx context.Context, cond condition.Node, attrs []string, cursor string) (*relation.Relation, string, error) {
	return c.doQuery(ctx, queryRequest{Cond: cond.Key(), Attrs: attrs, Cursor: &cursor})
}

// doQuery runs one POST /query round-trip and decodes body plus the
// pagination/truncation headers.
func (c *Client) doQuery(ctx context.Context, qr queryRequest) (*relation.Relation, string, error) {
	body, err := json.Marshal(qr)
	if err != nil {
		return nil, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		// Surface plain cancellation/deadline (the http client wraps them
		// in a *url.Error); everything else is transport.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, "", ctxErr
		}
		return nil, "", &TransportError{Source: c.Name(), Err: fmt.Errorf("query: %w", err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", c.statusError("query", resp)
	}
	// Bound the result read: a source streaming an endless body must fail
	// the query, not OOM the mediator. One byte of slack past the cap
	// distinguishes "exactly at the cap" from "over it".
	maxBytes := c.maxResponseBytes()
	lr := &io.LimitedReader{R: resp.Body, N: maxBytes + 1}
	res, err := relation.ReadTSV(lr)
	if lr.N <= 0 {
		// Oversized responses are deterministic misbehavior — retrying
		// would re-download the same flood — so classify as a refusal,
		// which resilience layers never retry.
		return nil, "", &RefusalError{Source: c.Name(),
			Msg: fmt.Sprintf("query: response body exceeds %d-byte cap", maxBytes)}
	}
	if err != nil {
		return nil, "", &TransportError{Source: c.Name(), Err: fmt.Errorf("query: reading result: %w", err)}
	}
	next := resp.Header.Get(nextCursorHeader)
	if hdr := resp.Header.Get(truncatedHeader); hdr != "" {
		lim, perr := strconv.Atoi(hdr)
		if perr != nil || lim <= 0 {
			// A malformed header still marks the answer incomplete; fall
			// back to the rows actually received as the cut point.
			lim = res.Len()
		}
		return res, next, &plan.TruncatedError{Source: c.Name(), Limit: lim}
	}
	return res, next, nil
}
