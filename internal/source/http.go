package source

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/condition"
	"repro/internal/relation"
	"repro/internal/ssdl"
)

// The HTTP transport exposes a source the way the paper's Internet sources
// are reached: over the network, with the capability description published
// next to the query endpoint.
//
//	GET  /describe            -> SSDL description text
//	GET  /stats               -> per-attribute statistics (JSON)
//	POST /query {cond, attrs} -> TSV result, or 422 for unsupported queries
//
// Publishing statistics next to the capability description is this
// repository's stand-in for the per-source cost knowledge the paper's
// mediator is assumed to have (its k1/k2 "depend on the source").

// queryRequest is the wire format of a source query.
type queryRequest struct {
	Cond  string   `json:"cond"`
	Attrs []string `json:"attrs"`
}

// Handler serves the source over HTTP.
type Handler struct {
	src *Local
	mux *http.ServeMux

	statsOnce sync.Once
	stats     *relation.Stats
}

// NewHandler builds an http.Handler for the source.
func NewHandler(src *Local) *Handler {
	h := &Handler{src: src, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /describe", h.describe)
	h.mux.HandleFunc("GET /stats", h.serveStats)
	h.mux.HandleFunc("POST /query", h.query)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) describe(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, h.src.Grammar().String())
}

func (h *Handler) serveStats(w http.ResponseWriter, _ *http.Request) {
	h.statsOnce.Do(func() { h.stats = relation.CollectStats(h.src.Relation()) })
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(h.stats); err != nil {
		return
	}
}

func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	cond, err := condition.Parse(req.Cond)
	if err != nil {
		http.Error(w, "bad condition: "+err.Error(), http.StatusBadRequest)
		return
	}
	res, err := h.src.Query(cond, req.Attrs)
	if err != nil {
		// Unsupported queries are the source refusing, not a transport
		// error.
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values")
	if err := relation.WriteTSV(w, res); err != nil {
		// Headers are gone; nothing better to do than log via the
		// connection error the client will see.
		return
	}
}

// Client queries a remote source over HTTP; it implements plan.Querier.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for a source served at base (e.g.
// "http://host:port"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// Describe fetches and parses the source's SSDL description.
func (c *Client) Describe() (*ssdl.Grammar, error) {
	resp, err := c.hc.Get(c.base + "/describe")
	if err != nil {
		return nil, fmt.Errorf("source client: describe: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("source client: describe: status %s", resp.Status)
	}
	text, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("source client: describe: %w", err)
	}
	return ssdl.Parse(string(text))
}

// Stats fetches the source's published statistics.
func (c *Client) Stats() (*relation.Stats, error) {
	resp, err := c.hc.Get(c.base + "/stats")
	if err != nil {
		return nil, fmt.Errorf("source client: stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("source client: stats: status %s", resp.Status)
	}
	var st relation.Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&st); err != nil {
		return nil, fmt.Errorf("source client: stats: %w", err)
	}
	return &st, nil
}

// Query implements plan.Querier over the wire.
func (c *Client) Query(cond condition.Node, attrs []string) (*relation.Relation, error) {
	body, err := json.Marshal(queryRequest{Cond: cond.Key(), Attrs: attrs})
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Post(c.base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("source client: query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("source client: query refused (%s): %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return relation.ReadTSV(resp.Body)
}
