// Package source provides simulated Internet sources: in-memory relations
// guarded by SSDL capability descriptions. A source rejects any query its
// description does not support — exactly how a web form behaves — and
// keeps transfer accounting so experiments can measure how much data each
// plan extracted. The package also serves sources over real HTTP and
// provides the matching client, so a mediator can exercise the full
// network round-trip.
package source

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/condition"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/ssdl"
	"repro/internal/strset"
)

// Accounting records the traffic a source has served.
type Accounting struct {
	// Queries is the number of source queries answered.
	Queries int
	// Tuples is the total number of result tuples returned.
	Tuples int
	// Rejected is the number of unsupported queries refused.
	Rejected int
}

// Local is an in-memory source: a relation plus the SSDL description that
// gates access to it. It is safe for concurrent use.
type Local struct {
	name    string
	rel     *relation.Relation
	checker *ssdl.Checker

	mu  sync.Mutex
	acc Accounting
}

// NewLocal builds a source from a relation and its SSDL grammar. The
// grammar's source name is used when name is empty.
func NewLocal(name string, rel *relation.Relation, g *ssdl.Grammar) (*Local, error) {
	if name == "" {
		name = g.Source
	}
	if name == "" {
		return nil, fmt.Errorf("source: no name given and grammar has no source header")
	}
	for _, a := range g.Schema {
		if !rel.Schema().Has(a) {
			return nil, fmt.Errorf("source %s: SSDL attribute %q missing from relation schema %v", name, a, rel.Schema())
		}
	}
	// Index the columns the source's own query shapes probe by equality
	// (plus the key): those are exactly the lookups its form performs.
	toIndex := map[string]bool{}
	if g.Key != "" {
		toIndex[g.Key] = true
	}
	for _, rule := range g.Rules {
		for _, sym := range rule.RHS {
			if sym.Kind == ssdl.SymAtom && sym.Atom.Op == condition.OpEq {
				toIndex[sym.Atom.Attr] = true
			}
		}
	}
	for a := range toIndex {
		if rel.Schema().Has(a) {
			if err := rel.BuildIndex(a); err != nil {
				return nil, fmt.Errorf("source %s: %w", name, err)
			}
		}
	}
	return &Local{name: name, rel: rel, checker: ssdl.NewChecker(g)}, nil
}

// Name returns the source's name.
func (s *Local) Name() string { return s.name }

// Checker returns the source's SSDL checker (the mediator uses it for
// planning; a real deployment would ship the description text instead).
func (s *Local) Checker() *ssdl.Checker { return s.checker }

// Grammar returns the source's SSDL grammar.
func (s *Local) Grammar() *ssdl.Grammar { return s.checker.Grammar() }

// Relation returns the backing relation (experiments use it for oracle
// cardinalities; a real Internet source would not expose it).
func (s *Local) Relation() *relation.Relation { return s.rel }

// Query implements plan.Querier: it refuses unsupported queries (with a
// *RefusalError, the local analogue of the HTTP transport's 422), then
// evaluates SP(cond, attrs, R). Evaluation is in-memory and fast, so the
// context is only checked on entry.
func (s *Local) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !s.checker.Supports(cond, strset.New(attrs...)) {
		s.mu.Lock()
		s.acc.Rejected++
		s.mu.Unlock()
		return nil, &RefusalError{Source: s.name, Msg: fmt.Sprintf("unsupported query SP(%s; %v)", cond.Key(), attrs)}
	}
	res, terr, err := s.answer(cond, attrs)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.acc.Queries++
	s.acc.Tuples += res.Len()
	s.mu.Unlock()
	return res, terr
}

// head returns a relation holding the first n tuples of res (in the
// relation's deterministic tuple order).
func head(res *relation.Relation, n int) (*relation.Relation, error) {
	return window(res, 0, n)
}

// window returns a relation holding res's tuples [off, end) in the
// relation's deterministic tuple order.
func window(res *relation.Relation, off, end int) (*relation.Relation, error) {
	out := relation.New(res.Schema())
	for _, t := range res.Tuples()[off:end] {
		if err := out.Append(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// answer evaluates SP(cond, attrs, R) with the result bound applied but
// WITHOUT booking any accounting: the callers (Query, QueryPage) settle
// accounting for the rows they actually serve. The second return is the
// *plan.TruncatedError when the bound cut the answer, nil otherwise.
func (s *Local) answer(cond condition.Node, attrs []string) (*relation.Relation, error, error) {
	var sel *relation.Relation
	var err error
	if condition.IsTrue(cond) {
		sel = s.rel
	} else {
		sel, err = s.rel.Select(cond)
		if err != nil {
			return nil, nil, fmt.Errorf("source %s: %w", s.name, err)
		}
	}
	res, err := sel.Project(attrs)
	if err != nil {
		return nil, nil, fmt.Errorf("source %s: %w", s.name, err)
	}
	var terr error
	if lim := s.Grammar().Limit; lim > 0 && res.Len() > lim {
		// Result-bounded interface: serve the top-k rows and report the
		// overflow honestly instead of silently presenting a short answer
		// as complete. When the answer fits inside the bound the source
		// KNOWS it is complete, so no error is reported (the provably-
		// complete case).
		res, err = head(res, lim)
		if err != nil {
			return nil, nil, fmt.Errorf("source %s: %w", s.name, err)
		}
		terr = &plan.TruncatedError{Source: s.name, Limit: lim}
	}
	return res, terr, nil
}

// QueryPage implements CursorQuerier: it serves ONE page of the (result-
// bound-capped) answer. The cursor is a decimal offset into the answer's
// deterministic tuple order ("" = first page); the returned cursor
// resumes the scan and is "" on the last page. A malformed or out-of-
// range cursor is a deterministic *RefusalError — retrying it cannot
// help. Truncation at the result bound is reported on the final page
// only, alongside that page's rows. Each page books one query in the
// accounting: a page is a full source round-trip paying its own k1.
func (s *Local) QueryPage(ctx context.Context, cond condition.Node, attrs []string, cursor string) (*relation.Relation, string, error) {
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	if !s.checker.Supports(cond, strset.New(attrs...)) {
		s.mu.Lock()
		s.acc.Rejected++
		s.mu.Unlock()
		return nil, "", &RefusalError{Source: s.name, Msg: fmt.Sprintf("unsupported query SP(%s; %v)", cond.Key(), attrs)}
	}
	res, terr, err := s.answer(cond, attrs)
	if err != nil {
		return nil, "", err
	}
	off := 0
	if cursor != "" {
		off, err = strconv.Atoi(cursor)
		if err != nil || off < 0 || off > res.Len() {
			return nil, "", &RefusalError{Source: s.name, Msg: fmt.Sprintf("bad cursor %q", cursor)}
		}
	}
	end := res.Len()
	if ps := s.Grammar().PageSize; ps > 0 && off+ps < end {
		end = off + ps
	}
	page, err := window(res, off, end)
	if err != nil {
		return nil, "", fmt.Errorf("source %s: %w", s.name, err)
	}
	next := ""
	if end < res.Len() {
		next = strconv.Itoa(end)
	}
	s.mu.Lock()
	s.acc.Queries++
	s.acc.Tuples += page.Len()
	s.mu.Unlock()
	if next == "" && terr != nil {
		return page, "", terr
	}
	return page, next, nil
}

// QueryStream implements plan.StreamQuerier: the same SP(cond, attrs, R)
// evaluation as Query, but incremental — capability refusal happens here,
// then rows are selected (index-accelerated when an equality probe
// applies), projected and deduplicated one at a time as the consumer
// pulls, so the source never materializes its answer. Accounting is
// settled when the stream ends (or is closed early, counting only the
// tuples actually served).
func (s *Local) QueryStream(ctx context.Context, cond condition.Node, attrs []string) (plan.Iterator, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !s.checker.Supports(cond, strset.New(attrs...)) {
		s.mu.Lock()
		s.acc.Rejected++
		s.mu.Unlock()
		return nil, &RefusalError{Source: s.name, Msg: fmt.Sprintf("unsupported query SP(%s; %v)", cond.Key(), attrs)}
	}
	ps, err := s.rel.Schema().Project(attrs)
	if err != nil {
		return nil, fmt.Errorf("source %s: %w", s.name, err)
	}
	it := &localIter{src: s, cond: cond, ps: ps, chunk: plan.DefaultChunkSize, seen: make(map[string]struct{}), limit: s.Grammar().Limit}
	if !condition.IsTrue(cond) {
		it.candidates, it.useCand = s.rel.Probe(cond)
	}
	return it, nil
}

// localIter is Local's streaming scan: candidate positions from an index
// probe (or the whole relation), filtered by the full condition and
// projected with on-the-fly set semantics.
type localIter struct {
	src        *Local
	cond       condition.Node
	ps         *relation.Schema
	candidates []int
	useCand    bool
	pos        int
	chunk      int
	seen       map[string]struct{}
	emitted    int
	limit      int  // result bound (0 = unbounded)
	trunc      bool // a match beyond the bound was found
	done       bool
}

func (it *localIter) Schema() *relation.Schema { return it.ps }

// settle books the stream into the source's accounting exactly once.
func (it *localIter) settle() {
	if it.done {
		return
	}
	it.done = true
	it.seen = nil
	it.src.mu.Lock()
	it.src.acc.Queries++
	it.src.acc.Tuples += it.emitted
	it.src.mu.Unlock()
}

func (it *localIter) Next(ctx context.Context) ([]relation.Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if it.done {
		return nil, io.EOF
	}
	if it.trunc {
		lim := it.limit
		it.settle()
		return nil, &plan.TruncatedError{Source: it.src.name, Limit: lim}
	}
	tuples := it.src.rel.Tuples()
	limit := len(tuples)
	if it.useCand {
		limit = len(it.candidates)
	}
	var out []relation.Tuple
	for it.pos < limit && len(out) < it.chunk {
		t := tuples[it.pos]
		if it.useCand {
			t = tuples[it.candidates[it.pos]]
		}
		it.pos++
		ok, err := it.cond.Eval(t)
		if err != nil {
			it.settle()
			return nil, fmt.Errorf("source %s: %w", it.src.name, err)
		}
		if !ok {
			continue
		}
		pt := t.Projected(it.ps)
		k := pt.Key()
		if _, dup := it.seen[k]; dup {
			continue
		}
		if it.limit > 0 && it.emitted+len(out) >= it.limit {
			// A distinct match beyond the result bound: the stream is
			// truncated. Deliver what the chunk holds, then report.
			it.trunc = true
			break
		}
		it.seen[k] = struct{}{}
		out = append(out, pt)
	}
	it.emitted += len(out)
	if len(out) > 0 {
		return out, nil
	}
	if it.trunc {
		lim := it.limit
		it.settle()
		return nil, &plan.TruncatedError{Source: it.src.name, Limit: lim}
	}
	it.settle()
	return nil, io.EOF
}

func (it *localIter) Close() error {
	it.settle()
	return nil
}

// Accounting returns a snapshot of the source's traffic counters.
func (s *Local) Accounting() Accounting {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acc
}

// ResetAccounting zeroes the traffic counters.
func (s *Local) ResetAccounting() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acc = Accounting{}
}
