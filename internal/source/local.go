// Package source provides simulated Internet sources: in-memory relations
// guarded by SSDL capability descriptions. A source rejects any query its
// description does not support — exactly how a web form behaves — and
// keeps transfer accounting so experiments can measure how much data each
// plan extracted. The package also serves sources over real HTTP and
// provides the matching client, so a mediator can exercise the full
// network round-trip.
package source

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/condition"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/ssdl"
	"repro/internal/strset"
)

// Accounting records the traffic a source has served.
type Accounting struct {
	// Queries is the number of source queries answered.
	Queries int
	// Tuples is the total number of result tuples returned.
	Tuples int
	// Rejected is the number of unsupported queries refused.
	Rejected int
}

// Local is an in-memory source: a relation plus the SSDL description that
// gates access to it. It is safe for concurrent use.
type Local struct {
	name    string
	rel     *relation.Relation
	checker *ssdl.Checker

	mu  sync.Mutex
	acc Accounting
}

// NewLocal builds a source from a relation and its SSDL grammar. The
// grammar's source name is used when name is empty.
func NewLocal(name string, rel *relation.Relation, g *ssdl.Grammar) (*Local, error) {
	if name == "" {
		name = g.Source
	}
	if name == "" {
		return nil, fmt.Errorf("source: no name given and grammar has no source header")
	}
	for _, a := range g.Schema {
		if !rel.Schema().Has(a) {
			return nil, fmt.Errorf("source %s: SSDL attribute %q missing from relation schema %v", name, a, rel.Schema())
		}
	}
	// Index the columns the source's own query shapes probe by equality
	// (plus the key): those are exactly the lookups its form performs.
	toIndex := map[string]bool{}
	if g.Key != "" {
		toIndex[g.Key] = true
	}
	for _, rule := range g.Rules {
		for _, sym := range rule.RHS {
			if sym.Kind == ssdl.SymAtom && sym.Atom.Op == condition.OpEq {
				toIndex[sym.Atom.Attr] = true
			}
		}
	}
	for a := range toIndex {
		if rel.Schema().Has(a) {
			if err := rel.BuildIndex(a); err != nil {
				return nil, fmt.Errorf("source %s: %w", name, err)
			}
		}
	}
	return &Local{name: name, rel: rel, checker: ssdl.NewChecker(g)}, nil
}

// Name returns the source's name.
func (s *Local) Name() string { return s.name }

// Checker returns the source's SSDL checker (the mediator uses it for
// planning; a real deployment would ship the description text instead).
func (s *Local) Checker() *ssdl.Checker { return s.checker }

// Grammar returns the source's SSDL grammar.
func (s *Local) Grammar() *ssdl.Grammar { return s.checker.Grammar() }

// Relation returns the backing relation (experiments use it for oracle
// cardinalities; a real Internet source would not expose it).
func (s *Local) Relation() *relation.Relation { return s.rel }

// Query implements plan.Querier: it refuses unsupported queries (with a
// *RefusalError, the local analogue of the HTTP transport's 422), then
// evaluates SP(cond, attrs, R). Evaluation is in-memory and fast, so the
// context is only checked on entry.
func (s *Local) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !s.checker.Supports(cond, strset.New(attrs...)) {
		s.mu.Lock()
		s.acc.Rejected++
		s.mu.Unlock()
		return nil, &RefusalError{Source: s.name, Msg: fmt.Sprintf("unsupported query SP(%s; %v)", cond.Key(), attrs)}
	}
	var sel *relation.Relation
	var err error
	if condition.IsTrue(cond) {
		sel = s.rel
	} else {
		sel, err = s.rel.Select(cond)
		if err != nil {
			return nil, fmt.Errorf("source %s: %w", s.name, err)
		}
	}
	res, err := sel.Project(attrs)
	if err != nil {
		return nil, fmt.Errorf("source %s: %w", s.name, err)
	}
	s.mu.Lock()
	s.acc.Queries++
	s.acc.Tuples += res.Len()
	s.mu.Unlock()
	return res, nil
}

// QueryStream implements plan.StreamQuerier: the same SP(cond, attrs, R)
// evaluation as Query, but incremental — capability refusal happens here,
// then rows are selected (index-accelerated when an equality probe
// applies), projected and deduplicated one at a time as the consumer
// pulls, so the source never materializes its answer. Accounting is
// settled when the stream ends (or is closed early, counting only the
// tuples actually served).
func (s *Local) QueryStream(ctx context.Context, cond condition.Node, attrs []string) (plan.Iterator, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !s.checker.Supports(cond, strset.New(attrs...)) {
		s.mu.Lock()
		s.acc.Rejected++
		s.mu.Unlock()
		return nil, &RefusalError{Source: s.name, Msg: fmt.Sprintf("unsupported query SP(%s; %v)", cond.Key(), attrs)}
	}
	ps, err := s.rel.Schema().Project(attrs)
	if err != nil {
		return nil, fmt.Errorf("source %s: %w", s.name, err)
	}
	it := &localIter{src: s, cond: cond, ps: ps, chunk: plan.DefaultChunkSize, seen: make(map[string]struct{})}
	if !condition.IsTrue(cond) {
		it.candidates, it.useCand = s.rel.Probe(cond)
	}
	return it, nil
}

// localIter is Local's streaming scan: candidate positions from an index
// probe (or the whole relation), filtered by the full condition and
// projected with on-the-fly set semantics.
type localIter struct {
	src        *Local
	cond       condition.Node
	ps         *relation.Schema
	candidates []int
	useCand    bool
	pos        int
	chunk      int
	seen       map[string]struct{}
	emitted    int
	done       bool
}

func (it *localIter) Schema() *relation.Schema { return it.ps }

// settle books the stream into the source's accounting exactly once.
func (it *localIter) settle() {
	if it.done {
		return
	}
	it.done = true
	it.seen = nil
	it.src.mu.Lock()
	it.src.acc.Queries++
	it.src.acc.Tuples += it.emitted
	it.src.mu.Unlock()
}

func (it *localIter) Next(ctx context.Context) ([]relation.Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if it.done {
		return nil, io.EOF
	}
	tuples := it.src.rel.Tuples()
	limit := len(tuples)
	if it.useCand {
		limit = len(it.candidates)
	}
	var out []relation.Tuple
	for it.pos < limit && len(out) < it.chunk {
		t := tuples[it.pos]
		if it.useCand {
			t = tuples[it.candidates[it.pos]]
		}
		it.pos++
		ok, err := it.cond.Eval(t)
		if err != nil {
			it.settle()
			return nil, fmt.Errorf("source %s: %w", it.src.name, err)
		}
		if !ok {
			continue
		}
		pt := t.Projected(it.ps)
		k := pt.Key()
		if _, dup := it.seen[k]; dup {
			continue
		}
		it.seen[k] = struct{}{}
		out = append(out, pt)
	}
	it.emitted += len(out)
	if len(out) > 0 {
		return out, nil
	}
	it.settle()
	return nil, io.EOF
}

func (it *localIter) Close() error {
	it.settle()
	return nil
}

// Accounting returns a snapshot of the source's traffic counters.
func (s *Local) Accounting() Accounting {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acc
}

// ResetAccounting zeroes the traffic counters.
func (s *Local) ResetAccounting() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acc = Accounting{}
}
