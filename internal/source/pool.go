package source

import (
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// A long-lived mediator talks to the same handful of sources for every
// query it serves. Building a fresh http.Client (and so a fresh
// transport with its own connection pool) per query — or per source
// registration — is the classic downstream-connection-exhaustion failure
// mode: every pool dials its own TCP connections, none are reused, and
// the sources drown in handshakes. Pool is the fix: one tuned
// http.Transport shared by every source client, with per-host keep-alive
// pools doing the reuse, and one *Client per base URL so repeated
// registrations of the same source share state (name, response cap) too.

// PoolOptions tune the shared transport.
type PoolOptions struct {
	// MaxIdleConnsPerHost bounds the keep-alive pool per source host
	// (0 = 32; the stdlib default of 2 throttles any real concurrency).
	MaxIdleConnsPerHost int
	// MaxConnsPerHost bounds total concurrent connections per source host,
	// dials included; the excess blocks rather than stampeding the source
	// (0 = 128).
	MaxConnsPerHost int
	// IdleConnTimeout closes keep-alive connections idle this long
	// (0 = 90s).
	IdleConnTimeout time.Duration
	// ResponseHeaderTimeout bounds the wait for a source's response
	// headers after the request is written (0 = none; per-query contexts
	// remain the primary deadline mechanism).
	ResponseHeaderTimeout time.Duration
	// Obs exports csqp_source_pool_clients (distinct base URLs served).
	// Nil disables it.
	Obs *obs.Registry
}

// Pool hands out per-base-URL source clients that all share one pooled
// transport. Safe for concurrent use.
type Pool struct {
	hc      *http.Client
	mu      sync.Mutex
	clients map[string]*Client
	gauge   *obs.Gauge
}

// NewPool builds a pool with its shared transport.
func NewPool(o PoolOptions) *Pool {
	if o.MaxIdleConnsPerHost <= 0 {
		o.MaxIdleConnsPerHost = 32
	}
	if o.MaxConnsPerHost <= 0 {
		o.MaxConnsPerHost = 128
	}
	if o.IdleConnTimeout <= 0 {
		o.IdleConnTimeout = 90 * time.Second
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 0 // no global cap; the per-host bounds govern
	tr.MaxIdleConnsPerHost = o.MaxIdleConnsPerHost
	tr.MaxConnsPerHost = o.MaxConnsPerHost
	tr.IdleConnTimeout = o.IdleConnTimeout
	tr.ResponseHeaderTimeout = o.ResponseHeaderTimeout
	return &Pool{
		hc:      &http.Client{Transport: tr},
		clients: make(map[string]*Client),
		gauge:   o.Obs.Gauge("csqp_source_pool_clients"),
	}
}

// HTTPClient exposes the pooled client for callers that need to speak to
// a source outside the Client protocol.
func (p *Pool) HTTPClient() *http.Client { return p.hc }

// Client returns the pool's client for the source served at base,
// creating it on first use. Every client shares the pool's transport, so
// connections to the same host are reused across sources, tenants and
// queries.
func (p *Pool) Client(base string) *Client {
	base = strings.TrimRight(base, "/")
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.clients[base]; ok {
		return c
	}
	c := NewClient(base, p.hc)
	p.clients[base] = c
	p.gauge.Set(float64(len(p.clients)))
	return c
}

// Len reports the number of distinct base URLs served.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.clients)
}

// CloseIdle drops every idle keep-alive connection (drain/shutdown path).
func (p *Pool) CloseIdle() { p.hc.CloseIdleConnections() }
