package source

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/ssdl"
)

// boundedLocal builds an n-row source over (a, b) whose grammar accepts
// `a < $v` and optionally declares a result bound and a page size.
func boundedLocal(t *testing.T, n, limit, pageSize int) *Local {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("source nums\nattrs a, b\nkey a\n")
	if limit > 0 {
		fmt.Fprintf(&sb, "limit %d\n", limit)
	}
	if pageSize > 0 {
		fmt.Fprintf(&sb, "paged %d\n", pageSize)
	}
	sb.WriteString("s1 -> a < $v:int\nattributes :: s1 : {a, b}\n")
	r := relation.New(relation.MustSchema(
		relation.Column{Name: "a", Kind: condition.KindInt},
		relation.Column{Name: "b", Kind: condition.KindInt},
	))
	for i := 0; i < n; i++ {
		if err := r.AppendValues(condition.Int(int64(i)), condition.Int(int64(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	src, err := NewLocal("", r, ssdl.MustParse(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// instantPaged removes real time from PagedOptions: sleeps return
// immediately and jitter is identity.
func instantPaged(opts PagedOptions) PagedOptions {
	opts.Sleep = func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
	opts.Jitter = func(d time.Duration) time.Duration { return d }
	return opts
}

func wantTruncated(t *testing.T, err error, limit int) *plan.TruncatedError {
	t.Helper()
	var te *plan.TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *plan.TruncatedError", err)
	}
	if te.Limit != limit {
		t.Errorf("TruncatedError.Limit = %d, want %d", te.Limit, limit)
	}
	return te
}

func TestLocalLimitTruncates(t *testing.T) {
	src := boundedLocal(t, 5, 2, 0)
	cond := mustCond(t, `a < 10`)

	res, err := src.Query(context.Background(), cond, []string{"a", "b"})
	wantTruncated(t, err, 2)
	if res == nil || res.Len() != 2 {
		t.Fatalf("truncated answer has %v rows, want the top 2", res)
	}

	// The streaming path must deliver the same sound prefix and then
	// surface the truncation as the terminal error, not as io.EOF.
	it, err := src.QueryStream(context.Background(), cond, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	streamed, serr := drainStream(t, it)
	wantTruncated(t, serr, 2)
	if !streamed.Equal(res) {
		t.Errorf("streamed prefix differs from materialized prefix:\n%v\nvs\n%v", streamed, res)
	}
}

func TestLocalLimitCovers(t *testing.T) {
	// The matching rows fit exactly inside the bound, so the answer is
	// provably complete: no error, full result.
	src := boundedLocal(t, 5, 2, 0)
	res, err := src.Query(context.Background(), mustCond(t, `a < 2`), []string{"a"})
	if err != nil {
		t.Fatalf("answer within the bound must be complete, got %v", err)
	}
	if res.Len() != 2 {
		t.Errorf("len = %d, want 2", res.Len())
	}
}

func TestLocalQueryPage(t *testing.T) {
	src := boundedLocal(t, 5, 0, 2)
	cond := mustCond(t, `a < 10`)
	ctx := context.Background()

	var total int
	cursor := ""
	wantLens := []int{2, 2, 1}
	for i := 0; ; i++ {
		page, next, err := src.QueryPage(ctx, cond, []string{"a"}, cursor)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if i >= len(wantLens) || page.Len() != wantLens[i] {
			t.Fatalf("page %d has %d rows, want %v", i, page.Len(), wantLens)
		}
		total += page.Len()
		if next == "" {
			break
		}
		cursor = next
	}
	if total != 5 {
		t.Errorf("pages delivered %d rows, want 5", total)
	}
	// Each page is one round-trip in the books.
	if acc := src.Accounting(); acc.Queries != 3 {
		t.Errorf("accounting.Queries = %d, want 3 (one per page)", acc.Queries)
	}

	// A cursor the source never issued is a deterministic refusal, not a
	// silent empty page.
	for _, bad := range []string{"xyz", "-1", "99"} {
		var re *RefusalError
		if _, _, err := src.QueryPage(ctx, cond, []string{"a"}, bad); !errors.As(err, &re) {
			t.Errorf("cursor %q: err = %v, want *RefusalError", bad, err)
		}
	}
}

// truncQuerier answers every query with the same rows plus a truncation
// report, like a bounded source whose answer never fits.
type truncQuerier struct {
	countQuerier
}

func (q *truncQuerier) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	res, err := q.countQuerier.Query(ctx, cond, attrs)
	if err != nil {
		return nil, err
	}
	return res, &plan.TruncatedError{Source: "s", Limit: res.Len()}
}

// TestCachedNeverStoresTruncatedAnswer is the satellite regression: a
// truncated answer must pass through the cache — rows and error — but
// never be memoized under the NormKey, where a later equivalent request
// (possibly after the bound is lifted) would replay it as complete.
func TestCachedNeverStoresTruncatedAnswer(t *testing.T) {
	inner := &truncQuerier{countQuerier{rel: relOfLen(t, 2)}}
	c := NewCached("s", inner, CacheOptions{})
	cond := mustCond(t, `a = 1 and b = 2`)

	res, err := c.Query(context.Background(), cond, []string{"a"})
	wantTruncated(t, err, 2)
	if res == nil || res.Len() != 2 {
		t.Fatalf("truncated rows did not pass through the cache: %v", res)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("cache stored a truncated answer: %+v", st)
	}

	// The same query — and its commuted NormKey twin — must go upstream
	// again rather than hit a poisoned entry.
	if _, err := c.Query(context.Background(), mustCond(t, `b = 2 and a = 1`), []string{"a"}); !plan.IsTruncated(err) {
		t.Fatalf("second query err = %v, want truncation from upstream", err)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("upstream calls = %d, want 2 (no cache hit on a truncated answer)", got)
	}
	if st := c.Stats(); st.Hits != 0 || st.Entries != 0 {
		t.Errorf("cache stats after replay = %+v, want no hits, no entries", st)
	}
}

func TestResilientTruncationNoRetry(t *testing.T) {
	// A truncated answer with rows is a deterministic success: retrying
	// cannot buy more rows, so the wrapper must pass it through on the
	// first attempt and not count it against the breaker.
	inner := &truncQuerier{countQuerier{rel: relOfLen(t, 2)}}
	var ft fakeTime
	opts := ResilienceOptions{MaxRetries: 3, BreakerThreshold: 2}
	ft.apply(&opts)
	r := NewResilient("s", inner, opts)

	res, err := r.Query(context.Background(), mustCond(t, `a = 1`), []string{"a"})
	wantTruncated(t, err, 2)
	if res == nil || res.Len() != 2 {
		t.Fatalf("rows did not pass through: %v", res)
	}
	if st := r.Stats(); st.Attempts != 1 || st.Retries != 0 || st.Failures != 0 {
		t.Errorf("stats = %+v, want one clean attempt", st)
	}
}

// pageRecorder wraps a CursorQuerier, counting fetches per cursor and
// optionally failing one chosen cursor a budgeted number of times with a
// retryable transport error (-1 = forever).
type pageRecorder struct {
	inner      CursorQuerier
	mu         sync.Mutex
	calls      map[string]int
	failCursor string
	failLeft   int
}

func (r *pageRecorder) QueryPage(ctx context.Context, cond condition.Node, attrs []string, cursor string) (*relation.Relation, string, error) {
	r.mu.Lock()
	if r.calls == nil {
		r.calls = make(map[string]int)
	}
	r.calls[cursor]++
	fail := cursor == r.failCursor && r.failLeft != 0
	if fail && r.failLeft > 0 {
		r.failLeft--
	}
	r.mu.Unlock()
	if fail {
		return nil, "", &TransportError{Source: "nums", Err: ErrInjected}
	}
	return r.inner.QueryPage(ctx, cond, attrs, cursor)
}

func (r *pageRecorder) callsFor(cursor string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls[cursor]
}

func TestPagedAccumulatesPages(t *testing.T) {
	reg := obs.NewRegistry()
	src := boundedLocal(t, 5, 0, 2)
	p := NewPaged("nums", src, instantPaged(PagedOptions{Obs: reg}))

	res, err := p.Query(context.Background(), mustCond(t, `a < 10`), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Errorf("accumulated %d rows, want all 5", res.Len())
	}
	if got := reg.Counter("csqp_source_pages_total", "source", "nums").Value(); got != 3 {
		t.Errorf("csqp_source_pages_total = %d, want 3", got)
	}
	if got := reg.Counter("csqp_source_truncated_total", "source", "nums").Value(); got != 0 {
		t.Errorf("csqp_source_truncated_total = %d, want 0", got)
	}
}

func TestPagedRetriesPageNotScan(t *testing.T) {
	// The second page fails once. The wrapper must re-fetch THAT page —
	// not restart from the first — and still deliver the full answer.
	reg := obs.NewRegistry()
	rec := &pageRecorder{inner: boundedLocal(t, 5, 0, 2), failCursor: "2", failLeft: 1}
	p := NewPaged("nums", rec, instantPaged(PagedOptions{MaxRetries: 2, Obs: reg}))

	res, err := p.Query(context.Background(), mustCond(t, `a < 10`), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Errorf("got %d rows, want 5", res.Len())
	}
	if got := rec.callsFor(""); got != 1 {
		t.Errorf("first page fetched %d times, want 1 (the scan must not restart)", got)
	}
	if got := rec.callsFor("2"); got != 2 {
		t.Errorf("failing page fetched %d times, want 2 (fail + retry)", got)
	}
	if got := reg.Counter("csqp_source_page_retries_total", "source", "nums").Value(); got != 1 {
		t.Errorf("csqp_source_page_retries_total = %d, want 1", got)
	}
}

func TestPagedCursorLossDegrades(t *testing.T) {
	// The cursor dies for good mid-scan: the rows already fetched come
	// back as a sound partial tagged truncated — never a short answer
	// labeled complete, never nothing.
	reg := obs.NewRegistry()
	rec := &pageRecorder{inner: boundedLocal(t, 5, 0, 2), failCursor: "2", failLeft: -1}
	p := NewPaged("nums", rec, instantPaged(PagedOptions{MaxRetries: 1, Obs: reg}))

	res, err := p.Query(context.Background(), mustCond(t, `a < 10`), []string{"a"})
	te := wantTruncated(t, err, 2)
	if !errors.Is(te.Cause, ErrInjected) {
		t.Errorf("TruncatedError.Cause = %v, want the page fault", te.Cause)
	}
	if res == nil || res.Len() != 2 {
		t.Fatalf("kept %v, want the 2 rows fetched before the cursor died", res)
	}
	if got := reg.Counter("csqp_source_truncated_total", "source", "nums").Value(); got != 1 {
		t.Errorf("csqp_source_truncated_total = %d, want 1", got)
	}

	// A first page that never arrives leaves nothing sound to keep: the
	// scan fails plainly, with no relation and no truncation tag.
	rec2 := &pageRecorder{inner: boundedLocal(t, 5, 0, 2), failCursor: "", failLeft: -1}
	p2 := NewPaged("nums", rec2, instantPaged(PagedOptions{MaxRetries: 1}))
	res2, err2 := p2.Query(context.Background(), mustCond(t, `a < 10`), []string{"a"})
	if res2 != nil || !errors.Is(err2, ErrInjected) {
		t.Errorf("first-page failure returned (%v, %v), want (nil, the fault)", res2, err2)
	}
}

func TestPagedStreamChunkPerPage(t *testing.T) {
	// The streaming path feeds one chunk per page, so downstream
	// operators consume page 1 while later pages are still unfetched.
	src := boundedLocal(t, 5, 0, 2)
	p := NewPaged("nums", src, instantPaged(PagedOptions{}))
	it, err := p.QueryStream(context.Background(), mustCond(t, `a < 10`), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	var lens []int
	for {
		chunk, nerr := it.Next(context.Background())
		if len(chunk) > 0 {
			lens = append(lens, len(chunk))
		}
		if nerr != nil {
			if !errors.Is(nerr, io.EOF) {
				t.Fatal(nerr)
			}
			break
		}
	}
	want := []int{2, 2, 1}
	if len(lens) != len(want) {
		t.Fatalf("chunk lengths %v, want %v", lens, want)
	}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("chunk lengths %v, want %v", lens, want)
		}
	}
}

func TestPagedStreamCursorLoss(t *testing.T) {
	// Mid-stream cursor death after rows were emitted must end the
	// stream with a truncation error, not io.EOF.
	rec := &pageRecorder{inner: boundedLocal(t, 5, 0, 2), failCursor: "2", failLeft: -1}
	p := NewPaged("nums", rec, instantPaged(PagedOptions{MaxRetries: 1}))
	it, err := p.QueryStream(context.Background(), mustCond(t, `a < 10`), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	res, serr := drainStream(t, it)
	wantTruncated(t, serr, 2)
	if res.Len() != 2 {
		t.Errorf("streamed %d rows before the fault, want 2", res.Len())
	}
}

func TestHTTPTruncationHeader(t *testing.T) {
	// A truncated answer must survive the wire: the handler annotates a
	// 200 with X-Csqp-Truncated and the client reconstructs the
	// *plan.TruncatedError alongside the rows.
	src := boundedLocal(t, 5, 2, 0)
	server := httptest.NewServer(NewHandler(src))
	defer server.Close()
	client := NewClient(server.URL, nil)

	res, err := client.Query(context.Background(), mustCond(t, `a < 10`), []string{"a", "b"})
	wantTruncated(t, err, 2)
	if res == nil || res.Len() != 2 {
		t.Fatalf("rows lost on the wire: %v", res)
	}

	// An answer inside the bound crosses the wire clean.
	if _, err := client.Query(context.Background(), mustCond(t, `a < 2`), []string{"a"}); err != nil {
		t.Errorf("complete answer came back with %v", err)
	}
}

func TestHTTPQueryPageCursorLoop(t *testing.T) {
	src := boundedLocal(t, 5, 0, 2)
	server := httptest.NewServer(NewHandler(src))
	defer server.Close()
	client := NewClient(server.URL, nil)
	ctx := context.Background()
	cond := mustCond(t, `a < 10`)

	// Walk the cursor loop by hand over real HTTP.
	var total, pages int
	cursor := ""
	for {
		page, next, err := client.QueryPage(ctx, cond, []string{"a"}, cursor)
		if err != nil {
			t.Fatalf("page %d: %v", pages, err)
		}
		total += page.Len()
		pages++
		if next == "" {
			break
		}
		cursor = next
	}
	if total != 5 || pages != 3 {
		t.Errorf("cursor walk fetched %d rows over %d pages, want 5 over 3", total, pages)
	}

	// And let Paged drive the same client: the full pipeline a mediator
	// uses for a remote paginated source.
	p := NewPaged("nums", client, instantPaged(PagedOptions{}))
	res, err := p.Query(ctx, cond, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Errorf("paged client accumulated %d rows, want 5", res.Len())
	}
}
