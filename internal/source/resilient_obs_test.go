package source

import (
	"context"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/relation"
)

// breakerGauge reads the csqp_breaker_state gauge for a source out of the
// registry (-1 when absent).
func breakerGauge(reg *obs.Registry, src string) float64 {
	for _, g := range reg.Snapshot().Gauges {
		if g.Name == "csqp_breaker_state" && len(g.Labels) == 1 && g.Labels[0].Val == src {
			return g.Value
		}
	}
	return -1
}

func TestResilientStatsConcurrentWithQueries(t *testing.T) {
	// Stats must be a safe snapshot while queries run — the counters are
	// atomics, so -race across Query/Stats is the real assertion here.
	opts := ResilienceOptions{MaxRetries: 1}
	opts.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	opts.Jitter = func(d time.Duration) time.Duration { return d }
	f := NewFlaky(&okQuerier{rel: tinyRelation(t)}).FailRate(0.3, 42)
	r := NewResilient("s", f, opts)

	const workers, rounds = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_, _ = r.Query(context.Background(), anyCond, []string{"a"})
				_ = r.Stats()
			}
		}()
	}
	wg.Wait()
	st := r.Stats()
	if st.Attempts < workers*rounds {
		t.Errorf("attempts = %d, want >= %d", st.Attempts, workers*rounds)
	}
	if st.Attempts != workers*rounds+st.Retries {
		t.Errorf("attempts (%d) != queries (%d) + retries (%d)", st.Attempts, workers*rounds, st.Retries)
	}
}

func TestBreakerTransitionsObservable(t *testing.T) {
	ft := &fakeTime{now: time.Unix(1000, 0)}
	opts := ResilienceOptions{BreakerThreshold: 2, BreakerCooldown: time.Second}
	ft.apply(&opts)
	reg := obs.NewRegistry()
	opts.Obs = reg
	var buf syncBuffer
	opts.Log = slog.New(slog.NewTextHandler(&buf, nil))
	f := NewFlaky(&okQuerier{rel: tinyRelation(t)}).FailFirst(2)
	r := NewResilient("s", f, opts)

	// Closed is the initial state; nothing has been emitted yet.
	if strings.Contains(buf.String(), "breaker state change") {
		t.Fatalf("premature transition event: %s", buf.String())
	}

	// Two consecutive failures: closed -> open, gauge goes to 2.
	for i := 0; i < 2; i++ {
		if _, err := r.Query(context.Background(), anyCond, []string{"a"}); err == nil {
			t.Fatalf("call %d: want failure", i)
		}
	}
	if !strings.Contains(buf.String(), "from=closed to=open") {
		t.Fatalf("missing closed->open event:\n%s", buf.String())
	}
	if got := breakerGauge(reg, "s"); got != 2 {
		t.Fatalf("breaker gauge = %g after trip, want 2 (open)", got)
	}

	// Fast-fail during cooldown: no transition, counter ticks.
	if _, err := r.Query(context.Background(), anyCond, []string{"a"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}

	// Cooldown over: the trial goes open -> half-open, succeeds, and the
	// circuit closes. Both transitions must be visible.
	ft.advance(1100 * time.Millisecond)
	if _, err := r.Query(context.Background(), anyCond, []string{"a"}); err != nil {
		t.Fatalf("half-open trial: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "from=open to=half-open") {
		t.Fatalf("missing open->half-open event:\n%s", out)
	}
	if !strings.Contains(out, "from=half-open to=closed") {
		t.Fatalf("missing half-open->closed event:\n%s", out)
	}
	if got := breakerGauge(reg, "s"); got != 0 {
		t.Fatalf("breaker gauge = %g after recovery, want 0 (closed)", got)
	}

	// The registry counters mirror ResilienceStats.
	st := r.Stats()
	snap := reg.Snapshot()
	want := map[string]int64{
		"csqp_source_attempts_total":  int64(st.Attempts),
		"csqp_source_failures_total":  int64(st.Failures),
		"csqp_source_fastfails_total": int64(st.FastFails),
		"csqp_source_retries_total":   int64(st.Retries),
		"csqp_source_refusals_total":  int64(st.Refusals),
	}
	for _, c := range snap.Counters {
		if w, ok := want[c.Name]; ok && int64(c.Value) != w {
			t.Errorf("%s = %g, want %d", c.Name, c.Value, w)
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == "csqp_source_query_seconds" && h.Count != int64(st.Attempts) {
			t.Errorf("latency histogram count = %d, want %d attempts", h.Count, st.Attempts)
		}
	}
}

func TestResilientAttemptSpans(t *testing.T) {
	opts := ResilienceOptions{MaxRetries: 2}
	opts.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	opts.Jitter = func(d time.Duration) time.Duration { return d }
	f := NewFlaky(&okQuerier{rel: tinyRelation(t)}).FailFirst(1)
	r := NewResilient("s", f, opts)

	tr := obs.NewTracer(0)
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := r.Query(ctx, anyCond, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	var attempts []*obs.Span
	for _, s := range tr.Spans() {
		if s.Name == "source.attempt" {
			attempts = append(attempts, s)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("got %d attempt spans, want 2 (failure + retry):\n%s", len(attempts), tr.Tree())
	}
	if attempts[0].Err == "" {
		t.Error("first attempt span should carry the transport error")
	}
	if attempts[1].Err != "" {
		t.Errorf("second attempt span unexpectedly errored: %s", attempts[1].Err)
	}
}

// spanningQuerier opens its own span, like the HTTP client does per
// round-trip.
type spanningQuerier struct{ rel *relation.Relation }

func (q *spanningQuerier) Query(ctx context.Context, _ condition.Node, _ []string) (*relation.Relation, error) {
	_, sp := obs.Start(ctx, "inner.query")
	sp.End()
	return q.rel, nil
}

// TestAttemptSpanParentsInnerSpans pins the span-context plumbing: the
// attempt runs under the "source.attempt" span's context, so spans the
// inner querier opens (HTTP round-trips) nest beneath the attempt rather
// than dangling off its parent.
func TestAttemptSpanParentsInnerSpans(t *testing.T) {
	r := NewResilient("s", &spanningQuerier{rel: tinyRelation(t)}, ResilienceOptions{})
	tr := obs.NewTracer(0)
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := r.Query(ctx, anyCond, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	var attempt, inner *obs.Span
	for _, s := range tr.Spans() {
		switch s.Name {
		case "source.attempt":
			attempt = s
		case "inner.query":
			inner = s
		}
	}
	if attempt == nil || inner == nil {
		t.Fatalf("missing spans:\n%s", tr.Tree())
	}
	if inner.Parent != attempt.ID {
		t.Errorf("inner.query parent = %d, want the source.attempt span %d:\n%s",
			inner.Parent, attempt.ID, tr.Tree())
	}
}
