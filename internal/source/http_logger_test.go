package source

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// captureLog records formatted messages.
type captureLog struct {
	mu   sync.Mutex
	msgs []string
}

func (l *captureLog) Printf(format string, v ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.msgs = append(l.msgs, fmt.Sprintf(format, v...))
}

func (l *captureLog) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.msgs...)
}

// brokenWriter fails every write — a client that hung up mid-response.
type brokenWriter struct{ header http.Header }

func (w *brokenWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *brokenWriter) WriteHeader(int)           {}
func (w *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("client went away") }

func TestHandlerLogsResponseWriteFailures(t *testing.T) {
	h := NewHandler(carsSource(t))
	lg := &captureLog{}
	h.SetLogger(lg)

	cases := []struct {
		path string
		req  *http.Request
	}{
		{"/describe", httptest.NewRequest("GET", "/describe", nil)},
		{"/stats", httptest.NewRequest("GET", "/stats", nil)},
		{"/query", func() *http.Request {
			r := httptest.NewRequest("POST", "/query",
				strings.NewReader(`{"cond":"make = \"BMW\" ^ price < 40000","attrs":["model"]}`))
			r.Header.Set("Content-Type", "application/json")
			return r
		}()},
	}
	for _, c := range cases {
		before := len(lg.all())
		h.ServeHTTP(&brokenWriter{}, c.req)
		msgs := lg.all()
		if len(msgs) != before+1 {
			t.Errorf("%s: write failure not logged (msgs %v)", c.path, msgs)
			continue
		}
		if got := msgs[len(msgs)-1]; !strings.Contains(got, c.path) || !strings.Contains(got, "client went away") {
			t.Errorf("%s: log message %q missing path or cause", c.path, got)
		}
	}
}

func TestHandlerSilentWithoutLogger(t *testing.T) {
	h := NewHandler(carsSource(t))
	// Must not panic with the default nil logger.
	h.ServeHTTP(&brokenWriter{}, httptest.NewRequest("GET", "/describe", nil))
}
