package source

import (
	"bytes"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// syncBuffer is a goroutine-safe bytes.Buffer for slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// brokenWriter fails every write — a client that hung up mid-response.
type brokenWriter struct{ header http.Header }

func (w *brokenWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *brokenWriter) WriteHeader(int)           {}
func (w *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("client went away") }

func TestHandlerLogsResponseWriteFailures(t *testing.T) {
	h := NewHandler(carsSource(t))
	var buf syncBuffer
	h.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))

	cases := []struct {
		path string
		req  *http.Request
	}{
		{"/describe", httptest.NewRequest("GET", "/describe", nil)},
		{"/stats", httptest.NewRequest("GET", "/stats", nil)},
		{"/query", func() *http.Request {
			r := httptest.NewRequest("POST", "/query",
				strings.NewReader(`{"cond":"make = \"BMW\" ^ price < 40000","attrs":["model"]}`))
			r.Header.Set("Content-Type", "application/json")
			return r
		}()},
	}
	for _, c := range cases {
		before := strings.Count(buf.String(), "\n")
		h.ServeHTTP(&brokenWriter{}, c.req)
		out := buf.String()
		if got := strings.Count(out, "\n"); got != before+1 {
			t.Errorf("%s: write failure not logged (output %q)", c.path, out)
			continue
		}
		last := strings.TrimSpace(out[strings.LastIndex(strings.TrimSpace(out), "\n")+1:])
		if !strings.Contains(last, "endpoint="+c.path) || !strings.Contains(last, "client went away") {
			t.Errorf("%s: log record %q missing endpoint or cause", c.path, last)
		}
		if !strings.Contains(last, "swallowed response-write error") {
			t.Errorf("%s: log record %q missing event message", c.path, last)
		}
	}
}

func TestHandlerSilentWithoutLogger(t *testing.T) {
	h := NewHandler(carsSource(t))
	// Must not panic with the default (discarding) logger, nor after an
	// explicit nil SetLogger.
	h.ServeHTTP(&brokenWriter{}, httptest.NewRequest("GET", "/describe", nil))
	h.SetLogger(nil)
	h.ServeHTTP(&brokenWriter{}, httptest.NewRequest("GET", "/describe", nil))
}
