package source

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/condition"
	"repro/internal/relation"
	"repro/internal/ssdl"
)

const carsSSDL = `
source cars
attrs make, model, color, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string ^ color = $c:string
attributes :: s1 : {make, model, color, price}
attributes :: s2 : {make, model}
`

func carsSource(t *testing.T) *Local {
	t.Helper()
	s := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "color", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	rows := []struct {
		make, model, color string
		price              int64
	}{
		{"BMW", "328i", "red", 35000},
		{"BMW", "M5", "black", 70000},
		{"Toyota", "Camry", "red", 19000},
	}
	for _, row := range rows {
		if err := r.AppendValues(
			condition.String(row.make), condition.String(row.model),
			condition.String(row.color), condition.Int(row.price)); err != nil {
			t.Fatal(err)
		}
	}
	src, err := NewLocal("", r, ssdl.MustParse(carsSSDL))
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestLocalNameFromGrammar(t *testing.T) {
	src := carsSource(t)
	if src.Name() != "cars" {
		t.Errorf("Name = %q", src.Name())
	}
}

func TestLocalAnswersSupportedQuery(t *testing.T) {
	src := carsSource(t)
	res, err := src.Query(context.Background(), condition.MustParse(`make = "BMW" ^ price < 40000`), []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("len = %d, want 1", res.Len())
	}
	acc := src.Accounting()
	if acc.Queries != 1 || acc.Tuples != 1 || acc.Rejected != 0 {
		t.Errorf("accounting = %+v", acc)
	}
}

func TestLocalRejectsUnsupportedQuery(t *testing.T) {
	src := carsSource(t)
	// Unsupported condition shape.
	if _, err := src.Query(context.Background(), condition.MustParse(`color = "red"`), []string{"model"}); err == nil {
		t.Error("unsupported condition should be refused")
	}
	// Supported condition, but attrs exceed the export set of s2.
	if _, err := src.Query(context.Background(), condition.MustParse(`make = "BMW" ^ color = "red"`), []string{"price"}); err == nil {
		t.Error("non-exported attribute should be refused")
	}
	if acc := src.Accounting(); acc.Rejected != 2 || acc.Queries != 0 {
		t.Errorf("accounting = %+v", acc)
	}
}

func TestLocalResetAccounting(t *testing.T) {
	src := carsSource(t)
	if _, err := src.Query(context.Background(), condition.MustParse(`make = "BMW" ^ price < 99999`), []string{"model"}); err != nil {
		t.Fatal(err)
	}
	src.ResetAccounting()
	if acc := src.Accounting(); acc != (Accounting{}) {
		t.Errorf("accounting after reset = %+v", acc)
	}
}

func TestNewLocalValidatesSchema(t *testing.T) {
	r := relation.New(relation.MustSchema(relation.Column{Name: "x", Kind: condition.KindInt}))
	g := ssdl.MustParse(`
source s
attrs y
s1 -> y = $v
attributes :: s1 : {y}
`)
	if _, err := NewLocal("", r, g); err == nil {
		t.Error("SSDL attr missing from relation should fail")
	}
	gNoName := ssdl.MustParse(`
attrs x
s1 -> x = $v
attributes :: s1 : {x}
`)
	if _, err := NewLocal("", r, gNoName); err == nil {
		t.Error("missing source name should fail")
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	src := carsSource(t)
	server := httptest.NewServer(NewHandler(src))
	defer server.Close()
	client := NewClient(server.URL, nil)

	// Describe round-trips the grammar.
	g, err := client.Describe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g.Source != "cars" || g.Key != "model" {
		t.Errorf("described grammar: source=%q key=%q", g.Source, g.Key)
	}

	// Supported query over the wire.
	res, err := client.Query(context.Background(), condition.MustParse(`make = "BMW" ^ price < 40000`), []string{"model", "price"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("len = %d, want 1", res.Len())
	}
	v, _ := res.Tuples()[0].Lookup("price")
	if v.I != 35000 || v.Kind != condition.KindInt {
		t.Errorf("price round trip = %v", v)
	}

	// Unsupported query is refused with a useful error.
	if _, err := client.Query(context.Background(), condition.MustParse(`color = "red"`), []string{"model"}); err == nil {
		t.Error("unsupported query should be refused over HTTP")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	src := carsSource(t)
	server := httptest.NewServer(NewHandler(src))
	defer server.Close()

	resp, err := server.Client().Post(server.URL+"/query", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("empty body status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPStatsEndpoint(t *testing.T) {
	src := carsSource(t)
	server := httptest.NewServer(NewHandler(src))
	defer server.Close()
	client := NewClient(server.URL, nil)

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Tuples != 3 {
		t.Errorf("Tuples = %d, want 3", st.Tuples)
	}
	price, ok := st.Columns["price"]
	if !ok || !price.Numeric || price.Hist == nil {
		t.Errorf("price stats incomplete: %+v", price)
	}
	// Stats are cached server-side: a second fetch returns the same data.
	st2, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st2.Tuples != st.Tuples {
		t.Error("second stats fetch differs")
	}
	// Accessors used by experiments.
	if src.Checker() == nil || src.Relation().Len() != 3 {
		t.Error("accessors broken")
	}
}
