package source

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/condition"
	"repro/internal/obs"
)

func TestPoolReusesClientsAndConnections(t *testing.T) {
	src := carsSource(t)
	var dials atomic.Int64
	ts := httptest.NewUnstartedServer(NewHandler(src))
	ts.Config.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateNew {
			dials.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	reg := obs.NewRegistry()
	p := NewPool(PoolOptions{Obs: reg})
	c1 := p.Client(ts.URL)
	c2 := p.Client(ts.URL + "/") // trailing slash normalizes to the same client
	if c1 != c2 {
		t.Error("same base URL must share one client")
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d, want 1", p.Len())
	}

	// Sequential queries over one client must reuse the keep-alive
	// connection rather than dialing per query.
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	for i := 0; i < 10; i++ {
		if _, err := c1.Query(context.Background(), cond, []string{"model"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := dials.Load(); got > 2 {
		t.Errorf("10 sequential queries dialed %d connections, want <= 2", got)
	}
	if got := reg.Gauge("csqp_source_pool_clients").Value(); got != 1 {
		t.Errorf("pool gauge = %v, want 1", got)
	}
	p.CloseIdle()
}

func TestPoolConcurrentClientLookup(t *testing.T) {
	p := NewPool(PoolOptions{})
	var wg sync.WaitGroup
	clients := make([]*Client, 16)
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clients[i] = p.Client("http://shared.example:1234")
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(clients); i++ {
		if clients[i] != clients[0] {
			t.Fatal("concurrent lookups must converge on one client")
		}
	}
}
