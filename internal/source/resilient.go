package source

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Resilient wraps any plan.Querier with the fault handling that querying
// real Internet sources demands: a per-attempt timeout, bounded retries
// with exponential backoff and jitter, and a per-source circuit breaker
// that fast-fails while a source is down instead of burning the plan's
// deadline on it. Only transient transport failures are retried —
// capability refusals (the paper's 422) are deterministic and returned
// immediately.
//
// Telemetry: every attempt opens an "source.attempt" span on the
// context's tracer, per-source counters and a latency histogram go to
// ResilienceOptions.Obs, and breaker state transitions are emitted on
// ResilienceOptions.Log.
type Resilient struct {
	name  string
	inner plan.Querier
	opts  ResilienceOptions
	log   *slog.Logger

	mu            sync.Mutex
	consecFails   int
	openUntil     time.Time
	state         breakerState
	trialInFlight bool

	stats resCounters
	met   resMetrics
}

// breakerState is the circuit's observable position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	default:
		return fmt.Sprintf("breakerState(%d)", int(s))
	}
}

// resCounters are the querier's own atomic counters; Stats snapshots
// them. Atomics keep snapshots consistent with concurrent updates
// without taking the breaker's mutex on every attempt bookkeeping step.
type resCounters struct {
	attempts, retries, failures, refusals, fastFails atomic.Int64
}

// resMetrics are the registry instruments (no-ops when Obs is nil).
// retry duplicates retries under the conventional singular name
// csqp_source_retry_total; the legacy plural stays for dashboards that
// already scrape it.
type resMetrics struct {
	attempts, retries, retry, failures, refusals, fastFails *obs.Counter
	latency                                                 *obs.Histogram
	breaker                                                 *obs.Gauge
}

// ResilienceOptions tune a Resilient querier. The zero value retries
// nothing and never trips the breaker — set at least Timeout or
// MaxRetries for it to do anything.
type ResilienceOptions struct {
	// Timeout bounds each query attempt (0 = no per-attempt timeout).
	// An attempt that exceeds it fails with context.DeadlineExceeded and
	// is retried like any transport error.
	Timeout time.Duration
	// MaxRetries is the number of re-attempts after the first failure
	// (0 = fail on the first error).
	MaxRetries int
	// BaseBackoff is the delay before the first retry; it doubles each
	// retry (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (default 2s).
	MaxBackoff time.Duration
	// BreakerThreshold is the number of CONSECUTIVE failures that opens
	// the circuit (0 = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit fast-fails before
	// letting a trial query through (default 5s).
	BreakerCooldown time.Duration

	// Obs receives per-source counters (attempts, retries, failures,
	// refusals, fast-fails), a query-latency histogram and a breaker
	// state gauge (0 closed, 1 half-open, 2 open). Nil disables them.
	Obs *obs.Registry
	// Log receives structured events for retries, swallowed errors and
	// breaker transitions. Nil silences them.
	Log *slog.Logger

	// Sleep waits between retries; tests inject an instant sleep. Nil
	// uses a real context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Now is the breaker's clock; tests inject a fake. Nil uses
	// time.Now.
	Now func() time.Time
	// Jitter perturbs a backoff delay; tests inject identity. Nil draws
	// uniformly from [d/2, d).
	Jitter func(d time.Duration) time.Duration
}

// ResilienceStats counts what a Resilient querier has done.
type ResilienceStats struct {
	// Attempts is the number of inner queries issued.
	Attempts int
	// Retries is the number of re-attempts after failures.
	Retries int
	// Failures is the number of failed attempts (refusals excluded).
	Failures int
	// Refusals is the number of capability refusals passed through.
	Refusals int
	// FastFails is the number of queries rejected by the open breaker
	// without reaching the source.
	FastFails int
}

// NewResilient wraps q. The name labels breaker errors, stats, metrics
// and log events; use the source's registered name.
func NewResilient(name string, q plan.Querier, opts ResilienceOptions) *Resilient {
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Jitter == nil {
		opts.Jitter = halfJitter
	}
	r := &Resilient{name: name, inner: q, opts: opts, log: obs.LoggerOr(opts.Log)}
	reg := opts.Obs // nil-safe: nil registry yields no-op instruments
	r.met = resMetrics{
		attempts:  reg.Counter("csqp_source_attempts_total", "source", name),
		retries:   reg.Counter("csqp_source_retries_total", "source", name),
		retry:     reg.Counter("csqp_source_retry_total", "source", name),
		failures:  reg.Counter("csqp_source_failures_total", "source", name),
		refusals:  reg.Counter("csqp_source_refusals_total", "source", name),
		fastFails: reg.Counter("csqp_source_fastfails_total", "source", name),
		latency:   reg.Histogram("csqp_source_query_seconds", nil, "source", name),
		breaker:   reg.Gauge("csqp_breaker_state", "source", name),
	}
	return r
}

// Name returns the wrapped source's name.
func (r *Resilient) Name() string { return r.name }

// Stats returns a snapshot of the querier's counters. The counters are
// atomic, so a snapshot taken while queries are in flight is safe and
// internally consistent per counter.
func (r *Resilient) Stats() ResilienceStats {
	return ResilienceStats{
		Attempts:  int(r.stats.attempts.Load()),
		Retries:   int(r.stats.retries.Load()),
		Failures:  int(r.stats.failures.Load()),
		Refusals:  int(r.stats.refusals.Load()),
		FastFails: int(r.stats.fastFails.Load()),
	}
}

// Query implements plan.Querier with timeout, retry and breaker applied
// around the inner querier.
func (r *Resilient) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	backoff := r.opts.BaseBackoff
	var lastErr error
	oprof := plan.OpStatsFrom(ctx) // nil-safe: notes the executing operator's profile
	for attempt := 0; ; attempt++ {
		trial, err := r.breakerAllow()
		if err != nil {
			oprof.Note("breaker-fastfail")
			return nil, err
		}
		r.stats.attempts.Add(1)
		r.met.attempts.Inc()
		if attempt > 0 {
			r.stats.retries.Add(1)
			r.met.retries.Inc()
			r.met.retry.Inc()
			oprof.Note("retried")
		}
		state := r.curState()
		if state != breakerClosed {
			oprof.Note("breaker-" + state.String())
		}

		// The attempt runs under the span's context so the inner
		// querier's own spans (HTTP round-trips) nest beneath it.
		actx, sp := obs.Start(ctx, "source.attempt")
		begin := r.opts.Now()
		res, err := r.attempt(actx, cond, attrs)
		r.met.latency.Observe(r.opts.Now().Sub(begin).Seconds())
		if sp != nil {
			sp.SetAttr("source", r.name)
			sp.SetInt("attempt", int64(attempt+1))
			sp.SetAttr("breaker", state.String())
			sp.EndErr(err)
		}
		if err == nil {
			r.recordSuccess()
			return res, nil
		}
		if res != nil && plan.IsTruncated(err) {
			// A truncated answer is a HEALTHY response from a result-
			// bounded source: the source answered with its top-k rows and
			// honestly reported overflow. Retrying cannot buy more rows —
			// the bound is deterministic — and counting it as a failure
			// would poison the breaker. Pass rows and error through.
			r.recordSuccess()
			return res, err
		}
		var refusal *RefusalError
		if errors.As(err, &refusal) {
			// Deterministic "no": not a health signal, never retried. A
			// half-open trial that gets a refusal still concludes: the
			// source answered, so release the trial slot for the next
			// caller.
			if trial {
				r.endTrial()
			}
			r.stats.refusals.Add(1)
			r.met.refusals.Inc()
			oprof.Note("refused")
			return nil, err
		}
		r.recordFailure(trial)
		lastErr = err
		// The caller's own context ending always stops the loop; a
		// per-attempt deadline does not.
		if ctx.Err() != nil {
			return nil, lastErr
		}
		if attempt >= r.opts.MaxRetries || !Retryable(err) {
			return nil, lastErr
		}
		r.log.Debug("retrying source query",
			"source", r.name, "attempt", attempt+1, "err", err)
		if err := r.opts.Sleep(ctx, r.opts.Jitter(backoff)); err != nil {
			return nil, lastErr
		}
		backoff *= 2
		if backoff > r.opts.MaxBackoff {
			backoff = r.opts.MaxBackoff
		}
	}
}

// attempt runs one inner query under the per-attempt timeout.
func (r *Resilient) attempt(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	if r.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opts.Timeout)
		defer cancel()
	}
	res, err := r.inner.Query(ctx, cond, attrs)
	if err != nil && ctx.Err() != nil {
		// Normalize whatever the inner querier surfaced into the
		// context's verdict, so retry classification sees a deadline
		// (retryable) or a cancellation (not).
		return nil, ctx.Err()
	}
	return res, err
}

// setState records a breaker transition (callers hold mu). Transitions
// are emitted on the event stream and mirrored into the state gauge.
func (r *Resilient) setState(to breakerState) {
	if r.state == to {
		return
	}
	from := r.state
	r.state = to
	r.met.breaker.Set(float64(to))
	r.log.Warn("breaker state change",
		"source", r.name, "from", from.String(), "to", to.String())
}

// breakerAllow fast-fails while the circuit is open. After the cooldown
// it admits EXACTLY ONE caller as the half-open trial (trial=true) and
// keeps fast-failing everyone else until that trial concludes — letting
// every cooled-down caller through at once would stampede a source that
// just signalled it is struggling. The trial's outcome re-opens or closes
// the circuit via recordFailure/recordSuccess, which also release the
// trial slot.
func (r *Resilient) breakerAllow() (trial bool, err error) {
	if r.opts.BreakerThreshold <= 0 {
		return false, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.consecFails >= r.opts.BreakerThreshold {
		if r.opts.Now().Before(r.openUntil) {
			r.stats.fastFails.Add(1)
			r.met.fastFails.Inc()
			return false, fmt.Errorf("source %s: %w (retry after %s)", r.name, ErrCircuitOpen, r.openUntil.Sub(r.opts.Now()).Round(time.Millisecond))
		}
		if r.trialInFlight {
			r.stats.fastFails.Add(1)
			r.met.fastFails.Inc()
			return false, fmt.Errorf("source %s: %w (half-open trial in flight)", r.name, ErrCircuitOpen)
		}
		// Cooldown over and no trial running: this caller is the trial.
		r.trialInFlight = true
		r.setState(breakerHalfOpen)
		return true, nil
	}
	return false, nil
}

// curState reads the breaker's current position for telemetry.
func (r *Resilient) curState() breakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// endTrial releases the half-open trial slot without recording a breaker
// verdict (used when the trial ends in a refusal: the source answered,
// but a capability "no" is neither a success nor a failure).
func (r *Resilient) endTrial() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trialInFlight = false
}

func (r *Resilient) recordSuccess() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails = 0
	r.openUntil = time.Time{}
	r.trialInFlight = false
	r.setState(breakerClosed)
}

func (r *Resilient) recordFailure(trial bool) {
	r.stats.failures.Add(1)
	r.met.failures.Inc()
	r.mu.Lock()
	defer r.mu.Unlock()
	if trial {
		r.trialInFlight = false
	}
	r.consecFails++
	if r.opts.BreakerThreshold > 0 && r.consecFails >= r.opts.BreakerThreshold {
		r.openUntil = r.opts.Now().Add(r.opts.BreakerCooldown)
		r.setState(breakerOpen)
	}
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// halfJitter draws uniformly from [d/2, d) so concurrent retries spread
// out instead of stampeding the recovering source in lockstep.
func halfJitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(half)
}
