package source

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/condition"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Resilient wraps any plan.Querier with the fault handling that querying
// real Internet sources demands: a per-attempt timeout, bounded retries
// with exponential backoff and jitter, and a per-source circuit breaker
// that fast-fails while a source is down instead of burning the plan's
// deadline on it. Only transient transport failures are retried —
// capability refusals (the paper's 422) are deterministic and returned
// immediately.
type Resilient struct {
	name  string
	inner plan.Querier
	opts  ResilienceOptions

	mu          sync.Mutex
	consecFails int
	openUntil   time.Time
	stats       ResilienceStats
}

// ResilienceOptions tune a Resilient querier. The zero value retries
// nothing and never trips the breaker — set at least Timeout or
// MaxRetries for it to do anything.
type ResilienceOptions struct {
	// Timeout bounds each query attempt (0 = no per-attempt timeout).
	// An attempt that exceeds it fails with context.DeadlineExceeded and
	// is retried like any transport error.
	Timeout time.Duration
	// MaxRetries is the number of re-attempts after the first failure
	// (0 = fail on the first error).
	MaxRetries int
	// BaseBackoff is the delay before the first retry; it doubles each
	// retry (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (default 2s).
	MaxBackoff time.Duration
	// BreakerThreshold is the number of CONSECUTIVE failures that opens
	// the circuit (0 = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit fast-fails before
	// letting a trial query through (default 5s).
	BreakerCooldown time.Duration

	// Sleep waits between retries; tests inject an instant sleep. Nil
	// uses a real context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Now is the breaker's clock; tests inject a fake. Nil uses
	// time.Now.
	Now func() time.Time
	// Jitter perturbs a backoff delay; tests inject identity. Nil draws
	// uniformly from [d/2, d).
	Jitter func(d time.Duration) time.Duration
}

// ResilienceStats counts what a Resilient querier has done.
type ResilienceStats struct {
	// Attempts is the number of inner queries issued.
	Attempts int
	// Retries is the number of re-attempts after failures.
	Retries int
	// Failures is the number of failed attempts (refusals excluded).
	Failures int
	// Refusals is the number of capability refusals passed through.
	Refusals int
	// FastFails is the number of queries rejected by the open breaker
	// without reaching the source.
	FastFails int
}

// NewResilient wraps q. The name labels breaker errors and stats; use the
// source's registered name.
func NewResilient(name string, q plan.Querier, opts ResilienceOptions) *Resilient {
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Jitter == nil {
		opts.Jitter = halfJitter
	}
	return &Resilient{name: name, inner: q, opts: opts}
}

// Name returns the wrapped source's name.
func (r *Resilient) Name() string { return r.name }

// Stats returns a snapshot of the querier's counters.
func (r *Resilient) Stats() ResilienceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Query implements plan.Querier with timeout, retry and breaker applied
// around the inner querier.
func (r *Resilient) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	backoff := r.opts.BaseBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := r.breakerAllow(); err != nil {
			return nil, err
		}
		r.mu.Lock()
		r.stats.Attempts++
		if attempt > 0 {
			r.stats.Retries++
		}
		r.mu.Unlock()

		res, err := r.attempt(ctx, cond, attrs)
		if err == nil {
			r.recordSuccess()
			return res, nil
		}
		var refusal *RefusalError
		if errors.As(err, &refusal) {
			// Deterministic "no": not a health signal, never retried.
			r.mu.Lock()
			r.stats.Refusals++
			r.mu.Unlock()
			return nil, err
		}
		r.recordFailure()
		lastErr = err
		// The caller's own context ending always stops the loop; a
		// per-attempt deadline does not.
		if ctx.Err() != nil {
			return nil, lastErr
		}
		if attempt >= r.opts.MaxRetries || !Retryable(err) {
			return nil, lastErr
		}
		if err := r.opts.Sleep(ctx, r.opts.Jitter(backoff)); err != nil {
			return nil, lastErr
		}
		backoff *= 2
		if backoff > r.opts.MaxBackoff {
			backoff = r.opts.MaxBackoff
		}
	}
}

// attempt runs one inner query under the per-attempt timeout.
func (r *Resilient) attempt(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	if r.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opts.Timeout)
		defer cancel()
	}
	res, err := r.inner.Query(ctx, cond, attrs)
	if err != nil && ctx.Err() != nil {
		// Normalize whatever the inner querier surfaced into the
		// context's verdict, so retry classification sees a deadline
		// (retryable) or a cancellation (not).
		return nil, ctx.Err()
	}
	return res, err
}

// breakerAllow fast-fails while the circuit is open. After the cooldown
// it lets one trial through (half-open); the trial's outcome re-opens or
// closes the circuit via recordFailure/recordSuccess.
func (r *Resilient) breakerAllow() error {
	if r.opts.BreakerThreshold <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.consecFails >= r.opts.BreakerThreshold && r.opts.Now().Before(r.openUntil) {
		r.stats.FastFails++
		return fmt.Errorf("source %s: %w (retry after %s)", r.name, ErrCircuitOpen, r.openUntil.Sub(r.opts.Now()).Round(time.Millisecond))
	}
	return nil
}

func (r *Resilient) recordSuccess() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails = 0
	r.openUntil = time.Time{}
}

func (r *Resilient) recordFailure() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Failures++
	r.consecFails++
	if r.opts.BreakerThreshold > 0 && r.consecFails >= r.opts.BreakerThreshold {
		r.openUntil = r.opts.Now().Add(r.opts.BreakerCooldown)
	}
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// halfJitter draws uniformly from [d/2, d) so concurrent retries spread
// out instead of stampeding the recovering source in lockstep.
func halfJitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)))
}
