package source

import (
	"context"
	"errors"
	"fmt"
)

// The paper's sources fail in two very different ways, and the mediator
// must tell them apart. A REFUSAL is the source saying "my capability
// description does not support this query" — deterministic, so retrying
// is useless (HTTP transport: 422). A TRANSPORT failure is the network
// or the source process misbehaving — timeouts, resets, 5xx — the
// transient faults 1999-era Internet sources exhibit constantly, and the
// ones worth retrying.

// RefusalError is a source declining a query it does not support (or a
// client-side request error). It is never retried.
type RefusalError struct {
	// Source names the refusing source (may be empty for local sources
	// that embed the name in Msg).
	Source string
	// Msg is the source's explanation.
	Msg string
}

// Error implements error.
func (e *RefusalError) Error() string {
	if e.Source == "" {
		return e.Msg
	}
	return fmt.Sprintf("source %s: %s", e.Source, e.Msg)
}

// TransportError is a transient delivery failure: connection errors,
// per-attempt timeouts, 5xx responses, injected faults. Retryable.
type TransportError struct {
	// Source names the failing source.
	Source string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *TransportError) Error() string {
	if e.Source == "" {
		return fmt.Sprintf("source transport: %v", e.Err)
	}
	return fmt.Sprintf("source %s: transport: %v", e.Source, e.Err)
}

// Unwrap exposes the underlying error.
func (e *TransportError) Unwrap() error { return e.Err }

// ErrCircuitOpen is wrapped into the fast-fail error a Resilient querier
// returns while its circuit breaker is open.
var ErrCircuitOpen = errors.New("source: circuit breaker open")

// Retryable reports whether err is worth retrying: transient transport
// failures and per-attempt deadline expiries, but never refusals,
// circuit-breaker fast-fails, or caller cancellation.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var ref *RefusalError
	if errors.As(err, &ref) {
		return false
	}
	if errors.Is(err, ErrCircuitOpen) || errors.Is(err, context.Canceled) {
		return false
	}
	var tr *TransportError
	return errors.As(err, &tr) || errors.Is(err, context.DeadlineExceeded)
}
