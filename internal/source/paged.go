package source

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
)

// A paginated Internet source hands out its answer one page at a time
// behind an opaque cursor — the "next" link of a web form. CursorQuerier
// is that interface: QueryPage fetches ONE page of SP(cond, attrs, R).
// Cursor "" asks for the first page; the returned cursor resumes the
// scan and is "" on the last page. A page may arrive alongside a
// *plan.TruncatedError when the source's result bound cut the overall
// answer — the rows are still sound.
type CursorQuerier interface {
	QueryPage(ctx context.Context, cond condition.Node, attrs []string, cursor string) (*relation.Relation, string, error)
}

// PagedOptions tune a Paged querier.
type PagedOptions struct {
	// MaxRetries is the number of re-attempts after a PAGE fails
	// (0 = fail the page on its first error). Retrying the page rather
	// than the whole scan is the point: rows already fetched are kept.
	MaxRetries int
	// BaseBackoff is the delay before a page's first retry; it doubles
	// each retry (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (default 2s).
	MaxBackoff time.Duration

	// Obs receives csqp_source_pages_total, csqp_source_page_retries_total
	// and csqp_source_truncated_total counters labeled by source. Nil
	// disables them.
	Obs *obs.Registry
	// Log receives structured events for page retries and cursor-loss
	// degradation. Nil silences them.
	Log *slog.Logger

	// Sleep waits between page retries; tests inject an instant sleep.
	// Nil uses a real context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Jitter perturbs a backoff delay; tests inject identity. Nil draws
	// uniformly from [d/2, d).
	Jitter func(d time.Duration) time.Duration
}

// Paged drives a CursorQuerier's cursor loop so the rest of the mediator
// can keep speaking plan.Querier / plan.StreamQuerier. Query accumulates
// every page into one answer; QueryStream feeds pages into the streaming
// engine chunk by chunk, so downstream operators start consuming while
// later pages are still in flight.
//
// Fault handling is per page: a transient page failure is retried with
// backoff WITHOUT restarting the scan. A cursor that dies for good after
// rows have been fetched degrades to a sound partial answer — the rows
// so far travel alongside a *plan.TruncatedError whose Cause is the
// page failure — never to a short answer presented as complete. A first
// page that never arrives is a plain failure (there is nothing sound to
// keep).
type Paged struct {
	name  string
	inner CursorQuerier
	opts  PagedOptions
	log   *slog.Logger
	met   pagedMetrics
}

// pagedMetrics are the registry instruments (no-ops when Obs is nil).
type pagedMetrics struct {
	pages, retries, truncated *obs.Counter
}

// NewPaged wraps a cursor querier. The name labels errors, metrics and
// log events; use the source's registered name.
func NewPaged(name string, inner CursorQuerier, opts PagedOptions) *Paged {
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	if opts.Jitter == nil {
		opts.Jitter = halfJitter
	}
	p := &Paged{name: name, inner: inner, opts: opts, log: obs.LoggerOr(opts.Log)}
	reg := opts.Obs // nil-safe: nil registry yields no-op instruments
	p.met = pagedMetrics{
		pages:     reg.Counter("csqp_source_pages_total", "source", name),
		retries:   reg.Counter("csqp_source_page_retries_total", "source", name),
		truncated: reg.Counter("csqp_source_truncated_total", "source", name),
	}
	return p
}

// Name returns the wrapped source's name.
func (p *Paged) Name() string { return p.name }

// fetchPage fetches one page with the per-page retry policy applied. A
// page arriving alongside a truncation report counts as a success —
// retrying cannot buy more rows past a deterministic bound.
func (p *Paged) fetchPage(ctx context.Context, cond condition.Node, attrs []string, cursor string) (*relation.Relation, string, error) {
	oprof := plan.OpStatsFrom(ctx) // nil-safe: notes the executing operator's profile
	backoff := p.opts.BaseBackoff
	for attempt := 0; ; attempt++ {
		page, next, err := p.inner.QueryPage(ctx, cond, attrs, cursor)
		if err == nil || (page != nil && plan.IsTruncated(err)) {
			p.met.pages.Inc()
			return page, next, err
		}
		// Deterministic "no" — a capability refusal or a rejected cursor —
		// is returned immediately, like Resilient does.
		if !Retryable(err) || ctx.Err() != nil || attempt >= p.opts.MaxRetries {
			return nil, "", err
		}
		p.met.retries.Inc()
		oprof.Note("page-retried")
		p.log.Debug("retrying source page",
			"source", p.name, "cursor", cursor, "attempt", attempt+1, "err", err)
		if serr := p.opts.Sleep(ctx, p.opts.Jitter(backoff)); serr != nil {
			return nil, "", err
		}
		backoff *= 2
		if backoff > p.opts.MaxBackoff {
			backoff = p.opts.MaxBackoff
		}
	}
}

// Query implements plan.Querier by walking the cursor to the end and
// accumulating pages into one relation (set semantics: duplicate tuples
// across sloppily-cut pages collapse).
func (p *Paged) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	oprof := plan.OpStatsFrom(ctx)
	var (
		acc    *relation.Relation
		seen   = make(map[string]struct{})
		cursor string
		pages  int
	)
	for {
		page, next, err := p.fetchPage(ctx, cond, attrs, cursor)
		if err != nil && (page == nil || !plan.IsTruncated(err)) {
			if pages == 0 || acc == nil || acc.Len() == 0 {
				// Nothing sound recovered: a plain failure.
				return nil, err
			}
			// The cursor died mid-scan after rows were fetched: degrade to
			// a sound partial answer instead of losing them — or worse,
			// presenting them as complete.
			p.met.truncated.Inc()
			oprof.Note(fmt.Sprintf("paged:%d", pages))
			p.log.Warn("cursor lost mid-scan; degrading to sound partial answer",
				"source", p.name, "pages", pages, "rows", acc.Len(), "err", err)
			return acc, &plan.TruncatedError{Source: p.name, Limit: acc.Len(), Cause: err}
		}
		pages++
		if acc == nil {
			acc = relation.New(page.Schema())
		}
		for _, t := range page.Tuples() {
			k := t.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if aerr := acc.Append(t); aerr != nil {
				return nil, fmt.Errorf("source %s: %w", p.name, aerr)
			}
		}
		if err != nil {
			// The source reported its result bound cut the answer; the
			// accumulated rows are its sound top-k.
			p.met.truncated.Inc()
			oprof.Note(fmt.Sprintf("paged:%d", pages))
			return acc, err
		}
		if next == "" {
			oprof.Note(fmt.Sprintf("paged:%d", pages))
			return acc, nil
		}
		cursor = next
	}
}

// QueryStream implements plan.StreamQuerier: each page becomes one chunk
// of the stream, fetched lazily as the consumer pulls. The first page is
// fetched eagerly — the iterator needs its schema, and capability
// refusals must surface at open time like every other source's.
func (p *Paged) QueryStream(ctx context.Context, cond condition.Node, attrs []string) (plan.Iterator, error) {
	page, next, err := p.fetchPage(ctx, cond, attrs, "")
	if err != nil && (page == nil || !plan.IsTruncated(err)) {
		return nil, err
	}
	it := &pagedIter{
		p:      p,
		cond:   cond,
		attrs:  attrs,
		schema: page.Schema(),
		seen:   make(map[string]struct{}),
		cursor: next,
		pages:  1,
	}
	it.buf = it.dedup(page.Tuples())
	if err != nil {
		// Truncation reported on the first page: deliver its rows, then
		// the terminal report.
		it.terr = err
		it.cursor = ""
	}
	return it, nil
}

// pagedIter streams a paginated scan page-by-page.
type pagedIter struct {
	p         *Paged
	cond      condition.Node
	attrs     []string
	schema    *relation.Schema
	seen      map[string]struct{}
	buf       []relation.Tuple
	cursor    string
	terr      error // pending terminal truncation report
	pages     int
	delivered int
	done      bool
}

func (it *pagedIter) Schema() *relation.Schema { return it.schema }

// dedup drops tuples already streamed (set semantics across pages).
func (it *pagedIter) dedup(ts []relation.Tuple) []relation.Tuple {
	out := ts[:0:len(ts)]
	for _, t := range ts {
		k := t.Key()
		if _, dup := it.seen[k]; dup {
			continue
		}
		it.seen[k] = struct{}{}
		out = append(out, t)
	}
	return out
}

// finish ends the stream and books the page-count note exactly once.
func (it *pagedIter) finish(ctx context.Context) {
	it.done = true
	it.seen = nil
	plan.OpStatsFrom(ctx).Note(fmt.Sprintf("paged:%d", it.pages))
}

func (it *pagedIter) Next(ctx context.Context) ([]relation.Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if it.done {
		return nil, io.EOF
	}
	for {
		if len(it.buf) > 0 {
			out := it.buf
			it.buf = nil
			it.delivered += len(out)
			return out, nil
		}
		if it.terr != nil {
			it.p.met.truncated.Inc()
			err := it.terr
			it.finish(ctx)
			return nil, err
		}
		if it.cursor == "" {
			it.finish(ctx)
			return nil, io.EOF
		}
		page, next, err := it.p.fetchPage(ctx, it.cond, it.attrs, it.cursor)
		if err != nil && (page == nil || !plan.IsTruncated(err)) {
			// Cursor lost mid-stream. The rows already delivered are sound
			// and cannot be recalled, so the stream must NOT end cleanly —
			// report truncation at the delivered row count.
			it.p.met.truncated.Inc()
			it.p.log.Warn("cursor lost mid-stream; degrading to sound partial answer",
				"source", it.p.name, "pages", it.pages, "rows", it.delivered, "err", err)
			terr := &plan.TruncatedError{Source: it.p.name, Limit: it.delivered, Cause: err}
			it.finish(ctx)
			return nil, terr
		}
		it.pages++
		it.buf = it.dedup(page.Tuples())
		it.cursor = next
		if err != nil {
			it.terr = err
			it.cursor = ""
		}
	}
}

func (it *pagedIter) Close() error {
	it.done = true
	it.seen = nil
	return nil
}
