package source

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/plan"
)

func TestFlakyFailFirstThenRecovers(t *testing.T) {
	f := NewFlaky(&okQuerier{rel: tinyRelation(t)}).FailFirst(2)
	for i := 0; i < 2; i++ {
		_, err := f.Query(context.Background(), anyCond, []string{"a"})
		var tr *TransportError
		if !errors.As(err, &tr) || !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want injected *TransportError", i, err)
		}
	}
	res, err := f.Query(context.Background(), anyCond, []string{"a"})
	if err != nil || res.Len() != 1 {
		t.Fatalf("recovered call: res=%v err=%v", res, err)
	}
	if f.Calls() != 3 || f.Failures() != 2 {
		t.Errorf("calls=%d failures=%d", f.Calls(), f.Failures())
	}
}

func TestFlakyFailRateIsDeterministic(t *testing.T) {
	run := func() (failures int) {
		f := NewFlaky(&okQuerier{rel: tinyRelation(t)}).FailRate(0.5, 42)
		for i := 0; i < 100; i++ {
			f.Query(context.Background(), anyCond, []string{"a"})
		}
		return f.Failures()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged: %d vs %d failures", a, b)
	}
	if a < 30 || a > 70 {
		t.Errorf("failure count %d wildly off a 0.5 rate", a)
	}
}

func TestFlakyBlockHonorsContext(t *testing.T) {
	f := NewFlaky(&okQuerier{rel: tinyRelation(t)}).Block()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := f.Query(ctx, anyCond, []string{"a"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	f.Unblock()
	if res, err := f.Query(context.Background(), anyCond, []string{"a"}); err != nil || res.Len() != 1 {
		t.Fatalf("after Unblock: res=%v err=%v", res, err)
	}
}

// TestCancelledPlanDoesNotLeakGoroutines is the ISSUE's leak check: a
// plan stuck on a hung source is cancelled; every executor goroutine and
// the hung source call itself must unwind.
func TestCancelledPlanDoesNotLeakGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	hung := NewFlaky(&okQuerier{rel: tinyRelation(t)}).Block()
	srcs := plan.SourceMap{
		"hung": hung,
		"ok":   &okQuerier{rel: tinyRelation(t)},
	}
	var branches []plan.Plan
	for i := 0; i < 6; i++ {
		name := "hung"
		if i%2 == 0 {
			name = "ok"
		}
		branches = append(branches, plan.NewSourceQuery(name, anyCond, []string{"a"}))
	}
	p := &plan.Union{Inputs: branches}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		plan.ExecuteParallel(ctx, p, srcs, plan.ExecOptions{Workers: 4})
	}()
	time.Sleep(20 * time.Millisecond) // let branches reach the hung source
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled plan never returned")
	}

	// Goroutines wind down asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
