package ssdl

import (
	"fmt"
	"strings"

	"repro/internal/condition"
)

// PlaceholderKind constrains the constants a placeholder accepts.
type PlaceholderKind int

const (
	// AnyValue accepts any constant kind.
	AnyValue PlaceholderKind = iota
	// StringValue accepts string constants only ($c, $m in the paper).
	StringValue
	// IntValue accepts integer constants only ($p in the paper).
	IntValue
	// FloatValue accepts floating-point constants only.
	FloatValue
	// NumericValue accepts ints and floats.
	NumericValue
)

// String returns the placeholder kind's declaration syntax.
func (k PlaceholderKind) String() string {
	switch k {
	case AnyValue:
		return "any"
	case StringValue:
		return "string"
	case IntValue:
		return "int"
	case FloatValue:
		return "float"
	case NumericValue:
		return "num"
	default:
		return fmt.Sprintf("phkind(%d)", int(k))
	}
}

func (k PlaceholderKind) matches(v condition.Value) bool {
	kind := v.Kind
	if v.IsParam() {
		// A condition placeholder stands for an arbitrary constant of its
		// element kind; a grammar placeholder accepts it exactly when it
		// would accept such a constant. (Literal and enum patterns never
		// accept params — see ValuePattern.Matches — which is what makes
		// checking a skeleton a sound stand-in for checking any bound
		// instance whose constants avoid the grammar's sensitive literals.)
		kind = v.Elem
	}
	switch k {
	case AnyValue:
		return true
	case StringValue:
		return kind == condition.KindString
	case IntValue:
		return kind == condition.KindInt
	case FloatValue:
		return kind == condition.KindFloat
	case NumericValue:
		return kind == condition.KindInt || kind == condition.KindFloat
	default:
		return false
	}
}

// ValuePattern matches the constant of an atomic condition: an exact
// literal (`style = "sedan"` in a rule body), an enumeration of allowed
// literals (`style = {"sedan", "coupe"}` — the dropdown fields of real
// web forms), or a typed placeholder (`price < $p`).
type ValuePattern struct {
	Literal *condition.Value  // exact match when non-nil
	OneOf   []condition.Value // enumerated match when non-empty
	Kind    PlaceholderKind   // placeholder constraint otherwise
	Name    string            // placeholder name, informational
}

// LiteralPattern builds a pattern matching exactly v.
func LiteralPattern(v condition.Value) ValuePattern { return ValuePattern{Literal: &v} }

// EnumPattern builds a pattern matching any of the listed literals.
func EnumPattern(vs ...condition.Value) ValuePattern {
	return ValuePattern{OneOf: append([]condition.Value(nil), vs...)}
}

// Placeholder builds a typed placeholder pattern.
func Placeholder(name string, kind PlaceholderKind) ValuePattern {
	return ValuePattern{Kind: kind, Name: name}
}

// Matches reports whether the pattern accepts the constant. A param value
// (condition.KindParam) is accepted only by placeholder patterns of a
// matching element kind: literal and enum patterns pin specific constants,
// which an unbound placeholder by definition is not.
func (p ValuePattern) Matches(v condition.Value) bool {
	if p.Literal != nil {
		return p.Literal.Equal(v) && p.Literal.Kind == v.Kind
	}
	if len(p.OneOf) > 0 {
		for _, o := range p.OneOf {
			if o.Equal(v) && o.Kind == v.Kind {
				return true
			}
		}
		return false
	}
	return p.Kind.matches(v)
}

// String renders the pattern in rule-body syntax.
func (p ValuePattern) String() string {
	if p.Literal != nil {
		return p.Literal.String()
	}
	if len(p.OneOf) > 0 {
		parts := make([]string, len(p.OneOf))
		for i, v := range p.OneOf {
			parts[i] = v.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	name := p.Name
	if name == "" {
		name = "v"
	}
	if p.Kind == AnyValue {
		return "$" + name
	}
	return "$" + name + ":" + p.Kind.String()
}

// AtomPattern matches one atomic condition: attribute and operator are
// literal, the constant is a ValuePattern.
type AtomPattern struct {
	Attr string
	Op   condition.Op
	Val  ValuePattern
}

// Matches reports whether the pattern accepts the atomic condition.
func (p *AtomPattern) Matches(a *condition.Atomic) bool {
	return p.Attr == a.Attr && p.Op == a.Op && p.Val.Matches(a.Val)
}

// String renders the pattern in rule-body syntax.
func (p *AtomPattern) String() string {
	return p.Attr + " " + p.Op.String() + " " + p.Val.String()
}
