package ssdl

import (
	"repro/internal/condition"
)

// Sensitivity is the value-position sensitivity analysis behind plan
// templating. For each (attribute, operator) value position, it records
// the literals the grammar singles out via exact-literal or enumeration
// patterns — the positions where Check's answer depends on the *value* of
// a constant, not just on the condition's shape.
//
// The soundness argument for binding a skeleton-planned template: every
// atom pattern at a position either (a) is a typed placeholder, which
// accepts a condition param exactly when it accepts any concrete constant
// of the param's element kind, or (b) pins literals, and accepts neither
// the param nor any constant outside its literal set. So for a binding b
// of the param's element kind with Constrained(attr, op, b) == false,
// every terminal in the grammar matches the bound atom exactly as it
// matched the param atom — the Earley recognizer sees the same token
// acceptance, Check returns the same attribute sets, and the template's
// plan (including its grammar-accepted fixed form) is valid verbatim with
// the constant substituted. When Constrained reports true the template
// must not be used and the query falls back to full planning.
type Sensitivity struct {
	sites map[sensSite][]condition.Value
}

// sensSite identifies one value position of the grammar.
type sensSite struct {
	attr string
	op   condition.Op
}

// AnalyzeSensitivity scans the grammar's atom patterns and collects, per
// value position, the literals appearing in Literal or enum (OneOf)
// patterns. Placeholder patterns contribute nothing: they admit any
// constant of their kind, so the position stays shape-insensitive.
func AnalyzeSensitivity(g *Grammar) *Sensitivity {
	s := &Sensitivity{sites: make(map[sensSite][]condition.Value)}
	for _, r := range g.Rules {
		for _, sym := range r.RHS {
			if sym.Kind != SymAtom || sym.Atom == nil {
				continue
			}
			p := sym.Atom
			site := sensSite{attr: p.Attr, op: p.Op}
			if p.Val.Literal != nil {
				s.add(site, *p.Val.Literal)
			}
			for _, v := range p.Val.OneOf {
				s.add(site, v)
			}
		}
	}
	return s
}

func (s *Sensitivity) add(site sensSite, v condition.Value) {
	for _, have := range s.sites[site] {
		if have.Kind == v.Kind && have.Equal(v) {
			return
		}
	}
	s.sites[site] = append(s.sites[site], v)
}

// Constrained reports whether binding v at the (attr, op) value position
// could change the grammar's answer relative to a placeholder: true when
// some literal/enum pattern at that position pins exactly v. Matching
// mirrors ValuePattern.Matches (value equality plus identical kind).
func (s *Sensitivity) Constrained(attr string, op condition.Op, v condition.Value) bool {
	for _, have := range s.sites[sensSite{attr: attr, op: op}] {
		if have.Kind == v.Kind && have.Equal(v) {
			return true
		}
	}
	return false
}

// HasConstraints reports whether any value position of the grammar is
// value-constrained; false means every constant is safe to template and
// per-binding checks can be skipped.
func (s *Sensitivity) HasConstraints() bool { return len(s.sites) > 0 }

// ConstrainedSites returns the number of value-constrained (attr, op)
// positions, for stats and tests.
func (s *Sensitivity) ConstrainedSites() int { return len(s.sites) }
