package ssdl

import "repro/internal/condition"

// RelationalGrammar builds an SSDL description accepting every canonical
// condition expression over the given atomic patterns: arbitrary AND/OR
// nesting with the alternating parenthesization Linearize produces. It is
// the capability description of a relationally complete interface, used by
// wrappers that expose full select-project power over a limited source
// (§2: wrappers providing "generic relational capabilities" must implement
// the paper's scheme internally — internal/wrapper does, and advertises
// this grammar).
//
// The grammar shape, with `atom` standing for the pattern alternatives:
//
//	any   -> atom | conj | disj
//	conj  -> celem ^ celem | celem ^ conj      (≥2 conjuncts)
//	celem -> atom | ( disj )
//	disj  -> delem _ delem | delem _ disj      (≥2 disjuncts)
//	delem -> atom | ( conj )
func RelationalGrammar(source string, schema []string, key string, atoms []*AtomPattern, exports []string) *Grammar {
	g := NewGrammar(source)
	g.Schema = append([]string(nil), schema...)
	g.Key = key

	mustAdd := func(lhs string, rhs ...Symbol) {
		if err := g.AddRule(lhs, rhs); err != nil {
			panic("ssdl: relational grammar: " + err.Error()) // impossible: bodies are fixed and non-empty
		}
	}

	for _, a := range atoms {
		mustAdd("atom", Symbol{Kind: SymAtom, Atom: a})
	}
	and := Symbol{Kind: SymAnd}
	or := Symbol{Kind: SymOr}
	lp := Symbol{Kind: SymLParen}
	rp := Symbol{Kind: SymRParen}

	mustAdd("celem", NonTerm("atom"))
	mustAdd("celem", lp, NonTerm("disj"), rp)
	mustAdd("conj", NonTerm("celem"), and, NonTerm("celem"))
	mustAdd("conj", NonTerm("celem"), and, NonTerm("conj"))

	mustAdd("delem", NonTerm("atom"))
	mustAdd("delem", lp, NonTerm("conj"), rp)
	mustAdd("disj", NonTerm("delem"), or, NonTerm("delem"))
	mustAdd("disj", NonTerm("delem"), or, NonTerm("disj"))

	mustAdd("any", NonTerm("atom"))
	mustAdd("any", NonTerm("conj"))
	mustAdd("any", NonTerm("disj"))
	mustAdd("any", Symbol{Kind: SymTrue})

	g.SetCondAttrs("any", exports...)
	return g
}

// StandardAtoms builds the atom patterns of a relationally complete
// interface: every (attribute, operator) pair with an untyped placeholder.
// Strings additionally support `contains`.
type StandardAtomSpec struct {
	Attr string
	// Numeric selects the comparison set: =, !=, <, <=, >, >= when true;
	// =, !=, contains when false.
	Numeric bool
}

// StandardAtoms expands the specs into atom patterns for
// RelationalGrammar.
func StandardAtoms(specs []StandardAtomSpec) []*AtomPattern {
	var out []*AtomPattern
	for _, s := range specs {
		ops := stringOps
		if s.Numeric {
			ops = numericOps
		}
		for _, op := range ops {
			out = append(out, &AtomPattern{Attr: s.Attr, Op: op, Val: Placeholder("v", AnyValue)})
		}
	}
	return out
}

var (
	numericOps = []condition.Op{condition.OpEq, condition.OpNe, condition.OpLt, condition.OpLe, condition.OpGt, condition.OpGe}
	stringOps  = []condition.Op{condition.OpEq, condition.OpNe, condition.OpContains}
)
