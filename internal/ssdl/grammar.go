package ssdl

import (
	"fmt"
	"strings"

	"repro/internal/strset"
)

// SymKind identifies a grammar symbol.
type SymKind int

const (
	// SymNonTerm references another rule's left-hand side.
	SymNonTerm SymKind = iota
	// SymAtom is a terminal matching one atomic condition.
	SymAtom
	// SymAnd is the terminal conjunction connector ^.
	SymAnd
	// SymOr is the terminal disjunction connector _.
	SymOr
	// SymLParen is the terminal (.
	SymLParen
	// SymRParen is the terminal ).
	SymRParen
	// SymTrue is the terminal `true`, marking download support.
	SymTrue
)

// Symbol is one element of a rule body.
type Symbol struct {
	Kind SymKind
	Name string       // nonterminal name when Kind == SymNonTerm
	Atom *AtomPattern // pattern when Kind == SymAtom
}

// NonTerm builds a nonterminal reference.
func NonTerm(name string) Symbol { return Symbol{Kind: SymNonTerm, Name: name} }

// String renders the symbol in rule-body syntax.
func (s Symbol) String() string {
	switch s.Kind {
	case SymNonTerm:
		return s.Name
	case SymAtom:
		return s.Atom.String()
	case SymAnd:
		return "^"
	case SymOr:
		return "_"
	case SymLParen:
		return "("
	case SymRParen:
		return ")"
	case SymTrue:
		return "true"
	default:
		return "?"
	}
}

// matchesTok reports whether this terminal symbol matches the condition
// token. Nonterminals never match directly.
func (s Symbol) matchesTok(t CTok) bool {
	switch s.Kind {
	case SymAtom:
		return t.Kind == CTokAtom && s.Atom.Matches(t.Atom)
	case SymAnd:
		return t.Kind == CTokAnd
	case SymOr:
		return t.Kind == CTokOr
	case SymLParen:
		return t.Kind == CTokLParen
	case SymRParen:
		return t.Kind == CTokRParen
	case SymTrue:
		return t.Kind == CTokTrue
	default:
		return false
	}
}

// Rule is one CFG production.
type Rule struct {
	LHS string
	RHS []Symbol
}

// String renders the rule.
func (r Rule) String() string {
	parts := make([]string, len(r.RHS))
	for i, s := range r.RHS {
		parts[i] = s.String()
	}
	return r.LHS + " -> " + strings.Join(parts, " ")
}

// Grammar is a parsed SSDL description: the triplet <S, G, A> of the paper
// plus the source metadata our simulated sources carry.
type Grammar struct {
	// Source is the source name from the `source` header (may be empty).
	Source string
	// Schema lists the source's attributes when declared via `attrs`.
	Schema []string
	// Key is the source's key attribute when declared via `key`.
	Key string
	// Rules are the CFG productions G. The implicit start rule
	// s -> s1 | ... | sm is represented by CondAttrs' key set rather
	// than stored explicitly.
	Rules []Rule
	// CondAttrs is the association set A: condition nonterminal ->
	// exported attributes.
	CondAttrs map[string]strset.Set

	// Limit is the source's result bound from a `limit k` line: the
	// source returns at most k matching tuples per query and reports
	// truncation when more matched. 0 means unbounded.
	Limit int
	// PageSize is the source's page size from a `paged k` line: the
	// source serves answers k tuples at a time behind a cursor. 0 means
	// unpaged (whole answer in one response).
	PageSize int
	// Required lists attributes that MUST be bound by an equality atom
	// in every supported condition (`require a, b` — the binding-pattern
	// / access-limitation annotation). A query that cannot bind them all
	// is unsupported regardless of what the rules derive; in particular
	// a non-empty Required forbids the download query SP(true, A, R).
	Required []string

	rulesByLHS map[string][]int
	// indexed is the rule count rulesByLHS was built for; a mismatch
	// means Rules was edited directly (exported field) and the index must
	// be rebuilt before use. The recognizer addresses rules by position,
	// so a stale index walks off the rule slice instead of misparsing.
	indexed int
}

// NewGrammar builds an empty grammar for the named source.
func NewGrammar(source string) *Grammar {
	return &Grammar{
		Source:     source,
		CondAttrs:  make(map[string]strset.Set),
		rulesByLHS: make(map[string][]int),
	}
}

// AddRule appends a production. Empty bodies are rejected: SSDL grammars
// are epsilon-free, which the recognizer relies on.
func (g *Grammar) AddRule(lhs string, rhs []Symbol) error {
	if lhs == "" {
		return fmt.Errorf("ssdl: rule with empty left-hand side")
	}
	if len(rhs) == 0 {
		return fmt.Errorf("ssdl: rule %s has an empty body", lhs)
	}
	g.Rules = append(g.Rules, Rule{LHS: lhs, RHS: rhs})
	g.rulesByLHS[lhs] = append(g.rulesByLHS[lhs], len(g.Rules)-1)
	g.indexed = len(g.Rules)
	return nil
}

// byLHS returns the rule index keyed by left-hand side, rebuilding it
// when Rules was modified without going through AddRule (a grammar built
// as a struct literal, or Rules edited in place). Callers on concurrent
// paths must snapshot instead of calling this per lookup.
func (g *Grammar) byLHS() map[string][]int {
	if g.rulesByLHS == nil || g.indexed != len(g.Rules) {
		g.rulesByLHS = make(map[string][]int, len(g.Rules))
		for i, r := range g.Rules {
			g.rulesByLHS[r.LHS] = append(g.rulesByLHS[r.LHS], i)
		}
		g.indexed = len(g.Rules)
	}
	return g.rulesByLHS
}

// SetCondAttrs declares lhs as a condition nonterminal exporting attrs
// (the `attributes :: lhs : {...}` association).
func (g *Grammar) SetCondAttrs(lhs string, attrs ...string) {
	g.CondAttrs[lhs] = strset.New(attrs...)
}

// RulesFor returns the indices of the rules with the given left-hand side.
func (g *Grammar) RulesFor(lhs string) []int { return g.byLHS()[lhs] }

// IsCondNT reports whether the name is a condition nonterminal (a member
// of S, directly derivable from the start symbol).
func (g *Grammar) IsCondNT(name string) bool {
	_, ok := g.CondAttrs[name]
	return ok
}

// CondNTs returns the condition nonterminals in sorted order.
func (g *Grammar) CondNTs() []string {
	return strset.Set(func() map[string]bool {
		m := make(map[string]bool, len(g.CondAttrs))
		for k := range g.CondAttrs {
			m[k] = true
		}
		return m
	}()).Sorted()
}

// Validate checks internal consistency: every condition nonterminal has at
// least one rule, every referenced nonterminal is defined, and declared
// attribute sets stay within the schema when one is declared.
func (g *Grammar) Validate() error {
	if len(g.CondAttrs) == 0 {
		return fmt.Errorf("ssdl: grammar for %q declares no condition nonterminals", g.Source)
	}
	schema := strset.New(g.Schema...)
	byLHS := g.byLHS()
	for nt, attrs := range g.CondAttrs {
		if len(byLHS[nt]) == 0 {
			return fmt.Errorf("ssdl: condition nonterminal %q has no rules", nt)
		}
		if len(g.Schema) > 0 && !attrs.SubsetOf(schema) {
			return fmt.Errorf("ssdl: attributes of %q not in schema: %v ⊄ %v", nt, attrs, schema)
		}
	}
	if g.Key != "" && len(g.Schema) > 0 && !schema.Has(g.Key) {
		return fmt.Errorf("ssdl: key %q not in schema", g.Key)
	}
	if g.Limit < 0 {
		return fmt.Errorf("ssdl: negative result bound limit %d", g.Limit)
	}
	if g.PageSize < 0 {
		return fmt.Errorf("ssdl: negative page size %d", g.PageSize)
	}
	for _, a := range g.Required {
		if len(g.Schema) > 0 && !schema.Has(a) {
			return fmt.Errorf("ssdl: required attribute %q not in schema %v", a, g.Schema)
		}
	}
	for _, r := range g.Rules {
		for _, sym := range r.RHS {
			if sym.Kind == SymNonTerm && len(byLHS[sym.Name]) == 0 {
				return fmt.Errorf("ssdl: rule %q references undefined nonterminal %q", r, sym.Name)
			}
			if sym.Kind == SymAtom && len(g.Schema) > 0 && !schema.Has(sym.Atom.Attr) {
				return fmt.Errorf("ssdl: rule %q uses attribute %q not in schema", r, sym.Atom.Attr)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the grammar (rule bodies are copied; atom
// patterns are immutable and shared).
func (g *Grammar) Clone() *Grammar {
	out := NewGrammar(g.Source)
	out.Schema = append([]string(nil), g.Schema...)
	out.Key = g.Key
	out.Limit = g.Limit
	out.PageSize = g.PageSize
	out.Required = append([]string(nil), g.Required...)
	for _, r := range g.Rules {
		rhs := append([]Symbol(nil), r.RHS...)
		if err := out.AddRule(r.LHS, rhs); err != nil {
			panic(err) // cannot happen: source rules were validated on add
		}
	}
	for nt, attrs := range g.CondAttrs {
		out.CondAttrs[nt] = attrs.Clone()
	}
	return out
}

// String renders the grammar in SSDL description syntax, re-parseable by
// Parse.
func (g *Grammar) String() string {
	var sb strings.Builder
	if g.Source != "" {
		fmt.Fprintf(&sb, "source %s\n", g.Source)
	}
	if len(g.Schema) > 0 {
		fmt.Fprintf(&sb, "attrs %s\n", strings.Join(g.Schema, ", "))
	}
	if g.Key != "" {
		fmt.Fprintf(&sb, "key %s\n", g.Key)
	}
	if g.Limit > 0 {
		fmt.Fprintf(&sb, "limit %d\n", g.Limit)
	}
	if g.PageSize > 0 {
		fmt.Fprintf(&sb, "paged %d\n", g.PageSize)
	}
	if len(g.Required) > 0 {
		fmt.Fprintf(&sb, "require %s\n", strings.Join(g.Required, ", "))
	}
	for _, r := range g.Rules {
		fmt.Fprintln(&sb, r.String())
	}
	for _, nt := range g.CondNTs() {
		fmt.Fprintf(&sb, "attributes :: %s : {%s}\n", nt, strings.Join(g.CondAttrs[nt].Sorted(), ", "))
	}
	return sb.String()
}
