package ssdl

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/condition"
)

// Parse reads an SSDL source description. The format follows the paper's
// notation with a few practical conveniences:
//
//	# comment
//	source R
//	attrs make, model, year, color, price
//	key model
//
//	s1 -> make = $m ^ price < $p:int
//	s2 -> make = $m ^ color = $c
//	slist -> size = $v | size = $v _ slist
//	dl -> true
//	attributes :: s1 : {make, model, year, color}
//	attributes :: s2 : {make, model, year}
//	attributes :: dl : {make, model, year, color, price}
//
// Rule bodies use ^ for conjunction and _ for disjunction (the paper's
// connectors); `|` separates rule alternatives, exactly as in the paper's
// Rule (1). An identifier followed by a comparison operator starts an
// atomic pattern whose constant is either a literal (quoted string or
// number) or a placeholder `$name` / `$name:kind` with kind one of
// string, int, float, num, any. An identifier not followed by an operator
// is a nonterminal reference. A rule body `true` marks the nonterminal as
// matching the download query SP(true, A, R).
//
// Nonterminals given an `attributes ::` association form the set S of
// condition nonterminals; the implicit start rule is s -> s1 | ... | sm.
//
// Three optional header lines describe interface limitations beyond the
// paper's condition grammar:
//
//	limit 10        # result bound: at most 10 matching tuples per query
//	paged 25        # answers are served 25 tuples per page behind a cursor
//	require make    # binding pattern: `make` must be bound by an equality
//
// `limit`/`paged` want a positive integer; `require` wants one or more
// schema attributes.
func Parse(src string) (*Grammar, error) {
	g := NewGrammar("")
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(g, line); err != nil {
			return nil, fmt.Errorf("ssdl: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustParse is Parse that panics on error; intended for tests and
// fixtures.
func MustParse(src string) *Grammar {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

func parseLine(g *Grammar, line string) error {
	switch {
	case strings.HasPrefix(line, "source "):
		g.Source = strings.TrimSpace(strings.TrimPrefix(line, "source "))
		return nil
	case strings.HasPrefix(line, "attrs "):
		for _, a := range strings.Split(strings.TrimPrefix(line, "attrs "), ",") {
			a = strings.TrimSpace(a)
			if a != "" {
				g.Schema = append(g.Schema, a)
			}
		}
		return nil
	case strings.HasPrefix(line, "key "):
		g.Key = strings.TrimSpace(strings.TrimPrefix(line, "key "))
		return nil
	case strings.HasPrefix(line, "limit "):
		n, err := parseBound(strings.TrimPrefix(line, "limit "), "limit")
		if err != nil {
			return err
		}
		g.Limit = n
		return nil
	case strings.HasPrefix(line, "paged "):
		n, err := parseBound(strings.TrimPrefix(line, "paged "), "paged")
		if err != nil {
			return err
		}
		g.PageSize = n
		return nil
	case strings.HasPrefix(line, "require "):
		var attrs []string
		for _, a := range strings.Split(strings.TrimPrefix(line, "require "), ",") {
			a = strings.TrimSpace(a)
			if a != "" {
				attrs = append(attrs, a)
			}
		}
		if len(attrs) == 0 {
			return fmt.Errorf("require line names no attributes")
		}
		g.Required = append(g.Required, attrs...)
		return nil
	case strings.HasPrefix(line, "attributes"):
		return parseAttributes(g, line)
	case strings.Contains(line, "->"):
		return parseRule(g, line)
	default:
		return fmt.Errorf("unrecognized line %q", line)
	}
}

// parseBound parses the positive integer operand of a `limit k` /
// `paged k` line. Zero is rejected explicitly: `limit 0` would declare a
// source that answers nothing, which is always an authoring mistake.
func parseBound(s, keyword string) (int, error) {
	s = strings.TrimSpace(s)
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%s wants a positive integer, got %q", keyword, s)
	}
	if n <= 0 {
		return 0, fmt.Errorf("%s %d: bound must be at least 1", keyword, n)
	}
	return n, nil
}

// parseAttributes handles `attributes :: s1 : {a, b, c}`.
func parseAttributes(g *Grammar, line string) error {
	rest := strings.TrimPrefix(line, "attributes")
	rest = strings.TrimSpace(rest)
	rest = strings.TrimPrefix(rest, "::")
	nt, setPart, ok := strings.Cut(rest, ":")
	if !ok {
		return fmt.Errorf("malformed attributes line %q", line)
	}
	nt = strings.TrimSpace(nt)
	if nt == "" {
		return fmt.Errorf("attributes line missing nonterminal: %q", line)
	}
	setPart = strings.TrimSpace(setPart)
	setPart = strings.TrimPrefix(setPart, "{")
	setPart = strings.TrimSuffix(setPart, "}")
	var attrs []string
	for _, a := range strings.Split(setPart, ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			attrs = append(attrs, a)
		}
	}
	g.SetCondAttrs(nt, attrs...)
	return nil
}

// parseRule handles `lhs -> body | body | ...`.
func parseRule(g *Grammar, line string) error {
	lhs, bodyText, _ := strings.Cut(line, "->")
	lhs = strings.TrimSpace(lhs)
	if lhs == "" || strings.ContainsAny(lhs, " \t") {
		return fmt.Errorf("malformed rule head %q", lhs)
	}
	for _, alt := range splitAlternatives(bodyText) {
		syms, err := ParseBody(alt)
		if err != nil {
			return fmt.Errorf("rule %s: %w", lhs, err)
		}
		if err := g.AddRule(lhs, syms); err != nil {
			return err
		}
	}
	return nil
}

// splitAlternatives splits on `|` outside quotes.
func splitAlternatives(s string) []string {
	var out []string
	depth := 0 // quotes only; parens do not hide alternatives in SSDL
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			if c == quote && (i == 0 || s[i-1] != '\\') {
				quote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '|':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// ParseBody parses one rule alternative into symbols.
func ParseBody(body string) ([]Symbol, error) {
	toks, err := lexBody(body)
	if err != nil {
		return nil, err
	}
	var syms []Symbol
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		switch t.kind {
		case bTokAnd:
			syms = append(syms, Symbol{Kind: SymAnd})
		case bTokOr:
			syms = append(syms, Symbol{Kind: SymOr})
		case bTokLParen:
			syms = append(syms, Symbol{Kind: SymLParen})
		case bTokRParen:
			syms = append(syms, Symbol{Kind: SymRParen})
		case bTokTrue:
			syms = append(syms, Symbol{Kind: SymTrue})
		case bTokIdent:
			// Atomic pattern if followed by an operator, else a
			// nonterminal reference.
			if i+1 < len(toks) && toks[i+1].kind == bTokOp {
				op, _ := condition.ParseOp(toks[i+1].text)
				if i+2 >= len(toks) {
					return nil, fmt.Errorf("pattern %q %s missing value", t.text, toks[i+1].text)
				}
				vp, consumed, err := parseValuePatternAt(toks, i+2)
				if err != nil {
					return nil, err
				}
				syms = append(syms, Symbol{Kind: SymAtom, Atom: &AtomPattern{Attr: t.text, Op: op, Val: vp}})
				i += 1 + consumed
				continue
			}
			syms = append(syms, NonTerm(t.text))
		default:
			return nil, fmt.Errorf("unexpected token %q in rule body", t.text)
		}
	}
	if len(syms) == 0 {
		return nil, fmt.Errorf("empty rule body")
	}
	return syms, nil
}

// parseValuePatternAt parses the value pattern starting at toks[i],
// returning it and the number of tokens consumed (≥1). Enumerations span
// several tokens: { lit , lit , ... }.
func parseValuePatternAt(toks []bToken, i int) (ValuePattern, int, error) {
	if toks[i].kind != bTokLBrace {
		vp, err := parseValuePattern(toks[i])
		return vp, 1, err
	}
	var vals []condition.Value
	j := i + 1
	for {
		if j >= len(toks) {
			return ValuePattern{}, 0, fmt.Errorf("unterminated enumeration {...}")
		}
		switch toks[j].kind {
		case bTokRBrace:
			if len(vals) == 0 {
				return ValuePattern{}, 0, fmt.Errorf("empty enumeration {}")
			}
			return EnumPattern(vals...), j - i + 1, nil
		case bTokComma:
			j++
		case bTokString:
			vals = append(vals, condition.String(toks[j].text))
			j++
		case bTokNumber:
			v, err := condition.ParseNumber(toks[j].text)
			if err != nil {
				return ValuePattern{}, 0, err
			}
			vals = append(vals, v)
			j++
		default:
			return ValuePattern{}, 0, fmt.Errorf("unexpected token %q in enumeration", toks[j].text)
		}
	}
}

func parseValuePattern(t bToken) (ValuePattern, error) {
	switch t.kind {
	case bTokPlaceholder:
		name, kindName, hasKind := strings.Cut(t.text, ":")
		kind := AnyValue
		if hasKind {
			switch kindName {
			case "string", "str":
				kind = StringValue
			case "int":
				kind = IntValue
			case "float":
				kind = FloatValue
			case "num", "numeric":
				kind = NumericValue
			case "any":
				kind = AnyValue
			default:
				return ValuePattern{}, fmt.Errorf("unknown placeholder kind %q", kindName)
			}
		}
		return Placeholder(name, kind), nil
	case bTokString:
		return LiteralPattern(condition.String(t.text)), nil
	case bTokNumber:
		v, err := condition.ParseNumber(t.text)
		if err != nil {
			return ValuePattern{}, err
		}
		return LiteralPattern(v), nil
	default:
		return ValuePattern{}, fmt.Errorf("expected value or placeholder, got %q", t.text)
	}
}
