package ssdl

import (
	"repro/internal/condition"
	"repro/internal/strset"
)

// DefaultFixBudget bounds how many candidate orderings Fix may test. The
// paper notes the fixing overhead is low because only the one plan chosen
// for execution is fixed; the budget is a safety valve for adversarial
// trees.
const DefaultFixBudget = 100000

// Fix reorders the children of the condition's connector nodes until the
// original (pre-closure) grammar accepts the query with the requested
// attributes, per §6.1: plans are generated against the order-insensitive
// closure description, and the mediator "fixes" each source query of the
// chosen plan before sending it. It returns the fixed condition and true,
// or nil and false if no ordering within budget is accepted (which, for a
// query that the closure grammar accepted, only happens when the budget is
// exhausted).
func Fix(orig *Checker, cond condition.Node, attrs strset.Set, budget int) (condition.Node, bool) {
	if budget <= 0 {
		budget = DefaultFixBudget
	}
	var fixed condition.Node
	remaining := budget
	found := orderings(condition.Canonicalize(cond), &remaining, func(cand condition.Node) bool {
		if orig.Supports(cand, attrs) {
			fixed = cand
			return true
		}
		return false
	})
	return fixed, found
}

// orderings enumerates child-order permutations of every connector node in
// the tree, invoking try on each candidate until it returns true or the
// budget runs out. The enumeration is depth-first over the permutation
// product, starting with the original order.
func orderings(n condition.Node, budget *int, try func(condition.Node) bool) bool {
	// Collect the permutable nodes by walking a mutable clone.
	root := n.Clone()
	var conns []connRef
	collectConns(root, &conns)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(conns) {
			if *budget <= 0 {
				return false
			}
			*budget--
			return try(freeze(root))
		}
		kids := conns[i].kids()
		return permuteInPlace(kids, func() bool {
			return rec(i + 1)
		}, budget)
	}
	return rec(0)
}

// freeze rebuilds the working tree's connector spine into fresh nodes,
// sharing the (immutable) leaves. The permutation loop above edits child
// slices in place, which condition nodes do not support once their keys
// are cached — a clone of the mutated spine would carry stale cached
// keys — so each candidate handed to try is rebuilt from scratch.
func freeze(n condition.Node) condition.Node {
	switch t := n.(type) {
	case *condition.And:
		kids := make([]condition.Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = freeze(k)
		}
		return &condition.And{Kids: kids}
	case *condition.Or:
		kids := make([]condition.Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = freeze(k)
		}
		return &condition.Or{Kids: kids}
	default:
		return n
	}
}

type connRef struct {
	and *condition.And
	or  *condition.Or
}

func (c connRef) kids() []condition.Node {
	if c.and != nil {
		return c.and.Kids
	}
	return c.or.Kids
}

func collectConns(n condition.Node, out *[]connRef) {
	switch t := n.(type) {
	case *condition.And:
		*out = append(*out, connRef{and: t})
		for _, k := range t.Kids {
			collectConns(k, out)
		}
	case *condition.Or:
		*out = append(*out, connRef{or: t})
		for _, k := range t.Kids {
			collectConns(k, out)
		}
	}
}

// permuteInPlace runs visit for every permutation of kids (restoring the
// original order afterwards), stopping early when visit returns true or
// the budget is exhausted.
func permuteInPlace(kids []condition.Node, visit func() bool, budget *int) bool {
	n := len(kids)
	if n > 8 {
		// Too many children to permute exhaustively; try only the
		// current order.
		return visit()
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if *budget <= 0 {
			return false
		}
		if k == n {
			return visit()
		}
		for i := k; i < n; i++ {
			kids[k], kids[i] = kids[i], kids[k]
			if rec(k + 1) {
				kids[k], kids[i] = kids[i], kids[k]
				return true
			}
			kids[k], kids[i] = kids[i], kids[k]
		}
		return false
	}
	return rec(0)
}
