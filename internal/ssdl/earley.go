package ssdl

import "repro/internal/strset"

// The recognizer is an Earley parser over the linearized condition token
// stream, augmented with Leo's right-recursion optimization (Leo 1991).
// The paper builds a YACC (LALR) parser from the SSDL description, which
// runs in time linear in the condition size; plain Earley matches that for
// left-recursive and iterative rules but degrades to quadratic on
// right-recursive rules — and SSDL's natural value-list idiom
// (`vlist -> a = $v | a = $v _ vlist`) is right-recursive. Leo items
// short-circuit the completion cascade along deterministic reduction
// paths, restoring linearity. SSDL grammars are epsilon-free (empty rule
// bodies are rejected at construction), which keeps both the completer and
// the Leo memoization simple.

// item is one Earley item: rule g.Rules[rule], dot position into its RHS,
// and the chart column where the item originated.
type item struct {
	rule   int
	dot    int
	origin int
}

// recognizer caches grammar-derived indexes reused across Check calls.
type recognizer struct {
	g *Grammar
	// byLHS is the recognizer's own rule index, built from g.Rules at
	// construction. It is snapshotted rather than read off the grammar so
	// the recognizer stays position-consistent with the rule slice it was
	// built for (a stale index would send item lookups out of bounds) and
	// so concurrent Check calls never lazily mutate the shared grammar.
	byLHS map[string][]int
	// condRules are the rule indices of condition nonterminals, the
	// recognizer's start items.
	condRules []int
}

func newRecognizer(g *Grammar) *recognizer {
	r := &recognizer{g: g, byLHS: make(map[string][]int, len(g.Rules))}
	for i, rule := range g.Rules {
		r.byLHS[rule.LHS] = append(r.byLHS[rule.LHS], i)
	}
	for nt := range g.CondAttrs {
		r.condRules = append(r.condRules, r.byLHS[nt]...)
	}
	return r
}

// leoKey addresses a Leo item: the column and nonterminal of a completed
// constituent.
type leoKey struct {
	col int
	nt  string
}

// run holds the per-parse state.
type run struct {
	g     *Grammar
	byLHS map[string][]int
	chart []map[item]bool
	order [][]item
	// leo memoizes Leo items; present-but-invalid entries mean "no Leo
	// item for this key".
	leo map[leoKey]leoEntry
}

type leoEntry struct {
	top item
	ok  bool
}

// recognize parses the token stream and returns the set of condition
// nonterminals that derive the entire input.
func (r *recognizer) recognize(toks []CTok) strset.Set {
	n := len(toks)
	st := &run{
		g:     r.g,
		byLHS: r.byLHS,
		chart: make([]map[item]bool, n+1),
		order: make([][]item, n+1),
		leo:   make(map[leoKey]leoEntry),
	}
	for i := range st.chart {
		st.chart[i] = make(map[item]bool)
	}
	for _, ri := range r.condRules {
		st.add(0, item{rule: ri, dot: 0, origin: 0})
	}
	for col := 0; col <= n; col++ {
		for qi := 0; qi < len(st.order[col]); qi++ {
			it := st.order[col][qi]
			rule := st.g.Rules[it.rule]
			if it.dot == len(rule.RHS) {
				st.complete(col, it, rule.LHS)
				continue
			}
			sym := rule.RHS[it.dot]
			if sym.Kind == SymNonTerm {
				// Predictor.
				for _, ri := range st.byLHS[sym.Name] {
					st.add(col, item{rule: ri, dot: 0, origin: col})
				}
				continue
			}
			// Scanner.
			if col < n && sym.matchesTok(toks[col]) {
				st.add(col+1, item{rule: it.rule, dot: it.dot + 1, origin: it.origin})
			}
		}
	}
	accepted := strset.New()
	for _, it := range st.order[n] {
		rule := st.g.Rules[it.rule]
		if it.dot == len(rule.RHS) && it.origin == 0 && st.g.IsCondNT(rule.LHS) {
			accepted.Add(rule.LHS)
		}
	}
	return accepted
}

func (s *run) add(col int, it item) {
	if !s.chart[col][it] {
		s.chart[col][it] = true
		s.order[col] = append(s.order[col], it)
	}
}

// complete advances items waiting on lhs in the item's origin column. When
// the origin column has a Leo item for lhs — a deterministic reduction
// path — only its topmost item is added, skipping the whole cascade.
func (s *run) complete(col int, it item, lhs string) {
	if top, ok := s.leoItem(it.origin, lhs, make(map[leoKey]bool)); ok {
		s.add(col, top)
		return
	}
	for _, wait := range s.order[it.origin] {
		wr := s.g.Rules[wait.rule]
		if wait.dot < len(wr.RHS) {
			sym := wr.RHS[wait.dot]
			if sym.Kind == SymNonTerm && sym.Name == lhs {
				s.add(col, item{rule: wait.rule, dot: wait.dot + 1, origin: wait.origin})
			}
		}
	}
}

// leoItem returns the topmost item of the deterministic reduction path for
// nonterminal nt at column col, if one exists: the column must contain
// exactly one item waiting on nt, with nt as the final RHS symbol. The
// result is memoized; visiting guards against unit-rule cycles. Columns
// consulted here are strictly earlier than the current one (epsilon-free
// grammars), so their item lists are final.
func (s *run) leoItem(col int, nt string, visiting map[leoKey]bool) (item, bool) {
	key := leoKey{col: col, nt: nt}
	if e, ok := s.leo[key]; ok {
		return e.top, e.ok
	}
	if visiting[key] {
		return item{}, false
	}
	visiting[key] = true

	var cand item
	waiters := 0
	candFinal := false
	for _, wait := range s.order[col] {
		wr := s.g.Rules[wait.rule]
		if wait.dot >= len(wr.RHS) {
			continue
		}
		sym := wr.RHS[wait.dot]
		if sym.Kind != SymNonTerm || sym.Name != nt {
			continue
		}
		waiters++
		if waiters > 1 {
			break
		}
		cand = wait
		candFinal = wait.dot == len(wr.RHS)-1
	}
	if waiters != 1 || !candFinal {
		s.leo[key] = leoEntry{}
		return item{}, false
	}
	parent := item{rule: cand.rule, dot: cand.dot + 1, origin: cand.origin}
	top := parent
	if up, ok := s.leoItem(cand.origin, s.g.Rules[cand.rule].LHS, visiting); ok {
		top = up
	}
	s.leo[key] = leoEntry{top: top, ok: true}
	return top, true
}
