package ssdl

import (
	"testing"

	"repro/internal/condition"
)

// staleIndexGrammar is a small description whose Rules slice the tests
// edit in place, simulating a caller that assembles or trims a grammar
// without going through AddRule.
const staleIndexGrammar = `source s
attrs id, make, price
key id
byMake -> make = $v:string
byPrice -> price < $v:int
both -> make = $v:string ^ price < $v:int
attributes :: byMake : {id, make}
attributes :: byPrice : {id, price}
attributes :: both : {id, make, price}
`

// TestRecognizerSurvivesRuleSliceEdit is the regression test for a crash
// the qa shrinker exposed: Grammar caches a positional rule index, and a
// recognizer built after Rules was edited in place used the stale index,
// walking off the rule slice (index out of range) inside Earley
// completion. Recognizers now snapshot their own index from Rules at
// construction.
func TestRecognizerSurvivesRuleSliceEdit(t *testing.T) {
	g := MustParse(staleIndexGrammar)
	// Prime the cached index, then drop the last rule behind its back.
	_ = g.RulesFor("both")
	g.Rules = g.Rules[:len(g.Rules)-1]

	c := NewChecker(g)
	cond, err := condition.Parse(`make = "honda" & price < 10000`)
	if err != nil {
		t.Fatal(err)
	}
	// Must not panic; the 3-rule form was dropped, so only the two
	// single-atom forms remain and the conjunction is unsupported.
	got := c.Check(cond)
	if got == nil {
		t.Fatal("Check returned nil set")
	}
	single, err := condition.Parse(`make = "honda"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Check(single); !got.Has("make") || !got.Has("id") {
		t.Errorf("single-atom condition no longer recognized after rule edit: exported attrs %v", got)
	}
}

// TestRulesForReindexesAfterEdit checks the lazy index rebuild on the
// grammar itself: lookups after an in-place edit must never return
// positions outside Rules.
func TestRulesForReindexesAfterEdit(t *testing.T) {
	g := MustParse(staleIndexGrammar)
	_ = g.RulesFor("byMake") // prime the index
	g.Rules = g.Rules[:1]    // keep only byMake's rule

	if idx := g.RulesFor("both"); len(idx) != 0 {
		t.Errorf("RulesFor(both) = %v after its rule was removed", idx)
	}
	for _, lhs := range []string{"byMake", "byPrice", "both"} {
		for _, ri := range g.RulesFor(lhs) {
			if ri >= len(g.Rules) {
				t.Fatalf("RulesFor(%s) returned out-of-range index %d (len %d)", lhs, ri, len(g.Rules))
			}
		}
	}
	// Validate must see the rebuilt index too: byPrice and both now have
	// no rules, which is a validation error, not a panic.
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a grammar whose condition nonterminals lost their rules")
	}
}
