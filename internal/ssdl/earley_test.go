package ssdl

import (
	"strings"
	"testing"

	"repro/internal/condition"
)

// buildChain returns `a = 0 ^ a = 1 ^ ... ^ a = n-1`.
func buildChain(n int) condition.Node {
	kids := make([]condition.Node, n)
	for i := range kids {
		kids[i] = condition.NewAtomic("a", condition.OpEq, condition.Int(int64(i)))
	}
	if n == 1 {
		return kids[0]
	}
	return &condition.And{Kids: kids}
}

func TestLeoRightRecursiveChain(t *testing.T) {
	g := MustParse(`
source R
attrs a
chain -> a = $v:int | a = $v:int ^ chain
attributes :: chain : {a}
`)
	c := NewChecker(g)
	for _, n := range []int{1, 2, 3, 17, 100} {
		if c.Check(buildChain(n)).Empty() {
			t.Errorf("right-recursive chain of %d atoms should be supported", n)
		}
	}
	// Negative: a disjunction chain must not match a conjunction rule.
	or := &condition.Or{Kids: []condition.Node{
		condition.NewAtomic("a", condition.OpEq, condition.Int(1)),
		condition.NewAtomic("a", condition.OpEq, condition.Int(2)),
	}}
	if !c.Check(or).Empty() {
		t.Error("disjunction should not match the conjunction chain")
	}
}

func TestLeoLeftRecursiveChain(t *testing.T) {
	g := MustParse(`
source R
attrs a
chain -> a = $v:int | chain ^ a = $v:int
attributes :: chain : {a}
`)
	c := NewChecker(g)
	for _, n := range []int{1, 2, 3, 40} {
		if c.Check(buildChain(n)).Empty() {
			t.Errorf("left-recursive chain of %d atoms should be supported", n)
		}
	}
}

// Leo must not fire when a column has several items waiting on the same
// nonterminal — ambiguity requires the full completion cascade.
func TestLeoDisabledOnAmbiguousWaiters(t *testing.T) {
	g := MustParse(`
source R
attrs a, b
tail -> b = $v:int
s1 -> a = $v:int ^ tail
s2 -> a = $v:int ^ tail
attributes :: s1 : {a}
attributes :: s2 : {b}
`)
	c := NewChecker(g)
	got := c.Check(condition.MustParse(`a = 1 ^ b = 2`))
	// Both s1 and s2 derive the input; the union must include both
	// attribute sets, which requires completing through both waiters.
	if !got.Has("a") || !got.Has("b") {
		t.Errorf("ambiguous completion lost a parse: %v", got)
	}
}

// Leo must not fire when the waiting item's nonterminal is not in final
// position.
func TestLeoDisabledMidRule(t *testing.T) {
	g := MustParse(`
source R
attrs a, b
mid -> a = $v:int
s1 -> mid ^ b = $v:int
attributes :: s1 : {a, b}
`)
	c := NewChecker(g)
	if c.Check(condition.MustParse(`a = 1 ^ b = 2`)).Empty() {
		t.Error("mid-rule nonterminal should still parse")
	}
}

// Unit-rule cycles must not hang the Leo memoization.
func TestLeoUnitRuleCycle(t *testing.T) {
	g := MustParse(`
source R
attrs a
x -> y | a = $v:int
y -> x
attributes :: x : {a}
`)
	c := NewChecker(g)
	if c.Check(condition.MustParse(`a = 1`)).Empty() {
		t.Error("cyclic unit rules should still accept the base case")
	}
}

// Deep nesting alternates connectors and exercises prediction across many
// nonterminals.
func TestDeepNestedGroups(t *testing.T) {
	g := MustParse(`
source R
attrs a, b
pair -> a = $v:int _ b = $v:int
s1 -> a = $v:int ^ ( pair ) ^ b = $v:int
attributes :: s1 : {a, b}
`)
	c := NewChecker(g)
	cond := condition.MustParse(`a = 1 ^ (a = 2 _ b = 3) ^ b = 4`)
	if c.Check(cond).Empty() {
		t.Error("nested group should be supported")
	}
	// Wrong inner order rejected.
	bad := condition.MustParse(`a = 1 ^ (b = 3 _ a = 2) ^ b = 4`)
	if !c.Check(bad).Empty() {
		t.Error("inner order should matter")
	}
}

// The chain timing shape: 4x the input should cost well under 16x the
// time (quadratic would be 16x); this is a coarse structural guard, the
// precise sweep lives in experiment E7.
func TestLeoChainScalesRoughlyLinearly(t *testing.T) {
	g := MustParse(`
source R
attrs a
chain -> a = $v:int | a = $v:int ^ chain
attributes :: chain : {a}
`)
	work := func(n int) int {
		c := NewChecker(g)
		c.Check(buildChain(n))
		_, _, tokens := c.Stats()
		return tokens
	}
	// Token counts are linear by construction; this asserts the
	// recognizer accepts both sizes without the test timing out, and
	// keeps a written record that the sweep belongs to E7.
	if work(64) <= 0 || work(256) <= 0 {
		t.Error("chain checks failed")
	}
}

func TestRecognizerRejectsGracefully(t *testing.T) {
	c := NewChecker(MustParse(`
source R
attrs a
s1 -> a = $v:int
attributes :: s1 : {a}
`))
	long := buildChain(64)
	if !c.Check(long).Empty() {
		t.Error("64-atom chain should be rejected by a single-atom grammar")
	}
	if !strings.Contains(TokensString(Linearize(long)), "^") {
		t.Error("linearization sanity")
	}
}
