// Package ssdl implements the paper's Simple Source-Description Language
// (§4): a context-free-grammar-based description of the condition
// expressions an Internet source can evaluate and the attributes each
// supported query shape exports. The package provides the description
// parser, a recognizer (the Check function), the commutative-closure
// rewriting of §6.1, and the execution-time query fixer.
package ssdl

import (
	"strings"

	"repro/internal/condition"
)

// CTokKind identifies a linearized condition token.
type CTokKind int

const (
	// CTokAtom is an atomic condition token.
	CTokAtom CTokKind = iota
	// CTokAnd is the conjunction connector ^.
	CTokAnd
	// CTokOr is the disjunction connector _.
	CTokOr
	// CTokLParen opens a nested group.
	CTokLParen
	// CTokRParen closes a nested group.
	CTokRParen
	// CTokTrue is the trivially-true condition used by download queries.
	CTokTrue
)

// CTok is one token of a linearized condition expression.
type CTok struct {
	Kind CTokKind
	Atom *condition.Atomic // set when Kind == CTokAtom
}

// String renders the token in SSDL body syntax.
func (t CTok) String() string {
	switch t.Kind {
	case CTokAtom:
		return t.Atom.String()
	case CTokAnd:
		return "^"
	case CTokOr:
		return "_"
	case CTokLParen:
		return "("
	case CTokRParen:
		return ")"
	case CTokTrue:
		return "true"
	default:
		return "?"
	}
}

// Linearize flattens a condition tree into the token stream the SSDL
// recognizer parses. Nested connector groups are wrapped in parentheses;
// the top level is bare. Callers that want grouping-insensitive matching
// (Check does) canonicalize the tree first, so that parenthesization
// reflects only genuine connector alternation.
func Linearize(n condition.Node) []CTok {
	var out []CTok
	appendNode(&out, n, true)
	return out
}

func appendNode(out *[]CTok, n condition.Node, top bool) {
	switch t := n.(type) {
	case *condition.Atomic:
		*out = append(*out, CTok{Kind: CTokAtom, Atom: t})
	case *condition.Truth:
		*out = append(*out, CTok{Kind: CTokTrue})
	case *condition.And:
		if !top {
			*out = append(*out, CTok{Kind: CTokLParen})
		}
		for i, k := range t.Kids {
			if i > 0 {
				*out = append(*out, CTok{Kind: CTokAnd})
			}
			appendNode(out, k, false)
		}
		if !top {
			*out = append(*out, CTok{Kind: CTokRParen})
		}
	case *condition.Or:
		if !top {
			*out = append(*out, CTok{Kind: CTokLParen})
		}
		for i, k := range t.Kids {
			if i > 0 {
				*out = append(*out, CTok{Kind: CTokOr})
			}
			appendNode(out, k, false)
		}
		if !top {
			*out = append(*out, CTok{Kind: CTokRParen})
		}
	}
}

// TokensString renders a token stream for diagnostics.
func TokensString(toks []CTok) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}
