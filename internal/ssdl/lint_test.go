package ssdl

import (
	"strings"
	"testing"

	"repro/internal/condition"
)

func lintOf(t *testing.T, src string) []string {
	t.Helper()
	return Lint(MustParse(src))
}

func TestLintCleanGrammar(t *testing.T) {
	if w := lintOf(t, example41); len(w) != 0 {
		t.Errorf("clean grammar warned: %v", w)
	}
}

func TestLintUnreachableNonterminal(t *testing.T) {
	w := lintOf(t, `
source R
attrs a, b
orphan -> b = $v
s1 -> a = $v
attributes :: s1 : {a}
`)
	if len(w) != 1 || !strings.Contains(w[0], `"orphan" is unreachable`) {
		t.Errorf("warnings = %v", w)
	}
}

func TestLintUnproductiveRecursion(t *testing.T) {
	w := lintOf(t, `
source R
attrs a
loop -> loop ^ a = $v
s1 -> a = $v | ( loop )
attributes :: s1 : {a}
`)
	found := false
	for _, msg := range w {
		if strings.Contains(msg, `"loop" cannot derive`) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing productivity warning: %v", w)
	}
}

func TestLintFullyParenthesizedCondNT(t *testing.T) {
	w := lintOf(t, `
source R
attrs a
inner -> a = $v _ a = $v
s1 -> ( inner )
attributes :: s1 : {a}
`)
	found := false
	for _, msg := range w {
		if strings.Contains(msg, "parenthesized input") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing parenthesization warning: %v", w)
	}
	// And indeed the grammar can never match a top-level disjunction.
	c := NewChecker(MustParse(`
source R
attrs a
inner -> a = $v _ a = $v
s1 -> ( inner )
attributes :: s1 : {a}
`))
	if !c.Check(condition.MustParse(`a = 1 _ a = 2`)).Empty() {
		t.Error("the lint warning should correspond to a real dead rule")
	}
}

func TestLintEmptyExportSet(t *testing.T) {
	g := MustParse(`
source R
attrs a
s1 -> a = $v
attributes :: s1 : {a}
`)
	g.SetCondAttrs("s1") // drop to empty
	found := false
	for _, msg := range Lint(g) {
		if strings.Contains(msg, "exports no attributes") {
			found = true
		}
	}
	if !found {
		t.Error("missing empty-export warning")
	}
}

func TestLintMixedParenAlternativesOK(t *testing.T) {
	// One bare alternative is enough: no warning.
	w := lintOf(t, `
source R
attrs a
inner -> a = $v _ a = $v
s1 -> ( inner ) | a = $v
attributes :: s1 : {a}
`)
	for _, msg := range w {
		if strings.Contains(msg, "parenthesized input") {
			t.Errorf("spurious warning: %v", w)
		}
	}
}

func TestSingleGroupHelper(t *testing.T) {
	lp, rp := Symbol{Kind: SymLParen}, Symbol{Kind: SymRParen}
	atom := NonTerm("x")
	if !singleGroup([]Symbol{lp, atom, rp}) {
		t.Error("(x) should be a single group")
	}
	if singleGroup([]Symbol{lp, atom, rp, Symbol{Kind: SymAnd}, lp, atom, rp}) {
		t.Error("(x) ^ (y) is not a single group")
	}
}
