package ssdl

import (
	"strings"
	"testing"

	"repro/internal/condition"
	"repro/internal/strset"
)

// example41 is the paper's Example 4.1 source description.
const example41 = `
source R
attrs make, model, year, color, price

s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string ^ color = $c:string
attributes :: s1 : {make, model, year, color}
attributes :: s2 : {make, model, year}
`

func TestParseExample41(t *testing.T) {
	g, err := Parse(example41)
	if err != nil {
		t.Fatal(err)
	}
	if g.Source != "R" {
		t.Errorf("Source = %q", g.Source)
	}
	if len(g.Schema) != 5 {
		t.Errorf("Schema = %v", g.Schema)
	}
	if len(g.Rules) != 2 {
		t.Errorf("Rules = %d", len(g.Rules))
	}
	if !g.IsCondNT("s1") || !g.IsCondNT("s2") || g.IsCondNT("s3") {
		t.Error("condition nonterminals wrong")
	}
	if !g.CondAttrs["s1"].Equal(strset.New("make", "model", "year", "color")) {
		t.Errorf("s1 attrs = %v", g.CondAttrs["s1"])
	}
}

func TestCheckExample41(t *testing.T) {
	c := NewChecker(MustParse(example41))
	tests := []struct {
		cond string
		want strset.Set
	}{
		// Rule (2): the paper's example supported query.
		{`make = "BMW" ^ price < 40000`, strset.New("make", "model", "year", "color")},
		// Rule (3).
		{`make = "BMW" ^ color = "red"`, strset.New("make", "model", "year")},
		// Order matters until the description is rewritten (§6.1).
		{`color = "red" ^ make = "BMW"`, strset.New()},
		{`price < 40000 ^ make = "BMW"`, strset.New()},
		// Partial conditions are not derivable.
		{`make = "BMW"`, strset.New()},
		{`price < 40000`, strset.New()},
		// Wrong operator.
		{`make = "BMW" ^ price <= 40000`, strset.New()},
		// Wrong constant kind for a typed placeholder.
		{`make = 5 ^ price < 40000`, strset.New()},
		{`make = "BMW" ^ price < "cheap"`, strset.New()},
		// Disjunction is not in this grammar at all.
		{`make = "BMW" _ make = "Audi"`, strset.New()},
		// Download is not allowed by this grammar.
		{`true`, strset.New()},
	}
	for _, tc := range tests {
		got := c.Check(condition.MustParse(tc.cond))
		if !got.Equal(tc.want) {
			t.Errorf("Check(%s) = %v, want %v", tc.cond, got, tc.want)
		}
	}
}

func TestCheckSection4Example(t *testing.T) {
	// §4: for the Figure 1 target query with A = {model, year}:
	// SP(n1, A, R) is supported; SP(n2, A, R) is not.
	c := NewChecker(MustParse(example41))
	n1 := condition.MustParse(`make = "BMW" ^ price < 40000`)
	n2 := condition.MustParse(`color = "red" _ color = "black"`)
	a := strset.New("model", "year")
	if !c.Supports(n1, a) {
		t.Error("SP(n1, A, R) should be supported")
	}
	if c.Supports(n2, a) {
		t.Error("SP(n2, A, R) should not be supported")
	}
	// And the single-query plan needs A ∪ Attr(n2) ⊆ Check(n1).
	if !c.Supports(n1, a.Union(strset.New("color"))) {
		t.Error("SP(n1, A ∪ Attr(n2), R) should be supported")
	}
}

func TestCheckCanonicalizationInsensitive(t *testing.T) {
	// Grouping must not affect supportability: ((a ^ b)) == a ^ b.
	g := MustParse(`
source R
attrs a, b, c
s1 -> a = $x ^ b = $y ^ c = $z
attributes :: s1 : {a, b, c}
`)
	c := NewChecker(g)
	flat := condition.MustParse(`a = 1 ^ b = 2 ^ c = 3`)
	nested := condition.MustParse(`a = 1 ^ (b = 2 ^ c = 3)`)
	if c.Check(flat).Empty() {
		t.Fatal("flat conjunction should be supported")
	}
	if !c.Check(nested).Equal(c.Check(flat)) {
		t.Error("nested grouping should check identically to flat")
	}
}

func TestCheckValueListGrammar(t *testing.T) {
	// Example 1.2's form: single-value style/make/price plus a list of
	// values for size, expressed with a recursive rule.
	g := MustParse(`
source cars
attrs style, size, make, price, model

slist -> size = $v:string | size = $v:string _ slist
s1 -> style = $s:string ^ make = $m:string ^ price <= $p:int ^ ( slist )
attributes :: s1 : {style, size, make, price, model}
`)
	c := NewChecker(g)
	ok := condition.MustParse(`style = "sedan" ^ make = "Toyota" ^ price <= 20000 ^ (size = "compact" _ size = "midsize")`)
	if c.Check(ok).Empty() {
		t.Error("value-list query should be supported")
	}
	three := condition.MustParse(`style = "sedan" ^ make = "Toyota" ^ price <= 20000 ^ (size = "a" _ size = "b" _ size = "c")`)
	if c.Check(three).Empty() {
		t.Error("3-element value list should be supported (recursion)")
	}
	// A list over the wrong attribute is rejected.
	bad := condition.MustParse(`style = "sedan" ^ make = "Toyota" ^ price <= 20000 ^ (make = "a" _ make = "b")`)
	if !c.Check(bad).Empty() {
		t.Error("list over wrong attribute should be rejected")
	}
}

func TestCheckSingleDisjunctCollapses(t *testing.T) {
	// A one-element "list" arrives as a bare atom after
	// canonicalization; grammars with a bare-atom alternative accept it.
	g := MustParse(`
source cars
attrs style, size
slist -> size = $v:string | size = $v:string _ slist
s1 -> style = $s:string ^ ( slist )
s2 -> style = $s:string ^ size = $v:string
attributes :: s1 : {style, size}
attributes :: s2 : {style, size}
`)
	c := NewChecker(g)
	one := condition.MustParse(`style = "sedan" ^ size = "compact"`)
	if c.Check(one).Empty() {
		t.Error("single size value should match via s2")
	}
}

func TestCheckDownloadRule(t *testing.T) {
	g := MustParse(`
source R
attrs a, b
s1 -> a = $x
dl -> true
attributes :: s1 : {a, b}
attributes :: dl : {a}
`)
	c := NewChecker(g)
	if got := c.Downloadable(); !got.Equal(strset.New("a")) {
		t.Errorf("Downloadable = %v, want {a}", got)
	}
}

func TestCheckAmbiguityUnionsAttrs(t *testing.T) {
	g := MustParse(`
source R
attrs a, b, c
s1 -> a = $x
s2 -> a = $x
attributes :: s1 : {a, b}
attributes :: s2 : {a, c}
`)
	c := NewChecker(g)
	got := c.Check(condition.MustParse(`a = 1`))
	if !got.Equal(strset.New("a", "b", "c")) {
		t.Errorf("ambiguous parse attrs = %v, want union", got)
	}
}

func TestCheckLiteralPattern(t *testing.T) {
	g := MustParse(`
source R
attrs style, make
s1 -> style = "sedan" ^ make = $m:string
attributes :: s1 : {style, make}
`)
	c := NewChecker(g)
	if c.Check(condition.MustParse(`style = "sedan" ^ make = "BMW"`)).Empty() {
		t.Error("literal sedan should match")
	}
	if !c.Check(condition.MustParse(`style = "coupe" ^ make = "BMW"`)).Empty() {
		t.Error("literal mismatch should be rejected")
	}
}

func TestCheckerMemoization(t *testing.T) {
	c := NewChecker(MustParse(example41))
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	c.Check(cond)
	c.Check(cond)
	c.Check(cond)
	calls, hits, tokens := c.Stats()
	if calls != 3 || hits != 2 {
		t.Errorf("calls=%d hits=%d, want 3/2", calls, hits)
	}
	if tokens == 0 {
		t.Error("tokens should be counted on the miss")
	}
	c.ResetStats()
	if calls, hits, _ := c.Stats(); calls != 0 || hits != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestGrammarValidation(t *testing.T) {
	bad := []string{
		// No condition nonterminals at all.
		`
source R
s1 -> a = $x
`,
		// Condition NT without rules.
		`
source R
s1 -> a = $x
attributes :: s2 : {a}
`,
		// Undefined nonterminal reference.
		`
source R
s1 -> a = $x ^ ( ghost )
attributes :: s1 : {a}
`,
		// Attribute outside declared schema.
		`
source R
attrs a
s1 -> a = $x
attributes :: s1 : {a, zz}
`,
		// Pattern attribute outside declared schema.
		`
source R
attrs a
s1 -> b = $x
attributes :: s1 : {a}
`,
		// Key outside schema.
		`
source R
attrs a
key zz
s1 -> a = $x
attributes :: s1 : {a}
`,
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should fail to parse/validate", i)
		}
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	bad := []string{
		"junk line here",
		"s1 -> ",
		"s1 -> a = ",
		"s1 -> a = $",
		"s1 -> a = $x:mystery",
		`s1 -> a = "unterminated`,
		"s1 -> a ~ $x",
		"attributes :: : {a}",
		"attributes s1 {a}",
		"two words -> a = $x",
	}
	for _, src := range bad {
		if _, err := Parse(src + "\nattributes :: s1 : {a}\n"); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestGrammarStringRoundTrip(t *testing.T) {
	g := MustParse(example41)
	back, err := Parse(g.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", g.String(), err)
	}
	c1 := NewChecker(g)
	c2 := NewChecker(back)
	for _, cond := range []string{
		`make = "BMW" ^ price < 40000`,
		`make = "BMW" ^ color = "red"`,
		`color = "red" ^ make = "BMW"`,
	} {
		n := condition.MustParse(cond)
		if !c1.Check(n).Equal(c2.Check(n)) {
			t.Errorf("round trip changed Check(%s)", cond)
		}
	}
}

func TestCommutativeClosure(t *testing.T) {
	g := MustParse(example41)
	closed := CommutativeClosure(g, 0)
	c := NewChecker(closed)
	// §6.1: after rewriting, (color = "red" ^ make = "BMW") is accepted.
	rev := condition.MustParse(`color = "red" ^ make = "BMW"`)
	if !c.Check(rev).Equal(strset.New("make", "model", "year")) {
		t.Errorf("closure Check(reversed) = %v", c.Check(rev))
	}
	// Each 2-conjunct rule doubles.
	if len(closed.Rules) != 4 {
		t.Errorf("closure has %d rules, want 4", len(closed.Rules))
	}
	// Original still accepted.
	if c.Check(condition.MustParse(`make = "BMW" ^ price < 40000`)).Empty() {
		t.Error("original order must stay accepted")
	}
}

func TestClosurePreservesOriginalLanguage(t *testing.T) {
	g := MustParse(`
source cars
attrs style, size, make, price
slist -> size = $v:string | size = $v:string _ slist
s1 -> style = $s:string ^ make = $m:string ^ price <= $p:int ^ ( slist )
attributes :: s1 : {style, size, make, price}
`)
	closed := CommutativeClosure(g, 0)
	orig := NewChecker(g)
	cc := NewChecker(closed)
	cond := condition.MustParse(`style = "sedan" ^ make = "Toyota" ^ price <= 20000 ^ (size = "a" _ size = "b")`)
	if orig.Check(cond).Empty() || cc.Check(cond).Empty() {
		t.Fatal("both grammars must accept the original order")
	}
	// Reordered conjuncts accepted only by the closure.
	re := condition.MustParse(`(size = "a" _ size = "b") ^ style = "sedan" ^ make = "Toyota" ^ price <= 20000`)
	if !orig.Check(re).Empty() {
		t.Error("original grammar should reject reordering")
	}
	if cc.Check(re).Empty() {
		t.Error("closure grammar should accept reordering")
	}
}

func TestClosureLimitRespected(t *testing.T) {
	g := MustParse(`
source R
attrs a, b, c, d, e, f
s1 -> a = $x ^ b = $x ^ c = $x ^ d = $x ^ e = $x ^ f = $x
attributes :: s1 : {a}
`)
	closed := CommutativeClosure(g, 10) // 6! = 720 > 10: keep original
	if len(closed.Rules) != 1 {
		t.Errorf("limited closure has %d rules, want 1", len(closed.Rules))
	}
	full := CommutativeClosure(g, 0)
	if len(full.Rules) != 720 {
		t.Errorf("full closure has %d rules, want 720", len(full.Rules))
	}
}

func TestFixReordersForOriginalGrammar(t *testing.T) {
	g := MustParse(example41)
	orig := NewChecker(g)
	closed := NewChecker(CommutativeClosure(g, 0))
	attrs := strset.New("model", "year")
	rev := condition.MustParse(`color = "red" ^ make = "BMW"`)
	if !closed.Supports(rev, attrs) {
		t.Fatal("closure should support reversed query")
	}
	fixed, ok := Fix(orig, rev, attrs, 0)
	if !ok {
		t.Fatal("Fix failed")
	}
	if !orig.Supports(fixed, attrs) {
		t.Error("fixed query not supported by original grammar")
	}
	want := condition.MustParse(`make = "BMW" ^ color = "red"`)
	if fixed.Key() != want.Key() {
		t.Errorf("fixed = %s, want %s", fixed.Key(), want.Key())
	}
}

func TestFixIdentityWhenAlreadySupported(t *testing.T) {
	orig := NewChecker(MustParse(example41))
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	fixed, ok := Fix(orig, cond, strset.New("model"), 0)
	if !ok || fixed.Key() != cond.Key() {
		t.Errorf("Fix should return the query unchanged, got %v, %v", fixed, ok)
	}
}

func TestFixNestedReordering(t *testing.T) {
	g := MustParse(`
source cars
attrs style, size, make
slist -> size = $v:string | size = $v:string _ slist
s1 -> style = $s:string ^ make = $m:string ^ ( slist )
attributes :: s1 : {style, size, make}
`)
	orig := NewChecker(g)
	// Both top-level conjuncts and nothing else need reordering.
	re := condition.MustParse(`make = "Toyota" ^ (size = "a" _ size = "b") ^ style = "sedan"`)
	fixed, ok := Fix(orig, re, strset.New("style"), 0)
	if !ok {
		t.Fatal("Fix failed on nested tree")
	}
	if !orig.Supports(fixed, strset.New("style")) {
		t.Error("fixed nested query unsupported")
	}
}

func TestFixFailsWhenUnsupportable(t *testing.T) {
	orig := NewChecker(MustParse(example41))
	cond := condition.MustParse(`year = 1998`)
	if _, ok := Fix(orig, cond, strset.New("model"), 100); ok {
		t.Error("Fix should fail for a genuinely unsupported query")
	}
}

func TestLinearize(t *testing.T) {
	n := condition.MustParse(`a = 1 ^ (b = 2 _ c = 3)`)
	toks := Linearize(condition.Canonicalize(n))
	got := TokensString(toks)
	want := `a = 1 ^ ( b = 2 _ c = 3 )`
	if got != want {
		t.Errorf("Linearize = %q, want %q", got, want)
	}
	if TokensString(Linearize(condition.True())) != "true" {
		t.Error("Linearize(true) wrong")
	}
}

func TestRecognizerLinearScaling(t *testing.T) {
	// Sanity: a 200-conjunct chain parses against a recursive template
	// without blowup.
	g := MustParse(`
source R
attrs a
chain -> a = $x:int | a = $x:int ^ chain
attributes :: chain : {a}
`)
	c := NewChecker(g)
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(" ^ ")
		}
		sb.WriteString("a = 1")
	}
	if c.Check(condition.MustParse(sb.String())).Empty() {
		t.Error("long chain should be supported")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := MustParse(example41)
	cp := g.Clone()
	cp.SetCondAttrs("s1", "make")
	if g.CondAttrs["s1"].Equal(cp.CondAttrs["s1"]) {
		t.Error("clone shares attr sets")
	}
}

func TestDescribeRules(t *testing.T) {
	g := MustParse(example41)
	if !strings.Contains(describeRules(g), "s1 ->") {
		t.Error("describeRules missing rule")
	}
}

func TestEnumValuePattern(t *testing.T) {
	g := MustParse(`
source R
attrs style, make
s1 -> style = {"sedan", "coupe"} ^ make = $m:string
attributes :: s1 : {style, make}
`)
	c := NewChecker(g)
	if c.Check(condition.MustParse(`style = "sedan" ^ make = "BMW"`)).Empty() {
		t.Error("enumerated value should match")
	}
	if c.Check(condition.MustParse(`style = "coupe" ^ make = "BMW"`)).Empty() {
		t.Error("second enumerated value should match")
	}
	if !c.Check(condition.MustParse(`style = "suv" ^ make = "BMW"`)).Empty() {
		t.Error("value outside the dropdown should be rejected")
	}
	// Kind must match too.
	if !c.Check(condition.MustParse(`style = 7 ^ make = "BMW"`)).Empty() {
		t.Error("wrong-kind value should be rejected")
	}
}

func TestEnumNumericPattern(t *testing.T) {
	g := MustParse(`
source R
attrs year
s1 -> year = {1997, 1998, 1999}
attributes :: s1 : {year}
`)
	c := NewChecker(g)
	if c.Check(condition.MustParse(`year = 1998`)).Empty() {
		t.Error("listed year should match")
	}
	if !c.Check(condition.MustParse(`year = 2000`)).Empty() {
		t.Error("unlisted year should be rejected")
	}
}

func TestEnumPatternRoundTrip(t *testing.T) {
	g := MustParse(`
source R
attrs style
s1 -> style = {"sedan", "coupe"}
attributes :: s1 : {style}
`)
	back, err := Parse(g.String())
	if err != nil {
		t.Fatalf("enum grammar does not round trip: %v\n%s", err, g.String())
	}
	probe := condition.MustParse(`style = "coupe"`)
	if !NewChecker(g).Check(probe).Equal(NewChecker(back).Check(probe)) {
		t.Error("Check behaviour changed across round trip")
	}
}

func TestEnumPatternErrors(t *testing.T) {
	bad := []string{
		"s1 -> a = {}\nattributes :: s1 : {a}\n",
		"s1 -> a = {\"x\"\nattributes :: s1 : {a}\n",
		"s1 -> a = {^}\nattributes :: s1 : {a}\n",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}
