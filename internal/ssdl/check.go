package ssdl

import (
	"sync"
	"sync/atomic"

	"repro/internal/condition"
	"repro/internal/strset"
)

// checkShards is the memo's shard count (a power of two so the shard
// index is a mask of the condition's structural hash). A handful of
// shards keeps concurrent planners from serializing on one mutex without
// bloating small checkers.
const checkShards = 16

// checkShard is one memo shard. Lookups take the read lock, so concurrent
// hits — the steady state once the mark module and IPG have warmed the
// memo — never contend.
type checkShard struct {
	mu sync.RWMutex
	m  map[string]strset.Set
}

// Checker implements the paper's Check function for one source: given a
// condition expression it returns the set of attributes the source exports
// when evaluating it, or the empty set when the source cannot evaluate it
// (§4). Checkers memoize results because the mark module and IPG probe the
// same sub-conditions repeatedly; the memo is keyed by the condition's
// cached canonical key and sharded by its structural hash. Checker is safe
// for concurrent use.
type Checker struct {
	g   *Grammar
	rec *recognizer

	shards [checkShards]checkShard

	// sensitivity analysis for plan templating, computed on first use.
	sensOnce sync.Once
	sens     *Sensitivity

	// counters for the E5/E7 experiments
	calls  atomic.Int64
	hits   atomic.Int64
	tokens atomic.Int64
}

// NewChecker builds a Checker for the grammar. The grammar must not be
// mutated afterwards.
func NewChecker(g *Grammar) *Checker {
	c := &Checker{g: g, rec: newRecognizer(g)}
	for i := range c.shards {
		c.shards[i].m = make(map[string]strset.Set)
	}
	return c
}

// Grammar returns the grammar the checker was built from.
func (c *Checker) Grammar() *Grammar { return c.g }

// Check returns the attribute set the source exports when evaluating cond;
// the empty set means the source cannot evaluate cond. The condition is
// canonicalized (once — the canonical form and its key are cached on the
// node), so supportability is insensitive to how the mediator happened to
// parenthesize it (child order remains significant, per §6.1). When
// several condition nonterminals derive the input, the union of their
// attribute sets is returned — the most permissive reading of the paper's
// "may retrieve the attributes associated with sj".
func (c *Checker) Check(cond condition.Node) strset.Set {
	canon := condition.Canonicalize(cond)
	key := canon.Key()
	sh := &c.shards[canon.Hash()&(checkShards-1)]

	c.calls.Add(1)
	sh.mu.RLock()
	got, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return got
	}

	toks := Linearize(canon)
	accepted := c.rec.recognize(toks)
	attrs := strset.New()
	for nt := range accepted {
		attrs = attrs.Union(c.g.CondAttrs[nt])
	}
	c.tokens.Add(int64(len(toks)))

	// Binding-pattern gate: a source with required input attributes only
	// answers conditions that bind every one of them by equality. The
	// verdict is a function of the condition alone, so it folds into the
	// memoized value; in particular the download query `true` binds
	// nothing and is refused outright when anything is required.
	if !attrs.Empty() && !bindsRequired(canon, c.g.Required) {
		attrs = strset.New()
	}

	sh.mu.Lock()
	if prev, raced := sh.m[key]; raced {
		// Another goroutine parsed the same condition first; keep one
		// value so callers can compare sets by identity if they like.
		attrs = prev
	} else {
		sh.m[key] = attrs
	}
	sh.mu.Unlock()
	return attrs
}

// bindsRequired reports whether the condition binds every required
// attribute. An attribute is bound when evaluating the condition pins it
// to concrete value(s): an equality atom binds its attribute, a
// conjunction binds what any child binds, and a disjunction binds only
// what EVERY branch binds (a tuple may satisfy either branch, so an
// attribute bound in just one branch is unconstrained in the other).
func bindsRequired(cond condition.Node, required []string) bool {
	for _, a := range required {
		if !bindsAttr(cond, a) {
			return false
		}
	}
	return true
}

func bindsAttr(cond condition.Node, attr string) bool {
	switch n := cond.(type) {
	case *condition.Atomic:
		return n.Attr == attr && n.Op == condition.OpEq
	case *condition.And:
		for _, k := range n.Kids {
			if bindsAttr(k, attr) {
				return true
			}
		}
		return false
	case *condition.Or:
		for _, k := range n.Kids {
			if !bindsAttr(k, attr) {
				return false
			}
		}
		return len(n.Kids) > 0
	default: // Truth and anything unknown bind nothing.
		return false
	}
}

// Sensitivity returns the grammar's value-position sensitivity analysis,
// computed once on first use (the grammar is immutable after NewChecker).
func (c *Checker) Sensitivity() *Sensitivity {
	c.sensOnce.Do(func() { c.sens = AnalyzeSensitivity(c.g) })
	return c.sens
}

// Supports reports whether the source query SP(cond, attrs, R) is
// supported: cond is derivable and attrs ⊆ Check(cond, R).
func (c *Checker) Supports(cond condition.Node, attrs strset.Set) bool {
	return attrs.SubsetOf(c.Check(cond))
}

// Downloadable returns the attribute set exported by the download query
// SP(true, A, R), empty when downloading is not allowed (§5.3 lines
// 11-12).
func (c *Checker) Downloadable() strset.Set {
	return c.Check(condition.True())
}

// Stats reports the checker's call counters: total Check calls, cache
// hits, and total tokens parsed (cache misses only).
func (c *Checker) Stats() (calls, hits, tokens int) {
	return int(c.calls.Load()), int(c.hits.Load()), int(c.tokens.Load())
}

// ResetStats zeroes the call counters (the memo cache is kept).
func (c *Checker) ResetStats() {
	c.calls.Store(0)
	c.hits.Store(0)
	c.tokens.Store(0)
}
