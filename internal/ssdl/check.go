package ssdl

import (
	"sync"

	"repro/internal/condition"
	"repro/internal/strset"
)

// Checker implements the paper's Check function for one source: given a
// condition expression it returns the set of attributes the source exports
// when evaluating it, or the empty set when the source cannot evaluate it
// (§4). Checkers memoize results because the mark module and IPG probe the
// same sub-conditions repeatedly. Checker is safe for concurrent use.
type Checker struct {
	g   *Grammar
	rec *recognizer

	mu    sync.Mutex
	cache map[string]strset.Set

	// counters for the E5/E7 experiments
	calls  int
	hits   int
	tokens int
}

// NewChecker builds a Checker for the grammar. The grammar must not be
// mutated afterwards.
func NewChecker(g *Grammar) *Checker {
	return &Checker{g: g, rec: newRecognizer(g), cache: make(map[string]strset.Set)}
}

// Grammar returns the grammar the checker was built from.
func (c *Checker) Grammar() *Grammar { return c.g }

// Check returns the attribute set the source exports when evaluating cond;
// the empty set means the source cannot evaluate cond. The condition is
// canonicalized first, so supportability is insensitive to how the
// mediator happened to parenthesize it (child order remains significant,
// per §6.1). When several condition nonterminals derive the input, the
// union of their attribute sets is returned — the most permissive reading
// of the paper's "may retrieve the attributes associated with sj".
func (c *Checker) Check(cond condition.Node) strset.Set {
	key := condition.Canonicalize(cond).Key()
	c.mu.Lock()
	c.calls++
	if got, ok := c.cache[key]; ok {
		c.hits++
		c.mu.Unlock()
		return got
	}
	c.mu.Unlock()

	toks := Linearize(condition.Canonicalize(cond))
	accepted := c.rec.recognize(toks)
	attrs := strset.New()
	for nt := range accepted {
		attrs = attrs.Union(c.g.CondAttrs[nt])
	}

	c.mu.Lock()
	c.tokens += len(toks)
	c.cache[key] = attrs
	c.mu.Unlock()
	return attrs
}

// Supports reports whether the source query SP(cond, attrs, R) is
// supported: cond is derivable and attrs ⊆ Check(cond, R).
func (c *Checker) Supports(cond condition.Node, attrs strset.Set) bool {
	return attrs.SubsetOf(c.Check(cond))
}

// Downloadable returns the attribute set exported by the download query
// SP(true, A, R), empty when downloading is not allowed (§5.3 lines
// 11-12).
func (c *Checker) Downloadable() strset.Set {
	return c.Check(condition.True())
}

// Stats reports the checker's call counters: total Check calls, cache
// hits, and total tokens parsed (cache misses only).
func (c *Checker) Stats() (calls, hits, tokens int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.hits, c.tokens
}

// ResetStats zeroes the call counters (the memo cache is kept).
func (c *Checker) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls, c.hits, c.tokens = 0, 0, 0
}
