package ssdl

import (
	"testing"

	"repro/internal/condition"
)

// FuzzParseSSDL checks the description parser never panics, and that
// every accepted description validates, renders, and re-parses to a
// grammar with identical Check behaviour on a probe query.
func FuzzParseSSDL(f *testing.F) {
	seeds := []string{
		example41,
		"source R\nattrs a\ns1 -> a = $v\nattributes :: s1 : {a}\n",
		"s1 -> a = $v:int ^ b = $v:string | a = $v:int\nattributes :: s1 : {a, b}\n",
		"slist -> a = $v _ slist | a = $v\nattributes :: slist : {a}\n",
		"s1 -> ( s2 )\ns2 -> a = $v _ b = $v\nattributes :: s1 : {a}\n",
		"dl -> true\nattributes :: dl : {a}\n",
		"# comment only\ns1 -> a = 5\nattributes :: s1 : {a}\n",
		"s1 -> a contains \"x\"\nattributes :: s1 : {a}\n",
		"key k\nattrs k, a\ns1 -> a = $v\nattributes :: s1 : {k, a}\n",
		"s1 ->\n",
		"attributes :: : {}\n",
		"source\n",
		"s1 -> a = $v:mystery\nattributes :: s1 : {a}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	probe := condition.MustParse(`a = 1`)
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted description fails validation: %v\n%s", err, src)
		}
		back, err := Parse(g.String())
		if err != nil {
			t.Fatalf("rendering does not re-parse: %v\n%s", err, g.String())
		}
		a := NewChecker(g).Check(probe)
		b := NewChecker(back).Check(probe)
		if !a.Equal(b) {
			t.Fatalf("Check behaviour changed across render round trip: %v vs %v", a, b)
		}
	})
}

// FuzzCheck drives the recognizer with arbitrary conditions against a
// fixed small grammar: it must never panic and must stay consistent with
// a second run (determinism).
func FuzzCheck(f *testing.F) {
	seeds := []string{
		`make = "BMW" ^ price < 40000`,
		`make = "BMW" _ make = "Audi"`,
		`price < 40000`,
		`make = "BMW" ^ (color = "red" _ color = "blue")`,
		`true`,
		`a = 1 ^ a = 1 ^ a = 1 ^ a = 1`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g := MustParse(example41)
	f.Fuzz(func(t *testing.T, src string) {
		cond, err := condition.Parse(src)
		if err != nil {
			return
		}
		c1 := NewChecker(g).Check(cond)
		c2 := NewChecker(g).Check(cond)
		if !c1.Equal(c2) {
			t.Fatalf("nondeterministic Check for %q: %v vs %v", src, c1, c2)
		}
	})
}
