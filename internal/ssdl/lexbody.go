package ssdl

import (
	"fmt"
	"strings"
	"unicode"
)

type bTokKind int

const (
	bTokIdent bTokKind = iota
	bTokOp
	bTokNumber
	bTokString
	bTokPlaceholder
	bTokAnd
	bTokOr
	bTokLParen
	bTokRParen
	bTokTrue
	bTokLBrace
	bTokRBrace
	bTokComma
)

type bToken struct {
	kind bTokKind
	text string
}

// lexBody tokenizes one SSDL rule-body alternative.
func lexBody(src string) ([]bToken, error) {
	var out []bToken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(':
			out = append(out, bToken{bTokLParen, "("})
			i++
		case c == ')':
			out = append(out, bToken{bTokRParen, ")"})
			i++
		case c == '{':
			out = append(out, bToken{bTokLBrace, "{"})
			i++
		case c == '}':
			out = append(out, bToken{bTokRBrace, "}"})
			i++
		case c == ',':
			out = append(out, bToken{bTokComma, ","})
			i++
		case c == '^':
			out = append(out, bToken{bTokAnd, "^"})
			i++
		case c == '&':
			i++
			if i < len(src) && src[i] == '&' {
				i++
			}
			out = append(out, bToken{bTokAnd, "^"})
		case c == '$':
			start := i
			i++
			for i < len(src) && (isBodyIdent(src[i]) || src[i] == ':') {
				i++
			}
			if i == start+1 {
				return nil, fmt.Errorf("bare $ in rule body")
			}
			out = append(out, bToken{bTokPlaceholder, src[start+1 : i]})
		case c == '"' || c == '\'':
			quote := c
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\\' && i+1 < len(src) {
					i++
					sb.WriteByte(src[i])
					i++
					continue
				}
				if src[i] == quote {
					closed = true
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("unterminated string in rule body")
			}
			out = append(out, bToken{bTokString, sb.String()})
		case c == '=' || c == '!' || c == '<' || c == '>':
			start := i
			for i < len(src) && strings.IndexByte("=!<>", src[i]) >= 0 {
				i++
			}
			out = append(out, bToken{bTokOp, src[start:i]})
		case c == '-' || c == '+' || unicode.IsDigit(rune(c)):
			start := i
			if c == '-' || c == '+' {
				i++
			}
			for i < len(src) && (unicode.IsDigit(rune(src[i])) || src[i] == '.') {
				i++
			}
			// Exponent notation, as in the condition lexer.
			if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
				save := i
				i++
				if i < len(src) && (src[i] == '+' || src[i] == '-') {
					i++
				}
				expDigits := false
				for i < len(src) && unicode.IsDigit(rune(src[i])) {
					expDigits = true
					i++
				}
				if !expDigits {
					i = save
				}
			}
			out = append(out, bToken{bTokNumber, src[start:i]})
		case isBodyIdentStart(c):
			start := i
			for i < len(src) && isBodyIdent(src[i]) {
				i++
			}
			word := src[start:i]
			switch word {
			case "_":
				out = append(out, bToken{bTokOr, "_"})
			case "or", "OR":
				out = append(out, bToken{bTokOr, "_"})
			case "and", "AND":
				out = append(out, bToken{bTokAnd, "^"})
			case "contains":
				out = append(out, bToken{bTokOp, "contains"})
			case "true":
				out = append(out, bToken{bTokTrue, "true"})
			default:
				out = append(out, bToken{bTokIdent, word})
			}
		default:
			return nil, fmt.Errorf("unexpected character %q in rule body", c)
		}
	}
	return out, nil
}

func isBodyIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isBodyIdent(c byte) bool {
	return isBodyIdentStart(c) || ('0' <= c && c <= '9') || c == '.'
}
