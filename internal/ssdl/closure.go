package ssdl

import (
	"fmt"
	"strings"
)

// DefaultClosureLimit bounds how many rules the commutative closure may
// produce per source description before giving up on a rule (leaving that
// rule order-sensitive, which only costs plan opportunities, never
// correctness).
const DefaultClosureLimit = 5000

// maxPermuteSegments caps the segment count a single rule body may have
// and still be permuted (7! = 5040 permutations).
const maxPermuteSegments = 7

// CommutativeClosure implements the source-description rewriting of §6.1:
// instead of firing the commutativity rewrite rule on every target query,
// the SSDL description is expanded once — when the source joins the
// system — so that the order of top-level conjuncts (and disjuncts) in a
// rule body no longer matters. The mediator later "fixes" the one executed
// plan's source queries back to an order the original grammar accepts.
//
// limit caps the total rule count of the result; pass 0 for
// DefaultClosureLimit. Rules whose expansion would exceed the cap are kept
// order-sensitive.
func CommutativeClosure(g *Grammar, limit int) *Grammar {
	if limit <= 0 {
		limit = DefaultClosureLimit
	}
	out := NewGrammar(g.Source)
	out.Schema = append([]string(nil), g.Schema...)
	out.Key = g.Key
	out.Limit = g.Limit
	out.PageSize = g.PageSize
	out.Required = append([]string(nil), g.Required...)
	seen := make(map[string]bool)
	addRule := func(lhs string, rhs []Symbol) {
		r := Rule{LHS: lhs, RHS: rhs}
		k := r.String()
		if seen[k] {
			return
		}
		seen[k] = true
		// Errors are impossible here: bodies come from already-valid
		// rules.
		if err := out.AddRule(lhs, rhs); err != nil {
			panic(fmt.Sprintf("ssdl: closure: %v", err))
		}
	}
	for _, r := range g.Rules {
		segments, conn, ok := splitTopLevel(r.RHS)
		if !ok || len(segments) < 2 || len(segments) > maxPermuteSegments {
			addRule(r.LHS, r.RHS)
			continue
		}
		perms := countPermutations(len(segments))
		if len(out.Rules)+perms > limit {
			addRule(r.LHS, r.RHS)
			continue
		}
		permuteSegments(segments, func(order []int) {
			var rhs []Symbol
			for i, idx := range order {
				if i > 0 {
					rhs = append(rhs, Symbol{Kind: conn})
				}
				rhs = append(rhs, segments[idx]...)
			}
			addRule(r.LHS, rhs)
		})
	}
	for nt, attrs := range g.CondAttrs {
		out.CondAttrs[nt] = attrs.Clone()
	}
	return out
}

// splitTopLevel splits a rule body into segments separated by a single
// connector kind at parenthesis depth 0. It reports failure when the body
// mixes ^ and _ at depth 0 or has unbalanced parentheses.
func splitTopLevel(rhs []Symbol) (segments [][]Symbol, conn SymKind, ok bool) {
	conn = SymKind(-1)
	depth := 0
	var cur []Symbol
	for _, s := range rhs {
		switch s.Kind {
		case SymLParen:
			depth++
			cur = append(cur, s)
		case SymRParen:
			depth--
			if depth < 0 {
				return nil, 0, false
			}
			cur = append(cur, s)
		case SymAnd, SymOr:
			if depth == 0 {
				if conn == SymKind(-1) {
					conn = s.Kind
				} else if conn != s.Kind {
					return nil, 0, false
				}
				if len(cur) == 0 {
					return nil, 0, false
				}
				segments = append(segments, cur)
				cur = nil
				continue
			}
			cur = append(cur, s)
		default:
			cur = append(cur, s)
		}
	}
	if depth != 0 || len(cur) == 0 {
		return nil, 0, false
	}
	segments = append(segments, cur)
	if conn == SymKind(-1) {
		conn = SymAnd // single segment; connector irrelevant
	}
	return segments, conn, true
}

func countPermutations(n int) int {
	p := 1
	for i := 2; i <= n; i++ {
		p *= i
	}
	return p
}

// permuteSegments calls visit with every permutation of indices 0..n-1.
func permuteSegments(segments [][]Symbol, visit func(order []int)) {
	n := len(segments)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			visit(order)
			return
		}
		for i := k; i < n; i++ {
			order[k], order[i] = order[i], order[k]
			rec(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	rec(0)
}

// ClosureInflation reports the rule-count growth of the closure, used by
// the E7 experiment ("by increasing the number of CFG rules ... we only
// increase the complexity of building the parser").
func ClosureInflation(g *Grammar, limit int) (before, after int) {
	return len(g.Rules), len(CommutativeClosure(g, limit).Rules)
}

// describeRules is a debugging helper rendering all rules.
func describeRules(g *Grammar) string {
	var sb strings.Builder
	for _, r := range g.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
