package ssdl

import (
	"math/rand"
	"testing"

	"repro/internal/condition"
	"repro/internal/strset"
)

func relationalFixture() *Checker {
	atoms := StandardAtoms([]StandardAtomSpec{
		{Attr: "a", Numeric: true},
		{Attr: "b", Numeric: true},
		{Attr: "s", Numeric: false},
	})
	g := RelationalGrammar("R", []string{"a", "b", "s"}, "a", atoms, []string{"a", "b", "s"})
	return NewChecker(g)
}

func TestRelationalGrammarAcceptsArbitraryShapes(t *testing.T) {
	c := relationalFixture()
	cases := []string{
		`a = 1`,
		`a = 1 ^ b = 2`,
		`a = 1 _ b = 2`,
		`a = 1 ^ (b = 2 _ s = "x")`,
		`(a = 1 ^ b = 2) _ (a = 3 ^ s contains "q")`,
		`a < 1 ^ (b >= 2 _ (a != 3 ^ s = "z")) ^ b <= 9`,
		`true`,
	}
	for _, src := range cases {
		if c.Check(condition.MustParse(src)).Empty() {
			t.Errorf("relational grammar rejected %s", src)
		}
	}
}

func TestRelationalGrammarRespectsAtomVocabulary(t *testing.T) {
	c := relationalFixture()
	// `contains` is only defined for the string attribute.
	if !c.Check(condition.MustParse(`a contains "x"`)).Empty() {
		t.Error("contains on numeric attr should be rejected")
	}
	// Unknown attribute.
	if !c.Check(condition.MustParse(`zz = 1`)).Empty() {
		t.Error("unknown attribute should be rejected")
	}
}

func TestRelationalGrammarExports(t *testing.T) {
	c := relationalFixture()
	got := c.Check(condition.MustParse(`a = 1 ^ b = 2`))
	if !got.Equal(strset.New("a", "b", "s")) {
		t.Errorf("exports = %v", got)
	}
}

// Property: the relational grammar accepts every random canonical tree
// over its vocabulary.
func TestRelationalGrammarAcceptsRandomTrees(t *testing.T) {
	c := relationalFixture()
	r := rand.New(rand.NewSource(31))
	attrs := []string{"a", "b"}
	var gen func(depth int) condition.Node
	gen = func(depth int) condition.Node {
		if depth <= 0 || r.Intn(3) == 0 {
			return condition.NewAtomic(attrs[r.Intn(2)], condition.OpEq, condition.Int(int64(r.Intn(5))))
		}
		n := 2 + r.Intn(2)
		kids := make([]condition.Node, n)
		for i := range kids {
			kids[i] = gen(depth - 1)
		}
		if r.Intn(2) == 0 {
			return &condition.And{Kids: kids}
		}
		return &condition.Or{Kids: kids}
	}
	for i := 0; i < 150; i++ {
		n := gen(3)
		if c.Check(n).Empty() {
			t.Fatalf("relational grammar rejected %s", condition.Canonicalize(n).Key())
		}
	}
}

func TestRelationalGrammarValidates(t *testing.T) {
	atoms := StandardAtoms([]StandardAtomSpec{{Attr: "x", Numeric: true}})
	g := RelationalGrammar("R", []string{"x"}, "x", atoms, []string{"x"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Round-trips through the textual form.
	if _, err := Parse(g.String()); err != nil {
		t.Fatalf("textual round trip: %v\n%s", err, g.String())
	}
}
