package ssdl

import (
	"strings"
	"testing"

	"repro/internal/condition"
	"repro/internal/strset"
)

const boundedExample = `
source S
attrs make, model, price
key model
limit 10
paged 5
require make

s1 -> make = $m
s2 -> make = $m ^ price < $p:num
attributes :: s1 : {make, model, price}
attributes :: s2 : {make, model, price}
`

func TestParseBoundAnnotations(t *testing.T) {
	g := MustParse(boundedExample)
	if g.Limit != 10 {
		t.Errorf("Limit = %d, want 10", g.Limit)
	}
	if g.PageSize != 5 {
		t.Errorf("PageSize = %d, want 5", g.PageSize)
	}
	if len(g.Required) != 1 || g.Required[0] != "make" {
		t.Errorf("Required = %v, want [make]", g.Required)
	}

	// String must render the annotations so a /describe round-trip
	// preserves them.
	text := g.String()
	for _, want := range []string{"limit 10", "paged 5", "require make"} {
		if !strings.Contains(text, want) {
			t.Errorf("String() missing %q:\n%s", want, text)
		}
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parsing String(): %v", err)
	}
	if back.Limit != g.Limit || back.PageSize != g.PageSize || len(back.Required) != len(g.Required) {
		t.Errorf("round trip lost annotations: limit %d paged %d require %v", back.Limit, back.PageSize, back.Required)
	}

	// Clone and CommutativeClosure must carry the annotations too.
	cl := g.Clone()
	if cl.Limit != 10 || cl.PageSize != 5 || len(cl.Required) != 1 {
		t.Errorf("Clone lost annotations: %+v", cl)
	}
	cc := CommutativeClosure(g, 0)
	if cc.Limit != 10 || cc.PageSize != 5 || len(cc.Required) != 1 {
		t.Errorf("CommutativeClosure lost annotations")
	}
}

// TestParseBoundErrors drives every malformed bound/binding header
// through Parse and asserts the error carries the line position and a
// precise message.
func TestParseBoundErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // all substrings must appear in the error
	}{
		{
			name: "limit zero",
			src:  "source S\nattrs a\nlimit 0\ns1 -> a = $v\nattributes :: s1 : {a}\n",
			want: []string{"ssdl: line 3:", "limit 0: bound must be at least 1"},
		},
		{
			name: "limit not a number",
			src:  "source S\nattrs a\nlimit ten\ns1 -> a = $v\nattributes :: s1 : {a}\n",
			want: []string{"ssdl: line 3:", `limit wants a positive integer, got "ten"`},
		},
		{
			name: "paged negative",
			src:  "source S\nattrs a\n\npaged -2\ns1 -> a = $v\nattributes :: s1 : {a}\n",
			want: []string{"ssdl: line 4:", "paged -2: bound must be at least 1"},
		},
		{
			name: "require without attributes",
			src:  "source S\nattrs a\nrequire ,\ns1 -> a = $v\nattributes :: s1 : {a}\n",
			want: []string{"ssdl: line 3:", "require line names no attributes"},
		},
		{
			name: "required attribute not in schema",
			src:  "source S\nattrs a\nrequire b\ns1 -> a = $v\nattributes :: s1 : {a}\n",
			want: []string{`required attribute "b" not in schema`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("Parse accepted a malformed description")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q missing %q", err, w)
				}
			}
		})
	}
}

// TestLintBoundWarnings drives the bound/binding lints through a table of
// suspicious-but-legal grammars.
func TestLintBoundWarnings(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "required attribute never equality-bound",
			src: `
source S
attrs a, b
require b
s1 -> a = $v ^ b < $w:num
attributes :: s1 : {a, b}
`,
			want: `required attribute "b" is never bound by an equality atom`,
		},
		{
			name: "paged without key",
			src: `
source S
attrs a
paged 5
s1 -> a = $v
attributes :: s1 : {a}
`,
			want: "paged 5 declared without a key attribute",
		},
		{
			name: "limit tighter than page size",
			src: `
source S
attrs a
key a
limit 3
paged 10
s1 -> a = $v
attributes :: s1 : {a}
`,
			want: "limit 3 is smaller than page size 10",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			found := false
			warnings := Lint(MustParse(tc.src))
			for _, w := range warnings {
				if strings.Contains(w, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("warnings %v missing %q", warnings, tc.want)
			}
		})
	}

	// The clean bounded grammar must not warn.
	if w := Lint(MustParse(boundedExample)); len(w) != 0 {
		t.Errorf("clean bounded grammar warned: %v", w)
	}
}

// TestCheckRequiredBinding exercises the binding-pattern gate: a query is
// supported only when every required attribute is bound by an equality —
// on every branch of a disjunction, since an Or answers rows from all
// branches. The grammar's rules accept every tested shape, so any refusal
// below is the gate's doing, not the condition language's.
func TestCheckRequiredBinding(t *testing.T) {
	gated := MustParse(`
source S
attrs a, b
require a
r1 -> a = $v | a != $v | b < $w:num | a = $v _ b < $w:num | a = $v _ a = $v | dl
dl -> true
attributes :: r1 : {a, b}
attributes :: dl : {a, b}
`)
	open := gated.Clone()
	open.Required = nil

	c, oc := NewChecker(gated), NewChecker(open)
	attrs := strset.New("a", "b")
	cases := []struct {
		cond string
		want bool
	}{
		{`a = 1`, true},
		{`b < 5`, false},         // required `a` unbound
		{`a != 1`, false},        // inequality does not bind
		{`a = 1 _ b < 5`, false}, // one Or branch leaves `a` unbound
		{`a = 1 _ a = 2`, true},  // every Or branch binds
	}
	for _, tc := range cases {
		cond, err := condition.Parse(tc.cond)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.cond, err)
		}
		if got := c.Supports(cond, attrs); got != tc.want {
			t.Errorf("Supports(%s) = %v, want %v", tc.cond, got, tc.want)
		}
		// Sanity: with the requirement lifted the grammar itself accepts
		// every tested shape, so the verdicts above are the gate's.
		if !oc.Supports(cond, attrs) {
			t.Errorf("ungated grammar does not support %s; the gate is not isolated", tc.cond)
		}
	}

	// The download query binds nothing, so a grammar with a required
	// attribute can never be downloadable.
	if !c.Downloadable().Empty() {
		t.Error("grammar with a required attribute reports a downloadable export set")
	}
	if oc.Downloadable().Empty() {
		t.Error("ungated grammar lost its download rule")
	}
}
