package ssdl

import (
	"testing"

	"repro/internal/condition"
	"repro/internal/strset"
)

// enumGrammar pins specific literals: style is a dropdown (enum) and the
// special price 0 unlocks a free-listings rule.
const enumGrammar = `
source S
attrs style, price, model

s1 -> style = {"sedan", "coupe"} ^ price < $p:int
s2 -> price = 0
attributes :: s1 : {style, price, model}
attributes :: s2 : {model}
`

func TestAnalyzeSensitivity(t *testing.T) {
	s := AnalyzeSensitivity(MustParse(enumGrammar))
	if !s.HasConstraints() {
		t.Fatal("enum grammar should have constrained positions")
	}
	if s.ConstrainedSites() != 2 {
		t.Fatalf("ConstrainedSites = %d, want 2", s.ConstrainedSites())
	}
	tests := []struct {
		attr string
		op   condition.Op
		v    condition.Value
		want bool
	}{
		{"style", condition.OpEq, condition.String("sedan"), true},
		{"style", condition.OpEq, condition.String("coupe"), true},
		{"style", condition.OpEq, condition.String("wagon"), false},
		// Same literal at a different position is unconstrained.
		{"model", condition.OpEq, condition.String("sedan"), false},
		{"style", condition.OpNe, condition.String("sedan"), false},
		{"price", condition.OpEq, condition.Int(0), true},
		{"price", condition.OpEq, condition.Int(1), false},
		// Kind must match exactly: enum "0" (int) does not constrain 0.0.
		{"price", condition.OpEq, condition.Float(0), false},
		// Placeholder positions contribute nothing.
		{"price", condition.OpLt, condition.Int(0), false},
	}
	for _, tc := range tests {
		if got := s.Constrained(tc.attr, tc.op, tc.v); got != tc.want {
			t.Errorf("Constrained(%s %s %s) = %v, want %v", tc.attr, tc.op, tc.v, got, tc.want)
		}
	}
}

func TestSensitivityPlaceholderOnlyGrammar(t *testing.T) {
	c := NewChecker(MustParse(example41))
	s := c.Sensitivity()
	if s.HasConstraints() {
		t.Fatalf("placeholder-only grammar reported %d constrained sites", s.ConstrainedSites())
	}
	if c.Sensitivity() != s {
		t.Error("Sensitivity must be computed once and shared")
	}
}

// Skeleton checking: a condition whose constants were lifted to params
// must get the same Check answer as any concrete instance whose constants
// avoid the grammar's sensitive literals — and must NOT satisfy literal
// or enum patterns.
func TestCheckSkeletonMatchesUnconstrainedInstance(t *testing.T) {
	c := NewChecker(MustParse(example41))
	concrete := condition.MustParse(`make = "BMW" ^ price < 40000`)
	p := condition.Parameterize(concrete)
	if got, want := c.Check(p.Skeleton), c.Check(concrete); !got.Equal(want) {
		t.Fatalf("Check(skeleton) = %v, Check(concrete) = %v", got, want)
	}
	if got := c.Check(p.Skeleton); !got.Equal(strset.New("make", "model", "year", "color")) {
		t.Fatalf("Check(skeleton) = %v", got)
	}

	// Enum positions reject params: the skeleton of `style = X ^ price < Y`
	// is not derivable in the enum grammar even though concrete instances
	// with X ∈ {sedan, coupe} are.
	e := NewChecker(MustParse(enumGrammar))
	inEnum := condition.MustParse(`style = "sedan" ^ price < 100`)
	if e.Check(inEnum).Empty() {
		t.Fatal("concrete enum instance should be derivable")
	}
	sk := condition.Parameterize(inEnum).Skeleton
	if got := e.Check(sk); !got.Empty() {
		t.Fatalf("Check(enum skeleton) = %v, want empty", got)
	}
	// And the sensitivity analysis flags exactly the bindings that made
	// the concrete instance differ from the skeleton.
	sens := e.Sensitivity()
	if !sens.Constrained("style", condition.OpEq, condition.String("sedan")) {
		t.Error("style = sedan should be constrained")
	}
	if sens.Constrained("price", condition.OpLt, condition.Int(100)) {
		t.Error("price < $p position should be unconstrained")
	}
}

func TestPlaceholderKindMatchesParam(t *testing.T) {
	tests := []struct {
		k    PlaceholderKind
		elem condition.Kind
		want bool
	}{
		{AnyValue, condition.KindString, true},
		{StringValue, condition.KindString, true},
		{StringValue, condition.KindInt, false},
		{IntValue, condition.KindInt, true},
		{IntValue, condition.KindFloat, false},
		{FloatValue, condition.KindFloat, true},
		{NumericValue, condition.KindInt, true},
		{NumericValue, condition.KindFloat, true},
		{NumericValue, condition.KindString, false},
	}
	for _, tc := range tests {
		p := condition.Param(0, tc.elem)
		if got := Placeholder("v", tc.k).Matches(p); got != tc.want {
			t.Errorf("%s placeholder matches param:%s = %v, want %v", tc.k, tc.elem, got, tc.want)
		}
	}
	// Literal and enum patterns never accept a param, even of the right kind.
	if LiteralPattern(condition.Int(5)).Matches(condition.Param(0, condition.KindInt)) {
		t.Error("literal pattern accepted a param")
	}
	if EnumPattern(condition.String("a")).Matches(condition.Param(0, condition.KindString)) {
		t.Error("enum pattern accepted a param")
	}
}
