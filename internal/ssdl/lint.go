package ssdl

import (
	"fmt"
	"sort"

	"repro/internal/condition"
	"repro/internal/strset"
)

// Lint inspects a grammar for constructs that are legal but almost
// certainly authoring mistakes — the descriptions sources publish are
// hand-written, and a silently unreachable rule means a capability the
// mediator will never use. Validate catches hard errors; Lint returns
// human-readable warnings.
//
// Checks:
//
//   - unreachable nonterminals: rules never derivable from any condition
//     nonterminal;
//   - useless recursion: nonterminals that cannot derive any terminal
//     string (e.g. `x -> x ^ a = $v` with no base case);
//   - parenthesized top-level bodies: a condition nonterminal whose every
//     alternative is fully wrapped in parentheses can never match, because
//     linearization emits no outer parentheses at the top level;
//   - empty export sets: a condition nonterminal exporting no attributes
//     can never support any projection;
//   - unbindable required attributes: a `require a` with no equality atom
//     on `a` anywhere in the rules refuses every query;
//   - paged without a key, and a result bound tighter than the page size.
func Lint(g *Grammar) []string {
	var warnings []string
	byLHS := g.byLHS()

	// Reachability from the condition nonterminals.
	reachable := strset.New()
	var visit func(nt string)
	visit = func(nt string) {
		if reachable.Has(nt) {
			return
		}
		reachable.Add(nt)
		for _, ri := range byLHS[nt] {
			for _, sym := range g.Rules[ri].RHS {
				if sym.Kind == SymNonTerm {
					visit(sym.Name)
				}
			}
		}
	}
	for nt := range g.CondAttrs {
		visit(nt)
	}
	var allNTs []string
	seen := strset.New()
	for _, r := range g.Rules {
		if !seen.Has(r.LHS) {
			seen.Add(r.LHS)
			allNTs = append(allNTs, r.LHS)
		}
	}
	sort.Strings(allNTs)
	for _, nt := range allNTs {
		if !reachable.Has(nt) {
			warnings = append(warnings, fmt.Sprintf("nonterminal %q is unreachable from any condition nonterminal", nt))
		}
	}

	// Productivity: fixed point over "can derive a terminal string".
	productive := strset.New()
	for changed := true; changed; {
		changed = false
		for _, r := range g.Rules {
			if productive.Has(r.LHS) {
				continue
			}
			ok := true
			for _, sym := range r.RHS {
				if sym.Kind == SymNonTerm && !productive.Has(sym.Name) {
					ok = false
					break
				}
			}
			if ok {
				productive.Add(r.LHS)
				changed = true
			}
		}
	}
	for _, nt := range allNTs {
		if reachable.Has(nt) && !productive.Has(nt) {
			warnings = append(warnings, fmt.Sprintf("nonterminal %q cannot derive any condition (recursion without a base case)", nt))
		}
	}

	// Condition nonterminals whose alternatives all start with '(' and
	// end with ')' never match: top-level linearization is unwrapped.
	for _, nt := range g.CondNTs() {
		rules := byLHS[nt]
		if len(rules) == 0 {
			continue
		}
		allWrapped := true
		for _, ri := range rules {
			rhs := g.Rules[ri].RHS
			if len(rhs) < 2 || rhs[0].Kind != SymLParen || rhs[len(rhs)-1].Kind != SymRParen || !singleGroup(rhs) {
				allWrapped = false
				break
			}
		}
		if allWrapped {
			warnings = append(warnings, fmt.Sprintf("condition nonterminal %q only matches parenthesized input, but top-level conditions are linearized without outer parentheses", nt))
		}
	}

	// Empty export sets.
	for _, nt := range g.CondNTs() {
		if g.CondAttrs[nt].Empty() {
			warnings = append(warnings, fmt.Sprintf("condition nonterminal %q exports no attributes; no projection can ever be supported through it", nt))
		}
	}

	// Required attributes the grammar can never bind: if no rule carries
	// an equality atom on the attribute, every condition the grammar
	// derives fails the binding gate and the source answers nothing.
	for _, req := range g.Required {
		bound := false
		for _, r := range g.Rules {
			for _, sym := range r.RHS {
				if sym.Kind == SymAtom && sym.Atom.Attr == req && sym.Atom.Op == condition.OpEq {
					bound = true
				}
			}
		}
		if !bound {
			warnings = append(warnings, fmt.Sprintf("required attribute %q is never bound by an equality atom in any rule; every query will be refused", req))
		}
	}

	// Pagination needs a stable total order for the cursor to be
	// restartable; without a declared key the source cannot promise one.
	if g.PageSize > 0 && g.Key == "" {
		warnings = append(warnings, fmt.Sprintf("paged %d declared without a key attribute; cursors need a key-ordered scan to restart reliably", g.PageSize))
	}

	// A result bound tighter than the page size means the scan always
	// ends inside the first page; pagination buys nothing.
	if g.Limit > 0 && g.PageSize > 0 && g.Limit < g.PageSize {
		warnings = append(warnings, fmt.Sprintf("limit %d is smaller than page size %d; every answer fits in the first page", g.Limit, g.PageSize))
	}
	return warnings
}

// singleGroup reports whether the body is one balanced (...) group — i.e.
// the opening paren at position 0 closes at the final position.
func singleGroup(rhs []Symbol) bool {
	depth := 0
	for i, sym := range rhs {
		switch sym.Kind {
		case SymLParen:
			depth++
		case SymRParen:
			depth--
			if depth == 0 && i != len(rhs)-1 {
				return false
			}
		}
	}
	return depth == 0
}
