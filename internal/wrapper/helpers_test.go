package wrapper

import (
	"context"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/cost"
	"repro/internal/mediator"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/strset"
)

// newTestMediator registers the wrapper as an ordinary source under its
// advertised grammar.
func newTestMediator(t *testing.T, w *Wrapper, est cost.Estimator) *mediator.Mediator {
	t.Helper()
	med := mediator.New(cost.Model{K1: 5, K2: 1, Est: est})
	// The relational grammar's closure would be huge and is unnecessary:
	// it is already order-insensitive by construction.
	med.ClosureLimit = 1
	if err := med.Register(w.Name(), w, w.Grammar()); err != nil {
		t.Fatal(err)
	}
	return med
}

// naivePlanner is a minimal full-pushdown planner local to the tests (the
// real one lives in internal/baseline; importing it here would create an
// import cycle risk for none of its value).
type naivePlanner struct{}

func (naivePlanner) Name() string { return "naive" }

func (naivePlanner) Plan(_ context.Context, pc *planner.Context, cond condition.Node, attrs []string) (plan.Plan, *planner.Metrics, error) {
	start := time.Now()
	m := &planner.Metrics{CTs: 1, PlansConsidered: 1}
	defer func() { m.Duration = time.Since(start) }()
	if pc.Checker.Supports(cond, strset.New(attrs...)) {
		return plan.NewSourceQuery(pc.Source, cond, attrs), m, nil
	}
	return nil, m, planner.ErrInfeasible
}
