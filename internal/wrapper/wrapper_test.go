package wrapper

import (
	"context"
	"errors"
	"testing"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

func limitedSource(t *testing.T) (*source.Local, *ssdl.Grammar, *relation.Relation) {
	t.Helper()
	g := ssdl.MustParse(`
source cars
attrs make, model, color, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string ^ color = $c:string
attributes :: s1 : {make, model, color, price}
attributes :: s2 : {make, model, color, price}
`)
	s := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "color", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	rows := []struct {
		make, model, color string
		price              int64
	}{
		{"BMW", "328i", "red", 35000},
		{"BMW", "M5", "black", 70000},
		{"Toyota", "Camry", "red", 19000},
		{"Toyota", "Corolla", "blue", 14000},
	}
	for _, row := range rows {
		if err := r.AppendValues(
			condition.String(row.make), condition.String(row.model),
			condition.String(row.color), condition.Int(row.price)); err != nil {
			t.Fatal(err)
		}
	}
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	return src, g, r
}

func wrap(t *testing.T) (*Wrapper, *source.Local, *relation.Relation) {
	t.Helper()
	src, g, r := limitedSource(t)
	est := cost.NewOracleEstimator(map[string]*relation.Relation{"cars": r})
	w, err := New(src, g, core.New(), cost.Model{K1: 5, K2: 1, Est: est})
	if err != nil {
		t.Fatal(err)
	}
	return w, src, r
}

func TestWrapperAnswersUnsupportedShapes(t *testing.T) {
	w, src, r := wrap(t)
	// The raw source rejects this disjunctive query...
	cond := condition.MustParse(`(make = "BMW" ^ price < 40000) _ (make = "Toyota" ^ color = "red")`)
	if _, err := src.Query(context.Background(), cond, []string{"model"}); err == nil {
		t.Fatal("raw source should reject the disjunction")
	}
	// ...but the wrapper answers it, correctly.
	got, err := w.Query(context.Background(), cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := r.Select(cond)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Project([]string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("wrapper answer %d rows, want %d", got.Len(), want.Len())
	}
}

func TestWrapperPreservesColumnOrder(t *testing.T) {
	w, _, _ := wrap(t)
	got, err := w.Query(context.Background(), condition.MustParse(`make = "BMW" ^ price < 40000`), []string{"price", "model"})
	if err != nil {
		t.Fatal(err)
	}
	names := got.Schema().Names()
	if names[0] != "price" || names[1] != "model" {
		t.Errorf("column order = %v", names)
	}
}

func TestWrapperHonestAboutInfeasible(t *testing.T) {
	w, _, _ := wrap(t)
	// No rule constrains price alone and downloading is not allowed.
	_, err := w.Query(context.Background(), condition.MustParse(`price < 20000`), []string{"model"})
	if !errors.Is(err, planner.ErrInfeasible) {
		t.Errorf("err = %v, want wrapped ErrInfeasible", err)
	}
}

func TestWrapperAdvertisedGrammar(t *testing.T) {
	w, _, _ := wrap(t)
	adv := ssdl.NewChecker(w.Grammar())
	// The advertised description accepts arbitrary nesting...
	deep := condition.MustParse(`make = "x" ^ (color = "a" _ (price < 5 ^ model != "m"))`)
	if adv.Check(deep).Empty() {
		t.Error("advertised grammar should accept arbitrary boolean shapes")
	}
	// ...including the trivially-true download form.
	if adv.Downloadable().Empty() {
		t.Error("advertised grammar should accept true")
	}
	if err := w.Grammar().Validate(); err != nil {
		t.Errorf("advertised grammar invalid: %v", err)
	}
}

// A wrapper composes with the mediator stack: register it like a source
// and run the Naive strategy — which needs full capabilities — through it.
func TestWrapperBehindMediator(t *testing.T) {
	w, _, r := wrap(t)
	est := cost.NewOracleEstimator(map[string]*relation.Relation{w.Name(): r})
	med := newTestMediator(t, w, est)

	cond := condition.MustParse(`(make = "BMW" ^ price < 40000) _ (make = "Toyota" ^ color = "red")`)
	// Naive pushes the whole query; the wrapper makes that feasible.
	res, err := med.Answer(context.Background(), naivePlanner{}, w.Name(), cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 { // 328i, Camry
		t.Errorf("rows = %d, want 2", res.Relation.Len())
	}
}

func TestWrapperRequiresSourceName(t *testing.T) {
	g := ssdl.NewGrammar("")
	g.Schema = []string{"a"}
	if err := g.AddRule("s1", []ssdl.Symbol{{Kind: ssdl.SymTrue}}); err != nil {
		t.Fatal(err)
	}
	g.SetCondAttrs("s1", "a")
	if _, err := New(nil, g, core.New(), cost.Model{}); err == nil {
		t.Error("unnamed grammar should fail")
	}
}
