// Package wrapper implements the component §2 of the paper says every
// generic wrapper needs: it exposes a relationally complete select-project
// interface over a capability-limited source by running the paper's own
// plan-generation scheme internally. A Wrapper is itself a plan.Querier,
// so it can stand wherever a source stands — including behind the HTTP
// transport — while accepting any Boolean condition over its attributes.
package wrapper

import (
	"context"
	"fmt"

	"repro/internal/condition"
	"repro/internal/cost"
	"repro/internal/mediator"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/ssdl"
)

// Wrapper answers arbitrary SP queries against a limited source by
// planning each query with a capability-sensitive planner. It implements
// plan.Querier.
type Wrapper struct {
	name    string
	med     *mediator.Mediator
	planner planner.Planner
	grammar *ssdl.Grammar
}

// New wraps a source (any plan.Querier) whose capabilities are described
// by g. The planner generates the internal plans (GenCompact in practice);
// model prices them. The wrapper's own advertised description is the
// relationally complete grammar over the source's schema.
func New(q plan.Querier, g *ssdl.Grammar, p planner.Planner, model cost.Model) (*Wrapper, error) {
	if g.Source == "" {
		return nil, fmt.Errorf("wrapper: grammar has no source name")
	}
	med := mediator.New(model)
	if err := med.Register(g.Source, q, g); err != nil {
		return nil, err
	}
	// The advertised capability: any condition over the attributes the
	// inner source's rules mention, exporting the union of all export
	// sets. Which queries actually succeed still depends on the inner
	// capabilities — the wrapper is complete in *form*, and reports
	// infeasibility honestly otherwise, rather than silently truncating.
	exports := make(map[string]bool)
	for _, set := range g.CondAttrs {
		for a := range set {
			exports[a] = true
		}
	}
	var exportList []string
	for a := range exports {
		exportList = append(exportList, a)
	}
	var specs []ssdl.StandardAtomSpec
	for _, a := range g.Schema {
		specs = append(specs, ssdl.StandardAtomSpec{Attr: a, Numeric: true})
		specs = append(specs, ssdl.StandardAtomSpec{Attr: a, Numeric: false})
	}
	adv := ssdl.RelationalGrammar(g.Source+"_wrapped", g.Schema, g.Key, ssdl.StandardAtoms(specs), exportList)
	return &Wrapper{name: g.Source, med: med, planner: p, grammar: adv}, nil
}

// Name returns the wrapped source's name.
func (w *Wrapper) Name() string { return w.name + "_wrapped" }

// Grammar returns the wrapper's advertised (relationally complete)
// description.
func (w *Wrapper) Grammar() *ssdl.Grammar { return w.grammar }

// Query implements plan.Querier: it plans the query against the inner
// source's real capabilities and executes the plan. Queries with no
// feasible plan fail with planner.ErrInfeasible wrapped in context.
func (w *Wrapper) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	res, err := w.med.Answer(ctx, w.planner, w.name, cond, attrs)
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: %w", w.name, err)
	}
	// Deliver columns in the requested order, as a direct source would.
	return res.Relation.Project(attrs)
}
