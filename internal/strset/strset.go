// Package strset provides a small string-set type used for attribute sets
// throughout the planner: export sets, requested-attribute sets and the
// subset tests of the Check function.
package strset

import (
	"sort"
	"strings"
)

// Set is a set of strings. The zero value is an empty set usable with the
// read-only operations; use New or Add for writes.
type Set map[string]bool

// New builds a set from the given elements.
func New(elems ...string) Set {
	s := make(Set, len(elems))
	for _, e := range elems {
		s[e] = true
	}
	return s
}

// Add inserts elements, allocating if s is nil, and returns the set.
func (s Set) Add(elems ...string) Set {
	if s == nil {
		s = make(Set, len(elems))
	}
	for _, e := range elems {
		s[e] = true
	}
	return s
}

// Has reports membership.
func (s Set) Has(e string) bool { return s[e] }

// Len returns the number of elements.
func (s Set) Len() int { return len(s) }

// Empty reports whether the set has no elements.
func (s Set) Empty() bool { return len(s) == 0 }

// SubsetOf reports whether every element of s is in o.
func (s Set) SubsetOf(o Set) bool {
	for e := range s {
		if !o[e] {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets have the same elements.
func (s Set) Equal(o Set) bool {
	return len(s) == len(o) && s.SubsetOf(o)
}

// Union returns a new set with the elements of both.
func (s Set) Union(o Set) Set {
	out := make(Set, len(s)+len(o))
	for e := range s {
		out[e] = true
	}
	for e := range o {
		out[e] = true
	}
	return out
}

// Intersect returns a new set with the common elements.
func (s Set) Intersect(o Set) Set {
	small, big := s, o
	if len(big) < len(small) {
		small, big = big, small
	}
	out := make(Set)
	for e := range small {
		if big[e] {
			out[e] = true
		}
	}
	return out
}

// Minus returns a new set with the elements of s not in o.
func (s Set) Minus(o Set) Set {
	out := make(Set)
	for e := range s {
		if !o[e] {
			out[e] = true
		}
	}
	return out
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for e := range s {
		out[e] = true
	}
	return out
}

// Sorted returns the elements in sorted order.
func (s Set) Sorted() []string {
	out := make([]string, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// String renders the set as {a, b, c}.
func (s Set) String() string {
	return "{" + strings.Join(s.Sorted(), ", ") + "}"
}

// Key returns a canonical encoding usable as a map key.
func (s Set) Key() string { return strings.Join(s.Sorted(), "\x1f") }
