package strset

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New("b", "a", "b")
	if s.Len() != 2 || !s.Has("a") || !s.Has("b") || s.Has("c") {
		t.Errorf("set = %v", s)
	}
	if !reflect.DeepEqual(s.Sorted(), []string{"a", "b"}) {
		t.Errorf("Sorted = %v", s.Sorted())
	}
	if s.String() != "{a, b}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestZeroValueReadable(t *testing.T) {
	var s Set
	if !s.Empty() || s.Has("x") || s.Len() != 0 {
		t.Error("zero set should behave as empty")
	}
	if !s.SubsetOf(New("a")) {
		t.Error("empty set is a subset of everything")
	}
	s2 := s.Add("x")
	if !s2.Has("x") {
		t.Error("Add on nil set should allocate")
	}
}

func TestSubsetEqual(t *testing.T) {
	a := New("x", "y")
	b := New("x", "y", "z")
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("subset relation wrong")
	}
	if !a.Equal(New("y", "x")) || a.Equal(b) {
		t.Error("equality wrong")
	}
}

func TestAlgebra(t *testing.T) {
	a := New("1", "2", "3")
	b := New("3", "4")
	if got := a.Union(b); !got.Equal(New("1", "2", "3", "4")) {
		t.Errorf("union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New("3")) {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(New("1", "2")) {
		t.Errorf("minus = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New("x")
	b := a.Clone()
	b.Add("y")
	if a.Has("y") {
		t.Error("clone shares storage")
	}
}

func TestKeyCanonical(t *testing.T) {
	if New("b", "a").Key() != New("a", "b").Key() {
		t.Error("Key should be order-insensitive")
	}
	if New("a").Key() == New("b").Key() {
		t.Error("distinct sets share a key")
	}
}

// Property: union is commutative and intersect distributes over it on
// random small sets.
func TestAlgebraProperties(t *testing.T) {
	mk := func(xs []uint8) Set {
		s := New()
		for _, x := range xs {
			s.Add(string(rune('a' + x%6)))
		}
		return s
	}
	f := func(xs, ys, zs []uint8) bool {
		a, b, c := mk(xs), mk(ys), mk(zs)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		lhs := a.Intersect(b.Union(c))
		rhs := a.Intersect(b).Union(a.Intersect(c))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
