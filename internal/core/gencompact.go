// Package core implements GenCompact (§6), the paper's primary
// contribution: an efficient capability-sensitive plan generator. The
// rewrite module fires only the distributive rule (§6.1 — commutativity is
// folded into the source description, associativity and copy are subsumed
// by IPG), every CT is converted to canonical form, and the Integrated
// Plan Generator (Algorithm 6.1 with the OR-node processing of Figure 5
// and the AND-node processing of Figure 6) produces the single best plan
// per CT under the linear cost model, using pruning rules PR1-PR3 and an
// exhaustive branch-and-bound Minimum-Cost Set Cover over the pruned
// sub-plan array.
package core

import (
	"context"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/rewrite"
	"repro/internal/strset"
)

// Planner is the GenCompact scheme.
type Planner struct {
	// Rewrite configures the rewrite module; the zero value fires the
	// distributive rule with MaxCTs=DefaultMaxCTs and a 4× atom cap.
	Rewrite rewrite.Config
	// DisablePR1 keeps exploring impure plans even when a feasible pure
	// plan exists (ablation of pruning rule PR1).
	DisablePR1 bool
	// DisablePR2 keeps every sub-plan per child subset instead of only
	// the cheapest (ablation of PR2).
	DisablePR2 bool
	// DisablePR3 skips dominated-sub-plan elimination before set cover
	// (ablation of PR3).
	DisablePR3 bool
	// MaxChildren bounds the connector fan-out for which subsets are
	// enumerated (default 16; wider nodes fall back to whole-node plans
	// and per-child recursion only).
	MaxChildren int
}

// DefaultMaxCTs bounds the distributive closure GenCompact explores.
const DefaultMaxCTs = 48

// New returns a GenCompact planner with the paper's configuration.
func New() *Planner { return &Planner{} }

// Name implements planner.Planner.
func (p *Planner) Name() string {
	switch {
	case p.DisablePR1 || p.DisablePR2 || p.DisablePR3:
		return "GenCompact(ablated)"
	default:
		return "GenCompact"
	}
}

// Plan implements planner.Planner.
func (p *Planner) Plan(ctx context.Context, pc *planner.Context, cond condition.Node, attrs []string) (plan.Plan, *planner.Metrics, error) {
	start := time.Now()
	m := &planner.Metrics{}
	defer func() { m.Duration = time.Since(start) }()
	c0, h0, _ := pc.Checker.Stats()
	defer func() {
		c1, h1, _ := pc.Checker.Stats()
		m.CheckCalls = c1 - c0
		m.CheckMisses = (c1 - c0) - (h1 - h0)
	}()

	cfg := p.Rewrite
	if cfg.Rules == (rewrite.Rules{}) {
		cfg.Rules = rewrite.DistributiveOnly
	}
	if cfg.MaxCTs == 0 {
		cfg.MaxCTs = DefaultMaxCTs
	}
	if cfg.MaxAtoms == 0 {
		cfg.MaxAtoms = 4 * condition.Size(cond)
	}
	maxKids := p.MaxChildren
	if maxKids <= 0 {
		maxKids = 16
	}

	gen := &ipg{
		ctx:     pc,
		metrics: m,
		memo:    make(map[memoKey]*planner.Candidate),
		pr1:     !p.DisablePR1,
		pr2:     !p.DisablePR2,
		pr3:     !p.DisablePR3,
		maxKids: maxKids,
	}

	// plan.rewrite: the rewrite module — distributive closure of the
	// target condition (commutativity lives in the closed description,
	// §6.1).
	_, rsp := obs.Start(ctx, "plan.rewrite")
	cts := rewrite.Closure(cond, cfg)
	rsp.SetInt("cts", int64(len(cts)))
	rsp.End()

	// plan.generate: the Integrated Plan Generator, which folds the mark
	// (Check) and cost modules into the search; its check/cost effort is
	// reported as span attributes.
	gctx, gsp := obs.Start(ctx, "plan.generate")
	var best *planner.Candidate
	seen := make(map[string]bool)
	for _, ct := range cts {
		canon := condition.Canonicalize(ct)
		k := canon.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		m.CTs++
		_, csp := obs.Start(gctx, "plan.generate.ct")
		cand := gen.run(canon, strset.New(attrs...))
		if csp != nil {
			csp.SetAttr("ct", canon.Key())
			if cand != nil {
				csp.SetAttr("cost", formatCost(cand.Cost))
			} else {
				csp.SetAttr("feasible", "false")
			}
			csp.End()
		}
		if cand.Better(best) {
			best = cand
		}
	}
	if gsp != nil {
		c1, h1, _ := pc.Checker.Stats()
		gsp.SetInt("check_calls", int64(c1-c0))
		gsp.SetInt("check_memo_hits", int64(h1-h0))
		gsp.SetInt("generator_calls", int64(m.GeneratorCalls))
		gsp.SetInt("cost_evals", int64(m.PlansConsidered))
		gsp.End()
	}
	if best == nil {
		return nil, m, planner.ErrInfeasible
	}
	return best.Plan, m, nil
}

// formatCost renders a candidate cost for span attributes.
func formatCost(c float64) string {
	return strconv.FormatFloat(c, 'f', 2, 64)
}

// memoKey addresses one memoized sub-query: the condition's cached
// structural key and the sorted attribute set. A struct key avoids
// concatenating the two strings on every probe.
type memoKey struct {
	cond  string
	attrs string
}

// ipg is one Integrated Plan Generator run; results are memoized on
// (condition, attribute set) because the same sub-queries recur across the
// closure's CTs and within subset enumeration.
type ipg struct {
	ctx           *planner.Context
	metrics       *planner.Metrics
	memo          map[memoKey]*planner.Candidate
	pr1, pr2, pr3 bool
	maxKids       int
}

func (g *ipg) candidate(p plan.Plan) *planner.Candidate {
	g.metrics.PlansConsidered++
	return planner.NewCandidate(p, g.ctx.Model)
}

// run is Algorithm 6.1: the best plan for SP(n, A, R), or nil when
// infeasible.
func (g *ipg) run(n condition.Node, attrs strset.Set) *planner.Candidate {
	key := memoKey{cond: n.Key(), attrs: attrs.Key()}
	if got, ok := g.memo[key]; ok {
		return got
	}
	g.metrics.GeneratorCalls++
	out := g.generate(n, attrs)
	g.memo[key] = out
	return out
}

func (g *ipg) generate(n condition.Node, attrs strset.Set) *planner.Candidate {
	attrList := attrs.Sorted()

	// The pure plan; with PR1 it short-circuits all further search.
	var best *planner.Candidate
	if attrs.SubsetOf(g.ctx.Checker.Check(n)) {
		best = g.candidate(plan.NewSourceQuery(g.ctx.Source, n, attrList))
		if g.pr1 {
			return best
		}
	}

	// plan_impure: download the relevant portion of the source.
	if need := attrs.Union(condition.AttrSet(n)); need.SubsetOf(g.ctx.Checker.Downloadable()) {
		dl := plan.NewSourceQuery(g.ctx.Source, condition.True(), need.Sorted())
		if cand := g.candidate(plan.NewSP(n, attrList, dl)); cand.Better(best) {
			best = cand
		}
	}

	switch t := n.(type) {
	case *condition.Or:
		if cand := g.orNode(t, attrs, attrList, best); cand.Better(best) {
			best = cand
		}
	case *condition.And:
		if cand := g.andNode(t, attrs, attrList, best); cand.Better(best) {
			best = cand
		}
	}
	return best
}

// subPlans is the sub-plan array P of Figures 5 and 6, indexed by child
// bitmask. With PR2 each mask keeps only its cheapest plan; the PR2
// ablation keeps them all.
type subPlans struct {
	byMask map[int][]*planner.Candidate
	pure   map[int]bool // masks whose entry includes a pure source query
	pr2    bool
}

func newSubPlans(pr2 bool) *subPlans {
	return &subPlans{byMask: make(map[int][]*planner.Candidate), pure: make(map[int]bool), pr2: pr2}
}

// add records a candidate for the child set mask. markPure tags masks
// whose plan evaluates AND/OR of the set in one supported source query
// (line 12 of Figure 6 needs this distinction).
func (s *subPlans) add(mask int, cand *planner.Candidate, markPure bool) {
	if cand == nil {
		return
	}
	if markPure {
		s.pure[mask] = true
	}
	cur := s.byMask[mask]
	if s.pr2 {
		if len(cur) == 0 {
			s.byMask[mask] = []*planner.Candidate{cand}
		} else if cand.Cost < cur[0].Cost {
			cur[0] = cand
		}
		return
	}
	s.byMask[mask] = append(cur, cand)
}

func (s *subPlans) get(mask int) *planner.Candidate {
	cur := s.byMask[mask]
	if len(cur) == 0 {
		return nil
	}
	best := cur[0]
	for _, c := range cur[1:] {
		if c.Cost < best.Cost {
			best = c
		}
	}
	return best
}

// hasPureSuperset reports whether some recorded pure entry covers a
// superset of mask (PR1 when equal, PR3 when strict — line 12, Figure 6).
func (s *subPlans) hasPureSuperset(mask int) bool {
	for m := range s.pure {
		if m&mask == mask {
			return true
		}
	}
	return false
}

// entry is one MCSC input: a child set and a priced plan covering it.
type entry struct {
	mask int
	cand *planner.Candidate
}

// entries flattens the array, applying PR3 domination pruning when
// enabled: an entry is dropped when another covers a superset of its
// children at no greater cost. Masks are visited in ascending order so
// that tie-breaking between equal-cost sub-plans — here and in the MCSC
// ordering downstream — is deterministic across runs; the qa harness
// relies on identical seeds reproducing identical plans.
func (s *subPlans) entries(pr3 bool) []entry {
	masks := make([]int, 0, len(s.byMask))
	for mask := range s.byMask {
		masks = append(masks, mask)
	}
	sort.Ints(masks)
	var out []entry
	for _, mask := range masks {
		for _, c := range s.byMask[mask] {
			out = append(out, entry{mask: mask, cand: c})
		}
	}
	if !pr3 {
		return out
	}
	kept := out[:0]
	for i, e := range out {
		dominated := false
		for j, o := range out {
			if i == j {
				continue
			}
			strictlyBigger := o.mask&e.mask == e.mask && o.mask != e.mask
			cheaperSame := o.mask == e.mask && (o.cand.Cost < e.cand.Cost || (o.cand.Cost == e.cand.Cost && j < i))
			if (strictlyBigger && o.cand.Cost <= e.cand.Cost) || cheaperSame {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, e)
		}
	}
	return kept
}

// orNode is Figure 5: find sub-plans for subsets of the OR node's
// children, then choose the cheapest set cover, combining by union.
func (g *ipg) orNode(n *condition.Or, attrs strset.Set, attrList []string, bound *planner.Candidate) *planner.Candidate {
	kids := n.Kids
	if len(kids) > g.maxKids {
		return nil
	}
	P := newSubPlans(g.pr2)
	full := 1<<len(kids) - 1

	// Step 1, lines 3-5: pure sub-plans for every nonempty subset.
	for mask := 1; mask <= full; mask++ {
		orCond := buildConn(false, kids, mask)
		if attrs.SubsetOf(g.ctx.Checker.Check(orCond)) {
			P.add(mask, g.candidate(plan.NewSourceQuery(g.ctx.Source, orCond, attrList)), true)
		}
	}
	// Lines 6-7: impure sub-plans for single children lacking a pure one
	// (PR1 skips the recursion otherwise).
	for i, kid := range kids {
		mask := 1 << i
		if P.get(mask) != nil && g.pr1 {
			continue
		}
		if cand := g.run(kid, attrs); cand != nil {
			P.add(mask, cand, false)
		}
	}

	// Step 2, lines 8-14: prune dominated sub-plans and solve MCSC.
	entries := P.entries(g.pr3)
	if len(entries) > g.metrics.MaxSubPlans {
		g.metrics.MaxSubPlans = len(entries)
	}
	boundCost := planCostOrInf(bound)
	plans, cost := g.mcsc(entries, full, boundCost)
	if plans == nil {
		return nil
	}
	if len(plans) == 1 {
		return &planner.Candidate{Plan: plans[0], Cost: cost}
	}
	return &planner.Candidate{Plan: &plan.Union{Inputs: plans}, Cost: cost}
}

// andNode is Figure 6: find sub-plans for subsets of the AND node's
// children — including nested plans that evaluate extra children at the
// mediator on a source query's result — then choose the cheapest set
// cover, combining by intersection.
func (g *ipg) andNode(n *condition.And, attrs strset.Set, attrList []string, bound *planner.Candidate) *planner.Candidate {
	kids := n.Kids
	if len(kids) > g.maxKids {
		return nil
	}
	P := newSubPlans(g.pr2)
	full := 1<<len(kids) - 1

	// Step 1, lines 3-9: supported conjunction subsets and their
	// mediator extensions.
	for mask := 1; mask <= full; mask++ {
		andCond := buildConn(true, kids, mask)
		exported := g.ctx.Checker.Check(andCond)
		if !attrs.SubsetOf(exported) {
			continue
		}
		P.add(mask, g.candidate(plan.NewSourceQuery(g.ctx.Source, andCond, attrList)), true)
		// N_add = MaxEval(A_N, n) − N: children evaluable at the
		// mediator from the attributes this source query can export.
		naddMask := 0
		for i, kid := range kids {
			if mask&(1<<i) != 0 {
				continue
			}
			if strset.Set(condition.AttrSet(kid)).SubsetOf(exported) {
				naddMask |= 1 << i
			}
		}
		// Lines 8-9: every nonempty M ⊆ N_add, evaluated locally on the
		// widened source query.
		for m := naddMask; m != 0; m = (m - 1) & naddMask {
			mCond := buildConn(true, kids, m)
			need := attrs.Union(condition.AttrSet(mCond))
			inner := plan.NewSourceQuery(g.ctx.Source, andCond, need.Sorted())
			P.add(mask|m, g.candidate(plan.NewSP(mCond, attrList, inner)), false)
		}
	}

	// Lines 10-13: recursive sub-plans — evaluate one child via IPG,
	// remaining chosen siblings locally on its result.
	for i, kid := range kids {
		for mask := 1; mask <= full; mask++ {
			if mask&(1<<i) == 0 {
				continue
			}
			if (g.pr1 || g.pr3) && P.hasPureSuperset(mask) {
				continue // line 12: PR1 (N''=N') / PR3 (N''⊃N')
			}
			rest := mask &^ (1 << i)
			var restCond condition.Node = condition.True()
			if rest != 0 {
				restCond = buildConn(true, kids, rest)
			}
			need := attrs.Union(condition.AttrSet(restCond))
			sub := g.run(kid, need)
			if sub == nil {
				continue
			}
			P.add(mask, g.candidate(plan.NewSP(restCond, attrList, sub.Plan)), false)
		}
	}

	// Step 2, lines 14-20: prune and solve MCSC, combining by
	// intersection.
	entries := P.entries(g.pr3)
	if len(entries) > g.metrics.MaxSubPlans {
		g.metrics.MaxSubPlans = len(entries)
	}
	boundCost := planCostOrInf(bound)
	plans, cost := g.mcsc(entries, full, boundCost)
	if plans == nil {
		return nil
	}
	if len(plans) == 1 {
		return &planner.Candidate{Plan: plans[0], Cost: cost}
	}
	return &planner.Candidate{Plan: &plan.Intersect{Inputs: plans}, Cost: cost}
}

// mcsc solves Minimum-Cost Set Cover exhaustively over the entries with
// branch-and-bound, as §6.4.2 prescribes (O(2^Q) with Q kept small by the
// pruning rules). It returns the chosen plans and their total cost, or
// (nil, +Inf) when no cover beats the bound.
func (g *ipg) mcsc(entries []entry, full int, bound float64) ([]plan.Plan, float64) {
	// Cheapest-first ordering tightens the bound early.
	sortEntriesByCost(entries)
	// Suffix coverage masks let the search stop when completion is
	// impossible.
	suffix := make([]int, len(entries)+1)
	for i := len(entries) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] | entries[i].mask
	}
	bestCost := bound
	var bestPick []int
	var pick []int
	var dfs func(idx, covered int, cost float64)
	dfs = func(idx, covered int, cost float64) {
		if covered == full {
			if cost < bestCost {
				bestCost = cost
				bestPick = append(bestPick[:0], pick...)
			}
			return
		}
		if idx == len(entries) || cost >= bestCost || covered|suffix[idx] != full {
			return
		}
		g.metrics.MCSCCombos++
		e := entries[idx]
		// Include idx only if it adds coverage.
		if e.mask&^covered != 0 {
			pick = append(pick, idx)
			dfs(idx+1, covered|e.mask, cost+e.cand.Cost)
			pick = pick[:len(pick)-1]
		}
		dfs(idx+1, covered, cost)
	}
	dfs(0, 0, 0)
	if bestPick == nil {
		return nil, bound
	}
	plans := make([]plan.Plan, len(bestPick))
	for i, idx := range bestPick {
		plans[i] = entries[idx].cand.Plan
	}
	return plans, bestCost
}

// sortEntriesByCost orders MCSC input cheapest-first; equal costs break
// by mask so the search (and therefore the chosen cover among equal-cost
// alternatives) is deterministic.
func sortEntriesByCost(entries []entry) {
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].cand.Cost != entries[j].cand.Cost {
			return entries[i].cand.Cost < entries[j].cand.Cost
		}
		return entries[i].mask < entries[j].mask
	})
}

// buildConn assembles the AND/OR of the masked children, preserving child
// order; a single child stands alone.
func buildConn(isAnd bool, kids []condition.Node, mask int) condition.Node {
	var sel []condition.Node
	for i, k := range kids {
		if mask&(1<<i) != 0 {
			sel = append(sel, k.Clone())
		}
	}
	if len(sel) == 1 {
		return sel[0]
	}
	if isAnd {
		return &condition.And{Kids: sel}
	}
	return &condition.Or{Kids: sel}
}

func planCostOrInf(c *planner.Candidate) float64 {
	if c == nil {
		return math.Inf(1)
	}
	return c.Cost
}
