package core
