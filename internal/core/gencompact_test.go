package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/condition"
	"repro/internal/cost"
	"repro/internal/mediator"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

// cars41 is Example 4.1's source with a small inventory.
func cars41(t *testing.T) (*source.Local, *planner.Context) {
	t.Helper()
	g := ssdl.MustParse(`
source R
attrs make, model, year, color, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string ^ color = $c:string
attributes :: s1 : {make, model, year, color}
attributes :: s2 : {make, model, year}
`)
	s := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "year", Kind: condition.KindInt},
		relation.Column{Name: "color", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	rows := []struct {
		make, model string
		year        int64
		color       string
		price       int64
	}{
		{"BMW", "328i", 1998, "red", 35000},
		{"BMW", "528i", 1997, "black", 45000},
		{"BMW", "318i", 1996, "blue", 29000},
		{"Toyota", "Camry", 1998, "red", 19000},
	}
	for _, row := range rows {
		if err := r.AppendValues(
			condition.String(row.make), condition.String(row.model), condition.Int(row.year),
			condition.String(row.color), condition.Int(row.price)); err != nil {
			t.Fatal(err)
		}
	}
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewOracleEstimator(map[string]*relation.Relation{"R": r})
	ctx := &planner.Context{
		Source:  "R",
		Checker: ssdl.NewChecker(ssdl.CommutativeClosure(g, 0)),
		Model:   cost.Model{K1: 10, K2: 1, Est: est},
	}
	return src, ctx
}

// TestSection4Plan reproduces §4's analysis: for the Figure 1 query with
// A = {model, year}, the intersection plan is infeasible but the nested
// plan SP(n2, A, SP(n1, A ∪ Attr(n2), R)) is feasible; GenCompact must
// find it.
func TestSection4Plan(t *testing.T) {
	src, ctx := cars41(t)
	cond := condition.MustParse(`(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")`)
	attrs := []string{"model", "year"}

	p, metrics, err := New().Plan(context.Background(), ctx, cond, attrs)
	if err != nil {
		t.Fatalf("Plan: %v\nmetrics: %+v", err, metrics)
	}
	qs := plan.SourceQueries(p)
	if len(qs) != 1 {
		t.Fatalf("want 1 source query, got %d:\n%s", len(qs), plan.Format(p))
	}
	// The one source query is n1 widened by color.
	if !qs[0].OutAttrs().Has("color") {
		t.Errorf("source query must export color for mediator evaluation: %s", qs[0].Key())
	}
	res, err := plan.Execute(context.Background(), p, plan.SourceMap{"R": src})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 { // only the 328i: BMW, <40000, red
		t.Errorf("result len = %d, want 1:\n%v", res.Len(), res.Tuples())
	}
	if v, _ := res.Tuples()[0].Lookup("model"); v.S != "328i" {
		t.Errorf("model = %v", v)
	}
}

// TestExample61 reproduces Example 6.1: a 3-conjunct query with no pure
// plan, where the best impure plan combines a pure sub-plan for c1 with a
// nested sub-plan for {c2, c3}.
func TestExample61(t *testing.T) {
	g := ssdl.MustParse(`
source R
attrs a, b, c, x
key x
s1 -> a = $v:int
s2 -> b = $v:int
s3 -> c = $v:int
attributes :: s1 : {a, x}
attributes :: s2 : {b, c, x}
attributes :: s3 : {b, c, x}
`)
	s := relation.MustSchema(
		relation.Column{Name: "a", Kind: condition.KindInt},
		relation.Column{Name: "b", Kind: condition.KindInt},
		relation.Column{Name: "c", Kind: condition.KindInt},
		relation.Column{Name: "x", Kind: condition.KindInt},
	)
	r := relation.New(s)
	// c2 (b=1) is much more selective than c3 (c=1).
	for i := 0; i < 100; i++ {
		b := int64(0)
		if i < 5 {
			b = 1
		}
		c := int64(0)
		if i < 60 {
			c = 1
		}
		a := int64(0)
		if i%2 == 0 {
			a = 1
		}
		if err := r.AppendValues(condition.Int(a), condition.Int(b), condition.Int(c), condition.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	est := cost.NewOracleEstimator(map[string]*relation.Relation{"R": r})
	ctx := &planner.Context{
		Source:  "R",
		Checker: ssdl.NewChecker(g),
		Model:   cost.Model{K1: 50, K2: 1, Est: est}, // high k1: fewer queries win
	}
	cond := condition.MustParse(`a = 1 ^ b = 1 ^ c = 1`)
	p, _, err := New().Plan(context.Background(), ctx, cond, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	qs := plan.SourceQueries(p)
	// Plan (3) of Example 6.1: two source queries (c1, and c2 widened to
	// export c's attrs), not three.
	if len(qs) != 2 {
		t.Fatalf("want 2 source queries, got %d:\n%s", len(qs), plan.Format(p))
	}
	conds := map[string]bool{}
	for _, q := range qs {
		conds[q.Cond.Key()] = true
	}
	if !conds[`a = 1`] {
		t.Errorf("expected a pure sub-plan for c1, got %v", conds)
	}
	if !conds[`b = 1`] {
		t.Errorf("expected the nested sub-plan to query c2 (the selective one), got %v", conds)
	}

	// Execution is correct.
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Execute(context.Background(), p, plan.SourceMap{"R": src})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := r.Select(cond)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Project([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Errorf("plan result differs from direct evaluation: %d vs %d tuples", res.Len(), want.Len())
	}
}

// TestExample11Bookstore reproduces Example 1.1's structure: GenCompact
// splits the two-author disjunction into two source queries.
func TestExample11Bookstore(t *testing.T) {
	g := ssdl.MustParse(`
source books
attrs author, title, isbn, price
key isbn
s1 -> author = $a:string
s2 -> title contains $t:string
s3 -> author = $a:string ^ title contains $t:string
attributes :: s1 : {author, title, isbn, price}
attributes :: s2 : {author, title, isbn, price}
attributes :: s3 : {author, title, isbn, price}
`)
	s := relation.MustSchema(
		relation.Column{Name: "author", Kind: condition.KindString},
		relation.Column{Name: "title", Kind: condition.KindString},
		relation.Column{Name: "isbn", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	add := func(author, title, isbn string) {
		if err := r.AppendValues(condition.String(author), condition.String(title), condition.String(isbn), condition.Int(20)); err != nil {
			t.Fatal(err)
		}
	}
	add("Sigmund Freud", "The Interpretation of Dreams", "i1")
	add("Sigmund Freud", "The Ego and the Id", "i2")
	add("Carl Jung", "Memories, Dreams, Reflections", "i3")
	add("Carl Jung", "Man and His Symbols", "i4")
	for i := 0; i < 50; i++ {
		add("Other Author", "Dreams and More Dreams", "x"+string(rune('0'+i%10))+string(rune('a'+i/10)))
	}
	est := cost.NewOracleEstimator(map[string]*relation.Relation{"books": r})
	ctx := &planner.Context{
		Source:  "books",
		Checker: ssdl.NewChecker(ssdl.CommutativeClosure(g, 0)),
		Model:   cost.Model{K1: 1, K2: 1, Est: est},
	}
	cond := condition.MustParse(`(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams"`)
	attrs := []string{"title", "isbn"}
	p, _, err := New().Plan(context.Background(), ctx, cond, attrs)
	if err != nil {
		t.Fatal(err)
	}
	qs := plan.SourceQueries(p)
	if len(qs) != 2 {
		t.Fatalf("want the paper's 2-query plan, got %d queries:\n%s", len(qs), plan.Format(p))
	}
	for _, q := range qs {
		// Each query must be author ∧ title (the narrow s3 shape), not a
		// bare author or title query.
		if condition.Size(q.Cond) != 2 {
			t.Errorf("source query should conjoin author with title: %s", q.Cond.Key())
		}
	}
	// Execution goes through the mediator, which fixes source-query
	// conjunct order back to what the original grammar accepts (§6.1).
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	med := mediator.New(ctx.Model)
	if err := med.Register("books", src, g); err != nil {
		t.Fatal(err)
	}
	fixed, err := med.FixPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Execute(context.Background(), fixed, med)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // Freud's Interpretation + Jung's Memories
		t.Errorf("result len = %d, want 2", res.Len())
	}
	if acc := src.Accounting(); acc.Tuples != 2 {
		t.Errorf("transferred %d tuples, want 2 (capability-sensitive plan is narrow)", acc.Tuples)
	}
}

func TestInfeasibleQuery(t *testing.T) {
	_, ctx := cars41(t)
	// year is not constrainable and download is not allowed.
	_, _, err := New().Plan(context.Background(), ctx, condition.MustParse(`year = 1998`), []string{"model"})
	if !errors.Is(err, planner.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestPurePlanShortCircuit(t *testing.T) {
	_, ctx := cars41(t)
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	p, metrics, err := New().Plan(context.Background(), ctx, cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	qs := plan.SourceQueries(p)
	if len(qs) != 1 || !condition.Equal(qs[0].Cond, cond) {
		t.Errorf("pure plan expected:\n%s", plan.Format(p))
	}
	if metrics.MaxSubPlans != 0 {
		t.Errorf("PR1 should have skipped sub-plan search, MaxSubPlans = %d", metrics.MaxSubPlans)
	}
}

func TestDownloadFallback(t *testing.T) {
	g := ssdl.MustParse(`
source R
attrs a, b
s1 -> a = $v:int
dl -> true
attributes :: s1 : {a}
attributes :: dl : {a, b}
`)
	s := relation.MustSchema(
		relation.Column{Name: "a", Kind: condition.KindInt},
		relation.Column{Name: "b", Kind: condition.KindInt},
	)
	r := relation.New(s)
	for i := 0; i < 10; i++ {
		if err := r.AppendValues(condition.Int(int64(i%3)), condition.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx := &planner.Context{
		Source:  "R",
		Checker: ssdl.NewChecker(g),
		Model:   cost.Model{K1: 1, K2: 1, Est: cost.NewOracleEstimator(map[string]*relation.Relation{"R": r})},
	}
	// b = 5 is only answerable by downloading.
	p, _, err := New().Plan(context.Background(), ctx, condition.MustParse(`b = 5`), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	qs := plan.SourceQueries(p)
	if len(qs) != 1 || !condition.IsTrue(qs[0].Cond) {
		t.Fatalf("want download plan, got:\n%s", plan.Format(p))
	}
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Execute(context.Background(), p, plan.SourceMap{"R": src})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("len = %d, want 1", res.Len())
	}
}

// TestPruningAblationsAgreeOnCost checks PR1/PR2/PR3 never prune the
// optimum: ablated planners must find plans of the same cost.
func TestPruningAblationsAgreeOnCost(t *testing.T) {
	_, ctx := cars41(t)
	conds := []string{
		`(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")`,
		`make = "BMW" ^ price < 40000 ^ color = "red"`,
		`(make = "BMW" ^ color = "red") _ (make = "Toyota" ^ color = "red")`,
		`make = "BMW" ^ (color = "red" _ color = "blue")`,
	}
	for _, cs := range conds {
		cond := condition.MustParse(cs)
		attrs := []string{"model"}
		base, _, err := New().Plan(context.Background(), ctx, cond, attrs)
		if err != nil {
			if errors.Is(err, planner.ErrInfeasible) {
				continue
			}
			t.Fatal(err)
		}
		baseCost := ctx.Model.PlanCost(base)
		for _, abl := range []*Planner{
			{DisablePR1: true},
			{DisablePR2: true},
			{DisablePR3: true},
			{DisablePR1: true, DisablePR2: true, DisablePR3: true},
		} {
			p, _, err := abl.Plan(context.Background(), ctx, cond, attrs)
			if err != nil {
				t.Fatalf("%s ablated: %v", cs, err)
			}
			if got := ctx.Model.PlanCost(p); got != baseCost {
				t.Errorf("%s: ablated cost %v != pruned cost %v\npruned:\n%s\nablated:\n%s",
					cs, got, baseCost, plan.Format(base), plan.Format(p))
			}
		}
	}
}

// TestAblationIncreasesWork verifies the pruning rules actually save work.
func TestAblationIncreasesWork(t *testing.T) {
	_, ctx := cars41(t)
	cond := condition.MustParse(`(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")`)
	_, pruned, err := New().Plan(context.Background(), ctx, cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	_, ablated, err := (&Planner{DisablePR1: true, DisablePR3: true}).Plan(context.Background(), ctx, cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if ablated.PlansConsidered <= pruned.PlansConsidered {
		t.Errorf("ablation should consider more plans: pruned=%d ablated=%d",
			pruned.PlansConsidered, ablated.PlansConsidered)
	}
}

func TestPlannerName(t *testing.T) {
	if New().Name() != "GenCompact" {
		t.Error("name")
	}
	if (&Planner{DisablePR2: true}).Name() != "GenCompact(ablated)" {
		t.Error("ablated name")
	}
}

func TestFeasiblePlansValidate(t *testing.T) {
	src, ctx := cars41(t)
	conds := []string{
		`(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")`,
		`make = "BMW" ^ color = "red"`,
		`(make = "BMW" ^ color = "red") _ (make = "Toyota" ^ price < 20000)`,
	}
	for _, cs := range conds {
		p, _, err := New().Plan(context.Background(), ctx, condition.MustParse(cs), []string{"model"})
		if err != nil {
			continue
		}
		rep, err := plan.Validate(p, plan.CheckerMap{"R": ctx.Checker})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Feasible {
			t.Errorf("%s: generated infeasible plan:\n%s", cs, plan.Format(p))
		}
		_ = src
	}
}

// TestSection4BankPIN reproduces §4's bank example: "a bank may allow the
// retrieval of some attributes of an account given its account number, but
// may refuse to give the account balance unless a PIN number is specified
// in the query condition." Attribute-dependent projection is exactly what
// per-rule export sets express.
func TestSection4BankPIN(t *testing.T) {
	g := ssdl.MustParse(`
source bank
attrs acct, owner, balance, pin
key acct
s1 -> acct = $a:string
s2 -> acct = $a:string ^ pin = $p:string
attributes :: s1 : {acct, owner}
attributes :: s2 : {acct, owner, balance}
`)
	s := relation.MustSchema(
		relation.Column{Name: "acct", Kind: condition.KindString},
		relation.Column{Name: "owner", Kind: condition.KindString},
		relation.Column{Name: "balance", Kind: condition.KindInt},
		relation.Column{Name: "pin", Kind: condition.KindString},
	)
	r := relation.New(s)
	if err := r.AppendValues(
		condition.String("A-1"), condition.String("W. Labio"),
		condition.Int(1234), condition.String("0042")); err != nil {
		t.Fatal(err)
	}
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &planner.Context{
		Source:  "bank",
		Checker: ssdl.NewChecker(ssdl.CommutativeClosure(g, 0)),
		Model:   cost.Model{K1: 1, K2: 1, Est: cost.NewOracleEstimator(map[string]*relation.Relation{"bank": r})},
	}

	// Owner lookup without a PIN: fine.
	p, _, err := New().Plan(context.Background(), ctx, condition.MustParse(`acct = "A-1"`), []string{"owner"})
	if err != nil {
		t.Fatalf("owner lookup: %v", err)
	}
	if res, err := plan.Execute(context.Background(), p, plan.SourceMap{"bank": src}); err != nil || res.Len() != 1 {
		t.Fatalf("owner lookup execution: %v", err)
	}

	// Balance without a PIN: no plan exists — splitting cannot conjure
	// authorization.
	if _, _, err := New().Plan(context.Background(), ctx, condition.MustParse(`acct = "A-1"`), []string{"balance"}); !errors.Is(err, planner.ErrInfeasible) {
		t.Errorf("balance without PIN: err = %v, want ErrInfeasible", err)
	}

	// Balance with the PIN in the condition: allowed.
	p, _, err = New().Plan(context.Background(), ctx, condition.MustParse(`acct = "A-1" ^ pin = "0042"`), []string{"balance"})
	if err != nil {
		t.Fatalf("balance with PIN: %v", err)
	}
	res, err := plan.Execute(context.Background(), p, plan.SourceMap{"bank": src})
	if err != nil || res.Len() != 1 {
		t.Fatalf("balance execution: %v", err)
	}
	if v, _ := res.Tuples()[0].Lookup("balance"); v.I != 1234 {
		t.Errorf("balance = %v", v)
	}
}
