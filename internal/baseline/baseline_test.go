package baseline

import (
	"context"
	"errors"
	"testing"

	"repro/internal/condition"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/ssdl"
)

// bookstore builds Example 1.1's source: author search, title-keyword
// search, or both — but no author disjunctions.
func bookstore(t *testing.T) (*planner.Context, *relation.Relation) {
	t.Helper()
	g := ssdl.MustParse(`
source books
attrs author, title, isbn
key isbn
s1 -> author = $a:string
s2 -> title contains $t:string
s3 -> author = $a:string ^ title contains $t:string
attributes :: s1 : {author, title, isbn}
attributes :: s2 : {author, title, isbn}
attributes :: s3 : {author, title, isbn}
`)
	s := relation.MustSchema(
		relation.Column{Name: "author", Kind: condition.KindString},
		relation.Column{Name: "title", Kind: condition.KindString},
		relation.Column{Name: "isbn", Kind: condition.KindString},
	)
	r := relation.New(s)
	add := func(author, title, isbn string) {
		if err := r.AppendValues(condition.String(author), condition.String(title), condition.String(isbn)); err != nil {
			t.Fatal(err)
		}
	}
	add("Sigmund Freud", "The Interpretation of Dreams", "i1")
	add("Carl Jung", "Memories, Dreams, Reflections", "i2")
	for i := 0; i < 30; i++ {
		add("Someone Else", "A Book of Dreams", string(rune('a'+i%26))+string(rune('0'+i/26)))
	}
	est := cost.NewOracleEstimator(map[string]*relation.Relation{"books": r})
	ctx := &planner.Context{
		Source:  "books",
		Checker: ssdl.NewChecker(ssdl.CommutativeClosure(g, 0)),
		Model:   cost.Model{K1: 1, K2: 1, Est: est},
	}
	return ctx, r
}

var example11Cond = `(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams"`

func TestNaive(t *testing.T) {
	ctx, _ := bookstore(t)
	// The full disjunctive query is unsupported: naive fails (§1: "would
	// try sending the full unsupported query").
	_, _, err := Naive{}.Plan(context.Background(), ctx, condition.MustParse(example11Cond), []string{"isbn"})
	if !errors.Is(err, planner.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	// A directly supported query is passed through whole.
	p, _, err := Naive{}.Plan(context.Background(), ctx, condition.MustParse(`author = "Carl Jung"`), []string{"isbn"})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.SourceQueries(p)) != 1 {
		t.Error("naive should produce exactly one source query")
	}
}

func TestDiscoFailsExample11(t *testing.T) {
	ctx, _ := bookstore(t)
	// §2: "DISCO fails to generate feasible plans for both the example
	// queries of Section 1" (no download rule here).
	_, _, err := Disco{}.Plan(context.Background(), ctx, condition.MustParse(example11Cond), []string{"isbn"})
	if !errors.Is(err, planner.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestDiscoDownloadsWhenAllowed(t *testing.T) {
	g := ssdl.MustParse(`
source R
attrs a, b
s1 -> a = $v:int
dl -> true
attributes :: s1 : {a, b}
attributes :: dl : {a, b}
`)
	s := relation.MustSchema(
		relation.Column{Name: "a", Kind: condition.KindInt},
		relation.Column{Name: "b", Kind: condition.KindInt},
	)
	r := relation.New(s)
	for i := 0; i < 4; i++ {
		if err := r.AppendValues(condition.Int(int64(i%2)), condition.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx := &planner.Context{
		Source:  "R",
		Checker: ssdl.NewChecker(g),
		Model:   cost.Model{K1: 1, K2: 1, Est: cost.NewOracleEstimator(map[string]*relation.Relation{"R": r})},
	}
	// a=1 _ b=2 is not supported whole; DISCO downloads.
	p, _, err := Disco{}.Plan(context.Background(), ctx, condition.MustParse(`a = 1 _ b = 2`), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	qs := plan.SourceQueries(p)
	if len(qs) != 1 || !condition.IsTrue(qs[0].Cond) {
		t.Errorf("DISCO should download:\n%s", plan.Format(p))
	}
}

func TestCNFPushesSupportedClause(t *testing.T) {
	ctx, r := bookstore(t)
	p, _, err := CNF{}.Plan(context.Background(), ctx, condition.MustParse(example11Cond), []string{"isbn"})
	if err != nil {
		t.Fatal(err)
	}
	qs := plan.SourceQueries(p)
	if len(qs) != 1 {
		t.Fatalf("CNF should send one source query, got %d", len(qs))
	}
	// The pushed clause is the title clause; the author disjunction is
	// applied at the mediator, so the source query must export author.
	if condition.Size(qs[0].Cond) != 1 {
		t.Errorf("pushed condition should be the single title clause: %s", qs[0].Cond.Key())
	}
	if !qs[0].OutAttrs().Has("author") {
		t.Errorf("source query must export author for mediator filtering: %v", qs[0].Attrs)
	}
	// The Garlic plan extracts every book matching "dreams" — far more
	// than the 2-query plan's 2 tuples.
	n := int(ctx.Model.Est.ResultSize("books", qs[0].Cond))
	if n != 32 {
		t.Errorf("CNF plan extracts %d tuples, want all 32 dreams books", n)
	}
	_ = r
}

func TestDNFSplitsExample11(t *testing.T) {
	ctx, _ := bookstore(t)
	p, _, err := DNF{}.Plan(context.Background(), ctx, condition.MustParse(example11Cond), []string{"isbn"})
	if err != nil {
		t.Fatal(err)
	}
	qs := plan.SourceQueries(p)
	if len(qs) != 2 {
		t.Fatalf("DNF should send 2 source queries, got %d", len(qs))
	}
	for _, q := range qs {
		if condition.Size(q.Cond) != 2 {
			t.Errorf("each DNF term should be author ∧ title: %s", q.Cond.Key())
		}
	}
}

func TestCNFFallsBackToDownload(t *testing.T) {
	g := ssdl.MustParse(`
source R
attrs a, b
dl -> true
s1 -> a = $v:int ^ b = $v:int
attributes :: dl : {a, b}
attributes :: s1 : {a, b}
`)
	ctx := &planner.Context{
		Source:  "R",
		Checker: ssdl.NewChecker(g),
		Model:   cost.Model{K1: 1, K2: 1, Est: cost.FixedEstimator(1)},
	}
	// No single CNF clause is supported (only the 2-conjunct whole is),
	// so Garlic downloads.
	p, _, err := CNF{}.Plan(context.Background(), ctx, condition.MustParse(`a = 1 _ b = 2`), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	qs := plan.SourceQueries(p)
	if len(qs) != 1 || !condition.IsTrue(qs[0].Cond) {
		t.Errorf("CNF should download:\n%s", plan.Format(p))
	}
}

func TestCNFInfeasibleWithoutDownload(t *testing.T) {
	ctx, _ := bookstore(t)
	// No clause of (isbn = "x") is supported and no download rule.
	_, _, err := CNF{}.Plan(context.Background(), ctx, condition.MustParse(`isbn = "x"`), []string{"isbn"})
	if !errors.Is(err, planner.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestDNFInfeasibleTerm(t *testing.T) {
	ctx, _ := bookstore(t)
	// One term is fine (author), the other (isbn) is not supported; no
	// download: infeasible.
	_, _, err := DNF{}.Plan(context.Background(), ctx, condition.MustParse(`author = "Carl Jung" _ isbn = "i1"`), []string{"isbn"})
	if !errors.Is(err, planner.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestDNFSingleTermCollapses(t *testing.T) {
	ctx, _ := bookstore(t)
	p, _, err := DNF{}.Plan(context.Background(), ctx, condition.MustParse(`author = "Carl Jung" ^ title contains "dreams"`), []string{"isbn"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*plan.SourceQuery); !ok {
		t.Errorf("single-term DNF should be a bare source query, got %T", p)
	}
}

func TestBaselineNames(t *testing.T) {
	for _, tc := range []struct {
		p    planner.Planner
		want string
	}{
		{Naive{}, "Naive"},
		{Disco{}, "DISCO"},
		{CNF{}, "CNF"},
		{DNF{}, "DNF"},
	} {
		if tc.p.Name() != tc.want {
			t.Errorf("name = %q, want %q", tc.p.Name(), tc.want)
		}
	}
}

// All baselines' plans, when feasible, compute the correct answer.
func TestBaselinePlansExecuteCorrectly(t *testing.T) {
	ctx, r := bookstore(t)
	srcs := plan.SourceMap{"books": &oracleSource{rel: r, chk: ctx.Checker}}
	cond := condition.MustParse(example11Cond)
	want, err := r.Select(cond)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := want.Project([]string{"isbn"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []planner.Planner{CNF{}, DNF{}} {
		pl, _, err := p.Plan(context.Background(), ctx, cond, []string{"isbn"})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		got, err := plan.Execute(context.Background(), pl, srcs)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !got.Equal(wantP) {
			t.Errorf("%s: wrong answer (%d tuples, want %d)", p.Name(), got.Len(), wantP.Len())
		}
	}
}

// oracleSource enforces the planning (closure) checker, standing in for a
// mediator-fixed execution path.
type oracleSource struct {
	rel *relation.Relation
	chk *ssdl.Checker
}

func (s *oracleSource) Query(_ context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	sel := s.rel
	if !condition.IsTrue(cond) {
		var err error
		sel, err = s.rel.Select(cond)
		if err != nil {
			return nil, err
		}
	}
	return sel.Project(attrs)
}
