// Package baseline implements the comparator strategies the paper
// discusses: the naive full-pushdown of conventional optimizers, DISCO's
// all-or-nothing rule, Garlic's CNF clause pushdown, and the DNF
// term-per-query strategy (§1, §2). Each is faithful to the paper's
// characterization; where the original system's behaviour is under-
// specified for capability-limited sources, the adaptation is noted on the
// type.
package baseline

import (
	"context"
	"time"

	"repro/internal/condition"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/strset"
)

// Naive sends the entire target query to the source, as systems assuming
// full relational capabilities do; it fails whenever the source cannot
// evaluate the whole condition.
type Naive struct{}

// Name implements planner.Planner.
func (Naive) Name() string { return "Naive" }

// Plan implements planner.Planner.
func (Naive) Plan(_ context.Context, ctx *planner.Context, cond condition.Node, attrs []string) (plan.Plan, *planner.Metrics, error) {
	start := time.Now()
	m := &planner.Metrics{CTs: 1, PlansConsidered: 1}
	defer func() { m.Duration = time.Since(start) }()
	c0, _, _ := ctx.Checker.Stats()
	defer func() { c1, h1, _ := ctx.Checker.Stats(); m.CheckCalls = c1 - c0; m.CheckMisses = c1 - c0 - h1 }()
	if ctx.Checker.Supports(cond, strset.New(attrs...)) {
		return plan.NewSourceQuery(ctx.Source, cond, attrs), m, nil
	}
	return nil, m, planner.ErrInfeasible
}

// Disco models DISCO's strategy: either the source processes the entire
// condition expression, or none of it (a full download with mediator
// evaluation). It never splits the condition (§2).
type Disco struct{}

// Name implements planner.Planner.
func (Disco) Name() string { return "DISCO" }

// Plan implements planner.Planner.
func (Disco) Plan(_ context.Context, ctx *planner.Context, cond condition.Node, attrs []string) (plan.Plan, *planner.Metrics, error) {
	start := time.Now()
	m := &planner.Metrics{CTs: 1}
	defer func() { m.Duration = time.Since(start) }()
	a := strset.New(attrs...)
	m.PlansConsidered++
	if ctx.Checker.Supports(cond, a) {
		return plan.NewSourceQuery(ctx.Source, cond, attrs), m, nil
	}
	// The no-part option: download and evaluate everything locally.
	m.PlansConsidered++
	need := a.Union(condition.AttrSet(cond))
	if need.SubsetOf(ctx.Checker.Downloadable()) {
		dl := plan.NewSourceQuery(ctx.Source, condition.True(), need.Sorted())
		return plan.NewSP(cond, attrs, dl), m, nil
	}
	return nil, m, planner.ErrInfeasible
}

// CNF models Garlic's strategy (§2): transform the condition to
// conjunctive normal form, push the clauses the source can evaluate, and
// apply the rest at the mediator. Garlic's capability model is per-clause;
// against an SSDL source the pushable clause set must itself form a
// supported conjunction, so the adaptation greedily grows the pushdown set
// in clause order, keeping each extension only if the combined conjunction
// stays supported. When no clause can be pushed it attempts a full
// download, as Garlic does.
type CNF struct {
	// Limit caps the CNF clause count (0 = condition.DefaultNormalFormLimit).
	Limit int
}

// Name implements planner.Planner.
func (CNF) Name() string { return "CNF" }

// Plan implements planner.Planner.
func (b CNF) Plan(_ context.Context, ctx *planner.Context, cond condition.Node, attrs []string) (plan.Plan, *planner.Metrics, error) {
	start := time.Now()
	m := &planner.Metrics{CTs: 1}
	defer func() { m.Duration = time.Since(start) }()
	clauses, err := condition.CNFClauses(cond, b.Limit)
	if err != nil {
		return nil, m, planner.ErrInfeasible
	}
	a := strset.New(attrs...)

	clauseNodes := make([]condition.Node, len(clauses))
	for i, cl := range clauses {
		if len(cl) == 1 {
			clauseNodes[i] = cl[0]
		} else {
			clauseNodes[i] = &condition.Or{Kids: cl}
		}
	}

	// Greedily grow the pushed conjunction.
	var pushed []condition.Node
	var local []condition.Node
	for _, cl := range clauseNodes {
		trial := append(append([]condition.Node(nil), pushed...), cl)
		m.PlansConsidered++
		if !ctx.Checker.Check(conj(trial)).Empty() {
			pushed = trial
		} else {
			local = append(local, cl)
		}
	}
	if len(pushed) == 0 {
		// Garlic attempts to download the entire source.
		need := a.Union(condition.AttrSet(cond))
		m.PlansConsidered++
		if need.SubsetOf(ctx.Checker.Downloadable()) {
			dl := plan.NewSourceQuery(ctx.Source, condition.True(), need.Sorted())
			return plan.NewSP(cond, attrs, dl), m, nil
		}
		return nil, m, planner.ErrInfeasible
	}
	// The source query must export A plus whatever the local clauses
	// need.
	need := a.Clone()
	for _, cl := range local {
		need = need.Union(condition.AttrSet(cl))
	}
	pushCond := conj(pushed)
	if !need.SubsetOf(ctx.Checker.Check(pushCond)) {
		return nil, m, planner.ErrInfeasible
	}
	sq := plan.NewSourceQuery(ctx.Source, pushCond, need.Sorted())
	if len(local) == 0 {
		return plan.NewSP(condition.True(), attrs, sq), m, nil
	}
	return plan.NewSP(conj(local), attrs, sq), m, nil
}

// DNF models a DNF-based strategy (§1): transform the condition to
// disjunctive normal form and send one source query per term, unioning the
// results. Every term must be supported with the requested attributes;
// otherwise it falls back to a full download like the CNF system.
type DNF struct {
	// Limit caps the DNF term count (0 = condition.DefaultNormalFormLimit).
	Limit int
}

// Name implements planner.Planner.
func (DNF) Name() string { return "DNF" }

// Plan implements planner.Planner.
func (b DNF) Plan(_ context.Context, ctx *planner.Context, cond condition.Node, attrs []string) (plan.Plan, *planner.Metrics, error) {
	start := time.Now()
	m := &planner.Metrics{CTs: 1}
	defer func() { m.Duration = time.Since(start) }()
	terms, err := condition.DNFTerms(cond, b.Limit)
	if err != nil {
		return nil, m, planner.ErrInfeasible
	}
	a := strset.New(attrs...)
	branches := make([]plan.Plan, 0, len(terms))
	for _, term := range terms {
		tn := conj(term)
		m.PlansConsidered++
		if !ctx.Checker.Supports(tn, a) {
			need := a.Union(condition.AttrSet(cond))
			m.PlansConsidered++
			if need.SubsetOf(ctx.Checker.Downloadable()) {
				dl := plan.NewSourceQuery(ctx.Source, condition.True(), need.Sorted())
				return plan.NewSP(cond, attrs, dl), m, nil
			}
			return nil, m, planner.ErrInfeasible
		}
		branches = append(branches, plan.NewSourceQuery(ctx.Source, tn, attrs))
	}
	if len(branches) == 1 {
		return branches[0], m, nil
	}
	return &plan.Union{Inputs: branches}, m, nil
}

// conj builds the conjunction of nodes (a single node stands alone),
// cloning inputs so callers can keep mutating their slices.
func conj(nodes []condition.Node) condition.Node {
	if len(nodes) == 1 {
		return nodes[0].Clone()
	}
	kids := make([]condition.Node, len(nodes))
	for i, n := range nodes {
		kids[i] = n.Clone()
	}
	return &condition.And{Kids: kids}
}
