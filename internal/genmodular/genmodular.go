// Package genmodular implements GenModular (§5), the paper's naive,
// exhaustive plan-generation scheme: a rewrite module enumerates
// equivalent condition trees, a mark module annotates every CT node with
// its export set via Check, the EPG generator (Algorithm 5.1) produces the
// full set of feasible plans as a Choice tree, and the cost module picks
// the cheapest. It exists as the optimality reference and the
// planning-cost foil for GenCompact (experiments E3/E4).
package genmodular

import (
	"context"
	"time"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/rewrite"
	"repro/internal/ssdl"
	"repro/internal/strset"
)

// Planner is the GenModular scheme.
type Planner struct {
	// Rewrite configures the rewrite module. The zero value uses all
	// four rule families with the package defaults.
	Rewrite rewrite.Config
}

// New returns a GenModular planner with the paper's rule set and bounded
// closure caps suitable for small queries.
func New() *Planner {
	return &Planner{Rewrite: rewrite.Config{Rules: rewrite.AllRules}}
}

// Name implements planner.Planner.
func (*Planner) Name() string { return "GenModular" }

// Plan implements planner.Planner: rewrite → mark → generate → cost. The
// mark module is folded into generate (EPG marks nodes lazily through the
// memoizing checker); its Check effort is reported on the generate span.
func (p *Planner) Plan(ctx context.Context, pc *planner.Context, cond condition.Node, attrs []string) (plan.Plan, *planner.Metrics, error) {
	start := time.Now()
	m := &planner.Metrics{}
	defer func() { m.Duration = time.Since(start) }()
	c0, h0, _ := pc.Checker.Stats()
	defer func() {
		c1, h1, _ := pc.Checker.Stats()
		m.CheckCalls = c1 - c0
		m.CheckMisses = (c1 - c0) - (h1 - h0)
	}()

	cfg := p.Rewrite
	if cfg.Rules == (rewrite.Rules{}) {
		cfg.Rules = rewrite.AllRules
	}
	_, rsp := obs.Start(ctx, "plan.rewrite")
	cts := rewrite.Closure(cond, cfg)
	m.CTs = len(cts)
	rsp.SetInt("cts", int64(len(cts)))
	rsp.End()

	_, gsp := obs.Start(ctx, "plan.generate")
	gen := &epg{ctx: pc, metrics: m, memo: make(map[string]plan.Plan)}
	var alternatives []plan.Plan
	for _, ct := range cts {
		if alt := gen.run(ct, strset.New(attrs...), attrs); alt != nil {
			alternatives = append(alternatives, alt)
		}
	}
	if gsp != nil {
		c1, h1, _ := pc.Checker.Stats()
		gsp.SetInt("check_calls", int64(c1-c0))
		gsp.SetInt("check_memo_hits", int64(h1-h0))
		gsp.SetInt("generator_calls", int64(m.GeneratorCalls))
		gsp.SetInt("alternatives", int64(len(alternatives)))
		gsp.End()
	}
	if len(alternatives) == 0 {
		return nil, m, planner.ErrInfeasible
	}
	_, csp := obs.Start(ctx, "plan.cost")
	best, err := pc.Model.Resolve(&plan.Choice{Alternatives: alternatives})
	csp.SetInt("plans_considered", int64(m.PlansConsidered))
	csp.EndErr(err)
	if err != nil {
		return nil, m, err
	}
	return best, m, nil
}

// epg carries the state of one generate-module run. EPG results are
// memoized on (condition, attrs): identical sub-conditions recur across
// the rewrite module's CTs and within a CT's subset enumeration.
type epg struct {
	ctx     *planner.Context
	metrics *planner.Metrics
	memo    map[string]plan.Plan
}

// run is Algorithm 5.1. It returns the Choice plan over all feasible plans
// for SP(n, A, R), or nil (the paper's ε) when none exists. attrList is
// the sorted slice form of attrs, kept to avoid resorting.
func (g *epg) run(n condition.Node, attrs strset.Set, attrList []string) plan.Plan {
	key := n.Key() + "\x00" + attrs.Key()
	if got, ok := g.memo[key]; ok {
		return got
	}
	g.metrics.GeneratorCalls++
	var plans []plan.Plan

	// Lines 2-3: the pure plan.
	if attrs.SubsetOf(g.ctx.Checker.Check(n)) {
		plans = append(plans, plan.NewSourceQuery(g.ctx.Source, n, attrList))
	}

	switch t := n.(type) {
	case *condition.And:
		// Line 5: combine plans for all children by intersection.
		if all := g.kidPlans(t.Kids, attrs, attrList); all != nil {
			plans = append(plans, &plan.Intersect{Inputs: all})
		}
		// Lines 6-8: evaluate a proper subset X of children remotely and
		// the complement Local at the mediator on their results.
		forEachProperSubset(len(t.Kids), func(inX []bool) {
			var local []condition.Node
			var x []condition.Node
			for i, kid := range t.Kids {
				if inX[i] {
					x = append(x, kid)
				} else {
					local = append(local, kid)
				}
			}
			localCond := conj(local)
			need := attrs.Union(condition.AttrSet(localCond))
			needList := need.Sorted()
			sub := g.kidPlans(x, need, needList)
			if sub == nil {
				return
			}
			var inner plan.Plan
			if len(sub) == 1 {
				inner = sub[0]
			} else {
				inner = &plan.Intersect{Inputs: sub}
			}
			plans = append(plans, plan.NewSP(localCond, attrList, inner))
		})
	case *condition.Or:
		// Line 10: combine plans for all children by union.
		if all := g.kidPlans(t.Kids, attrs, attrList); all != nil {
			plans = append(plans, &plan.Union{Inputs: all})
		}
	}

	// Lines 11-12: download the relevant portion of the source.
	if !condition.IsTrue(n) {
		need := attrs.Union(condition.AttrSet(n))
		if need.SubsetOf(g.ctx.Checker.Downloadable()) {
			dl := plan.NewSourceQuery(g.ctx.Source, condition.True(), need.Sorted())
			plans = append(plans, plan.NewSP(n, attrList, dl))
		}
	}

	g.metrics.PlansConsidered += len(plans)
	var out plan.Plan
	if len(plans) > 0 {
		out = &plan.Choice{Alternatives: plans}
	}
	g.memo[key] = out
	return out
}

// kidPlans returns one plan per child, or nil if any child has none (a
// combination using ε is eliminated, per §5.3).
func (g *epg) kidPlans(kids []condition.Node, attrs strset.Set, attrList []string) []plan.Plan {
	out := make([]plan.Plan, 0, len(kids))
	for _, k := range kids {
		kp := g.run(k, attrs, attrList)
		if kp == nil {
			return nil
		}
		out = append(out, kp)
	}
	return out
}

// forEachProperSubset enumerates the nonempty proper subsets X of
// {0..n-1}, passing membership flags. The full set is excluded (line 5
// covers it); beyond 20 children the enumeration is skipped entirely —
// such CTs only arise from adversarial inputs.
func forEachProperSubset(n int, visit func(inX []bool)) {
	if n > 20 {
		return
	}
	inX := make([]bool, n)
	full := 1<<n - 1
	for mask := 1; mask < full; mask++ {
		for i := 0; i < n; i++ {
			inX[i] = mask&(1<<i) != 0
		}
		visit(inX)
	}
}

func conj(nodes []condition.Node) condition.Node {
	if len(nodes) == 1 {
		return nodes[0].Clone()
	}
	kids := make([]condition.Node, len(nodes))
	for i, n := range nodes {
		kids[i] = n.Clone()
	}
	return &condition.And{Kids: kids}
}

// Mark exposes the mark module (§5.2) on its own: it computes the export
// field for every node of the CT. The integrated planner does this lazily
// through the memoizing checker, but experiments and tests use Mark to
// observe the module boundary.
func Mark(ct condition.Node, checker *ssdl.Checker) map[string]strset.Set {
	exports := make(map[string]strset.Set)
	var walk func(n condition.Node)
	walk = func(n condition.Node) {
		exports[n.Key()] = checker.Check(n)
		switch t := n.(type) {
		case *condition.And:
			for _, k := range t.Kids {
				walk(k)
			}
		case *condition.Or:
			for _, k := range t.Kids {
				walk(k)
			}
		}
	}
	walk(ct)
	return exports
}
