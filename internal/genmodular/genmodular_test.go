package genmodular

import (
	"context"
	"errors"
	"testing"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/ssdl"
	"repro/internal/strset"
)

// fixture is the Example 4.1 source with closure checker and oracle costs.
func fixture(t *testing.T) (*planner.Context, *relation.Relation, *ssdl.Grammar) {
	t.Helper()
	g := ssdl.MustParse(`
source R
attrs make, model, year, color, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string ^ color = $c:string
attributes :: s1 : {make, model, year, color}
attributes :: s2 : {make, model, year}
`)
	s := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "year", Kind: condition.KindInt},
		relation.Column{Name: "color", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	rows := []struct {
		make, model string
		year        int64
		color       string
		price       int64
	}{
		{"BMW", "328i", 1998, "red", 35000},
		{"BMW", "528i", 1997, "black", 45000},
		{"Toyota", "Camry", 1998, "red", 19000},
	}
	for _, row := range rows {
		if err := r.AppendValues(
			condition.String(row.make), condition.String(row.model), condition.Int(row.year),
			condition.String(row.color), condition.Int(row.price)); err != nil {
			t.Fatal(err)
		}
	}
	est := cost.NewOracleEstimator(map[string]*relation.Relation{"R": r})
	ctx := &planner.Context{
		Source:  "R",
		Checker: ssdl.NewChecker(ssdl.CommutativeClosure(g, 0)),
		Model:   cost.Model{K1: 10, K2: 1, Est: est},
	}
	return ctx, r, g
}

func TestMarkModule(t *testing.T) {
	ctx, _, _ := fixture(t)
	// Example 5.1: mark t1 = ((make ^ price) ^ (make ^ color)).
	t1 := condition.MustParse(`(make = "BMW" ^ price < 40000) ^ (make = "BMW" ^ color = "red")`)
	exports := Mark(t1, ctx.Checker)
	root := t1.Key()
	if !exports[root].Empty() {
		t.Errorf("root export should be empty, got %v", exports[root])
	}
	n1 := condition.MustParse(`make = "BMW" ^ price < 40000`)
	if !exports[n1.Key()].Equal(strset.New("make", "model", "year", "color")) {
		t.Errorf("n1 export = %v", exports[n1.Key()])
	}
	n2 := condition.MustParse(`make = "BMW" ^ color = "red"`)
	if !exports[n2.Key()].Equal(strset.New("make", "model", "year")) {
		t.Errorf("n2 export = %v", exports[n2.Key()])
	}
	// Every node is marked, including leaves (which export nothing
	// by themselves in this grammar).
	leaf := condition.MustParse(`price < 40000`)
	got, ok := exports[leaf.Key()]
	if !ok || !got.Empty() {
		t.Errorf("leaf export = %v, %v", got, ok)
	}
}

func TestEPGFindsSection4Plan(t *testing.T) {
	ctx, r, _ := fixture(t)
	cond := condition.MustParse(`(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")`)
	p, metrics, err := New().Plan(context.Background(), ctx, cond, []string{"model", "year"})
	if err != nil {
		t.Fatalf("%v (metrics %+v)", err, metrics)
	}
	if cnt := len(plan.SourceQueries(p)); cnt != 1 {
		t.Errorf("want the 1-query nested plan, got %d queries:\n%s", cnt, plan.Format(p))
	}
	_ = r
}

// TestGenModularMatchesGenCompact is the paper's equivalence claim:
// GenCompact generates "the same plans in a much more efficient manner".
// Both must find plans of equal cost (GenModular restricted to caps that
// keep it tractable).
func TestGenModularMatchesGenCompact(t *testing.T) {
	ctx, _, _ := fixture(t)
	conds := []string{
		`make = "BMW" ^ price < 40000`,
		`(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")`,
		`make = "BMW" ^ (color = "red" _ color = "black")`,
		`(make = "BMW" ^ color = "red") _ (make = "Toyota" ^ color = "red")`,
	}
	gm := &Planner{Rewrite: rewrite.Config{Rules: rewrite.AllRules, MaxCTs: 3000, MaxAtoms: 8}}
	gc := core.New()
	for _, cs := range conds {
		cond := condition.MustParse(cs)
		pm, _, errM := gm.Plan(context.Background(), ctx, cond, []string{"model"})
		pc, _, errC := gc.Plan(context.Background(), ctx, cond, []string{"model"})
		if (errM == nil) != (errC == nil) {
			t.Errorf("%s: feasibility disagreement: modular=%v compact=%v", cs, errM, errC)
			continue
		}
		if errM != nil {
			continue
		}
		cm := ctx.Model.PlanCost(pm)
		cc := ctx.Model.PlanCost(pc)
		if cm != cc {
			t.Errorf("%s: GenModular cost %v != GenCompact cost %v\nmodular:\n%s\ncompact:\n%s",
				cs, cm, cc, plan.Format(pm), plan.Format(pc))
		}
	}
}

// TestGenCompactCheaperToRun verifies the efficiency claim: GenCompact
// processes far fewer CTs than GenModular for the same result.
func TestGenCompactCheaperToRun(t *testing.T) {
	ctx, _, _ := fixture(t)
	cond := condition.MustParse(`(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")`)
	gm := &Planner{Rewrite: rewrite.Config{Rules: rewrite.AllRules, MaxCTs: 2000, MaxAtoms: 8}}
	_, mm, err := gm.Plan(context.Background(), ctx, cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	_, mc, err := core.New().Plan(context.Background(), ctx, cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if mc.CTs >= mm.CTs {
		t.Errorf("GenCompact CTs (%d) should be far fewer than GenModular's (%d)", mc.CTs, mm.CTs)
	}
}

func TestEPGInfeasible(t *testing.T) {
	ctx, _, _ := fixture(t)
	_, _, err := New().Plan(context.Background(), ctx, condition.MustParse(`year = 1998`), []string{"model"})
	if !errors.Is(err, planner.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestEPGChoiceTreeShape(t *testing.T) {
	// Drive EPG directly to observe the Choice output of the generate
	// module before cost resolution.
	ctx, _, _ := fixture(t)
	g := &epg{ctx: ctx, metrics: &planner.Metrics{}, memo: make(map[string]plan.Plan)}
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	out := g.run(cond, strset.New("model"), []string{"model"})
	if out == nil {
		t.Fatal("EPG returned ε for a supported query")
	}
	ch, ok := out.(*plan.Choice)
	if !ok {
		t.Fatalf("EPG output should be a Choice, got %T", out)
	}
	if len(ch.Alternatives) == 0 {
		t.Error("Choice with no alternatives")
	}
	// The pure plan must be among the alternatives.
	foundPure := false
	for _, alt := range ch.Alternatives {
		if q, ok := alt.(*plan.SourceQuery); ok && condition.Equal(q.Cond, cond) {
			foundPure = true
		}
	}
	if !foundPure {
		t.Error("pure plan missing from EPG alternatives")
	}
}

func TestEPGMemoization(t *testing.T) {
	ctx, _, _ := fixture(t)
	g := &epg{ctx: ctx, metrics: &planner.Metrics{}, memo: make(map[string]plan.Plan)}
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	a := strset.New("model")
	g.run(cond, a, []string{"model"})
	calls := g.metrics.GeneratorCalls
	g.run(cond, a, []string{"model"})
	if g.metrics.GeneratorCalls != calls {
		t.Error("memoized EPG call should not recurse again")
	}
}
