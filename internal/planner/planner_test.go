package planner

import (
	"testing"

	"repro/internal/condition"
	"repro/internal/cost"
	"repro/internal/plan"
)

func TestCandidateBetter(t *testing.T) {
	m := cost.Model{K1: 1, K2: 1, Est: cost.FixedEstimator(1)}
	cheap := NewCandidate(plan.NewSourceQuery("R", condition.MustParse(`a = 1`), []string{"x"}), m)
	pair := &plan.Union{Inputs: []plan.Plan{cheap.Plan, cheap.Plan}}
	costly := NewCandidate(pair, m)

	if !cheap.Better(costly) {
		t.Error("cheaper candidate should be better")
	}
	if costly.Better(cheap) {
		t.Error("costlier candidate should not be better")
	}
	if !cheap.Better(nil) {
		t.Error("any candidate beats nil")
	}
	var none *Candidate
	if none.Better(cheap) {
		t.Error("nil candidate is never better")
	}
}

func TestNewCandidateNil(t *testing.T) {
	m := cost.Model{K1: 1, K2: 1, Est: cost.FixedEstimator(1)}
	if NewCandidate(nil, m) != nil {
		t.Error("NewCandidate(nil) should be nil")
	}
}

func TestErrInfeasibleIsSentinel(t *testing.T) {
	if ErrInfeasible == nil || ErrInfeasible.Error() == "" {
		t.Error("sentinel missing")
	}
}
