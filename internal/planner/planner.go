// Package planner defines the interface shared by all plan-generation
// strategies in this repository: the paper's GenModular (internal/
// genmodular) and GenCompact (internal/core), and the contemporary-system
// baselines it compares against (internal/baseline).
package planner

import (
	"context"
	"errors"
	"time"

	"repro/internal/condition"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/ssdl"
)

// ErrInfeasible is returned when a strategy cannot produce any feasible
// plan for the target query.
var ErrInfeasible = errors.New("planner: no feasible plan")

// Context carries the per-source information a planner needs.
type Context struct {
	// Source is the name used in generated SourceQuery nodes.
	Source string
	// Checker is the capability description to plan against. GenCompact
	// expects the commutative-closure description (§6.1); the execution-
	// time fixer maps the chosen plan back to the original grammar.
	Checker *ssdl.Checker
	// Model prices candidate plans.
	Model cost.Model
}

// Metrics reports what a planning run did; the experiment harness
// aggregates these across workloads.
type Metrics struct {
	// CTs is the number of condition trees processed.
	CTs int
	// PlansConsidered counts candidate plans (or plan alternatives)
	// enumerated.
	PlansConsidered int
	// GeneratorCalls counts EPG/IPG invocations (cache misses only).
	GeneratorCalls int
	// CheckCalls and CheckMisses are the checker-call deltas for the run
	// (misses exclude the checker's memo hits).
	CheckCalls  int
	CheckMisses int
	// MaxSubPlans is the largest MCSC input Q observed (GenCompact only;
	// the paper's pruning rules exist to keep this small).
	MaxSubPlans int
	// MCSCCombos counts set-cover combinations examined.
	MCSCCombos int
	// Duration is the wall-clock planning time.
	Duration time.Duration
	// Cached reports that the plan came from the mediator's plan cache —
	// no planning ran, so every counter above is zero.
	Cached bool
	// Coalesced reports that this call waited for another caller's
	// in-flight planning of the same key (implies Cached).
	Coalesced bool
	// Template reports that the plan was produced by binding constants
	// into a cached parameterized plan template. Combined with Cached it
	// means no planning ran at all (a template hit); without Cached it
	// marks the run that planned the template's skeleton.
	Template bool
}

// CheckHitRate is the fraction of checker calls served from the checker's
// memo during this run (0 when no calls were made).
func (m *Metrics) CheckHitRate() float64 {
	if m.CheckCalls == 0 {
		return 0
	}
	return float64(m.CheckCalls-m.CheckMisses) / float64(m.CheckCalls)
}

// Planner is a plan-generation strategy.
type Planner interface {
	// Name identifies the strategy in experiment tables.
	Name() string
	// Plan generates the best feasible plan for the target query
	// SP(cond, attrs, pc.Source), or ErrInfeasible. The context carries
	// cross-cutting concerns — tracing spans (internal/obs) — not a
	// deadline contract: planning is CPU-bound and runs to completion.
	Plan(ctx context.Context, pc *Context, cond condition.Node, attrs []string) (plan.Plan, *Metrics, error)
}

// Candidate couples a plan with its model cost so search code compares
// without re-walking plans.
type Candidate struct {
	Plan plan.Plan
	Cost float64
}

// Better reports whether c is a strict improvement over other (nil other
// counts as infeasible).
func (c *Candidate) Better(other *Candidate) bool {
	if c == nil {
		return false
	}
	return other == nil || c.Cost < other.Cost
}

// NewCandidate prices a plan under the model.
func NewCandidate(p plan.Plan, m cost.Model) *Candidate {
	if p == nil {
		return nil
	}
	return &Candidate{Plan: p, Cost: m.PlanCost(p)}
}
