package condition

import (
	"math/rand"
	"testing"
)

func TestSimplifyDedupsConjuncts(t *testing.T) {
	n := MustParse(`a = 1 ^ a = 1 ^ b = 2`)
	s, unsat := Simplify(n)
	if unsat {
		t.Fatal("satisfiable condition reported unsat")
	}
	if Size(s) != 2 {
		t.Errorf("simplified to %s, want 2 atoms", s.Key())
	}
}

func TestSimplifyDedupsDisjuncts(t *testing.T) {
	n := MustParse(`a = 1 _ a = 1 _ b = 2`)
	s, _ := Simplify(n)
	if Size(s) != 2 {
		t.Errorf("simplified to %s, want 2 atoms", s.Key())
	}
}

func TestSimplifyDetectsContradiction(t *testing.T) {
	n := MustParse(`a = 1 ^ a = 2`)
	_, unsat := Simplify(n)
	if !unsat {
		t.Error("a = 1 ^ a = 2 should be unsatisfiable")
	}
	// Nested: the contradiction propagates through AND.
	n2 := MustParse(`b = 3 ^ (a = 1 ^ a = 2)`)
	_, unsat = Simplify(n2)
	if !unsat {
		t.Error("nested contradiction should propagate")
	}
}

func TestSimplifyContradictionInOneDisjunctOnly(t *testing.T) {
	n := MustParse(`(a = 1 ^ a = 2) _ b = 3`)
	s, unsat := Simplify(n)
	if unsat {
		t.Error("one live disjunct keeps the condition satisfiable")
	}
	// The dead disjunct is dropped.
	if s.Key() != MustParse(`b = 3`).Key() {
		t.Errorf("simplified to %s, want b = 3", s.Key())
	}
}

func TestSimplifyAllDisjunctsDead(t *testing.T) {
	n := MustParse(`(a = 1 ^ a = 2) _ (b = 1 ^ b = 2)`)
	s, unsat := Simplify(n)
	if !unsat {
		t.Error("all-dead disjunction should be unsat")
	}
	if s == nil {
		t.Error("Simplify must never return nil")
	}
	// Still evaluable.
	if _, err := s.Eval(MapBinder{"a": Int(1), "b": Int(1)}); err != nil {
		t.Errorf("unsat result not evaluable: %v", err)
	}
}

func TestSimplifyRangeConjunctionNotFlagged(t *testing.T) {
	// Only equality contradictions are detected; ranges pass through.
	n := MustParse(`a < 1 ^ a > 5`)
	_, unsat := Simplify(n)
	if unsat {
		t.Error("range contradiction detection is out of scope; must not flag")
	}
}

func TestSimplifySameAttrDifferentOps(t *testing.T) {
	n := MustParse(`a = 1 ^ a <= 5`)
	_, unsat := Simplify(n)
	if unsat {
		t.Error("compatible constraints must not be flagged")
	}
}

// Property: Simplify preserves semantics on random trees (when not
// reported unsat), and unsat conditions really evaluate to false.
func TestSimplifyPreservesEval(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 400; i++ {
		n := randomTree(r, 3)
		s, unsat := Simplify(n)
		for j := 0; j < 8; j++ {
			b := randomBinding(r)
			want, err1 := n.Eval(b)
			got, err2 := s.Eval(b)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval error: %v %v", err1, err2)
			}
			if got != want {
				t.Fatalf("Simplify changed semantics:\nin:  %s\nout: %s\nbind: %v", n.Key(), s.Key(), b)
			}
			if unsat && want {
				t.Fatalf("condition flagged unsat but evaluated true: %s on %v", n.Key(), b)
			}
		}
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for i := 0; i < 200; i++ {
		n := randomTree(r, 3)
		s1, _ := Simplify(n)
		s2, _ := Simplify(s1)
		if s1.Key() != s2.Key() {
			t.Fatalf("not idempotent: %s -> %s", s1.Key(), s2.Key())
		}
	}
}
