package condition

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a condition expression in the surface syntax
//
//	expr   := term  ( OR  term  )*
//	term   := factor ( AND factor )*
//	factor := NOT factor | '(' expr ')' | 'true' | atomic
//	atomic := attr op value
//
// where AND is `and`/`^`/`&&`, OR is `or`/`_`/`|`/`||`, NOT is
// `not`/`!`, op is one of = != < <= > >= contains !contains, and value is
// a number, a quoted string, or a bare word (taken as a string). The
// structure of the returned CT mirrors the parenthesization: `a=1 ^ (b=2 ^
// c=3)` yields an AND whose second child is an AND, exactly as the paper's
// CTs do. Negation is compiled away at parse time by De Morgan's laws and
// operator complementation — the paper's condition trees (and every
// planner here) only know AND, OR and atoms.
func Parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("condition: trailing input at %s", p.peek())
	}
	return n, nil
}

// MustParse is Parse that panics on error; intended for tests and
// package-level literals.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) parseExpr() (Node, error) {
	first, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for p.peek().kind == tokOr {
		p.next()
		k, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &Or{Kids: kids}, nil
}

func (p *parser) parseTerm() (Node, error) {
	first, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for p.peek().kind == tokAnd {
		p.next()
		k, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &And{Kids: kids}, nil
}

func (p *parser) parseFactor() (Node, error) {
	switch t := p.peek(); t.kind {
	case tokNot:
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Negate(inner)
	case tokLParen:
		p.next()
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("condition: expected ) at %s", p.peek())
		}
		p.next()
		return n, nil
	case tokTrue:
		p.next()
		return True(), nil
	case tokIdent:
		return p.parseAtomic()
	default:
		return nil, fmt.Errorf("condition: expected condition, got %s", t)
	}
}

func (p *parser) parseAtomic() (Node, error) {
	attr := p.next()
	opTok := p.next()
	if opTok.kind != tokOp {
		return nil, fmt.Errorf("condition: expected operator after %q, got %s", attr.text, opTok)
	}
	op, _ := ParseOp(opTok.text)
	val, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	return &Atomic{Attr: attr.text, Op: op, Val: val}, nil
}

func (p *parser) parseValue() (Value, error) {
	switch t := p.next(); t.kind {
	case tokNumber:
		return ParseNumber(t.text)
	case tokString:
		return String(t.text), nil
	case tokIdent:
		// Bare words are string constants, as web forms supply them.
		return String(t.text), nil
	case tokTrue:
		return Bool(true), nil
	default:
		return Value{}, fmt.Errorf("condition: expected value, got %s", t)
	}
}

// Negate returns the negation of the condition, pushed down to the atoms
// by De Morgan's laws with each atomic operator replaced by its
// complement. The trivially-true condition cannot be negated (the algebra
// has no empty-result literal).
func Negate(n Node) (Node, error) {
	switch t := n.(type) {
	case *Atomic:
		comp, ok := t.Op.Complement()
		if !ok {
			return nil, fmt.Errorf("condition: operator %v has no complement", t.Op)
		}
		return &Atomic{Attr: t.Attr, Op: comp, Val: t.Val}, nil
	case *And:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			nk, err := Negate(k)
			if err != nil {
				return nil, err
			}
			kids[i] = nk
		}
		return &Or{Kids: kids}, nil
	case *Or:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			nk, err := Negate(k)
			if err != nil {
				return nil, err
			}
			kids[i] = nk
		}
		return &And{Kids: kids}, nil
	case *Truth:
		return nil, fmt.Errorf("condition: cannot negate the trivially-true condition")
	default:
		return nil, fmt.Errorf("condition: cannot negate %T", n)
	}
}

// ParseNumber converts a numeric literal to an Int or Float value.
func ParseNumber(text string) (Value, error) {
	if !strings.ContainsAny(text, ".eE") {
		if i, err := strconv.ParseInt(text, 10, 64); err == nil {
			return Int(i), nil
		}
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return Value{}, fmt.Errorf("condition: malformed number %q", text)
	}
	return Float(f), nil
}
