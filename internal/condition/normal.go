package condition

import "fmt"

// DefaultNormalFormLimit bounds the number of clauses/terms a normal-form
// conversion may produce before it is abandoned. Normal forms can be
// exponentially larger than the input; the baseline strategies that use
// them must cope with that.
const DefaultNormalFormLimit = 4096

// ErrNormalFormTooLarge is returned when a CNF/DNF conversion exceeds its
// clause limit.
var ErrNormalFormTooLarge = fmt.Errorf("condition: normal form exceeds clause limit")

// CNF converts the condition to conjunctive normal form: an AND of clauses,
// each clause an OR of atomics (degenerate levels are collapsed, so the
// result may be a single clause or a single atom). limit caps the number of
// clauses; pass 0 for DefaultNormalFormLimit.
func CNF(n Node, limit int) (Node, error) {
	if limit <= 0 {
		limit = DefaultNormalFormLimit
	}
	clauses, err := cnfClauses(n, limit)
	if err != nil {
		return nil, err
	}
	return rebuild(clauses, true), nil
}

// DNF converts the condition to disjunctive normal form: an OR of terms,
// each term an AND of atomics. limit caps the number of terms; pass 0 for
// DefaultNormalFormLimit.
func DNF(n Node, limit int) (Node, error) {
	if limit <= 0 {
		limit = DefaultNormalFormLimit
	}
	terms, err := dnfTerms(n, limit)
	if err != nil {
		return nil, err
	}
	return rebuild(terms, false), nil
}

// CNFClauses returns the clauses of the CNF of n, each clause a slice of
// leaf nodes understood disjunctively.
func CNFClauses(n Node, limit int) ([][]Node, error) {
	if limit <= 0 {
		limit = DefaultNormalFormLimit
	}
	return cnfClauses(n, limit)
}

// DNFTerms returns the terms of the DNF of n, each term a slice of leaf
// nodes understood conjunctively.
func DNFTerms(n Node, limit int) ([][]Node, error) {
	if limit <= 0 {
		limit = DefaultNormalFormLimit
	}
	return dnfTerms(n, limit)
}

// cnfClauses returns CNF as a list of clauses, each clause a list of leaf
// nodes (atomics or Truth).
func cnfClauses(n Node, limit int) ([][]Node, error) {
	switch t := n.(type) {
	case *And:
		var out [][]Node
		for _, k := range t.Kids {
			sub, err := cnfClauses(k, limit)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			if len(out) > limit {
				return nil, ErrNormalFormTooLarge
			}
		}
		return out, nil
	case *Or:
		// Cross-product of the children's clause sets.
		acc := [][]Node{nil}
		for _, k := range t.Kids {
			sub, err := cnfClauses(k, limit)
			if err != nil {
				return nil, err
			}
			var next [][]Node
			for _, a := range acc {
				for _, s := range sub {
					clause := make([]Node, 0, len(a)+len(s))
					clause = append(clause, a...)
					clause = append(clause, s...)
					next = append(next, clause)
					if len(next) > limit {
						return nil, ErrNormalFormTooLarge
					}
				}
			}
			acc = next
		}
		return acc, nil
	default:
		return [][]Node{{n.Clone()}}, nil
	}
}

func dnfTerms(n Node, limit int) ([][]Node, error) {
	switch t := n.(type) {
	case *Or:
		var out [][]Node
		for _, k := range t.Kids {
			sub, err := dnfTerms(k, limit)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			if len(out) > limit {
				return nil, ErrNormalFormTooLarge
			}
		}
		return out, nil
	case *And:
		acc := [][]Node{nil}
		for _, k := range t.Kids {
			sub, err := dnfTerms(k, limit)
			if err != nil {
				return nil, err
			}
			var next [][]Node
			for _, a := range acc {
				for _, s := range sub {
					term := make([]Node, 0, len(a)+len(s))
					term = append(term, a...)
					term = append(term, s...)
					next = append(next, term)
					if len(next) > limit {
						return nil, ErrNormalFormTooLarge
					}
				}
			}
			acc = next
		}
		return acc, nil
	default:
		return [][]Node{{n.Clone()}}, nil
	}
}

// rebuild assembles groups into a two-level tree. When cnf is true the
// outer connector is AND and groups are OR-clauses; otherwise the outer
// connector is OR and groups are AND-terms.
func rebuild(groups [][]Node, cnf bool) Node {
	inner := make([]Node, len(groups))
	for i, g := range groups {
		if len(g) == 1 {
			inner[i] = g[0]
			continue
		}
		kids := make([]Node, len(g))
		copy(kids, g)
		if cnf {
			inner[i] = &Or{Kids: kids}
		} else {
			inner[i] = &And{Kids: kids}
		}
	}
	if len(inner) == 1 {
		return inner[0]
	}
	if cnf {
		return &And{Kids: inner}
	}
	return &Or{Kids: inner}
}
