package condition

import (
	"strings"
	"testing"
)

func TestParameterizeLiftsConstants(t *testing.T) {
	c := MustParse(`author = "eco" & year > 1988`)
	p := Parameterize(c)
	if len(p.Bindings) != 2 {
		t.Fatalf("bindings = %v, want 2", p.Bindings)
	}
	if !HasParams(p.Skeleton) {
		t.Fatalf("skeleton %s has no params", p.Skeleton.Key())
	}
	// The sorted canonical representative orders `author = ...` before
	// `year > ...`, so the binding vector is (eco, 1988).
	if p.Bindings[0] != String("eco") || p.Bindings[1] != Int(1988) {
		t.Fatalf("bindings = %v", p.Bindings)
	}
	wantSites := []ParamSite{
		{Index: 0, Attr: "author", Op: OpEq, Elem: KindString},
		{Index: 1, Attr: "year", Op: OpGt, Elem: KindInt},
	}
	for i, s := range p.Sites {
		if s != wantSites[i] {
			t.Fatalf("site %d = %+v, want %+v", i, s, wantSites[i])
		}
	}
	bound, err := Bind(p.Skeleton, p.Bindings)
	if err != nil {
		t.Fatal(err)
	}
	if NormKey(bound) != NormKey(c) {
		t.Fatalf("round-trip %s != %s", NormKey(bound), NormKey(c))
	}
}

// Same shape, different constants → identical skeleton, aligned bindings.
func TestParameterizeSharesSkeletonAcrossConstants(t *testing.T) {
	a := Parameterize(MustParse(`author = "eco" & year > 1988`))
	b := Parameterize(MustParse(`author = "marquez" & year > 1967`))
	if a.Skeleton.Key() != b.Skeleton.Key() {
		t.Fatalf("skeletons differ:\n%s\n%s", a.Skeleton.Key(), b.Skeleton.Key())
	}
	if b.Bindings[0] != String("marquez") || b.Bindings[1] != Int(1967) {
		t.Fatalf("bindings misaligned: %v", b.Bindings)
	}
}

// Commuted and reassociated variants produce the identical skeleton and
// binding order: parameterization happens on the sorted canonical
// representative.
func TestParameterizeCommutesWithCanonicalization(t *testing.T) {
	variants := []string{
		`(a = 1 & b = 2) & c = 3`,
		`a = 1 & (b = 2 & c = 3)`,
		`c = 3 & b = 2 & a = 1`,
		`b = 2 & a = 1 & c = 3`,
	}
	ref := Parameterize(MustParse(variants[0]))
	for _, src := range variants[1:] {
		p := Parameterize(MustParse(src))
		if p.Skeleton.Key() != ref.Skeleton.Key() {
			t.Errorf("%s: skeleton %s != %s", src, p.Skeleton.Key(), ref.Skeleton.Key())
		}
		for i := range ref.Bindings {
			if p.Bindings[i] != ref.Bindings[i] {
				t.Errorf("%s: binding %d = %v, want %v", src, i, p.Bindings[i], ref.Bindings[i])
			}
		}
	}
}

// Structurally identical atoms share one placeholder, so parameterization
// commutes with Simplify's duplicate folding: simplifying the skeleton of
// `a = 1 | a = 1` equals the skeleton of the simplified condition.
func TestParameterizeDedupsIdenticalAtoms(t *testing.T) {
	for _, src := range []string{
		`a = 1 | a = 1`,
		`a = 1 & a = 1`,
		`(a = 1 & b = 2) | (a = 1 & c = 3)`,
	} {
		c := MustParse(src)
		p := Parameterize(c)
		simplified, _ := Simplify(c)
		ps := Parameterize(simplified)
		skSimpl, _ := Simplify(p.Skeleton)
		if NormKey(skSimpl) != NormKey(ps.Skeleton) {
			t.Errorf("%s: Simplify(skeleton) = %s, skeleton(Simplify) = %s",
				src, NormKey(skSimpl), NormKey(ps.Skeleton))
		}
		// Duplicate atoms must not burn extra binding slots.
		atoms := map[string]bool{}
		for _, a := range Atoms(SortChildren(Canonicalize(c))) {
			atoms[a.Key()] = true
		}
		if len(p.Bindings) > len(atoms) {
			t.Errorf("%s: %d bindings for %d distinct atoms", src, len(p.Bindings), len(atoms))
		}
	}
}

// Constants that name an attribute of the condition are refused: `a = a`
// parses identically to `a = "a"`, and a template must not unify an
// intended attribute reference with ordinary data.
func TestParameterizeRefusesAttrNamedConstants(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want int // liftable constants
	}{
		{`a = a`, 0},
		{`a = "a"`, 0},             // indistinguishable from a = a
		{`a = b & b = 1`, 1},       // "b" names an attr of the condition
		{`a = "b"`, 1},             // no attr b in scope: plain constant
		{`a = "x" & b = "a"`, 1},   // "a" names an attr, "x" does not
		{`year = 1999 & a = a`, 1}, // refusal is per-atom
	} {
		p := Parameterize(MustParse(tc.src))
		if len(p.Bindings) != tc.want {
			t.Errorf("%s: lifted %d constants (%v), want %d", tc.src, len(p.Bindings), p.Bindings, tc.want)
		}
		bound, err := Bind(p.Skeleton, p.Bindings)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if NormKey(bound) != NormKey(MustParse(tc.src)) {
			t.Errorf("%s: round-trip mismatch", tc.src)
		}
	}
}

func TestParameterizeIdempotent(t *testing.T) {
	p := Parameterize(MustParse(`a = 1 & b = "x"`))
	again := Parameterize(p.Skeleton)
	if len(again.Bindings) != 0 {
		t.Fatalf("re-parameterizing a skeleton lifted %v", again.Bindings)
	}
	if again.Skeleton.Key() != p.Skeleton.Key() {
		t.Fatalf("skeleton changed: %s != %s", again.Skeleton.Key(), p.Skeleton.Key())
	}
}

func TestParameterizeTruthAndNoConstants(t *testing.T) {
	p := Parameterize(True())
	if len(p.Bindings) != 0 || !IsTrue(p.Skeleton) {
		t.Fatalf("Parameterize(true) = %+v", p)
	}
}

func TestBindErrors(t *testing.T) {
	p := Parameterize(MustParse(`a = 1 & b = "x"`))
	if _, err := Bind(p.Skeleton, p.Bindings[:1]); err == nil {
		t.Error("short binding vector: want error")
	}
	if _, err := Bind(p.Skeleton, []Value{String("oops"), String("x")}); err == nil {
		t.Error("kind mismatch: want error")
	}
	if _, err := Bind(p.Skeleton, []Value{Param(0, KindInt), String("x")}); err == nil {
		t.Error("param as binding: want error")
	}
}

func TestUnboundParamEvalFailsLoudly(t *testing.T) {
	p := Parameterize(MustParse(`a = 1`))
	_, err := p.Skeleton.Eval(MapBinder{"a": Int(1)})
	if err == nil || !strings.Contains(err.Error(), "placeholder") {
		t.Fatalf("evaluating a skeleton should fail loudly, got err=%v", err)
	}
}

func TestParamValueRendering(t *testing.T) {
	v := Param(3, KindString)
	if got := v.String(); got != "$3:string" {
		t.Fatalf("String() = %q", got)
	}
	if !v.IsParam() || v.ParamIndex() != 3 {
		t.Fatalf("param accessors broken: %+v", v)
	}
	// Params order deterministically and never equal concrete values.
	if v.Equal(String("$3:string")) {
		t.Error("param must not equal a string constant")
	}
	if !Param(1, KindInt).Less(Param(2, KindInt)) || !Param(1, KindInt).Less(Param(1, KindFloat)) {
		t.Error("param ordering not deterministic")
	}
	if !v.Equal(Param(3, KindString)) {
		t.Error("identical params must be equal")
	}
}

// Simplify must not treat two placeholders on the same attribute as a
// contradiction: they may bind to the same constant.
func TestSimplifySkeletonNotUnsat(t *testing.T) {
	sk := NewAnd(
		NewAtomic("a", OpEq, Param(0, KindInt)),
		NewAtomic("a", OpEq, Param(1, KindInt)),
	)
	if _, unsat := Simplify(sk); unsat {
		t.Fatal("skeleton flagged unsatisfiable")
	}
}
