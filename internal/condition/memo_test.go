package condition

import (
	"math/rand"
	"sync"
	"testing"
)

func TestKeyCachedAndStable(t *testing.T) {
	n := MustParse(`a = 1 ^ (b = 2 _ c = 3)`)
	k1 := n.Key()
	k2 := n.Key()
	if k1 != k2 {
		t.Fatalf("Key changed between calls: %q vs %q", k1, k2)
	}
	if got := MustParse(`a = 1 ^ (b = 2 _ c = 3)`).Key(); got != k1 {
		t.Errorf("equal structures disagree on Key: %q vs %q", got, k1)
	}
}

func TestHashAgreesWithKey(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a := randomTree(r, 3)
		b := randomTree(r, 3)
		if (a.Key() == b.Key()) != (a.Hash() == b.Hash()) && a.Key() == b.Key() {
			t.Fatalf("equal keys with unequal hashes: %q", a.Key())
		}
		// Clones share structure, so hashes must match exactly.
		if c := a.Clone(); c.Hash() != a.Hash() || c.Key() != a.Key() {
			t.Fatalf("clone hash/key mismatch for %q", a.Key())
		}
	}
	if True().Hash() != True().Hash() {
		t.Error("Truth hash not stable")
	}
}

func TestCanonicalizeIdempotentAndCached(t *testing.T) {
	n := MustParse(`a = 1 ^ (b = 2 ^ (c = 3 _ d = 4))`)
	c1 := Canonicalize(n)
	c2 := Canonicalize(n)
	if c1 != c2 {
		t.Error("repeated Canonicalize should return the cached tree")
	}
	if Canonicalize(c1) != c1 {
		t.Error("canonicalizing a canonical tree should be a fixed point")
	}
	if !IsCanonical(c1) {
		t.Error("cached canonical form is not canonical")
	}
}

func TestNormKeyCached(t *testing.T) {
	n := MustParse(`b = 2 ^ a = 1`)
	if NormKey(n) != NormKey(n) {
		t.Error("NormKey not stable")
	}
	rev := MustParse(`a = 1 ^ b = 2`)
	if NormKey(n) != NormKey(rev) {
		t.Error("NormKey must conflate commutative variants")
	}
}

// Concurrent derivation of every cached form on one shared tree; run with
// -race this checks the atomic publication of the memo slots.
func TestMemoConcurrentAccess(t *testing.T) {
	n := MustParse(`(a = 1 ^ b = 2) _ (c = 3 ^ (d = 4 _ e = 5))`)
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]string, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			c := Canonicalize(n)
			results[i] = n.Key() + "\x00" + NormKey(n) + "\x00" + c.Key()
			_ = n.Hash()
			_ = n.Clone().Key()
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d derived %q, goroutine 0 derived %q", i, results[i], results[0])
		}
	}
}
