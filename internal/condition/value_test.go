package condition

import (
	"testing"
	"testing/quick"
)

func TestValueCompareNumericCoercion(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
		ok   bool
	}{
		{Int(3), Int(3), 0, true},
		{Int(3), Int(4), -1, true},
		{Int(5), Int(4), 1, true},
		{Int(3), Float(3.0), 0, true},
		{Float(2.5), Int(3), -1, true},
		{Float(3.5), Int(3), 1, true},
		{String("a"), String("b"), -1, true},
		{String("b"), String("b"), 0, true},
		{String("c"), String("b"), 1, true},
		{Bool(false), Bool(true), -1, true},
		{Bool(true), Bool(true), 0, true},
		{String("3"), Int(3), 0, false},
		{Bool(true), Int(1), 0, false},
	}
	for _, tc := range tests {
		got, ok := tc.a.Compare(tc.b)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("Compare(%v, %v) = %d,%v want %d,%v", tc.a, tc.b, got, ok, tc.want, tc.ok)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(7).Equal(Float(7)) {
		t.Error("Int(7) should equal Float(7)")
	}
	if String("x").Equal(Int(0)) {
		t.Error("string and int must not be equal")
	}
	if !String("q").Equal(String("q")) {
		t.Error("identical strings must be equal")
	}
}

func TestValueStringRendering(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{String("BMW"), `"BMW"`},
		{Int(40000), "40000"},
		{Float(2.5), "2.5"},
		{Bool(true), "true"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestValueTextRendering(t *testing.T) {
	if got := String("red").Text(); got != "red" {
		t.Errorf("Text() = %q, want red", got)
	}
	if got := Int(-3).Text(); got != "-3" {
		t.Errorf("Text() = %q, want -3", got)
	}
}

// Property: Compare is antisymmetric on ints.
func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, okx := Int(a).Compare(Int(b))
		y, oky := Int(b).Compare(Int(a))
		return okx && oky && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Less is a strict weak ordering representative — irreflexive.
func TestValueLessIrreflexive(t *testing.T) {
	f := func(a int64, s string) bool {
		return !Int(a).Less(Int(a)) && !String(s).Less(String(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpApply(t *testing.T) {
	tests := []struct {
		l    Value
		op   Op
		r    Value
		want bool
	}{
		{Int(3), OpLt, Int(4), true},
		{Int(4), OpLt, Int(4), false},
		{Int(4), OpLe, Int(4), true},
		{Int(5), OpGt, Int(4), true},
		{Int(4), OpGe, Int(4), true},
		{Int(4), OpNe, Int(4), false},
		{Int(4), OpNe, Int(5), true},
		{String("Toyota"), OpEq, String("Toyota"), true},
		{String("Interpretation of Dreams"), OpContains, String("dreams"), true},
		{String("Interpretation of Dreams"), OpContains, String("nightmare"), false},
		{String(""), OpContains, String(""), true},
		{String("abc"), OpContains, String(""), true},
	}
	for _, tc := range tests {
		got, err := tc.op.Apply(tc.l, tc.r)
		if err != nil {
			t.Errorf("%v %v %v: unexpected error %v", tc.l, tc.op, tc.r, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%v %v %v = %v, want %v", tc.l, tc.op, tc.r, got, tc.want)
		}
	}
}

func TestOpApplyKindMismatch(t *testing.T) {
	// = and != degrade gracefully across kinds.
	if got, err := OpEq.Apply(String("3"), Int(3)); err != nil || got {
		t.Errorf("string = int should be false,nil; got %v,%v", got, err)
	}
	if got, err := OpNe.Apply(String("3"), Int(3)); err != nil || !got {
		t.Errorf("string != int should be true,nil; got %v,%v", got, err)
	}
	// Ordering across kinds is an error.
	if _, err := OpLt.Apply(String("3"), Int(3)); err == nil {
		t.Error("string < int should error")
	}
	// contains on numbers is an error.
	if _, err := OpContains.Apply(Int(1), Int(2)); err == nil {
		t.Error("contains on ints should error")
	}
}

func TestParseOpAliases(t *testing.T) {
	for _, alias := range []string{"=", "==", "!=", "<>", "<", "<=", ">", ">=", "contains"} {
		if _, ok := ParseOp(alias); !ok {
			t.Errorf("ParseOp(%q) failed", alias)
		}
	}
	if _, ok := ParseOp("~"); ok {
		t.Error("ParseOp(~) should fail")
	}
}

func TestContainsFoldCaseInsensitive(t *testing.T) {
	ok, err := OpContains.Apply(String("The Interpretation Of DREAMS"), String("dreams"))
	if err != nil || !ok {
		t.Errorf("case-folded contains failed: %v %v", ok, err)
	}
}
