package condition

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseAtomic(t *testing.T) {
	n, err := Parse(`make = "BMW"`)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := n.(*Atomic)
	if !ok {
		t.Fatalf("got %T, want *Atomic", n)
	}
	if a.Attr != "make" || a.Op != OpEq || !a.Val.Equal(String("BMW")) {
		t.Errorf("parsed %+v", a)
	}
}

func TestParsePaperNotation(t *testing.T) {
	// The exact notation of Example 1.2, with ^ and _.
	src := `style = "sedan" ^ (size = "compact" _ size = "midsize") ^ ((make = "Toyota" ^ price <= 20000) _ (make = "BMW" ^ price <= 40000))`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := n.(*And)
	if !ok || len(and.Kids) != 3 {
		t.Fatalf("want 3-kid AND, got %v", n)
	}
	if _, ok := and.Kids[1].(*Or); !ok {
		t.Errorf("second kid should be OR, got %T", and.Kids[1])
	}
	if _, ok := and.Kids[2].(*Or); !ok {
		t.Errorf("third kid should be OR, got %T", and.Kids[2])
	}
}

func TestParseWordConnectors(t *testing.T) {
	n, err := Parse(`a = 1 and b = 2 or c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	// OR binds looser than AND.
	or, ok := n.(*Or)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("want top-level OR with 2 kids, got %v", n)
	}
	if _, ok := or.Kids[0].(*And); !ok {
		t.Errorf("first kid should be AND, got %T", or.Kids[0])
	}
}

func TestParseSymbolConnectors(t *testing.T) {
	for _, src := range []string{
		`a = 1 && b = 2`,
		`a = 1 & b = 2`,
		`a = 1 ^ b = 2`,
	} {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if _, ok := n.(*And); !ok {
			t.Errorf("%s: got %T, want *And", src, n)
		}
	}
	for _, src := range []string{
		`a = 1 || b = 2`,
		`a = 1 | b = 2`,
		`a = 1 or b = 2`,
		`a = 1 _ b = 2`,
	} {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if _, ok := n.(*Or); !ok {
			t.Errorf("%s: got %T, want *Or", src, n)
		}
	}
}

func TestParseValues(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{`price < 40000`, Int(40000)},
		{`price < 40000.5`, Float(40000.5)},
		{`price > -3`, Int(-3)},
		{`color = red`, String("red")},   // bare word
		{`color = 'red'`, String("red")}, // single quotes
		{`title contains "dreams"`, String("dreams")},
	}
	for _, tc := range tests {
		n, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		a := n.(*Atomic)
		if !a.Val.Equal(tc.want) || a.Val.Kind != tc.want.Kind {
			t.Errorf("%s: value %v (kind %v), want %v (kind %v)", tc.src, a.Val, a.Val.Kind, tc.want, tc.want.Kind)
		}
	}
}

func TestParseTrue(t *testing.T) {
	n, err := Parse(`true`)
	if err != nil {
		t.Fatal(err)
	}
	if !IsTrue(n) {
		t.Errorf("got %T, want *Truth", n)
	}
}

func TestParseNestedStructurePreserved(t *testing.T) {
	n := MustParse(`a = 1 ^ (b = 2 ^ c = 3)`)
	and := n.(*And)
	if len(and.Kids) != 2 {
		t.Fatalf("want 2 kids, got %d", len(and.Kids))
	}
	if _, ok := and.Kids[1].(*And); !ok {
		t.Errorf("nested AND must be preserved, got %T", and.Kids[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`a =`,
		`a 1`,
		`(a = 1`,
		`a = 1)`,
		`a = 1 ^`,
		`a ~ 1`,
		`a = "unterminated`,
		`= 1`,
		`a = 1 b = 2`,
		`a < .`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		`make = "BMW"`,
		`(make = "BMW" & price < 40000) | (make = "Toyota" & price < 20000)`,
		`a = 1 & (b = 2 | c = 3) & d >= 4`,
		`title contains "dreams" & (author = "Sigmund Freud" | author = "Carl Jung")`,
	}
	for _, src := range srcs {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		rt, err := Parse(n.Key())
		if err != nil {
			t.Fatalf("reparse of %q: %v", n.Key(), err)
		}
		if !Equal(n, rt) {
			t.Errorf("round trip changed tree: %q -> %q", n.Key(), rt.Key())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse(`a =`)
}

func TestParseEscapedString(t *testing.T) {
	n := MustParse(`title = "he said \"hi\""`)
	a := n.(*Atomic)
	if a.Val.S != `he said "hi"` {
		t.Errorf("escaped string = %q", a.Val.S)
	}
}

func TestParseIdentWithUnderscoreAndDot(t *testing.T) {
	n := MustParse(`list_price.usd <= 10`)
	a := n.(*Atomic)
	if a.Attr != "list_price.usd" {
		t.Errorf("attr = %q", a.Attr)
	}
	if !strings.Contains(n.Key(), "list_price.usd") {
		t.Errorf("key = %q", n.Key())
	}
}

func TestParseNegation(t *testing.T) {
	// NOT compiles away: ¬(a = 1) becomes a != 1.
	n := MustParse(`not a = 1`)
	a, ok := n.(*Atomic)
	if !ok || a.Op != OpNe {
		t.Fatalf("not a=1 parsed to %s", n.Key())
	}
	// De Morgan: ¬(a = 1 ^ b < 2) becomes a != 1 _ b >= 2.
	n = MustParse(`!(a = 1 ^ b < 2)`)
	want := MustParse(`a != 1 _ b >= 2`)
	if n.Key() != want.Key() {
		t.Errorf("negated conjunction = %s, want %s", n.Key(), want.Key())
	}
	// Double negation cancels.
	n = MustParse(`not not a = 1`)
	if n.Key() != MustParse(`a = 1`).Key() {
		t.Errorf("double negation = %s", n.Key())
	}
	// !contains operator and negated contains agree.
	n1 := MustParse(`title !contains "x"`)
	n2 := MustParse(`not title contains "x"`)
	if n1.Key() != n2.Key() {
		t.Errorf("%s vs %s", n1.Key(), n2.Key())
	}
	// Negating true is an error.
	if _, err := Parse(`not true`); err == nil {
		t.Error("negating true should fail")
	}
}

func TestNegationSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for i := 0; i < 300; i++ {
		n := randomTree(r, 3)
		neg, err := Negate(n)
		if err != nil {
			t.Fatal(err)
		}
		b := randomBinding(r)
		orig, err1 := n.Eval(b)
		flipped, err2 := neg.Eval(b)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval: %v %v", err1, err2)
		}
		if orig == flipped {
			t.Fatalf("negation did not flip %s on %v", n.Key(), b)
		}
	}
}

func TestNotContainsEval(t *testing.T) {
	n := MustParse(`title !contains "dream"`)
	got, err := n.Eval(MapBinder{"title": String("Nightmares")})
	if err != nil || !got {
		t.Errorf("got %v, %v", got, err)
	}
	got, err = n.Eval(MapBinder{"title": String("Dreams")})
	if err != nil || got {
		t.Errorf("got %v, %v", got, err)
	}
}
