package condition

import (
	"sync/atomic"
	"unsafe"
)

// Condition trees are immutable once built: every layer that derives a
// variant (the rewrite closure, canonicalization, the execution-time
// fixer) constructs fresh nodes instead of editing in place. That makes
// the derived forms of a node — its structural key, a 64-bit hash of it,
// its order-insensitive normal key, and its canonical form — functions of
// the node's identity, so each is computed at most once and cached here.
//
// Slots are published with atomic pointer stores. Two goroutines racing
// on an empty slot both compute the same (equivalent) value and the last
// store wins, so no lock is needed; readers see either nil or a fully
// built value. The fields are plain unsafe.Pointers rather than
// atomic.Pointer[T] so node structs stay copyable (Clone snapshots the
// slots with atomic loads; an atomic.Pointer field would trip vet's
// copylocks on every copy).
type nodeMeta struct {
	key   unsafe.Pointer // *keyMemo
	norm  unsafe.Pointer // *string
	canon unsafe.Pointer // *canonMemo
}

// keyMemo bundles a node's exact structural key with its 64-bit hash so
// both are derived in one pass.
type keyMemo struct {
	key  string
	hash uint64
}

// canonMemo boxes a Node interface value behind one pointer.
type canonMemo struct{ node Node }

func (m *nodeMeta) loadKey() *keyMemo   { return (*keyMemo)(atomic.LoadPointer(&m.key)) }
func (m *nodeMeta) storeKey(k *keyMemo) { atomic.StorePointer(&m.key, unsafe.Pointer(k)) }

func (m *nodeMeta) loadNorm() *string   { return (*string)(atomic.LoadPointer(&m.norm)) }
func (m *nodeMeta) storeNorm(s *string) { atomic.StorePointer(&m.norm, unsafe.Pointer(s)) }

func (m *nodeMeta) loadCanon() Node {
	c := (*canonMemo)(atomic.LoadPointer(&m.canon))
	if c == nil {
		return nil
	}
	return c.node
}

func (m *nodeMeta) storeCanon(n Node) {
	atomic.StorePointer(&m.canon, unsafe.Pointer(&canonMemo{node: n}))
}

// snapshot copies the slots for embedding in a clone. A clone is
// structurally identical to its original, so the cached forms carry over.
func (m *nodeMeta) snapshot() nodeMeta {
	return nodeMeta{
		key:   atomic.LoadPointer(&m.key),
		norm:  atomic.LoadPointer(&m.norm),
		canon: atomic.LoadPointer(&m.canon),
	}
}

// metaOf returns the node's cache slots; Truth has none (its forms are
// constants).
func metaOf(n Node) *nodeMeta {
	switch t := n.(type) {
	case *Atomic:
		return &t.meta
	case *And:
		return &t.meta
	case *Or:
		return &t.meta
	default:
		return nil
	}
}

// FNV-1a, inlined so hashing a key adds no allocation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}
