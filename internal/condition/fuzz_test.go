package condition

import "testing"

// FuzzParse checks the condition parser never panics and that every
// successfully parsed tree round-trips through its Key rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`make = "BMW"`,
		`a = 1 ^ b = 2`,
		`a = 1 _ b = 2`,
		`(a = 1 ^ b = 2) _ (c = 3 ^ d = 4)`,
		`style = "sedan" ^ (size = "compact" _ size = "midsize")`,
		`title contains "dreams"`,
		`price <= 40000.5`,
		`a != -3 and b >= 0 or c < 1`,
		`true`,
		`x = 'single'`,
		`a = "esc \" quote"`,
		`((((a = 1))))`,
		`a = 1 ^`,
		`= 1`,
		`a <>`,
		"a\t=\n1",
		`ключ = "значение"`,
		`a = 1 ^^ b = 2`,
		`_ _ _`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		// Round trip: the Key rendering must re-parse to the same tree.
		back, err := Parse(n.Key())
		if err != nil {
			t.Fatalf("Key %q of %q does not re-parse: %v", n.Key(), src, err)
		}
		if !Equal(n, back) {
			t.Fatalf("round trip changed tree: %q -> %q", n.Key(), back.Key())
		}
		// Canonicalization must be stable and preserve atom count.
		c := Canonicalize(n)
		if Size(c) != Size(n) {
			t.Fatalf("canonicalize changed atom count for %q", src)
		}
		if !IsCanonical(c) {
			t.Fatalf("canonicalize not canonical for %q", src)
		}
	})
}

// FuzzSimplify checks Simplify never panics and preserves semantics on
// arbitrary parsed inputs.
func FuzzSimplify(f *testing.F) {
	for _, s := range []string{
		`a = 1 ^ a = 1`,
		`a = 1 ^ a = 2`,
		`(a = 1 ^ a = 2) _ b = 3`,
		`a = 1 _ a = 1 _ a = 1`,
		`not (a = 1 ^ b = 2)`,
	} {
		f.Add(s, int64(1))
	}
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		s, unsat := Simplify(n)
		// Evaluate both under a few deterministic bindings derived from
		// the seed.
		for i := int64(0); i < 4; i++ {
			b := MapBinder{}
			for _, attr := range Attrs(n) {
				b[attr] = Int((seed + i + int64(len(attr))) % 5)
			}
			want, err1 := n.Eval(b)
			got, err2 := s.Eval(b)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error divergence: %v vs %v for %q", err1, err2, src)
			}
			if err1 == nil && got != want {
				t.Fatalf("Simplify changed semantics of %q", src)
			}
			if err1 == nil && unsat && want {
				t.Fatalf("unsat condition evaluated true: %q", src)
			}
		}
	})
}
