// Package condition implements the condition-expression model of the
// GenCompact paper: condition trees (CTs) whose leaves are atomic
// comparisons over source attributes and whose internal nodes are the
// Boolean connectors AND and OR. It provides parsing, evaluation,
// canonicalization and the normal-form rewritings (CNF/DNF) that the
// baseline strategies rely on.
package condition

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind int

const (
	// KindString is a text value.
	KindString Kind = iota
	// KindInt is a 64-bit integer value.
	KindInt
	// KindFloat is a 64-bit floating-point value.
	KindFloat
	// KindBool is a Boolean value.
	KindBool
	// KindParam is a placeholder standing for a constant that
	// Parameterize lifted out of a value position. A param never appears
	// in source data or query results: it exists only inside plan
	// skeletons, and Bind replaces it with a real constant before any
	// evaluation. Elem records the kind of the constant it replaced.
	KindParam
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindParam:
		return "param"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a typed constant appearing in an atomic condition or in a tuple
// field. The zero value is the empty string.
type Value struct {
	Kind Kind
	S    string
	I    int64
	F    float64
	B    bool
	// Elem is the element kind of a KindParam placeholder (the kind of
	// the constant it replaced); it is unused for every other kind.
	Elem Kind
}

// String builds a string Value.
func String(s string) Value { return Value{Kind: KindString, S: s} }

// Int builds an integer Value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float builds a floating-point Value. Negative zero is normalized to
// positive zero so that values round-trip through their text rendering.
func Float(f float64) Value {
	if f == 0 {
		f = 0 // collapse -0 to +0
	}
	return Value{Kind: KindFloat, F: f}
}

// Bool builds a Boolean Value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Param builds a placeholder Value standing for position i of a binding
// vector. elem is the kind of the constant the placeholder replaced; SSDL
// capability matching treats the placeholder exactly like an arbitrary
// constant of that kind.
func Param(i int, elem Kind) Value { return Value{Kind: KindParam, I: int64(i), Elem: elem} }

// IsParam reports whether the value is a Parameterize placeholder.
func (v Value) IsParam() bool { return v.Kind == KindParam }

// ParamIndex returns the binding-vector position of a placeholder. It is
// only meaningful when IsParam reports true.
func (v Value) ParamIndex() int { return int(v.I) }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat returns the numeric value as a float64. It is only meaningful
// when IsNumeric reports true.
func (v Value) AsFloat() float64 {
	if v.Kind == KindInt {
		return float64(v.I)
	}
	return v.F
}

// Text returns the value rendered without quoting, as a form field would
// carry it.
func (v Value) Text() string {
	switch v.Kind {
	case KindString:
		return v.S
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindParam:
		return "$" + strconv.FormatInt(v.I, 10) + ":" + v.Elem.String()
	default:
		return ""
	}
}

// String renders the value as it appears in condition syntax: strings are
// double-quoted with backslash-escaping of the quote and backslash
// characters only (all other bytes pass through raw, matching what the
// condition and SSDL lexers un-escape), numbers and booleans are bare.
func (v Value) String() string {
	if v.Kind == KindString {
		return QuoteString(v.S)
	}
	return v.Text()
}

// QuoteString renders a string constant in condition syntax.
func QuoteString(s string) string {
	var sb strings.Builder
	sb.Grow(len(s) + 2)
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(c)
	}
	sb.WriteByte('"')
	return sb.String()
}

// Equal reports whether two values are equal, coercing between numeric
// kinds.
func (v Value) Equal(o Value) bool {
	c, ok := v.Compare(o)
	return ok && c == 0
}

// Compare orders two values. It returns -1, 0 or +1 and true when the
// values are comparable (same kind, or both numeric), and false otherwise.
// Placeholders compare structurally (by index, then element kind) so that
// sorting and equality of skeleton trees stay deterministic; they are
// incomparable with every concrete kind.
func (v Value) Compare(o Value) (int, bool) {
	if v.Kind == KindParam || o.Kind == KindParam {
		if v.Kind != o.Kind {
			return 0, false
		}
		switch {
		case v.I != o.I:
			if v.I < o.I {
				return -1, true
			}
			return 1, true
		case v.Elem != o.Elem:
			if v.Elem < o.Elem {
				return -1, true
			}
			return 1, true
		default:
			return 0, true
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.Kind != o.Kind {
		return 0, false
	}
	switch v.Kind {
	case KindString:
		return strings.Compare(v.S, o.S), true
	case KindBool:
		switch {
		case v.B == o.B:
			return 0, true
		case !v.B:
			return -1, true
		default:
			return 1, true
		}
	default:
		return 0, false
	}
}

// Less orders values for deterministic sorting; incomparable kinds order by
// kind id. It is a total order suitable for sort keys, not a semantic
// comparison.
func (v Value) Less(o Value) bool {
	if v.Kind != o.Kind && !(v.IsNumeric() && o.IsNumeric()) {
		return v.Kind < o.Kind
	}
	c, _ := v.Compare(o)
	return c < 0
}
