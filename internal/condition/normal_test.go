package condition

import (
	"errors"
	"math/rand"
	"testing"
)

func TestCNFExample11(t *testing.T) {
	// Example 1.1: ((author=Freud _ author=Jung) ^ title contains dreams)
	// is already in CNF with two clauses.
	n := MustParse(`(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams"`)
	cnf, err := CNF(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := cnf.(*And)
	if !ok || len(and.Kids) != 2 {
		t.Fatalf("CNF = %v, want 2-clause AND", cnf)
	}
}

func TestDNFExample11(t *testing.T) {
	// DNF of Example 1.1 is the paper's preferred two-term split.
	n := MustParse(`(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams"`)
	dnf, err := DNF(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := dnf.(*Or)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("DNF = %v, want 2-term OR", dnf)
	}
	for _, k := range or.Kids {
		and, ok := k.(*And)
		if !ok || len(and.Kids) != 2 {
			t.Errorf("term %v should be a 2-atom AND", k)
		}
	}
}

func TestDNFExample12HasFourTerms(t *testing.T) {
	// §1: "In a DNF system, the user query is transformed into one with
	// four terms."
	n := MustParse(`style = "sedan" ^ (size = "compact" _ size = "midsize") ^ ((make = "Toyota" ^ price <= 20000) _ (make = "BMW" ^ price <= 40000))`)
	terms, err := DNFTerms(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 4 {
		t.Errorf("DNF of Example 1.2 has %d terms, paper says 4", len(terms))
	}
}

func TestCNFExample12HasSixClauses(t *testing.T) {
	// §1: "A CNF system converts the query to one with six clauses".
	n := MustParse(`style = "sedan" ^ (size = "compact" _ size = "midsize") ^ ((make = "Toyota" ^ price <= 20000) _ (make = "BMW" ^ price <= 40000))`)
	clauses, err := CNFClauses(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 6 {
		t.Errorf("CNF of Example 1.2 has %d clauses, paper says 6", len(clauses))
	}
}

func TestNormalFormLimit(t *testing.T) {
	// (a1|b1)^(a2|b2)^...: CNF is linear but DNF doubles per conjunct.
	kids := make([]Node, 12)
	for i := range kids {
		kids[i] = NewOr(
			NewAtomic("a", OpEq, Int(int64(i))),
			NewAtomic("b", OpEq, Int(int64(i))),
		)
	}
	n := &And{Kids: kids}
	if _, err := DNF(n, 100); !errors.Is(err, ErrNormalFormTooLarge) {
		t.Errorf("DNF should exceed limit, got %v", err)
	}
	if _, err := CNF(n, 100); err != nil {
		t.Errorf("CNF should be linear here, got %v", err)
	}
}

func TestCNFPreservesEval(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		n := randomTree(r, 3)
		cnf, err := CNF(n, 0)
		if err != nil {
			continue // oversize conversions are allowed to bail
		}
		for j := 0; j < 6; j++ {
			b := randomBinding(r)
			want, _ := n.Eval(b)
			got, _ := cnf.Eval(b)
			if got != want {
				t.Fatalf("CNF changed semantics: %v vs %v on %v", n, cnf, b)
			}
		}
	}
}

func TestDNFPreservesEval(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		n := randomTree(r, 3)
		dnf, err := DNF(n, 0)
		if err != nil {
			continue
		}
		for j := 0; j < 6; j++ {
			b := randomBinding(r)
			want, _ := n.Eval(b)
			got, _ := dnf.Eval(b)
			if got != want {
				t.Fatalf("DNF changed semantics: %v vs %v on %v", n, dnf, b)
			}
		}
	}
}

func TestCNFShapeInvariant(t *testing.T) {
	// Every clause of a CNF must be atoms only (the rebuild is 2-level).
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		n := randomTree(r, 3)
		clauses, err := CNFClauses(n, 0)
		if err != nil {
			continue
		}
		for _, cl := range clauses {
			for _, lit := range cl {
				if _, ok := lit.(*Atomic); !ok {
					if _, ok := lit.(*Truth); !ok {
						t.Fatalf("clause literal %T is not a leaf", lit)
					}
				}
			}
		}
	}
}

func TestNormalFormOfLeaf(t *testing.T) {
	n := MustParse(`a = 1`)
	cnf, err := CNF(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(n, cnf) {
		t.Errorf("CNF of leaf = %v", cnf)
	}
	dnf, err := DNF(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(n, dnf) {
		t.Errorf("DNF of leaf = %v", dnf)
	}
}
