package condition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCanonicalizeFlattens(t *testing.T) {
	// The paper's §6.4 example: (price < 40000 ^ (color = "red" ^
	// make = "BMW")) is not canonical; flattening yields a 3-kid AND.
	n := MustParse(`price < 40000 ^ (color = "red" ^ make = "BMW")`)
	if IsCanonical(n) {
		t.Fatal("nested same-connector tree should not be canonical")
	}
	c := Canonicalize(n)
	and, ok := c.(*And)
	if !ok || len(and.Kids) != 3 {
		t.Fatalf("canonical form = %v, want 3-kid AND", c)
	}
	if !IsCanonical(c) {
		t.Error("Canonicalize result not canonical")
	}
}

func TestCanonicalizeCollapsesSingleChild(t *testing.T) {
	n := &And{Kids: []Node{NewAtomic("a", OpEq, Int(1))}}
	c := Canonicalize(n)
	if _, ok := c.(*Atomic); !ok {
		t.Errorf("single-child AND should collapse to leaf, got %T", c)
	}
}

func TestCanonicalizeAlternation(t *testing.T) {
	// AND over OR over AND is already canonical.
	n := MustParse(`a = 1 ^ (b = 2 _ (c = 3 ^ d = 4))`)
	if !IsCanonical(n) {
		t.Error("alternating tree should be canonical")
	}
	c := Canonicalize(n)
	if !Equal(n, c) {
		t.Errorf("canonicalizing a canonical tree changed it: %v -> %v", n, c)
	}
}

func TestCanonicalizeDoesNotMutateInput(t *testing.T) {
	n := MustParse(`a = 1 ^ (b = 2 ^ c = 3)`)
	before := n.Key()
	Canonicalize(n)
	if n.Key() != before {
		t.Error("Canonicalize mutated its input")
	}
}

// randomTree builds a random CT over a small attribute vocabulary.
func randomTree(r *rand.Rand, depth int) Node {
	attrs := []string{"a", "b", "c", "d"}
	if depth <= 0 || r.Intn(3) == 0 {
		attr := attrs[r.Intn(len(attrs))]
		ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return NewAtomic(attr, ops[r.Intn(len(ops))], Int(int64(r.Intn(5))))
	}
	nkids := 2 + r.Intn(2)
	kids := make([]Node, nkids)
	for i := range kids {
		kids[i] = randomTree(r, depth-1)
	}
	if r.Intn(2) == 0 {
		return &And{Kids: kids}
	}
	return &Or{Kids: kids}
}

func randomBinding(r *rand.Rand) MapBinder {
	b := MapBinder{}
	for _, a := range []string{"a", "b", "c", "d"} {
		b[a] = Int(int64(r.Intn(5)))
	}
	return b
}

// Property: canonicalization preserves semantics.
func TestCanonicalizePreservesEval(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := randomTree(r, 3)
		c := Canonicalize(n)
		if !IsCanonical(c) {
			t.Fatalf("not canonical: %v", c)
		}
		for j := 0; j < 8; j++ {
			b := randomBinding(r)
			want, err1 := n.Eval(b)
			got, err2 := c.Eval(b)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval error: %v %v", err1, err2)
			}
			if got != want {
				t.Fatalf("semantics changed: %v vs %v on %v", n, c, b)
			}
		}
	}
}

// Property: NormKey is invariant under child reordering.
func TestNormKeyOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 3)
		shuffled := shuffleTree(r, n)
		return NormKey(n) == NormKey(shuffled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func shuffleTree(r *rand.Rand, n Node) Node {
	switch t := n.(type) {
	case *And:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = shuffleTree(r, k)
		}
		r.Shuffle(len(kids), func(i, j int) { kids[i], kids[j] = kids[j], kids[i] })
		return &And{Kids: kids}
	case *Or:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = shuffleTree(r, k)
		}
		r.Shuffle(len(kids), func(i, j int) { kids[i], kids[j] = kids[j], kids[i] })
		return &Or{Kids: kids}
	default:
		return n.Clone()
	}
}

func TestSortChildrenDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		n := randomTree(r, 3)
		s1 := SortChildren(n)
		s2 := SortChildren(shuffleTree(r, n))
		if s1.Key() != s2.Key() {
			t.Fatalf("SortChildren not canonical: %q vs %q", s1.Key(), s2.Key())
		}
	}
}

func TestSortChildrenPreservesEval(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := randomTree(r, 3)
		s := SortChildren(n)
		b := randomBinding(r)
		want, _ := n.Eval(b)
		got, _ := s.Eval(b)
		if got != want {
			t.Fatalf("SortChildren changed semantics: %v vs %v", n, s)
		}
	}
}
