package condition

// Simplify returns an equivalent, usually smaller condition:
//
//   - duplicate children of a connector are merged (C ^ C ≡ C — the copy
//     rule read right-to-left);
//   - contradictory equality conjunctions (a = 1 ^ a = 2) collapse to a
//     canonical always-false atom set, surfaced to the caller via the
//     second return value;
//   - single-child connectors collapse;
//   - nested same-connector children are flattened (canonical form).
//
// The boolean result reports whether the condition is unsatisfiable
// (guaranteed empty result). Simplify never returns nil: an unsatisfiable
// condition is returned as-is (still evaluable), letting callers decide
// whether to skip the source round-trip.
func Simplify(n Node) (Node, bool) {
	s := simplify(Canonicalize(n))
	return s.node, s.unsat
}

type simplified struct {
	node  Node
	unsat bool
}

func simplify(n Node) simplified {
	switch t := n.(type) {
	case *And:
		var kids []Node
		seen := map[string]bool{}
		unsat := false
		// Track one equality binding per attribute to spot
		// contradictions like a = 1 ^ a = 2.
		eq := map[string]Value{}
		for _, k := range t.Kids {
			sk := simplify(k)
			if sk.unsat {
				unsat = true
			}
			key := sk.node.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			// Placeholder values are excluded: two distinct params on the
			// same attribute may bind to the same constant, so they are
			// not a contradiction.
			if a, ok := sk.node.(*Atomic); ok && a.Op == OpEq && !a.Val.IsParam() {
				if prev, bound := eq[a.Attr]; bound && !prev.Equal(a.Val) {
					unsat = true
				}
				eq[a.Attr] = a.Val
			}
			kids = append(kids, sk.node)
		}
		if len(kids) == 1 {
			return simplified{node: kids[0], unsat: unsat}
		}
		return simplified{node: &And{Kids: kids}, unsat: unsat}
	case *Or:
		var kids []Node
		seen := map[string]bool{}
		allUnsat := true
		for _, k := range t.Kids {
			sk := simplify(k)
			if sk.unsat {
				// An unsatisfiable disjunct contributes nothing, but
				// keep at least one child so the tree stays non-empty.
				continue
			}
			allUnsat = false
			key := sk.node.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			kids = append(kids, sk.node)
		}
		if allUnsat {
			// Every disjunct is unsatisfiable: keep the original
			// (evaluable) shape and report unsat.
			return simplified{node: t.Clone(), unsat: true}
		}
		if len(kids) == 1 {
			return simplified{node: kids[0]}
		}
		return simplified{node: &Or{Kids: kids}}
	default:
		return simplified{node: n.Clone()}
	}
}
