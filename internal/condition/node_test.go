package condition

import (
	"reflect"
	"testing"
)

// figure1 builds the paper's Figure 1 CT:
// (c1 ^ c2) ^ (c3 _ c4) with the BMW bindings of §4.
func figure1() Node {
	c1 := NewAtomic("make", OpEq, String("BMW"))
	c2 := NewAtomic("price", OpLt, Int(40000))
	c3 := NewAtomic("color", OpEq, String("red"))
	c4 := NewAtomic("color", OpEq, String("black"))
	return NewAnd(NewAnd(c1, c2), NewOr(c3, c4))
}

func TestEvalFigure1(t *testing.T) {
	ct := figure1()
	tests := []struct {
		b    MapBinder
		want bool
	}{
		{MapBinder{"make": String("BMW"), "price": Int(30000), "color": String("red")}, true},
		{MapBinder{"make": String("BMW"), "price": Int(30000), "color": String("black")}, true},
		{MapBinder{"make": String("BMW"), "price": Int(30000), "color": String("blue")}, false},
		{MapBinder{"make": String("BMW"), "price": Int(50000), "color": String("red")}, false},
		{MapBinder{"make": String("Audi"), "price": Int(30000), "color": String("red")}, false},
	}
	for i, tc := range tests {
		got, err := ct.Eval(tc.b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != tc.want {
			t.Errorf("case %d: Eval = %v, want %v", i, got, tc.want)
		}
	}
}

func TestEvalMissingAttribute(t *testing.T) {
	ct := MustParse(`make = "BMW"`)
	if _, err := ct.Eval(MapBinder{}); err == nil {
		t.Error("expected error for unbound attribute")
	}
}

func TestEvalShortCircuitOr(t *testing.T) {
	// The first disjunct binds; the second refers to a missing attribute.
	// OR must short-circuit like the mediator's evaluator would.
	ct := MustParse(`a = 1 or missing = 2`)
	got, err := ct.Eval(MapBinder{"a": Int(1)})
	if err != nil || !got {
		t.Errorf("short-circuit OR: got %v, %v", got, err)
	}
}

func TestEvalShortCircuitAnd(t *testing.T) {
	ct := MustParse(`a = 1 and missing = 2`)
	got, err := ct.Eval(MapBinder{"a": Int(2)})
	if err != nil || got {
		t.Errorf("short-circuit AND: got %v, %v", got, err)
	}
}

func TestAttrs(t *testing.T) {
	ct := figure1()
	want := []string{"color", "make", "price"}
	if got := Attrs(ct); !reflect.DeepEqual(got, want) {
		t.Errorf("Attrs = %v, want %v", got, want)
	}
}

func TestAtomsOrderAndSize(t *testing.T) {
	ct := figure1()
	atoms := Atoms(ct)
	if len(atoms) != 4 {
		t.Fatalf("len(Atoms) = %d, want 4", len(atoms))
	}
	if atoms[0].Attr != "make" || atoms[1].Attr != "price" || atoms[2].Attr != "color" || atoms[3].Attr != "color" {
		t.Errorf("atoms out of order: %v", atoms)
	}
	if Size(ct) != 4 {
		t.Errorf("Size = %d, want 4", Size(ct))
	}
}

func TestDepth(t *testing.T) {
	if d := Depth(figure1()); d != 3 {
		t.Errorf("Depth(figure1) = %d, want 3", d)
	}
	if d := Depth(NewAtomic("a", OpEq, Int(1))); d != 1 {
		t.Errorf("Depth(leaf) = %d, want 1", d)
	}
	if d := Depth(True()); d != 1 {
		t.Errorf("Depth(true) = %d, want 1", d)
	}
}

func TestCloneConnectorSpineIndependent(t *testing.T) {
	ct := figure1().(*And)
	cp := ct.Clone().(*And)
	if !Equal(ct, cp) {
		t.Fatal("clone not equal to original")
	}
	// Nodes are immutable once used, but the fixer reorders a clone's
	// child slices before rebuilding nodes, so the clone's connector
	// spine — including each Kids slice — must be independent of the
	// original's.
	cp.Kids[0], cp.Kids[1] = cp.Kids[1], cp.Kids[0]
	orig := &And{Kids: ct.Kids}
	swapped := &And{Kids: cp.Kids}
	if Equal(orig, swapped) {
		t.Error("clone shares its child slice with the original")
	}
	if ct.Kids[0].Key() == cp.Kids[0].Key() {
		t.Error("swap leaked into the original's children")
	}
}

func TestKeyDistinguishesStructure(t *testing.T) {
	flat := MustParse(`a = 1 ^ b = 2 ^ c = 3`)
	nested := MustParse(`a = 1 ^ (b = 2 ^ c = 3)`)
	if flat.Key() == nested.Key() {
		t.Error("Key must distinguish associativity variants")
	}
	if NormKey(flat) != NormKey(nested) {
		t.Error("NormKey must conflate associativity variants")
	}
}

func TestKeyDistinguishesOrder(t *testing.T) {
	ab := MustParse(`a = 1 ^ b = 2`)
	ba := MustParse(`b = 2 ^ a = 1`)
	if ab.Key() == ba.Key() {
		t.Error("Key must distinguish commutativity variants")
	}
	if NormKey(ab) != NormKey(ba) {
		t.Error("NormKey must conflate commutativity variants")
	}
}

func TestTruth(t *testing.T) {
	if !IsTrue(True()) {
		t.Error("IsTrue(True()) = false")
	}
	if IsTrue(MustParse(`a = 1`)) {
		t.Error("IsTrue(atom) = true")
	}
	ok, err := True().Eval(MapBinder{})
	if err != nil || !ok {
		t.Errorf("True().Eval = %v, %v", ok, err)
	}
	if True().Key() != "true" {
		t.Errorf("True().Key() = %q", True().Key())
	}
}

func TestAttrSet(t *testing.T) {
	set := AttrSet(figure1())
	if len(set) != 3 || !set["make"] || !set["price"] || !set["color"] {
		t.Errorf("AttrSet = %v", set)
	}
}
