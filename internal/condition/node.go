package condition

import (
	"fmt"
	"sort"
	"strings"
)

// Binder supplies attribute values during evaluation. relation.Tuple
// implements it; tests may use map-backed binders.
type Binder interface {
	// Lookup returns the value bound to the attribute and whether the
	// attribute exists.
	Lookup(attr string) (Value, bool)
}

// MapBinder is a convenience Binder backed by a map.
type MapBinder map[string]Value

// Lookup implements Binder.
func (m MapBinder) Lookup(attr string) (Value, bool) {
	v, ok := m[attr]
	return v, ok
}

// Node is a node of a condition tree (CT). The three implementations are
// *Atomic (leaf comparisons), *And and *Or (Boolean connectors), plus the
// trivially-true condition *Truth used for download queries.
//
// Nodes are immutable once they have been used: Key, Hash, Canonicalize
// and NormKey cache their results on the node, so code that needs a
// variant of an existing tree must build fresh nodes rather than edit
// fields in place.
type Node interface {
	// Eval evaluates the condition against a binder.
	Eval(b Binder) (bool, error)
	// Clone returns a structurally identical tree whose connector spine
	// (including each connector's child slice) is independent of the
	// receiver's. Immutable leaves may be shared between the two.
	Clone() Node
	// Key returns an exact structural rendering. Two nodes with equal
	// Keys are structurally identical, including child order. The key is
	// computed once and cached on the node.
	Key() string
	// Hash returns a 64-bit structural hash of Key: nodes with equal
	// Keys have equal hashes. It is cached alongside the key.
	Hash() uint64
	// appendAttrs accumulates attribute names into the set.
	appendAttrs(set map[string]bool)
}

// Atomic is a leaf comparison `Attr Op Val`.
type Atomic struct {
	Attr string
	Op   Op
	Val  Value

	meta nodeMeta
}

// NewAtomic builds an atomic condition.
func NewAtomic(attr string, op Op, val Value) *Atomic {
	return &Atomic{Attr: attr, Op: op, Val: val}
}

// Eval implements Node.
func (a *Atomic) Eval(b Binder) (bool, error) {
	v, ok := b.Lookup(a.Attr)
	if !ok {
		return false, fmt.Errorf("condition: attribute %q not bound", a.Attr)
	}
	return a.Op.Apply(v, a.Val)
}

// Clone implements Node. Leaves are immutable, so the receiver itself is
// returned.
func (a *Atomic) Clone() Node { return a }

// Key implements Node.
func (a *Atomic) Key() string { return a.keyMemo().key }

// Hash implements Node.
func (a *Atomic) Hash() uint64 { return a.keyMemo().hash }

func (a *Atomic) keyMemo() *keyMemo {
	if k := a.meta.loadKey(); k != nil {
		return k
	}
	key := a.Attr + " " + a.Op.String() + " " + a.Val.String()
	k := &keyMemo{key: key, hash: hashString(key)}
	a.meta.storeKey(k)
	return k
}

// String renders the atomic condition.
func (a *Atomic) String() string { return a.Key() }

func (a *Atomic) appendAttrs(set map[string]bool) { set[a.Attr] = true }

// And is a conjunction of two or more children (a single child is legal
// during construction and removed by Canonicalize).
type And struct {
	Kids []Node

	meta nodeMeta
}

// NewAnd builds a conjunction.
func NewAnd(kids ...Node) *And { return &And{Kids: kids} }

// Eval implements Node.
func (n *And) Eval(b Binder) (bool, error) {
	for _, k := range n.Kids {
		ok, err := k.Eval(b)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Clone implements Node. The clone carries the receiver's cached forms;
// it is valid as long as the clone's children are not edited in place
// (rebuild nodes instead, as the fixer does).
func (n *And) Clone() Node {
	kids := make([]Node, len(n.Kids))
	for i, k := range n.Kids {
		kids[i] = k.Clone()
	}
	return &And{Kids: kids, meta: n.meta.snapshot()}
}

// Key implements Node.
func (n *And) Key() string { return n.keyMemo().key }

// Hash implements Node.
func (n *And) Hash() uint64 { return n.keyMemo().hash }

func (n *And) keyMemo() *keyMemo {
	if k := n.meta.loadKey(); k != nil {
		return k
	}
	key := connectorKey("&", n.Kids)
	k := &keyMemo{key: key, hash: hashString(key)}
	n.meta.storeKey(k)
	return k
}

// String renders the conjunction with explicit grouping.
func (n *And) String() string { return n.Key() }

func (n *And) appendAttrs(set map[string]bool) {
	for _, k := range n.Kids {
		k.appendAttrs(set)
	}
}

// Or is a disjunction of two or more children.
type Or struct {
	Kids []Node

	meta nodeMeta
}

// NewOr builds a disjunction.
func NewOr(kids ...Node) *Or { return &Or{Kids: kids} }

// Eval implements Node.
func (n *Or) Eval(b Binder) (bool, error) {
	for _, k := range n.Kids {
		ok, err := k.Eval(b)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Clone implements Node. See And.Clone for the sharing contract.
func (n *Or) Clone() Node {
	kids := make([]Node, len(n.Kids))
	for i, k := range n.Kids {
		kids[i] = k.Clone()
	}
	return &Or{Kids: kids, meta: n.meta.snapshot()}
}

// Key implements Node.
func (n *Or) Key() string { return n.keyMemo().key }

// Hash implements Node.
func (n *Or) Hash() uint64 { return n.keyMemo().hash }

func (n *Or) keyMemo() *keyMemo {
	if k := n.meta.loadKey(); k != nil {
		return k
	}
	key := connectorKey("|", n.Kids)
	k := &keyMemo{key: key, hash: hashString(key)}
	n.meta.storeKey(k)
	return k
}

// String renders the disjunction with explicit grouping.
func (n *Or) String() string { return n.Key() }

func (n *Or) appendAttrs(set map[string]bool) {
	for _, k := range n.Kids {
		k.appendAttrs(set)
	}
}

// Truth is the trivially-true condition, used for "download the source"
// queries SP(true, A, R).
type Truth struct{}

// True returns the trivially-true condition.
func True() *Truth { return &Truth{} }

// Eval implements Node.
func (*Truth) Eval(Binder) (bool, error) { return true, nil }

// Clone implements Node.
func (t *Truth) Clone() Node { return t }

// Key implements Node.
func (*Truth) Key() string { return "true" }

// truthHash is the shared hash of the constant "true" key.
var truthHash = hashString("true")

// Hash implements Node.
func (*Truth) Hash() uint64 { return truthHash }

// String renders the condition.
func (*Truth) String() string { return "true" }

func (*Truth) appendAttrs(map[string]bool) {}

// IsTrue reports whether n is the trivially-true condition.
func IsTrue(n Node) bool {
	_, ok := n.(*Truth)
	return ok
}

func connectorKey(op string, kids []Node) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		switch k.(type) {
		case *And, *Or:
			parts[i] = "(" + k.Key() + ")"
		default:
			parts[i] = k.Key()
		}
	}
	return strings.Join(parts, " "+op+" ")
}

// Attrs returns the sorted set of attribute names appearing in the
// condition (Attr(C) in the paper).
func Attrs(n Node) []string {
	set := make(map[string]bool)
	n.appendAttrs(set)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// AttrSet returns the attribute names appearing in the condition as a set.
func AttrSet(n Node) map[string]bool {
	set := make(map[string]bool)
	n.appendAttrs(set)
	return set
}

// Equal reports structural equality, including child order.
func Equal(a, b Node) bool { return a.Key() == b.Key() }

// Atoms returns the leaf atomic conditions in left-to-right order.
func Atoms(n Node) []*Atomic {
	var out []*Atomic
	var walk func(Node)
	walk = func(m Node) {
		switch t := m.(type) {
		case *Atomic:
			out = append(out, t)
		case *And:
			for _, k := range t.Kids {
				walk(k)
			}
		case *Or:
			for _, k := range t.Kids {
				walk(k)
			}
		}
	}
	walk(n)
	return out
}

// Size returns the number of atomic conditions in the tree.
func Size(n Node) int {
	switch t := n.(type) {
	case *Atomic:
		return 1
	case *And:
		s := 0
		for _, k := range t.Kids {
			s += Size(k)
		}
		return s
	case *Or:
		s := 0
		for _, k := range t.Kids {
			s += Size(k)
		}
		return s
	default:
		return 0
	}
}

// Depth returns the height of the tree; a leaf has depth 1.
func Depth(n Node) int {
	switch t := n.(type) {
	case *And:
		d := 0
		for _, k := range t.Kids {
			if kd := Depth(k); kd > d {
				d = kd
			}
		}
		return d + 1
	case *Or:
		d := 0
		for _, k := range t.Kids {
			if kd := Depth(k); kd > d {
				d = kd
			}
		}
		return d + 1
	default:
		return 1
	}
}
