package condition

import (
	"sort"
	"strings"
)

// Canonicalize converts a CT into the canonical form of §6.4: the children
// of every AND node are leaves or OR nodes, and the children of every OR
// node are leaves or AND nodes. Same-connector nesting is flattened and
// single-child connectors are collapsed. The input is not modified. The
// conversion is linear in the size of the input CT the first time, as the
// paper requires; the result is cached on the node, so re-canonicalizing —
// in particular, canonicalizing a tree that is already canonical — is
// O(1). Repeated calls return the same shared immutable tree, which may
// share leaf and subtree structure with the input.
func Canonicalize(n Node) Node {
	m := metaOf(n)
	if m != nil {
		if c := m.loadCanon(); c != nil {
			return c
		}
	}
	c := canonicalize(n)
	// Canonical forms are fixed points: mark the result as its own
	// canonical so the idempotent call is a pointer load.
	if cm := metaOf(c); cm != nil && cm.loadCanon() == nil {
		cm.storeCanon(c)
	}
	if m != nil {
		m.storeCanon(c)
	}
	return c
}

func canonicalize(n Node) Node {
	switch t := n.(type) {
	case *And:
		var kids []Node
		for _, k := range t.Kids {
			ck := Canonicalize(k)
			if inner, ok := ck.(*And); ok {
				kids = append(kids, inner.Kids...)
			} else {
				kids = append(kids, ck)
			}
		}
		if len(kids) == 1 {
			return kids[0]
		}
		return &And{Kids: kids}
	case *Or:
		var kids []Node
		for _, k := range t.Kids {
			ck := Canonicalize(k)
			if inner, ok := ck.(*Or); ok {
				kids = append(kids, inner.Kids...)
			} else {
				kids = append(kids, ck)
			}
		}
		if len(kids) == 1 {
			return kids[0]
		}
		return &Or{Kids: kids}
	default:
		// Leaves are immutable and already canonical.
		return n
	}
}

// IsCanonical reports whether the CT is already in canonical form.
func IsCanonical(n Node) bool {
	switch t := n.(type) {
	case *And:
		if len(t.Kids) < 2 {
			return false
		}
		for _, k := range t.Kids {
			if _, bad := k.(*And); bad {
				return false
			}
			if !IsCanonical(k) {
				return false
			}
		}
		return true
	case *Or:
		if len(t.Kids) < 2 {
			return false
		}
		for _, k := range t.Kids {
			if _, bad := k.(*Or); bad {
				return false
			}
			if !IsCanonical(k) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// NormKey returns an order-insensitive semantic key: the canonical form
// with children sorted recursively. Two CTs related only by commutativity
// and associativity share a NormKey; CTs related by the distributive or
// copy rules generally do not. Like Key, the result is cached per node.
func NormKey(n Node) string {
	return normKey(Canonicalize(n))
}

func normKey(n Node) string {
	switch t := n.(type) {
	case *And:
		return cachedNormKey(&t.meta, "&", t.Kids)
	case *Or:
		return cachedNormKey(&t.meta, "|", t.Kids)
	default:
		return n.Key()
	}
}

func cachedNormKey(m *nodeMeta, op string, kids []Node) string {
	if p := m.loadNorm(); p != nil {
		return *p
	}
	s := sortedConnectorKey(op, kids)
	m.storeNorm(&s)
	return s
}

func sortedConnectorKey(op string, kids []Node) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		p := normKey(k)
		switch k.(type) {
		case *And, *Or:
			p = "(" + p + ")"
		}
		parts[i] = p
	}
	sort.Strings(parts)
	return strings.Join(parts, " "+op+" ")
}

// SortChildren returns a copy of the CT with children of every connector
// sorted by NormKey; the result is a deterministic representative of the
// commutative equivalence class.
func SortChildren(n Node) Node {
	switch t := n.(type) {
	case *And:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = SortChildren(k)
		}
		sort.SliceStable(kids, func(i, j int) bool { return normKey(kids[i]) < normKey(kids[j]) })
		return &And{Kids: kids}
	case *Or:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = SortChildren(k)
		}
		sort.SliceStable(kids, func(i, j int) bool { return normKey(kids[i]) < normKey(kids[j]) })
		return &Or{Kids: kids}
	default:
		return n.Clone()
	}
}
