package condition

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp     // comparison operator
	tokAnd    // and / ^ / &&
	tokOr     // or / | / || / v
	tokLParen // (
	tokRParen // )
	tokTrue   // true literal
	tokNot    // not / !
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return strconv.Quote(t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex splits the source into tokens. The connectors accepted are
// and/AND/^/&& for conjunction and or/OR/|/||/v/_ for disjunction,
// covering both the paper's notation (^, _) and conventional syntax.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '(':
			l.pos++
			l.emit(tokLParen, "(")
		case c == ')':
			l.pos++
			l.emit(tokRParen, ")")
		case c == '^':
			l.pos++
			l.emit(tokAnd, "^")
		case c == '&':
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '&' {
				l.pos++
			}
			l.emit(tokAnd, "&&")
		case c == '|':
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '|' {
				l.pos++
			}
			l.emit(tokOr, "||")
		case c == '"' || c == '\'':
			s, err := l.lexString(c)
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c == '=' || c == '!' || c == '<' || c == '>':
			op := l.lexOperator()
			if op == "!" {
				// `!contains` or a bare negation `!`.
				if strings.HasPrefix(l.src[l.pos:], "contains") {
					l.pos += len("contains")
					l.toks = append(l.toks, token{kind: tokOp, text: "!contains", pos: start})
					continue
				}
				l.toks = append(l.toks, token{kind: tokNot, text: "!", pos: start})
				continue
			}
			if _, ok := ParseOp(op); !ok {
				return nil, fmt.Errorf("condition: invalid operator %q at %d", op, start)
			}
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: start})
		case c == '-' || c == '+' || unicode.IsDigit(rune(c)):
			num, err := l.lexNumber()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: num, pos: start})
		case isIdentStart(c):
			word := l.lexIdent()
			switch strings.ToLower(word) {
			case "and":
				l.toks = append(l.toks, token{kind: tokAnd, text: word, pos: start})
			case "or":
				l.toks = append(l.toks, token{kind: tokOr, text: word, pos: start})
			case "contains":
				l.toks = append(l.toks, token{kind: tokOp, text: "contains", pos: start})
			case "true":
				l.toks = append(l.toks, token{kind: tokTrue, text: word, pos: start})
			case "not":
				l.toks = append(l.toks, token{kind: tokNot, text: word, pos: start})
			case "_":
				// A bare underscore is the paper's disjunction symbol.
				l.toks = append(l.toks, token{kind: tokOr, text: word, pos: start})
			default:
				l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			return nil, fmt.Errorf("condition: unexpected character %q at %d", c, start)
		}
	}
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos - len(text)})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
}

func (l *lexer) lexString(quote byte) (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return sb.String(), nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		sb.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("condition: unterminated string starting at %d", start)
}

func (l *lexer) lexOperator() string {
	start := l.pos
	for l.pos < len(l.src) && strings.IndexByte("=!<>", l.src[l.pos]) >= 0 {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexNumber() (string, error) {
	start := l.pos
	if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
		l.pos++
	}
	digits := false
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
		if l.src[l.pos] != '.' {
			digits = true
		}
		l.pos++
	}
	if !digits {
		return "", fmt.Errorf("condition: malformed number at %d", start)
	}
	// Exponent notation: 1e9, 2.5E-3, 1e+19.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		expDigits := false
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			expDigits = true
			l.pos++
		}
		if !expDigits {
			// Not an exponent after all (e.g. `1 each`); back off.
			l.pos = save
		}
	}
	return l.src[start:l.pos], nil
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9') || c == '.'
}
