package condition

import "fmt"

// This file implements the parameterization pass behind the mediator's
// plan-template cache: Parameterize lifts the constants out of a
// condition's value positions, leaving a skeleton whose leaves carry
// typed placeholders, and Bind substitutes a constant vector back in.
// Two conditions that differ only in constants (and in the order of
// commutative children) produce the identical skeleton with their
// constants in the identical binding order, so a plan computed for the
// skeleton can serve every member of the shape class.

// ParamSite describes one placeholder introduced by Parameterize: the
// binding-vector position it owns and the value position (attribute,
// operator, element kind) it sits in. The mediator uses sites to ask SSDL
// whether a future binding violates a value-constrained grammar position.
type ParamSite struct {
	Index int
	Attr  string
	Op    Op
	Elem  Kind
}

// Parameterized is the result of lifting constants out of a condition.
type Parameterized struct {
	// Skeleton is the sorted canonical representative of the input with
	// every lifted constant replaced by a placeholder. Its Key is a
	// deterministic function of the input's NormKey class, so it is the
	// template-cache key.
	Skeleton Node
	// Bindings holds the lifted constants, indexed by placeholder.
	Bindings []Value
	// Sites describes each placeholder's value position, parallel to
	// Bindings.
	Sites []ParamSite
}

// Parameterize lifts the constants of n's value positions into an ordered
// binding vector. It operates on the sorted canonical representative of n
// (SortChildren ∘ Canonicalize), so any two conditions related by
// commutativity/associativity — or differing only in constants — yield a
// Skeleton with the same Key and their constants at the same indices.
//
// Structurally identical atoms share one placeholder: `a = 1 | a = 1`
// lifts to `a = $0 | a = $0`, which keeps parameterization commuting with
// Simplify's duplicate folding.
//
// Two classes of constants are refused (left inline, producing fewer
// bindings): values that are already placeholders, and string constants
// that name the atom's own attribute or any attribute of the condition
// (`a = a`, or `a = "b"` inside a tree that also constrains b). The
// latter is conservative — the parser renders both `a = a` and `a = "a"`
// as the same string constant, so a lifted template could silently unify
// an intended attribute reference with ordinary data; such queries stay
// on the full planning path.
//
// A condition with no liftable constants returns Bindings of length zero;
// callers should treat that as "do not template".
func Parameterize(n Node) Parameterized {
	rep := SortChildren(Canonicalize(n))
	attrs := AttrSet(rep)
	p := Parameterized{Skeleton: rep}
	indexByAtom := make(map[string]int)
	skeleton, changed := parameterize(rep, attrs, indexByAtom, &p)
	if changed {
		p.Skeleton = skeleton
	}
	return p
}

func parameterize(n Node, attrs map[string]bool, indexByAtom map[string]int, p *Parameterized) (Node, bool) {
	switch t := n.(type) {
	case *Atomic:
		if !liftable(t, attrs) {
			return t, false
		}
		if idx, ok := indexByAtom[t.Key()]; ok {
			return NewAtomic(t.Attr, t.Op, Param(idx, t.Val.Kind)), true
		}
		idx := len(p.Bindings)
		indexByAtom[t.Key()] = idx
		p.Bindings = append(p.Bindings, t.Val)
		p.Sites = append(p.Sites, ParamSite{Index: idx, Attr: t.Attr, Op: t.Op, Elem: t.Val.Kind})
		return NewAtomic(t.Attr, t.Op, Param(idx, t.Val.Kind)), true
	case *And:
		kids, changed := parameterizeKids(t.Kids, attrs, indexByAtom, p)
		if !changed {
			return t, false
		}
		return &And{Kids: kids}, true
	case *Or:
		kids, changed := parameterizeKids(t.Kids, attrs, indexByAtom, p)
		if !changed {
			return t, false
		}
		return &Or{Kids: kids}, true
	default:
		return n, false
	}
}

func parameterizeKids(kids []Node, attrs map[string]bool, indexByAtom map[string]int, p *Parameterized) ([]Node, bool) {
	out := make([]Node, len(kids))
	changed := false
	for i, k := range kids {
		nk, ch := parameterize(k, attrs, indexByAtom, p)
		out[i] = nk
		changed = changed || ch
	}
	if !changed {
		return kids, false
	}
	return out, true
}

// liftable reports whether the atom's constant may be replaced by a
// placeholder.
func liftable(a *Atomic, attrs map[string]bool) bool {
	if a.Val.IsParam() {
		return false
	}
	if a.Val.Kind == KindString && attrs[a.Val.S] {
		// The constant names an attribute of the condition (covers the
		// self-comparison `a = a`): refuse, see Parameterize.
		return false
	}
	return true
}

// HasParams reports whether the condition contains any placeholder value.
func HasParams(n Node) bool {
	switch t := n.(type) {
	case *Atomic:
		return t.Val.IsParam()
	case *And:
		for _, k := range t.Kids {
			if HasParams(k) {
				return true
			}
		}
	case *Or:
		for _, k := range t.Kids {
			if HasParams(k) {
				return true
			}
		}
	}
	return false
}

// Bind substitutes bindings into the placeholders of a skeleton,
// returning a fully constant condition. Subtrees without placeholders are
// shared with the input. It is an error for a placeholder index to fall
// outside the vector, for a binding's kind to differ from the
// placeholder's element kind, or for a binding to itself be a
// placeholder; Bind(Parameterize(c).Skeleton, Parameterize(c).Bindings)
// round-trips to the sorted canonical form of c.
func Bind(n Node, bindings []Value) (Node, error) {
	bound, _, err := bind(n, bindings)
	return bound, err
}

func bind(n Node, bindings []Value) (Node, bool, error) {
	switch t := n.(type) {
	case *Atomic:
		if !t.Val.IsParam() {
			return t, false, nil
		}
		i := t.Val.ParamIndex()
		if i < 0 || i >= len(bindings) {
			return nil, false, fmt.Errorf("condition: placeholder $%d out of range for %d bindings", i, len(bindings))
		}
		v := bindings[i]
		if v.IsParam() {
			return nil, false, fmt.Errorf("condition: binding %d for placeholder $%d is itself a placeholder", i, i)
		}
		if v.Kind != t.Val.Elem {
			return nil, false, fmt.Errorf("condition: binding %d is %s, placeholder $%d expects %s", i, v.Kind, i, t.Val.Elem)
		}
		return NewAtomic(t.Attr, t.Op, v), true, nil
	case *And:
		kids, changed, err := bindKids(t.Kids, bindings)
		if err != nil {
			return nil, false, err
		}
		if !changed {
			return t, false, nil
		}
		return &And{Kids: kids}, true, nil
	case *Or:
		kids, changed, err := bindKids(t.Kids, bindings)
		if err != nil {
			return nil, false, err
		}
		if !changed {
			return t, false, nil
		}
		return &Or{Kids: kids}, true, nil
	default:
		return n, false, nil
	}
}

func bindKids(kids []Node, bindings []Value) ([]Node, bool, error) {
	out := make([]Node, len(kids))
	changed := false
	for i, k := range kids {
		nk, ch, err := bind(k, bindings)
		if err != nil {
			return nil, false, err
		}
		out[i] = nk
		changed = changed || ch
	}
	if !changed {
		return kids, false, nil
	}
	return out, true, nil
}
