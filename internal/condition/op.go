package condition

import "fmt"

// Op is a comparison operator usable in an atomic condition.
type Op int

const (
	// OpEq is equality (=).
	OpEq Op = iota
	// OpNe is inequality (!=).
	OpNe
	// OpLt is strict less-than (<).
	OpLt
	// OpLe is less-or-equal (<=).
	OpLe
	// OpGt is strict greater-than (>).
	OpGt
	// OpGe is greater-or-equal (>=).
	OpGe
	// OpContains is substring containment on strings, as in
	// `title contains "dreams"`.
	OpContains
	// OpNotContains is the complement of OpContains; it exists so that
	// negations can be compiled down to atomic conditions.
	OpNotContains
)

var opNames = map[Op]string{
	OpEq:          "=",
	OpNe:          "!=",
	OpLt:          "<",
	OpLe:          "<=",
	OpGt:          ">",
	OpGe:          ">=",
	OpContains:    "contains",
	OpNotContains: "!contains",
}

var opByName = map[string]Op{
	"=":         OpEq,
	"==":        OpEq,
	"!=":        OpNe,
	"<>":        OpNe,
	"<":         OpLt,
	"<=":        OpLe,
	">":         OpGt,
	">=":        OpGe,
	"contains":  OpContains,
	"!contains": OpNotContains,
}

// Complement returns the operator computing the negation of o, and
// whether one exists (every operator here has one).
func (o Op) Complement() (Op, bool) {
	switch o {
	case OpEq:
		return OpNe, true
	case OpNe:
		return OpEq, true
	case OpLt:
		return OpGe, true
	case OpLe:
		return OpGt, true
	case OpGt:
		return OpLe, true
	case OpGe:
		return OpLt, true
	case OpContains:
		return OpNotContains, true
	case OpNotContains:
		return OpContains, true
	default:
		return o, false
	}
}

// String returns the operator's surface syntax.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ParseOp resolves an operator token; it accepts the aliases == and <>.
func ParseOp(s string) (Op, bool) {
	o, ok := opByName[s]
	return o, ok
}

// Apply evaluates `left o right`. The boolean result is accompanied by an
// error when the two values cannot be compared under this operator (for
// example ordering a string against a number, or `contains` on non-string
// operands).
func (o Op) Apply(left, right Value) (bool, error) {
	if left.Kind == KindParam || right.Kind == KindParam {
		// A placeholder reaching evaluation means a skeleton escaped
		// without being bound; fail loudly rather than let the eq/ne
		// cross-kind tolerance below turn the bug into a silent miss.
		return false, fmt.Errorf("condition: cannot evaluate unbound placeholder (%s %s %s)", left, o, right)
	}
	if o == OpContains || o == OpNotContains {
		if left.Kind != KindString || right.Kind != KindString {
			return false, fmt.Errorf("condition: contains requires string operands, got %s and %s", left.Kind, right.Kind)
		}
		got := containsFold(left.S, right.S)
		if o == OpNotContains {
			got = !got
		}
		return got, nil
	}
	c, ok := left.Compare(right)
	if !ok {
		// = and != have a sensible answer across kinds: values of
		// incomparable kinds are simply not equal.
		switch o {
		case OpEq:
			return false, nil
		case OpNe:
			return true, nil
		}
		return false, fmt.Errorf("condition: cannot compare %s value with %s value", left.Kind, right.Kind)
	}
	switch o {
	case OpEq:
		return c == 0, nil
	case OpNe:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("condition: unknown operator %v", o)
	}
}

// containsFold reports whether sub occurs in s under ASCII case folding,
// matching how web-form keyword search behaves.
func containsFold(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	if len(sub) > len(s) {
		return false
	}
	lower := func(b byte) byte {
		if 'A' <= b && b <= 'Z' {
			return b + 'a' - 'A'
		}
		return b
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := 0; j < len(sub); j++ {
			if lower(s[i+j]) != lower(sub[j]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
