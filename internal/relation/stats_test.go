package relation

import (
	"math"
	"strings"
	"testing"

	"repro/internal/condition"
)

func TestCollectStatsBasics(t *testing.T) {
	r := carRelation(t)
	st := CollectStats(r)
	if st.Tuples != 5 {
		t.Fatalf("Tuples = %d", st.Tuples)
	}
	mk := st.Columns["make"]
	if mk.Distinct != 3 {
		t.Errorf("make distinct = %d, want 3", mk.Distinct)
	}
	pr := st.Columns["price"]
	if !pr.Numeric || pr.Min != 14000 || pr.Max != 45000 {
		t.Errorf("price stats = %+v", pr)
	}
}

func TestSelectivityEqualityUsesFrequencies(t *testing.T) {
	r := carRelation(t)
	st := CollectStats(r)
	sel := st.Selectivity(&condition.Atomic{Attr: "make", Op: condition.OpEq, Val: condition.String("BMW")})
	if math.Abs(sel-0.4) > 1e-9 {
		t.Errorf("sel(make=BMW) = %v, want 0.4", sel)
	}
	selMissing := st.Selectivity(&condition.Atomic{Attr: "make", Op: condition.OpEq, Val: condition.String("Yugo")})
	if selMissing > 0.4 {
		t.Errorf("sel of absent value should be small, got %v", selMissing)
	}
}

func TestSelectivityRange(t *testing.T) {
	r := carRelation(t)
	st := CollectStats(r)
	lo := st.Selectivity(&condition.Atomic{Attr: "price", Op: condition.OpLt, Val: condition.Int(14000)})
	hi := st.Selectivity(&condition.Atomic{Attr: "price", Op: condition.OpLt, Val: condition.Int(45000)})
	if lo >= hi {
		t.Errorf("range selectivity not monotone: %v >= %v", lo, hi)
	}
	if lo < 0 || hi > 1 {
		t.Errorf("selectivities out of range: %v %v", lo, hi)
	}
}

func TestSelectivityUnknownAttr(t *testing.T) {
	st := CollectStats(carRelation(t))
	if s := st.Selectivity(&condition.Atomic{Attr: "vin", Op: condition.OpEq, Val: condition.Int(1)}); s != 0 {
		t.Errorf("unknown attr selectivity = %v, want 0", s)
	}
}

func TestEstimateFractionComposition(t *testing.T) {
	st := CollectStats(carRelation(t))
	and := condition.MustParse(`make = "BMW" ^ color = "red"`)
	or := condition.MustParse(`make = "BMW" | make = "Toyota"`)
	fa := st.EstimateFraction(and)
	fo := st.EstimateFraction(or)
	if fa <= 0 || fa >= 0.4 {
		t.Errorf("AND fraction = %v, want within (0, 0.4)", fa)
	}
	if fo <= 0.4 || fo > 1 {
		t.Errorf("OR fraction = %v, want within (0.4, 1]", fo)
	}
	if tr := st.EstimateFraction(condition.True()); tr != 1 {
		t.Errorf("fraction(true) = %v", tr)
	}
}

func TestEstimateCountScales(t *testing.T) {
	st := CollectStats(carRelation(t))
	if c := st.EstimateCount(condition.True()); c != 5 {
		t.Errorf("count(true) = %v, want 5", c)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	r := carRelation(t)
	var sb strings.Builder
	if err := WriteTSV(&sb, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(back) {
		t.Error("TSV round trip changed relation")
	}
}

func TestTSVEscaping(t *testing.T) {
	s := MustSchema(Column{"text", condition.KindString})
	r := New(s)
	if err := r.AppendValues(condition.String("tab\there\nnewline\\slash")); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTSV(&sb, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := back.Tuples()[0].Lookup("text")
	if v.S != "tab\there\nnewline\\slash" {
		t.Errorf("escaped round trip = %q", v.S)
	}
}

func TestTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadTSV(strings.NewReader("a:int\nnotanint\n")); err == nil {
		t.Error("bad int should fail")
	}
	if _, err := ReadTSV(strings.NewReader("a:int\tb:int\n1\n")); err == nil {
		t.Error("field count mismatch should fail")
	}
	if _, err := ReadTSV(strings.NewReader("a:mystery\n")); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := ReadTSV(strings.NewReader("a\n")); err == nil {
		t.Error("header without kind should fail")
	}
}
