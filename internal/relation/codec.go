package relation

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/condition"
)

// WriteTSV serializes the relation as tab-separated text with a typed
// header line of the form `name:kind` per column.
func WriteTSV(w io.Writer, r *Relation) error {
	bw := bufio.NewWriter(w)
	header := make([]string, r.Schema().Len())
	for i, c := range r.Schema().Columns() {
		header[i] = c.Name + ":" + c.Kind.String()
	}
	if _, err := bw.WriteString(strings.Join(header, "\t") + "\n"); err != nil {
		return err
	}
	for _, t := range r.Tuples() {
		fields := make([]string, len(t.Values()))
		for i, v := range t.Values() {
			fields[i] = escapeField(v.Text())
		}
		if _, err := bw.WriteString(strings.Join(fields, "\t") + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses a relation written by WriteTSV.
func ReadTSV(r io.Reader) (*Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("relation: empty input")
	}
	headers := strings.Split(sc.Text(), "\t")
	cols := make([]Column, len(headers))
	for i, h := range headers {
		name, kindName, ok := strings.Cut(h, ":")
		if !ok {
			return nil, fmt.Errorf("relation: header %q missing kind", h)
		}
		kind, err := parseKind(kindName)
		if err != nil {
			return nil, err
		}
		cols[i] = Column{Name: name, Kind: kind}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	rel := New(schema)
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != len(cols) {
			return nil, fmt.Errorf("relation: line %d has %d fields, want %d", line, len(fields), len(cols))
		}
		vals := make([]condition.Value, len(fields))
		for i, f := range fields {
			v, err := parseField(unescapeField(f), cols[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: line %d column %s: %w", line, cols[i].Name, err)
			}
			vals[i] = v
		}
		if err := rel.AppendValues(vals...); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rel, nil
}

func parseKind(name string) (condition.Kind, error) {
	switch name {
	case "string":
		return condition.KindString, nil
	case "int":
		return condition.KindInt, nil
	case "float":
		return condition.KindFloat, nil
	case "bool":
		return condition.KindBool, nil
	default:
		return 0, fmt.Errorf("relation: unknown kind %q", name)
	}
}

func parseField(text string, kind condition.Kind) (condition.Value, error) {
	switch kind {
	case condition.KindString:
		return condition.String(text), nil
	case condition.KindInt:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return condition.Value{}, fmt.Errorf("bad int %q", text)
		}
		return condition.Int(i), nil
	case condition.KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return condition.Value{}, fmt.Errorf("bad float %q", text)
		}
		return condition.Float(f), nil
	case condition.KindBool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return condition.Value{}, fmt.Errorf("bad bool %q", text)
		}
		return condition.Bool(b), nil
	default:
		return condition.Value{}, fmt.Errorf("unknown kind %v", kind)
	}
}

func escapeField(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	s = strings.ReplaceAll(s, "\t", `\t`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func unescapeField(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 't':
				sb.WriteByte('\t')
			case 'n':
				sb.WriteByte('\n')
			default:
				sb.WriteByte(s[i])
			}
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}
