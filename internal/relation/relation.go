package relation

import (
	"fmt"
	"sort"

	"repro/internal/condition"
)

// Relation is an in-memory relation: a schema plus a sequence of tuples.
// Relations are treated with multiset semantics until Distinct is applied;
// mediator post-processing (union, intersect) uses set semantics, matching
// the paper's footnote that the mediator performs duplicate elimination as
// needed.
type Relation struct {
	schema  *Schema
	tuples  []Tuple
	indexes map[string]*index
}

// New builds an empty relation over the schema.
func New(s *Schema) *Relation { return &Relation{schema: s} }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the underlying tuple slice. It must not be modified.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Append adds tuples to the relation. Each tuple must be bound to the
// relation's schema.
func (r *Relation) Append(ts ...Tuple) error {
	for _, t := range ts {
		if t.schema != r.schema && !t.schema.Equal(r.schema) {
			return fmt.Errorf("relation: tuple schema %v does not match relation schema %v", t.schema, r.schema)
		}
		r.tuples = append(r.tuples, t)
		r.indexInsert(len(r.tuples) - 1)
	}
	return nil
}

// AppendValues adds one row given as raw values.
func (r *Relation) AppendValues(vals ...condition.Value) error {
	t, err := NewTuple(r.schema, vals...)
	if err != nil {
		return err
	}
	r.tuples = append(r.tuples, t)
	r.indexInsert(len(r.tuples) - 1)
	return nil
}

// Select returns the tuples satisfying the condition. Evaluation errors
// (unknown attributes, type mismatches) abort the scan.
func (r *Relation) Select(cond condition.Node) (*Relation, error) {
	out := New(r.schema)
	if candidates, hit := r.indexProbe(cond); hit {
		for _, i := range candidates {
			t := r.tuples[i]
			ok, err := cond.Eval(t)
			if err != nil {
				return nil, fmt.Errorf("relation: select: %w", err)
			}
			if ok {
				out.tuples = append(out.tuples, t)
			}
		}
		return out, nil
	}
	for _, t := range r.tuples {
		ok, err := cond.Eval(t)
		if err != nil {
			return nil, fmt.Errorf("relation: select: %w", err)
		}
		if ok {
			out.tuples = append(out.tuples, t)
		}
	}
	return out, nil
}

// Count returns the number of tuples satisfying the condition, without
// materializing them.
func (r *Relation) Count(cond condition.Node) (int, error) {
	n := 0
	if candidates, hit := r.indexProbe(cond); hit {
		for _, i := range candidates {
			ok, err := cond.Eval(r.tuples[i])
			if err != nil {
				return 0, fmt.Errorf("relation: count: %w", err)
			}
			if ok {
				n++
			}
		}
		return n, nil
	}
	for _, t := range r.tuples {
		ok, err := cond.Eval(t)
		if err != nil {
			return 0, fmt.Errorf("relation: count: %w", err)
		}
		if ok {
			n++
		}
	}
	return n, nil
}

// Project returns the relation restricted to the named attributes, in the
// given order, with duplicates removed (projection in the paper's SP
// queries is set-valued).
func (r *Relation) Project(attrs []string) (*Relation, error) {
	ps, err := r.schema.Project(attrs)
	if err != nil {
		return nil, fmt.Errorf("relation: project: %w", err)
	}
	out := New(ps)
	seen := make(map[string]bool, len(r.tuples))
	for _, t := range r.tuples {
		pt := t.project(ps)
		k := pt.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out.tuples = append(out.tuples, pt)
	}
	return out, nil
}

// Distinct returns the relation with duplicate tuples removed.
func (r *Relation) Distinct() *Relation {
	out := New(r.schema)
	seen := make(map[string]bool, len(r.tuples))
	for _, t := range r.tuples {
		k := t.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out.tuples = append(out.tuples, t)
	}
	return out
}

// Union returns the set union of r and o; schemas must match by column
// name and kind.
func (r *Relation) Union(o *Relation) (*Relation, error) {
	if !r.schema.Equal(o.schema) {
		return nil, fmt.Errorf("relation: union schema mismatch: %v vs %v", r.schema, o.schema)
	}
	out := New(r.schema)
	seen := make(map[string]bool, len(r.tuples)+len(o.tuples))
	for _, src := range []*Relation{r, o} {
		for _, t := range src.tuples {
			rt := t
			if src.schema != r.schema {
				rt = Tuple{schema: r.schema, vals: t.vals}
			}
			k := rt.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out.tuples = append(out.tuples, rt)
		}
	}
	return out, nil
}

// Intersect returns the set intersection of r and o; schemas must match.
func (r *Relation) Intersect(o *Relation) (*Relation, error) {
	if !r.schema.Equal(o.schema) {
		return nil, fmt.Errorf("relation: intersect schema mismatch: %v vs %v", r.schema, o.schema)
	}
	right := make(map[string]bool, len(o.tuples))
	for _, t := range o.tuples {
		right[t.Key()] = true
	}
	out := New(r.schema)
	seen := make(map[string]bool)
	for _, t := range r.tuples {
		k := t.Key()
		if right[k] && !seen[k] {
			seen[k] = true
			out.tuples = append(out.tuples, t)
		}
	}
	return out, nil
}

// Sort orders tuples lexicographically by the named attributes (all
// attributes when none are given); it returns the relation for chaining.
func (r *Relation) Sort(attrs ...string) *Relation {
	idx := make([]int, 0, len(attrs))
	if len(attrs) == 0 {
		for i := 0; i < r.schema.Len(); i++ {
			idx = append(idx, i)
		}
	} else {
		for _, a := range attrs {
			if i, ok := r.schema.Index(a); ok {
				idx = append(idx, i)
			}
		}
	}
	r.dropIndexes() // positions change
	sort.SliceStable(r.tuples, func(i, j int) bool {
		ti, tj := r.tuples[i], r.tuples[j]
		for _, k := range idx {
			if ti.vals[k].Less(tj.vals[k]) {
				return true
			}
			if tj.vals[k].Less(ti.vals[k]) {
				return false
			}
		}
		return false
	})
	return r
}

// Equal reports whether two relations contain the same tuple set
// (duplicates and order ignored).
func (r *Relation) Equal(o *Relation) bool {
	if !r.schema.Equal(o.schema) {
		return false
	}
	a := make(map[string]bool)
	for _, t := range r.tuples {
		a[t.Key()] = true
	}
	b := make(map[string]bool)
	for _, t := range o.tuples {
		b[t.Key()] = true
	}
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Clone returns a shallow copy of the relation (tuples are immutable, so
// sharing them is safe). Indexes are not carried over — the copy may
// diverge; rebuild with BuildIndex as needed.
func (r *Relation) Clone() *Relation {
	return &Relation{schema: r.schema, tuples: append([]Tuple(nil), r.tuples...)}
}
