package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/condition"
)

func indexedFixture(t *testing.T, rows int) *Relation {
	t.Helper()
	s := MustSchema(
		Column{Name: "id", Kind: condition.KindInt},
		Column{Name: "grp", Kind: condition.KindString},
		Column{Name: "val", Kind: condition.KindInt},
	)
	r := New(s)
	for i := 0; i < rows; i++ {
		if err := r.AppendValues(
			condition.Int(int64(i)),
			condition.String(fmt.Sprintf("g%d", i%17)),
			condition.Int(int64(i%100))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.BuildIndex("grp"); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIndexedSelectMatchesScan(t *testing.T) {
	r := indexedFixture(t, 5000)
	conds := []string{
		`grp = "g3"`,
		`grp = "g3" ^ val < 50`,
		`grp = "nope"`,
		`val < 10`,                // no applicable index: falls back to scan
		`grp = "g1" _ grp = "g2"`, // OR: no index path
	}
	for _, cs := range conds {
		cond := condition.MustParse(cs)
		got, err := r.Select(cond)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: a clone without indexes.
		ref := r.Clone()
		want, err := ref.Select(cond)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: indexed select %d rows, scan %d rows", cs, got.Len(), want.Len())
		}
		n, err := r.Count(cond)
		if err != nil {
			t.Fatal(err)
		}
		if n != want.Len() {
			t.Errorf("%s: indexed count %d, want %d", cs, n, want.Len())
		}
	}
}

func TestIndexMaintainedOnAppend(t *testing.T) {
	r := indexedFixture(t, 100)
	if err := r.AppendValues(condition.Int(9999), condition.String("g3"), condition.Int(1)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Count(condition.MustParse(`grp = "g3" ^ id = 9999`))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("appended row invisible through index: %d", got)
	}
}

func TestIndexDroppedOnSort(t *testing.T) {
	r := indexedFixture(t, 100)
	if !r.Indexed("grp") {
		t.Fatal("index missing")
	}
	r.Sort("val")
	if r.Indexed("grp") {
		t.Error("Sort must drop positional indexes")
	}
	// Queries still work (scan path).
	n, err := r.Count(condition.MustParse(`grp = "g3"`))
	if err != nil || n == 0 {
		t.Errorf("post-sort scan: %d, %v", n, err)
	}
}

func TestIndexCloneIndependence(t *testing.T) {
	r := indexedFixture(t, 100)
	c := r.Clone()
	if c.Indexed("grp") {
		t.Error("clone must not inherit indexes")
	}
	if err := c.AppendValues(condition.Int(1000), condition.String("g3"), condition.Int(5)); err != nil {
		t.Fatal(err)
	}
	// Original is unaffected.
	n, _ := r.Count(condition.MustParse(`id = 1000`))
	if n != 0 {
		t.Error("clone append leaked into original")
	}
}

func TestBuildIndexErrors(t *testing.T) {
	r := indexedFixture(t, 10)
	if err := r.BuildIndex("ghost"); err == nil {
		t.Error("indexing unknown column should fail")
	}
}

func TestIndexPicksMostSelectiveConjunct(t *testing.T) {
	s := MustSchema(
		Column{Name: "a", Kind: condition.KindString},
		Column{Name: "b", Kind: condition.KindString},
	)
	r := New(s)
	for i := 0; i < 1000; i++ {
		bv := "common"
		if i == 500 {
			bv = "rare"
		}
		if err := r.AppendValues(condition.String(fmt.Sprintf("a%d", i%2)), condition.String(bv)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.BuildIndex("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex("b"); err != nil {
		t.Fatal(err)
	}
	cands, ok := r.indexProbe(condition.MustParse(`a = "a0" ^ b = "rare"`))
	if !ok {
		t.Fatal("probe should apply")
	}
	if len(cands) != 1 {
		t.Errorf("probe should pick the rare index list, got %d candidates", len(cands))
	}
}

// Property: for random conditions, indexed and non-indexed relations give
// identical results.
func TestIndexEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	indexed := indexedFixture(t, 800)
	plain := indexed.Clone() // no indexes
	groups := []string{"g0", "g1", "g2", "g3", "nope"}
	for trial := 0; trial < 100; trial++ {
		g1, g2 := groups[r.Intn(len(groups))], groups[r.Intn(len(groups))]
		v := r.Intn(120)
		cond := condition.MustParse(fmt.Sprintf(
			`(grp = "%s" ^ val < %d) _ (grp = "%s" ^ val >= %d)`, g1, v, g2, v))
		a, err := indexed.Select(cond)
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.Select(cond)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("divergence on %s: %d vs %d", cond.Key(), a.Len(), b.Len())
		}
	}
}
