package relation

import "sort"

// Histogram is an equi-depth histogram over a numeric column: Bounds[i]
// is the inclusive upper bound of bucket i, each bucket holding roughly
// Total/len(Bounds) values. Equi-depth bounds adapt to skew (clustered
// prices, long-tailed years) far better than the min/max interpolation
// used without one. The fields are exported so source statistics serialize
// over the HTTP /stats endpoint.
type Histogram struct {
	// Bounds are ascending inclusive bucket upper bounds.
	Bounds []float64
	// Counts are per-bucket value counts.
	Counts []int
	// Total is the number of values summarized.
	Total int
	// MinVal is the smallest value (lower bound of bucket 0).
	MinVal float64
}

// defaultHistogramBuckets is the bucket count used by CollectStats.
const defaultHistogramBuckets = 32

// buildHistogram constructs an equi-depth histogram from the values.
func buildHistogram(values []float64, buckets int) *Histogram {
	if len(values) == 0 {
		return nil
	}
	if buckets <= 0 {
		buckets = defaultHistogramBuckets
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if buckets > len(sorted) {
		buckets = len(sorted)
	}
	h := &Histogram{Total: len(sorted), MinVal: sorted[0]}
	per := len(sorted) / buckets
	rem := len(sorted) % buckets
	idx := 0
	for b := 0; b < buckets; b++ {
		n := per
		if b < rem {
			n++
		}
		if n == 0 {
			continue
		}
		idx += n
		bound := sorted[idx-1]
		// Merge buckets sharing an upper bound (heavy duplicates).
		if len(h.Bounds) > 0 && h.Bounds[len(h.Bounds)-1] == bound {
			h.Counts[len(h.Counts)-1] += n
			continue
		}
		h.Bounds = append(h.Bounds, bound)
		h.Counts = append(h.Counts, n)
	}
	return h
}

// FractionBelow estimates the fraction of values ≤ x (inclusive), with
// linear interpolation inside the containing bucket.
func (h *Histogram) FractionBelow(x float64) float64 {
	if h == nil || h.Total == 0 {
		return 0
	}
	if x < h.MinVal {
		return 0
	}
	acc := 0
	lower := h.MinVal
	for i, bound := range h.Bounds {
		if x >= bound {
			acc += h.Counts[i]
			lower = bound
			continue
		}
		// x falls inside bucket i: interpolate.
		width := bound - lower
		frac := 1.0
		if width > 0 {
			frac = (x - lower) / width
		}
		return (float64(acc) + frac*float64(h.Counts[i])) / float64(h.Total)
	}
	return 1
}

// FractionStrictlyBelow estimates the fraction of values < x. The
// distinction matters at heavy duplicate values (price points, years).
func (h *Histogram) FractionStrictlyBelow(x float64) float64 {
	if h == nil || h.Total == 0 {
		return 0
	}
	// Approximate P(v < x) as P(v ≤ x) minus the estimated mass exactly
	// at x when x coincides with a bucket bound.
	below := h.FractionBelow(x)
	for i, bound := range h.Bounds {
		if bound == x {
			// Assume the bound value holds a share of its bucket
			// proportional to 1/bucket-width worth of mass; without
			// per-value counts, half the bucket is a robust middle
			// ground for duplicated bounds.
			return below - 0.5*float64(h.Counts[i])/float64(h.Total)
		}
	}
	return below
}
