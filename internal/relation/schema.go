// Package relation provides the in-memory relational substrate that
// simulated Internet sources and the mediator's post-processing operate on:
// typed schemas, tuples, relations and the select / project / union /
// intersect operators mediators apply to source-query results.
package relation

import (
	"fmt"
	"strings"

	"repro/internal/condition"
)

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind condition.Kind
}

// Schema is an ordered list of named, typed attributes.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from columns. Duplicate names are an error.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: empty column name at position %d", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Index returns the position of the named column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Has reports whether the schema contains the named column.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// HasAll reports whether the schema contains every one of the names.
func (s *Schema) HasAll(names []string) bool {
	for _, n := range names {
		if !s.Has(n) {
			return false
		}
	}
	return true
}

// Project returns a schema restricted to the given names, in the given
// order.
func (s *Schema) Project(names []string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("relation: unknown column %q", n)
		}
		cols = append(cols, s.cols[i])
	}
	return NewSchema(cols...)
}

// Equal reports whether two schemas have the same columns in the same
// order with the same kinds.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as name:kind pairs.
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.Name + ":" + c.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tuple is a row whose values are positionally aligned with a schema.
type Tuple struct {
	schema *Schema
	vals   []condition.Value
}

// NewTuple builds a tuple over the schema. The value count must match the
// schema width.
func NewTuple(s *Schema, vals ...condition.Value) (Tuple, error) {
	if len(vals) != s.Len() {
		return Tuple{}, fmt.Errorf("relation: tuple has %d values, schema has %d columns", len(vals), s.Len())
	}
	return Tuple{schema: s, vals: append([]condition.Value(nil), vals...)}, nil
}

// MustTuple is NewTuple that panics on error.
func MustTuple(s *Schema, vals ...condition.Value) Tuple {
	t, err := NewTuple(s, vals...)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the tuple's schema.
func (t Tuple) Schema() *Schema { return t.schema }

// Values returns the tuple's values in schema order. The slice must not be
// modified.
func (t Tuple) Values() []condition.Value { return t.vals }

// Lookup implements condition.Binder.
func (t Tuple) Lookup(attr string) (condition.Value, bool) {
	i, ok := t.schema.Index(attr)
	if !ok {
		return condition.Value{}, false
	}
	return t.vals[i], true
}

// Key returns a canonical encoding of the tuple's values, suitable for set
// semantics (two tuples over the same schema with equal values share a
// key).
func (t Tuple) Key() string {
	var sb strings.Builder
	for i, v := range t.vals {
		if i > 0 {
			sb.WriteByte('\x1f')
		}
		sb.WriteString(fmt.Sprintf("%d:%s", int(v.Kind), v.Text()))
	}
	return sb.String()
}

// String renders the tuple.
func (t Tuple) String() string {
	parts := make([]string, len(t.vals))
	for i, v := range t.vals {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Projected returns the tuple restricted to the projected schema ps, which
// must contain only columns named in the tuple's schema (Schema.Project on
// the tuple's schema — or an Equal schema — guarantees this). The streaming
// executor uses it to project tuples one at a time without materializing
// the input relation.
func (t Tuple) Projected(ps *Schema) Tuple { return t.project(ps) }

// Rebind returns the tuple bound to s, which must be Equal to the tuple's
// own schema. Rebinding lets streams from different branches of a plan
// share one schema pointer, so downstream schema checks stay O(1).
func (t Tuple) Rebind(s *Schema) Tuple { return Tuple{schema: s, vals: t.vals} }

// project returns a new tuple with only the named columns, bound to the
// provided projected schema.
func (t Tuple) project(ps *Schema) Tuple {
	vals := make([]condition.Value, ps.Len())
	for i, c := range ps.cols {
		j, _ := t.schema.Index(c.Name)
		vals[i] = t.vals[j]
	}
	return Tuple{schema: ps, vals: vals}
}
