package relation

import (
	"math"

	"repro/internal/condition"
)

// ColumnStats summarizes one attribute's value distribution, enough for
// the independence-based selectivity estimates the cost model uses.
type ColumnStats struct {
	Name     string
	Kind     condition.Kind
	Count    int     // non-missing values (== tuple count here)
	Distinct int     // number of distinct values
	Min, Max float64 // numeric columns only
	Numeric  bool
	// Hist is an equi-depth histogram for numeric columns, used for
	// range selectivities; nil when the column is not numeric.
	Hist *Histogram
	// Frequent maps the value's canonical text to its frequency for the
	// most common values (capped), giving exact selectivities for
	// equality on hot values such as make="Toyota".
	Frequent map[string]int
}

// maxFrequentEntries caps the per-column frequency map so that statistics
// stay small even for wide text columns like book titles.
const maxFrequentEntries = 256

// Stats holds per-column statistics of a relation.
type Stats struct {
	Tuples  int
	Columns map[string]*ColumnStats
}

// CollectStats scans the relation once and builds statistics.
func CollectStats(r *Relation) *Stats {
	st := &Stats{Tuples: r.Len(), Columns: make(map[string]*ColumnStats, r.Schema().Len())}
	for _, col := range r.Schema().Columns() {
		cs := &ColumnStats{
			Name:     col.Name,
			Kind:     col.Kind,
			Numeric:  col.Kind == condition.KindInt || col.Kind == condition.KindFloat,
			Min:      math.Inf(1),
			Max:      math.Inf(-1),
			Frequent: make(map[string]int),
		}
		st.Columns[col.Name] = cs
	}
	counts := make(map[string]map[string]int, r.Schema().Len())
	numeric := make(map[string][]float64, r.Schema().Len())
	for name := range st.Columns {
		counts[name] = make(map[string]int)
	}
	for _, t := range r.Tuples() {
		for i, col := range r.Schema().Columns() {
			v := t.Values()[i]
			cs := st.Columns[col.Name]
			cs.Count++
			if cs.Numeric && v.IsNumeric() {
				f := v.AsFloat()
				if f < cs.Min {
					cs.Min = f
				}
				if f > cs.Max {
					cs.Max = f
				}
				numeric[col.Name] = append(numeric[col.Name], f)
			}
			counts[col.Name][v.Text()]++
		}
	}
	for name, cs := range st.Columns {
		if vals := numeric[name]; len(vals) > 0 {
			cs.Hist = buildHistogram(vals, defaultHistogramBuckets)
		}
		m := counts[name]
		if cs.Min > cs.Max {
			// No numeric data seen; keep the stats JSON-serializable
			// (infinities are not valid JSON).
			cs.Min, cs.Max = 0, 0
		}
		cs.Distinct = len(m)
		if len(m) <= maxFrequentEntries {
			cs.Frequent = m
		} else {
			// Keep only values above average frequency; exactness for
			// hot values is what matters.
			threshold := cs.Count / len(m)
			for v, c := range m {
				if c > threshold && len(cs.Frequent) < maxFrequentEntries {
					cs.Frequent[v] = c
				}
			}
		}
	}
	return st
}

// Selectivity estimates the fraction of tuples satisfying the atomic
// condition, in [0,1]. Unknown attributes estimate 0.
func (st *Stats) Selectivity(a *condition.Atomic) float64 {
	cs, ok := st.Columns[a.Attr]
	if !ok || st.Tuples == 0 || cs.Count == 0 {
		return 0
	}
	switch a.Op {
	case condition.OpEq:
		if c, hit := cs.Frequent[a.Val.Text()]; hit {
			return float64(c) / float64(st.Tuples)
		}
		if cs.Distinct > 0 {
			return 1 / float64(cs.Distinct)
		}
		return 0
	case condition.OpNe:
		eq := st.Selectivity(&condition.Atomic{Attr: a.Attr, Op: condition.OpEq, Val: a.Val})
		return clamp01(1 - eq)
	case condition.OpLt, condition.OpLe, condition.OpGt, condition.OpGe:
		if !cs.Numeric || !a.Val.IsNumeric() {
			return 1.0 / 3 // textbook fallback for inequality
		}
		x := a.Val.AsFloat()
		if cs.Hist != nil {
			// Equi-depth histogram: robust to skewed distributions.
			switch a.Op {
			case condition.OpLe:
				return clamp01(cs.Hist.FractionBelow(x))
			case condition.OpLt:
				return clamp01(cs.Hist.FractionStrictlyBelow(x))
			case condition.OpGt:
				return clamp01(1 - cs.Hist.FractionBelow(x))
			default: // OpGe
				return clamp01(1 - cs.Hist.FractionStrictlyBelow(x))
			}
		}
		if cs.Max <= cs.Min {
			return 1.0 / 3
		}
		frac := clamp01((x - cs.Min) / (cs.Max - cs.Min))
		if a.Op == condition.OpGt || a.Op == condition.OpGe {
			frac = 1 - frac
		}
		return frac
	case condition.OpContains:
		// Substring match selectivity decays with pattern length.
		l := len(a.Val.Text())
		if l == 0 {
			return 1
		}
		return clamp01(math.Pow(0.5, float64(min(l, 12))/2))
	case condition.OpNotContains:
		return clamp01(1 - st.Selectivity(&condition.Atomic{Attr: a.Attr, Op: condition.OpContains, Val: a.Val}))
	default:
		return 0.5
	}
}

// EstimateFraction estimates the selectivity of an arbitrary condition
// under attribute independence: AND multiplies, OR adds with overlap
// correction.
func (st *Stats) EstimateFraction(n condition.Node) float64 {
	switch t := n.(type) {
	case *condition.Truth:
		return 1
	case *condition.Atomic:
		return st.Selectivity(t)
	case *condition.And:
		f := 1.0
		for _, k := range t.Kids {
			f *= st.EstimateFraction(k)
		}
		return f
	case *condition.Or:
		f := 0.0
		for _, k := range t.Kids {
			kf := st.EstimateFraction(k)
			f = f + kf - f*kf
		}
		return f
	default:
		return 0.5
	}
}

// EstimateCount estimates the result cardinality of selecting with n.
func (st *Stats) EstimateCount(n condition.Node) float64 {
	return st.EstimateFraction(n) * float64(st.Tuples)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
