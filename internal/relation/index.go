package relation

import (
	"fmt"

	"repro/internal/condition"
)

// Hash indexes accelerate the equality probes that dominate this system's
// workloads: every capability-sensitive plan bottoms out in source queries
// like (make = "BMW" ^ ...), and simulated sources evaluate them against
// in-memory relations. An index maps a column's value keys to tuple
// positions; Select uses one when the condition is — or conjunctively
// contains — an equality on an indexed column, then evaluates the full
// condition only on the candidate rows.

// index maps value keys to tuple positions for one column.
type index struct {
	col   int
	byVal map[string][]int
}

// BuildIndex builds (or rebuilds) a hash index on the named column. The
// index is maintained by Append/AppendValues and dropped by Sort (which
// permutes positions) and Clone (which must not share position lists with
// a divergent copy).
func (r *Relation) BuildIndex(attr string) error {
	col, ok := r.schema.Index(attr)
	if !ok {
		return fmt.Errorf("relation: cannot index unknown column %q", attr)
	}
	idx := &index{col: col, byVal: make(map[string][]int, len(r.tuples))}
	for i, t := range r.tuples {
		k := valueIndexKey(t.vals[col])
		idx.byVal[k] = append(idx.byVal[k], i)
	}
	if r.indexes == nil {
		r.indexes = make(map[string]*index)
	}
	r.indexes[attr] = idx
	return nil
}

// Indexed reports whether the named column has a hash index.
func (r *Relation) Indexed(attr string) bool {
	_, ok := r.indexes[attr]
	return ok
}

// dropIndexes discards all indexes (used by operations that permute or
// fork tuple storage).
func (r *Relation) dropIndexes() { r.indexes = nil }

// indexInsert maintains indexes for one appended tuple at position i.
func (r *Relation) indexInsert(i int) {
	for _, idx := range r.indexes {
		k := valueIndexKey(r.tuples[i].vals[idx.col])
		idx.byVal[k] = append(idx.byVal[k], i)
	}
}

func valueIndexKey(v condition.Value) string {
	return fmt.Sprintf("%d\x00%s", int(v.Kind), v.Text())
}

// Probe exposes the index probe for streaming scans: it returns the
// candidate tuple positions an indexed equality lookup narrows the
// condition to, or ok=false when no index applies and the caller must
// scan every tuple. The caller still evaluates the full condition on the
// candidates. Positions index into Tuples().
func (r *Relation) Probe(cond condition.Node) (candidates []int, ok bool) {
	return r.indexProbe(cond)
}

// indexProbe finds an equality atom over an indexed column in the
// condition (the condition itself, or a direct conjunct of a top-level
// AND) and returns the candidate tuple positions. The caller still
// evaluates the full condition on the candidates. ok is false when no
// index applies.
func (r *Relation) indexProbe(cond condition.Node) (candidates []int, ok bool) {
	if len(r.indexes) == 0 {
		return nil, false
	}
	try := func(n condition.Node) ([]int, bool) {
		a, isAtom := n.(*condition.Atomic)
		if !isAtom || a.Op != condition.OpEq {
			return nil, false
		}
		idx, has := r.indexes[a.Attr]
		if !has {
			return nil, false
		}
		return idx.byVal[valueIndexKey(a.Val)], true
	}
	if c, hit := try(cond); hit {
		return c, true
	}
	if and, isAnd := cond.(*condition.And); isAnd {
		// Use the most selective applicable conjunct.
		best := -1
		var bestList []int
		for _, k := range and.Kids {
			if c, hit := try(k); hit {
				if best < 0 || len(c) < best {
					best = len(c)
					bestList = c
				}
			}
		}
		if best >= 0 {
			return bestList, true
		}
	}
	return nil, false
}
