package relation

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"repro/internal/condition"
)

func TestBuildHistogramBasics(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	h := buildHistogram(vals, 10)
	if h.Total != 100 {
		t.Fatalf("Total = %d", h.Total)
	}
	if len(h.Bounds) != 10 || len(h.Counts) != 10 {
		t.Fatalf("buckets = %d/%d", len(h.Bounds), len(h.Counts))
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 100 {
		t.Errorf("counts sum = %d", sum)
	}
	// Uniform data: FractionBelow tracks the CDF.
	if f := h.FractionBelow(49); math.Abs(f-0.5) > 0.05 {
		t.Errorf("FractionBelow(49) = %v, want ≈0.5", f)
	}
	if f := h.FractionBelow(-1); f != 0 {
		t.Errorf("below min = %v", f)
	}
	if f := h.FractionBelow(1000); f != 1 {
		t.Errorf("above max = %v", f)
	}
}

func TestBuildHistogramEmptyAndTiny(t *testing.T) {
	if h := buildHistogram(nil, 8); h != nil {
		t.Error("empty input should yield nil")
	}
	h := buildHistogram([]float64{5}, 8)
	if h == nil || h.Total != 1 {
		t.Fatalf("singleton histogram = %+v", h)
	}
	if f := h.FractionBelow(5); f != 1 {
		t.Errorf("FractionBelow(5) = %v", f)
	}
	var nilH *Histogram
	if nilH.FractionBelow(1) != 0 || nilH.FractionStrictlyBelow(1) != 0 {
		t.Error("nil histogram should report 0")
	}
}

func TestHistogramDuplicateHeavyValues(t *testing.T) {
	// 90% of the data is the single value 100.
	vals := make([]float64, 1000)
	for i := range vals {
		if i < 900 {
			vals[i] = 100
		} else {
			vals[i] = float64(i)
		}
	}
	h := buildHistogram(vals, 16)
	// Buckets sharing the bound 100 merge; bounds stay ascending/unique.
	for i := 1; i < len(h.Bounds); i++ {
		if h.Bounds[i] <= h.Bounds[i-1] {
			t.Fatalf("bounds not strictly ascending: %v", h.Bounds)
		}
	}
	if f := h.FractionBelow(100); f < 0.85 {
		t.Errorf("FractionBelow(100) = %v, want ≥ 0.85", f)
	}
	if f := h.FractionStrictlyBelow(100); f >= h.FractionBelow(100) {
		t.Errorf("strict below (%v) should be < inclusive (%v)", f, h.FractionBelow(100))
	}
}

// Histograms beat min/max interpolation on skewed data.
func TestHistogramSelectivityOnSkewedData(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	s := MustSchema(Column{Name: "price", Kind: condition.KindInt})
	rel := New(s)
	// Log-ish skew: mostly cheap, rare expensive outliers up to 10^6.
	for i := 0; i < 5000; i++ {
		v := int64(1000 + r.Intn(20000))
		if r.Intn(100) == 0 {
			v = int64(100000 + r.Intn(900000))
		}
		if err := rel.AppendValues(condition.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	st := CollectStats(rel)
	atom := &condition.Atomic{Attr: "price", Op: condition.OpLe, Val: condition.Int(21000)}
	exact, err := rel.Count(atom)
	if err != nil {
		t.Fatal(err)
	}
	exactFrac := float64(exact) / float64(rel.Len())
	histFrac := st.Selectivity(atom)
	if math.Abs(histFrac-exactFrac) > 0.05 {
		t.Errorf("histogram estimate %v too far from exact %v", histFrac, exactFrac)
	}
	// The uniform min/max interpolation would be wildly off (≈2%
	// instead of ≈99%); assert the histogram is much closer.
	cs := st.Columns["price"]
	uniform := (21000 - cs.Min) / (cs.Max - cs.Min)
	if math.Abs(uniform-exactFrac) < math.Abs(histFrac-exactFrac) {
		t.Errorf("uniform (%v) should not beat histogram (%v) on skew (exact %v)", uniform, histFrac, exactFrac)
	}
}

func TestHistogramOperatorsConsistent(t *testing.T) {
	vals := []float64{1, 2, 2, 2, 3, 4, 5, 6, 7, 8}
	h := buildHistogram(vals, 5)
	for _, x := range []float64{0, 1, 2, 4.5, 8, 9} {
		le := h.FractionBelow(x)
		lt := h.FractionStrictlyBelow(x)
		if lt > le {
			t.Errorf("x=%v: strict (%v) > inclusive (%v)", x, lt, le)
		}
		if le < 0 || le > 1 || lt < 0 {
			t.Errorf("x=%v: fractions out of range: %v %v", x, lt, le)
		}
	}
}

func TestStatsSerializeWithHistogram(t *testing.T) {
	s := MustSchema(
		Column{Name: "n", Kind: condition.KindInt},
		Column{Name: "s", Kind: condition.KindString},
	)
	rel := New(s)
	for i := 0; i < 50; i++ {
		if err := rel.AppendValues(condition.Int(int64(i)), condition.String("x")); err != nil {
			t.Fatal(err)
		}
	}
	st := CollectStats(rel)
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("stats with histogram must serialize: %v", err)
	}
	var back Stats
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Columns["n"].Hist == nil {
		t.Error("histogram lost in serialization")
	}
	if back.Columns["s"].Hist != nil {
		t.Error("string column should have no histogram")
	}
	// Selectivity works identically after the round trip.
	atom := &condition.Atomic{Attr: "n", Op: condition.OpLt, Val: condition.Int(25)}
	if a, b := st.Selectivity(atom), back.Selectivity(atom); math.Abs(a-b) > 1e-9 {
		t.Errorf("selectivity changed across serialization: %v vs %v", a, b)
	}
}
