package relation

import (
	"fmt"
	"testing"

	"repro/internal/condition"
)

func carSchema() *Schema {
	return MustSchema(
		Column{"make", condition.KindString},
		Column{"model", condition.KindString},
		Column{"year", condition.KindInt},
		Column{"color", condition.KindString},
		Column{"price", condition.KindInt},
	)
}

func carRelation(t *testing.T) *Relation {
	t.Helper()
	r := New(carSchema())
	rows := [][]condition.Value{
		{condition.String("BMW"), condition.String("328i"), condition.Int(1998), condition.String("red"), condition.Int(35000)},
		{condition.String("BMW"), condition.String("528i"), condition.Int(1997), condition.String("black"), condition.Int(45000)},
		{condition.String("Toyota"), condition.String("Camry"), condition.Int(1998), condition.String("red"), condition.Int(19000)},
		{condition.String("Toyota"), condition.String("Corolla"), condition.Int(1996), condition.String("blue"), condition.Int(14000)},
		{condition.String("Honda"), condition.String("Accord"), condition.Int(1998), condition.String("black"), condition.Int(18000)},
	}
	for _, row := range rows {
		if err := r.AppendValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestSchemaBasics(t *testing.T) {
	s := carSchema()
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	if i, ok := s.Index("price"); !ok || i != 4 {
		t.Errorf("Index(price) = %d,%v", i, ok)
	}
	if s.Has("vin") {
		t.Error("Has(vin) should be false")
	}
	if !s.HasAll([]string{"make", "model"}) {
		t.Error("HasAll(make,model) should be true")
	}
	if s.HasAll([]string{"make", "vin"}) {
		t.Error("HasAll with unknown column should be false")
	}
}

func TestSchemaDuplicateRejected(t *testing.T) {
	_, err := NewSchema(Column{"a", condition.KindInt}, Column{"a", condition.KindString})
	if err == nil {
		t.Error("duplicate column should fail")
	}
	_, err = NewSchema(Column{"", condition.KindInt})
	if err == nil {
		t.Error("empty column name should fail")
	}
}

func TestSchemaProjectOrder(t *testing.T) {
	s := carSchema()
	p, err := s.Project([]string{"price", "make"})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Names(); got[0] != "price" || got[1] != "make" {
		t.Errorf("projected names = %v", got)
	}
	if _, err := s.Project([]string{"vin"}); err == nil {
		t.Error("projecting unknown column should fail")
	}
}

func TestTupleLookup(t *testing.T) {
	r := carRelation(t)
	tup := r.Tuples()[0]
	v, ok := tup.Lookup("make")
	if !ok || v.S != "BMW" {
		t.Errorf("Lookup(make) = %v,%v", v, ok)
	}
	if _, ok := tup.Lookup("vin"); ok {
		t.Error("Lookup(vin) should be false")
	}
}

func TestTupleArityChecked(t *testing.T) {
	if _, err := NewTuple(carSchema(), condition.Int(1)); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestSelect(t *testing.T) {
	r := carRelation(t)
	out, err := r.Select(condition.MustParse(`make = "BMW" ^ price < 40000`))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("Len = %d, want 1", out.Len())
	}
	if v, _ := out.Tuples()[0].Lookup("model"); v.S != "328i" {
		t.Errorf("model = %v", v)
	}
}

func TestSelectError(t *testing.T) {
	r := carRelation(t)
	if _, err := r.Select(condition.MustParse(`vin = 1`)); err == nil {
		t.Error("select on unknown attribute should fail")
	}
}

func TestCountMatchesSelect(t *testing.T) {
	r := carRelation(t)
	cond := condition.MustParse(`year = 1998`)
	sel, err := r.Select(cond)
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.Count(cond)
	if err != nil {
		t.Fatal(err)
	}
	if n != sel.Len() || n != 3 {
		t.Errorf("Count = %d, Select len = %d, want 3", n, sel.Len())
	}
}

func TestProjectDedups(t *testing.T) {
	r := carRelation(t)
	out, err := r.Project([]string{"make"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("distinct makes = %d, want 3", out.Len())
	}
}

func TestDistinct(t *testing.T) {
	r := carRelation(t)
	dup := r.Tuples()[0]
	if err := r.Append(dup); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 6 {
		t.Fatalf("Len = %d", r.Len())
	}
	if d := r.Distinct(); d.Len() != 5 {
		t.Errorf("Distinct len = %d, want 5", d.Len())
	}
}

func TestUnionIntersect(t *testing.T) {
	r := carRelation(t)
	bmw, _ := r.Select(condition.MustParse(`make = "BMW"`))
	y98, _ := r.Select(condition.MustParse(`year = 1998`))

	u, err := bmw.Union(y98)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 4 { // 2 BMWs + Camry + Accord (328i is in both)
		t.Errorf("union len = %d, want 4", u.Len())
	}

	i, err := bmw.Intersect(y98)
	if err != nil {
		t.Fatal(err)
	}
	if i.Len() != 1 {
		t.Errorf("intersect len = %d, want 1", i.Len())
	}
	if v, _ := i.Tuples()[0].Lookup("model"); v.S != "328i" {
		t.Errorf("intersect model = %v", v)
	}
}

func TestUnionSchemaMismatch(t *testing.T) {
	r := carRelation(t)
	p, _ := r.Project([]string{"make"})
	if _, err := r.Union(p); err == nil {
		t.Error("union with mismatched schema should fail")
	}
	if _, err := r.Intersect(p); err == nil {
		t.Error("intersect with mismatched schema should fail")
	}
}

// Set-algebra identity: select(C1) ∩ select(C2) == select(C1 ^ C2) over
// full tuples (the identity the paper's intersect plans rely on).
func TestIntersectEqualsConjunction(t *testing.T) {
	r := carRelation(t)
	c1 := condition.MustParse(`year = 1998`)
	c2 := condition.MustParse(`color = "red"`)
	s1, _ := r.Select(c1)
	s2, _ := r.Select(c2)
	both, err := s1.Intersect(s2)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := r.Select(condition.NewAnd(c1, c2))
	if !both.Equal(direct) {
		t.Error("intersection does not match conjunction on full tuples")
	}
}

// And the union identity for disjunction.
func TestUnionEqualsDisjunction(t *testing.T) {
	r := carRelation(t)
	c1 := condition.MustParse(`make = "BMW"`)
	c2 := condition.MustParse(`make = "Toyota"`)
	s1, _ := r.Select(c1)
	s2, _ := r.Select(c2)
	u, err := s1.Union(s2)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := r.Select(condition.NewOr(c1, c2))
	if !u.Equal(direct) {
		t.Error("union does not match disjunction")
	}
}

func TestSortDeterministic(t *testing.T) {
	r := carRelation(t)
	r.Sort("price")
	prices := make([]int64, 0, r.Len())
	for _, tup := range r.Tuples() {
		v, _ := tup.Lookup("price")
		prices = append(prices, v.I)
	}
	for i := 1; i < len(prices); i++ {
		if prices[i-1] > prices[i] {
			t.Fatalf("not sorted: %v", prices)
		}
	}
}

func TestEqualIgnoresOrderAndDuplicates(t *testing.T) {
	a := carRelation(t)
	b := carRelation(t)
	b.Sort("price")
	if err := b.Append(b.Tuples()[0]); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("Equal should ignore order and duplicates")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := carRelation(t)
	b := a.Clone()
	if err := b.AppendValues(
		condition.String("Audi"), condition.String("A4"), condition.Int(1999),
		condition.String("silver"), condition.Int(30000)); err != nil {
		t.Fatal(err)
	}
	if a.Len() == b.Len() {
		t.Error("clone shares tuple storage growth")
	}
}

func TestAppendSchemaChecked(t *testing.T) {
	r := carRelation(t)
	other := New(MustSchema(Column{"x", condition.KindInt}))
	if err := other.AppendValues(condition.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(other.Tuples()[0]); err == nil {
		t.Error("appending tuple with foreign schema should fail")
	}
}

func TestLargeScanPerformanceShape(t *testing.T) {
	// Smoke test: 10k tuples select should be well under a second.
	s := MustSchema(Column{"id", condition.KindInt}, Column{"grp", condition.KindString})
	r := New(s)
	for i := 0; i < 10000; i++ {
		if err := r.AppendValues(condition.Int(int64(i)), condition.String(fmt.Sprintf("g%d", i%7))); err != nil {
			t.Fatal(err)
		}
	}
	out, err := r.Select(condition.MustParse(`grp = "g3" ^ id < 100`))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 14 { // ids 3, 10, ..., 94
		t.Errorf("len = %d, want 14", out.Len())
	}
}
