package mediator

import (
	"strings"
	"sync"

	"repro/internal/condition"
	"repro/internal/plan"
)

// planCache memoizes fixed plans per (planner, source, semantic condition,
// attributes). The key uses the condition's order-insensitive NormKey: a
// plan is valid for every condition in the same equivalence class — its
// source queries are already supported and its result is determined by the
// condition's semantics — so commutative/associative variants of a query
// hit the same entry.
type planCache struct {
	mu     sync.Mutex
	m      map[string]plan.Plan
	hits   int
	misses int
}

func newPlanCache() *planCache { return &planCache{m: make(map[string]plan.Plan)} }

func cacheKey(plannerName, source string, cond condition.Node, attrs []string) string {
	return plannerName + "\x00" + source + "\x00" + condition.NormKey(cond) + "\x00" + strings.Join(attrs, ",")
}

func (c *planCache) get(key string) (plan.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return p, ok
}

func (c *planCache) put(key string, p plan.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = p
}

// stats returns hit/miss counters.
func (c *planCache) stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
