package mediator

import (
	"strings"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
)

// DefaultCacheSize bounds the plan cache when Mediator.CacheSize is zero:
// entries beyond this are evicted least-recently-used, keeping memory
// flat under sustained traffic with unbounded distinct queries.
const DefaultCacheSize = 512

// CacheStats reports plan-cache activity.
type CacheStats struct {
	// Hits and Misses count lookups against completed entries.
	Hits, Misses int
	// Evictions counts entries dropped by the LRU bound.
	Evictions int
	// CoalescedWaits counts Plan calls that waited for another caller's
	// in-flight planning of the same key instead of planning themselves
	// (each such call is also counted in Misses).
	CoalescedWaits int
}

// HitRate is the fraction of lookups served from the cache (0 before any
// lookup). The registry exports it live as csqp_plan_cache_hit_ratio.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// planCache memoizes fixed plans per (planner, source, semantic condition,
// attributes). The key uses the condition's order-insensitive NormKey: a
// plan is valid for every condition in the same equivalence class — its
// source queries are already supported and its result is determined by the
// condition's semantics — so commutative/associative variants of a query
// hit the same entry. Entries live in a bounded LRU, and concurrent
// requests for the same missing key coalesce onto one planner run
// (singleflight): the first caller plans, the rest wait for its result.
// The LRU/singleflight machinery is cacheCore, shared with the
// plan-template cache.
type planCache struct {
	core *cacheCore[plan.Plan]
}

func newPlanCache(capacity int) *planCache {
	return &planCache{core: newCacheCore[plan.Plan](capacity, DefaultCacheSize)}
}

// cacheKey builds the lookup key in a single allocation: the parts are
// sized up front and written through one strings.Builder (NormKey itself
// is cached on the condition node). The previous Join+concat shape cost
// four allocations per lookup on the hottest mediator path.
func cacheKey(plannerName, source string, cond condition.Node, attrs []string) string {
	return buildKey(plannerName, source, condition.NormKey(cond), attrs)
}

func buildKey(plannerName, source, condKey string, attrs []string) string {
	n := len(plannerName) + len(source) + len(condKey) + 3 + len(attrs)
	for _, a := range attrs {
		n += len(a)
	}
	var sb strings.Builder
	sb.Grow(n)
	sb.WriteString(plannerName)
	sb.WriteByte(0)
	sb.WriteString(source)
	sb.WriteByte(0)
	sb.WriteString(condKey)
	sb.WriteByte(0)
	for i, a := range attrs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(a)
	}
	return sb.String()
}

// setObs mirrors the cache's counters into reg (nil = keep no-ops).
func (c *planCache) setObs(reg *obs.Registry) {
	c.core.setObs(reg, "csqp_plan_cache", "csqp_plan_cache_hit_ratio")
}

func (c *planCache) get(key string) (plan.Plan, bool) { return c.core.get(key) }

func (c *planCache) begin(key string) (*coreFlight[plan.Plan], bool) { return c.core.begin(key) }

// finish publishes the leader's outcome; successful plans enter the LRU.
func (c *planCache) finish(key string, f *coreFlight[plan.Plan], p plan.Plan, err error) {
	c.core.finish(key, f, p, err, err == nil)
}

// snapshot returns the current counters.
func (c *planCache) snapshot() CacheStats {
	s := c.core.snapshot()
	return CacheStats{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, CoalescedWaits: s.CoalescedWaits}
}

// len reports the number of completed entries (tests use it to check the
// bound).
func (c *planCache) len() int { return c.core.len() }
