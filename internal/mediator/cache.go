package mediator

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
)

// DefaultCacheSize bounds the plan cache when Mediator.CacheSize is zero:
// entries beyond this are evicted least-recently-used, keeping memory
// flat under sustained traffic with unbounded distinct queries.
const DefaultCacheSize = 512

// CacheStats reports plan-cache activity.
type CacheStats struct {
	// Hits and Misses count lookups against completed entries.
	Hits, Misses int
	// Evictions counts entries dropped by the LRU bound.
	Evictions int
	// CoalescedWaits counts Plan calls that waited for another caller's
	// in-flight planning of the same key instead of planning themselves
	// (each such call is also counted in Misses).
	CoalescedWaits int
}

// planCache memoizes fixed plans per (planner, source, semantic condition,
// attributes). The key uses the condition's order-insensitive NormKey: a
// plan is valid for every condition in the same equivalence class — its
// source queries are already supported and its result is determined by the
// condition's semantics — so commutative/associative variants of a query
// hit the same entry. Entries live in a bounded LRU, and concurrent
// requests for the same missing key coalesce onto one planner run
// (singleflight): the first caller plans, the rest wait for its result.
type planCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // element value: *cacheEntry
	inflight map[string]*flight
	stats    CacheStats

	// Registry mirrors of the counters above (no-ops until setObs).
	cHits, cMisses, cEvictions, cCoalesced *obs.Counter
	cSize                                  *obs.Gauge
}

type cacheEntry struct {
	key string
	p   plan.Plan
}

// flight is one in-progress planning of a key. done is closed after the
// leader has published its outcome into p/err (and, on success, the LRU).
type flight struct {
	done chan struct{}
	p    plan.Plan
	err  error
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &planCache{
		cap:      capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

func cacheKey(plannerName, source string, cond condition.Node, attrs []string) string {
	return plannerName + "\x00" + source + "\x00" + condition.NormKey(cond) + "\x00" + strings.Join(attrs, ",")
}

// setObs mirrors the cache's counters into reg (nil = keep no-ops).
func (c *planCache) setObs(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cHits = reg.Counter("csqp_plan_cache_hits_total")
	c.cMisses = reg.Counter("csqp_plan_cache_misses_total")
	c.cEvictions = reg.Counter("csqp_plan_cache_evictions_total")
	c.cCoalesced = reg.Counter("csqp_plan_cache_coalesced_waits_total")
	c.cSize = reg.Gauge("csqp_plan_cache_entries")
}

func (c *planCache) get(key string) (plan.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		c.cHits.Inc()
		return el.Value.(*cacheEntry).p, true
	}
	c.stats.Misses++
	c.cMisses.Inc()
	return nil, false
}

// begin returns the flight for key and whether the caller is its leader.
// The leader must plan and then call finish; every other caller waits on
// flight.done and reads the leader's outcome.
func (c *planCache) begin(key string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.inflight[key]; ok {
		c.stats.CoalescedWaits++
		c.cCoalesced.Inc()
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	return f, true
}

// finish publishes the leader's outcome. A successful plan enters the LRU
// before the flight is retired, so callers arriving after the wake-up
// always hit.
func (c *planCache) finish(key string, f *flight, p plan.Plan, err error) {
	c.mu.Lock()
	f.p, f.err = p, err
	if err == nil {
		c.insert(key, p)
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
}

// insert adds or refreshes an entry and enforces the LRU bound. Callers
// hold mu.
func (c *planCache) insert(key string, p plan.Plan) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).p = p
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, p: p})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.stats.Evictions++
		c.cEvictions.Inc()
	}
	c.cSize.Set(float64(len(c.entries)))
}

// snapshot returns the current counters.
func (c *planCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// len reports the number of completed entries (tests use it to check the
// bound).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
