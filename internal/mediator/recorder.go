package mediator

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/condition"
	"repro/internal/plan"
)

// The flight recorder keeps the last N query profiles in a fixed ring so
// "what just happened?" is answerable after the fact — from the REPL
// (\recent), the facade (System.Recent) or a debugger — without having
// asked for tracing up front. It is always on: the ring is bounded, the
// record is built from data the profiled execution already collected,
// and queries slower than the threshold additionally emit a structured
// slow-query event carrying the plan fingerprint and trace id.

// DefaultRecorderSize bounds the flight-recorder ring when
// Mediator.SetRecorderSize was never called.
const DefaultRecorderSize = 64

// DefaultSlowQueryThreshold triggers the slow-query log when
// Mediator.SlowQueryThreshold is zero. Negative disables the log.
const DefaultSlowQueryThreshold = 500 * time.Millisecond

// QueryRecord is one completed query as the flight recorder saw it.
type QueryRecord struct {
	// Seq numbers records in admission order (process-wide per mediator).
	Seq int64 `json:"seq"`
	// Time is when the query finished.
	Time time.Time `json:"time"`
	// Strategy, Source, Cond and Attrs restate the target query.
	Strategy string   `json:"strategy"`
	Source   string   `json:"source"`
	Cond     string   `json:"cond"`
	Attrs    []string `json:"attrs,omitempty"`
	// Fingerprint identifies the query's *shape*: an FNV-64a hash of
	// (strategy, source, parameterized skeleton key, attrs) — the same
	// skeleton key the template tier caches plans under, so every
	// constant-binding of one prepared shape shares a fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Duration covers planning plus execution.
	Duration time.Duration `json:"duration_ns"`
	// Rows is the answer cardinality (surviving rows for a partial).
	Rows int `json:"rows"`
	// Partial, Cached and Template record the query's disposition.
	Partial  bool `json:"partial,omitempty"`
	Cached   bool `json:"cached,omitempty"`
	Template bool `json:"template,omitempty"`
	// Err is the terminal error, "" on success (partial answers record
	// the degradation error here too).
	Err string `json:"err,omitempty"`
	// TraceID links to the obs span tree that observed this query (0 when
	// the query ran untraced).
	TraceID int64 `json:"trace_id,omitempty"`
	// Profile is the per-operator execution profile (nil when execution
	// never started, e.g. planning failed).
	Profile *plan.ExecProfile `json:"profile,omitempty"`
}

// flightRecorder is a fixed-size ring of QueryRecords.
type flightRecorder struct {
	mu   sync.Mutex
	ring []QueryRecord
	next int
	seq  int64
}

func newFlightRecorder(size int) *flightRecorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	return &flightRecorder{ring: make([]QueryRecord, 0, size)}
}

// add admits a record, assigning its sequence number, and reports it.
func (r *flightRecorder) add(rec QueryRecord) QueryRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	rec.Seq = r.seq
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.next] = rec
		r.next = (r.next + 1) % cap(r.ring)
	}
	return rec
}

// recent returns the buffered records, newest first.
func (r *flightRecorder) recent() []QueryRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QueryRecord, 0, len(r.ring))
	// The ring is ordered oldest→newest starting at next (once full).
	for i := len(r.ring) - 1; i >= 0; i-- {
		out = append(out, r.ring[(r.next+i)%len(r.ring)])
	}
	return out
}

// fingerprint hashes the query's shape identity. Built on the template
// tier's skeleton key so EXPLAIN output, slow-query log lines and
// template-cache entries all speak about the same shape.
func fingerprint(strategy, source string, cond condition.Node, attrs []string) string {
	pz := condition.Parameterize(cond)
	h := fnv.New64a()
	h.Write([]byte(buildKey(strategy, source, pz.Skeleton.Key(), attrs)))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint returns the shape fingerprint the flight recorder and
// slow-query log use for the target query SP(cond, attrs, source) under
// the named strategy, so EXPLAIN output can be matched against recorded
// and logged queries.
func (m *Mediator) Fingerprint(strategy, source string, cond condition.Node, attrs []string) string {
	return fingerprint(strategy, source, cond, attrs)
}

// SetRecorderSize resizes the flight-recorder ring (discarding buffered
// records); n <= 0 restores DefaultRecorderSize. Call before serving.
func (m *Mediator) SetRecorderSize(n int) { m.rec = newFlightRecorder(n) }

// Recent returns the flight recorder's buffered query records, newest
// first. Mediators constructed as struct literals (no recorder) return
// nil.
func (m *Mediator) Recent() []QueryRecord {
	if m.rec == nil {
		return nil
	}
	return m.rec.recent()
}

// slowThreshold resolves the effective slow-query threshold.
func (m *Mediator) slowThreshold() time.Duration {
	if m.SlowQueryThreshold != 0 {
		return m.SlowQueryThreshold
	}
	return DefaultSlowQueryThreshold
}

// record admits one completed query into the flight recorder, feeds the
// duration histograms and emits the slow-query event when warranted.
// No-op for struct-literal mediators without a recorder.
func (m *Mediator) record(rec QueryRecord) {
	if m.rec == nil {
		return
	}
	rec.Time = time.Now()
	rec = m.rec.add(rec)
	m.metrics.querySeconds.Observe(rec.Duration.Seconds())
	if rec.Profile != nil && m.obsReg != nil {
		rec.Profile.Walk(func(p *plan.ExecProfile) {
			if p.Op == "" {
				return
			}
			m.obsReg.Histogram("csqp_exec_operator_seconds", nil, "op", p.Op).Observe(p.Wall().Seconds())
			m.obsReg.Counter("csqp_exec_operator_rows_total", "op", p.Op).Add(p.RowsOut)
		})
	}
	if thr := m.slowThreshold(); thr > 0 && rec.Duration >= thr {
		m.logger().Warn("slow query",
			"fingerprint", rec.Fingerprint,
			"strategy", rec.Strategy,
			"source", rec.Source,
			"cond", rec.Cond,
			"duration", rec.Duration,
			"rows", rec.Rows,
			"partial", rec.Partial,
			"cached", rec.Cached,
			"template", rec.Template,
			"trace_id", rec.TraceID,
			"round_trips", rec.Profile.TotalRoundTrips(),
		)
	}
}
