package mediator

import (
	"context"
	"errors"
	"testing"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/source"
)

// TestStreamingJoinMatchesMaterialized is the engine differential for the
// join path: the symmetric hash join (streaming right side) and the
// classic hash join (both sides materialized) must produce the same
// relation under every spec the join suite exercises.
func TestStreamingJoinMatchesMaterialized(t *testing.T) {
	streamMed, _, _ := joinFixture(t)
	streamMed.Streaming = StreamingOn
	matMed, _, _ := joinFixture(t)
	matMed.Streaming = StreamingOff

	specs := []JoinSpec{
		paloAltoJoin(),
		{ // whole-brand join, no right condition
			Left: "dealers", Right: "cars",
			LeftCond:  condition.MustParse(`city = "San Jose"`),
			RightCond: condition.True(),
			LeftAttr:  "brand", RightAttr: "make",
			Attrs: []string{"dealer", "city", "model"},
		},
		{ // empty left side: no Palo Alto Hondas
			Left: "dealers", Right: "cars",
			LeftCond:  condition.MustParse(`city = "Palo Alto" ^ brand = "Honda"`),
			RightCond: condition.True(),
			LeftAttr:  "brand", RightAttr: "make",
			Attrs: []string{"dealer", "model"},
		},
	}
	for i, spec := range specs {
		sres, serr := streamMed.AnswerJoin(context.Background(), core.New(), spec)
		mres, merr := matMed.AnswerJoin(context.Background(), core.New(), spec)
		if (serr == nil) != (merr == nil) {
			t.Fatalf("spec %d: engines disagree on success: streaming err=%v, materialized err=%v", i, serr, merr)
		}
		if serr != nil {
			continue
		}
		if !sres.Relation.Equal(mres.Relation) {
			t.Errorf("spec %d: streaming join answer diverges:\nstreaming    %v\nmaterialized %v",
				i, sres.Relation.Tuples(), mres.Relation.Tuples())
		}
		if sres.Strategy != mres.Strategy {
			t.Errorf("spec %d: strategy diverges: streaming %q, materialized %q", i, sres.Strategy, mres.Strategy)
		}
	}
}

// TestStreamingJoinRightMidStreamFaultFailsClosed injects a fault AFTER
// the right side has already emitted rows into the symmetric hash join.
// Joins fail closed: the rows that made it through must be discarded, and
// no *plan.PartialError may surface.
func TestStreamingJoinRightMidStreamFaultFailsClosed(t *testing.T) {
	// The assertion is about the streaming join specifically; pin the
	// engine so the CSQP_STREAMING=0 matrix leg can't flip it over to the
	// materialized path (the env var overrides even StreamingOn).
	t.Setenv("CSQP_STREAMING", "1")
	med, _, _ := joinFixtureWrapped(t, func(name string, q plan.Querier) plan.Querier {
		if name == "cars" {
			return source.NewFlaky(q).FailAfterRows(1)
		}
		return q
	})
	med.Streaming = StreamingOn
	med.AllowPartial = true // must not apply to joins
	res, err := med.AnswerJoin(context.Background(), core.New(), paloAltoJoin())
	if err == nil || res != nil {
		t.Fatalf("join with a right side dying mid-stream must fail closed (res=%v err=%v)", res, err)
	}
	if !errors.Is(err, source.ErrInjected) {
		t.Errorf("err = %v, want the injected fault preserved in the chain", err)
	}
	var pe *plan.PartialError
	if errors.As(err, &pe) {
		t.Errorf("mid-stream join failure surfaced as a partial answer: %v", err)
	}
}

// TestStreamingModeEnvOverride pins the CSQP_STREAMING contract the CI
// engine matrix depends on: the env var forces the engine on or off over
// StreamingAuto, and garbage values fall back to the configured mode.
func TestStreamingModeEnvOverride(t *testing.T) {
	for _, tc := range []struct {
		env  string
		mode StreamingMode
		want bool
	}{
		{"", StreamingAuto, true},
		{"", StreamingOn, true},
		{"", StreamingOff, false},
		{"0", StreamingAuto, false},
		{"off", StreamingOn, false},
		{"false", StreamingAuto, false},
		{"1", StreamingOff, true},
		{"on", StreamingOff, true},
		{"true", StreamingOff, true},
		{"banana", StreamingOff, false},
		{"banana", StreamingAuto, true},
	} {
		t.Setenv("CSQP_STREAMING", tc.env)
		m := &Mediator{Streaming: tc.mode}
		if got := m.streamingEnabled(); got != tc.want {
			t.Errorf("CSQP_STREAMING=%q mode=%d: streamingEnabled() = %v, want %v", tc.env, tc.mode, got, tc.want)
		}
	}
}

// TestStreamingMetricsRecorded checks the mediator exports the streaming
// counters: a streamed query must bump csqp_exec_rows_streamed and leave
// a peak-rows gauge behind.
func TestStreamingMetricsRecorded(t *testing.T) {
	// Streaming counters only move on the streaming engine; pin it so the
	// CSQP_STREAMING=0 matrix leg doesn't force the materialized path.
	t.Setenv("CSQP_STREAMING", "1")
	med, _, _ := joinFixture(t)
	med.Streaming = StreamingOn
	reg := obs.NewRegistry()
	med.SetObs(reg)
	// An Or condition splits into a Union of source queries, so the
	// streaming engine buffers dedup keys and the peak gauge moves.
	res, err := med.Answer(context.Background(), core.New(), "cars",
		condition.MustParse(`make = "BMW" _ make = "Toyota"`), []string{"make", "model"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() == 0 {
		t.Fatal("expected a non-empty answer")
	}
	snap := reg.Snapshot()
	var rows, peak float64
	var sawRows, sawPeak bool
	for _, m := range snap.Counters {
		if m.Name == "csqp_exec_rows_streamed" {
			rows, sawRows = m.Value, true
		}
	}
	for _, m := range snap.Gauges {
		if m.Name == "csqp_exec_peak_rows" {
			peak, sawPeak = m.Value, true
		}
	}
	if !sawRows || rows < float64(res.Relation.Len()) {
		t.Errorf("csqp_exec_rows_streamed = %v (present=%v), want >= %d", rows, sawRows, res.Relation.Len())
	}
	if !sawPeak || peak <= 0 {
		t.Errorf("csqp_exec_peak_rows = %v (present=%v), want > 0", peak, sawPeak)
	}
}
