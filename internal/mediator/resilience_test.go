package mediator

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

// flakyPartitionFixture builds three partitions of one logical listing
// relation; the middle partition's source is down (every query fails with
// a transport error).
func flakyPartitionFixture(t *testing.T) (*Mediator, *source.Flaky) {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
	)
	build := func(models ...string) *relation.Relation {
		r := relation.New(schema)
		for _, m := range models {
			if err := r.AppendValues(condition.String("BMW"), condition.String(m)); err != nil {
				t.Fatal(err)
			}
		}
		return r
	}
	rels := map[string]*relation.Relation{
		"p1": build("328i"),
		"p2": build("M5"),
		"p3": build("318i"),
	}
	med := New(cost.Model{K1: 5, K2: 1, Est: cost.NewOracleEstimator(rels)})
	var down *source.Flaky
	for _, name := range []string{"p1", "p2", "p3"} {
		g := ssdl.MustParse(`
source ` + name + `
attrs make, model
key model
s1 -> make = $m:string
attributes :: s1 : {make, model}
`)
		src, err := source.NewLocal("", rels[name], g)
		if err != nil {
			t.Fatal(err)
		}
		var q plan.Querier = src
		if name == "p2" {
			down = source.NewFlaky(src).FailFirst(1 << 20)
			q = down
		}
		if err := med.Register(name, q, g); err != nil {
			t.Fatal(err)
		}
	}
	return med, down
}

func TestAnswerUnionPartialDropsDeadPartition(t *testing.T) {
	med, _ := flakyPartitionFixture(t)
	med.AllowPartial = true
	med.Workers = 4
	cond := condition.MustParse(`make = "BMW"`)
	res, err := med.AnswerUnion(context.Background(), core.New(), []string{"p1", "p2", "p3"}, cond, []string{"model"})
	if res == nil {
		t.Fatalf("want partial result, got err = %v", err)
	}
	var pe *plan.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *plan.PartialError", err)
	}
	if got := pe.DroppedSources(); len(got) != 1 || got[0] != "p2" {
		t.Errorf("DroppedSources = %v, want [p2]", got)
	}
	if res.Relation.Len() != 2 { // 328i + 318i, M5's partition dropped
		t.Errorf("rows = %d, want 2: %v", res.Relation.Len(), res.Relation.Tuples())
	}
}

func TestAnswerUnionFailsClosedByDefault(t *testing.T) {
	med, _ := flakyPartitionFixture(t)
	med.Workers = 4
	cond := condition.MustParse(`make = "BMW"`)
	res, err := med.AnswerUnion(context.Background(), core.New(), []string{"p1", "p2", "p3"}, cond, []string{"model"})
	if err == nil || res != nil {
		t.Fatalf("AllowPartial off: want hard failure, got res=%v err=%v", res, err)
	}
	if !errors.Is(err, source.ErrInjected) {
		t.Errorf("err = %v, want the partition's transport failure", err)
	}
}

func TestAnswerRecoversWithResilientSource(t *testing.T) {
	// A partition that fails twice then recovers answers fine once
	// wrapped in a Resilient querier with retries.
	schema := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
	)
	r := relation.New(schema)
	if err := r.AppendValues(condition.String("BMW"), condition.String("M3")); err != nil {
		t.Fatal(err)
	}
	g := ssdl.MustParse(`
source shaky
attrs make, model
key model
s1 -> make = $m:string
attributes :: s1 : {make, model}
`)
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	flaky := source.NewFlaky(src).FailFirst(2)
	res := source.NewResilient("shaky", flaky, source.ResilienceOptions{
		MaxRetries: 3,
		Sleep:      func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	})
	med := New(cost.Model{K1: 5, K2: 1, Est: cost.NewOracleEstimator(map[string]*relation.Relation{"shaky": r})})
	if err := med.Register("shaky", res, g); err != nil {
		t.Fatal(err)
	}
	ans, err := med.Answer(context.Background(), core.New(), "shaky", condition.MustParse(`make = "BMW"`), []string{"model"})
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if ans.Relation.Len() != 1 {
		t.Errorf("rows = %d, want 1", ans.Relation.Len())
	}
	if flaky.Calls() != 3 {
		t.Errorf("inner calls = %d, want 3", flaky.Calls())
	}
}
