package mediator

import (
	"context"
	"fmt"
	"time"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/strset"
)

// The paper's §1 notes that selection queries "form the building blocks of
// more complex queries" and defers join processing to its extended
// version. This file provides that building-block composition for
// two-source equi-joins. The right side runs as a SEMIJOIN PUSHDOWN: the
// distinct left-side join values become one disjunctive target query
//
//	RightCond ∧ (RightAttr = v1 ∨ RightAttr = v2 ∨ ...)
//
// planned capability-sensitively like any other target query — so a
// source whose form accepts value lists gets a single batched submission,
// a source that accepts only one value per query gets one query per
// binding, and a source that supports neither but allows downloads gets a
// download; GenCompact chooses. A WHOLE-SIDE fetch (plan RightCond alone)
// is priced as the alternative, and the cheaper feasible strategy runs.
// The mediator then hash-joins the two sides.

// JoinSpec describes a two-source equi-join target query:
//
//	π_Attrs σ_LeftCond(Left) ⋈_{LeftAttr = RightAttr} σ_RightCond(Right)
//
// Attribute names must be unambiguous: every requested attribute must
// belong to exactly one side (the join attributes may be requested from
// either).
type JoinSpec struct {
	Left, Right         string
	LeftCond, RightCond condition.Node
	LeftAttr, RightAttr string
	Attrs               []string
	// MaxBindings caps the number of distinct left values pushed into
	// the semijoin disjunction (default 64); beyond it the whole-side
	// strategy is used regardless of cost.
	MaxBindings int
}

// JoinResult reports a completed join.
type JoinResult struct {
	// Relation is the join answer.
	Relation *relation.Relation
	// Strategy is "semijoin" or "whole-side".
	Strategy string
	// LeftPlan and RightPlan are the executed side plans.
	LeftPlan, RightPlan plan.Plan
	// Probes is the number of right-side source queries issued.
	Probes int
	// Profile is the join's per-operator execution profile: a HashJoin
	// root whose children are the left and right side subtrees (nil for
	// struct-literal mediators).
	Profile *plan.ExecProfile
}

// AnswerJoin plans and executes the join. Both sides' conditions may be
// arbitrary and/or trees; infeasibility of every strategy returns
// planner.ErrInfeasible (wrapped). Joins always fail closed: a partial
// left side would silently shrink the semijoin's bindings, so
// AllowPartial does not apply here.
func (m *Mediator) AnswerJoin(ctx context.Context, p planner.Planner, spec JoinSpec) (*JoinResult, error) {
	if spec.MaxBindings <= 0 {
		spec.MaxBindings = 64
	}
	start := time.Now()
	// Join profile shape: HashJoin root, left subtree child 0, right
	// subtree child 1 (the right child stays empty for the degenerate
	// no-bindings case, which issues no right-side work).
	var prof, lprof, rprof *plan.OpStats
	if m.rec != nil {
		prof = plan.NewProfile()
		prof.SetOp("HashJoin", spec.LeftAttr+"="+spec.RightAttr)
		lprof = prof.Child()
		rprof = prof.Child()
	}
	leftReg, ok := m.sources[spec.Left]
	if !ok {
		return nil, fmt.Errorf("mediator: unknown source %q", spec.Left)
	}
	rightReg, ok := m.sources[spec.Right]
	if !ok {
		return nil, fmt.Errorf("mediator: unknown source %q", spec.Right)
	}
	leftAttrs, rightAttrs, err := splitJoinAttrs(spec,
		strset.New(leftReg.orig.Grammar().Schema...),
		strset.New(rightReg.orig.Grammar().Schema...))
	if err != nil {
		return nil, err
	}

	// Left side: one capability-sensitive selection query, fail-closed
	// regardless of AllowPartial.
	leftPlan, _, err := m.Plan(ctx, p, spec.Left, spec.LeftCond, leftAttrs.Sorted())
	if err != nil {
		return nil, fmt.Errorf("mediator: join left side: %w", err)
	}
	left, err := plan.ExecuteParallel(ctx, leftPlan, m, plan.ExecOptions{Workers: m.Workers, ChoiceResolver: m.resolveChoice, Profile: lprof})
	if err != nil {
		return nil, fmt.Errorf("mediator: join left side: %w", err)
	}
	leftRes := &Result{Plan: leftPlan, Relation: left}

	values, err := distinctValues(left, spec.LeftAttr)
	if err != nil {
		return nil, err
	}
	rightList := rightAttrs.Sorted()

	// Degenerate case: no bindings means an empty join, no right-side
	// work at all.
	if len(values) == 0 {
		empty, err := emptyJoinResult(left, rightList, spec)
		if err != nil {
			return nil, err
		}
		prof.AddIn(left.Len())
		prof.AddWall(time.Since(start))
		res := &JoinResult{Relation: empty, Strategy: "semijoin", LeftPlan: leftRes.Plan, Profile: prof.Snapshot()}
		m.recordJoin(ctx, spec, res, time.Since(start), nil)
		return res, nil
	}

	// Candidate 1: semijoin pushdown.
	var semiPlan plan.Plan
	semiCost := 0.0
	semiOK := len(values) <= spec.MaxBindings
	if semiOK {
		semiPlan, _, err = m.Plan(ctx, p, spec.Right, semijoinCond(spec, values), rightList)
		if err != nil {
			semiOK = false
		} else {
			semiCost = m.model.PlanCost(semiPlan)
		}
	}
	// Candidate 2: whole-side fetch.
	wholePlan, _, wholeErr := m.Plan(ctx, p, spec.Right, spec.RightCond, rightList)
	wholeOK := wholeErr == nil
	wholeCost := 0.0
	if wholeOK {
		wholeCost = m.model.PlanCost(wholePlan)
	}

	var rightPlan plan.Plan
	strategy := ""
	switch {
	case !semiOK && !wholeOK:
		return nil, fmt.Errorf("mediator: join right side: %w", planner.ErrInfeasible)
	case semiOK && (!wholeOK || semiCost <= wholeCost):
		rightPlan, strategy = semiPlan, "semijoin"
	default:
		rightPlan, strategy = wholePlan, "whole-side"
	}

	var joined *relation.Relation
	if m.streamingEnabled() {
		// Stream the right side straight into a symmetric hash join: the
		// left side enters complete (it was materialized above for
		// semijoin planning), so right tuples only probe — the right
		// answer is never held as a relation or hash table.
		stats := &plan.StreamStats{}
		rightIt, serr := plan.NewStream(rightPlan, m, plan.StreamOptions{Workers: m.Workers, ChoiceResolver: m.resolveChoice, Stats: stats, Profile: rprof})
		if serr != nil {
			return nil, fmt.Errorf("mediator: join right side: %w", serr)
		}
		joined, err = symmetricHashJoin(ctx, plan.NewRelationIterator(left, 0), rightIt, spec, stats, prof)
		m.metrics.rowsStreamed.Add(stats.RowsStreamed())
		m.metrics.peakRows.Set(float64(stats.PeakRows()))
		if err != nil {
			return nil, fmt.Errorf("mediator: join right side: %w", err)
		}
	} else {
		right, rerr := plan.ExecuteParallel(ctx, rightPlan, m, plan.ExecOptions{Workers: m.Workers, ChoiceResolver: m.resolveChoice, Profile: rprof})
		if rerr != nil {
			return nil, fmt.Errorf("mediator: join right side: %w", rerr)
		}
		joined, err = hashJoin(left, right, spec)
		if err != nil {
			return nil, err
		}
		prof.AddIn(left.Len() + right.Len())
		prof.AddOut(joined.Len())
		if joined.Len() > 0 {
			prof.AddChunk()
		}
		prof.AddBuffered(left.Len() + right.Len())
		prof.AddWall(time.Since(start))
	}
	res := &JoinResult{
		Relation:  joined,
		Strategy:  strategy,
		LeftPlan:  leftRes.Plan,
		RightPlan: rightPlan,
		Probes:    len(plan.SourceQueries(rightPlan)),
		Profile:   prof.Snapshot(),
	}
	m.recordJoin(ctx, spec, res, time.Since(start), nil)
	return res, nil
}

// recordJoin admits a completed join into the flight recorder.
func (m *Mediator) recordJoin(ctx context.Context, spec JoinSpec, res *JoinResult, dur time.Duration, err error) {
	if m.rec == nil {
		return
	}
	rec := QueryRecord{
		Strategy: "join/" + res.Strategy,
		Source:   spec.Left + "⋈" + spec.Right,
		Cond:     spec.LeftAttr + "=" + spec.RightAttr,
		Attrs:    spec.Attrs,
		Duration: dur,
		Profile:  res.Profile,
		TraceID:  obs.TracerFrom(ctx).ID(),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	if res.Relation != nil {
		rec.Rows = res.Relation.Len()
	}
	m.record(rec)
}

// semijoinCond builds RightCond ∧ (RightAttr = v1 ∨ ... ∨ RightAttr = vn).
func semijoinCond(spec JoinSpec, values []condition.Value) condition.Node {
	var bind condition.Node
	if len(values) == 1 {
		bind = condition.NewAtomic(spec.RightAttr, condition.OpEq, values[0])
	} else {
		kids := make([]condition.Node, len(values))
		for i, v := range values {
			kids[i] = condition.NewAtomic(spec.RightAttr, condition.OpEq, v)
		}
		bind = &condition.Or{Kids: kids}
	}
	if condition.IsTrue(spec.RightCond) {
		return bind
	}
	return &condition.And{Kids: []condition.Node{spec.RightCond.Clone(), bind}}
}

// splitJoinAttrs resolves which requested attributes come from which side
// and adds the join attributes to both fetch lists.
func splitJoinAttrs(spec JoinSpec, leftSchema, rightSchema strset.Set) (left, right strset.Set, err error) {
	left = strset.New(spec.LeftAttr)
	right = strset.New(spec.RightAttr)
	for _, a := range spec.Attrs {
		inL, inR := leftSchema.Has(a), rightSchema.Has(a)
		switch {
		case inL && inR && a != spec.LeftAttr && a != spec.RightAttr:
			return nil, nil, fmt.Errorf("mediator: attribute %q is ambiguous between %v and %v", a, leftSchema, rightSchema)
		case inL:
			left.Add(a)
		case inR:
			right.Add(a)
		default:
			return nil, nil, fmt.Errorf("mediator: attribute %q belongs to neither join side", a)
		}
	}
	return left, right, nil
}

func distinctValues(rel *relation.Relation, attr string) ([]condition.Value, error) {
	proj, err := rel.Project([]string{attr})
	if err != nil {
		return nil, err
	}
	proj.Sort()
	out := make([]condition.Value, 0, proj.Len())
	for _, t := range proj.Tuples() {
		v, _ := t.Lookup(attr)
		out = append(out, v)
	}
	return out, nil
}

// emptyJoinResult produces the empty relation with the join's output
// schema.
func emptyJoinResult(left *relation.Relation, rightAttrs []string, spec JoinSpec) (*relation.Relation, error) {
	right := relation.New(schemaFromNames(rightAttrs))
	return hashJoin(left, right, spec)
}

func schemaFromNames(attrs []string) *relation.Schema {
	cols := make([]relation.Column, len(attrs))
	for i, a := range attrs {
		cols[i] = relation.Column{Name: a}
	}
	return relation.MustSchema(cols...)
}

// hashJoin joins the two sides on the join attributes and projects the
// requested output attributes.
func hashJoin(left, right *relation.Relation, spec JoinSpec) (*relation.Relation, error) {
	rightIdx := make(map[string][]relation.Tuple)
	for _, t := range right.Tuples() {
		v, ok := t.Lookup(spec.RightAttr)
		if !ok {
			return nil, fmt.Errorf("mediator: join attribute %q missing from right result", spec.RightAttr)
		}
		key := valueKey(v)
		rightIdx[key] = append(rightIdx[key], t)
	}

	// Output schema: left columns, then right columns not already named.
	var cols []relation.Column
	seen := strset.New()
	for _, c := range left.Schema().Columns() {
		cols = append(cols, c)
		seen.Add(c.Name)
	}
	for _, c := range right.Schema().Columns() {
		if !seen.Has(c.Name) {
			cols = append(cols, c)
			seen.Add(c.Name)
		}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	for _, lt := range left.Tuples() {
		lv, ok := lt.Lookup(spec.LeftAttr)
		if !ok {
			return nil, fmt.Errorf("mediator: join attribute %q missing from left result", spec.LeftAttr)
		}
		for _, rt := range rightIdx[valueKey(lv)] {
			vals := make([]condition.Value, 0, schema.Len())
			for _, c := range schema.Columns() {
				if v, ok := lt.Lookup(c.Name); ok {
					vals = append(vals, v)
					continue
				}
				v, _ := rt.Lookup(c.Name)
				vals = append(vals, v)
			}
			if err := out.AppendValues(vals...); err != nil {
				return nil, err
			}
		}
	}
	if len(spec.Attrs) == 0 {
		return out.Distinct(), nil
	}
	return out.Project(spec.Attrs)
}

func valueKey(v condition.Value) string {
	return fmt.Sprintf("%d:%s", int(v.Kind), v.Text())
}
