package mediator

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plan"
)

// counterValue reads one counter out of a registry snapshot (0 if absent).
func counterValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name && len(c.Labels) == 0 {
			return c.Value
		}
	}
	return 0
}

func TestPlanCacheHitSetsCachedAndRegistry(t *testing.T) {
	med, _ := carsFixture(t)
	reg := obs.NewRegistry()
	med.SetObs(reg)
	med.EnableCache()
	med.DisableTemplates = true // this test targets the exact-key tier
	gc := core.New()
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)

	_, m1, err := med.Plan(context.Background(), gc, "cars", cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Cached || m1.Coalesced {
		t.Fatalf("first plan reported Cached=%v Coalesced=%v, want false/false", m1.Cached, m1.Coalesced)
	}
	// Semantically equal variant: same cache entry via the normalized key.
	_, m2, err := med.Plan(context.Background(), gc, "cars", condition.MustParse(`price < 40000 ^ make = "BMW"`), []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Cached || m2.Coalesced {
		t.Fatalf("second plan reported Cached=%v Coalesced=%v, want true/false", m2.Cached, m2.Coalesced)
	}

	if got := counterValue(t, reg, "csqp_plan_cache_hits_total"); got != 1 {
		t.Errorf("cache hits counter = %g, want 1", got)
	}
	if got := counterValue(t, reg, "csqp_plan_cache_misses_total"); got != 1 {
		t.Errorf("cache misses counter = %g, want 1", got)
	}
	if got := counterValue(t, reg, "csqp_plans_total"); got != 1 {
		t.Errorf("plans counter = %g, want 1 (the hit must not re-plan)", got)
	}
	if got := counterValue(t, reg, "csqp_check_calls_total"); got <= 0 {
		t.Errorf("check-calls counter = %g, want > 0", got)
	}
	// The registry view must agree with the legacy CacheStats snapshot.
	st := med.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("CacheStats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestPartialAnswerEmitsEventAndCounter(t *testing.T) {
	med, _ := flakyPartitionFixture(t)
	med.AllowPartial = true
	med.Workers = 4
	reg := obs.NewRegistry()
	med.SetObs(reg)
	var buf bytes.Buffer
	med.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))

	cond := condition.MustParse(`make = "BMW"`)
	res, err := med.AnswerUnion(context.Background(), core.New(), []string{"p1", "p2", "p3"}, cond, []string{"model"})
	if res == nil {
		t.Fatalf("want partial result, got err = %v", err)
	}
	var pe *plan.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *plan.PartialError", err)
	}
	if res.Relation.Len() != 2 {
		t.Errorf("surviving rows = %d, want 2", res.Relation.Len())
	}

	if got := counterValue(t, reg, "csqp_partial_answers_total"); got != 1 {
		t.Errorf("partial-answers counter = %g, want 1", got)
	}
	out := buf.String()
	for _, want := range []string{"partial answer", "dropped_sources", "p2", "surviving_rows=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("structured event missing %q:\n%s", want, out)
		}
	}
}

func TestAnswerTraceCoversLifecycle(t *testing.T) {
	med, _ := carsFixture(t)
	tr := obs.NewTracer(0)
	ctx := obs.WithTracer(context.Background(), tr)
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	if _, err := med.Answer(ctx, core.New(), "cars", cond, []string{"model"}); err != nil {
		t.Fatal(err)
	}

	byName := map[string]*obs.Span{}
	for _, s := range tr.Spans() {
		byName[s.Name] = s
	}
	for _, name := range []string{"mediator.answer", "mediator.plan", "plan.rewrite", "plan.generate", "plan.fix", "plan.execute", "exec.source"} {
		if byName[name] == nil {
			t.Fatalf("trace missing span %q:\n%s", name, tr.Tree())
		}
	}
	root := byName["mediator.answer"]
	if root.Parent != 0 {
		t.Errorf("mediator.answer should be the root span")
	}
	if byName["mediator.plan"].Parent != root.ID || byName["plan.execute"].Parent != root.ID {
		t.Errorf("plan/execute spans not children of the answer span:\n%s", tr.Tree())
	}
	if byName["plan.rewrite"].Parent != byName["mediator.plan"].ID {
		t.Errorf("plan.rewrite not nested under mediator.plan:\n%s", tr.Tree())
	}
	if byName["exec.source"].Parent != byName["plan.execute"].ID {
		t.Errorf("exec.source not nested under plan.execute:\n%s", tr.Tree())
	}
}
