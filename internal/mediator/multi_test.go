package mediator

import (
	"context"
	"errors"
	"testing"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

// partitionedFixture builds two listing partitions with *different*
// capability descriptions over the same schema, plus a replicated pair of
// mirrors where one is cheaper.
func partitionedFixture(t *testing.T) (*Mediator, map[string]*source.Local) {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	build := func(rows []struct {
		mk, model string
		price     int64
	}) *relation.Relation {
		r := relation.New(schema)
		for _, row := range rows {
			if err := r.AppendValues(condition.String(row.mk), condition.String(row.model), condition.Int(row.price)); err != nil {
				t.Fatal(err)
			}
		}
		return r
	}
	west := build([]struct {
		mk, model string
		price     int64
	}{
		{"BMW", "328i-w", 35000},
		{"Toyota", "Camry-w", 19000},
	})
	east := build([]struct {
		mk, model string
		price     int64
	}{
		{"BMW", "M5-e", 70000},
		{"BMW", "318i-e", 29000},
		{"Toyota", "Corolla-e", 14000},
	})

	// West supports make-only queries; east supports make with an
	// optional price bound: same logical relation, different forms.
	westG := ssdl.MustParse(`
source west
attrs make, model, price
key model
s1 -> make = $m:string
attributes :: s1 : {make, model, price}
`)
	eastG := ssdl.MustParse(`
source east
attrs make, model, price
key model
s1 -> make = $m:string
s2 -> make = $m:string ^ price < $p:int
attributes :: s1 : {make, model, price}
attributes :: s2 : {make, model, price}
`)
	// Mirrors of the east data: one slow (high k1), one fast.
	slowG := ssdl.MustParse(`
source slow_mirror
attrs make, model, price
key model
s1 -> make = $m:string
attributes :: s1 : {make, model, price}
`)
	fastG := ssdl.MustParse(`
source fast_mirror
attrs make, model, price
key model
s1 -> make = $m:string
attributes :: s1 : {make, model, price}
`)

	srcs := map[string]*source.Local{}
	rels := map[string]*relation.Relation{"west": west, "east": east, "slow_mirror": east, "fast_mirror": east}
	med := New(cost.Model{
		K1: 10, K2: 1,
		PerSource: map[string]cost.Coef{
			"slow_mirror": {K1: 500, K2: 2},
			"fast_mirror": {K1: 5, K2: 1},
		},
		Est: cost.NewOracleEstimator(rels),
	})
	for name, g := range map[string]*ssdl.Grammar{"west": westG, "east": eastG, "slow_mirror": slowG, "fast_mirror": fastG} {
		src, err := source.NewLocal("", rels[name], g)
		if err != nil {
			t.Fatal(err)
		}
		srcs[name] = src
		if err := med.Register(name, src, g); err != nil {
			t.Fatal(err)
		}
	}
	return med, srcs
}

func TestAnswerUnionPartitioned(t *testing.T) {
	med, srcs := partitionedFixture(t)
	// BMWs under $40k across both partitions. West cannot push the price
	// bound (it filters at the mediator); east can.
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	res, err := med.AnswerUnion(context.Background(), core.New(), []string{"west", "east"}, cond, []string{"model", "price"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 { // 328i-w, 318i-e
		t.Errorf("rows = %d, want 2: %v", res.Relation.Len(), res.Relation.Tuples())
	}
	// Both partitions were queried.
	if srcs["west"].Accounting().Queries == 0 || srcs["east"].Accounting().Queries == 0 {
		t.Error("both partitions must be queried")
	}
}

func TestAnswerUnionFailsWhenPartitionInfeasible(t *testing.T) {
	med, _ := partitionedFixture(t)
	// Price-only queries are infeasible on west (and east): missing rows
	// must not be silently dropped.
	cond := condition.MustParse(`price < 20000`)
	_, err := med.AnswerUnion(context.Background(), core.New(), []string{"west", "east"}, cond, []string{"model"})
	if !errors.Is(err, planner.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	if _, err := med.AnswerUnion(context.Background(), core.New(), nil, cond, []string{"model"}); err == nil {
		t.Error("no sources should fail")
	}
}

func TestAnswerCheapestPicksFastMirror(t *testing.T) {
	med, srcs := partitionedFixture(t)
	cond := condition.MustParse(`make = "Toyota"`)
	res, chosen, err := med.AnswerCheapest(context.Background(), core.New(), []string{"slow_mirror", "fast_mirror"}, cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if chosen != "fast_mirror" {
		t.Errorf("chosen = %s, want fast_mirror (k1 5 vs 500)", chosen)
	}
	if res.Relation.Len() != 1 { // Corolla-e
		t.Errorf("rows = %d, want 1", res.Relation.Len())
	}
	if srcs["slow_mirror"].Accounting().Queries != 0 {
		t.Error("the slow mirror must not be queried")
	}
}

func TestAnswerCheapestPrefersCapableMirror(t *testing.T) {
	med, _ := partitionedFixture(t)
	// slow_mirror and east serve the same data; only east's form can
	// push the price bound, and slow_mirror's per-query overhead is
	// huge, so east must win.
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	res, chosen, err := med.AnswerCheapest(context.Background(), core.New(), []string{"slow_mirror", "east"}, cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if chosen != "east" {
		t.Errorf("chosen = %s, want east", chosen)
	}
	if res.Relation.Len() != 1 { // 318i-e
		t.Errorf("rows = %d, want 1", res.Relation.Len())
	}
	// All-infeasible case.
	_, _, err = med.AnswerCheapest(context.Background(), core.New(), []string{"west"}, condition.MustParse(`price < 1`), []string{"model"})
	if !errors.Is(err, planner.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanCache(t *testing.T) {
	med, _ := carsFixture2(t)
	med.EnableCache()
	med.DisableTemplates = true // this test targets the exact-key tier
	gc := core.New()
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	p1, m1, err := med.Plan(context.Background(), gc, "cars", cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if m1.CheckCalls == 0 {
		t.Error("first plan should have done real work")
	}
	// Same query: hit.
	p2, m2, err := med.Plan(context.Background(), gc, "cars", cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Key() != p1.Key() {
		t.Error("cached plan differs")
	}
	if m2.CheckCalls != 0 {
		t.Error("cache hit should do no planning work")
	}
	// Commutative variant: same entry (NormKey).
	rev := condition.MustParse(`price < 40000 ^ make = "BMW"`)
	p3, _, err := med.Plan(context.Background(), gc, "cars", rev, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if p3.Key() != p1.Key() {
		t.Error("commutative variant should hit the same entry")
	}
	st := med.CacheStats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("cache stats = %d/%d, want 2 hits, 1 miss", st.Hits, st.Misses)
	}
	// Different attrs: miss.
	if _, _, err := med.Plan(context.Background(), gc, "cars", cond, []string{"model", "color"}); err != nil {
		t.Fatal(err)
	}
	if st := med.CacheStats(); st.Hits != 2 || st.Misses != 2 {
		t.Errorf("cache stats = %d/%d, want 2/2", st.Hits, st.Misses)
	}
	// Executing a cached plan still answers correctly.
	res, err := med.Answer(context.Background(), gc, "cars", rev, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 1 {
		t.Errorf("rows = %d, want 1", res.Relation.Len())
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	med, _ := carsFixture2(t)
	if st := med.CacheStats(); st != (CacheStats{}) {
		t.Error("stats should be zero without cache")
	}
	gc := core.New()
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	if _, _, err := med.Plan(context.Background(), gc, "cars", cond, []string{"model"}); err != nil {
		t.Fatal(err)
	}
	if st := med.CacheStats(); st != (CacheStats{}) {
		t.Error("disabled cache must not count")
	}
}

// carsFixture2 is a small single-source mediator for the cache tests.
func carsFixture2(t *testing.T) (*Mediator, *source.Local) {
	t.Helper()
	g := ssdl.MustParse(`
source cars
attrs make, model, color, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string ^ color = $c:string
attributes :: s1 : {make, model, color, price}
attributes :: s2 : {make, model, color}
`)
	s := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "color", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	if err := r.AppendValues(condition.String("BMW"), condition.String("328i"), condition.String("red"), condition.Int(35000)); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendValues(condition.String("BMW"), condition.String("M5"), condition.String("black"), condition.Int(70000)); err != nil {
		t.Fatal(err)
	}
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	med := New(cost.Model{K1: 5, K2: 1, Est: cost.NewOracleEstimator(map[string]*relation.Relation{"cars": r})})
	if err := med.Register("", src, g); err != nil {
		t.Fatal(err)
	}
	return med, src
}
