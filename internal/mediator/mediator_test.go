package mediator

import (
	"context"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

const carsGrammar = `
source cars
attrs make, model, color, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string ^ color = $c:string
attributes :: s1 : {make, model, color, price}
attributes :: s2 : {make, model, color}
`

func carsFixture(t *testing.T) (*Mediator, *source.Local) {
	t.Helper()
	s := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "color", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	rows := []struct {
		make, model, color string
		price              int64
	}{
		{"BMW", "328i", "red", 35000},
		{"BMW", "M5", "black", 70000},
		{"Toyota", "Camry", "red", 19000},
		{"Toyota", "Corolla", "blue", 14000},
	}
	for _, row := range rows {
		if err := r.AppendValues(
			condition.String(row.make), condition.String(row.model),
			condition.String(row.color), condition.Int(row.price)); err != nil {
			t.Fatal(err)
		}
	}
	g := ssdl.MustParse(carsGrammar)
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	med := New(cost.Model{K1: 5, K2: 1, Est: cost.NewOracleEstimator(map[string]*relation.Relation{"cars": r})})
	if err := med.Register("", src, g); err != nil {
		t.Fatal(err)
	}
	return med, src
}

func TestRegisterErrors(t *testing.T) {
	med, _ := carsFixture(t)
	g := ssdl.MustParse(carsGrammar)
	if err := med.Register("cars", nil, g); err == nil {
		t.Error("duplicate registration should fail")
	}
	gNoName := ssdl.MustParse(`
attrs a
s1 -> a = $v
attributes :: s1 : {a}
`)
	if err := med.Register("", nil, gNoName); err == nil {
		t.Error("unnamed source should fail")
	}
	if names := med.SourceNames(); len(names) != 1 || names[0] != "cars" {
		t.Errorf("SourceNames = %v", names)
	}
}

func TestContextUsesClosureChecker(t *testing.T) {
	med, _ := carsFixture(t)
	ctx, err := med.Context("cars")
	if err != nil {
		t.Fatal(err)
	}
	// The closure checker accepts the reversed conjunct order.
	rev := condition.MustParse(`price < 40000 ^ make = "BMW"`)
	if ctx.Checker.Check(rev).Empty() {
		t.Error("planning checker should be the commutative closure")
	}
	// The execution checker (original) rejects it.
	orig, ok := med.Checker("cars")
	if !ok || !orig.Check(rev).Empty() {
		t.Error("execution checker should be the original grammar")
	}
	if _, err := med.Context("ghost"); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestAnswerEndToEnd(t *testing.T) {
	med, src := carsFixture(t)
	cond := condition.MustParse(`(make = "BMW" _ make = "Toyota") ^ color = "red"`)
	res, err := med.Answer(context.Background(), core.New(), "cars", cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 { // 328i, Camry
		t.Errorf("answer len = %d, want 2", res.Relation.Len())
	}
	// All executed source queries were accepted by the real source (no
	// rejections), proving the fixer worked.
	if acc := src.Accounting(); acc.Rejected != 0 || acc.Queries == 0 {
		t.Errorf("accounting = %+v", acc)
	}
	// The answer matches direct evaluation.
	direct, err := src.Relation().Select(cond)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Project([]string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation.Equal(want) {
		t.Error("mediator answer differs from direct evaluation")
	}
}

func TestFixPlanReordersSourceQueries(t *testing.T) {
	med, _ := carsFixture(t)
	// A plan whose source query is in closure order (price before make).
	q := plan.NewSourceQuery("cars", condition.MustParse(`price < 40000 ^ make = "BMW"`), []string{"model"})
	fixed, err := med.FixPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	fq := plan.SourceQueries(fixed)[0]
	want := condition.MustParse(`make = "BMW" ^ price < 40000`)
	if fq.Cond.Key() != want.Key() {
		t.Errorf("fixed cond = %s, want %s", fq.Cond.Key(), want.Key())
	}
}

func TestFixPlanRecursesAllNodeTypes(t *testing.T) {
	med, _ := carsFixture(t)
	rev := condition.MustParse(`price < 40000 ^ make = "BMW"`)
	q := func() *plan.SourceQuery { return plan.NewSourceQuery("cars", rev, []string{"model"}) }
	p := &plan.Union{Inputs: []plan.Plan{
		plan.NewSP(condition.MustParse(`color = "red"`), []string{"model"},
			plan.NewSourceQuery("cars", rev, []string{"color", "model"})),
		&plan.Intersect{Inputs: []plan.Plan{q(), q()}},
		&plan.Choice{Alternatives: []plan.Plan{q()}},
	}}
	fixed, err := med.FixPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, sq := range plan.SourceQueries(fixed) {
		orig, _ := med.Checker("cars")
		if orig.Check(sq.Cond).Empty() {
			t.Errorf("unfixed source query survived: %s", sq.Cond.Key())
		}
	}
}

func TestFixPlanResolvesChoiceByCost(t *testing.T) {
	med, _ := carsFixture(t)
	// Both alternatives are supported as written; the wider price bound
	// matches two BMWs (cost 5 + 2), the tighter one matches one
	// (cost 5 + 1). The Choice must resolve to the cheaper alternative,
	// not simply the first.
	wide := plan.NewSourceQuery("cars", condition.MustParse(`make = "BMW" ^ price < 100000`), []string{"model"})
	tight := plan.NewSourceQuery("cars", condition.MustParse(`make = "BMW" ^ price < 40000`), []string{"model"})
	fixed, err := med.FixPlan(&plan.Choice{Alternatives: []plan.Plan{wide, tight}})
	if err != nil {
		t.Fatal(err)
	}
	sqs := plan.SourceQueries(fixed)
	if len(sqs) != 1 || sqs[0].Cond.Key() != tight.Cond.Key() {
		t.Errorf("FixPlan resolved Choice to %s, want the minimum-cost alternative %s",
			plan.Format(fixed), tight.Cond.Key())
	}
	if _, err := med.FixPlan(&plan.Choice{}); err == nil {
		t.Error("empty Choice should fail")
	}
}

func TestFixPlanFailsForUnfixable(t *testing.T) {
	med, _ := carsFixture(t)
	q := plan.NewSourceQuery("cars", condition.MustParse(`color = "red"`), []string{"model"})
	if _, err := med.FixPlan(q); err == nil {
		t.Error("unfixable source query should fail")
	}
	ghost := plan.NewSourceQuery("ghost", condition.True(), nil)
	if _, err := med.FixPlan(ghost); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestAnswerOverHTTPSources(t *testing.T) {
	// Full network path: mediator -> HTTP client -> HTTP server -> local
	// source, with the description fetched over the wire.
	_, src := carsFixture(t)
	handler := source.NewHandler(src)
	server := newTestServer(t, handler)
	defer server.close()

	client := source.NewClient(server.url, nil)
	g, err := client.Describe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	med := New(cost.Model{K1: 5, K2: 1, Est: cost.NewOracleEstimator(map[string]*relation.Relation{"cars": src.Relation()})})
	if err := med.Register("", client, g); err != nil {
		t.Fatal(err)
	}
	cond := condition.MustParse(`(make = "BMW" _ make = "Toyota") ^ color = "red"`)
	res, err := med.Answer(context.Background(), core.New(), "cars", cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 {
		t.Errorf("HTTP answer len = %d, want 2", res.Relation.Len())
	}
}

func TestBaselineThroughMediator(t *testing.T) {
	med, _ := carsFixture(t)
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	res, err := med.Answer(context.Background(), baseline.Naive{}, "cars", cond, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 1 {
		t.Errorf("len = %d, want 1", res.Relation.Len())
	}
	if !strings.Contains(plan.Format(res.Plan), "SourceQuery") {
		t.Error("plan should contain a source query")
	}
}

// TestExecuteResolvesChoiceByCost drives an unresolved Choice through the
// mediator's executor and checks the minimum-cost alternative runs — not
// blindly Alternatives[0] — matching what FixPlan/planning would pick.
func TestExecuteResolvesChoiceByCost(t *testing.T) {
	med, _ := carsFixture(t)
	alt := func(mk string) plan.Plan {
		return plan.NewSourceQuery("cars",
			condition.NewAtomic("make", condition.OpEq, condition.String(mk)),
			[]string{"model"})
	}
	// The oracle estimator prices make="BMW" at 2 result tuples and
	// make="Toyota" at 2 as well — so narrow one side with price to make
	// costs differ: BMW ^ price<40000 returns 1 tuple, Toyota 2.
	cheap := plan.NewSourceQuery("cars",
		condition.NewAnd(
			condition.NewAtomic("make", condition.OpEq, condition.String("BMW")),
			condition.NewAtomic("price", condition.OpLt, condition.Int(40000)),
		), []string{"model"})
	choice := &plan.Choice{Alternatives: []plan.Plan{alt("Toyota"), cheap}}

	rel, _, err := med.execute(context.Background(), choice)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Errorf("rows = %d, want 1 (the cheaper BMW^price alternative, not Alternatives[0])", rel.Len())
	}
}
