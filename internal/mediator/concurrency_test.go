package mediator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/planner"
)

// countingPlanner wraps a planner and counts Plan invocations, so tests
// can assert how often the mediator actually planned.
type countingPlanner struct {
	inner planner.Planner
	calls atomic.Int64
}

func (p *countingPlanner) Name() string { return p.inner.Name() }

func (p *countingPlanner) Plan(ctx context.Context, pc *planner.Context, cond condition.Node, attrs []string) (plan.Plan, *planner.Metrics, error) {
	p.calls.Add(1)
	return p.inner.Plan(ctx, pc, cond, attrs)
}

// TestConcurrentAnswersCoalesce hammers one shared mediator (cache
// enabled) from many goroutines with overlapping queries and checks that
// results are identical everywhere and that each distinct query was
// planned exactly once — concurrent identical requests coalesce onto one
// planner run. Run under -race this also exercises the condition-key
// memo, the sharded checker memo, and the plan cache concurrently.
func TestConcurrentAnswersCoalesce(t *testing.T) {
	med, _ := carsFixture(t)
	med.EnableCache()
	med.DisableTemplates = true // this test targets the exact-key tier
	cp := &countingPlanner{inner: core.New()}

	// Four query texts over three distinct cache keys: the first two are
	// commutative variants and share a NormKey entry.
	queries := []struct {
		cond string
		rows int
	}{
		{`make = "BMW" ^ price < 40000`, 1},    // 328i
		{`price < 40000 ^ make = "BMW"`, 1},    // same entry as above
		{`make = "Toyota" ^ color = "red"`, 1}, // Camry
		{`make = "BMW" ^ color = "black"`, 1},  // M5
	}
	const distinctKeys = 3
	const workers = 8
	const rounds = 4

	var wg sync.WaitGroup
	start := make(chan struct{})
	planKeys := make([][]string, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		planKeys[w] = make([]string, len(queries))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				for qi, q := range queries {
					// Each request parses its own condition, as separate
					// clients would.
					cond := condition.MustParse(q.cond)
					res, err := med.Answer(context.Background(), cp, "cars", cond, []string{"model"})
					if err != nil {
						errs[w] = err
						return
					}
					if res.Relation.Len() != q.rows {
						errs[w] = fmt.Errorf("query %d round %d: %d rows, want %d", qi, r, res.Relation.Len(), q.rows)
						return
					}
					key := res.Plan.Key()
					if planKeys[w][qi] == "" {
						planKeys[w][qi] = key
					} else if planKeys[w][qi] != key {
						errs[w] = fmt.Errorf("query %d: plan changed across rounds", qi)
						return
					}
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()

	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 1; w < workers; w++ {
		for qi := range queries {
			if planKeys[w][qi] != planKeys[0][qi] {
				t.Errorf("query %d: worker %d got a different plan than worker 0", qi, w)
			}
		}
	}
	if got := cp.calls.Load(); got != distinctKeys {
		t.Errorf("planner invoked %d times, want %d (one per distinct query)", got, distinctKeys)
	}
	st := med.CacheStats()
	if st.Hits == 0 || st.Misses < distinctKeys {
		t.Errorf("implausible cache stats: %+v", st)
	}
}

// TestPlanCacheBounded checks the LRU bound: with capacity 2, a third
// distinct plan evicts the least-recently-used entry, which then has to
// be re-planned, while the fresher entries keep hitting.
func TestPlanCacheBounded(t *testing.T) {
	med, _ := carsFixture(t)
	med.CacheSize = 2
	med.EnableCache()
	med.DisableTemplates = true // this test targets the exact-key tier
	cp := &countingPlanner{inner: core.New()}
	conds := []string{
		`make = "BMW" ^ price < 40000`,
		`make = "BMW" ^ price < 50000`,
		`make = "BMW" ^ price < 60000`,
	}
	for _, c := range conds {
		if _, _, err := med.Plan(context.Background(), cp, "cars", condition.MustParse(c), []string{"model"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := med.cache.len(); got != 2 {
		t.Errorf("cache holds %d entries, want 2", got)
	}
	if st := med.CacheStats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// The most recent entry still hits...
	if _, _, err := med.Plan(context.Background(), cp, "cars", condition.MustParse(conds[2]), []string{"model"}); err != nil {
		t.Fatal(err)
	}
	if got := cp.calls.Load(); got != 3 {
		t.Errorf("planner ran %d times, want 3 (recent entry should hit)", got)
	}
	// ...while the evicted one must be planned again.
	if _, _, err := med.Plan(context.Background(), cp, "cars", condition.MustParse(conds[0]), []string{"model"}); err != nil {
		t.Fatal(err)
	}
	if got := cp.calls.Load(); got != 4 {
		t.Errorf("planner ran %d times, want 4 (evicted entry should miss)", got)
	}
}

// TestPlanErrorsNotCached checks that failed planning runs do not poison
// the cache: the error is reported, and the next identical query plans
// again.
func TestPlanErrorsNotCached(t *testing.T) {
	med, _ := carsFixture(t)
	med.EnableCache()
	med.DisableTemplates = true // this test targets the exact-key tier
	cp := &countingPlanner{inner: core.New()}
	// Bare color is not supported by any form of the cars grammar.
	infeasible := `color = "red"`
	for i := 0; i < 2; i++ {
		_, _, err := med.Plan(context.Background(), cp, "cars", condition.MustParse(infeasible), []string{"model"})
		if !errors.Is(err, planner.ErrInfeasible) {
			t.Fatalf("call %d: err = %v, want ErrInfeasible", i, err)
		}
	}
	if got := cp.calls.Load(); got != 2 {
		t.Errorf("planner ran %d times, want 2 (errors must not be cached)", got)
	}
}
