package mediator

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

// enumCarsGrammar pins constants: make is a dropdown of two literals, so
// the make value position is value-constrained and not templatable.
const enumCarsGrammar = `
source cars
attrs make, model, color, price
key model
s1 -> make = {"BMW", "Toyota"} ^ price < $p:int
attributes :: s1 : {make, model, color, price}
`

func enumCarsFixture(t *testing.T) *Mediator {
	t.Helper()
	s := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "color", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	for _, row := range []struct {
		make, model, color string
		price              int64
	}{
		{"BMW", "328i", "red", 35000},
		{"Toyota", "Camry", "red", 19000},
	} {
		if err := r.AppendValues(
			condition.String(row.make), condition.String(row.model),
			condition.String(row.color), condition.Int(row.price)); err != nil {
			t.Fatal(err)
		}
	}
	g := ssdl.MustParse(enumCarsGrammar)
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	med := New(cost.Model{K1: 5, K2: 1, Est: cost.NewOracleEstimator(map[string]*relation.Relation{"cars": r})})
	if err := med.Register("", src, g); err != nil {
		t.Fatal(err)
	}
	return med
}

// TestTemplateHitBindsConstants is the tier's core contract: same shape,
// different constants → one skeleton planning run, answers identical to
// fresh planning.
func TestTemplateHitBindsConstants(t *testing.T) {
	med, _ := carsFixture(t)
	med.EnableCache()
	cp := &countingPlanner{inner: core.New()}

	queries := []struct {
		cond string
		rows int
	}{
		{`make = "BMW" ^ price < 40000`, 1},    // 328i
		{`make = "BMW" ^ price < 80000`, 2},    // 328i, M5
		{`make = "Toyota" ^ price < 15000`, 1}, // Corolla
		{`price < 20000 ^ make = "Toyota"`, 2}, // commuted: same template
	}
	for i, q := range queries {
		res, err := med.Answer(context.Background(), cp, "cars", condition.MustParse(q.cond), []string{"model"})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.Relation.Len() != q.rows {
			t.Errorf("query %d: %d rows, want %d", i, res.Relation.Len(), q.rows)
		}
		if !res.Metrics.Template {
			t.Errorf("query %d: Metrics = %+v, want Template", i, res.Metrics)
		}
		if i > 0 && !res.Metrics.Cached {
			t.Errorf("query %d: Metrics = %+v, want Cached (template hit)", i, res.Metrics)
		}
	}
	if got := cp.calls.Load(); got != 1 {
		t.Errorf("planner ran %d times, want 1 (one skeleton for the shape)", got)
	}
	st := med.TemplateStats()
	if st.Hits != 3 || st.Misses != 1 || st.Fallbacks != 0 || st.Infeasible != 0 {
		t.Errorf("template stats = %+v, want 3 hits / 1 miss", st)
	}
	if cs := med.CacheStats(); cs.Misses != 0 {
		t.Errorf("plan cache consulted: %+v", cs)
	}
}

// TestTemplateConstrainedFallback: a grammar that enumerates make values
// is value-constrained at that position. Queries whose make is in the
// enum must fall back to full planning — and still answer correctly —
// because the skeleton (param never matches an enum pattern) is
// infeasible.
func TestTemplateConstrainedFallback(t *testing.T) {
	med := enumCarsFixture(t)
	med.EnableCache()
	cp := &countingPlanner{inner: core.New()}

	for i := 0; i < 2; i++ {
		res, err := med.Answer(context.Background(), cp, "cars", condition.MustParse(`make = "BMW" ^ price < 40000`), []string{"model"})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if res.Relation.Len() != 1 {
			t.Errorf("round %d: %d rows, want 1", i, res.Relation.Len())
		}
		if res.Metrics.Template {
			t.Errorf("round %d: Metrics = %+v, want no Template (fallback)", i, res.Metrics)
		}
	}
	st := med.TemplateStats()
	// Round 1: template miss, skeleton planned and found infeasible
	// (negative template). Round 2: template hit on the negative entry,
	// counted Infeasible, fall back again.
	if st.Misses != 1 || st.Hits != 1 || st.Infeasible != 2 {
		t.Errorf("template stats = %+v, want 1 miss / 1 hit / 2 infeasible", st)
	}
	// The exact tier served round 2 from cache: skeleton + round-1
	// concrete plan = 2 planner runs total.
	if got := cp.calls.Load(); got != 2 {
		t.Errorf("planner ran %d times, want 2 (skeleton + one concrete)", got)
	}
	if cs := med.CacheStats(); cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("plan cache stats = %+v, want 1 hit / 1 miss", cs)
	}
}

// TestTemplateMixedConstrainedPosition: with both an enum rule and a
// placeholder rule for the same position, the skeleton is feasible via
// the placeholder rule, but a binding that collides with the enum literal
// set must force per-query fallback (the concrete query could derive
// through MORE rules than the skeleton did, exporting more attributes).
func TestTemplateMixedConstrainedPosition(t *testing.T) {
	s := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	if err := r.AppendValues(condition.String("BMW"), condition.String("328i"), condition.Int(35000)); err != nil {
		t.Fatal(err)
	}
	g := ssdl.MustParse(`
source cars
attrs make, model, price
key model
s1 -> make = $m:string
s2 -> make = {"BMW"}
attributes :: s1 : {make, model}
attributes :: s2 : {make, model, price}
`)
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	med := New(cost.Model{K1: 5, K2: 1, Est: cost.NewOracleEstimator(map[string]*relation.Relation{"cars": r})})
	if err := med.Register("", src, g); err != nil {
		t.Fatal(err)
	}
	med.EnableCache()
	cp := &countingPlanner{inner: core.New()}

	// Warm the template with an unconstrained constant.
	res, err := med.Answer(context.Background(), cp, "cars", condition.MustParse(`make = "Audi"`), []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.Template {
		t.Fatalf("warming query Metrics = %+v, want Template", res.Metrics)
	}

	// "BMW" is pinned by the enum rule: the template hit must decline at
	// bind time (the concrete query can derive through s2 as well, which
	// the skeleton never saw) and fall back to full planning.
	res2, err := med.Answer(context.Background(), cp, "cars", condition.MustParse(`make = "BMW"`), []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.Template {
		t.Fatalf("constrained query Metrics = %+v, want fallback", res2.Metrics)
	}
	if res2.Relation.Len() != 1 {
		t.Errorf("constrained query rows = %d, want 1", res2.Relation.Len())
	}
	st := med.TemplateStats()
	if st.Hits != 1 || st.Fallbacks != 1 {
		t.Errorf("template stats = %+v, want 1 hit / 1 fallback", st)
	}
}

// TestTemplatesDisabled: DisableTemplates keeps everything on the exact
// tier.
func TestTemplatesDisabled(t *testing.T) {
	med, _ := carsFixture(t)
	med.EnableCache()
	med.DisableTemplates = true
	cp := &countingPlanner{inner: core.New()}
	for i := 0; i < 2; i++ {
		if _, _, err := med.Plan(context.Background(), cp, "cars", condition.MustParse(`make = "BMW" ^ price < 40000`), []string{"model"}); err != nil {
			t.Fatal(err)
		}
	}
	if st := med.TemplateStats(); st.Hits+st.Misses != 0 {
		t.Errorf("template tier consulted while disabled: %+v", st)
	}
	if cs := med.CacheStats(); cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("plan cache stats = %+v, want 1/1", cs)
	}
}

// TestTemplateConcurrentCoalesce: concurrent same-shape queries with
// distinct constants coalesce onto one skeleton planning run.
func TestTemplateConcurrentCoalesce(t *testing.T) {
	med, _ := carsFixture(t)
	med.EnableCache()
	cp := &countingPlanner{inner: core.New()}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for r := 0; r < 4; r++ {
				cond := condition.MustParse(fmt.Sprintf(`make = "BMW" ^ price < %d`, 30000+1000*(w*4+r)))
				if _, _, err := med.Plan(context.Background(), cp, "cars", cond, []string{"model"}); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := cp.calls.Load(); got != 1 {
		t.Errorf("planner ran %d times, want 1", got)
	}
	st := med.TemplateStats()
	if total := st.Hits + st.Misses + st.CoalescedWaits; total < workers*4 {
		t.Errorf("template stats don't cover all calls: %+v", st)
	}
}

// TestTemplateEviction: the template cache is LRU-bounded like the exact
// cache.
func TestTemplateEviction(t *testing.T) {
	med, _ := carsFixture(t)
	med.CacheSize = 1
	med.EnableCache()
	cp := &countingPlanner{inner: core.New()}
	shapes := []string{
		`make = "BMW" ^ price < 40000`, // shape A
		`make = "BMW" ^ color = "red"`, // shape B evicts A
		`make = "BMW" ^ price < 50000`, // shape A again: re-plan
	}
	for _, c := range shapes {
		if _, _, err := med.Plan(context.Background(), cp, "cars", condition.MustParse(c), []string{"model"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := cp.calls.Load(); got != 3 {
		t.Errorf("planner ran %d times, want 3 (evicted template re-planned)", got)
	}
	// Insert A, insert B (evicts A), insert A again (evicts B).
	if st := med.TemplateStats(); st.Evictions != 2 {
		t.Errorf("template stats = %+v, want 2 evictions", st)
	}
}

// cacheKey must stay a single allocation: it runs on every cached Plan
// call.
func TestCacheKeyAllocs(t *testing.T) {
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	attrs := []string{"make", "model"}
	condition.NormKey(cond) // warm the node's memo, as Plan's path does
	allocs := testing.AllocsPerRun(100, func() {
		_ = cacheKey("GenCompact", "cars", cond, attrs)
	})
	if allocs > 1 {
		t.Errorf("cacheKey allocates %.0f times per call, want ≤ 1", allocs)
	}
	pz := condition.Parameterize(cond)
	allocs = testing.AllocsPerRun(100, func() {
		_ = templateKey("GenCompact", "cars", pz.Skeleton, attrs)
	})
	if allocs > 1 {
		t.Errorf("templateKey allocates %.0f times per call, want ≤ 1", allocs)
	}
}
