package mediator

import (
	"context"
	"errors"
	"testing"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

// joinFixture builds a two-source mediator: a dealer directory (probeable
// by city) and the car listing source (probeable by make+price or
// make+color).
func joinFixture(t *testing.T) (*Mediator, *source.Local, *source.Local) {
	t.Helper()
	return joinFixtureWrapped(t, func(_ string, q plan.Querier) plan.Querier { return q })
}

// joinFixtureWrapped is joinFixture with a hook: wrap sees each backing
// source ("dealers", "cars") before registration, so fault-injection
// tests can interpose a Flaky or Resilient layer while keeping the same
// data and grammars.
func joinFixtureWrapped(t *testing.T, wrap func(name string, q plan.Querier) plan.Querier) (*Mediator, *source.Local, *source.Local) {
	t.Helper()
	// Source 1: dealers(dealer, city, brand).
	dg := ssdl.MustParse(`
source dealers
attrs dealer, city, brand
key dealer
s1 -> city = $c:string
s2 -> brand = $b:string
s3 -> city = $c:string ^ brand = $b:string
attributes :: s1 : {dealer, city, brand}
attributes :: s2 : {dealer, city, brand}
attributes :: s3 : {dealer, city, brand}
`)
	ds := relation.MustSchema(
		relation.Column{Name: "dealer", Kind: condition.KindString},
		relation.Column{Name: "city", Kind: condition.KindString},
		relation.Column{Name: "brand", Kind: condition.KindString},
	)
	dr := relation.New(ds)
	for _, row := range [][3]string{
		{"D1", "Palo Alto", "BMW"},
		{"D2", "Palo Alto", "Toyota"},
		{"D3", "San Jose", "BMW"},
		{"D4", "San Jose", "Honda"},
	} {
		if err := dr.AppendValues(condition.String(row[0]), condition.String(row[1]), condition.String(row[2])); err != nil {
			t.Fatal(err)
		}
	}
	dealers, err := source.NewLocal("", dr, dg)
	if err != nil {
		t.Fatal(err)
	}

	// Source 2: cars(make, model, price) probeable by make.
	cg := ssdl.MustParse(`
source cars
attrs make, model, price
key model
s1 -> make = $m:string
s2 -> make = $m:string ^ price < $p:int
attributes :: s1 : {make, model, price}
attributes :: s2 : {make, model, price}
`)
	cs := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	cr := relation.New(cs)
	for _, row := range []struct {
		make, model string
		price       int64
	}{
		{"BMW", "328i", 35000},
		{"BMW", "M5", 70000},
		{"Toyota", "Camry", 19000},
		{"Honda", "Accord", 18000},
		{"Ford", "Focus", 15000},
	} {
		if err := cr.AppendValues(condition.String(row.make), condition.String(row.model), condition.Int(row.price)); err != nil {
			t.Fatal(err)
		}
	}
	cars, err := source.NewLocal("", cr, cg)
	if err != nil {
		t.Fatal(err)
	}

	est := cost.NewOracleEstimator(map[string]*relation.Relation{"dealers": dr, "cars": cr})
	med := New(cost.Model{K1: 5, K2: 1, Est: est})
	if err := med.Register("", wrap("dealers", dealers), dg); err != nil {
		t.Fatal(err)
	}
	if err := med.Register("", wrap("cars", cars), cg); err != nil {
		t.Fatal(err)
	}
	return med, dealers, cars
}

func TestSemijoinEndToEnd(t *testing.T) {
	med, _, cars := joinFixture(t)
	// Cars under $40k sold by Palo Alto dealers' brands.
	res, err := med.AnswerJoin(context.Background(), core.New(), JoinSpec{
		Left:      "dealers",
		Right:     "cars",
		LeftCond:  condition.MustParse(`city = "Palo Alto"`),
		RightCond: condition.MustParse(`price < 40000`),
		LeftAttr:  "brand",
		RightAttr: "make",
		Attrs:     []string{"dealer", "model", "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "semijoin" {
		t.Errorf("strategy = %s, want semijoin (selective left side)", res.Strategy)
	}
	if res.Probes != 2 { // BMW and Toyota
		t.Errorf("probes = %d, want 2", res.Probes)
	}
	// D1×328i, D2×Camry (M5 filtered by price).
	if res.Relation.Len() != 2 {
		t.Fatalf("join result = %d rows: %v", res.Relation.Len(), res.Relation.Tuples())
	}
	if acc := cars.Accounting(); acc.Rejected != 0 {
		t.Errorf("probes were rejected: %+v", acc)
	}
}

func TestJoinWholeSideWhenProbesExpensive(t *testing.T) {
	med, _, _ := joinFixture(t)
	// The right condition already pins the make, so per-binding probes
	// (make = "BMW" ^ make = v) are unsupported conjunctions; the
	// whole-side strategy must be chosen. MaxProbes additionally caps
	// the bind path.
	res, err := med.AnswerJoin(context.Background(), core.New(), JoinSpec{
		Left:        "dealers",
		Right:       "cars",
		LeftCond:    condition.MustParse(`city = "Palo Alto" _ city = "San Jose"`),
		RightCond:   condition.MustParse(`make = "BMW"`),
		LeftAttr:    "brand",
		RightAttr:   "make",
		Attrs:       []string{"dealer", "model"},
		MaxBindings: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "whole-side" {
		t.Errorf("strategy = %s, want whole-side", res.Strategy)
	}
	// BMW dealers: D1, D3 × {328i, M5} = 4 rows.
	if res.Relation.Len() != 4 {
		t.Errorf("rows = %d, want 4", res.Relation.Len())
	}
}

func TestJoinLeftTrueConditionNeedsDownloadOrFails(t *testing.T) {
	med, _, _ := joinFixture(t)
	// dealers grammar has no download rule; a true left condition is
	// unplannable.
	_, err := med.AnswerJoin(context.Background(), core.New(), JoinSpec{
		Left:      "cars",
		Right:     "dealers",
		LeftCond:  condition.True(),
		RightCond: condition.True(),
		LeftAttr:  "make",
		RightAttr: "brand",
		Attrs:     []string{"model", "dealer"},
	})
	if !errors.Is(err, planner.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestJoinAttributeResolution(t *testing.T) {
	med, _, _ := joinFixture(t)
	// Unknown attribute.
	_, err := med.AnswerJoin(context.Background(), core.New(), JoinSpec{
		Left: "dealers", Right: "cars",
		LeftCond: condition.MustParse(`city = "Palo Alto"`), RightCond: condition.True(),
		LeftAttr: "brand", RightAttr: "make",
		Attrs: []string{"ghost"},
	})
	if err == nil {
		t.Error("unknown output attribute should fail")
	}
	// Unknown source.
	_, err = med.AnswerJoin(context.Background(), core.New(), JoinSpec{Left: "nope", Right: "cars", LeftAttr: "x", RightAttr: "y",
		LeftCond: condition.True(), RightCond: condition.True()})
	if err == nil {
		t.Error("unknown source should fail")
	}
}

func TestJoinEmptyLeftSide(t *testing.T) {
	med, _, cars := joinFixture(t)
	res, err := med.AnswerJoin(context.Background(), core.New(), JoinSpec{
		Left:      "dealers",
		Right:     "cars",
		LeftCond:  condition.MustParse(`city = "Nowhere"`),
		RightCond: condition.MustParse(`price < 40000`),
		LeftAttr:  "brand",
		RightAttr: "make",
		Attrs:     []string{"dealer", "model"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 0 {
		t.Errorf("rows = %d, want 0", res.Relation.Len())
	}
	if res.Probes != 0 {
		t.Errorf("probes = %d, want 0 (no bindings)", res.Probes)
	}
	if acc := cars.Accounting(); acc.Queries != 0 {
		t.Errorf("right source should not have been queried: %+v", acc)
	}
}

func TestJoinMatchesDirectEvaluation(t *testing.T) {
	med, dealers, cars := joinFixture(t)
	res, err := med.AnswerJoin(context.Background(), core.New(), JoinSpec{
		Left:      "dealers",
		Right:     "cars",
		LeftCond:  condition.MustParse(`city = "San Jose"`),
		RightCond: condition.MustParse(`price < 40000`),
		LeftAttr:  "brand",
		RightAttr: "make",
		Attrs:     []string{"dealer", "model", "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Manual nested-loop reference join.
	want := 0
	for _, dt := range dealers.Relation().Tuples() {
		city, _ := dt.Lookup("city")
		if city.S != "San Jose" {
			continue
		}
		brand, _ := dt.Lookup("brand")
		for _, ct := range cars.Relation().Tuples() {
			mk, _ := ct.Lookup("make")
			price, _ := ct.Lookup("price")
			if mk.S == brand.S && price.I < 40000 {
				want++
			}
		}
	}
	if res.Relation.Len() != want {
		t.Errorf("join rows = %d, reference = %d", res.Relation.Len(), want)
	}
}

// When the right source's form accepts a value list, the semijoin pushes
// all bindings in ONE batched query instead of one query per binding —
// the capability-aware batching the disjunctive formulation buys for free.
func TestSemijoinBatchesIntoValueList(t *testing.T) {
	dg := ssdl.MustParse(`
source dealers
attrs dealer, city, brand
key dealer
s1 -> city = $c:string
attributes :: s1 : {dealer, city, brand}
`)
	dr := relation.New(relation.MustSchema(
		relation.Column{Name: "dealer", Kind: condition.KindString},
		relation.Column{Name: "city", Kind: condition.KindString},
		relation.Column{Name: "brand", Kind: condition.KindString},
	))
	for _, row := range [][3]string{
		{"D1", "Palo Alto", "BMW"},
		{"D2", "Palo Alto", "Toyota"},
		{"D3", "Palo Alto", "Honda"},
	} {
		if err := dr.AppendValues(condition.String(row[0]), condition.String(row[1]), condition.String(row[2])); err != nil {
			t.Fatal(err)
		}
	}
	dealers, err := source.NewLocal("", dr, dg)
	if err != nil {
		t.Fatal(err)
	}

	// The listing form accepts a LIST of makes in one submission.
	cg := ssdl.MustParse(`
source cars
attrs make, model, price
key model
mlist -> make = $m:string _ mlist | make = $m:string _ make = $m:string
s1 -> make = $m:string
s2 -> mlist
attributes :: s1 : {make, model, price}
attributes :: s2 : {make, model, price}
`)
	cr := relation.New(relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	))
	for _, row := range []struct {
		mk, model string
		price     int64
	}{
		{"BMW", "328i", 35000},
		{"Toyota", "Camry", 19000},
		{"Honda", "Accord", 18000},
		{"Ford", "Focus", 15000},
	} {
		if err := cr.AppendValues(condition.String(row.mk), condition.String(row.model), condition.Int(row.price)); err != nil {
			t.Fatal(err)
		}
	}
	cars, err := source.NewLocal("", cr, cg)
	if err != nil {
		t.Fatal(err)
	}

	est := cost.NewOracleEstimator(map[string]*relation.Relation{"dealers": dr, "cars": cr})
	med := New(cost.Model{K1: 5, K2: 1, Est: est})
	if err := med.Register("", dealers, dg); err != nil {
		t.Fatal(err)
	}
	if err := med.Register("", cars, cg); err != nil {
		t.Fatal(err)
	}

	res, err := med.AnswerJoin(context.Background(), core.New(), JoinSpec{
		Left:      "dealers",
		Right:     "cars",
		LeftCond:  condition.MustParse(`city = "Palo Alto"`),
		RightCond: condition.True(),
		LeftAttr:  "brand",
		RightAttr: "make",
		Attrs:     []string{"dealer", "model", "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "semijoin" {
		t.Fatalf("strategy = %s", res.Strategy)
	}
	// Three bindings, ONE batched form submission.
	if res.Probes != 1 {
		t.Errorf("probes = %d, want 1 (batched value list):\n%s", res.Probes, plan.Format(res.RightPlan))
	}
	if res.Relation.Len() != 3 {
		t.Errorf("rows = %d, want 3", res.Relation.Len())
	}
	if acc := cars.Accounting(); acc.Queries != 1 || acc.Rejected != 0 {
		t.Errorf("accounting = %+v, want exactly one accepted submission", acc)
	}
}
