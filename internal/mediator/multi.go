package mediator

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
)

// Multi-source answering: the paper models each Internet source as one
// relation (§3, footnote 1) and leaves multi-source composition to the
// surrounding mediator system. Two standard compositions are provided
// here: a PARTITIONED union (the logical relation is split across
// sources — airline seats per carrier, listings per region — and every
// partition must contribute) and a REPLICATED choice (several mirrors
// serve the same data with different capabilities and prices; the
// cheapest feasible one answers).

// AnswerUnion answers the target query over the union of the named
// sources, which must share the queried attributes. Each source gets its
// own capability-sensitive plan; results are unioned. Every partition
// must be feasible — a partition that cannot answer makes the whole query
// infeasible, because missing rows would silently corrupt the answer.
// PLANNING always requires every partition; with AllowPartial set,
// EXECUTION may degrade: partitions whose sources fail at runtime are
// dropped and reported via a *plan.PartialError returned alongside the
// surviving partitions' Result.
func (m *Mediator) AnswerUnion(ctx context.Context, p planner.Planner, sources []string, cond condition.Node, attrs []string) (*Result, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("mediator: no sources given")
	}
	plans := make([]plan.Plan, len(sources))
	var metrics planner.Metrics
	for i, src := range sources {
		pl, met, err := m.Plan(ctx, p, src, cond, attrs)
		if err != nil {
			return nil, fmt.Errorf("mediator: partition %s: %w", src, err)
		}
		plans[i] = pl
		if met != nil {
			metrics.CTs += met.CTs
			metrics.PlansConsidered += met.PlansConsidered
			metrics.CheckCalls += met.CheckCalls
			metrics.Duration += met.Duration
		}
	}
	var combined plan.Plan
	if len(plans) == 1 {
		combined = plans[0]
	} else {
		combined = &plan.Union{Inputs: plans}
	}
	start := time.Now()
	rel, prof, err := m.execute(ctx, combined)
	dur := metrics.Duration + time.Since(start)
	rec := QueryRecord{Strategy: p.Name(), Source: strings.Join(sources, "+"), Cond: cond.Key(), Attrs: attrs, Duration: dur, Profile: prof, TraceID: obs.TracerFrom(ctx).ID()}
	if m.rec != nil {
		rec.Fingerprint = fingerprint(p.Name(), rec.Source, cond, attrs)
	}
	if err != nil {
		rec.Err = err.Error()
	}
	if rel != nil {
		rec.Rows, rec.Partial = rel.Len(), err != nil
	}
	m.record(rec)
	if err != nil && rel == nil {
		return nil, err
	}
	return &Result{Plan: combined, Metrics: &metrics, Relation: rel, Profile: prof, Duration: dur}, err
}

// AnswerCheapest answers the target query from whichever of the named
// (replicated) sources has the cheapest feasible plan, returning the
// chosen source name. Sources that cannot answer are skipped; if none
// can, the error wraps planner.ErrInfeasible.
func (m *Mediator) AnswerCheapest(ctx context.Context, p planner.Planner, sources []string, cond condition.Node, attrs []string) (*Result, string, error) {
	if len(sources) == 0 {
		return nil, "", fmt.Errorf("mediator: no sources given")
	}
	var bestPlan plan.Plan
	var bestMetrics *planner.Metrics
	bestSource := ""
	bestCost := 0.0
	for _, src := range sources {
		pl, met, err := m.Plan(ctx, p, src, cond, attrs)
		if err != nil {
			continue
		}
		c := m.model.PlanCost(pl)
		if bestPlan == nil || c < bestCost {
			bestPlan, bestMetrics, bestSource, bestCost = pl, met, src, c
		}
	}
	if bestPlan == nil {
		return nil, "", fmt.Errorf("mediator: no replica can answer: %w", planner.ErrInfeasible)
	}
	start := time.Now()
	rel, prof, err := m.execute(ctx, bestPlan)
	dur := time.Since(start)
	rec := QueryRecord{Strategy: p.Name(), Source: bestSource, Cond: cond.Key(), Attrs: attrs, Duration: dur, Profile: prof, TraceID: obs.TracerFrom(ctx).ID()}
	if m.rec != nil {
		rec.Fingerprint = fingerprint(p.Name(), bestSource, cond, attrs)
	}
	if err != nil {
		rec.Err = err.Error()
	}
	if rel != nil {
		rec.Rows, rec.Partial = rel.Len(), err != nil
	}
	m.record(rec)
	if err != nil && rel == nil {
		return nil, "", err
	}
	return &Result{Plan: bestPlan, Metrics: bestMetrics, Relation: rel, Profile: prof, Duration: dur}, bestSource, err
}
