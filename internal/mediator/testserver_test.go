package mediator

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// testServer wraps httptest.Server to keep the main test file focused.
type testServer struct {
	srv *httptest.Server
	url string
}

func newTestServer(t *testing.T, h http.Handler) *testServer {
	t.Helper()
	s := httptest.NewServer(h)
	return &testServer{srv: s, url: s.URL}
}

func (s *testServer) close() { s.srv.Close() }
