package mediator

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// cacheCore is the bounded-LRU + singleflight machinery shared by the
// mediator's keyed caches (the exact plan cache and the plan-template
// cache). It owns the common counters — hits, misses, evictions,
// coalesced waits — and their registry mirrors; tier-specific counters
// (template fallbacks, infeasible skeletons) live in the wrappers.
type cacheCore[V any] struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // element value: *coreEntry[V]
	inflight map[string]*coreFlight[V]
	stats    coreStats

	// Registry mirrors (no-ops until setObs).
	cHits, cMisses, cEvictions, cCoalesced *obs.Counter
	cSize, cRatio                          *obs.Gauge
}

// coreStats is the counter block common to the mediator's keyed caches.
type coreStats struct {
	Hits, Misses, Evictions, CoalescedWaits int
}

type coreEntry[V any] struct {
	key string
	val V
}

// coreFlight is one in-progress computation of a key. done is closed
// after the leader has published its outcome into val/err (and, on
// success, the LRU).
type coreFlight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func newCacheCore[V any](capacity, fallbackCap int) *cacheCore[V] {
	if capacity <= 0 {
		capacity = fallbackCap
	}
	return &cacheCore[V]{
		cap:      capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*coreFlight[V]),
	}
}

// setObs mirrors the cache's counters into reg (nil = keep no-ops).
// prefix names the counter family (e.g. "csqp_plan_cache"); ratioGauge is
// the hit-ratio gauge's full name, refreshed on every lookup.
func (c *cacheCore[V]) setObs(reg *obs.Registry, prefix, ratioGauge string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cHits = reg.Counter(prefix + "_hits_total")
	c.cMisses = reg.Counter(prefix + "_misses_total")
	c.cEvictions = reg.Counter(prefix + "_evictions_total")
	c.cCoalesced = reg.Counter(prefix + "_coalesced_waits_total")
	c.cSize = reg.Gauge(prefix + "_entries")
	c.cRatio = reg.Gauge(ratioGauge)
}

func (c *cacheCore[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		c.cHits.Inc()
		c.refreshRatio()
		return el.Value.(*coreEntry[V]).val, true
	}
	c.stats.Misses++
	c.cMisses.Inc()
	c.refreshRatio()
	var zero V
	return zero, false
}

// refreshRatio publishes the lifetime hit rate. Callers hold mu.
func (c *cacheCore[V]) refreshRatio() {
	if n := c.stats.Hits + c.stats.Misses; n > 0 {
		c.cRatio.Set(float64(c.stats.Hits) / float64(n))
	}
}

// begin returns the flight for key and whether the caller is its leader.
// The leader must compute and then call finish; every other caller waits
// on flight.done and reads the leader's outcome.
func (c *cacheCore[V]) begin(key string) (*coreFlight[V], bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.inflight[key]; ok {
		c.stats.CoalescedWaits++
		c.cCoalesced.Inc()
		return f, false
	}
	f := &coreFlight[V]{done: make(chan struct{})}
	c.inflight[key] = f
	return f, true
}

// finish publishes the leader's outcome. When store is set the value
// enters the LRU before the flight is retired, so callers arriving after
// the wake-up always hit.
func (c *cacheCore[V]) finish(key string, f *coreFlight[V], v V, err error, store bool) {
	c.mu.Lock()
	f.val, f.err = v, err
	if store {
		c.insert(key, v)
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
}

// insert adds or refreshes an entry and enforces the LRU bound. Callers
// hold mu.
func (c *cacheCore[V]) insert(key string, v V) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*coreEntry[V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&coreEntry[V]{key: key, val: v})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*coreEntry[V]).key)
		c.stats.Evictions++
		c.cEvictions.Inc()
	}
	c.cSize.Set(float64(len(c.entries)))
}

// snapshot returns the current counters.
func (c *cacheCore[V]) snapshot() coreStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// len reports the number of completed entries.
func (c *cacheCore[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
