package mediator

import (
	"strings"

	"repro/internal/obs"
)

// A multi-tenant daemon hosts one mediator per tenant but should not pay
// one plan cache per tenant: a fixed fleet-wide memory budget beats N
// unbounded ones, and the LRU naturally shifts capacity toward the
// tenants actually planning queries. SharedPlanCaches is that shared
// budget — one plan cache and one template cache whose capacity every
// participating mediator draws from, with each mediator's entries
// partitioned under its own key prefix so a hit can never cross tenants
// (two tenants may register different sources under the same name, so
// cross-tenant reuse would be unsound, not just leaky).

// SharedPlanCaches is a plan + template cache pair shared by several
// mediators, each under its own partition. Safe for concurrent use.
type SharedPlanCaches struct {
	plans     *planCache
	templates *templateCache
}

// NewSharedPlanCaches builds the shared pair; capacity bounds each cache
// (0 = DefaultCacheSize). The capacity is the whole pool's, not
// per-partition: partitions compete under LRU.
func NewSharedPlanCaches(capacity int) *SharedPlanCaches {
	return &SharedPlanCaches{
		plans:     newPlanCache(capacity),
		templates: newTemplateCache(capacity),
	}
}

// SetObs mirrors both caches' counters into reg (call once, before the
// mediators start serving).
func (s *SharedPlanCaches) SetObs(reg *obs.Registry) {
	s.plans.setObs(reg)
	s.templates.setObs(reg)
}

// Stats reports the pool-wide counters (all partitions aggregated).
func (s *SharedPlanCaches) Stats() (CacheStats, TemplateStats) {
	return s.plans.snapshot(), s.templates.snapshot()
}

// partitionPrefix builds the cache-key prefix for a partition. \x01 never
// appears in buildKey's field encoding (\x00-separated), so a partition
// name can never collide with or extend into another partition's keys.
func partitionPrefix(partition string) string {
	return strings.ReplaceAll(partition, "\x01", "_") + "\x01"
}

// EnableSharedCache attaches the mediator to a shared cache pool under
// the given partition (typically the tenant name), replacing any private
// caches from EnableCache. Lookups and inserts are keyed under the
// partition, so one partition's entries are invisible to every other; the
// LRU capacity and the singleflight machinery are shared. Call before
// serving queries.
func (m *Mediator) EnableSharedCache(shared *SharedPlanCaches, partition string) {
	m.cache = shared.plans
	m.templates = shared.templates
	m.keyPrefix = partitionPrefix(partition)
}
