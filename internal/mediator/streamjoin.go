package mediator

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/condition"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/strset"
)

// Symmetric hash join: both inputs stream, and each arriving tuple is
// inserted into its side's hash table and probed against the other
// side's, so matches are produced as soon as both partners have arrived —
// no side is materialized as a relation before joining starts.
//
// The memory win comes from the insert-skip refinement: once one side
// reaches EOF, its table can receive no new probes from tuples the other
// side hasn't seen yet, so the still-streaming side stops inserting and
// only probes. AnswerJoin exploits this deliberately — the left side is
// already materialized (its distinct values feed semijoin planning), so
// it enters the join complete, the right side streams through in chunks,
// and no right-side hash table or relation is ever built.
//
// Joins fail closed: any stream error — including a *plan.PartialError
// from a degraded Union — aborts the join with no relation, matching
// AnswerJoin's contract that partial sides must not silently shrink the
// answer.

// symmetricHashJoin consumes both iterators and returns the equi-join on
// leftAttr = rightAttr with hashJoin's output schema (left columns, then
// right columns not already named), deduplicated. Both iterators are
// closed. stats, when non-nil, receives buffered-row accounting for the
// hash tables; prof, when non-nil, receives the join operator's
// per-operator counters (both are nil-safe).
func symmetricHashJoin(ctx context.Context, left, right plan.Iterator, spec JoinSpec, stats *plan.StreamStats, prof *plan.OpStats) (*relation.Relation, error) {
	prof.SetOp("HashJoin", spec.LeftAttr+"="+spec.RightAttr)
	start := time.Now()
	defer func() { prof.AddWall(time.Since(start)) }()
	defer left.Close()
	defer right.Close()

	type side struct {
		it    plan.Iterator
		attr  string
		table map[string][]relation.Tuple
		rows  int // rows held in table, for stats release
		done  bool
	}
	l := &side{it: left, attr: spec.LeftAttr, table: make(map[string][]relation.Tuple)}
	r := &side{it: right, attr: spec.RightAttr, table: make(map[string][]relation.Tuple)}
	defer func() {
		stats.Buffered(-(l.rows + r.rows))
		prof.AddBuffered(-(l.rows + r.rows))
	}()

	var out *relation.Relation
	var schema *relation.Schema
	emit := func(lt, rt relation.Tuple) error {
		if schema == nil {
			var err error
			schema, err = joinSchema(lt.Schema(), rt.Schema())
			if err != nil {
				return err
			}
			out = relation.New(schema)
		}
		vals := make([]condition.Value, 0, schema.Len())
		for _, c := range schema.Columns() {
			if v, ok := lt.Lookup(c.Name); ok {
				vals = append(vals, v)
				continue
			}
			v, _ := rt.Lookup(c.Name)
			vals = append(vals, v)
		}
		return out.AppendValues(vals...)
	}

	// step advances one side: insert (unless the other side is done) and
	// probe. Tuples that arrive after the opposite side finished cannot
	// meet future partners, so they skip insertion — the memory win.
	step := func(s, other *side, emitLR bool) error {
		chunk, err := s.it.Next(ctx)
		prof.AddIn(len(chunk))
		if err != nil {
			if errors.Is(err, io.EOF) {
				s.done = true
				return nil
			}
			return err
		}
		for _, t := range chunk {
			v, ok := t.Lookup(s.attr)
			if !ok {
				return fmt.Errorf("mediator: join attribute %q missing from %s result", s.attr, map[bool]string{true: "left", false: "right"}[emitLR])
			}
			k := valueKey(v)
			if !other.done {
				s.table[k] = append(s.table[k], t)
				s.rows++
				stats.Buffered(1)
				prof.AddBuffered(1)
			}
			for _, o := range other.table[k] {
				var eerr error
				if emitLR {
					eerr = emit(t, o)
				} else {
					eerr = emit(o, t)
				}
				if eerr != nil {
					return eerr
				}
			}
		}
		return nil
	}

	for !l.done || !r.done {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !l.done {
			if err := step(l, r, true); err != nil {
				return nil, err
			}
		}
		if !r.done {
			if err := step(r, l, false); err != nil {
				return nil, err
			}
		}
	}
	if out == nil {
		// No matches (or an empty side): reconstruct the output schema
		// from whatever schemas the streams reported.
		ls, rs := left.Schema(), right.Schema()
		if ls == nil || rs == nil {
			return nil, fmt.Errorf("mediator: join inputs yielded no schema")
		}
		var err error
		schema, err = joinSchema(ls, rs)
		if err != nil {
			return nil, err
		}
		out = relation.New(schema)
	}
	var res *relation.Relation
	if len(spec.Attrs) == 0 {
		res = out.Distinct()
	} else {
		var err error
		res, err = out.Project(spec.Attrs)
		if err != nil {
			return nil, err
		}
	}
	prof.AddOut(res.Len())
	if res.Len() > 0 {
		prof.AddChunk()
	}
	return res, nil
}

// joinSchema builds the join output schema: left columns, then right
// columns not already named (identical to hashJoin's).
func joinSchema(ls, rs *relation.Schema) (*relation.Schema, error) {
	var cols []relation.Column
	seen := strset.New()
	for _, c := range ls.Columns() {
		cols = append(cols, c)
		seen.Add(c.Name)
	}
	for _, c := range rs.Columns() {
		if !seen.Has(c.Name) {
			cols = append(cols, c)
			seen.Add(c.Name)
		}
	}
	return relation.NewSchema(cols...)
}
