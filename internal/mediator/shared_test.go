package mediator

import (
	"context"
	"testing"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

// tenantFixture builds a mediator over one local source named "db" with
// the given grammar and rows, attached to the shared cache pool under the
// tenant's partition.
func tenantFixture(t *testing.T, shared *SharedPlanCaches, tenant, grammar string, rows [][2]any) *Mediator {
	t.Helper()
	s := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	for _, row := range rows {
		if err := r.AppendValues(
			condition.String(row[0].(string)), condition.String(row[1].(string)),
			condition.Int(30000)); err != nil {
			t.Fatal(err)
		}
	}
	g := ssdl.MustParse(grammar)
	src, err := source.NewLocal("", r, g)
	if err != nil {
		t.Fatal(err)
	}
	med := New(cost.Model{K1: 5, K2: 1, Est: cost.NewOracleEstimator(map[string]*relation.Relation{"db": r})})
	if err := med.Register("", src, g); err != nil {
		t.Fatal(err)
	}
	med.EnableSharedCache(shared, tenant)
	return med
}

// Tenant A's source pushes the whole conjunction down; tenant B's source
// only evaluates make = $m, so the price conjunct must be post-filtered
// by the mediator. Same source name, same query shape — if a cached plan
// ever crossed partitions, tenant B would execute A's pushed-down source
// query and be refused.
const tenantAGrammar = `
source db
attrs make, model, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string
attributes :: s1 : {make, model, price}
attributes :: s2 : {make, model, price}
`

const tenantBGrammar = `
source db
attrs make, model, price
key model
s1 -> make = $m:string
attributes :: s1 : {make, model, price}
`

func TestSharedCachePartitionIsolation(t *testing.T) {
	for _, disableTemplates := range []bool{false, true} {
		name := "template-tier"
		if disableTemplates {
			name = "exact-tier"
		}
		t.Run(name, func(t *testing.T) {
			shared := NewSharedPlanCaches(64)
			medA := tenantFixture(t, shared, "tenant-a", tenantAGrammar,
				[][2]any{{"BMW", "328i"}, {"Toyota", "Camry"}})
			medB := tenantFixture(t, shared, "tenant-b", tenantBGrammar,
				[][2]any{{"BMW", "M5"}, {"BMW", "M3"}})
			medA.DisableTemplates = disableTemplates
			medB.DisableTemplates = disableTemplates

			cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
			ctx := context.Background()

			// Tenant A plans and executes; a repeat must hit A's partition.
			resA, err := medA.Answer(ctx, core.New(), "db", cond, []string{"model"})
			if err != nil {
				t.Fatalf("tenant A: %v", err)
			}
			if resA.Relation.Len() != 1 {
				t.Fatalf("tenant A rows = %d, want 1", resA.Relation.Len())
			}
			resA2, err := medA.Answer(ctx, core.New(), "db", cond, []string{"model"})
			if err != nil {
				t.Fatalf("tenant A repeat: %v", err)
			}
			if !resA2.Metrics.Cached {
				t.Error("tenant A repeat should be served from its cache partition")
			}

			// Tenant B's identical-shape query must NOT reuse A's plan: B's
			// grammar cannot push the price conjunct, so A's plan would be
			// refused at execution. Correct partitioning replans for B.
			resB, err := medB.Answer(ctx, core.New(), "db", cond, []string{"model"})
			if err != nil {
				t.Fatalf("tenant B (cross-partition leak?): %v", err)
			}
			if resB.Relation.Len() != 2 {
				t.Errorf("tenant B rows = %d, want 2", resB.Relation.Len())
			}
			if resB.Metrics.Cached {
				t.Error("tenant B's first query must not hit another partition's cache")
			}

			cs, ts := shared.Stats()
			if disableTemplates {
				if cs.Hits != 1 || cs.Misses != 2 {
					t.Errorf("shared plan-cache stats = %+v, want 1 hit / 2 misses", cs)
				}
			} else {
				if ts.Hits != 1 || ts.Misses != 2 {
					t.Errorf("shared template stats = %+v, want 1 hit / 2 misses", ts)
				}
			}
		})
	}
}

// TestSharedCacheCapacityIsPooled checks that the shared LRU budget is a
// pool: entries from many partitions evict each other rather than each
// partition growing unbounded.
func TestSharedCacheCapacityIsPooled(t *testing.T) {
	shared := NewSharedPlanCaches(4)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		med := tenantFixture(t, shared, string(rune('a'+i)), tenantAGrammar,
			[][2]any{{"BMW", "328i"}})
		med.DisableTemplates = true
		if _, err := med.Answer(ctx, core.New(), "db", condition.MustParse(`make = "BMW"`), []string{"model"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := shared.plans.len(); got > 4 {
		t.Errorf("shared plan cache holds %d entries, want <= 4", got)
	}
	cs, _ := shared.Stats()
	if cs.Evictions == 0 {
		t.Error("8 partitions into a 4-entry pool should evict")
	}
}
