package mediator

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/source"
)

// Joins always fail closed: a dropped left partition would silently
// shrink the semijoin's bindings (missing probes, missing answer rows),
// and a dropped right branch would shrink the probe answers — neither is
// a sound partial answer, so AnswerJoin must never surface a
// *plan.PartialError, even when the mediator is configured with
// AllowPartial for its union paths. These tests inject faults on each
// side and pin that discipline.

// paloAltoJoin is the spec TestSemijoinEndToEnd uses; fault tests reuse
// it so the expected clean answer (2 rows) is already established.
func paloAltoJoin() JoinSpec {
	return JoinSpec{
		Left:      "dealers",
		Right:     "cars",
		LeftCond:  condition.MustParse(`city = "Palo Alto"`),
		RightCond: condition.MustParse(`price < 40000`),
		LeftAttr:  "brand",
		RightAttr: "make",
		Attrs:     []string{"dealer", "model", "price"},
	}
}

func TestJoinLeftSideFaultFailsClosed(t *testing.T) {
	med, _, _ := joinFixtureWrapped(t, func(name string, q plan.Querier) plan.Querier {
		if name == "dealers" {
			return source.NewFlaky(q).FailFirst(100)
		}
		return q
	})
	med.AllowPartial = true // must not apply to joins
	res, err := med.AnswerJoin(context.Background(), core.New(), paloAltoJoin())
	if err == nil || res != nil {
		t.Fatalf("join with a dead left side must fail closed (res=%v err=%v)", res, err)
	}
	if !errors.Is(err, source.ErrInjected) {
		t.Errorf("err = %v, want the injected fault preserved in the chain", err)
	}
	var pe *plan.PartialError
	if errors.As(err, &pe) {
		t.Errorf("join failure surfaced as a partial answer: %v", err)
	}
}

func TestJoinRightProbeFaultFailsClosed(t *testing.T) {
	med, _, _ := joinFixtureWrapped(t, func(name string, q plan.Querier) plan.Querier {
		if name == "cars" {
			return source.NewFlaky(q).FailFirst(100)
		}
		return q
	})
	med.AllowPartial = true
	res, err := med.AnswerJoin(context.Background(), core.New(), paloAltoJoin())
	if err == nil || res != nil {
		t.Fatalf("join with dead right-side probes must fail closed (res=%v err=%v)", res, err)
	}
	if !errors.Is(err, source.ErrInjected) {
		t.Errorf("err = %v, want the injected fault preserved in the chain", err)
	}
	var pe *plan.PartialError
	if errors.As(err, &pe) {
		t.Errorf("join failure surfaced as a partial answer: %v", err)
	}
}

func TestJoinRecoversWithResilientRightSide(t *testing.T) {
	// Clean run for the expected answer.
	cleanMed, _, _ := joinFixture(t)
	want, err := cleanMed.AnswerJoin(context.Background(), core.New(), paloAltoJoin())
	if err != nil {
		t.Fatalf("clean join: %v", err)
	}

	noSleep := func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
	med, _, _ := joinFixtureWrapped(t, func(name string, q plan.Querier) plan.Querier {
		if name == "cars" {
			flaky := source.NewFlaky(q).FailFirst(2)
			return source.NewResilient(name, flaky, source.ResilienceOptions{
				MaxRetries: 3,
				Sleep:      noSleep,
			})
		}
		return q
	})
	res, err := med.AnswerJoin(context.Background(), core.New(), paloAltoJoin())
	if err != nil {
		t.Fatalf("join behind retries should recover from 2 transient faults: %v", err)
	}
	if !res.Relation.Equal(want.Relation) {
		t.Errorf("recovered join differs from clean join:\ngot  %v\nwant %v",
			res.Relation.Tuples(), want.Relation.Tuples())
	}
}

// TestJoinUnderFaultsConcurrently runs joins from many goroutines over a
// randomly failing right side with a parallel executor, so the race
// detector covers the mediator's join path end to end. Every outcome
// must be all-or-nothing: the exact clean answer, or a fail-closed error
// with no result and no *plan.PartialError.
func TestJoinUnderFaultsConcurrently(t *testing.T) {
	cleanMed, _, _ := joinFixture(t)
	want, err := cleanMed.AnswerJoin(context.Background(), core.New(), paloAltoJoin())
	if err != nil {
		t.Fatalf("clean join: %v", err)
	}

	med, _, _ := joinFixtureWrapped(t, func(name string, q plan.Querier) plan.Querier {
		if name == "cars" {
			return source.NewFlaky(q).FailRate(0.3, 42)
		}
		return q
	})
	med.Workers = 4
	med.AllowPartial = true

	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := med.AnswerJoin(context.Background(), core.New(), paloAltoJoin())
			switch {
			case err == nil:
				if !res.Relation.Equal(want.Relation) {
					errCh <- errors.New("successful join returned a wrong answer")
				}
			default:
				if res != nil {
					errCh <- errors.New("failed join returned a non-nil result")
				}
				var pe *plan.PartialError
				if errors.As(err, &pe) {
					errCh <- errors.New("join failure surfaced as a partial answer")
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
