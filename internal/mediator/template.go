package mediator

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/ssdl"
)

// TemplateStats reports plan-template cache activity.
type TemplateStats struct {
	// Hits and Misses count skeleton-key lookups. A hit means the query
	// was answered by binding constants into a cached template — no
	// planning, no grammar check, no plan fixing.
	Hits, Misses int
	// Fallbacks counts template hits that could not be used because a
	// binding collided with a value-constrained grammar position (or
	// failed to bind); those queries fell back to full planning through
	// the exact-key cache.
	Fallbacks int
	// Infeasible counts queries whose shape has a negative template: the
	// skeleton itself has no feasible plan (typically a grammar that only
	// admits specific literals), so the query went straight to full
	// planning. The negative entry still saves re-planning the skeleton.
	Infeasible int
	// Evictions counts templates dropped by the LRU bound.
	Evictions int
	// CoalescedWaits counts callers that waited for another caller's
	// in-flight skeleton planning of the same shape.
	CoalescedWaits int
}

// HitRate is the fraction of template lookups that found a template —
// usable or not (0 before any lookup). The registry exports the live
// value as csqp_template_hit_ratio.
func (s TemplateStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// planTemplate is one cached shape: the fixed plan of the parameterized
// skeleton, or the planning error when the skeleton is infeasible.
type planTemplate struct {
	tmpl plan.Plan // fixed skeleton plan; nil when err != nil
	err  error     // skeleton planning error (negative template)
	// sens are the sensitivity analyses consulted per binding — the
	// original grammar (execution must satisfy it) and the commutative
	// closure (planning ran against it). Empty analyses mean every
	// binding is safe and the per-binding check short-circuits.
	sens []*ssdl.Sensitivity
}

// templateCache memoizes plan templates per (planner, source, skeleton,
// attributes). The key is the skeleton's structural Key: Parameterize
// lifts constants out of the sorted canonical representative, so every
// condition of the same shape — any constants, any commutative order —
// maps to the identical skeleton. Negative results (infeasible skeletons)
// are cached too. templateMetrics tracks the tier-level outcomes that the
// shared cacheCore cannot see.
type templateCache struct {
	core *cacheCore[*planTemplate]

	fallbacks  atomic.Int64
	infeasible atomic.Int64

	cFallbacks, cInfeasible *obs.Counter
}

func newTemplateCache(capacity int) *templateCache {
	return &templateCache{core: newCacheCore[*planTemplate](capacity, DefaultCacheSize)}
}

// setObs mirrors the cache's counters into reg (nil = keep no-ops).
func (c *templateCache) setObs(reg *obs.Registry) {
	c.core.setObs(reg, "csqp_template_cache", "csqp_template_hit_ratio")
	c.cFallbacks = reg.Counter("csqp_template_fallbacks_total")
	c.cInfeasible = reg.Counter("csqp_template_infeasible_total")
}

func (c *templateCache) fallback() {
	c.fallbacks.Add(1)
	c.cFallbacks.Inc()
}

func (c *templateCache) markInfeasible() {
	c.infeasible.Add(1)
	c.cInfeasible.Inc()
}

// snapshot returns the current counters.
func (c *templateCache) snapshot() TemplateStats {
	s := c.core.snapshot()
	return TemplateStats{
		Hits:           s.Hits,
		Misses:         s.Misses,
		Fallbacks:      int(c.fallbacks.Load()),
		Infeasible:     int(c.infeasible.Load()),
		Evictions:      s.Evictions,
		CoalescedWaits: s.CoalescedWaits,
	}
}

// TemplateStats reports the plan-template cache's counters (zeros when
// caching is disabled).
func (m *Mediator) TemplateStats() TemplateStats {
	if m.templates == nil {
		return TemplateStats{}
	}
	return m.templates.snapshot()
}

// templateKey builds the template-cache key. The skeleton is already the
// deterministic representative of its shape class, so its exact Key — not
// NormKey — is the right identity (and is cached on the node).
func templateKey(plannerName, source string, skeleton condition.Node, attrs []string) string {
	return buildKey(plannerName, source, skeleton.Key(), attrs)
}

// planTemplated answers Plan through the template tier: parameterize the
// condition, plan the skeleton once per shape, then serve every later
// same-shape query by substituting its constants into the cached plan.
// The boolean result reports whether the tier produced an answer; false
// means the caller must fall back to the exact-key path (constrained
// binding, infeasible skeleton, failed bind — each already counted).
func (m *Mediator) planTemplated(ctx context.Context, p planner.Planner, source string, pz condition.Parameterized, attrs []string) (plan.Plan, *planner.Metrics, bool, error) {
	key := m.keyPrefix + templateKey(p.Name(), source, pz.Skeleton, attrs)
	if t, ok := m.templates.core.get(key); ok {
		return m.bindTemplate(t, pz, &planner.Metrics{Cached: true, Template: true})
	}
	f, leader := m.templates.core.begin(key)
	if !leader {
		<-f.done
		if f.err != nil {
			// The leader failed outside skeleton planning (bad source);
			// surface its error like the exact-tier waiters do.
			return nil, &planner.Metrics{Cached: true, Coalesced: true, Template: true}, true, f.err
		}
		return m.bindTemplate(f.val, pz, &planner.Metrics{Cached: true, Coalesced: true, Template: true})
	}
	t, metrics, err := m.buildTemplate(ctx, p, source, pz, attrs)
	m.templates.core.finish(key, f, t, err, err == nil)
	if err != nil {
		return nil, metrics, true, err
	}
	if metrics == nil {
		metrics = &planner.Metrics{}
	}
	metrics.Template = true
	return m.bindTemplate(t, pz, metrics)
}

// buildTemplate plans the skeleton and records the sensitivity analyses
// its bindings must be screened against. Skeleton infeasibility is a
// valid (negative) template; registry/config errors are real errors.
func (m *Mediator) buildTemplate(ctx context.Context, p planner.Planner, source string, pz condition.Parameterized, attrs []string) (*planTemplate, *planner.Metrics, error) {
	reg, ok := m.sources[source]
	if !ok {
		return nil, nil, fmt.Errorf("mediator: unknown source %q", source)
	}
	t := &planTemplate{}
	if s := reg.orig.Sensitivity(); s.HasConstraints() {
		t.sens = append(t.sens, s)
	}
	if s := reg.closed.Sensitivity(); s.HasConstraints() {
		t.sens = append(t.sens, s)
	}
	fixed, metrics, err := m.planOnce(ctx, p, source, pz.Skeleton, attrs)
	if err != nil {
		// No feasible plan for the shape with arbitrary constants; cache
		// the negative outcome so the shape skips skeleton planning next
		// time, and let concrete queries try the full path (a grammar
		// that enumerates literals can still support them).
		t.err = err
		return t, metrics, nil
	}
	t.tmpl = fixed
	return t, metrics, nil
}

// bindTemplate turns a cached template plus this query's bindings into an
// executable plan, or reports fallback.
func (m *Mediator) bindTemplate(t *planTemplate, pz condition.Parameterized, metrics *planner.Metrics) (plan.Plan, *planner.Metrics, bool, error) {
	if t.err != nil {
		m.templates.markInfeasible()
		return nil, nil, false, nil
	}
	for _, s := range t.sens {
		for _, site := range pz.Sites {
			if s.Constrained(site.Attr, site.Op, pz.Bindings[site.Index]) {
				// This constant is pinned by a literal/enum pattern: the
				// skeleton's capability answer does not transfer to it.
				m.templates.fallback()
				return nil, nil, false, nil
			}
		}
	}
	bound, err := plan.Bind(t.tmpl, pz.Bindings)
	if err != nil {
		// Defensive: a skeleton/binding mismatch means the template is
		// not usable for this query; full planning still is.
		m.templates.fallback()
		return nil, nil, false, nil
	}
	return bound, metrics, true, nil
}
