// Package mediator ties the system together (§3, §6.1): it keeps a
// registry of capability-described sources, generates plans with a
// pluggable strategy against the commutative-closure descriptions, fixes
// the chosen plan's source queries back to an order the original grammar
// accepts, and executes the plan, post-processing results into the
// target-query answer.
package mediator

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"repro/internal/condition"
	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/ssdl"
	"repro/internal/strset"
)

// registered bundles everything the mediator holds per source.
type registered struct {
	querier plan.Querier
	orig    *ssdl.Checker // the source's own description
	closed  *ssdl.Checker // commutative closure, used for planning
}

// Mediator answers target queries over registered sources.
type Mediator struct {
	sources   map[string]*registered
	model     cost.Model
	cache     *planCache
	templates *templateCache
	obsReg    *obs.Registry
	metrics   mediatorMetrics
	log       *slog.Logger
	// keyPrefix partitions cache keys when the plan/template caches are
	// shared across mediators (see EnableSharedCache); "" for private
	// caches. It never enters fingerprints — those identify the query's
	// shape, not its tenant.
	keyPrefix string
	// ClosureLimit caps commutative-closure expansion at registration
	// (0 = ssdl.DefaultClosureLimit).
	ClosureLimit int
	// FixBudget caps the execution-time query fixer's search
	// (0 = ssdl.DefaultFixBudget).
	FixBudget int
	// Workers bounds concurrent source queries during execution; values
	// above 1 fetch independent plan branches in parallel.
	Workers int
	// AllowPartial lets Union plans degrade when some branches fail:
	// Answer and AnswerUnion then return the surviving branches' result
	// together with a *plan.PartialError describing what was dropped.
	AllowPartial bool
	// CacheSize bounds the plan cache enabled by EnableCache
	// (0 = DefaultCacheSize). Set it before calling EnableCache.
	CacheSize int
	// DisableTemplates turns off the plan-template tier while keeping the
	// exact plan cache (EnableCache normally enables both). Useful for
	// A/B comparisons and for tests that target one tier.
	DisableTemplates bool
	// Streaming selects the execution engine: the streaming iterator
	// engine (default) or the materialized executor. See StreamingMode.
	Streaming StreamingMode
	// SlowQueryThreshold triggers the flight recorder's slow-query log
	// event (0 = DefaultSlowQueryThreshold, negative = disabled).
	SlowQueryThreshold time.Duration

	// rec is the always-on flight recorder; nil only for mediators built
	// as struct literals (tests), which simply don't record.
	rec *flightRecorder
}

// StreamingMode selects how the mediator executes fixed plans.
type StreamingMode int

const (
	// StreamingAuto (the zero value) uses the streaming engine unless the
	// CSQP_STREAMING environment variable disables it ("0", "off" or
	// "false"); "1", "on" or "true" force it on, overriding StreamingOff
	// too. The toggle exists so the full test suite can be driven through
	// either engine unchanged (the CI streaming matrix does exactly that).
	StreamingAuto StreamingMode = iota
	// StreamingOn always uses the streaming iterator engine.
	StreamingOn
	// StreamingOff always uses the materialized ExecuteParallel engine.
	StreamingOff
)

// streamingEnabled resolves the effective engine choice.
func (m *Mediator) streamingEnabled() bool {
	switch strings.ToLower(os.Getenv("CSQP_STREAMING")) {
	case "1", "on", "true":
		return true
	case "0", "off", "false":
		return false
	}
	return m.Streaming != StreamingOff
}

// mediatorMetrics holds the mediator's registry instruments, resolved
// once in SetObs. The zero value (nil instruments) is a valid no-op.
type mediatorMetrics struct {
	checkCalls     *obs.Counter
	checkMisses    *obs.Counter
	plans          *obs.Counter
	planSeconds    *obs.Histogram
	querySeconds   *obs.Histogram
	partialAnswers *obs.Counter
	rowsStreamed   *obs.Counter
	peakRows       *obs.Gauge
}

// New builds a mediator with the given cost model.
func New(model cost.Model) *Mediator {
	return &Mediator{
		sources: make(map[string]*registered),
		model:   model,
		log:     obs.NopLogger(),
		rec:     newFlightRecorder(0),
	}
}

// SetObs points the mediator's telemetry at reg: plan-cache activity,
// checker memo hit rates, planning latency and partial-answer counts are
// recorded there. Call it before EnableCache so the cache's counters are
// wired too. A nil registry (the default) keeps every instrument a no-op.
func (m *Mediator) SetObs(reg *obs.Registry) {
	m.obsReg = reg
	m.metrics = mediatorMetrics{
		checkCalls:     reg.Counter("csqp_check_calls_total"),
		checkMisses:    reg.Counter("csqp_check_memo_misses_total"),
		plans:          reg.Counter("csqp_plans_total"),
		planSeconds:    reg.Histogram("csqp_planning_seconds", nil),
		querySeconds:   reg.Histogram("csqp_query_duration_seconds", nil),
		partialAnswers: reg.Counter("csqp_partial_answers_total"),
		rowsStreamed:   reg.Counter("csqp_exec_rows_streamed"),
		peakRows:       reg.Gauge("csqp_exec_peak_rows"),
	}
	if m.cache != nil {
		m.cache.setObs(reg)
	}
	if m.templates != nil {
		m.templates.setObs(reg)
	}
}

// SetLogger installs the mediator's structured event stream (partial-
// answer degradations, swallowed errors). A nil logger silences it.
func (m *Mediator) SetLogger(l *slog.Logger) { m.log = obs.LoggerOr(l) }

// logger guards against mediators built as struct literals (tests).
func (m *Mediator) logger() *slog.Logger { return obs.LoggerOr(m.log) }

// Register adds a source: its querier and SSDL description. The
// description is rewritten to its commutative closure once, here, per
// §6.1 — not on every target query.
func (m *Mediator) Register(name string, q plan.Querier, g *ssdl.Grammar) error {
	if name == "" {
		name = g.Source
	}
	if name == "" {
		return fmt.Errorf("mediator: source has no name")
	}
	if _, dup := m.sources[name]; dup {
		return fmt.Errorf("mediator: source %q already registered", name)
	}
	m.sources[name] = &registered{
		querier: q,
		orig:    ssdl.NewChecker(g),
		closed:  ssdl.NewChecker(ssdl.CommutativeClosure(g, m.ClosureLimit)),
	}
	return nil
}

// SourceNames returns the registered source names.
func (m *Mediator) SourceNames() []string {
	s := strset.New()
	for n := range m.sources {
		s.Add(n)
	}
	return s.Sorted()
}

// Context returns the planning context for the named source (the closure
// checker plus the mediator's cost model).
func (m *Mediator) Context(source string) (*planner.Context, error) {
	reg, ok := m.sources[source]
	if !ok {
		return nil, fmt.Errorf("mediator: unknown source %q", source)
	}
	return &planner.Context{Source: source, Checker: reg.closed, Model: m.model}, nil
}

// Model returns the mediator's cost model.
func (m *Mediator) Model() cost.Model { return m.model }

// EnableCache turns on plan caching: subsequent Plan calls memoize their
// fixed plans per (strategy, source, semantic condition, attributes),
// with commutative/associative variants of a condition sharing an entry.
// The cache is a bounded LRU (capacity Mediator.CacheSize), and concurrent
// Plan calls for the same missing key coalesce onto a single planner run.
//
// It also turns on the plan-template tier: conditions with liftable
// constants are parameterized, the skeleton is planned once per shape,
// and every later same-shape query binds its constants into the cached
// template — skipping the planner, the grammar check and plan fixing
// entirely. Queries whose constants collide with value-constrained
// grammar positions (literal/enum patterns) fall back to this full
// per-condition cache.
func (m *Mediator) EnableCache() {
	m.cache = newPlanCache(m.CacheSize)
	m.cache.setObs(m.obsReg)
	m.templates = newTemplateCache(m.CacheSize)
	m.templates.setObs(m.obsReg)
}

// CacheStats reports the plan cache's counters (zeros when the cache is
// disabled).
func (m *Mediator) CacheStats() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return m.cache.snapshot()
}

// Plan generates the best feasible plan for the target query
// SP(cond, attrs, source) with the given strategy, fixed for execution
// against the original source description. With the cache enabled,
// repeated (semantically equal) queries return the memoized plan and a
// Metrics with Cached set, and N concurrent identical queries plan once:
// one caller runs the planner while the others wait for its result
// (Metrics.Coalesced on the waiters). The context carries tracing only.
func (m *Mediator) Plan(ctx context.Context, p planner.Planner, source string, cond condition.Node, attrs []string) (pl plan.Plan, met *planner.Metrics, err error) {
	ctx, sp := obs.Start(ctx, "mediator.plan")
	if sp != nil {
		sp.SetAttr("strategy", p.Name())
		sp.SetAttr("source", source)
		defer func() {
			if met != nil && met.Cached {
				sp.SetAttr("cached", "true")
			}
			sp.EndErr(err)
		}()
	}
	if m.cache == nil {
		return m.planOnce(ctx, p, source, cond, attrs)
	}
	// Template tier first: a condition with liftable constants is served
	// by binding them into the cached plan of its shape's skeleton. The
	// tier declines (ok == false) when the shape is not templatable for
	// these bindings — constrained literals, infeasible skeleton — and
	// the query continues to the exact-key tier below.
	if m.templates != nil && !m.DisableTemplates {
		if pz := condition.Parameterize(cond); len(pz.Bindings) > 0 {
			if pl, met, ok, err := m.planTemplated(ctx, p, source, pz, attrs); ok {
				return pl, met, err
			}
		}
	}
	key := m.keyPrefix + cacheKey(p.Name(), source, cond, attrs)
	if cached, ok := m.cache.get(key); ok {
		return cached, &planner.Metrics{Cached: true}, nil
	}
	f, leader := m.cache.begin(key)
	if !leader {
		<-f.done
		if f.err != nil {
			return nil, &planner.Metrics{Cached: true, Coalesced: true}, f.err
		}
		return f.val, &planner.Metrics{Cached: true, Coalesced: true}, nil
	}
	fixed, metrics, err := m.planOnce(ctx, p, source, cond, attrs)
	m.cache.finish(key, f, fixed, err)
	return fixed, metrics, err
}

// planOnce runs the planner and fixes the chosen plan, bypassing the
// cache.
func (m *Mediator) planOnce(ctx context.Context, p planner.Planner, source string, cond condition.Node, attrs []string) (plan.Plan, *planner.Metrics, error) {
	pc, err := m.Context(source)
	if err != nil {
		return nil, nil, err
	}
	pl, metrics, err := p.Plan(ctx, pc, cond, attrs)
	if metrics != nil {
		m.metrics.plans.Inc()
		m.metrics.planSeconds.Observe(metrics.Duration.Seconds())
		m.metrics.checkCalls.Add(int64(metrics.CheckCalls))
		m.metrics.checkMisses.Add(int64(metrics.CheckMisses))
	}
	if err != nil {
		return nil, metrics, err
	}
	_, fsp := obs.Start(ctx, "plan.fix")
	fixed, err := m.FixPlan(pl)
	fsp.EndErr(err)
	if err != nil {
		return nil, metrics, err
	}
	return fixed, metrics, nil
}

// Answer plans and executes the target query in one step. The context
// bounds execution: its deadline and cancellation reach every source
// query. With AllowPartial set, a degraded Union answer is returned
// together with the *plan.PartialError (use errors.As to detect it); all
// other errors come with a nil Result.
func (m *Mediator) Answer(ctx context.Context, p planner.Planner, source string, cond condition.Node, attrs []string) (*Result, error) {
	start := time.Now()
	rec := QueryRecord{Strategy: p.Name(), Source: source, Cond: cond.Key(), Attrs: attrs, TraceID: obs.TracerFrom(ctx).ID()}
	if m.rec != nil {
		rec.Fingerprint = fingerprint(p.Name(), source, cond, attrs)
	}
	ctx, sp := obs.Start(ctx, "mediator.answer")
	fixed, metrics, err := m.Plan(ctx, p, source, cond, attrs)
	if err != nil {
		sp.EndErr(err)
		rec.Duration, rec.Err = time.Since(start), err.Error()
		m.record(rec)
		return nil, err
	}
	if metrics != nil {
		rec.Cached, rec.Template = metrics.Cached, metrics.Template
	}
	rel, prof, err := m.execute(ctx, fixed)
	sp.EndErr(err)
	rec.Duration, rec.Profile = time.Since(start), prof
	if err != nil {
		rec.Err = err.Error()
	}
	if rel != nil {
		rec.Rows = rel.Len()
		rec.Partial = err != nil
	}
	m.record(rec)
	if err != nil && rel == nil {
		return nil, err
	}
	return &Result{Plan: fixed, Metrics: metrics, Relation: rel, Profile: prof, Duration: rec.Duration}, err
}

// execute runs a fixed plan under the mediator's execution settings —
// through the streaming iterator engine by default, or ExecuteParallel
// when streaming is off (see StreamingMode; both engines share the same
// answer and partial-error contract). For a partial answer it returns
// both a relation and the *plan.PartialError, records the degradation in
// the registry and emits a structured event. Every execution is profiled
// into the returned ExecProfile (annotated with the cost model's
// estimates) when the mediator has a flight recorder; the overhead is
// gated at ≤5% by benchgate, which is what buys always-on introspection.
func (m *Mediator) execute(ctx context.Context, fixed plan.Plan) (*relation.Relation, *plan.ExecProfile, error) {
	ctx, sp := obs.Start(ctx, "plan.execute")
	var prof *plan.OpStats
	if m.rec != nil {
		prof = plan.NewProfile()
	}
	var rel *relation.Relation
	var err error
	if m.streamingEnabled() {
		stats := &plan.StreamStats{}
		rel, err = plan.ExecuteStream(ctx, fixed, m, plan.StreamOptions{
			Workers:        m.Workers,
			AllowPartial:   m.AllowPartial,
			ChoiceResolver: m.resolveChoice,
			Stats:          stats,
			Profile:        prof,
		})
		m.metrics.rowsStreamed.Add(stats.RowsStreamed())
		m.metrics.peakRows.Set(float64(stats.PeakRows()))
		if sp != nil {
			sp.SetAttr("engine", "streaming")
			sp.SetInt("rows_streamed", stats.RowsStreamed())
			sp.SetInt("peak_rows", stats.PeakRows())
		}
	} else {
		rel, err = plan.ExecuteParallel(ctx, fixed, m, plan.ExecOptions{
			Workers:        m.Workers,
			AllowPartial:   m.AllowPartial,
			ChoiceResolver: m.resolveChoice,
			Profile:        prof,
		})
	}
	ep := prof.Snapshot()
	m.model.AnnotateProfile(fixed, ep)
	sp.EndErr(err)
	if err != nil {
		var pe *plan.PartialError
		if rel != nil && errors.As(err, &pe) {
			m.metrics.partialAnswers.Inc()
			m.logger().Warn("partial answer: union degraded",
				"dropped_sources", pe.DroppedSources(),
				"dropped_branches", len(pe.Dropped),
				"surviving_rows", rel.Len(),
				"err", err)
			if sp != nil {
				sp.SetAttr("partial", "true")
			}
			return rel, ep, err
		}
		return nil, ep, err
	}
	return rel, ep, nil
}

// resolveChoice is the plan.ChoiceResolver the mediator installs for
// execution: any Choice left unresolved (FixPlan normally resolves them
// all) executes its minimum-cost alternative under the mediator's model,
// matching what planning would have picked.
func (m *Mediator) resolveChoice(c *plan.Choice) (plan.Plan, error) {
	return m.model.Resolve(c)
}

// Result is a completed target query.
type Result struct {
	// Plan is the fixed plan that was executed.
	Plan plan.Plan
	// Metrics reports what the planner did.
	Metrics *planner.Metrics
	// Relation is the answer.
	Relation *relation.Relation
	// Profile is the per-operator execution profile, annotated with the
	// cost model's estimates (nil for struct-literal mediators).
	Profile *plan.ExecProfile
	// Duration covers planning plus execution.
	Duration time.Duration
}

// Lookup implements plan.Sources for execution.
func (m *Mediator) Lookup(name string) (plan.Querier, bool) {
	reg, ok := m.sources[name]
	if !ok {
		return nil, false
	}
	return reg.querier, true
}

// Checker implements plan.Checkers against the original (order-sensitive)
// descriptions, the ones execution must satisfy.
func (m *Mediator) Checker(name string) (*ssdl.Checker, bool) {
	reg, ok := m.sources[name]
	if !ok {
		return nil, false
	}
	return reg.orig, true
}

// FixPlan rewrites each source query of the plan into an ordering the
// source's original grammar accepts (§6.1). Only the one plan chosen for
// execution is fixed, so the overhead is low. It fails when some source
// query cannot be fixed within budget — which, for plans generated against
// the closure description, indicates a closure/description mismatch.
func (m *Mediator) FixPlan(p plan.Plan) (plan.Plan, error) {
	switch t := p.(type) {
	case *plan.SourceQuery:
		reg, ok := m.sources[t.Source]
		if !ok {
			return nil, fmt.Errorf("mediator: unknown source %q", t.Source)
		}
		attrs := strset.New(t.Attrs...)
		if reg.orig.Supports(t.Cond, attrs) {
			return t, nil
		}
		fixedCond, ok2 := ssdl.Fix(reg.orig, t.Cond, attrs, m.FixBudget)
		if !ok2 {
			return nil, fmt.Errorf("mediator: cannot fix source query %s for %s", t.Cond.Key(), t.Source)
		}
		return plan.NewSourceQuery(t.Source, fixedCond, t.Attrs), nil
	case *plan.Select:
		in, err := m.FixPlan(t.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Select{Cond: t.Cond, Input: in}, nil
	case *plan.Project:
		in, err := m.FixPlan(t.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Project{Attrs: t.Attrs, Input: in}, nil
	case *plan.Union:
		ins, err := m.fixAll(t.Inputs)
		if err != nil {
			return nil, err
		}
		return &plan.Union{Inputs: ins}, nil
	case *plan.Intersect:
		ins, err := m.fixAll(t.Inputs)
		if err != nil {
			return nil, err
		}
		return &plan.Intersect{Inputs: ins}, nil
	case *plan.Choice:
		// Choices should be resolved before fixing; resolve any
		// leftover one to its minimum-cost alternative under the
		// mediator's cost model (recursively, in case alternatives nest
		// further Choices) and fix the winner.
		if len(t.Alternatives) == 0 {
			return nil, fmt.Errorf("mediator: empty Choice")
		}
		resolved, err := m.model.Resolve(t)
		if err != nil {
			return nil, err
		}
		return m.FixPlan(resolved)
	default:
		return nil, fmt.Errorf("mediator: unknown plan node %T", p)
	}
}

func (m *Mediator) fixAll(ps []plan.Plan) ([]plan.Plan, error) {
	out := make([]plan.Plan, len(ps))
	for i, p := range ps {
		f, err := m.FixPlan(p)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}
