// Package rewrite implements the rewrite modules of §5.1 and §6.1: rule-
// driven enumeration of condition trees equivalent to a target-query
// condition. GenModular fires commutative, associative, distributive and
// copy rules; GenCompact fires only the distributive rule (commutativity
// is folded into the source description and associativity/copy are
// subsumed by IPG's subset exploration).
package rewrite

import (
	"repro/internal/condition"
)

// Rules selects which rewrite rules fire.
type Rules struct {
	// Commutative reorders the children of a connector node.
	Commutative bool
	// Associative regroups children: (a ^ b) ^ c ⇔ a ^ (b ^ c).
	Associative bool
	// Distributive expands a ^ (b _ c) ⇔ (a ^ b) _ (a ^ c) and factors
	// back, in both connector polarities.
	Distributive bool
	// Copy duplicates sub-conditions: C ≡ C ^ C and C ≡ C _ C, which
	// together with the other rules yields overlapping decompositions
	// like Example 5.1's ((make ^ price) ^ (make ^ color)).
	Copy bool
}

// AllRules is GenModular's rule set.
var AllRules = Rules{Commutative: true, Associative: true, Distributive: true, Copy: true}

// DistributiveOnly is GenCompact's rule set (§6.1).
var DistributiveOnly = Rules{Distributive: true}

// Config bounds the closure enumeration. Rewrite closures are worst-case
// enormous; the caps make GenModular usable on small queries while its
// blowup remains measurable (experiment E4).
type Config struct {
	Rules Rules
	// MaxCTs caps how many distinct CTs the closure returns (0 means
	// DefaultMaxCTs).
	MaxCTs int
	// MaxAtoms caps the size of any generated CT, limiting copy-rule
	// growth (0 means 2× the input size).
	MaxAtoms int
}

// DefaultMaxCTs is the closure size cap when Config.MaxCTs is zero.
const DefaultMaxCTs = 2000

// Closure returns the set of CTs reachable from root by repeatedly firing
// the configured rules, starting with root itself, deduplicated by
// structural key, in BFS order. The result always includes root and is
// capped by cfg.MaxCTs.
func Closure(root condition.Node, cfg Config) []condition.Node {
	maxCTs := cfg.MaxCTs
	if maxCTs <= 0 {
		maxCTs = DefaultMaxCTs
	}
	maxAtoms := cfg.MaxAtoms
	if maxAtoms <= 0 {
		maxAtoms = 2 * condition.Size(root)
	}
	// Nodes are immutable, so the closure can hand out (and enqueue) the
	// root itself; every neighbor is a freshly built tree whose cloned
	// subtrees carry their cached keys, keeping dedup cheap.
	seen := map[string]bool{root.Key(): true}
	queue := []condition.Node{root}
	out := []condition.Node{root}
	for qi := 0; qi < len(queue) && len(out) < maxCTs; qi++ {
		cur := queue[qi]
		for _, next := range Neighbors(cur, cfg.Rules) {
			if condition.Size(next) > maxAtoms {
				continue
			}
			k := next.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, next)
			queue = append(queue, next)
			if len(out) >= maxCTs {
				break
			}
		}
	}
	return out
}

// Neighbors returns every CT obtainable from n by one application of one
// enabled rule at one position.
func Neighbors(n condition.Node, rules Rules) []condition.Node {
	var locals []func(condition.Node) []condition.Node
	if rules.Commutative {
		locals = append(locals, commutativeLocal)
	}
	if rules.Associative {
		locals = append(locals, associativeLocal)
	}
	if rules.Distributive {
		locals = append(locals, distributiveLocal)
	}
	if rules.Copy {
		locals = append(locals, copyLocal)
	}
	var out []condition.Node
	for _, local := range locals {
		out = append(out, applyEverywhere(n, local)...)
	}
	return out
}

// applyEverywhere applies the local transform at every node position,
// returning one whole-tree variant per local result.
func applyEverywhere(n condition.Node, local func(condition.Node) []condition.Node) []condition.Node {
	var out []condition.Node
	out = append(out, local(n)...)
	switch t := n.(type) {
	case *condition.And:
		for i, k := range t.Kids {
			for _, v := range applyEverywhere(k, local) {
				kids := cloneKids(t.Kids)
				kids[i] = v
				out = append(out, &condition.And{Kids: kids})
			}
		}
	case *condition.Or:
		for i, k := range t.Kids {
			for _, v := range applyEverywhere(k, local) {
				kids := cloneKids(t.Kids)
				kids[i] = v
				out = append(out, &condition.Or{Kids: kids})
			}
		}
	}
	return out
}

func cloneKids(kids []condition.Node) []condition.Node {
	out := make([]condition.Node, len(kids))
	for i, k := range kids {
		out[i] = k.Clone()
	}
	return out
}

// commutativeLocal yields one variant per transposition of two children.
func commutativeLocal(n condition.Node) []condition.Node {
	kids, isAnd, ok := connector(n)
	if !ok {
		return nil
	}
	var out []condition.Node
	for i := 0; i < len(kids); i++ {
		for j := i + 1; j < len(kids); j++ {
			nk := cloneKids(kids)
			nk[i], nk[j] = nk[j], nk[i]
			out = append(out, build(isAnd, nk))
		}
	}
	return out
}

// associativeLocal yields flattening of one nested same-connector child
// and grouping of one contiguous child pair.
func associativeLocal(n condition.Node) []condition.Node {
	kids, isAnd, ok := connector(n)
	if !ok {
		return nil
	}
	var out []condition.Node
	// Flatten one nested same-connector child.
	for i, k := range kids {
		inner, innerAnd, isConn := connector(k)
		if !isConn || innerAnd != isAnd {
			continue
		}
		nk := make([]condition.Node, 0, len(kids)+len(inner)-1)
		nk = append(nk, cloneKids(kids[:i])...)
		nk = append(nk, cloneKids(inner)...)
		nk = append(nk, cloneKids(kids[i+1:])...)
		out = append(out, build(isAnd, nk))
	}
	// Group one contiguous pair.
	if len(kids) >= 3 {
		for i := 0; i+1 < len(kids); i++ {
			nk := make([]condition.Node, 0, len(kids)-1)
			nk = append(nk, cloneKids(kids[:i])...)
			nk = append(nk, build(isAnd, cloneKids(kids[i:i+2])))
			nk = append(nk, cloneKids(kids[i+2:])...)
			out = append(out, build(isAnd, nk))
		}
	}
	return out
}

// distributiveLocal yields expansions of one opposite-connector child and
// factorings of one shared sub-condition.
func distributiveLocal(n condition.Node) []condition.Node {
	kids, isAnd, ok := connector(n)
	if !ok {
		return nil
	}
	var out []condition.Node
	// Expansion: distribute the other children over one opposite-
	// connector child. a ^ (b _ c) -> (a ^ b) _ (a ^ c), and dually.
	for i, k := range kids {
		inner, innerAnd, isConn := connector(k)
		if !isConn || innerAnd == isAnd {
			continue
		}
		rest := make([]condition.Node, 0, len(kids)-1)
		rest = append(rest, kids[:i]...)
		rest = append(rest, kids[i+1:]...)
		terms := make([]condition.Node, len(inner))
		for j, ij := range inner {
			tk := append(cloneKids(rest), ij.Clone())
			terms[j] = build(isAnd, tk)
		}
		out = append(out, build(!isAnd, terms))
	}
	// Factoring: two opposite-connector children sharing a sub-condition.
	// (a ^ b) _ (a ^ c) -> a ^ (b _ c), and dually.
	for i := 0; i < len(kids); i++ {
		for j := i + 1; j < len(kids); j++ {
			fi, fiAnd, oki := connector(kids[i])
			fj, fjAnd, okj := connector(kids[j])
			if !oki || !okj || fiAnd == isAnd || fjAnd == isAnd || fiAnd != fjAnd {
				continue
			}
			for ci, c := range fi {
				for cj, d := range fj {
					if c.Key() != d.Key() {
						continue
					}
					restI := dropAt(fi, ci)
					restJ := dropAt(fj, cj)
					factored := build(fiAnd, []condition.Node{
						c.Clone(),
						build(isAnd, []condition.Node{collapse(fiAnd, restI), collapse(fjAnd, restJ)}),
					})
					nk := make([]condition.Node, 0, len(kids)-1)
					nk = append(nk, cloneKids(kids[:i])...)
					nk = append(nk, factored)
					nk = append(nk, cloneKids(kids[i+1:j])...)
					nk = append(nk, cloneKids(kids[j+1:])...)
					out = append(out, collapse(isAnd, nk))
				}
			}
		}
	}
	return out
}

// copyLocal yields C ^ C and C _ C for the node, plus duplication of one
// child within a connector.
func copyLocal(n condition.Node) []condition.Node {
	out := []condition.Node{
		&condition.And{Kids: []condition.Node{n.Clone(), n.Clone()}},
		&condition.Or{Kids: []condition.Node{n.Clone(), n.Clone()}},
	}
	if kids, isAnd, ok := connector(n); ok {
		for i := range kids {
			nk := append(cloneKids(kids), kids[i].Clone())
			out = append(out, build(isAnd, nk))
		}
	}
	return out
}

func connector(n condition.Node) (kids []condition.Node, isAnd, ok bool) {
	switch t := n.(type) {
	case *condition.And:
		return t.Kids, true, true
	case *condition.Or:
		return t.Kids, false, true
	default:
		return nil, false, false
	}
}

func build(isAnd bool, kids []condition.Node) condition.Node {
	if len(kids) == 1 {
		return kids[0]
	}
	if isAnd {
		return &condition.And{Kids: kids}
	}
	return &condition.Or{Kids: kids}
}

// collapse builds a connector but collapses a single child, cloning kids.
func collapse(isAnd bool, kids []condition.Node) condition.Node {
	if len(kids) == 1 {
		return kids[0].Clone()
	}
	return build(isAnd, cloneKids(kids))
}

func dropAt(kids []condition.Node, i int) []condition.Node {
	out := make([]condition.Node, 0, len(kids)-1)
	out = append(out, kids[:i]...)
	out = append(out, kids[i+1:]...)
	return out
}
