package rewrite

import (
	"math/rand"
	"testing"

	"repro/internal/condition"
)

func keys(ns []condition.Node) map[string]bool {
	m := make(map[string]bool, len(ns))
	for _, n := range ns {
		m[n.Key()] = true
	}
	return m
}

func TestCommutativeNeighbors(t *testing.T) {
	n := condition.MustParse(`a = 1 ^ b = 2`)
	got := keys(Neighbors(n, Rules{Commutative: true}))
	if !got[condition.MustParse(`b = 2 ^ a = 1`).Key()] {
		t.Errorf("missing swapped variant, got %v", got)
	}
}

func TestAssociativeNeighbors(t *testing.T) {
	flat := condition.MustParse(`a = 1 ^ b = 2 ^ c = 3`)
	got := keys(Neighbors(flat, Rules{Associative: true}))
	if !got[condition.MustParse(`(a = 1 ^ b = 2) ^ c = 3`).Key()] {
		t.Errorf("missing left grouping, got %v", got)
	}
	if !got[condition.MustParse(`a = 1 ^ (b = 2 ^ c = 3)`).Key()] {
		t.Errorf("missing right grouping, got %v", got)
	}
	// Flattening is the inverse.
	nested := condition.MustParse(`(a = 1 ^ b = 2) ^ c = 3`)
	got2 := keys(Neighbors(nested, Rules{Associative: true}))
	if !got2[flat.Key()] {
		t.Errorf("missing flattened variant, got %v", got2)
	}
}

func TestDistributiveExpansion(t *testing.T) {
	n := condition.MustParse(`a = 1 ^ (b = 2 _ c = 3)`)
	got := keys(Neighbors(n, DistributiveOnly))
	want := condition.MustParse(`(a = 1 ^ b = 2) _ (a = 1 ^ c = 3)`)
	if !got[want.Key()] {
		t.Errorf("missing expansion %s, got %v", want.Key(), got)
	}
}

func TestDistributiveFactoring(t *testing.T) {
	n := condition.MustParse(`(a = 1 ^ b = 2) _ (a = 1 ^ c = 3)`)
	got := keys(Neighbors(n, DistributiveOnly))
	want := condition.MustParse(`a = 1 ^ (b = 2 _ c = 3)`)
	if !got[want.Key()] {
		t.Errorf("missing factoring %s, got %v", want.Key(), got)
	}
}

func TestDistributiveDualPolarity(t *testing.T) {
	n := condition.MustParse(`a = 1 _ (b = 2 ^ c = 3)`)
	got := keys(Neighbors(n, DistributiveOnly))
	want := condition.MustParse(`(a = 1 _ b = 2) ^ (a = 1 _ c = 3)`)
	if !got[want.Key()] {
		t.Errorf("missing dual expansion, got %v", got)
	}
}

func TestCopyNeighbors(t *testing.T) {
	n := condition.MustParse(`a = 1`)
	got := keys(Neighbors(n, Rules{Copy: true}))
	if !got[condition.MustParse(`a = 1 ^ a = 1`).Key()] || !got[condition.MustParse(`a = 1 _ a = 1`).Key()] {
		t.Errorf("missing copy variants, got %v", got)
	}
}

// The paper's Example 5.1 derivation: from (make ^ price ^ color), the
// rewrite module reaches ((make ^ price) ^ (make ^ color)).
func TestExample51Derivable(t *testing.T) {
	src := condition.MustParse(`make = "BMW" ^ price < 40000 ^ color = "red"`)
	target := condition.MustParse(`(make = "BMW" ^ price < 40000) ^ (make = "BMW" ^ color = "red")`)
	// The exhaustive closure needs a deep frontier to reach the 4-step
	// derivation (copy, commute, group, group) — itself evidence of why
	// GenModular is impractical (§6).
	cts := Closure(src, Config{Rules: AllRules, MaxCTs: 20000, MaxAtoms: 6})
	if !keys(cts)[target.Key()] {
		t.Errorf("Example 5.1 CT not reachable within %d CTs", len(cts))
	}
}

func TestClosureIncludesRootAndDedups(t *testing.T) {
	n := condition.MustParse(`a = 1 ^ b = 2`)
	cts := Closure(n, Config{Rules: AllRules, MaxCTs: 50})
	if cts[0].Key() != n.Key() {
		t.Error("closure must start with the root")
	}
	seen := map[string]bool{}
	for _, ct := range cts {
		if seen[ct.Key()] {
			t.Fatalf("duplicate CT %s", ct.Key())
		}
		seen[ct.Key()] = true
	}
}

func TestClosureCapRespected(t *testing.T) {
	n := condition.MustParse(`a = 1 ^ b = 2 ^ c = 3 ^ d = 4`)
	cts := Closure(n, Config{Rules: AllRules, MaxCTs: 25})
	if len(cts) > 25 {
		t.Errorf("closure size %d exceeds cap", len(cts))
	}
}

func TestClosureGrowsWithRules(t *testing.T) {
	n := condition.MustParse(`a = 1 ^ (b = 2 _ c = 3)`)
	distOnly := Closure(n, Config{Rules: DistributiveOnly, MaxCTs: 1000})
	all := Closure(n, Config{Rules: AllRules, MaxCTs: 1000})
	if len(all) <= len(distOnly) {
		t.Errorf("all-rules closure (%d) should exceed distributive-only (%d)", len(all), len(distOnly))
	}
}

// Property: every CT in the closure is semantically equivalent to the
// root.
func TestClosurePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	exprs := []string{
		`a = 1 ^ (b = 2 _ c = 3)`,
		`(a = 1 ^ b = 2) _ (a = 1 ^ c = 3)`,
		`a = 1 _ b = 2 _ (c = 3 ^ d = 4)`,
		`(a = 1 _ b = 2) ^ (c = 3 _ d = 4)`,
	}
	for _, src := range exprs {
		root := condition.MustParse(src)
		cts := Closure(root, Config{Rules: AllRules, MaxCTs: 150, MaxAtoms: 10})
		for trial := 0; trial < 30; trial++ {
			b := condition.MapBinder{}
			for _, a := range []string{"a", "b", "c", "d"} {
				b[a] = condition.Int(int64(r.Intn(4)))
			}
			want, err := root.Eval(b)
			if err != nil {
				t.Fatal(err)
			}
			for _, ct := range cts {
				got, err := ct.Eval(b)
				if err != nil {
					t.Fatalf("%s: %v", ct.Key(), err)
				}
				if got != want {
					t.Fatalf("closure member changed semantics:\nroot: %s\nct:   %s\nbind: %v", root.Key(), ct.Key(), b)
				}
			}
		}
	}
}

// Property: neighbors never mutate their input.
func TestNeighborsDoNotMutate(t *testing.T) {
	n := condition.MustParse(`a = 1 ^ (b = 2 _ c = 3) ^ d = 4`)
	before := n.Key()
	Neighbors(n, AllRules)
	if n.Key() != before {
		t.Error("Neighbors mutated input")
	}
}

func TestLeafHasNoStructuralNeighbors(t *testing.T) {
	n := condition.MustParse(`a = 1`)
	if got := Neighbors(n, Rules{Commutative: true, Associative: true, Distributive: true}); len(got) != 0 {
		t.Errorf("leaf should have no non-copy neighbors, got %d", len(got))
	}
}
