package plan

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/relation"
)

// streamSource is a StreamQuerier fake: it computes the full answer like
// testSource, then dribbles it out in chunks, optionally dying with err
// after failAfter rows — the mid-stream fault the materialized engine can
// never produce.
type streamSource struct {
	rel       *relation.Relation
	chunk     int
	failAfter int // -1: never fail
	err       error
}

func (s *streamSource) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	inner := &testSource{rel: s.rel}
	return inner.Query(ctx, cond, attrs)
}

func (s *streamSource) QueryStream(ctx context.Context, cond condition.Node, attrs []string) (Iterator, error) {
	res, err := s.Query(ctx, cond, attrs)
	if err != nil {
		return nil, err
	}
	chunk := s.chunk
	if chunk <= 0 {
		chunk = 1
	}
	return &fakeStreamIter{rel: res, chunk: chunk, failAfter: s.failAfter, err: s.err}, nil
}

type fakeStreamIter struct {
	rel       *relation.Relation
	chunk     int
	pos       int
	failAfter int
	err       error
}

func (it *fakeStreamIter) Schema() *relation.Schema { return it.rel.Schema() }

func (it *fakeStreamIter) Next(ctx context.Context) ([]relation.Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if it.failAfter >= 0 && it.pos >= it.failAfter {
		return nil, it.err
	}
	ts := it.rel.Tuples()
	if it.pos >= len(ts) {
		return nil, io.EOF
	}
	end := it.pos + it.chunk
	if end > len(ts) {
		end = len(ts)
	}
	if it.failAfter >= 0 && end > it.failAfter {
		end = it.failAfter
	}
	out := ts[it.pos:end]
	it.pos = end
	return out, nil
}

func (it *fakeStreamIter) Close() error { return nil }

// streamEqualsExecute asserts both engines produce the same relation.
func streamEqualsExecute(t *testing.T, p Plan, srcs Sources, opts StreamOptions) {
	t.Helper()
	want, werr := Execute(context.Background(), p, srcs)
	got, gerr := ExecuteStream(context.Background(), p, srcs, opts)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("error divergence: execute=%v stream=%v", werr, gerr)
	}
	if werr != nil {
		return
	}
	if !got.Equal(want) {
		t.Fatalf("answer divergence:\n  execute: %v\n  stream:  %v", want.Tuples(), got.Tuples())
	}
}

func TestStreamMatchesExecute(t *testing.T) {
	srcs := testSources(t)
	n1 := condition.MustParse(`make = "BMW" ^ price < 40000`)
	n2 := condition.MustParse(`color = "red" _ color = "black"`)
	plans := map[string]Plan{
		"source": NewSourceQuery("R", n1, []string{"model"}),
		"sp":     NewSP(n2, []string{"model"}, NewSourceQuery("R", n1, []string{"model", "color"})),
		"union": &Union{Inputs: []Plan{
			NewSourceQuery("R", n1, []string{"model"}),
			NewSourceQuery("R", condition.MustParse(`make = "Toyota" ^ price < 20000`), []string{"model"}),
		}},
		"intersect": &Intersect{Inputs: []Plan{
			NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model"}),
			NewSourceQuery("R", condition.MustParse(`price < 40000`), []string{"model"}),
		}},
		"choice": &Choice{Alternatives: []Plan{
			NewSourceQuery("R", n1, []string{"model"}),
			NewSourceQuery("R", condition.True(), []string{"model"}),
		}},
	}
	for name, p := range plans {
		for _, workers := range []int{1, 4} {
			for _, chunk := range []int{1, 3, 0} {
				streamEqualsExecute(t, p, srcs, StreamOptions{Workers: workers, ChunkSize: chunk})
			}
		}
		_ = name
	}
}

func TestStreamMatchesExecuteWithStreamingSource(t *testing.T) {
	rel := carsRelation(t)
	srcs := SourceMap{"R": &streamSource{rel: rel, chunk: 2, failAfter: -1}}
	p := &Union{Inputs: []Plan{
		NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model", "color"}),
		NewSourceQuery("R", condition.MustParse(`color = "red"`), []string{"model", "color"}),
	}}
	streamEqualsExecute(t, p, srcs, StreamOptions{Workers: 4, ChunkSize: 1})
}

func TestStreamUnionPartialMidStream(t *testing.T) {
	rel := carsRelation(t)
	srcs := SourceMap{
		"A": &testSource{rel: rel},
		"B": &streamSource{rel: rel, chunk: 1, failAfter: 2, err: errDown},
	}
	p := &Union{Inputs: []Plan{
		NewSourceQuery("A", condition.MustParse(`make = "BMW"`), []string{"model"}),
		NewSourceQuery("B", condition.MustParse(`make = "Toyota"`), []string{"model"}),
	}}
	// Sequential so the round-robin deterministically pulls B's two rows
	// before the fault surfaces.
	res, err := ExecuteStream(context.Background(), p, srcs, StreamOptions{Workers: 1, AllowPartial: true, ChunkSize: 1})
	if res == nil {
		t.Fatalf("partial union returned no relation (err = %v)", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if got := pe.DroppedSources(); len(got) != 1 || got[0] != "B" {
		t.Fatalf("dropped = %v, want [B]", got)
	}
	if !errors.Is(err, errDown) {
		t.Fatalf("err chain lost root cause: %v", err)
	}
	// The three BMW models from A, plus the rows B managed to emit before
	// dying: they are true answer tuples and must be retained.
	if res.Len() != 5 {
		t.Fatalf("len = %d, want 5 (3 from A + 2 emitted by B): %v", res.Len(), res.Tuples())
	}
}

func TestStreamUnionMidStreamFailClosed(t *testing.T) {
	rel := carsRelation(t)
	srcs := SourceMap{
		"A": &testSource{rel: rel},
		"B": &streamSource{rel: rel, chunk: 1, failAfter: 1, err: errDown},
	}
	p := &Union{Inputs: []Plan{
		NewSourceQuery("A", condition.True(), []string{"model"}),
		NewSourceQuery("B", condition.True(), []string{"model"}),
	}}
	res, err := ExecuteStream(context.Background(), p, srcs, StreamOptions{Workers: 4, ChunkSize: 1})
	if res != nil {
		t.Fatalf("fail-closed union returned a relation: %v", res.Tuples())
	}
	if !errors.Is(err, errDown) {
		t.Fatalf("err = %v, want chain to %v", err, errDown)
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		t.Fatalf("fail-closed union leaked *PartialError: %v", err)
	}
}

func TestStreamAllUnionBranchesFailed(t *testing.T) {
	srcs := SourceMap{"B": &errSource{err: errDown}}
	p := &Union{Inputs: []Plan{
		NewSourceQuery("B", condition.True(), []string{"model"}),
		NewSourceQuery("B", condition.MustParse(`make = "BMW"`), []string{"model"}),
	}}
	res, err := ExecuteStream(context.Background(), p, srcs, StreamOptions{Workers: 2, AllowPartial: true})
	if res != nil || err == nil {
		t.Fatalf("want hard error, got res=%v err=%v", res, err)
	}
	if !errors.Is(err, errDown) {
		t.Fatalf("err chain lost root cause: %v", err)
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		t.Fatalf("all-branches-failed leaked *PartialError: %v", err)
	}
}

func TestStreamIntersectFailsClosedMidStream(t *testing.T) {
	rel := carsRelation(t)
	for name, srcs := range map[string]SourceMap{
		// Probe side dies mid-stream after emitting matches.
		"probe": {
			"A": &streamSource{rel: rel, chunk: 1, failAfter: 2, err: errDown},
			"B": &testSource{rel: rel},
		},
		// Build side dies mid-stream.
		"build": {
			"A": &testSource{rel: rel},
			"B": &streamSource{rel: rel, chunk: 1, failAfter: 2, err: errDown},
		},
	} {
		p := &Intersect{Inputs: []Plan{
			NewSourceQuery("A", condition.True(), []string{"model"}),
			NewSourceQuery("B", condition.True(), []string{"model"}),
		}}
		res, err := ExecuteStream(context.Background(), p, srcs, StreamOptions{Workers: 1, AllowPartial: true, ChunkSize: 1})
		if res != nil {
			t.Fatalf("%s: fail-closed intersect returned a relation: %v", name, res.Tuples())
		}
		if !errors.Is(err, errDown) {
			t.Fatalf("%s: err = %v, want chain to %v", name, err, errDown)
		}
		var pe *PartialError
		if errors.As(err, &pe) {
			t.Fatalf("%s: intersect leaked *PartialError: %v", name, err)
		}
	}
}

func TestStreamIntersectRejectsPartialBranch(t *testing.T) {
	srcs, branches := threeSourceFixture(t)
	inner := &Union{Inputs: branches} // degrades to partial under AllowPartial
	p := &Intersect{Inputs: []Plan{
		NewSourceQuery("A", condition.MustParse(`make = "BMW"`), []string{"model"}),
		inner,
	}}
	res, err := ExecuteStream(context.Background(), p, srcs, StreamOptions{Workers: 4, AllowPartial: true})
	if res != nil {
		t.Fatalf("intersect over partial branch returned a relation: %v", res.Tuples())
	}
	if !errors.Is(err, errDown) {
		t.Fatalf("err = %v, want chain to %v", err, errDown)
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		t.Fatalf("intersect leaked *PartialError: %v", err)
	}
}

func TestStreamIntersectEarlyOut(t *testing.T) {
	rel := carsRelation(t)
	probe := &countingSource{inner: &testSource{rel: rel}}
	srcs := SourceMap{
		"P": probe,
		"E": &testSource{rel: rel},
	}
	p := &Intersect{Inputs: []Plan{
		NewSourceQuery("P", condition.True(), []string{"model"}),
		NewSourceQuery("E", condition.MustParse(`make = "Ferrari"`), []string{"model"}),
	}}
	res, err := ExecuteStream(context.Background(), p, srcs, StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("len = %d, want 0", res.Len())
	}
	if n := probe.peak.Load(); n != 0 {
		t.Fatalf("probe source was queried %d times; early-out should skip it", n)
	}
}

// TestStreamIntersectCancelsSiblings: a failing build side must cancel a
// blocking sibling instead of hanging the node.
func TestStreamIntersectCancelsSiblings(t *testing.T) {
	srcs := SourceMap{
		"A": &blockSource{},
		"B": &errSource{err: errDown},
	}
	p := &Intersect{Inputs: []Plan{
		NewSourceQuery("A", condition.True(), []string{"model"}),
		NewSourceQuery("A", condition.True(), []string{"model"}),
		NewSourceQuery("B", condition.True(), []string{"model"}),
	}}
	done := make(chan error, 1)
	go func() {
		_, err := ExecuteStream(context.Background(), p, srcs, StreamOptions{Workers: 4})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, errDown) {
			t.Fatalf("err = %v, want chain to %v", err, errDown)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("intersect hung: failing branch did not cancel blocking siblings")
	}
}

func TestStreamNestedPartialMerges(t *testing.T) {
	rel := carsRelation(t)
	srcs := SourceMap{
		"A": &testSource{rel: rel},
		"B": &errSource{err: errDown},
		"C": &streamSource{rel: rel, chunk: 1, failAfter: 0, err: errDown},
	}
	inner1 := &Union{Inputs: []Plan{
		NewSourceQuery("A", condition.MustParse(`make = "BMW"`), []string{"model"}),
		NewSourceQuery("B", condition.True(), []string{"model"}),
	}}
	inner2 := &Union{Inputs: []Plan{
		NewSourceQuery("A", condition.MustParse(`make = "Toyota"`), []string{"model"}),
		NewSourceQuery("C", condition.True(), []string{"model"}),
	}}
	p := &Union{Inputs: []Plan{inner1, inner2}}
	res, err := ExecuteStream(context.Background(), p, srcs, StreamOptions{Workers: 1, AllowPartial: true})
	if res == nil {
		t.Fatalf("nested partial union returned no relation (err = %v)", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	got := pe.DroppedSources()
	if len(got) != 2 || got[0] != "B" || got[1] != "C" {
		t.Fatalf("dropped = %v, want [B C]", got)
	}
	if res.Len() != 5 {
		t.Fatalf("len = %d, want 5: %v", res.Len(), res.Tuples())
	}
}

func TestStreamStatsAccounting(t *testing.T) {
	srcs := testSources(t)
	p := &Union{Inputs: []Plan{
		NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model"}),
		NewSourceQuery("R", condition.MustParse(`make = "Toyota"`), []string{"model"}),
	}}
	stats := &StreamStats{}
	res, err := ExecuteStream(context.Background(), p, srcs, StreamOptions{Workers: 1, ChunkSize: 2, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("len = %d, want 5", res.Len())
	}
	if stats.RowsStreamed() < int64(res.Len()) {
		t.Fatalf("rows streamed %d < answer size %d", stats.RowsStreamed(), res.Len())
	}
	if stats.PeakRows() <= 0 {
		t.Fatalf("peak rows = %d, want > 0", stats.PeakRows())
	}
}

func TestStreamCloseHalfway(t *testing.T) {
	rel := carsRelation(t)
	srcs := SourceMap{"R": &streamSource{rel: rel, chunk: 1, failAfter: -1}}
	p := &Union{Inputs: []Plan{
		NewSourceQuery("R", condition.True(), []string{"model"}),
		NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model"}),
	}}
	it, err := NewStream(p, srcs, StreamOptions{Workers: 4, ChunkSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		it.Close()
		it.Close() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a half-consumed stream")
	}
}

func TestCollectPartialKeepsRelation(t *testing.T) {
	// Collect must return both the sound rows and the *PartialError.
	srcs, branches := threeSourceFixture(t)
	it, err := NewStream(&Union{Inputs: branches}, srcs, StreamOptions{Workers: 2, AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	res, cerr := Collect(context.Background(), it)
	if res == nil {
		t.Fatalf("Collect dropped the partial relation (err = %v)", cerr)
	}
	var pe *PartialError
	if !errors.As(cerr, &pe) {
		t.Fatalf("err = %v, want *PartialError", cerr)
	}
	if res.Len() != 5 {
		t.Fatalf("len = %d, want 5", res.Len())
	}
}
