package plan

import (
	"context"
	"testing"

	"repro/internal/condition"
)

// choiceFixture builds a Choice whose two alternatives select different
// makes, so the executed alternative is observable in the answer.
func choiceFixture(t *testing.T) (*Choice, SourceMap) {
	t.Helper()
	rel := carsRelation(t)
	alt := func(mk string) Plan {
		return NewSourceQuery("R",
			condition.NewAtomic("make", condition.OpEq, condition.String(mk)),
			[]string{"model"})
	}
	c := &Choice{Alternatives: []Plan{alt("BMW"), alt("Toyota")}}
	return c, SourceMap{"R": &testSource{rel: rel}}
}

func TestResolveChoiceFallbackIsFirstAlternative(t *testing.T) {
	c, srcs := choiceFixture(t)
	res, err := Execute(context.Background(), c, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("rows = %d, want 3 (the BMW alternative)", res.Len())
	}
}

func TestExecuteParallelUsesChoiceResolver(t *testing.T) {
	c, srcs := choiceFixture(t)
	// A resolver that always prefers the LAST alternative — clearly
	// distinguishable from the first-alternative fallback.
	pickLast := func(c *Choice) (Plan, error) { return c.Alternatives[len(c.Alternatives)-1], nil }
	for _, workers := range []int{1, 4} {
		res, err := ExecuteParallel(context.Background(), c, srcs, ExecOptions{Workers: workers, ChoiceResolver: pickLast})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Len() != 2 {
			t.Errorf("workers=%d: rows = %d, want 2 (the Toyota alternative)", workers, res.Len())
		}
	}
	// Without a resolver both executors agree on the documented fallback.
	res, err := ExecuteParallel(context.Background(), c, srcs, ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("rows = %d, want 3 (first-alternative fallback)", res.Len())
	}
}

func TestChoiceOutAttrsUsesSharedResolution(t *testing.T) {
	c, _ := choiceFixture(t)
	if got := c.OutAttrs().Sorted(); len(got) != 1 || got[0] != "model" {
		t.Errorf("OutAttrs = %v, want [model]", got)
	}
	if got := (&Choice{}).OutAttrs(); got.Len() != 0 {
		t.Errorf("empty Choice OutAttrs = %v, want empty", got)
	}
}

func TestResolveChoiceEmptyIsError(t *testing.T) {
	if _, err := ResolveChoice(&Choice{}, nil); err == nil {
		t.Error("want error for empty Choice")
	}
	if _, err := Execute(context.Background(), &Choice{}, SourceMap{}); err == nil {
		t.Error("Execute: want error for empty Choice")
	}
	if _, err := ExecuteParallel(context.Background(), &Choice{}, SourceMap{}, ExecOptions{Workers: 4}); err == nil {
		t.Error("ExecuteParallel: want error for empty Choice")
	}
}
