package plan

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/relation"
)

func TestOpStatsNilSafe(t *testing.T) {
	var o *OpStats
	// Every method must be a no-op on nil so executors thread a possibly
	// nil pointer through unconditionally.
	o.claim("X", "")
	o.SetOp("X", "")
	o.AddIn(3)
	o.AddOut(3)
	o.AddChunk()
	o.AddWall(time.Second)
	o.AddBuffered(5)
	o.AddRoundTrips(1)
	o.Note("hi")
	o.endNext(time.Now(), nil)
	if o.Child() != nil {
		t.Error("nil.Child() should be nil")
	}
	if o.Snapshot() != nil {
		t.Error("nil.Snapshot() should be nil")
	}
	if WithOpStats(context.Background(), nil) != context.Background() {
		t.Error("WithOpStats(ctx, nil) should return ctx unchanged")
	}
}

// TestOpStatsDisabledPathAllocs pins the contract the benchgate overhead
// gate depends on: with profiling disabled (nil OpStats) the per-chunk
// hot path allocates nothing.
func TestOpStatsDisabledPathAllocs(t *testing.T) {
	var o *OpStats
	ctx := context.Background()
	chunk := make([]relation.Tuple, 4)
	allocs := testing.AllocsPerRun(100, func() {
		o.AddIn(len(chunk))
		o.AddOut(len(chunk))
		o.AddChunk()
		o.AddBuffered(len(chunk))
		o.endNext(time.Time{}, chunk)
		_ = WithOpStats(ctx, o)
		_ = OpStatsFrom(ctx)
	})
	if allocs != 0 {
		t.Errorf("disabled-path allocs = %v, want 0", allocs)
	}
}

func TestOpStatsClaimFirstWins(t *testing.T) {
	o := NewProfile()
	o.claim("Union", "")
	o.claim("Select", "x=1") // a later claim must not overwrite
	p := o.Snapshot()
	if p.Op != "Union" || p.Label != "" {
		t.Errorf("snapshot op = %s[%s], want Union", p.Op, p.Label)
	}
}

func TestOpStatsCountersAndPeak(t *testing.T) {
	o := NewProfile()
	o.claim("SourceQuery", "cars")
	o.AddIn(10)
	o.AddOut(7)
	o.AddChunk()
	o.AddWall(3 * time.Millisecond)
	o.AddRoundTrips(2)
	o.AddBuffered(5)
	o.AddBuffered(3) // peak 8
	o.AddBuffered(-6)
	o.AddBuffered(2) // back to 4, peak stays 8
	o.Note("bridged")
	o.Note("bridged") // dedup
	k := o.Child()
	k.claim("Select", "price<10")
	k.AddOut(4)

	p := o.Snapshot()
	if p.RowsIn != 10 || p.RowsOut != 7 || p.Chunks != 1 {
		t.Errorf("counters = in %d out %d chunks %d", p.RowsIn, p.RowsOut, p.Chunks)
	}
	if p.PeakRows != 8 {
		t.Errorf("peak = %d, want 8", p.PeakRows)
	}
	if p.Wall() != 3*time.Millisecond {
		t.Errorf("wall = %s", p.Wall())
	}
	if p.RoundTrips != 2 || p.TotalRoundTrips() != 2 {
		t.Errorf("round trips = %d total %d", p.RoundTrips, p.TotalRoundTrips())
	}
	if len(p.Notes) != 1 || p.Notes[0] != "bridged" {
		t.Errorf("notes = %v, want deduped [bridged]", p.Notes)
	}
	if len(p.Children) != 1 || p.Children[0].Op != "Select" || p.Children[0].RowsOut != 4 {
		t.Errorf("children = %+v", p.Children)
	}
}

func TestOpStatsEndNext(t *testing.T) {
	o := NewProfile()
	chunk := make([]relation.Tuple, 3)
	o.endNext(time.Now().Add(-time.Millisecond), chunk)
	o.endNext(time.Now(), nil) // EOF-style call: wall only
	p := o.Snapshot()
	if p.RowsOut != 3 || p.Chunks != 1 {
		t.Errorf("endNext out=%d chunks=%d, want 3/1", p.RowsOut, p.Chunks)
	}
	if p.Wall() < time.Millisecond {
		t.Errorf("wall = %s, want >= 1ms", p.Wall())
	}
}

func TestOpStatsContext(t *testing.T) {
	o := NewProfile()
	ctx := WithOpStats(context.Background(), o)
	if OpStatsFrom(ctx) != o {
		t.Error("OpStatsFrom should round-trip the collector")
	}
	if OpStatsFrom(context.Background()) != nil {
		t.Error("bare context should carry no OpStats")
	}
}

func TestExecProfileWalkAndJSON(t *testing.T) {
	p := &ExecProfile{
		Op: "Union", RowsIn: 5, RowsOut: 3, Chunks: 1, WallNanos: 1000,
		EstRows: 4, ActualVsEst: 0.75,
		Children: []*ExecProfile{
			{Op: "SourceQuery", Label: "a", RowsOut: 2, RoundTrips: 1},
			{Op: "SourceQuery", Label: "b", RowsOut: 3, RoundTrips: 2, Notes: []string{"answer-cache-hit"}},
		},
	}
	var ops []string
	p.Walk(func(n *ExecProfile) { ops = append(ops, n.Op) })
	if len(ops) != 3 || ops[0] != "Union" {
		t.Errorf("walk order = %v", ops)
	}
	if p.TotalRoundTrips() != 3 {
		t.Errorf("total trips = %d, want 3", p.TotalRoundTrips())
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back ExecProfile
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Op != "Union" || len(back.Children) != 2 || back.Children[1].Notes[0] != "answer-cache-hit" {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
	var nilP *ExecProfile
	nilP.Walk(func(*ExecProfile) { t.Error("nil Walk should not visit") })
	if nilP.TotalRoundTrips() != 0 {
		t.Error("nil TotalRoundTrips should be 0")
	}
}

func TestFormatProfile(t *testing.T) {
	if FormatProfile(nil) != "" {
		t.Error("nil profile should format empty")
	}
	p := &ExecProfile{
		Op: "Union", RowsIn: 60, RowsOut: 40, Chunks: 3,
		WallNanos: int64(1200 * time.Microsecond), EstRows: 50, ActualVsEst: 0.8, EstCost: 12.5,
		Children: []*ExecProfile{{
			Op: "SourceQuery", Label: "books", RowsOut: 30, Chunks: 2,
			WallNanos: int64(800 * time.Microsecond), RoundTrips: 1,
			PeakRows: 30, Notes: []string{"bridged"},
		}},
	}
	out := FormatProfile(p)
	for _, want := range []string{
		"Union", "rows out=40 in=60 chunks=3",
		"est=50 (×0.80)", "cost=12.50",
		"  SourceQuery[books]", "trips=1", "peak=30", "[bridged]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatProfile missing %q in:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("lines = %d, want 2", lines)
	}
}

func TestFormatProfDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1.5s"},
		{6*time.Millisecond + 123*time.Microsecond, "6.12ms"},
		{12*time.Microsecond + 340*time.Nanosecond, "12.3µs"},
		{800 * time.Nanosecond, "800ns"},
	}
	for _, c := range cases {
		if got := formatProfDur(c.d); got != c.want {
			t.Errorf("formatProfDur(%s) = %s, want %s", c.d, got, c.want)
		}
	}
}

// TestStreamProfileTree drives the streaming engine with a profile
// attached and checks the tree mirrors the plan and the row accounting
// is consistent.
func TestStreamProfileTree(t *testing.T) {
	srcs := testSources(t)
	p := &Union{Inputs: []Plan{
		NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model"}),
		NewSP(condition.MustParse(`color = "red"`), []string{"model"},
			NewSourceQuery("R", condition.MustParse(`make = "Toyota"`), []string{"model", "color"})),
	}}
	prof := NewProfile()
	res, err := ExecuteStream(context.Background(), p, srcs, StreamOptions{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	ep := prof.Snapshot()
	if ep.Op != "Union" {
		t.Fatalf("root op = %s, want Union", ep.Op)
	}
	if int(ep.RowsOut) != res.Len() {
		t.Errorf("root rows out = %d, answer = %d", ep.RowsOut, res.Len())
	}
	if len(ep.Children) != 2 {
		t.Fatalf("union children = %d, want 2", len(ep.Children))
	}
	var in int64
	for _, c := range ep.Children {
		in += c.RowsOut
	}
	if ep.RowsIn != in {
		t.Errorf("union rows in = %d, sum of children out = %d", ep.RowsIn, in)
	}
	// NewSP builds Project(Select(...)), so the union's second child is
	// the projection with the selection beneath it.
	if ep.Children[1].Op != "Project" {
		t.Errorf("second child op = %s, want Project", ep.Children[1].Op)
	}
	if len(ep.Children[1].Children) != 1 || ep.Children[1].Children[0].Op != "Select" {
		t.Errorf("projection child = %+v, want Select", ep.Children[1].Children)
	}
}
