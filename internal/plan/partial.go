package plan

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/strset"
)

// Dropped-branch reasons. A partial answer is partial either because a
// branch's source failed outright (its rows are missing entirely) or
// because a result-bounded source truncated its answer (the rows it did
// return are kept; only the overflow is missing).
const (
	// ReasonSourceFailed marks a branch dropped by a source failure.
	ReasonSourceFailed = "source-failed"
	// ReasonTruncated marks a branch degraded by a result bound: the
	// source returned its top-k rows and reported more matched.
	ReasonTruncated = "truncated"
)

// DroppedBranch records one Union branch that failed and was excluded
// from a partial answer.
type DroppedBranch struct {
	// Sources are the source names the dropped branch would have queried.
	Sources []string
	// Err is the failure that dropped the branch.
	Err error
	// Reason classifies the drop: ReasonTruncated when a result-bounded
	// source cut the branch short (partial rows kept), ReasonSourceFailed
	// otherwise. Empty is read as ReasonSourceFailed for compatibility
	// with hand-built values.
	Reason string
}

// reason returns the branch's classification, defaulting to
// ReasonSourceFailed.
func (d DroppedBranch) reason() string {
	if d.Reason != "" {
		return d.Reason
	}
	return ReasonSourceFailed
}

// TruncatedError reports that a result-bounded source cut its answer at
// its declared limit: more tuples matched the condition than the
// interface may return. It travels ALONGSIDE a non-nil relation holding
// the rows that were returned — those rows are sound; only completeness
// is lost. Executors fold it into a *PartialError with ReasonTruncated
// when partial answers are allowed, and fail closed otherwise. Callers
// detect it with errors.As.
type TruncatedError struct {
	// Source is the bounded source.
	Source string
	// Limit is where the answer was cut: the source's declared result
	// bound, or — for a paginated scan that died mid-cursor — the number
	// of rows recovered before the cursor was lost.
	Limit int
	// Cause is the underlying failure for cursor-loss truncation (nil for
	// an ordinary result-bound cut). Exposed to errors.Is/As via Unwrap.
	Cause error
}

// Error implements error.
func (e *TruncatedError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("source %s truncated its answer at %d row(s): %v", e.Source, e.Limit, e.Cause)
	}
	return fmt.Sprintf("source %s truncated its answer at its result bound of %d row(s)", e.Source, e.Limit)
}

// Unwrap exposes the truncation's underlying cause, if any.
func (e *TruncatedError) Unwrap() error { return e.Cause }

// reasonFor classifies a branch error for DroppedBranch.Reason.
func reasonFor(err error) string {
	if IsTruncated(err) {
		return ReasonTruncated
	}
	return ReasonSourceFailed
}

// IsTruncated reports whether err carries a *TruncatedError anywhere in
// its chain.
func IsTruncated(err error) bool {
	var te *TruncatedError
	return errors.As(err, &te)
}

// PartialError reports that execution degraded a Union: the returned
// relation is the union of the branches that succeeded, and Dropped lists
// the branches that failed. Union is monotone, so the partial answer is
// sound (every returned tuple is a true answer tuple) but possibly
// incomplete. It is returned alongside a non-nil relation; callers opt in
// via ExecOptions.AllowPartial and detect it with errors.As.
type PartialError struct {
	Dropped []DroppedBranch
}

// Error implements error.
func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: partial answer: dropped %d union branch(es):", len(e.Dropped))
	for _, d := range e.Dropped {
		fmt.Fprintf(&b, " [%s (%s): %v]", strings.Join(d.Sources, ","), d.reason(), d.Err)
	}
	return b.String()
}

// Reasons returns the sorted, deduplicated drop reasons across the
// partial answer's branches — e.g. ["source-failed"], ["truncated"] or
// both. REPL/CLI/daemon reporting uses it to say WHY an answer is
// partial, not just that it is.
func (e *PartialError) Reasons() []string {
	s := strset.New()
	for _, d := range e.Dropped {
		s.Add(d.reason())
	}
	return s.Sorted()
}

// DroppedSources returns the sorted, deduplicated source names that were
// dropped from the answer.
func (e *PartialError) DroppedSources() []string {
	s := strset.New()
	for _, d := range e.Dropped {
		s.Add(d.Sources...)
	}
	return s.Sorted()
}

// Unwrap exposes the underlying branch errors to errors.Is / errors.As.
func (e *PartialError) Unwrap() []error {
	errs := make([]error, len(e.Dropped))
	for i, d := range e.Dropped {
		errs[i] = d.Err
	}
	return errs
}

// branchSources names the sources a plan subtree would query.
func branchSources(p Plan) []string {
	s := strset.New()
	for _, q := range SourceQueries(p) {
		s.Add(q.Source)
	}
	return s.Sorted()
}
