package plan

import (
	"fmt"
	"strings"

	"repro/internal/strset"
)

// DroppedBranch records one Union branch that failed and was excluded
// from a partial answer.
type DroppedBranch struct {
	// Sources are the source names the dropped branch would have queried.
	Sources []string
	// Err is the failure that dropped the branch.
	Err error
}

// PartialError reports that execution degraded a Union: the returned
// relation is the union of the branches that succeeded, and Dropped lists
// the branches that failed. Union is monotone, so the partial answer is
// sound (every returned tuple is a true answer tuple) but possibly
// incomplete. It is returned alongside a non-nil relation; callers opt in
// via ExecOptions.AllowPartial and detect it with errors.As.
type PartialError struct {
	Dropped []DroppedBranch
}

// Error implements error.
func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: partial answer: dropped %d union branch(es):", len(e.Dropped))
	for _, d := range e.Dropped {
		fmt.Fprintf(&b, " [%s: %v]", strings.Join(d.Sources, ","), d.Err)
	}
	return b.String()
}

// DroppedSources returns the sorted, deduplicated source names that were
// dropped from the answer.
func (e *PartialError) DroppedSources() []string {
	s := strset.New()
	for _, d := range e.Dropped {
		s.Add(d.Sources...)
	}
	return s.Sorted()
}

// Unwrap exposes the underlying branch errors to errors.Is / errors.As.
func (e *PartialError) Unwrap() []error {
	errs := make([]error, len(e.Dropped))
	for i, d := range e.Dropped {
		errs[i] = d.Err
	}
	return errs
}

// branchSources names the sources a plan subtree would query.
func branchSources(p Plan) []string {
	s := strset.New()
	for _, q := range SourceQueries(p) {
		s.Add(q.Source)
	}
	return s.Sorted()
}
