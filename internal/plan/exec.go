package plan

import (
	"context"
	"fmt"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/relation"
)

// Querier executes supported source queries; internal/source provides
// local and HTTP-backed implementations.
type Querier interface {
	// Query runs SP(cond, attrs, R) at the source and returns its result.
	// It fails when the source does not support the query. The context
	// carries the caller's deadline and cancellation: implementations must
	// stop work and return promptly once ctx is done.
	Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error)
}

// Sources resolves source names to queriers during execution.
type Sources interface {
	// Lookup returns the querier for the named source.
	Lookup(name string) (Querier, bool)
}

// SourceMap is a map-backed Sources.
type SourceMap map[string]Querier

// Lookup implements Sources.
func (m SourceMap) Lookup(name string) (Querier, bool) {
	q, ok := m[name]
	return q, ok
}

// Execute runs the plan against the sources sequentially and returns its
// result relation. Leftover Choice nodes resolve through ResolveChoice's
// first-alternative fallback — use ExecuteParallel with a ChoiceResolver
// (or resolve with a cost model first) for cost-aware choices. Cancelling
// ctx stops execution between source queries and inside ctx-aware
// queriers.
func Execute(ctx context.Context, p Plan, srcs Sources) (*relation.Relation, error) {
	switch t := p.(type) {
	case *SourceQuery:
		q, ok := srcs.Lookup(t.Source)
		if !ok {
			return nil, fmt.Errorf("plan: unknown source %q", t.Source)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := querySource(ctx, q, t)
		if err != nil {
			return nil, fmt.Errorf("plan: source %s: %w", t.Source, err)
		}
		return res, nil
	case *Select:
		in, err := Execute(ctx, t.Input, srcs)
		if err != nil {
			return nil, err
		}
		out, err := in.Select(t.Cond)
		if err != nil {
			return nil, fmt.Errorf("plan: mediator select: %w", err)
		}
		return out, nil
	case *Project:
		in, err := Execute(ctx, t.Input, srcs)
		if err != nil {
			return nil, err
		}
		out, err := in.Project(t.Attrs)
		if err != nil {
			return nil, fmt.Errorf("plan: mediator project: %w", err)
		}
		return out, nil
	case *Union:
		return executeNary(ctx, t.Inputs, srcs, (*relation.Relation).Union)
	case *Intersect:
		return executeNary(ctx, t.Inputs, srcs, (*relation.Relation).Intersect)
	case *Choice:
		alt, err := ResolveChoice(t, nil)
		if err != nil {
			return nil, err
		}
		return Execute(ctx, alt, srcs)
	default:
		return nil, fmt.Errorf("plan: unknown node %T", p)
	}
}

// querySource runs one source query under an "exec.source" span
// (condition key, rows, error); with no tracer in ctx the span machinery
// is a no-op.
func querySource(ctx context.Context, q Querier, t *SourceQuery) (*relation.Relation, error) {
	qctx, sp := obs.Start(ctx, "exec.source")
	res, err := q.Query(qctx, t.Cond, t.Attrs)
	if sp != nil {
		sp.SetAttr("source", t.Source)
		sp.SetAttr("cond", t.Cond.Key())
		if res != nil {
			sp.SetInt("rows", int64(res.Len()))
		}
		sp.EndErr(err)
	}
	return res, err
}

func executeNary(ctx context.Context, inputs []Plan, srcs Sources, combine func(*relation.Relation, *relation.Relation) (*relation.Relation, error)) (*relation.Relation, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("plan: empty n-ary node")
	}
	acc, err := Execute(ctx, inputs[0], srcs)
	if err != nil {
		return nil, err
	}
	// Align column order across branches: project each branch onto the
	// first branch's column order before combining.
	order := acc.Schema().Names()
	for _, in := range inputs[1:] {
		next, err := Execute(ctx, in, srcs)
		if err != nil {
			return nil, err
		}
		if !next.Schema().Equal(acc.Schema()) {
			next, err = next.Project(order)
			if err != nil {
				return nil, fmt.Errorf("plan: aligning branch schemas: %w", err)
			}
		}
		acc, err = combine(acc, next)
		if err != nil {
			return nil, err
		}
	}
	return acc.Distinct(), nil
}
