package plan

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/condition"
)

// Nested-shape propagation tests: GenCompact's MCSC plans put Intersect
// above per-CT Unions and Unions above Intersects, so the partial-answer
// discipline has to hold through arbitrary nesting, not only at a single
// n-ary node. The invariant throughout:
//
//   - *PartialError  ⇒ non-nil relation, sound subset, Dropped non-empty
//   - any other error ⇒ nil relation (fail closed)
//
// and the two cases never mix.

// nestedFixture returns sources A/C (alive, cars relation) and B/D (dead
// with distinct errors), so tests can tell which failure surfaced.
func nestedFixture(t *testing.T) (Sources, error, error) {
	t.Helper()
	rel := carsRelation(t)
	errB := fmt.Errorf("B down: %w", errDown)
	errD := errors.New("D timed out")
	srcs := SourceMap{
		"A": &testSource{rel: rel},
		"B": &errSource{err: errB},
		"C": &testSource{rel: rel},
		"D": &errSource{err: errD},
	}
	return srcs, errB, errD
}

func condMake(make string) condition.Node {
	return condition.MustParse(fmt.Sprintf("make = %q", make))
}

func TestPartialUnionDropsFailedIntersectBranch(t *testing.T) {
	srcs, _, _ := nestedFixture(t)
	// Union( Intersect(A, B†), C ): the Intersect fails closed, the
	// enclosing Union drops it as one branch and keeps C.
	p := &Union{Inputs: []Plan{
		&Intersect{Inputs: []Plan{
			NewSourceQuery("A", condMake("BMW"), []string{"model"}),
			NewSourceQuery("B", condMake("BMW"), []string{"model"}),
		}},
		NewSourceQuery("C", condMake("Toyota"), []string{"model"}),
	}}
	res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4, AllowPartial: true})
	if res == nil {
		t.Fatalf("expected a partial answer, got err = %v", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	// The dropped branch is the whole Intersect subtree: both of its
	// sources are named, so the caller can see the full blast radius.
	if got := pe.DroppedSources(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("DroppedSources = %v, want [A B]", got)
	}
	if !errors.Is(err, errDown) {
		t.Errorf("partial error should unwrap to B's failure, got %v", err)
	}
	// Only C's branch survived: 2 Toyota models.
	if res.Len() != 2 {
		t.Errorf("partial answer has %d rows, want 2 (C's branch only)", res.Len())
	}
}

func TestIntersectRejectsPartialUnionBranch(t *testing.T) {
	srcs, _, _ := nestedFixture(t)
	// Intersect( Union(A, B†), C ) with AllowPartial: the inner Union
	// degrades to a sound subset, but Intersect of a subset could drop
	// true answer tuples' support, so the Intersect must fail closed —
	// and must NOT re-surface the inner *PartialError with a nil
	// relation, which would break the "partial ⇒ non-nil relation"
	// contract for callers detecting partials with errors.As alone.
	p := &Intersect{Inputs: []Plan{
		&Union{Inputs: []Plan{
			NewSourceQuery("A", condMake("BMW"), []string{"model"}),
			NewSourceQuery("B", condMake("BMW"), []string{"model"}),
		}},
		NewSourceQuery("C", condMake("BMW"), []string{"model"}),
	}}
	res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4, AllowPartial: true})
	if err == nil || res != nil {
		t.Fatalf("Intersect over a partial Union must fail closed (res=%v err=%v)", res, err)
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		t.Errorf("fail-closed Intersect leaked a *PartialError with a nil relation: %v", err)
	}
	if !errors.Is(err, errDown) {
		t.Errorf("err = %v, want the root-cause source failure %v preserved", err, errDown)
	}
}

func TestNestedUnionsAggregateDropped(t *testing.T) {
	srcs, _, _ := nestedFixture(t)
	// Union( Union(A, B†), Union(C, D†) ): both inner Unions degrade;
	// the outer Union keeps their partial results and merges their
	// Dropped lists instead of re-dropping the partial branches whole.
	p := &Union{Inputs: []Plan{
		&Union{Inputs: []Plan{
			NewSourceQuery("A", condMake("BMW"), []string{"model"}),
			NewSourceQuery("B", condMake("BMW"), []string{"model"}),
		}},
		&Union{Inputs: []Plan{
			NewSourceQuery("C", condMake("Toyota"), []string{"model"}),
			NewSourceQuery("D", condMake("Toyota"), []string{"model"}),
		}},
	}}
	res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4, AllowPartial: true})
	if res == nil {
		t.Fatalf("expected a partial answer, got err = %v", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(pe.Dropped) != 2 {
		t.Errorf("Dropped has %d entries, want 2 (one per dead inner branch): %v", len(pe.Dropped), pe)
	}
	if got := pe.DroppedSources(); len(got) != 2 || got[0] != "B" || got[1] != "D" {
		t.Errorf("DroppedSources = %v, want [B D] — surviving sources must not be blamed", got)
	}
	// A's 3 BMW models + C's 2 Toyota models survived.
	if res.Len() != 5 {
		t.Errorf("partial answer has %d rows, want 5", res.Len())
	}
}

func TestPartialRidesThroughSPAboveNestedUnions(t *testing.T) {
	srcs, _, _ := nestedFixture(t)
	inner := &Union{Inputs: []Plan{
		&Union{Inputs: []Plan{
			NewSourceQuery("A", condMake("BMW"), []string{"model"}),
			NewSourceQuery("B", condMake("BMW"), []string{"model"}),
		}},
		NewSourceQuery("C", condMake("Toyota"), []string{"model"}),
	}}
	p := NewSP(condition.True(), []string{"model"}, inner)
	res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4, AllowPartial: true})
	if res == nil {
		t.Fatalf("expected a partial answer through σ/π, got err = %v", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError to survive Select/Project", err)
	}
	if got := pe.DroppedSources(); len(got) != 1 || got[0] != "B" {
		t.Errorf("DroppedSources = %v, want [B]", got)
	}
}

func TestIntersectOfIntersectsFailsClosed(t *testing.T) {
	srcs, _, errD := nestedFixture(t)
	p := &Intersect{Inputs: []Plan{
		&Intersect{Inputs: []Plan{
			NewSourceQuery("A", condMake("BMW"), []string{"model"}),
			NewSourceQuery("D", condMake("BMW"), []string{"model"}),
		}},
		NewSourceQuery("C", condMake("BMW"), []string{"model"}),
	}}
	res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4, AllowPartial: true})
	if err == nil || res != nil {
		t.Fatalf("nested Intersect must fail closed (res=%v err=%v)", res, err)
	}
	if !errors.Is(err, errD) {
		t.Errorf("err = %v, want D's failure", err)
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		t.Error("nested Intersect failure must not look like a partial answer")
	}
}

// TestNestedPartialInvariantUnderConcurrency hammers the two nested
// shapes with a large worker pool so the race detector (CI runs the
// whole suite under -race) exercises the token-pool and cancellation
// paths, and checks the partial/fail-closed dichotomy holds on every
// iteration regardless of goroutine scheduling.
func TestNestedPartialInvariantUnderConcurrency(t *testing.T) {
	srcs, _, _ := nestedFixture(t)
	shapes := map[string]Plan{
		"union-of-intersect": &Union{Inputs: []Plan{
			&Intersect{Inputs: []Plan{
				NewSourceQuery("A", condMake("BMW"), []string{"model"}),
				NewSourceQuery("B", condMake("BMW"), []string{"model"}),
			}},
			NewSourceQuery("C", condMake("Toyota"), []string{"model"}),
		}},
		"intersect-of-union": &Intersect{Inputs: []Plan{
			&Union{Inputs: []Plan{
				NewSourceQuery("A", condMake("BMW"), []string{"model"}),
				NewSourceQuery("B", condMake("BMW"), []string{"model"}),
			}},
			NewSourceQuery("C", condMake("BMW"), []string{"model"}),
		}},
	}
	for name, p := range shapes {
		p := p
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < 25; i++ {
				res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 8, AllowPartial: true})
				var pe *PartialError
				isPartial := errors.As(err, &pe)
				switch {
				case err == nil:
					t.Fatalf("iteration %d: expected a failure to surface, got clean result", i)
				case isPartial && res == nil:
					t.Fatalf("iteration %d: *PartialError with nil relation", i)
				case isPartial && len(pe.Dropped) == 0:
					t.Fatalf("iteration %d: *PartialError with empty Dropped", i)
				case !isPartial && res != nil:
					t.Fatalf("iteration %d: non-partial error with non-nil relation", i)
				}
			}
		})
	}
}
