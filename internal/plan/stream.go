package plan

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/condition"
	"repro/internal/obs"
	"repro/internal/relation"
)

// This file is the streaming twin of exec.go/parallel.go: it compiles a
// plan into a tree of Iterators so tuples flow from the sources to the
// caller without any node materializing its full input. The operators:
//
//   - SourceQuery: a StreamQuerier source streams natively; any other
//     Querier (the resilient retry wrapper, the answer cache) is bridged —
//     its whole answer is fetched once, then re-chunked.
//   - Select / Project: pipelined per chunk; Project deduplicates on the
//     fly with a key set instead of a second relation.
//   - Union: a fan-in merge. Branch subtrees drain concurrently (bounded
//     by the same Workers token discipline as ExecuteParallel) and the
//     merge deduplicates with one shared key set. With AllowPartial, a
//     branch that fails — even after rows were already emitted — is
//     recorded as dropped and the stream ends in a *PartialError; the
//     rows a mid-stream casualty already contributed are kept, because
//     Union is monotone and every emitted tuple is a true answer tuple.
//   - Intersect: builds key sets from inputs[1:], then streams inputs[0]
//     through them. It fails closed like the materialized executor, and
//     adds an early-out: a build side that completes empty makes the
//     whole intersection empty, so sibling builds are cancelled and the
//     probe side is never executed at all.
//   - Choice: resolved at stream-construction time via ResolveChoice.
//
// Execution-time behavior (errors, partial-answer semantics, worker
// bounds, span nesting) deliberately mirrors ExecuteParallel so the two
// engines are interchangeable; internal/qa's streaming differential
// invariant holds them to that.

// StreamOptions configure ExecuteStream/NewStream.
type StreamOptions struct {
	// Workers bounds concurrently draining plan branches — and hence
	// concurrent source queries — across the whole stream, exactly like
	// ExecOptions.Workers. Values <= 1 drain branches on the consumer's
	// goroutine.
	Workers int
	// AllowPartial lets Union streams degrade when branches fail; see
	// ExecOptions.AllowPartial. The streaming refinement: a branch that
	// dies mid-stream after contributing rows keeps those rows (they are
	// sound) and is still reported dropped (it is incomplete).
	AllowPartial bool
	// ChoiceResolver resolves Choice nodes during stream construction;
	// nil falls back to the first alternative (see ResolveChoice).
	ChoiceResolver ChoiceResolver
	// ChunkSize bounds the tuples per Next chunk (0 = DefaultChunkSize).
	ChunkSize int
	// Stats, when non-nil, receives rows-streamed and peak-buffered-rows
	// accounting for the execution.
	Stats *StreamStats
	// Profile, when non-nil, is the root of a per-operator ExecProfile
	// collector tree (see NewProfile). Each operator built for the plan
	// claims a node; Snapshot it after the stream is drained. Nil keeps
	// the instrumented path at zero extra allocations.
	Profile *OpStats
}

// ExecuteStream runs the plan with the streaming engine and collects the
// result, making it a drop-in replacement for ExecuteParallel: same
// signature shape, same error wrapping, same partial-answer contract
// (relation + *PartialError for degraded Unions, nil relation otherwise).
func ExecuteStream(ctx context.Context, p Plan, srcs Sources, opts StreamOptions) (*relation.Relation, error) {
	it, err := NewStream(p, srcs, opts)
	if err != nil {
		return nil, err
	}
	return Collect(ctx, it)
}

// NewStream compiles the plan into an iterator tree. Construction is
// lazy — no source work happens until the first Next call, whose context
// governs all upstream work (cancellation reaches every branch).
func NewStream(p Plan, srcs Sources, opts StreamOptions) (Iterator, error) {
	spawn := opts.Workers - 1
	if spawn < 0 {
		spawn = 0
	}
	chunk := opts.ChunkSize
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	e := &streamExec{
		srcs:    srcs,
		tokens:  make(chan struct{}, spawn),
		partial: opts.AllowPartial,
		resolve: opts.ChoiceResolver,
		chunk:   chunk,
		stats:   opts.Stats,
	}
	return e.build(p, opts.Profile)
}

// streamExec carries the per-execution state every operator shares.
type streamExec struct {
	srcs    Sources
	tokens  chan struct{} // branch-goroutine permits (capacity Workers-1)
	partial bool
	resolve ChoiceResolver
	chunk   int
	stats   *StreamStats
}

// build compiles one plan node (and its subtree) into an iterator.
// prof is the (possibly nil) OpStats slot for this node; Choice nodes
// pass it through unclaimed so the resolved alternative records under
// the slot the Choice occupied, keeping the profile tree aligned with
// what actually executed.
func (e *streamExec) build(p Plan, prof *OpStats) (Iterator, error) {
	switch t := p.(type) {
	case *SourceQuery:
		q, ok := e.srcs.Lookup(t.Source)
		if !ok {
			return nil, fmt.Errorf("plan: unknown source %q", t.Source)
		}
		prof.claim("SourceQuery", t.Source)
		return &sourceIter{e: e, q: q, sq: t, prof: prof}, nil
	case *Select:
		in, err := e.build(t.Input, prof.Child())
		if err != nil {
			return nil, err
		}
		prof.claim("Select", t.Cond.Key())
		return &selectIter{e: e, cond: t.Cond, in: in, prof: prof}, nil
	case *Project:
		in, err := e.build(t.Input, prof.Child())
		if err != nil {
			return nil, err
		}
		prof.claim("Project", strings.Join(t.Attrs, ","))
		return &projectIter{e: e, attrs: t.Attrs, in: in, prof: prof}, nil
	case *Union:
		if len(t.Inputs) == 0 {
			return nil, fmt.Errorf("plan: empty n-ary node")
		}
		ins, err := e.buildAll(t.Inputs, prof)
		if err != nil {
			return nil, err
		}
		prof.claim("Union", "")
		return &unionIter{e: e, node: t, inputs: ins, prof: prof}, nil
	case *Intersect:
		if len(t.Inputs) == 0 {
			return nil, fmt.Errorf("plan: empty n-ary node")
		}
		ins, err := e.buildAll(t.Inputs, prof)
		if err != nil {
			return nil, err
		}
		prof.claim("Intersect", "")
		return &intersectIter{e: e, node: t, inputs: ins, prof: prof}, nil
	case *Choice:
		alt, err := ResolveChoice(t, e.resolve)
		if err != nil {
			return nil, err
		}
		return e.build(alt, prof)
	default:
		return nil, fmt.Errorf("plan: unknown node %T", p)
	}
}

// buildAll compiles n-ary inputs, creating one child profile slot per
// input in plan order (build is sequential, so child order is stable).
func (e *streamExec) buildAll(ps []Plan, prof *OpStats) ([]Iterator, error) {
	out := make([]Iterator, len(ps))
	for i, p := range ps {
		it, err := e.build(p, prof.Child())
		if err != nil {
			for _, b := range out[:i] {
				b.Close()
			}
			return nil, err
		}
		out[i] = it
	}
	return out, nil
}

// streamKey renders a column-order-insensitive dedup/join key for the
// tuple over the given attribute names (sorted once per operator).
// Branches of one n-ary node may deliver the same logical tuple with
// different column orders; keying by name makes them collide correctly
// without projecting first.
func streamKey(t relation.Tuple, names []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		v, _ := t.Lookup(n)
		fmt.Fprintf(&b, "%d:%s", int(v.Kind), v.Text())
	}
	return b.String()
}

// ---------------------------------------------------------------------
// SourceQuery

// sourceIter executes one source query. Sources that implement
// StreamQuerier stream natively; everything else is bridged — the whole
// answer is fetched on the first Next, charged to the peak-rows gauge for
// its lifetime, and re-chunked.
type sourceIter struct {
	e    *streamExec
	q    Querier
	sq   *SourceQuery
	prof *OpStats

	started bool
	stream  Iterator           // native streaming path
	rel     *relation.Relation // bridged path
	pos     int
	pending error     // terminal error to deliver after draining rel (truncation)
	sp      *obs.Span // open exec.source span for the streaming path
	rows    int64
	closed  bool
}

// truncated folds a result-bound truncation into the iterator contract:
// a *PartialError terminal when partials are allowed (the rows already
// emitted are sound), a plain failure otherwise.
func (it *sourceIter) truncated(err error) error {
	it.prof.Note("truncated")
	werr := fmt.Errorf("plan: source %s: %w", it.sq.Source, err)
	if !it.e.partial {
		return werr
	}
	return &PartialError{Dropped: []DroppedBranch{{
		Sources: []string{it.sq.Source}, Err: werr, Reason: ReasonTruncated,
	}}}
}

func (it *sourceIter) Schema() *relation.Schema {
	switch {
	case it.rel != nil:
		return it.rel.Schema()
	case it.stream != nil:
		return it.stream.Schema()
	default:
		return nil
	}
}

// open performs the source query (or opens the source stream).
func (it *sourceIter) open(ctx context.Context) error {
	it.started = true
	it.prof.AddRoundTrips(1)
	// Let source-layer decorators (breaker, answer cache) note their
	// disposition on this scan's profile node.
	ctx = WithOpStats(ctx, it.prof)
	if sq, ok := it.q.(StreamQuerier); ok {
		it.prof.Note("streamed")
		sctx, sp := obs.Start(ctx, "exec.source")
		inner, err := sq.QueryStream(sctx, it.sq.Cond, it.sq.Attrs)
		if err != nil {
			it.endSpan(sp, err)
			return fmt.Errorf("plan: source %s: %w", it.sq.Source, err)
		}
		it.stream, it.sp = inner, sp
		return nil
	}
	it.prof.Note("bridged")
	res, err := querySource(ctx, it.q, it.sq)
	if err != nil {
		// A truncated answer still carries its sound top-k rows; when
		// partials are allowed, drain them and end in a *PartialError.
		if !it.e.partial || res == nil || !IsTruncated(err) {
			return fmt.Errorf("plan: source %s: %w", it.sq.Source, err)
		}
		it.pending = it.truncated(err)
	}
	it.rel = res
	it.e.stats.buffered(res.Len())
	it.prof.AddIn(res.Len())
	it.prof.AddBuffered(res.Len())
	return nil
}

func (it *sourceIter) endSpan(sp *obs.Span, err error) {
	if sp == nil {
		return
	}
	sp.SetAttr("source", it.sq.Source)
	sp.SetAttr("cond", it.sq.Cond.Key())
	sp.SetAttr("streamed", "true")
	sp.SetInt("rows", it.rows)
	if errors.Is(err, io.EOF) {
		err = nil
	}
	sp.EndErr(err)
}

func (it *sourceIter) Next(ctx context.Context) ([]relation.Tuple, error) {
	if it.prof == nil {
		return it.next(ctx)
	}
	start := time.Now()
	chunk, err := it.next(ctx)
	it.prof.endNext(start, chunk)
	return chunk, err
}

func (it *sourceIter) next(ctx context.Context) ([]relation.Tuple, error) {
	if !it.started {
		if err := it.open(ctx); err != nil {
			return nil, err
		}
	}
	if it.stream != nil {
		chunk, err := it.stream.Next(ctx)
		it.rows += int64(len(chunk))
		it.prof.AddIn(len(chunk))
		if err != nil {
			it.endSpan(it.sp, err)
			it.sp = nil
			if errors.Is(err, io.EOF) {
				return nil, io.EOF
			}
			if IsTruncated(err) {
				return nil, it.truncated(err)
			}
			return nil, fmt.Errorf("plan: source %s: %w", it.sq.Source, err)
		}
		it.e.stats.streamed(len(chunk))
		return chunk, nil
	}
	ts := it.rel.Tuples()
	if it.pos >= len(ts) {
		if it.pending != nil {
			err := it.pending
			it.pending = nil
			return nil, err
		}
		return nil, io.EOF
	}
	end := it.pos + it.e.chunk
	if end > len(ts) {
		end = len(ts)
	}
	chunk := ts[it.pos:end]
	it.pos = end
	it.e.stats.streamed(len(chunk))
	return chunk, nil
}

// whole lets Collect grab a bridged source answer without re-copying it:
// a plan that is a single source query costs the same as Execute.
func (it *sourceIter) whole(ctx context.Context) (*relation.Relation, bool, error) {
	if it.started || it.closed {
		return nil, false, nil
	}
	if _, ok := it.q.(StreamQuerier); ok {
		return nil, false, nil
	}
	it.started, it.closed = true, true
	start := time.Now()
	it.prof.AddRoundTrips(1)
	ctx = WithOpStats(ctx, it.prof)
	res, err := querySource(ctx, it.q, it.sq)
	it.prof.AddWall(time.Since(start))
	var terminal error
	if err != nil {
		if !it.e.partial || res == nil || !IsTruncated(err) {
			return nil, true, fmt.Errorf("plan: source %s: %w", it.sq.Source, err)
		}
		terminal = it.truncated(err)
	}
	it.e.stats.streamed(res.Len())
	it.prof.AddIn(res.Len())
	it.prof.AddOut(res.Len())
	if res.Len() > 0 {
		it.prof.AddChunk()
	}
	return res, true, terminal
}

func (it *sourceIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	if it.rel != nil {
		it.e.stats.buffered(-it.rel.Len())
		it.prof.AddBuffered(-it.rel.Len())
		it.pos = it.rel.Len()
	}
	if it.stream != nil {
		it.endSpan(it.sp, nil)
		it.sp = nil
		return it.stream.Close()
	}
	return nil
}

// ---------------------------------------------------------------------
// Select / Project

// selectIter filters chunks through the condition. A *PartialError from
// the input rides through untouched: σ of a sound subset is a sound
// subset.
type selectIter struct {
	e    *streamExec
	cond condition.Node
	in   Iterator
	prof *OpStats
}

func (it *selectIter) Schema() *relation.Schema { return it.in.Schema() }

func (it *selectIter) Next(ctx context.Context) ([]relation.Tuple, error) {
	if it.prof == nil {
		return it.next(ctx)
	}
	start := time.Now()
	chunk, err := it.next(ctx)
	it.prof.endNext(start, chunk)
	return chunk, err
}

func (it *selectIter) next(ctx context.Context) ([]relation.Tuple, error) {
	for {
		chunk, err := it.in.Next(ctx)
		it.prof.AddIn(len(chunk))
		if err != nil {
			return nil, err
		}
		var out []relation.Tuple
		for _, t := range chunk {
			ok, eerr := it.cond.Eval(t)
			if eerr != nil {
				return nil, fmt.Errorf("plan: mediator select: %w", eerr)
			}
			if ok {
				out = append(out, t)
			}
		}
		if len(out) > 0 {
			it.e.stats.streamed(len(out))
			return out, nil
		}
	}
}

func (it *selectIter) Close() error { return it.in.Close() }

// projectIter projects each tuple and deduplicates on the fly (the
// paper's SP projection is set-valued), holding only projected keys
// instead of a second relation.
type projectIter struct {
	e     *streamExec
	attrs []string
	in    Iterator
	prof  *OpStats

	ps   *relation.Schema
	seen map[string]struct{}
	done bool
}

func (it *projectIter) Schema() *relation.Schema {
	if it.ps == nil && it.in.Schema() != nil {
		ps, err := it.in.Schema().Project(it.attrs)
		if err == nil {
			it.ps = ps
		}
	}
	return it.ps
}

func (it *projectIter) Next(ctx context.Context) ([]relation.Tuple, error) {
	if it.prof == nil {
		return it.next(ctx)
	}
	start := time.Now()
	chunk, err := it.next(ctx)
	it.prof.endNext(start, chunk)
	return chunk, err
}

func (it *projectIter) next(ctx context.Context) ([]relation.Tuple, error) {
	if it.done {
		return nil, io.EOF
	}
	for {
		chunk, err := it.in.Next(ctx)
		it.prof.AddIn(len(chunk))
		if err != nil {
			// Derive the projected schema even on an empty stream so
			// Collect can build the (empty) result relation.
			if it.Schema() == nil && !errors.Is(err, io.EOF) {
				return nil, err
			}
			if it.ps == nil {
				ps, perr := it.in.Schema().Project(it.attrs)
				if perr != nil {
					return nil, fmt.Errorf("plan: mediator project: %w", perr)
				}
				it.ps = ps
			}
			return nil, err
		}
		if it.ps == nil {
			ps, perr := chunk[0].Schema().Project(it.attrs)
			if perr != nil {
				return nil, fmt.Errorf("plan: mediator project: %w", perr)
			}
			it.ps = ps
		}
		if it.seen == nil {
			it.seen = make(map[string]struct{}, len(chunk))
		}
		var out []relation.Tuple
		for _, t := range chunk {
			pt := t.Projected(it.ps)
			k := pt.Key()
			if _, dup := it.seen[k]; dup {
				continue
			}
			it.seen[k] = struct{}{}
			it.e.stats.buffered(1)
			it.prof.AddBuffered(1)
			out = append(out, pt)
		}
		if len(out) > 0 {
			it.e.stats.streamed(len(out))
			return out, nil
		}
	}
}

func (it *projectIter) Close() error {
	if it.seen != nil {
		it.e.stats.buffered(-len(it.seen))
		it.prof.AddBuffered(-len(it.seen))
		it.seen = nil
	}
	it.done = true
	return it.in.Close()
}
