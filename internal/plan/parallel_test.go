package plan

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/relation"
)

// countingSource tracks concurrent in-flight queries.
type countingSource struct {
	inner    Querier
	delay    time.Duration
	inFlight atomic.Int64
	peak     atomic.Int64
	mu       sync.Mutex
}

func (s *countingSource) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	cur := s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	for {
		p := s.peak.Load()
		if cur <= p || s.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.inner.Query(ctx, cond, attrs)
}

func parallelFixture(t *testing.T, delay time.Duration) (*countingSource, Plan, *relation.Relation) {
	t.Helper()
	rel := carsRelation(t)
	src := &countingSource{inner: &testSource{rel: rel}, delay: delay}
	var branches []Plan
	for _, mk := range []string{"BMW", "Toyota"} {
		for _, col := range []string{"red", "black", "blue"} {
			branches = append(branches, NewSourceQuery("R",
				condition.NewAnd(
					condition.NewAtomic("make", condition.OpEq, condition.String(mk)),
					condition.NewAtomic("color", condition.OpEq, condition.String(col)),
				), []string{"model"}))
		}
	}
	return src, &Union{Inputs: branches}, rel
}

func TestExecuteParallelMatchesSequential(t *testing.T) {
	src, p, _ := parallelFixture(t, 0)
	srcs := SourceMap{"R": src}
	seq, err := Execute(context.Background(), p, srcs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(par) {
		t.Errorf("parallel result differs: %d vs %d rows", par.Len(), seq.Len())
	}
}

func TestExecuteParallelActuallyOverlaps(t *testing.T) {
	src, p, _ := parallelFixture(t, 5*time.Millisecond)
	if _, err := ExecuteParallel(context.Background(), p, SourceMap{"R": src}, ExecOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if peak := src.peak.Load(); peak < 2 {
		t.Errorf("peak concurrency = %d, want ≥ 2", peak)
	}
}

func TestExecuteParallelRespectsWorkerBound(t *testing.T) {
	src, p, _ := parallelFixture(t, 2*time.Millisecond)
	if _, err := ExecuteParallel(context.Background(), p, SourceMap{"R": src}, ExecOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if peak := src.peak.Load(); peak > 2 {
		t.Errorf("peak concurrency = %d exceeds bound 2", peak)
	}
}

func TestExecuteParallelDegeneratesToSequential(t *testing.T) {
	src, p, _ := parallelFixture(t, 0)
	res, err := ExecuteParallel(context.Background(), p, SourceMap{"R": src}, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("sequential fallback broken")
	}
	if peak := src.peak.Load(); peak != 1 {
		t.Errorf("workers=1 should be sequential, peak = %d", peak)
	}
}

func TestExecuteParallelPropagatesErrors(t *testing.T) {
	rel := carsRelation(t)
	good := NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model"})
	bad := NewSourceQuery("R", condition.MustParse(`nosuch = 1`), []string{"model"})
	p := &Union{Inputs: []Plan{good, bad, good}}
	_, err := ExecuteParallel(context.Background(), p, SourceMap{"R": &testSource{rel: rel}}, ExecOptions{Workers: 4})
	if err == nil {
		t.Error("branch error must propagate")
	}
	if _, err := ExecuteParallel(context.Background(), &Union{}, SourceMap{}, ExecOptions{Workers: 4}); err == nil {
		t.Error("empty union must fail")
	}
	if _, err := ExecuteParallel(context.Background(), &Choice{}, SourceMap{}, ExecOptions{Workers: 4}); err == nil {
		t.Error("empty choice must fail")
	}
}

func TestExecuteParallelNestedStructures(t *testing.T) {
	rel := carsRelation(t)
	srcs := SourceMap{"R": &testSource{rel: rel}}
	inner := &Intersect{Inputs: []Plan{
		NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model"}),
		NewSourceQuery("R", condition.MustParse(`price < 40000`), []string{"model"}),
	}}
	p := &Union{Inputs: []Plan{
		inner,
		NewSP(condition.MustParse(`color = "red"`), []string{"model"},
			NewSourceQuery("R", condition.MustParse(`make = "Toyota"`), []string{"color", "model"})),
	}}
	seq, err := Execute(context.Background(), p, srcs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(par) {
		t.Error("nested parallel execution differs from sequential")
	}
}

func TestExecuteParallelRace(t *testing.T) {
	// Exercised under -race in CI: many branches, small relation.
	rel := carsRelation(t)
	src := &countingSource{inner: &testSource{rel: rel}}
	var branches []Plan
	for i := 0; i < 40; i++ {
		branches = append(branches, NewSourceQuery("R",
			condition.NewAtomic("price", condition.OpGt, condition.Int(int64(i*1000))),
			[]string{"model"}))
	}
	if _, err := ExecuteParallel(context.Background(), &Union{Inputs: branches}, SourceMap{"R": src}, ExecOptions{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	_ = fmt.Sprintf("%d", src.peak.Load())
}
