package plan

import (
	"context"
	"strings"
	"testing"

	"repro/internal/condition"
	"repro/internal/relation"
	"repro/internal/ssdl"
	"repro/internal/strset"
)

// testSource is a permissive in-package querier for executor tests (the
// real capability-enforcing source lives in internal/source).
type testSource struct {
	rel *relation.Relation
}

func (s *testSource) Query(_ context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	sel := s.rel
	if !condition.IsTrue(cond) {
		var err error
		sel, err = s.rel.Select(cond)
		if err != nil {
			return nil, err
		}
	}
	return sel.Project(attrs)
}

func carsRelation(t *testing.T) *relation.Relation {
	t.Helper()
	s := relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
		relation.Column{Name: "color", Kind: condition.KindString},
		relation.Column{Name: "price", Kind: condition.KindInt},
	)
	r := relation.New(s)
	rows := []struct {
		make, model, color string
		price              int64
	}{
		{"BMW", "328i", "red", 35000},
		{"BMW", "M5", "black", 70000},
		{"BMW", "318i", "blue", 30000},
		{"Toyota", "Camry", "red", 19000},
		{"Toyota", "Corolla", "black", 14000},
	}
	for _, row := range rows {
		if err := r.AppendValues(
			condition.String(row.make), condition.String(row.model),
			condition.String(row.color), condition.Int(row.price)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func testSources(t *testing.T) Sources {
	return SourceMap{"R": &testSource{rel: carsRelation(t)}}
}

func TestExecuteSourceQuery(t *testing.T) {
	p := NewSourceQuery("R", condition.MustParse(`make = "BMW" ^ price < 40000`), []string{"model"})
	res, err := Execute(context.Background(), p, testSources(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("len = %d, want 2", res.Len())
	}
}

func TestExecuteNestedSP(t *testing.T) {
	// SP(n2, A, SP(n1, A ∪ Attr(n2), R)) from Example 3.1.
	n1 := condition.MustParse(`make = "BMW" ^ price < 40000`)
	n2 := condition.MustParse(`color = "red" _ color = "black"`)
	inner := NewSourceQuery("R", n1, []string{"model", "color"})
	p := NewSP(n2, []string{"model"}, inner)
	res, err := Execute(context.Background(), p, testSources(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 { // only the 328i is a red/black BMW under 40k
		t.Errorf("len = %d, want 1: %v", res.Len(), res.Tuples())
	}
	if got := res.Schema().Names(); len(got) != 1 || got[0] != "model" {
		t.Errorf("schema = %v", got)
	}
}

func TestExecuteUnionPlan(t *testing.T) {
	// Example 1.1's shape: union of two source queries.
	q1 := NewSourceQuery("R", condition.MustParse(`make = "BMW" ^ price < 40000`), []string{"model"})
	q2 := NewSourceQuery("R", condition.MustParse(`make = "Toyota" ^ price < 20000`), []string{"model"})
	res, err := Execute(context.Background(), &Union{Inputs: []Plan{q1, q2}}, testSources(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Errorf("len = %d, want 4", res.Len())
	}
}

func TestExecuteIntersectPlan(t *testing.T) {
	// SP(n1, A, R) ∩ SP(n2, A, R) with a key attribute in A.
	q1 := NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model"})
	q2 := NewSourceQuery("R", condition.MustParse(`color = "red"`), []string{"model"})
	res, err := Execute(context.Background(), &Intersect{Inputs: []Plan{q1, q2}}, testSources(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("len = %d, want 1", res.Len())
	}
}

func TestExecuteAlignsBranchSchemas(t *testing.T) {
	// Branches projecting the same attrs in different orders must still
	// combine.
	q1 := NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model", "color"})
	q2 := &SourceQuery{Source: "R", Cond: condition.MustParse(`color = "red"`), Attrs: []string{"model", "color"}}
	res, err := Execute(context.Background(), &Union{Inputs: []Plan{q1, q2}}, testSources(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Errorf("len = %d, want 4", res.Len())
	}
}

func TestExecuteChoiceTakesFirst(t *testing.T) {
	q1 := NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model"})
	q2 := NewSourceQuery("R", condition.MustParse(`make = "Toyota"`), []string{"model"})
	res, err := Execute(context.Background(), &Choice{Alternatives: []Plan{q1, q2}}, testSources(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("len = %d, want 3 (first alternative)", res.Len())
	}
}

func TestExecuteErrors(t *testing.T) {
	if _, err := Execute(context.Background(), NewSourceQuery("ghost", condition.True(), []string{"x"}), testSources(t)); err == nil {
		t.Error("unknown source should fail")
	}
	if _, err := Execute(context.Background(), &Union{}, testSources(t)); err == nil {
		t.Error("empty union should fail")
	}
	if _, err := Execute(context.Background(), &Choice{}, testSources(t)); err == nil {
		t.Error("empty choice should fail")
	}
	bad := &Select{Cond: condition.MustParse(`ghost = 1`), Input: NewSourceQuery("R", condition.True(), []string{"model"})}
	if _, err := Execute(context.Background(), bad, testSources(t)); err == nil {
		t.Error("mediator select on missing attr should fail")
	}
}

func TestNewSPOmitsNoOps(t *testing.T) {
	q := NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model"})
	// True condition and matching attrs: plan unchanged.
	p := NewSP(condition.True(), []string{"model"}, q)
	if p != Plan(q) {
		t.Errorf("NewSP added spurious nodes: %s", p.Key())
	}
	// Narrowing attrs adds a projection.
	q2 := NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"model", "color"})
	p2 := NewSP(condition.True(), []string{"model"}, q2)
	if _, ok := p2.(*Project); !ok {
		t.Errorf("want Project, got %T", p2)
	}
}

func TestOutAttrs(t *testing.T) {
	q := NewSourceQuery("R", condition.True(), []string{"b", "a"})
	if !q.OutAttrs().Equal(strset.New("a", "b")) {
		t.Errorf("OutAttrs = %v", q.OutAttrs())
	}
	sel := &Select{Cond: condition.MustParse(`a = 1`), Input: q}
	if !sel.OutAttrs().Equal(strset.New("a", "b")) {
		t.Error("Select must not change attrs")
	}
	proj := NewProject([]string{"a"}, q)
	if !proj.OutAttrs().Equal(strset.New("a")) {
		t.Error("Project must narrow attrs")
	}
}

func TestSourceQueriesAndWalk(t *testing.T) {
	q1 := NewSourceQuery("R", condition.MustParse(`a = 1`), []string{"x"})
	q2 := NewSourceQuery("R", condition.MustParse(`b = 2`), []string{"x"})
	p := &Union{Inputs: []Plan{q1, &Select{Cond: condition.MustParse(`c = 3`), Input: q2}}}
	qs := SourceQueries(p)
	if len(qs) != 2 {
		t.Errorf("SourceQueries = %d, want 2", len(qs))
	}
	if CountChoices(p) != 0 {
		t.Error("CountChoices should be 0")
	}
	ch := &Choice{Alternatives: []Plan{q1, q2}}
	if CountChoices(ch) != 1 {
		t.Error("CountChoices should be 1")
	}
}

func TestKeysDistinguishPlans(t *testing.T) {
	q1 := NewSourceQuery("R", condition.MustParse(`a = 1`), []string{"x"})
	q2 := NewSourceQuery("R", condition.MustParse(`a = 2`), []string{"x"})
	if q1.Key() == q2.Key() {
		t.Error("different conditions share a key")
	}
	u := &Union{Inputs: []Plan{q1, q2}}
	x := &Intersect{Inputs: []Plan{q1, q2}}
	if u.Key() == x.Key() {
		t.Error("union and intersect share a key")
	}
}

func TestFormatRendersTree(t *testing.T) {
	q := NewSourceQuery("R", condition.MustParse(`a = 1`), []string{"x"})
	p := &Union{Inputs: []Plan{q, NewSP(condition.MustParse(`b = 2`), []string{"x"}, q)}}
	out := Format(p)
	for _, want := range []string{"Union", "SourceQuery[R]", "Select", "a = 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	ch := Format(&Choice{Alternatives: []Plan{q}})
	if !strings.Contains(ch, "Choice (1 alternatives)") {
		t.Errorf("choice format: %s", ch)
	}
}

func TestValidate(t *testing.T) {
	g := ssdl.MustParse(`
source R
attrs make, model, color, price
key model
s1 -> make = $m:string ^ price < $p:int
attributes :: s1 : {make, model, color, price}
`)
	cs := CheckerMap{"R": ssdl.NewChecker(g)}
	good := NewSourceQuery("R", condition.MustParse(`make = "BMW" ^ price < 40000`), []string{"model"})
	rep, err := Validate(good, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || rep.SourceQueryCount != 1 {
		t.Errorf("report = %+v", rep)
	}

	bad := NewSourceQuery("R", condition.MustParse(`color = "red"`), []string{"model"})
	rep, err = Validate(&Union{Inputs: []Plan{good, bad}}, cs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible || len(rep.Unsupported) != 1 {
		t.Errorf("report = %+v", rep)
	}

	if _, err := Validate(NewSourceQuery("ghost", condition.True(), nil), cs); err == nil {
		t.Error("unknown source should error")
	}
}

func TestValidateApproxIntersection(t *testing.T) {
	g := ssdl.MustParse(`
source R
attrs make, model, price
key model
s1 -> make = $m:string
s2 -> price < $p:int
attributes :: s1 : {make, model, price}
attributes :: s2 : {make, model, price}
`)
	cs := CheckerMap{"R": ssdl.NewChecker(g)}
	q1 := NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"make"})
	q2 := NewSourceQuery("R", condition.MustParse(`price < 40000`), []string{"make"})
	rep, err := Validate(&Intersect{Inputs: []Plan{q1, q2}}, cs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ApproxIntersections != 1 {
		t.Errorf("ApproxIntersections = %d, want 1 (key not in attrs)", rep.ApproxIntersections)
	}
	// With the key included, the intersection is exact.
	q1k := NewSourceQuery("R", condition.MustParse(`make = "BMW"`), []string{"make", "model"})
	q2k := NewSourceQuery("R", condition.MustParse(`price < 40000`), []string{"make", "model"})
	rep, err = Validate(&Intersect{Inputs: []Plan{q1k, q2k}}, cs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ApproxIntersections != 0 {
		t.Errorf("ApproxIntersections = %d, want 0", rep.ApproxIntersections)
	}
}

func TestNodeKeysAndAttrsCoverage(t *testing.T) {
	q := NewSourceQuery("R", condition.MustParse(`a = 1`), []string{"x", "y"})
	sel := &Select{Cond: condition.MustParse(`b = 2`), Input: q}
	proj := NewProject([]string{"x"}, sel)
	u := &Union{Inputs: []Plan{proj, proj}}
	x := &Intersect{Inputs: []Plan{q, q}}
	ch := &Choice{Alternatives: []Plan{q, u}}
	for _, p := range []Plan{q, sel, proj, u, x, ch} {
		if p.Key() == "" {
			t.Errorf("%T has empty key", p)
		}
		if p.OutAttrs().Len() == 0 {
			t.Errorf("%T has empty OutAttrs", p)
		}
	}
	if (&Union{}).OutAttrs().Len() != 0 || (&Intersect{}).OutAttrs().Len() != 0 || (&Choice{}).OutAttrs().Len() != 0 {
		t.Error("empty n-ary nodes should have empty attrs")
	}
	if !strings.Contains(Format(ch), "Choice") || !strings.Contains(Format(x), "Intersect") {
		t.Error("format coverage")
	}
}
