package plan

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/relation"
)

// profAt indexes a (possibly absent) slice of branch profile slots.
func profAt(profs []*OpStats, i int) *OpStats {
	if profs == nil {
		return nil
	}
	return profs[i]
}

// ExecOptions configure ExecuteParallel.
type ExecOptions struct {
	// Workers bounds the number of plan-executing goroutines — and hence
	// concurrent source queries — across the whole plan. Values ≤ 1 run
	// sequentially.
	Workers int
	// AllowPartial lets a Union degrade when some branches fail: the
	// successful branches are combined and returned together with a
	// *PartialError listing what was dropped. Union is monotone, so the
	// partial answer is sound. Intersect always fails closed — dropping
	// an Intersect branch could only over-approximate the answer.
	AllowPartial bool
	// ChoiceResolver resolves any Choice node left unresolved in the
	// plan. The mediator wires its cost model's minimum-cost resolution
	// here; nil falls back to the first alternative (see ResolveChoice).
	ChoiceResolver ChoiceResolver
	// Profile, when non-nil, is the root of a per-operator ExecProfile
	// collector tree (see NewProfile); Snapshot it after execution. Nil
	// adds zero allocations.
	Profile *OpStats
}

// ExecuteParallel runs the plan like Execute, but evaluates the branches
// of Union and Intersect nodes concurrently — the mediator's source
// queries are network round-trips to independent endpoints, so a
// multi-query plan's latency is dominated by its slowest branch rather
// than the sum.
//
// Fan-out is bounded by a token pool of Workers-1 tokens: a branch runs
// in its own goroutine only if it can claim a token without blocking, and
// runs inline on the parent's goroutine otherwise. Claiming tokens
// non-blockingly keeps nested n-ary nodes deadlock-free, and since each
// goroutine issues at most one source query at a time, in-flight source
// queries never exceed Workers.
//
// The first failing branch of a fail-closed n-ary node cancels its
// sibling branches' contexts.
func ExecuteParallel(ctx context.Context, p Plan, srcs Sources, opts ExecOptions) (*relation.Relation, error) {
	if opts.Workers <= 1 && !opts.AllowPartial && opts.ChoiceResolver == nil && opts.Profile == nil {
		return Execute(ctx, p, srcs)
	}
	spawn := opts.Workers - 1
	if spawn < 0 {
		spawn = 0
	}
	ex := &parallelExec{srcs: srcs, tokens: make(chan struct{}, spawn), partial: opts.AllowPartial, resolve: opts.ChoiceResolver}
	return ex.run(ctx, p, opts.Profile)
}

type parallelExec struct {
	srcs    Sources
	tokens  chan struct{} // goroutine-spawn permits (capacity Workers-1)
	partial bool
	resolve ChoiceResolver
}

// asPartial reports whether (rel, err) is a sound partial answer: a
// non-nil relation annotated with a *PartialError.
func asPartial(rel *relation.Relation, err error) (*PartialError, bool) {
	var pe *PartialError
	if rel != nil && errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// run evaluates one plan node, attributing counters to prof (nil = no
// profiling, zero extra work). Wall time is inclusive of children, as in
// the streaming engine and textbook EXPLAIN ANALYZE output.
func (e *parallelExec) run(ctx context.Context, p Plan, prof *OpStats) (*relation.Relation, error) {
	if prof == nil {
		return e.runNode(ctx, p, nil)
	}
	start := time.Now()
	rel, err := e.runNode(ctx, p, prof)
	prof.AddWall(time.Since(start))
	return rel, err
}

func (e *parallelExec) runNode(ctx context.Context, p Plan, prof *OpStats) (*relation.Relation, error) {
	switch t := p.(type) {
	case *SourceQuery:
		q, ok := e.srcs.Lookup(t.Source)
		if !ok {
			return nil, fmt.Errorf("plan: unknown source %q", t.Source)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		prof.claim("SourceQuery", t.Source)
		prof.AddRoundTrips(1)
		ctx = WithOpStats(ctx, prof)
		res, err := querySource(ctx, q, t)
		if err != nil {
			werr := fmt.Errorf("plan: source %s: %w", t.Source, err)
			if e.partial && res != nil && IsTruncated(err) {
				// A result-bounded source returned its top-k rows and
				// reported overflow: the rows are sound, only completeness
				// is lost. Degrade to a partial answer instead of failing.
				prof.Note("truncated")
				e.recordNode(prof, res.Len(), res)
				return res, &PartialError{Dropped: []DroppedBranch{{
					Sources: []string{t.Source}, Err: werr, Reason: ReasonTruncated,
				}}}
			}
			return nil, werr
		}
		e.recordNode(prof, res.Len(), res)
		return res, nil
	case *Select:
		// Selecting from a partial input stays sound: σ of a subset is a
		// subset of σ of the whole. The PartialError rides along.
		in, err := e.run(ctx, t.Input, prof.Child())
		pe, partial := asPartial(in, err)
		if err != nil && !partial {
			return nil, err
		}
		out, serr := in.Select(t.Cond)
		if serr != nil {
			return nil, fmt.Errorf("plan: mediator select: %w", serr)
		}
		prof.claim("Select", t.Cond.Key())
		e.recordNode(prof, in.Len(), out)
		if partial {
			return out, pe
		}
		return out, nil
	case *Project:
		in, err := e.run(ctx, t.Input, prof.Child())
		pe, partial := asPartial(in, err)
		if err != nil && !partial {
			return nil, err
		}
		out, perr := in.Project(t.Attrs)
		if perr != nil {
			return nil, fmt.Errorf("plan: mediator project: %w", perr)
		}
		prof.claim("Project", strings.Join(t.Attrs, ","))
		e.recordNode(prof, in.Len(), out)
		if partial {
			return out, pe
		}
		return out, nil
	case *Union:
		prof.claim("Union", "")
		return e.runNary(ctx, t.Inputs, true, prof)
	case *Intersect:
		prof.claim("Intersect", "")
		return e.runNary(ctx, t.Inputs, false, prof)
	case *Choice:
		alt, err := ResolveChoice(t, e.resolve)
		if err != nil {
			return nil, err
		}
		// Pass the slot through unclaimed — the resolved alternative is
		// what executes, and the outer run already times this subtree.
		return e.runNode(ctx, alt, prof)
	default:
		return nil, fmt.Errorf("plan: unknown node %T", p)
	}
}

// recordNode charges a materialized operator's input/output sizes. The
// whole output lives in memory at once, so it doubles as the node's
// peak-buffered figure.
func (e *parallelExec) recordNode(prof *OpStats, rowsIn int, out *relation.Relation) {
	if prof == nil {
		return
	}
	prof.AddIn(rowsIn)
	if out == nil {
		return
	}
	prof.AddOut(out.Len())
	if out.Len() > 0 {
		prof.AddChunk()
	}
	prof.AddBuffered(out.Len())
}

func (e *parallelExec) runNary(ctx context.Context, inputs []Plan, union bool, prof *OpStats) (*relation.Relation, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("plan: empty n-ary node")
	}
	// Partial-answer degradation applies to Union only; Intersect fails
	// closed and cancels its siblings on the first branch error. A
	// partial (sound-but-incomplete) Intersect branch also fails the
	// Intersect: we only promise degraded answers for monotone Union.
	failClosed := !union || !e.partial
	branchCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Child profile slots are created here, in plan order, so concurrent
	// branch completion cannot scramble the profile tree's shape.
	var bprofs []*OpStats
	if prof != nil {
		bprofs = make([]*OpStats, len(inputs))
		for i := range inputs {
			bprofs[i] = prof.Child()
		}
	}

	results := make([]*relation.Relation, len(inputs))
	errs := make([]error, len(inputs))
	var wg sync.WaitGroup
	var inline []int
	for i := range inputs {
		// The last branch always runs on this goroutine, so the node
		// makes progress even with no tokens free.
		if i == len(inputs)-1 {
			inline = append(inline, i)
			continue
		}
		select {
		case e.tokens <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-e.tokens }()
				results[i], errs[i] = e.run(branchCtx, inputs[i], profAt(bprofs, i))
				if errs[i] != nil && failClosed {
					cancel()
				}
			}(i)
		default:
			inline = append(inline, i)
		}
	}
	for _, i := range inline {
		results[i], errs[i] = e.run(branchCtx, inputs[i], profAt(bprofs, i))
		if errs[i] != nil && failClosed {
			cancel()
			break
		}
	}
	wg.Wait()

	if prof != nil {
		for i, res := range results {
			// A failed branch contributed nothing; a kept partial branch's
			// surviving rows did flow in.
			if res != nil && (errs[i] == nil || !failClosed) {
				prof.AddIn(res.Len())
			}
		}
	}

	if failClosed {
		if err := firstRealError(errs); err != nil {
			// A branch may itself be a degraded Union (rel + *PartialError)
			// when AllowPartial is on. A fail-closed node cannot accept it,
			// and must not re-surface the *PartialError as its own error
			// either: PartialError's contract is "sound subset alongside a
			// non-nil relation", and this node returns nil. Rewrap so
			// errors.As no longer sees a partial answer while errors.Is
			// still reaches the root-cause source failure.
			var pe *PartialError
			if errors.As(err, &pe) && len(pe.Dropped) > 0 {
				return nil, fmt.Errorf("plan: fail-closed node rejected a partial branch (dropped %s): %w",
					strings.Join(pe.DroppedSources(), ","), pe.Dropped[0].Err)
			}
			return nil, err
		}
		combine := (*relation.Relation).Intersect
		if union {
			combine = (*relation.Relation).Union
		}
		out, err := combineBranches(results, combine)
		if err != nil {
			return nil, err
		}
		e.recordNode(prof, 0, out)
		return out, nil
	}

	// Union in partial mode: combine what succeeded, record what was
	// dropped. A branch may itself be partial (nested Union) — its result
	// is kept and its dropped sub-branches are merged into ours.
	var dropped []DroppedBranch
	var keep []*relation.Relation
	for i, err := range errs {
		pe, partial := asPartial(results[i], err)
		switch {
		case err == nil:
			keep = append(keep, results[i])
		case partial:
			keep = append(keep, results[i])
			dropped = append(dropped, pe.Dropped...)
		default:
			dropped = append(dropped, DroppedBranch{Sources: branchSources(inputs[i]), Err: err, Reason: reasonFor(err)})
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("plan: all %d union branches failed: %w", len(inputs), firstRealError(errs))
	}
	acc, err := combineBranches(keep, (*relation.Relation).Union)
	if err != nil {
		return nil, err
	}
	e.recordNode(prof, 0, acc)
	if len(dropped) > 0 {
		prof.Note("partial")
		return acc, &PartialError{Dropped: dropped}
	}
	return acc, nil
}

// combineBranches folds branch results with combine, aligning each
// branch's column order to the first branch's.
func combineBranches(results []*relation.Relation, combine func(*relation.Relation, *relation.Relation) (*relation.Relation, error)) (*relation.Relation, error) {
	acc := results[0]
	order := acc.Schema().Names()
	for _, next := range results[1:] {
		var err error
		if !next.Schema().Equal(acc.Schema()) {
			next, err = next.Project(order)
			if err != nil {
				return nil, fmt.Errorf("plan: aligning branch schemas: %w", err)
			}
		}
		acc, err = combine(acc, next)
		if err != nil {
			return nil, err
		}
	}
	return acc.Distinct(), nil
}

// firstRealError prefers a root-cause branch error over the
// context-cancellation errors its failure inflicted on siblings.
func firstRealError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}
