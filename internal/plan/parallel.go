package plan

import (
	"fmt"
	"sync"

	"repro/internal/relation"
)

// ExecuteParallel runs the plan like Execute, but evaluates the branches
// of Union and Intersect nodes concurrently — the mediator's source
// queries are network round-trips to independent endpoints, so a
// multi-query plan's latency is dominated by its slowest branch rather
// than the sum. workers bounds the number of in-flight source queries
// across the whole plan (≤1 degenerates to sequential execution).
func ExecuteParallel(p Plan, srcs Sources, workers int) (*relation.Relation, error) {
	if workers <= 1 {
		return Execute(p, srcs)
	}
	ex := &parallelExec{srcs: srcs, sem: make(chan struct{}, workers)}
	return ex.run(p)
}

type parallelExec struct {
	srcs Sources
	sem  chan struct{}
}

func (e *parallelExec) run(p Plan) (*relation.Relation, error) {
	switch t := p.(type) {
	case *SourceQuery:
		q, ok := e.srcs.Lookup(t.Source)
		if !ok {
			return nil, fmt.Errorf("plan: unknown source %q", t.Source)
		}
		e.sem <- struct{}{}
		res, err := q.Query(t.Cond, t.Attrs)
		<-e.sem
		if err != nil {
			return nil, fmt.Errorf("plan: source %s: %w", t.Source, err)
		}
		return res, nil
	case *Select:
		in, err := e.run(t.Input)
		if err != nil {
			return nil, err
		}
		out, err := in.Select(t.Cond)
		if err != nil {
			return nil, fmt.Errorf("plan: mediator select: %w", err)
		}
		return out, nil
	case *Project:
		in, err := e.run(t.Input)
		if err != nil {
			return nil, err
		}
		out, err := in.Project(t.Attrs)
		if err != nil {
			return nil, fmt.Errorf("plan: mediator project: %w", err)
		}
		return out, nil
	case *Union:
		return e.runNary(t.Inputs, (*relation.Relation).Union)
	case *Intersect:
		return e.runNary(t.Inputs, (*relation.Relation).Intersect)
	case *Choice:
		if len(t.Alternatives) == 0 {
			return nil, fmt.Errorf("plan: empty Choice")
		}
		return e.run(t.Alternatives[0])
	default:
		return nil, fmt.Errorf("plan: unknown node %T", p)
	}
}

func (e *parallelExec) runNary(inputs []Plan, combine func(*relation.Relation, *relation.Relation) (*relation.Relation, error)) (*relation.Relation, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("plan: empty n-ary node")
	}
	results := make([]*relation.Relation, len(inputs))
	errs := make([]error, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		wg.Add(1)
		go func(i int, in Plan) {
			defer wg.Done()
			results[i], errs[i] = e.run(in)
		}(i, in)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	acc := results[0]
	order := acc.Schema().Names()
	for _, next := range results[1:] {
		var err error
		if !next.Schema().Equal(acc.Schema()) {
			next, err = next.Project(order)
			if err != nil {
				return nil, fmt.Errorf("plan: aligning branch schemas: %w", err)
			}
		}
		acc, err = combine(acc, next)
		if err != nil {
			return nil, err
		}
	}
	return acc.Distinct(), nil
}
