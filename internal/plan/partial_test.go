package plan

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/relation"
)

// errSource fails every query with a fixed error.
type errSource struct{ err error }

func (s *errSource) Query(context.Context, condition.Node, []string) (*relation.Relation, error) {
	return nil, s.err
}

// blockSource hangs until the context ends.
type blockSource struct{}

func (s *blockSource) Query(ctx context.Context, _ condition.Node, _ []string) (*relation.Relation, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

var errDown = errors.New("connection refused")

// threeSourceFixture is the ISSUE's acceptance scenario: three sources
// serving the same relation, the middle one dead.
func threeSourceFixture(t *testing.T) (Sources, []Plan) {
	t.Helper()
	rel := carsRelation(t)
	srcs := SourceMap{
		"A": &testSource{rel: rel},
		"B": &errSource{err: errDown},
		"C": &testSource{rel: rel},
	}
	branches := []Plan{
		NewSourceQuery("A", condition.MustParse(`make = "BMW"`), []string{"model"}),
		NewSourceQuery("B", condition.MustParse(`color = "red"`), []string{"model"}),
		NewSourceQuery("C", condition.MustParse(`make = "Toyota"`), []string{"model"}),
	}
	return srcs, branches
}

func TestPartialUnionDegradesToSurvivingBranches(t *testing.T) {
	srcs, branches := threeSourceFixture(t)
	p := &Union{Inputs: branches}
	res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4, AllowPartial: true})
	if res == nil {
		t.Fatalf("partial union returned no relation (err = %v)", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if got := pe.DroppedSources(); len(got) != 1 || got[0] != "B" {
		t.Errorf("DroppedSources = %v, want [B]", got)
	}
	if !errors.Is(err, errDown) {
		t.Errorf("PartialError should unwrap to the branch failure, got %v", err)
	}
	// Surviving branches: 3 BMW models + 2 Toyota models.
	if res.Len() != 5 {
		t.Errorf("partial answer has %d rows, want 5", res.Len())
	}
}

func TestPartialUnionDisabledFailsClosed(t *testing.T) {
	srcs, branches := threeSourceFixture(t)
	p := &Union{Inputs: branches}
	res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4})
	if err == nil || res != nil {
		t.Fatalf("without AllowPartial a failing branch must fail the plan (res=%v err=%v)", res, err)
	}
	if !errors.Is(err, errDown) {
		t.Errorf("err = %v, want wrapped %v", err, errDown)
	}
}

func TestIntersectAlwaysFailsClosed(t *testing.T) {
	srcs, branches := threeSourceFixture(t)
	p := &Intersect{Inputs: branches}
	res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4, AllowPartial: true})
	if err == nil || res != nil {
		t.Fatalf("Intersect must fail closed even with AllowPartial (res=%v err=%v)", res, err)
	}
	if !errors.Is(err, errDown) {
		t.Errorf("err = %v, want the underlying source error %v", err, errDown)
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		t.Error("Intersect failure must not be reported as a partial answer")
	}
}

func TestPartialRidesThroughSelectProject(t *testing.T) {
	srcs, branches := threeSourceFixture(t)
	// GenCompact puts mediator Select/Project above the Union; the partial
	// annotation must survive them (σ/π of a subset ⊆ σ/π of the whole).
	p := NewSP(condition.True(), []string{"model"}, &Union{Inputs: branches})
	res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4, AllowPartial: true})
	if res == nil {
		t.Fatalf("expected partial result, got err = %v", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError through SP", err)
	}
}

func TestPartialUnionAllBranchesFailed(t *testing.T) {
	srcs := SourceMap{"B": &errSource{err: errDown}}
	p := &Union{Inputs: []Plan{
		NewSourceQuery("B", condition.MustParse(`color = "red"`), []string{"model"}),
		NewSourceQuery("B", condition.MustParse(`color = "blue"`), []string{"model"}),
	}}
	res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4, AllowPartial: true})
	if err == nil || res != nil {
		t.Fatalf("all branches failing must be an error, not an empty answer (res=%v err=%v)", res, err)
	}
	if !strings.Contains(err.Error(), "all 2 union branches failed") {
		t.Errorf("err = %v", err)
	}
}

func TestPartialUnionSequentialWorkers(t *testing.T) {
	// AllowPartial must work even in the Workers<=1 degenerate case.
	srcs, branches := threeSourceFixture(t)
	p := &Union{Inputs: branches}
	res, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 1, AllowPartial: true})
	var pe *PartialError
	if res == nil || !errors.As(err, &pe) {
		t.Fatalf("sequential partial union broken: res=%v err=%v", res, err)
	}
	if res.Len() != 5 {
		t.Errorf("rows = %d, want 5", res.Len())
	}
}

func TestIntersectFailureCancelsSiblings(t *testing.T) {
	// One branch fails fast; its sibling would hang forever unless the
	// executor cancels it.
	rel := carsRelation(t)
	srcs := SourceMap{
		"dead": &errSource{err: errDown},
		"hung": &blockSource{},
		"ok":   &testSource{rel: rel},
	}
	p := &Intersect{Inputs: []Plan{
		NewSourceQuery("hung", condition.MustParse(`make = "BMW"`), []string{"model"}),
		NewSourceQuery("ok", condition.MustParse(`make = "BMW"`), []string{"model"}),
		NewSourceQuery("dead", condition.MustParse(`make = "BMW"`), []string{"model"}),
	}}
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := ExecuteParallel(context.Background(), p, srcs, ExecOptions{Workers: 4})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, errDown) {
			t.Errorf("err = %v, want the root-cause failure, not a cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("intersect with a hung sibling did not return after %v — siblings not cancelled", time.Since(start))
	}
}
