package plan

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
)

// OpStats collects per-operator runtime counters for one node of an
// executing plan. Like StreamStats, every method is safe on a nil
// receiver so executors thread a possibly-nil pointer through
// unconditionally and the disabled path costs zero allocations — the
// same contract the obs spans honour.
//
// One OpStats is created per plan operator at build time; the tree of
// children mirrors the plan shape (Choice nodes are transparent: the
// resolved alternative claims the Choice's own slot, matching what
// actually executed). Counters use atomics because streaming branches
// of Union/Intersect run on worker goroutines.
type OpStats struct {
	claimed    atomic.Bool
	op         string
	label      string
	rowsIn     atomic.Int64
	rowsOut    atomic.Int64
	chunks     atomic.Int64
	wallNanos  atomic.Int64
	cur        atomic.Int64
	peak       atomic.Int64
	roundTrips atomic.Int64

	mu    sync.Mutex
	notes []string
	kids  []*OpStats
}

// NewProfile returns an unclaimed root collector. Pass it via
// StreamOptions.Profile or ExecOptions.Profile and call Snapshot once
// execution finishes.
func NewProfile() *OpStats { return &OpStats{} }

// claim names the operator occupying this slot. The first caller wins:
// Choice nodes pass their slot through to the resolved alternative
// unclaimed, so whichever concrete operator runs is the one recorded.
func (o *OpStats) claim(op, label string) {
	if o == nil {
		return
	}
	if o.claimed.CompareAndSwap(false, true) {
		o.op, o.label = op, label
	}
}

// SetOp claims the operator name from outside the package (the
// mediator's hash join lives in internal/mediator).
func (o *OpStats) SetOp(op, label string) { o.claim(op, label) }

// Child appends a new child slot in plan order and returns it. Callers
// must create children deterministically (one per plan input, in input
// order) before handing them to worker goroutines.
func (o *OpStats) Child() *OpStats {
	if o == nil {
		return nil
	}
	k := &OpStats{}
	o.mu.Lock()
	o.kids = append(o.kids, k)
	o.mu.Unlock()
	return k
}

// AddIn records n tuples received from inputs (or from a source).
func (o *OpStats) AddIn(n int) {
	if o == nil || n == 0 {
		return
	}
	o.rowsIn.Add(int64(n))
}

// AddOut records n tuples emitted downstream.
func (o *OpStats) AddOut(n int) {
	if o == nil || n == 0 {
		return
	}
	o.rowsOut.Add(int64(n))
}

// AddChunk records one emitted chunk.
func (o *OpStats) AddChunk() {
	if o == nil {
		return
	}
	o.chunks.Add(1)
}

// AddWall accumulates wall time attributed to this operator. Streaming
// executors charge each Next call inclusively (children's time is part
// of the parent's, as in textbook EXPLAIN ANALYZE output).
func (o *OpStats) AddWall(d time.Duration) {
	if o == nil {
		return
	}
	o.wallNanos.Add(int64(d))
}

// AddBuffered adjusts the operator's live buffered-row count by delta
// and maintains the high-water mark, mirroring StreamStats.Buffered.
func (o *OpStats) AddBuffered(delta int) {
	if o == nil || delta == 0 {
		return
	}
	cur := o.cur.Add(int64(delta))
	for {
		p := o.peak.Load()
		if cur <= p || o.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// AddRoundTrips records n remote source round trips.
func (o *OpStats) AddRoundTrips(n int) {
	if o == nil || n == 0 {
		return
	}
	o.roundTrips.Add(int64(n))
}

// Note attaches a free-form disposition marker ("cache hit",
// "breaker=open", "bridged", ...). Duplicates are dropped so retry
// loops don't spam the profile.
func (o *OpStats) Note(s string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, n := range o.notes {
		if n == s {
			return
		}
	}
	o.notes = append(o.notes, s)
}

// endNext is the common epilogue for an instrumented Next call: charge
// the elapsed wall time and, when a chunk was produced, count it.
func (o *OpStats) endNext(start time.Time, chunk []relation.Tuple) {
	if o == nil {
		return
	}
	o.wallNanos.Add(int64(time.Since(start)))
	if len(chunk) > 0 {
		o.rowsOut.Add(int64(len(chunk)))
		o.chunks.Add(1)
	}
}

// Snapshot freezes the collector tree into an ExecProfile. Safe to call
// after execution completes; a nil receiver yields nil.
func (o *OpStats) Snapshot() *ExecProfile {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	notes := append([]string(nil), o.notes...)
	kids := append([]*OpStats(nil), o.kids...)
	o.mu.Unlock()
	p := &ExecProfile{
		Op:         o.op,
		Label:      o.label,
		RowsIn:     o.rowsIn.Load(),
		RowsOut:    o.rowsOut.Load(),
		Chunks:     o.chunks.Load(),
		PeakRows:   o.peak.Load(),
		WallNanos:  o.wallNanos.Load(),
		RoundTrips: o.roundTrips.Load(),
		Notes:      notes,
	}
	for _, k := range kids {
		p.Children = append(p.Children, k.Snapshot())
	}
	return p
}

// ExecProfile is the frozen, JSON-renderable form of an executed
// query's per-operator statistics. The tree mirrors the plan shape.
// EstRows/EstCost/ActualVsEst are filled in by the cost model's
// AnnotateProfile after execution; ActualVsEst is RowsOut/EstRows and
// stays 0 (omitted) when the estimate was zero, keeping the value
// finite for encoding/json.
type ExecProfile struct {
	Op          string         `json:"op"`
	Label       string         `json:"label,omitempty"`
	RowsIn      int64          `json:"rows_in"`
	RowsOut     int64          `json:"rows_out"`
	Chunks      int64          `json:"chunks"`
	PeakRows    int64          `json:"peak_rows,omitempty"`
	WallNanos   int64          `json:"wall_ns"`
	RoundTrips  int64          `json:"round_trips,omitempty"`
	Notes       []string       `json:"notes,omitempty"`
	EstRows     float64        `json:"est_rows,omitempty"`
	EstCost     float64        `json:"est_cost,omitempty"`
	ActualVsEst float64        `json:"actual_vs_est,omitempty"`
	Children    []*ExecProfile `json:"children,omitempty"`
}

// Wall returns the operator's accumulated wall time.
func (p *ExecProfile) Wall() time.Duration { return time.Duration(p.WallNanos) }

// TotalRoundTrips sums source round trips across the whole tree.
func (p *ExecProfile) TotalRoundTrips() int64 {
	if p == nil {
		return 0
	}
	n := p.RoundTrips
	for _, c := range p.Children {
		n += c.TotalRoundTrips()
	}
	return n
}

// Walk visits every node of the profile tree, parents before children.
func (p *ExecProfile) Walk(fn func(*ExecProfile)) {
	if p == nil {
		return
	}
	fn(p)
	for _, c := range p.Children {
		c.Walk(fn)
	}
}

// FormatProfile renders the profile tree as indented text, one
// operator per line, in the style of the obs span tree:
//
//	Union                         rows out=40 in=60 chunks=3 wall=1.2ms
//	  SourceQuery[books]          rows out=30 chunks=2 wall=800µs trips=1
func FormatProfile(p *ExecProfile) string {
	if p == nil {
		return ""
	}
	var sb strings.Builder
	formatProfile(&sb, p, 0)
	return sb.String()
}

func formatProfile(sb *strings.Builder, p *ExecProfile, depth int) {
	indent := strings.Repeat("  ", depth)
	name := p.Op
	if name == "" {
		name = "?"
	}
	if p.Label != "" {
		name += "[" + p.Label + "]"
	}
	fmt.Fprintf(sb, "%s%-*s rows out=%d in=%d chunks=%d wall=%s",
		indent, 40-len(indent), name, p.RowsOut, p.RowsIn, p.Chunks, formatProfDur(p.Wall()))
	if p.PeakRows > 0 {
		fmt.Fprintf(sb, " peak=%d", p.PeakRows)
	}
	if p.RoundTrips > 0 {
		fmt.Fprintf(sb, " trips=%d", p.RoundTrips)
	}
	if p.EstRows > 0 {
		fmt.Fprintf(sb, " est=%.0f (×%.2f)", p.EstRows, p.ActualVsEst)
	}
	if p.EstCost > 0 {
		fmt.Fprintf(sb, " cost=%.2f", p.EstCost)
	}
	for _, n := range p.Notes {
		fmt.Fprintf(sb, " [%s]", n)
	}
	sb.WriteByte('\n')
	for _, c := range p.Children {
		formatProfile(sb, c, depth+1)
	}
}

// formatProfDur rounds like the obs tree renderer: enough precision to
// tell a 12µs template hit from a 6ms cold plan, no noise beyond it.
func formatProfDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(100 * time.Nanosecond).String()
	default:
		return d.String()
	}
}

// opStatsKey carries the current operator's OpStats in a context so
// source-layer decorators (resilient breaker, answer cache) can attach
// disposition notes to the scan that triggered them.
type opStatsKey struct{}

// WithOpStats returns a context carrying o. A nil o returns ctx
// unchanged so the disabled path allocates nothing.
func WithOpStats(ctx context.Context, o *OpStats) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, opStatsKey{}, o)
}

// OpStatsFrom returns the OpStats carried by ctx, or nil. All OpStats
// methods accept nil, so callers use the result unconditionally.
func OpStatsFrom(ctx context.Context) *OpStats {
	o, _ := ctx.Value(opStatsKey{}).(*OpStats)
	return o
}
