package plan

import (
	"testing"

	"repro/internal/condition"
)

func templatePlan() (Plan, []condition.Value) {
	p := condition.Parameterize(condition.MustParse(`make = "BMW" ^ price < 40000`))
	sq := NewSourceQuery("R", p.Skeleton, []string{"make", "model", "price"})
	sel := &Select{Cond: p.Skeleton, Input: sq}
	return NewProject([]string{"model"}, sel), p.Bindings
}

func TestBindSubstitutesEverywhere(t *testing.T) {
	tmpl, bindings := templatePlan()
	if !HasParams(tmpl) {
		t.Fatal("template should carry params")
	}
	bound, err := Bind(tmpl, bindings)
	if err != nil {
		t.Fatal(err)
	}
	if HasParams(bound) {
		t.Fatalf("bound plan still has params:\n%s", Format(bound))
	}
	for _, q := range SourceQueries(bound) {
		if condition.HasParams(q.Cond) {
			t.Fatalf("source query %s not bound", q.Key())
		}
	}
	// The template itself must be untouched (it is shared across queries).
	if !HasParams(tmpl) {
		t.Fatal("binding mutated the template")
	}
}

func TestBindSharesConstantSubtrees(t *testing.T) {
	constQ := NewSourceQuery("S", condition.MustParse(`year > 1990`), []string{"model"})
	tmpl, bindings := templatePlan()
	u := &Union{Inputs: []Plan{tmpl, constQ}}
	bound, err := Bind(u, bindings)
	if err != nil {
		t.Fatal(err)
	}
	if bound.(*Union).Inputs[1] != Plan(constQ) {
		t.Error("param-free subtree should be shared, not copied")
	}
	// A fully constant plan binds to itself.
	same, err := Bind(constQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if same != Plan(constQ) {
		t.Error("constant plan should bind to itself")
	}
}

func TestBindChoiceAndIntersect(t *testing.T) {
	tmplA, bindings := templatePlan()
	tmplB, _ := templatePlan()
	c := &Choice{Alternatives: []Plan{tmplA, &Intersect{Inputs: []Plan{tmplB}}}}
	bound, err := Bind(c, bindings)
	if err != nil {
		t.Fatal(err)
	}
	if HasParams(bound) {
		t.Fatalf("choice alternatives not bound:\n%s", Format(bound))
	}
}

func TestBindErrors(t *testing.T) {
	tmpl, bindings := templatePlan()
	if _, err := Bind(tmpl, bindings[:1]); err == nil {
		t.Error("short vector: want error")
	}
	if _, err := Bind(tmpl, []condition.Value{condition.Int(1), condition.Int(2)}); err == nil {
		t.Error("kind mismatch: want error")
	}
}
