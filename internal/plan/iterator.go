package plan

import (
	"context"
	"errors"
	"io"
	"sync/atomic"

	"repro/internal/condition"
	"repro/internal/relation"
)

// This file defines the streaming execution contract: a pull-based,
// context-aware iterator over bounded chunks of tuples. Plan nodes compose
// iterators instead of materializing a full relation.Relation per node, so
// a Union over three 100k-row sources holds one dedup key set instead of
// four relations plus pairwise union intermediates. Collect bridges back
// to the materialized world for callers that want a whole relation.

// DefaultChunkSize is the number of tuples a well-behaved iterator yields
// per Next call when StreamOptions.ChunkSize is zero. Chunks amortize the
// per-call interface overhead without letting any operator buffer more
// than a bounded slice.
const DefaultChunkSize = 256

// Iterator is a pull-based tuple stream — one node of a streaming plan
// execution.
//
// Next returns the next chunk of tuples (at least one tuple) or an error:
//
//   - (chunk, nil): more tuples; the chunk is valid until the next Next
//     or Close call.
//   - (nil, io.EOF): the stream completed normally.
//   - (nil, *PartialError): the stream completed, but soundly degraded —
//     every yielded tuple is a true answer tuple, yet branches listed in
//     the error were dropped (the streaming analogue of Execute's partial
//     Union answers). Callers that reject partials treat it as a failure.
//   - (nil, err): the stream failed; previously yielded tuples must be
//     discarded by fail-closed consumers.
//
// Schema reports the tuples' schema. It may return nil before the first
// Next call has returned; after any Next outcome — including io.EOF on an
// empty stream — it is non-nil.
//
// Close releases the iterator's resources, cancels upstream work and is
// idempotent; it must be safe to call after any Next outcome, and callers
// must call it (Collect does).
type Iterator interface {
	Next(ctx context.Context) ([]relation.Tuple, error)
	Schema() *relation.Schema
	Close() error
}

// StreamQuerier is the optional streaming face of a Querier: sources that
// can yield their answer incrementally (e.g. source.Local scanning an
// in-memory relation) implement it, and the streaming executor pipelines
// selection and projection per tuple instead of materializing the source
// answer. Queriers that cannot stream — the resilient retry wrapper and
// the answer cache both need whole answers — are bridged: their full
// Query result is re-chunked, preserving their semantics at the cost of
// one materialized relation at the leaf.
type StreamQuerier interface {
	// QueryStream is Query with an incremental answer. Capability
	// refusals and failures that occur before any row is produced are
	// returned here; mid-stream failures come from the iterator's Next.
	QueryStream(ctx context.Context, cond condition.Node, attrs []string) (Iterator, error)
}

// StreamStats aggregates what one streaming execution did. All methods
// are safe for concurrent use; a nil *StreamStats is a valid no-op sink.
type StreamStats struct {
	rows atomic.Int64 // tuples that crossed any operator boundary
	cur  atomic.Int64 // tuples currently buffered across live operators
	peak atomic.Int64 // high-water mark of cur
}

// RowsStreamed returns the total number of tuples that crossed operator
// boundaries during execution (a tuple flowing through source → select →
// union counts once per edge, so the figure reflects pipeline volume, not
// answer cardinality).
func (s *StreamStats) RowsStreamed() int64 {
	if s == nil {
		return 0
	}
	return s.rows.Load()
}

// PeakRows returns the high-water mark of tuples (and dedup keys) buffered
// simultaneously across the execution's operators — the streaming engine's
// working set, the number the materialized executor would push to the sum
// of every node's full input.
func (s *StreamStats) PeakRows() int64 {
	if s == nil {
		return 0
	}
	return s.peak.Load()
}

// Buffered adjusts the live buffered-row count by delta and maintains
// the peak high-water mark. It is exported so streaming operators outside
// this package (the mediator's symmetric hash join) can participate in
// peak accounting; nil-safe like every StreamStats method.
func (s *StreamStats) Buffered(delta int) { s.buffered(delta) }

// streamed counts n tuples crossing an operator boundary.
func (s *StreamStats) streamed(n int) {
	if s == nil || n == 0 {
		return
	}
	s.rows.Add(int64(n))
}

// buffered adjusts the live buffered-row count by delta and maintains the
// high-water mark.
func (s *StreamStats) buffered(delta int) {
	if s == nil || delta == 0 {
		return
	}
	cur := s.cur.Add(int64(delta))
	for {
		peak := s.peak.Load()
		if cur <= peak || s.peak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// relIter streams an existing relation in chunks. It is the bridge from
// the materialized world (cached answers, retry wrappers, whole-relation
// join sides) into the iterator engine.
type relIter struct {
	rel   *relation.Relation
	pos   int
	chunk int
}

// NewRelationIterator streams rel in chunks of chunkSize tuples
// (DefaultChunkSize when chunkSize <= 0). The relation is not copied;
// callers must not mutate it while the iterator lives.
func NewRelationIterator(rel *relation.Relation, chunkSize int) Iterator {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &relIter{rel: rel, chunk: chunkSize}
}

func (it *relIter) Schema() *relation.Schema { return it.rel.Schema() }

func (it *relIter) Next(ctx context.Context) ([]relation.Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ts := it.rel.Tuples()
	if it.pos >= len(ts) {
		return nil, io.EOF
	}
	end := it.pos + it.chunk
	if end > len(ts) {
		end = len(ts)
	}
	out := ts[it.pos:end]
	it.pos = end
	return out, nil
}

func (it *relIter) Close() error {
	it.pos = len(it.rel.Tuples())
	return nil
}

// wholeRelation is implemented by iterators that can hand over their
// entire remaining stream as one ready-made relation; Collect uses it to
// skip the tuple-by-tuple re-copy. ok is false when the iterator cannot
// take the shortcut (it was already partially consumed, or the answer is
// not materialized anyway) — Collect then falls back to draining.
type wholeRelation interface {
	whole(ctx context.Context) (rel *relation.Relation, ok bool, err error)
}

func (it *relIter) whole(ctx context.Context) (*relation.Relation, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, true, err
	}
	if it.pos != 0 {
		return nil, false, nil
	}
	it.pos = len(it.rel.Tuples())
	return it.rel, true, nil
}

// Collect drains the iterator into a relation and closes it. A stream
// ending in a *PartialError returns BOTH the collected (sound, possibly
// incomplete) relation and the error, matching ExecuteParallel's partial-
// answer contract; any other error returns a nil relation.
func Collect(ctx context.Context, it Iterator) (*relation.Relation, error) {
	defer it.Close()
	if w, isWhole := it.(wholeRelation); isWhole {
		if rel, ok, err := w.whole(ctx); ok {
			return rel, err
		}
	}
	var out *relation.Relation
	for {
		chunk, err := it.Next(ctx)
		if out == nil {
			if s := it.Schema(); s != nil {
				out = relation.New(s)
			} else if len(chunk) > 0 {
				out = relation.New(chunk[0].Schema())
			}
		}
		for _, t := range chunk {
			if aerr := out.Append(t); aerr != nil {
				return nil, aerr
			}
		}
		switch {
		case err == nil:
			continue
		case errors.Is(err, io.EOF):
			return out, nil
		default:
			var pe *PartialError
			if errors.As(err, &pe) && out != nil {
				return out, err
			}
			return nil, err
		}
	}
}
