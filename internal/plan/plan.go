// Package plan defines the mediator query-plan algebra of §3: source
// queries SP(C, A, R) sent to a capability-limited source, mediator
// post-processing (selection, projection, union, intersection), and the
// Choice operator GenModular uses to represent alternative plans. It also
// provides the plan executor and feasibility validation.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/condition"
	"repro/internal/strset"
)

// Plan is a node of a mediator query plan.
type Plan interface {
	// OutAttrs returns the attributes the plan produces.
	OutAttrs() strset.Set
	// Key returns a canonical rendering; equal keys mean identical plans.
	Key() string
	// kids returns the child plans, for walking.
	kids() []Plan
}

// SourceQuery is SP(Cond, Attrs, Source): evaluated entirely at the
// source, which applies the condition and projects the attributes.
type SourceQuery struct {
	Source string
	Cond   condition.Node
	Attrs  []string // sorted
}

// NewSourceQuery builds a source query; attrs are copied and sorted.
func NewSourceQuery(source string, cond condition.Node, attrs []string) *SourceQuery {
	a := append([]string(nil), attrs...)
	sort.Strings(a)
	return &SourceQuery{Source: source, Cond: cond, Attrs: a}
}

// OutAttrs implements Plan.
func (q *SourceQuery) OutAttrs() strset.Set { return strset.New(q.Attrs...) }

// Key implements Plan.
func (q *SourceQuery) Key() string {
	return fmt.Sprintf("SP[%s](%s; %s)", q.Source, q.Cond.Key(), strings.Join(q.Attrs, ","))
}

func (q *SourceQuery) kids() []Plan { return nil }

// Select is a mediator-side selection over the child plan's result.
type Select struct {
	Cond  condition.Node
	Input Plan
}

// OutAttrs implements Plan.
func (s *Select) OutAttrs() strset.Set { return s.Input.OutAttrs() }

// Key implements Plan.
func (s *Select) Key() string {
	return fmt.Sprintf("select(%s; %s)", s.Cond.Key(), s.Input.Key())
}

func (s *Select) kids() []Plan { return []Plan{s.Input} }

// Project is a mediator-side projection onto Attrs.
type Project struct {
	Attrs []string // sorted
	Input Plan
}

// NewProject builds a projection; attrs are copied and sorted.
func NewProject(attrs []string, input Plan) *Project {
	a := append([]string(nil), attrs...)
	sort.Strings(a)
	return &Project{Attrs: a, Input: input}
}

// OutAttrs implements Plan.
func (p *Project) OutAttrs() strset.Set { return strset.New(p.Attrs...) }

// Key implements Plan.
func (p *Project) Key() string {
	return fmt.Sprintf("project(%s; %s)", strings.Join(p.Attrs, ","), p.Input.Key())
}

func (p *Project) kids() []Plan { return []Plan{p.Input} }

// Union is the mediator-side set union of its inputs (OR combination).
type Union struct {
	Inputs []Plan
}

// OutAttrs implements Plan.
func (u *Union) OutAttrs() strset.Set {
	if len(u.Inputs) == 0 {
		return strset.New()
	}
	return u.Inputs[0].OutAttrs()
}

// Key implements Plan.
func (u *Union) Key() string { return naryKey("union", u.Inputs) }

func (u *Union) kids() []Plan { return u.Inputs }

// Intersect is the mediator-side set intersection of its inputs (AND
// combination). When the intersected attribute set does not contain a key
// of the source, the intersection of projections may admit false positives
// (a limitation inherited from the paper's algebra); validation reports it
// via ApproxIntersection.
type Intersect struct {
	Inputs []Plan
}

// OutAttrs implements Plan.
func (x *Intersect) OutAttrs() strset.Set {
	if len(x.Inputs) == 0 {
		return strset.New()
	}
	return x.Inputs[0].OutAttrs()
}

// Key implements Plan.
func (x *Intersect) Key() string { return naryKey("intersect", x.Inputs) }

func (x *Intersect) kids() []Plan { return x.Inputs }

// Choice represents a set of alternative plans for the same query
// (GenModular's generate module output); the cost module resolves it to
// the cheapest alternative. Executing an unresolved Choice resolves it
// first — by minimum cost when a ChoiceResolver is wired (the mediator
// installs its cost model's), falling back to the first alternative
// otherwise (see ResolveChoice).
type Choice struct {
	Alternatives []Plan
}

// ChoiceResolver picks the plan an unresolved Choice stands for. The
// mediator wires the cost model's minimum-cost resolution here; executors
// without a model fall back to the first alternative.
type ChoiceResolver func(*Choice) (Plan, error)

// ResolveChoice is the single place a leftover Choice is resolved: the
// resolver's pick when one is available (min-cost under the mediator's
// model), and the DOCUMENTED FALLBACK of the first alternative otherwise.
// Every consumer of an unresolved Choice — Execute, ExecuteParallel,
// OutAttrs — goes through it, so they cannot drift apart. Resolving an
// empty Choice is an error.
func ResolveChoice(c *Choice, r ChoiceResolver) (Plan, error) {
	if len(c.Alternatives) == 0 {
		return nil, fmt.Errorf("plan: empty Choice")
	}
	if r != nil {
		return r(c)
	}
	return c.Alternatives[0], nil
}

// OutAttrs implements Plan. Every alternative of a well-formed Choice
// answers the same query and therefore produces the same attributes, so
// the fallback resolution is representative.
func (c *Choice) OutAttrs() strset.Set {
	alt, err := ResolveChoice(c, nil)
	if err != nil {
		return strset.New()
	}
	return alt.OutAttrs()
}

// Key implements Plan.
func (c *Choice) Key() string { return naryKey("choice", c.Alternatives) }

func (c *Choice) kids() []Plan { return c.Alternatives }

func naryKey(op string, ps []Plan) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Key()
	}
	return op + "(" + strings.Join(parts, "; ") + ")"
}

// NewSP builds the mediator-evaluated query SP(cond, attrs, input): a
// selection on cond followed by a projection onto attrs, the composite the
// paper writes as SP(n, A, P). A trivially-true condition omits the
// selection; a projection matching the input's attributes is omitted too.
func NewSP(cond condition.Node, attrs []string, input Plan) Plan {
	out := input
	if !condition.IsTrue(cond) {
		out = &Select{Cond: cond, Input: out}
	}
	want := strset.New(attrs...)
	if !want.Equal(out.OutAttrs()) {
		out = NewProject(attrs, out)
	}
	return out
}

// SourceQueries returns every SourceQuery node in the plan, in pre-order.
// Choice nodes contribute the queries of all alternatives.
func SourceQueries(p Plan) []*SourceQuery {
	var out []*SourceQuery
	Walk(p, func(n Plan) {
		if q, ok := n.(*SourceQuery); ok {
			out = append(out, q)
		}
	})
	return out
}

// Walk visits every node in pre-order.
func Walk(p Plan, visit func(Plan)) {
	visit(p)
	for _, k := range p.kids() {
		Walk(k, visit)
	}
}

// CountChoices returns the number of Choice nodes in the plan.
func CountChoices(p Plan) int {
	n := 0
	Walk(p, func(q Plan) {
		if _, ok := q.(*Choice); ok {
			n++
		}
	})
	return n
}

// Format renders the plan as an indented tree for humans.
func Format(p Plan) string {
	var sb strings.Builder
	format(&sb, p, 0)
	return sb.String()
}

func format(sb *strings.Builder, p Plan, depth int) {
	indent := strings.Repeat("  ", depth)
	switch t := p.(type) {
	case *SourceQuery:
		fmt.Fprintf(sb, "%sSourceQuery[%s] cond=%s attrs=(%s)\n", indent, t.Source, t.Cond.Key(), strings.Join(t.Attrs, ","))
	case *Select:
		fmt.Fprintf(sb, "%sSelect cond=%s\n", indent, t.Cond.Key())
		format(sb, t.Input, depth+1)
	case *Project:
		fmt.Fprintf(sb, "%sProject attrs=(%s)\n", indent, strings.Join(t.Attrs, ","))
		format(sb, t.Input, depth+1)
	case *Union:
		fmt.Fprintf(sb, "%sUnion\n", indent)
		for _, k := range t.Inputs {
			format(sb, k, depth+1)
		}
	case *Intersect:
		fmt.Fprintf(sb, "%sIntersect\n", indent)
		for _, k := range t.Inputs {
			format(sb, k, depth+1)
		}
	case *Choice:
		fmt.Fprintf(sb, "%sChoice (%d alternatives)\n", indent, len(t.Alternatives))
		for _, k := range t.Alternatives {
			format(sb, k, depth+1)
		}
	default:
		fmt.Fprintf(sb, "%s%T\n", indent, p)
	}
}
