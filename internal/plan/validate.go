package plan

import (
	"fmt"

	"repro/internal/ssdl"
	"repro/internal/strset"
)

// Checkers resolves source names to their SSDL checkers for validation.
type Checkers interface {
	// Checker returns the SSDL checker for the named source.
	Checker(name string) (*ssdl.Checker, bool)
}

// CheckerMap is a map-backed Checkers.
type CheckerMap map[string]*ssdl.Checker

// Checker implements Checkers.
func (m CheckerMap) Checker(name string) (*ssdl.Checker, bool) {
	c, ok := m[name]
	return c, ok
}

// Report is the result of validating a plan.
type Report struct {
	// Feasible is true when every source query in the plan is supported
	// by its source's SSDL description (§4's definition of feasibility).
	Feasible bool
	// Unsupported lists the source queries that failed the Check test.
	Unsupported []*SourceQuery
	// ApproxIntersections counts Intersect nodes whose branch attribute
	// sets do not include the source key, so intersecting projections
	// may admit false positives.
	ApproxIntersections int
	// SourceQueryCount is the number of source queries the plan issues
	// (Choice alternatives all counted).
	SourceQueryCount int
}

// Validate checks feasibility of every source query in the plan against
// the SSDL descriptions, and flags approximate intersections.
func Validate(p Plan, cs Checkers) (*Report, error) {
	rep := &Report{Feasible: true}
	var err error
	Walk(p, func(n Plan) {
		if err != nil {
			return
		}
		switch t := n.(type) {
		case *SourceQuery:
			rep.SourceQueryCount++
			c, ok := cs.Checker(t.Source)
			if !ok {
				err = fmt.Errorf("plan: no SSDL description for source %q", t.Source)
				return
			}
			if !c.Supports(t.Cond, strset.New(t.Attrs...)) {
				rep.Feasible = false
				rep.Unsupported = append(rep.Unsupported, t)
			}
		case *Intersect:
			if approxIntersection(t, cs) {
				rep.ApproxIntersections++
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// approxIntersection reports whether the intersection's attribute set
// misses the key of any source referenced below it.
func approxIntersection(x *Intersect, cs Checkers) bool {
	attrs := x.OutAttrs()
	approx := false
	Walk(x, func(n Plan) {
		q, ok := n.(*SourceQuery)
		if !ok || approx {
			return
		}
		c, ok := cs.Checker(q.Source)
		if !ok {
			return
		}
		key := c.Grammar().Key
		if key == "" || !attrs.Has(key) {
			approx = true
		}
	})
	return approx
}
