package plan

import (
	"fmt"

	"repro/internal/condition"
)

// Bind substitutes a binding vector into every condition of a template
// plan — the source-query conditions shipped to sources and the
// mediator-side Select conditions — producing an executable plan with the
// skeleton's placeholders replaced by constants. Subtrees without
// placeholders are shared with the template, so binding a fully constant
// plan returns it unchanged; the bound plan is an ordinary tree, so both
// the materialized and the streaming executor run it with no special
// cases. Binding fails if a placeholder index escapes the vector or a
// binding's kind differs from the placeholder's element kind.
func Bind(p Plan, bindings []condition.Value) (Plan, error) {
	bound, _, err := bindPlan(p, bindings)
	return bound, err
}

// HasParams reports whether any condition of the plan still carries a
// placeholder; an executable plan must not.
func HasParams(p Plan) bool {
	found := false
	Walk(p, func(n Plan) {
		switch t := n.(type) {
		case *SourceQuery:
			found = found || condition.HasParams(t.Cond)
		case *Select:
			found = found || condition.HasParams(t.Cond)
		}
	})
	return found
}

func bindPlan(p Plan, bindings []condition.Value) (Plan, bool, error) {
	switch t := p.(type) {
	case *SourceQuery:
		cond, changed, err := bindCond(t.Cond, bindings)
		if err != nil {
			return nil, false, err
		}
		if !changed {
			return t, false, nil
		}
		return &SourceQuery{Source: t.Source, Cond: cond, Attrs: t.Attrs}, true, nil
	case *Select:
		cond, condChanged, err := bindCond(t.Cond, bindings)
		if err != nil {
			return nil, false, err
		}
		input, inputChanged, err := bindPlan(t.Input, bindings)
		if err != nil {
			return nil, false, err
		}
		if !condChanged && !inputChanged {
			return t, false, nil
		}
		return &Select{Cond: cond, Input: input}, true, nil
	case *Project:
		input, changed, err := bindPlan(t.Input, bindings)
		if err != nil {
			return nil, false, err
		}
		if !changed {
			return t, false, nil
		}
		return &Project{Attrs: t.Attrs, Input: input}, true, nil
	case *Union:
		inputs, changed, err := bindKids(t.Inputs, bindings)
		if err != nil {
			return nil, false, err
		}
		if !changed {
			return t, false, nil
		}
		return &Union{Inputs: inputs}, true, nil
	case *Intersect:
		inputs, changed, err := bindKids(t.Inputs, bindings)
		if err != nil {
			return nil, false, err
		}
		if !changed {
			return t, false, nil
		}
		return &Intersect{Inputs: inputs}, true, nil
	case *Choice:
		alts, changed, err := bindKids(t.Alternatives, bindings)
		if err != nil {
			return nil, false, err
		}
		if !changed {
			return t, false, nil
		}
		return &Choice{Alternatives: alts}, true, nil
	default:
		return nil, false, fmt.Errorf("plan: cannot bind unknown plan node %T", p)
	}
}

func bindKids(kids []Plan, bindings []condition.Value) ([]Plan, bool, error) {
	out := make([]Plan, len(kids))
	changed := false
	for i, k := range kids {
		nk, ch, err := bindPlan(k, bindings)
		if err != nil {
			return nil, false, err
		}
		out[i] = nk
		changed = changed || ch
	}
	if !changed {
		return kids, false, nil
	}
	return out, true, nil
}

func bindCond(c condition.Node, bindings []condition.Value) (condition.Node, bool, error) {
	if !condition.HasParams(c) {
		return c, false, nil
	}
	bound, err := condition.Bind(c, bindings)
	if err != nil {
		return nil, false, err
	}
	return bound, true, nil
}
