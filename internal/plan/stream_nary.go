package plan

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/relation"
)

// The n-ary streaming operators. Both mirror runNary's semantics:
//
//   - unionIter merges its branch streams, deduplicating with one shared
//     key set. With AllowPartial it degrades like the materialized Union —
//     failed branches become DroppedBranch entries and the stream ends in
//     a *PartialError — with one streaming refinement: rows a branch
//     contributed before dying mid-stream are kept. Union is monotone, so
//     every emitted tuple is a true answer tuple; the branch is still
//     reported dropped because its contribution is incomplete.
//   - intersectIter drains inputs[1:] into key sets, then streams
//     inputs[0] through them. It fails closed (a partial build or probe
//     side rejects the whole node, rewrapped exactly like runNary), and
//     short-circuits: a build side that completes empty makes the whole
//     intersection empty, so sibling builds are cancelled and the probe
//     side never runs.
//
// Branch concurrency uses the engine-wide token pool: a branch drains in
// its own goroutine only if it can claim a token without blocking, and is
// otherwise pulled inline by the consumer, so in-flight source queries
// never exceed Workers and nested n-ary nodes cannot deadlock.

// branchMsg is one hand-off from a draining branch goroutine to the
// fan-in consumer: either a chunk (err nil) or the branch's terminal
// outcome (io.EOF, *PartialError, or a failure) with its final schema.
type branchMsg struct {
	chunk  []relation.Tuple
	schema *relation.Schema
	err    error
}

// rejectPartial converts a branch's *PartialError into a plain error for
// fail-closed consumption, preserving the root-cause chain for errors.Is
// while hiding the partial-answer shape from errors.As (PartialError's
// contract pairs it with a non-nil relation, which a fail-closed node
// does not return). Non-partial errors pass through.
func rejectPartial(err error) error {
	var pe *PartialError
	if errors.As(err, &pe) && len(pe.Dropped) > 0 {
		return fmt.Errorf("plan: fail-closed node rejected a partial branch (dropped %s): %w",
			strings.Join(pe.DroppedSources(), ","), pe.Dropped[0].Err)
	}
	return err
}

// ---------------------------------------------------------------------
// Union

type unionBranch struct {
	it Iterator
	ch chan branchMsg // nil: branch is pulled inline by the consumer
}

type unionIter struct {
	e      *streamExec
	node   *Union
	inputs []Iterator
	prof   *OpStats

	started  bool
	bctx     context.Context
	cancel   context.CancelFunc
	branches []*unionBranch
	live     []int // indices of branches still streaming, rotation order
	rr       int   // next rotation position within live
	wg       sync.WaitGroup

	canonical *relation.Schema
	aligns    map[*relation.Schema]*relation.Schema
	seen      map[string]struct{}
	dropped   []DroppedBranch
	errs      []error
	emitted   bool
	survivors int

	done     bool
	closed   bool
	finalErr error
}

func (u *unionIter) Schema() *relation.Schema { return u.canonical }

func (u *unionIter) start(ctx context.Context) {
	u.started = true
	u.bctx, u.cancel = context.WithCancel(ctx)
	u.branches = make([]*unionBranch, len(u.inputs))
	u.errs = make([]error, len(u.inputs))
	u.seen = make(map[string]struct{})
	u.live = make([]int, 0, len(u.inputs))
	for i, in := range u.inputs {
		br := &unionBranch{it: in}
		u.branches[i] = br
		u.live = append(u.live, i)
		select {
		case u.e.tokens <- struct{}{}:
			br.ch = make(chan branchMsg, 2)
			u.wg.Add(1)
			go u.drain(br)
		default:
			// No token free: the consumer pulls this branch inline during
			// its rotation turn, so the node progresses regardless.
		}
	}
}

// drain pumps one branch into its channel from a dedicated goroutine.
// The terminal message is always delivered, so the consumer (and Close)
// can drain to completion after cancellation without leaking.
func (u *unionIter) drain(br *unionBranch) {
	defer u.wg.Done()
	defer func() { <-u.e.tokens }()
	for {
		chunk, err := br.it.Next(u.bctx)
		if err != nil {
			br.ch <- branchMsg{schema: br.it.Schema(), err: err}
			return
		}
		select {
		case br.ch <- branchMsg{chunk: chunk}:
		case <-u.bctx.Done():
			br.ch <- branchMsg{schema: br.it.Schema(), err: u.bctx.Err()}
			return
		}
	}
}

// setCanonical adopts the output schema. The rotation starts at branch 0,
// so the first schema to arrive is input-order-preferred, matching
// combineBranches aligning everything to results[0].
func (u *unionIter) setCanonical(s *relation.Schema) {
	u.canonical = s
	u.aligns = make(map[*relation.Schema]*relation.Schema)
}

// align rebinds or projects a branch tuple onto the canonical schema, so
// cross-branch deduplication and downstream consumers see one column
// order no matter which branch a tuple came from.
func (u *unionIter) align(t relation.Tuple) (relation.Tuple, error) {
	s := t.Schema()
	if s == u.canonical {
		return t, nil
	}
	if s.Equal(u.canonical) {
		return t.Rebind(u.canonical), nil
	}
	ps, ok := u.aligns[s]
	if !ok {
		var err error
		ps, err = s.Project(u.canonical.Names())
		if err != nil {
			return t, fmt.Errorf("plan: aligning branch schemas: %w", err)
		}
		if !ps.Equal(u.canonical) {
			return t, fmt.Errorf("plan: aligning branch schemas: %s vs %s", ps, u.canonical)
		}
		u.aligns[s] = ps
	}
	return t.Projected(ps).Rebind(u.canonical), nil
}

func (u *unionIter) Next(ctx context.Context) ([]relation.Tuple, error) {
	if u.prof == nil {
		return u.next(ctx)
	}
	start := time.Now()
	chunk, err := u.next(ctx)
	u.prof.endNext(start, chunk)
	return chunk, err
}

func (u *unionIter) next(ctx context.Context) ([]relation.Tuple, error) {
	if u.done {
		return nil, u.finalErr
	}
	if !u.started {
		u.start(ctx)
	}
	var buf []relation.Tuple
	for {
		if len(u.live) == 0 {
			return nil, u.finish()
		}
		if u.rr >= len(u.live) {
			u.rr = 0
		}
		bi := u.live[u.rr]
		br := u.branches[bi]
		var msg branchMsg
		if br.ch == nil {
			chunk, err := br.it.Next(u.bctx)
			msg = branchMsg{chunk: chunk, err: err}
			if err != nil {
				msg.schema = br.it.Schema()
			}
		} else {
			msg = <-br.ch
		}
		if msg.err == nil {
			u.prof.AddIn(len(msg.chunk))
			if u.canonical == nil {
				u.setCanonical(msg.chunk[0].Schema())
			}
			for _, t := range msg.chunk {
				at, aerr := u.align(t)
				if aerr != nil {
					return nil, u.abort(aerr)
				}
				k := at.Key()
				if _, dup := u.seen[k]; dup {
					continue
				}
				u.seen[k] = struct{}{}
				u.e.stats.buffered(1)
				u.prof.AddBuffered(1)
				buf = append(buf, at)
			}
			u.rr++ // move on so slow branches don't starve the rest
			if len(buf) > 0 {
				u.emitted = true
				u.e.stats.streamed(len(buf))
				return buf, nil
			}
			continue
		}

		// Terminal outcome for branch bi.
		u.live = append(u.live[:u.rr], u.live[u.rr+1:]...)
		if u.canonical == nil && msg.schema != nil {
			u.setCanonical(msg.schema)
		}
		err := msg.err
		var pe *PartialError
		switch {
		case errors.Is(err, io.EOF):
			u.survivors++
		case u.e.partial && errors.As(err, &pe) && len(pe.Dropped) > 0:
			// A nested Union degraded: its rows streamed through already;
			// fold its casualties into ours (same as runNary's merge).
			u.survivors++
			u.dropped = append(u.dropped, pe.Dropped...)
		case u.e.partial:
			u.errs[bi] = err
			u.dropped = append(u.dropped, DroppedBranch{Sources: branchSources(u.node.Inputs[bi]), Err: err, Reason: reasonFor(err)})
		default:
			u.errs[bi] = err
			return nil, u.failClosed()
		}
	}
}

// finish computes the stream's terminal outcome once every branch has
// terminated (partial mode only reaches here; fail-closed aborts on the
// first branch error).
func (u *unionIter) finish() error {
	u.done = true
	switch {
	case !u.e.partial || len(u.dropped) == 0:
		u.finalErr = io.EOF
	case u.survivors == 0 && !u.emitted:
		u.finalErr = fmt.Errorf("plan: all %d union branches failed: %w", len(u.inputs), firstRealError(u.errs))
	default:
		u.prof.Note("partial")
		u.finalErr = &PartialError{Dropped: u.dropped}
	}
	return u.finalErr
}

// failClosed aborts the whole node on the first branch error (partial
// mode off): cancel the siblings, drain them to completion, and surface
// the root-cause error, never a *PartialError.
func (u *unionIter) failClosed() error {
	u.cancel()
	u.collectRemaining()
	u.done = true
	u.finalErr = rejectPartial(firstRealError(u.errs))
	return u.finalErr
}

// abort terminates the stream with an operator-level error (e.g. schema
// misalignment), independent of partial mode.
func (u *unionIter) abort(err error) error {
	u.cancel()
	u.collectRemaining()
	u.done = true
	u.finalErr = err
	return u.finalErr
}

// collectRemaining drains every still-live goroutine branch to its
// terminal message (recording errors for firstRealError) and waits for
// the drainers to exit. Inline branches have no in-flight work.
func (u *unionIter) collectRemaining() {
	for _, bi := range u.live {
		br := u.branches[bi]
		if br.ch == nil {
			continue
		}
		for {
			msg := <-br.ch
			if msg.err != nil {
				if !errors.Is(msg.err, io.EOF) && u.errs[bi] == nil {
					u.errs[bi] = msg.err
				}
				break
			}
		}
	}
	u.live = nil
	u.wg.Wait()
}

func (u *unionIter) Close() error {
	if u.closed {
		return nil
	}
	u.closed = true
	if u.started {
		u.cancel()
		u.collectRemaining()
	}
	for _, in := range u.inputs {
		in.Close()
	}
	u.e.stats.buffered(-len(u.seen))
	u.prof.AddBuffered(-len(u.seen))
	u.seen = nil
	u.done = true
	if u.finalErr == nil {
		u.finalErr = io.EOF
	}
	return nil
}

// ---------------------------------------------------------------------
// Intersect

type intersectIter struct {
	e      *streamExec
	node   *Intersect
	inputs []Iterator
	prof   *OpStats

	names []string // sorted output attributes, for order-insensitive keys

	started bool
	bctx    context.Context
	cancel  context.CancelFunc

	probe    Iterator
	builds   []map[string]struct{}
	buffered int // rows charged to the peak gauge for the build sets
	seen     map[string]struct{}
	schema   *relation.Schema // early-out schema when the probe never ran

	done     bool
	closed   bool
	finalErr error
}

func (x *intersectIter) Schema() *relation.Schema {
	if s := x.inputs[0].Schema(); s != nil {
		return s
	}
	return x.schema
}

// drainKeys consumes a build-side iterator into a key set, charging the
// rows pulled to prof's rows-in. A partial terminal is returned as a
// plain error: intersect fails closed.
func drainKeys(ctx context.Context, it Iterator, names []string, prof *OpStats) (map[string]struct{}, *relation.Schema, error) {
	defer it.Close()
	set := make(map[string]struct{})
	for {
		chunk, err := it.Next(ctx)
		prof.AddIn(len(chunk))
		for _, t := range chunk {
			set[streamKey(t, names)] = struct{}{}
		}
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			return set, it.Schema(), nil
		default:
			return set, it.Schema(), err
		}
	}
}

// start runs the build phase: inputs[1:] drain into key sets — token
// holders concurrently, the rest inline — with two short-circuits: the
// first real error cancels the siblings (fail closed, like runNary), and
// the first complete-and-empty build cancels them too, because an empty
// build side makes the whole intersection empty no matter what the other
// branches hold. In the empty case the probe side is never executed.
func (x *intersectIter) start(ctx context.Context) {
	x.started = true
	x.bctx, x.cancel = context.WithCancel(ctx)
	x.names = x.node.OutAttrs().Sorted()
	x.probe = x.inputs[0]

	type buildRes struct {
		set    map[string]struct{}
		schema *relation.Schema
		err    error
	}
	n := len(x.inputs) - 1
	results := make([]buildRes, n)
	chans := make([]chan buildRes, n)
	var wg sync.WaitGroup
	var inline []int
	for i := 0; i < n; i++ {
		it := x.inputs[i+1]
		select {
		case x.e.tokens <- struct{}{}:
			ch := make(chan buildRes, 1)
			chans[i] = ch
			wg.Add(1)
			go func(it Iterator, ch chan buildRes) {
				defer wg.Done()
				defer func() { <-x.e.tokens }()
				set, sch, err := drainKeys(x.bctx, it, x.names, x.prof)
				if err == nil && len(set) == 0 {
					x.cancel() // early-out: empty build ⇒ empty intersection
				} else if err != nil && !errors.Is(err, context.Canceled) {
					x.cancel() // fail fast
				}
				ch <- buildRes{set, sch, err}
			}(it, ch)
		default:
			inline = append(inline, i)
		}
	}
	for _, i := range inline {
		set, sch, err := drainKeys(x.bctx, x.inputs[i+1], x.names, x.prof)
		results[i] = buildRes{set, sch, err}
		if err == nil && len(set) == 0 {
			x.cancel()
		} else if err != nil && !errors.Is(err, context.Canceled) {
			x.cancel()
		}
	}
	for i, ch := range chans {
		if ch != nil {
			results[i] = <-ch
		}
	}
	wg.Wait()

	errs := make([]error, n)
	sets := make([]map[string]struct{}, 0, n)
	var emptySchema *relation.Schema
	empty := false
	for i := 0; i < n; i++ {
		r := results[i]
		errs[i] = r.err
		if r.err == nil {
			if len(r.set) == 0 && !empty {
				empty = true
				emptySchema = r.schema
			}
			sets = append(sets, r.set)
		}
	}
	switch {
	case empty:
		// A complete empty build side is definitive: the intersection is
		// empty even if a sibling failed, so finish successfully now.
		x.schema = emptySchema
		x.done = true
		x.finalErr = io.EOF
	default:
		if err := firstRealError(errs); err != nil {
			x.done = true
			x.finalErr = rejectPartial(err)
			return
		}
		x.builds = sets
		for _, s := range sets {
			x.buffered += len(s)
		}
		x.e.stats.buffered(x.buffered)
		x.prof.AddBuffered(x.buffered)
		x.seen = make(map[string]struct{})
	}
}

func (x *intersectIter) inAllBuilds(k string) bool {
	for _, s := range x.builds {
		if _, ok := s[k]; !ok {
			return false
		}
	}
	return true
}

func (x *intersectIter) Next(ctx context.Context) ([]relation.Tuple, error) {
	if x.prof == nil {
		return x.next(ctx)
	}
	start := time.Now()
	chunk, err := x.next(ctx)
	x.prof.endNext(start, chunk)
	return chunk, err
}

func (x *intersectIter) next(ctx context.Context) ([]relation.Tuple, error) {
	if !x.started {
		x.start(ctx)
	}
	if x.done {
		return nil, x.finalErr
	}
	var buf []relation.Tuple
	for {
		chunk, err := x.probe.Next(x.bctx)
		x.prof.AddIn(len(chunk))
		if err != nil {
			x.done = true
			if errors.Is(err, io.EOF) {
				x.finalErr = io.EOF
			} else {
				// A partial probe side (a degraded Union feeding the
				// intersect) fails closed like any other probe failure.
				x.cancel()
				x.finalErr = rejectPartial(err)
			}
			return nil, x.finalErr
		}
		for _, t := range chunk {
			k := streamKey(t, x.names)
			if !x.inAllBuilds(k) {
				continue
			}
			if _, dup := x.seen[k]; dup {
				continue
			}
			x.seen[k] = struct{}{}
			x.e.stats.buffered(1)
			x.prof.AddBuffered(1)
			buf = append(buf, t)
		}
		if len(buf) > 0 {
			x.e.stats.streamed(len(buf))
			return buf, nil
		}
	}
}

func (x *intersectIter) Close() error {
	if x.closed {
		return nil
	}
	x.closed = true
	if x.started {
		x.cancel()
	}
	for _, in := range x.inputs {
		in.Close()
	}
	x.e.stats.buffered(-(x.buffered + len(x.seen)))
	x.prof.AddBuffered(-(x.buffered + len(x.seen)))
	x.builds, x.seen = nil, nil
	x.done = true
	if x.finalErr == nil {
		x.finalErr = io.EOF
	}
	return nil
}
