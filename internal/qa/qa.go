// Package qa is the repository's differential and metamorphic
// correctness harness. The paper's central claim (§4–§6) is that
// GenCompact's pruning rules PR1–PR3 are safe: the Integrated Plan
// Generator must produce a minimum-cost plan whose executed answer equals
// what exhaustive GenModular — and a direct evaluation of the original
// condition against the full relation — would compute, for every
// supportable query. This package checks that claim systematically
// instead of on hand-picked Section-4 examples:
//
//   - a seeded random generator (generator.go) draws condition trees,
//     SSDL source descriptions and matching in-memory relations from
//     internal/workload's domains;
//   - a ground-truth oracle (oracle.go) evaluates the original condition
//     directly against the full relation, bypassing planners, capability
//     checking and plan execution entirely;
//   - a differential driver (diff.go) runs GenModular and GenCompact
//     end-to-end on each instance and asserts (a) both agree on
//     supportability, (b) both executed answers equal the oracle's,
//     (c) GenCompact's plan costs no more than GenModular's minimum under
//     cost.Model;
//   - metamorphic invariants (metamorphic.go) assert that commuted,
//     reassociated and distributed variants of a condition — and cached,
//     parallel and fault-injected executions — cannot change the answer;
//   - a minimizer (shrink.go) greedily shrinks a failing instance to a
//     printable repro: condition string + SSDL description + rows.
//
// Everything is seeded and deterministic: the same seed reproduces the
// same instance, the same plans and the same answers, so a one-line
// repro ("seed 123") is always available even before shrinking.
package qa

import (
	"fmt"
	"strings"

	"repro/internal/condition"
	"repro/internal/relation"
	"repro/internal/ssdl"
	"repro/internal/workload"
)

// Instance is one generated correctness-test case: a source (relation +
// SSDL capability description) and a target query over it.
type Instance struct {
	// Seed reproduces the instance via Generate(Seed).
	Seed int64
	// Class is the capability-profile family the grammar was drawn from.
	Class workload.ProfileClass
	// Domain is the synthetic schema the relation, grammar and query
	// share.
	Domain *workload.Domain
	// Grammar is the source's SSDL description.
	Grammar *ssdl.Grammar
	// Rel is the source's full relation (the oracle evaluates against
	// it directly).
	Rel *relation.Relation
	// Cond is the target-query condition.
	Cond condition.Node
	// Attrs are the requested attributes; the domain key is always
	// included so intersection plans stay exact (see plan.Intersect's
	// ApproxIntersection caveat).
	Attrs []string
	// Shrunk marks instances the minimizer has modified: they no longer
	// equal Generate(Seed), so the printed repro — not the seed — is the
	// reproduction.
	Shrunk bool
}

// Source returns the source name used for registration and in plans.
func (inst *Instance) Source() string { return inst.Domain.Name }

// Repro renders the instance as a self-contained, human-readable
// reproduction: the condition in parseable surface syntax, the SSDL
// description, the requested attributes and every relation row. Paste it
// into a bug report, or rerun the seed with
//
//	go test ./internal/qa -run 'TestDifferentialCorpus/seed=N'
func (inst *Instance) Repro() string {
	var b strings.Builder
	shrunk := ""
	if inst.Shrunk {
		shrunk = " (shrunk; seed alone does not reproduce)"
	}
	fmt.Fprintf(&b, "qa instance seed=%d class=%s%s\n", inst.Seed, inst.Class, shrunk)
	fmt.Fprintf(&b, "condition: %s\n", inst.Cond.Key())
	fmt.Fprintf(&b, "attrs:     %s\n", strings.Join(inst.Attrs, ", "))
	fmt.Fprintf(&b, "ssdl:\n")
	for _, line := range strings.Split(strings.TrimSpace(inst.Grammar.String()), "\n") {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	names := inst.Rel.Schema().Names()
	fmt.Fprintf(&b, "rows (%d) over (%s):\n", inst.Rel.Len(), strings.Join(names, ", "))
	for _, t := range inst.Rel.Tuples() {
		parts := make([]string, len(names))
		for i, n := range names {
			v, _ := t.Lookup(n)
			parts[i] = v.String()
		}
		fmt.Fprintf(&b, "  (%s)\n", strings.Join(parts, ", "))
	}
	return b.String()
}

// size is the shrink metric: smaller is simpler. It counts condition
// atoms, relation rows, requested attributes and grammar rules.
func (inst *Instance) size() int {
	return condition.Size(inst.Cond) + inst.Rel.Len() + len(inst.Attrs) + len(inst.Grammar.Rules)
}
